/**
 * @file
 * An apache-style webserver with a request-latency QoS under an
 * oscillating (diurnal-compressed) load — the paper's Fig 9
 * scenario, driven through the public API.
 *
 * The load sweeps between quiet and peak; the runtime grows the
 * virtual core for the rush and shrinks it at night, charged only
 * for what it holds.
 *
 * Build and run:  ./build/examples/webserver
 */

#include <cstdio>

#include "core/runtime.hh"
#include "workload/apps.hh"
#include "workload/request.hh"

using namespace cash;

int
main()
{
    ConfigSpace space;
    CostModel pricing;

    // An oscillating request stream (one "day" = 40 Mcycles here).
    RequestStreamParams web = appByName("apache").request;
    web.period = 40'000'000;
    web.baseRatePerMcycle = 5.0; // keep peak demand serviceable
    web.amplitude = 0.5;         // gentler swing than Fig 9's

    SSim chip;
    VCoreId vcore = *chip.createVCore(2, 4);
    RequestSource requests(web, /*seed=*/9);
    chip.vcore(vcore).bindSource(&requests);

    const double latency_target = 600'000; // cycles per request
    RuntimeParams rp;
    rp.quantum = 1'000'000;
    CashRuntime runtime(chip, vcore, QosKind::RequestLatency,
                        latency_target, space, pricing, rp);

    std::printf("latency target: %.0f cycles/request; load "
                "oscillates %.0f..%.0f req/Mcycle\n\n",
                latency_target,
                web.baseRatePerMcycle * (1 - web.amplitude),
                web.baseRatePerMcycle * (1 + web.amplitude));
    std::printf("%-8s %-10s %-10s %-10s %-12s %-8s\n", "Mcycle",
                "req/Mc", "QoS", "backlog", "config", "$/hr");
    for (int i = 0; i < 100; ++i) {
        QuantumStats st = runtime.step();
        if (i % 4 != 0)
            continue;
        Cycle now = chip.vcore(vcore).now();
        const VCoreConfig &cfg = space.at(runtime.currentConfig());
        std::printf("%-8.0f %-10.1f %-10.2f %-10zu %-12s %-8.4f\n",
                    now / 1e6, requests.rateAt(now), st.qos,
                    static_cast<std::size_t>(requests.backlog()),
                    cfg.str().c_str(), pricing.ratePerHour(cfg));
    }

    std::printf("\nrequests served: %llu, mean latency %.0f "
                "cycles (target %.0f)\n",
                static_cast<unsigned long long>(
                    requests.completed()),
                requests.latency().mean(), latency_target);
    std::printf("total bill: $%.6f | always-big (8S/4MB) would "
                "have been $%.6f\n",
                runtime.totalCost(),
                pricing.cost({8, 64}, chip.vcore(vcore).now()));
    return 0;
}
