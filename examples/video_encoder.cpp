/**
 * @file
 * The paper's flagship scenario: an x264-style video encoder with a
 * frame-rate QoS, running through ten distinct phases whose optimal
 * virtual-core configurations differ (paper Sec II, Fig 1).
 *
 * The example prints a phase-annotated timeline showing the runtime
 * tracking each phase with a different Slice/cache allocation, then
 * compares the bill against naive worst-case provisioning.
 *
 * Build and run:  ./build/examples/video_encoder
 */

#include <cstdio>

#include "baselines/profile.hh"
#include "core/runtime.hh"
#include "workload/apps.hh"
#include "workload/trace_gen.hh"

using namespace cash;

int
main()
{
    ConfigSpace space;
    CostModel pricing;

    // The x264 model: ten phases (motion estimation, DCT, CABAC,
    // deblocking, ...), stretched so each spans several quanta.
    AppModel x264 = appByName("x264");
    for (PhaseParams &p : x264.phases)
        p.lengthInsts *= 10;

    // Derive the frame-rate target the way the paper does: the
    // best throughput that is feasible in the worst phase.
    ProfileParams pp;
    pp.warmupInsts = 20'000;
    pp.measureInsts = 40'000;
    std::printf("characterizing x264 over %zu configurations "
                "(one-off, offline)...\n", space.size());
    AppProfile profile = characterize(x264, space, FabricParams{},
                                      SimParams{}, pp);
    std::printf("frame-rate QoS target: %.4f IPC\n\n",
                profile.qosTarget);

    SSim chip;
    VCoreId vcore = *chip.createVCore(1, 1);
    PhasedTraceSource frames(x264.phases, 42, true, 0);
    PacedSource paced(frames, profile.qosTarget);
    chip.vcore(vcore).bindSource(&paced);

    RuntimeParams rp;
    rp.quantum = 1'000'000;
    CashRuntime runtime(chip, vcore, QosKind::Throughput,
                        profile.qosTarget, space, pricing, rp);

    std::printf("%-8s %-14s %-8s %-12s %-8s\n", "Mcycle",
                "phase", "QoS", "config", "$/hr");
    std::uint32_t last_phase = ~0u;
    for (int i = 0; i < 120; ++i) {
        QuantumStats st = runtime.step();
        std::uint32_t phase = frames.currentPhase();
        const VCoreConfig &cfg = space.at(runtime.currentConfig());
        if (phase != last_phase || i % 10 == 0) {
            std::printf("%-8.0f %-14s %-8.2f %-12s %-8.4f%s\n",
                        chip.vcore(vcore).now() / 1e6,
                        x264.phases[phase].name.c_str(), st.qos,
                        cfg.str().c_str(),
                        pricing.ratePerHour(cfg),
                        phase != last_phase ? "  <- new phase"
                                            : "");
            last_phase = phase;
        }
    }

    // The bill, against worst-case static provisioning.
    Cycle elapsed = chip.vcore(vcore).now();
    std::size_t worst =
        profile.cheapestMeetingAll(space, pricing);
    double cash_bill = runtime.totalCost();
    double static_bill =
        pricing.cost(space.at(worst), elapsed);
    std::printf("\n--- the bill (%.0f Mcycles of encoding) ---\n",
                elapsed / 1e6);
    std::printf("CASH adaptive allocation: $%.6f\n", cash_bill);
    std::printf("static worst-case core (%s): $%.6f\n",
                space.at(worst).str().c_str(), static_bill);
    std::printf("savings: %.1f%%   QoS violations: %llu/%llu\n",
                100.0 * (1.0 - cash_bill / static_bill),
                static_cast<unsigned long long>(
                    runtime.totalViolations()),
                static_cast<unsigned long long>(
                    runtime.totalSamples()));
    return 0;
}
