/**
 * @file
 * A "cloud shopper" study: what does each management strategy cost
 * an IaaS customer for the same job and QoS?
 *
 * Runs one benchmark (sjeng by default, or argv[1]) under all four
 * of the paper's resource allocators on identical workload streams
 * and prints the bill, the violation rate, and a recommendation —
 * the per-application view behind Fig 7.
 *
 * Build and run:  ./build/examples/cloud_shopper [app]
 *                 (apps: apache astar bzip ferret gcc h264ref
 *                        hmmer lib mailserver mcf omnetpp sjeng
 *                        x264)
 */

#include <cstdio>

#include "baselines/experiment.hh"

using namespace cash;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "sjeng";
    ConfigSpace space;
    CostModel pricing;

    ExperimentParams ep;
    ep.horizon = 60'000'000;
    ep.quantum = 1'000'000;
    ep.phaseScale = 10.0;
    const AppModel &raw = appByName(name);
    if (raw.isRequestDriven())
        ep.horizon = 120'000'000;
    AppModel app = raw.isRequestDriven()
        ? raw
        : scalePhases(raw, ep.phaseScale);

    ProfileParams pp;
    pp.warmupInsts = 20'000;
    pp.measureInsts = 40'000;
    std::printf("characterizing %s over %zu configurations...\n",
                name, space.size());
    AppProfile prof = characterize(app, space, ep.fabric, ep.sim,
                                   pp);
    std::printf("QoS target: %.4f %s\n\n", prof.qosTarget,
                app.isRequestDriven() ? "cycles/request (max)"
                                      : "IPC (min)");

    std::printf("%-12s %12s %10s %10s %10s\n", "strategy",
                "bill $/hr", "viol %", "mean QoS", "reconfigs");
    double best_rate = 0.0;
    std::string best_name;
    for (PolicyKind k : {PolicyKind::Oracle, PolicyKind::ConvexOpt,
                         PolicyKind::RaceToIdle,
                         PolicyKind::Cash}) {
        RunOutput out = runPolicy(app, prof, k, space, pricing, ep);
        double hours = static_cast<double>(out.stats.cycles) / 1e9
            / 3600.0;
        double rate = hours > 0 ? out.stats.cost / hours : 0.0;
        std::printf("%-12s %12.4f %10.1f %10.2f %10u\n",
                    out.policy.c_str(), rate,
                    out.stats.violationPct(), out.stats.meanQos(),
                    out.stats.reconfigs);
        // Recommend the cheapest strategy with acceptable QoS
        // (violating less than 20% of quanta), oracle excluded
        // (it needs clairvoyance).
        if (k != PolicyKind::Oracle
            && out.stats.violationPct() < 20.0
            && (best_name.empty() || rate < best_rate)) {
            best_rate = rate;
            best_name = out.policy;
        }
    }
    if (!best_name.empty()) {
        std::printf("\nrecommendation for %s: %s at $%.4f/hr\n",
                    name, best_name.c_str(), best_rate);
    } else {
        std::printf("\nno deployable strategy kept violations "
                    "under 20%% for %s\n", name);
    }
    return 0;
}
