/**
 * @file
 * Quickstart: rent sub-core resources on a CASH chip and let the
 * runtime meet a throughput QoS at minimum cost.
 *
 * This walks the public API end to end:
 *  1. instantiate a chip (SSim) — fabric of Slices and L2 banks,
 *  2. create a virtual core and attach a workload,
 *  3. hand the virtual core to the CashRuntime with a QoS target,
 *  4. step the runtime and watch it size the virtual core.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/runtime.hh"
#include "workload/trace_gen.hh"

using namespace cash;

int
main()
{
    // 1. A chip: 64 Slices, 128 x 64 KB L2 banks (defaults), with
    //    one Slice reserved for the runtime itself.
    SSim chip;

    // 2. A customer virtual core, starting minimal: 1 Slice + 64 KB.
    VCoreId vcore = *chip.createVCore(1, 1);

    //    The workload: a looping two-phase synthetic app. Work
    //    arrives at the QoS rate (0.5 IPC), like frames to encode.
    PhaseParams compute;
    compute.name = "compute";
    compute.ilpMeanDist = 30;
    compute.memFrac = 0.2;
    compute.workingSet = 128 * kiB;
    compute.lengthInsts = 1'000'000;
    PhaseParams memory;
    memory.name = "memory";
    memory.ilpMeanDist = 4;
    memory.memFrac = 0.45;
    memory.workingSet = 1 * miB;
    memory.dataBase = 64 * miB;
    memory.lengthInsts = 1'000'000;
    PhasedTraceSource app({compute, memory}, /*seed=*/1, true, 0);
    const double qos_target_ipc = 0.12;
    PacedSource paced(app, qos_target_ipc);
    chip.vcore(vcore).bindSource(&paced);

    // 3. The CASH runtime: deadbeat control + Kalman estimation +
    //    Q-learning over the 64-point configuration space.
    ConfigSpace space;   // 1..8 Slices x 64 KB..8 MB
    CostModel pricing;   // $0.0098/Slice, $0.0032/bank per hour
    CashRuntime runtime(chip, vcore, QosKind::Throughput,
                        qos_target_ipc, space, pricing);

    // 4. Run 40 quanta and watch the allocation follow the phases.
    std::printf("%-8s %-10s %-8s %-12s %-10s\n", "quantum",
                "QoS", "phase?", "config", "$/hr");
    for (int i = 0; i < 40; ++i) {
        QuantumStats st = runtime.step();
        const VCoreConfig &cfg = space.at(runtime.currentConfig());
        std::printf("%-8d %-10.3f %-8s %-12s %-10.4f\n", i, st.qos,
                    st.phaseDetected ? "PHASE" : "",
                    cfg.str().c_str(), pricing.ratePerHour(cfg));
    }

    std::printf("\ntotal cost: $%.6f for %.2f Mcycles | "
                "violations: %llu / %llu quanta\n",
                runtime.totalCost(),
                chip.vcore(vcore).now() / 1e6,
                static_cast<unsigned long long>(
                    runtime.totalViolations()),
                static_cast<unsigned long long>(
                    runtime.totalSamples()));
    std::printf("for comparison, holding the largest core "
                "(8S/8MB) would have cost $%.6f\n",
                pricing.cost({8, 128}, chip.vcore(vcore).now()));
    return 0;
}
