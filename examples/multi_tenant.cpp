/**
 * @file
 * Multi-tenant IaaS: several customers share one CASH fabric, each
 * with their own virtual core, workload, QoS target, and runtime
 * instance — the deployment the paper pitches (Sec I: configurable
 * fabrics let providers move resources between customers; Sec VI-A:
 * one runtime Slice "could easily service many applications").
 *
 * Four tenants with different characters run side by side; the
 * example prints each tenant's allocation and QoS over time, the
 * fabric's occupancy, and the provider's aggregate revenue. When
 * the fabric is tight, a tenant's EXPAND can fail and its runtime
 * must cope with what it holds.
 *
 * Build and run:  ./build/examples/multi_tenant
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/runtime.hh"
#include "workload/apps.hh"
#include "workload/trace_gen.hh"

using namespace cash;

namespace
{

struct Tenant
{
    std::string name;
    VCoreId vcore = invalidVCore;
    std::unique_ptr<PhasedTraceSource> app;
    std::unique_ptr<PacedSource> paced;
    std::unique_ptr<CashRuntime> runtime;
    double target = 0.0;
};

} // namespace

int
main()
{
    // A deliberately small chip so tenants contend: 16 Slices,
    // 32 banks (2 MB of L2 total).
    FabricParams fabric;
    fabric.sliceCols = 2;
    fabric.bankCols = 4;
    fabric.rows = 8;
    SSim chip(fabric);

    ConfigSpace space(4, 16); // per-tenant cap: 4 Slices, 1 MB
    CostModel pricing;
    RuntimeParams rp;
    rp.quantum = 500'000;

    struct Spec
    {
        const char *name;
        const char *model;
        double target;
    };
    const Spec specs[] = {
        {"video", "x264", 0.15},
        {"compute", "hmmer", 0.40},
        {"batch", "bzip", 0.10},
        {"sim", "omnetpp", 0.08},
    };

    std::vector<Tenant> tenants;
    for (const Spec &s : specs) {
        Tenant t;
        t.name = s.name;
        t.target = s.target;
        auto id = chip.createVCore(1, 1);
        if (!id) {
            std::printf("fabric full: cannot admit %s\n", s.name);
            continue;
        }
        t.vcore = *id;
        t.app = std::make_unique<PhasedTraceSource>(
            appByName(s.model).phases, 17 + tenants.size(), true,
            0);
        t.paced = std::make_unique<PacedSource>(*t.app, s.target);
        chip.vcore(t.vcore).bindSource(t.paced.get());
        t.runtime = std::make_unique<CashRuntime>(
            chip, t.vcore, QosKind::Throughput, s.target, space,
            pricing, rp, 100 + tenants.size());
        tenants.push_back(std::move(t));
    }

    std::printf("%zu tenants on a %u-Slice / %u-bank fabric\n\n",
                tenants.size(), chip.grid().numSlices(),
                chip.grid().numBanks());
    std::printf("%-8s", "round");
    for (const Tenant &t : tenants)
        std::printf(" %9s cfg %5s q", t.name.c_str(),
                    t.name.c_str());
    std::printf("  %11s %8s\n", "free S/B", "revenue$/hr");

    double revenue_hours = 0.0;
    for (int round = 0; round < 40; ++round) {
        // Round-robin quantum scheduling: each tenant's runtime
        // advances its own virtual core by one quantum.
        double rate_sum = 0.0;
        for (Tenant &t : tenants)
            t.runtime->step();
        if (round % 4 != 0)
            continue;
        std::printf("%-8d", round);
        for (Tenant &t : tenants) {
            const VCoreConfig &cfg =
                space.at(t.runtime->currentConfig());
            const VirtualCore &vc = chip.vcore(t.vcore);
            double q = static_cast<double>(
                           vc.meta().totalCommitted)
                / std::max<double>(1.0, static_cast<double>(
                    vc.now() - vc.meta().idleCycles))
                / t.target;
            std::printf(" %13s %7.2f", cfg.str().c_str(), q);
            rate_sum += pricing.ratePerHour(cfg);
        }
        std::printf("  %5u/%-5u %8.4f\n",
                    chip.allocator().freeSlices(),
                    chip.allocator().freeBanks(), rate_sum);
        revenue_hours += rate_sum;
    }

    std::printf("\nper-tenant outcome:\n");
    for (const Tenant &t : tenants) {
        std::printf("  %-8s bill $%.6f, violations %llu/%llu "
                    "quanta\n",
                    t.name.c_str(), t.runtime->totalCost(),
                    static_cast<unsigned long long>(
                        t.runtime->totalViolations()),
                    static_cast<unsigned long long>(
                        t.runtime->totalSamples()));
    }
    return 0;
}
