/**
 * @file
 * Multi-tenant IaaS: several customers share one CASH fabric under
 * a real provider — the deployment the paper pitches (Sec I:
 * configurable fabrics let providers move resources between
 * customers; Sec VI-A: one runtime Slice "could easily service many
 * applications").
 *
 * Where this example once hand-rolled its own tenant bookkeeping,
 * it now drives cloud::CloudProvider: four seeded tenants are
 * injected up front, further customers arrive stochastically, and
 * the provider handles admission, fabric arbitration between the
 * per-tenant runtimes, billing, and SLA accounting. The example
 * just watches, then shuts the provider down the way the service
 * daemon does: drain() closes admissions, departs every remaining
 * tenant, and returns the finalized bills.
 *
 * Build and run:  ./build/examples/multi_tenant
 */

#include <cstdio>

#include "cloud/provider.hh"

using namespace cash;
using namespace cash::cloud;

int
main()
{
    // A deliberately small chip so tenants contend: 16 Slices,
    // 32 banks (2 MB of L2 total).
    ProviderParams params;
    params.fabric.sliceCols = 2;
    params.fabric.bankCols = 4;
    params.fabric.rows = 8;
    params.provisioning = Provisioning::FineGrain;
    params.arrivalProb = 0.25; // organic arrivals on top
    params.seed = 17;

    CloudProvider provider(params);

    // Four founding customers with different characters, injected
    // deterministically (class indices into defaultCatalog()).
    struct Founder
    {
        const char *who;
        std::size_t cls;
        std::uint32_t residence;
    };
    const Founder founders[] = {
        {"video", 10, 40},   // x264
        {"compute", 5, 40},  // hmmer
        {"batch", 1, 40},    // bzip
        {"sim", 8, 40},      // omnetpp
    };
    for (const Founder &f : founders) {
        TenantId id = provider.injectArrival(f.cls, f.residence);
        const Tenant &t = *provider.tenants()[id];
        std::printf("%-8s -> tenant %u (%s), %s\n", f.who, t.id,
                    t.cls.app.c_str(), tenantStateName(t.state));
    }

    const FabricGrid &grid = provider.chip().grid();
    std::printf("\n%u-Slice / %u-bank fabric, %s provisioning\n\n",
                grid.numSlices(), grid.numBanks(),
                provisioningName(params.provisioning));
    std::printf("%-6s %-7s %-28s %11s %9s\n", "round", "active",
                "tenant cfg@ewmaQoS", "free S/B", "rev(u$)");

    for (int round = 0; round < 40; ++round) {
        provider.step();
        if (round % 4 != 3)
            continue;
        std::vector<TenantId> active = provider.activeTenants();
        std::printf("%-6d %-7zu ", round, active.size());
        int shown = 0;
        for (TenantId id : active) {
            if (shown++ == 3) {
                std::printf("...");
                break;
            }
            const Tenant &t = *provider.tenants()[id];
            const VirtualCore &vc = provider.chip().vcore(t.vcore);
            std::printf("%u/%u@%.2f ", vc.numSlices(),
                        vc.numBanks(), t.ewmaQ);
        }
        const FabricAllocator &alloc = provider.chip().allocator();
        std::printf("%*s%5u/%-5u %9.4f\n",
                    shown <= 3 ? (4 - shown) * 10 - 3 : 0, "",
                    alloc.freeSlices(), alloc.freeBanks(),
                    provider.revenue() * 1e6);
    }

    const ProviderStats &st = provider.stats();
    std::printf("\nprovider outcome over %llu rounds:\n",
                static_cast<unsigned long long>(st.rounds));
    std::printf("  arrivals %llu, admitted %llu, rejected %llu, "
                "abandoned %llu, departed %llu\n",
                static_cast<unsigned long long>(st.arrivals),
                static_cast<unsigned long long>(st.admitted),
                static_cast<unsigned long long>(st.rejected),
                static_cast<unsigned long long>(st.abandoned),
                static_cast<unsigned long long>(st.departed));
    std::printf("  SLA delivery %.3f, mean occupancy %.2f Slices / "
                "%.2f banks, revenue %.4f u$\n",
                provider.qosDelivery(), st.meanSliceUtil(),
                st.meanBankUtil(), provider.revenue() * 1e6);
    const ArbiterStats &ab = provider.arbiter().stats();
    std::printf("  arbitration: %llu full, %llu partial, %llu "
                "denied, %llu compactions\n",
                static_cast<unsigned long long>(ab.fullGrants),
                static_cast<unsigned long long>(ab.partialGrants),
                static_cast<unsigned long long>(ab.denials),
                static_cast<unsigned long long>(ab.compactions));

    // End of business: drain the provider. Admissions close, every
    // still-active tenant departs, and each admitted customer gets
    // a finalized bill — the same path the service daemon takes on
    // SIGTERM.
    std::vector<FinalBill> bills = provider.drain();
    std::printf("\nfinal bills after drain (%zu customers, "
                "admissions %s):\n",
                bills.size(),
                provider.draining() ? "closed" : "open");
    double total = 0.0;
    for (const FinalBill &b : bills) {
        std::printf("  tenant %-2u %-8s %.4f u$, violations "
                    "%llu/%llu\n",
                    b.tenant, b.app.c_str(), b.bill * 1e6,
                    static_cast<unsigned long long>(
                        b.qosViolations),
                    static_cast<unsigned long long>(b.qosSamples));
        total += b.bill;
    }
    std::printf("  total billed %.4f u$ (provider departed "
                "revenue %.4f u$)\n",
                total * 1e6, provider.revenue() * 1e6);
    return 0;
}
