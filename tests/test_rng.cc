/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace cash
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedWorks)
{
    Rng r(0);
    std::set<std::uint64_t> values;
    for (int i = 0; i < 64; ++i)
        values.insert(r.next());
    EXPECT_GT(values.size(), 60u); // not stuck
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextBounded(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BoolProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.nextBool(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
    EXPECT_FALSE(Rng(1).nextBool(0.0));
    EXPECT_TRUE(Rng(1).nextBool(1.0));
}

TEST(Rng, GaussianMoments)
{
    Rng r(17);
    double sum = 0, sum2 = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double g = r.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng r(19);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.nextExponential(0.25);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, GeometricMean)
{
    Rng r(23);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.nextGeometric(0.5));
    EXPECT_NEAR(sum / n, 1.0, 0.05); // E = p/(1-p) = 1
}

TEST(Rng, ForkIndependence)
{
    Rng parent(31);
    Rng child = parent.fork();
    // Child stream should not mirror the parent stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 3);
}

/** Bounded draws are roughly uniform across a sweep of bounds. */
class RngBoundsTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundsTest, RoughlyUniform)
{
    std::uint64_t bound = GetParam();
    Rng r(bound * 977 + 5);
    std::vector<int> counts(bound, 0);
    const int draws = 4000 * static_cast<int>(bound);
    for (int i = 0; i < draws; ++i)
        ++counts[r.nextBounded(bound)];
    double expect = static_cast<double>(draws) / bound;
    for (std::uint64_t v = 0; v < bound; ++v)
        EXPECT_NEAR(counts[v], expect, expect * 0.15)
            << "bucket " << v << " bound " << bound;
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundsTest,
                         ::testing::Values(2, 3, 5, 8, 13));

} // namespace
} // namespace cash
