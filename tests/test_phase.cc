/**
 * @file
 * Direct tests of phase-boundary behaviour in the synthetic
 * workload layer: when PhasedTraceSource transitions between
 * phases, how laps are counted, and how the fast-forward skip()
 * contract reports boundaries without performing the transition.
 */

#include <gtest/gtest.h>

#include "workload/phase.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

std::vector<PhaseParams>
threePhases(InstCount len = 1'000)
{
    std::vector<PhaseParams> ps(3);
    ps[0].name = "a";
    ps[1].name = "b";
    ps[2].name = "c";
    for (std::size_t i = 0; i < ps.size(); ++i) {
        ps[i].lengthInsts = len;
        ps[i].dataBase = static_cast<Addr>(i) * 64 * miB;
    }
    return ps;
}

/** Drain n instructions through next(), returning how many came. */
InstCount
drain(InstSource &src, InstCount n)
{
    InstCount got = 0;
    Cycle now = 0;
    while (got < n) {
        FetchResult fr = src.next(now++);
        if (fr.kind == FetchResult::Kind::Finished)
            break;
        if (fr.kind == FetchResult::Kind::Inst)
            ++got;
    }
    return got;
}

TEST(PhaseBoundary, NextTransitionsAtLengthInsts)
{
    PhasedTraceSource src(threePhases(1'000), 5, true, 0);
    EXPECT_EQ(src.currentPhase(), 0u);
    drain(src, 1'000);
    // The transition is lazy: it happens when the next instruction
    // past the boundary is generated.
    drain(src, 1);
    EXPECT_EQ(src.currentPhase(), 1u);
    drain(src, 1'000);
    EXPECT_EQ(src.currentPhase(), 2u);
    EXPECT_EQ(src.laps(), 0u);
    // Finishing phase c wraps back to a and counts a lap.
    drain(src, 1'000);
    EXPECT_EQ(src.currentPhase(), 0u);
    EXPECT_EQ(src.laps(), 1u);
}

TEST(PhaseBoundary, NonLoopingSourceFinishesAfterLastPhase)
{
    PhasedTraceSource src(threePhases(500), 5, false, 0);
    EXPECT_EQ(drain(src, 2'000), 1'500u);
    FetchResult fr = src.next(0);
    EXPECT_EQ(fr.kind, FetchResult::Kind::Finished);
    SkipResult sr = src.skip(100, 0, 1'000);
    EXPECT_TRUE(sr.finished);
    EXPECT_EQ(sr.skipped, 0u);
}

TEST(PhaseBoundary, SkipStopsAtBoundaryWithoutTransitioning)
{
    PhasedTraceSource src(threePhases(1'000), 5, true, 0);
    SkipResult sr = src.skip(5'000, 0, 100'000);
    // Stops exactly at the end of phase a, reports the boundary,
    // and leaves the transition for the next detailed fetch.
    EXPECT_TRUE(sr.phaseBoundary);
    EXPECT_FALSE(sr.finished);
    EXPECT_EQ(sr.skipped, 1'000u);
    EXPECT_EQ(src.currentPhase(), 0u);
    drain(src, 1);
    EXPECT_EQ(src.currentPhase(), 1u);
}

TEST(PhaseBoundary, SkipWithinPhaseReportsNoBoundary)
{
    PhasedTraceSource src(threePhases(10'000), 5, true, 0);
    SkipResult sr = src.skip(4'000, 0, 50'000);
    EXPECT_EQ(sr.skipped, 4'000u);
    EXPECT_FALSE(sr.phaseBoundary);
    EXPECT_FALSE(sr.finished);
    EXPECT_EQ(src.emitted(), 4'000u);
    EXPECT_EQ(src.currentPhase(), 0u);
}

TEST(PhaseBoundary, SinglePhaseLoopWrapsSilently)
{
    // A one-phase looping app re-enters the same stationary mix:
    // nothing changes statistically, so skip() must NOT report a
    // boundary (a sampled simulator would otherwise never
    // fast-forward such an app), but laps keep counting.
    std::vector<PhaseParams> one(1);
    one[0].lengthInsts = 1'000;
    PhasedTraceSource src(one, 9, true, 0);
    SkipResult sr = src.skip(5'500, 0, 100'000);
    EXPECT_EQ(sr.skipped, 5'500u);
    EXPECT_FALSE(sr.phaseBoundary);
    EXPECT_GE(src.laps(), 5u);
    EXPECT_EQ(src.currentPhase(), 0u);
}

TEST(PhaseBoundary, SkipHonoursTotalInstsCap)
{
    PhasedTraceSource src(threePhases(1'000), 5, true, 2'500);
    SkipResult a = src.skip(900, 0, 1'000);
    EXPECT_EQ(a.skipped, 900u);
    EXPECT_FALSE(a.finished);
    // Crosses the first boundary? No: stops AT it.
    SkipResult b = src.skip(900, 1'000, 2'000);
    EXPECT_TRUE(b.phaseBoundary);
    EXPECT_EQ(b.skipped, 100u);
    // Consume the cap through detailed fetches + skip; the source
    // must finish at exactly totalInsts.
    drain(src, 1);
    SkipResult c{};
    for (int i = 0; i < 10 && !c.finished; ++i) {
        c = src.skip(10'000, 2'000, 50'000);
        if (c.phaseBoundary)
            drain(src, 1);
    }
    EXPECT_TRUE(c.finished);
    EXPECT_EQ(src.emitted(), 2'500u);
    EXPECT_EQ(src.next(50'000).kind, FetchResult::Kind::Finished);
}

TEST(PhaseBoundary, PacedSkipClampsToArrivedWork)
{
    std::vector<PhaseParams> one(1);
    one[0].lengthInsts = 100'000;
    PhasedTraceSource inner(one, 13, true, 0);
    PacedSource paced(inner, 0.5, 1'000);
    // By cycle 10'000 only ~5'000 instructions of work exist; a
    // skip asking for far more gets the backlog, and the shortfall
    // carries NO phase-boundary flag (it is pacing, not a phase).
    SkipResult sr = paced.skip(50'000, 0, 10'000);
    EXPECT_GT(sr.skipped, 0u);
    EXPECT_LE(sr.skipped, 7'000u);
    EXPECT_FALSE(sr.phaseBoundary);
    EXPECT_FALSE(sr.finished);
}

TEST(PhaseBoundary, CappedSkipFinishesAtCap)
{
    std::vector<PhaseParams> one(1);
    one[0].lengthInsts = 100'000;
    PhasedTraceSource inner(one, 13, true, 0);
    CappedSource capped(inner, 3'000);
    SkipResult sr = capped.skip(10'000, 0, 100'000);
    EXPECT_EQ(sr.skipped, 3'000u);
    EXPECT_TRUE(sr.finished);
}

} // namespace
} // namespace cash
