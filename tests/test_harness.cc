/**
 * @file
 * Tests for the ExperimentEngine layer: deterministic collection,
 * exception propagation, reporting, and the headline determinism
 * regression — one Fig-7-style cell set run with 1 thread and with
 * N threads must produce bit-identical RunOutput stats and series.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/log.hh"
#include "harness/eval_grid.hh"
#include "harness/experiment_engine.hh"

namespace cash
{
namespace
{

TEST(ExperimentEngine, MapCollectsInIndexOrder)
{
    harness::ExperimentEngine engine(4);
    std::vector<std::uint64_t> out = engine.map<std::uint64_t>(
        100, [](std::size_t i) { return Rng(i).next(); });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], Rng(i).next());
}

TEST(ExperimentEngine, PropagatesFirstExceptionInDeclarationOrder)
{
    harness::ExperimentEngine engine(4);
    std::vector<harness::Cell> cells;
    for (std::size_t i = 0; i < 16; ++i) {
        cells.push_back({{"test", "throws", i, 0}, [i] {
            // Two cells throw; the one declared first must win no
            // matter which thread reaches it first.
            if (i == 3)
                fatal("cell three failed");
            if (i == 11)
                fatal("cell eleven failed");
        }});
    }
    try {
        engine.run(std::move(cells));
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "cell three failed");
    }
}

TEST(ExperimentEngine, ReportRecordsEveryCell)
{
    harness::ExperimentEngine engine(2);
    EXPECT_EQ(engine.threads(), 2u);
    engine.map<int>(7, [](std::size_t i) {
        return static_cast<int>(i);
    });
    engine.map<int>(5, [](std::size_t i) {
        return static_cast<int>(i);
    });
    EXPECT_EQ(engine.report().cells.size(), 12u);
    EXPECT_EQ(engine.report().threads, 2u);
    for (const harness::CellTiming &t : engine.report().cells)
        EXPECT_GE(t.millis, 0.0);
}

TEST(ExperimentEngine, JsonSummaryListsCells)
{
    harness::ExperimentEngine engine(1);
    engine.map<int>(
        3, [](std::size_t i) { return static_cast<int>(i); },
        [](std::size_t i) {
            return harness::CellKey{"subj", "var\"iant", i, 9};
        });
    std::string json = engine.jsonSummary("mybench");
    EXPECT_NE(json.find("\"bench\":\"mybench\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\":1"), std::string::npos);
    EXPECT_NE(json.find("\"subject\":\"subj\""), std::string::npos);
    EXPECT_NE(json.find("var\\\"iant"), std::string::npos);
    EXPECT_NE(json.find("\"seed\":9"), std::string::npos);
}

TEST(ExperimentEngine, WritesJsonSummaryNextToCsv)
{
    std::string dir = ::testing::TempDir();
    ASSERT_EQ(setenv("CASH_BENCH_CSV", dir.c_str(), 1), 0);
    {
        harness::ExperimentEngine engine(1);
        engine.map<int>(2, [](std::size_t i) {
            return static_cast<int>(i);
        });
        engine.writeJsonSummary("enginetest");
    }
    unsetenv("CASH_BENCH_CSV");
    std::ifstream file(dir + "/enginetest_engine.json");
    ASSERT_TRUE(file.is_open());
    std::string content((std::istreambuf_iterator<char>(file)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("\"bench\":\"enginetest\""),
              std::string::npos);
    EXPECT_NE(content.find("\"cells\":["), std::string::npos);
}

// ---- Determinism regression (Fig-7-style cells) ----

AppModel
phasedApp()
{
    AppModel a;
    a.name = "toy";
    a.seed = 3;
    PhaseParams fast;
    fast.name = "compute";
    fast.ilpMeanDist = 30;
    fast.memFrac = 0.15;
    fast.workingSet = 64 * kiB;
    fast.seqFrac = 0.7;
    fast.lengthInsts = 400'000;
    PhaseParams slow;
    slow.name = "memory";
    slow.ilpMeanDist = 3;
    slow.memFrac = 0.45;
    slow.workingSet = 512 * kiB;
    slow.seqFrac = 0.1;
    slow.lengthInsts = 400'000;
    slow.dataBase = 64 * miB;
    a.phases = {fast, slow};
    return a;
}

std::vector<harness::EvalResult>
runFig7Cells(std::size_t threads)
{
    ConfigSpace space(4, 8); // 4 slices x 4 bank steps = 16
    CostModel cost;
    ExperimentParams ep;
    ep.horizon = 6'000'000;
    ep.quantum = 500'000;
    ep.phaseScale = 2.0;
    AppModel app = harness::prepareApp(phasedApp(), ep);

    ProfileParams pp;
    pp.warmupInsts = 5'000;
    pp.measureInsts = 10'000;

    harness::ExperimentEngine engine(threads);
    std::vector<harness::EvalSpec> specs;
    for (PolicyKind k : {PolicyKind::Oracle, PolicyKind::ConvexOpt,
                         PolicyKind::RaceToIdle, PolicyKind::Cash})
        specs.push_back({"", app, k, &space, ep});
    return harness::runEvalGrid(engine, specs, cost, pp);
}

TEST(Determinism, ThreadCountDoesNotChangeResults)
{
    std::vector<harness::EvalResult> serial = runFig7Cells(1);
    std::vector<harness::EvalResult> parallel = runFig7Cells(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const harness::EvalResult &a = serial[i];
        const harness::EvalResult &b = parallel[i];
        SCOPED_TRACE(a.label);
        EXPECT_EQ(a.appName, b.appName);
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.out.policy, b.out.policy);

        // Characterization: bit-identical profiles.
        ASSERT_EQ(a.profile.phasePerf.size(),
                  b.profile.phasePerf.size());
        for (std::size_t ph = 0; ph < a.profile.phasePerf.size();
             ++ph)
            EXPECT_EQ(a.profile.phasePerf[ph],
                      b.profile.phasePerf[ph]);
        EXPECT_EQ(a.profile.qosTarget, b.profile.qosTarget);

        // Run stats: bit-identical (== on doubles, no tolerance).
        EXPECT_EQ(a.out.stats.cost, b.out.stats.cost);
        EXPECT_EQ(a.out.stats.cycles, b.out.stats.cycles);
        EXPECT_EQ(a.out.stats.busyCycles, b.out.stats.busyCycles);
        EXPECT_EQ(a.out.stats.samples, b.out.stats.samples);
        EXPECT_EQ(a.out.stats.violations, b.out.stats.violations);
        EXPECT_EQ(a.out.stats.qosSum, b.out.stats.qosSum);
        EXPECT_EQ(a.out.stats.reconfigs, b.out.stats.reconfigs);
        EXPECT_EQ(a.out.qosTarget, b.out.qosTarget);
        EXPECT_EQ(a.costRate, b.costRate);

        // Full time series: bit-identical point by point.
        ASSERT_EQ(a.out.series.size(), b.out.series.size());
        for (std::size_t p = 0; p < a.out.series.size(); ++p) {
            EXPECT_EQ(a.out.series[p].cycle, b.out.series[p].cycle);
            EXPECT_EQ(a.out.series[p].costRate,
                      b.out.series[p].costRate);
            EXPECT_EQ(a.out.series[p].qos, b.out.series[p].qos);
            EXPECT_EQ(a.out.series[p].config,
                      b.out.series[p].config);
        }
    }
}

} // namespace
} // namespace cash
