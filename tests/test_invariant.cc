/**
 * @file
 * Tests for the invariant-checking subsystem itself: the macro and
 * error machinery, the always-on cross-layer auditors, and — in
 * CASH_CHECK_INVARIANTS builds — the mutation test that each
 * deliberately injected conservation bug is actually caught.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/audit.hh"
#include "check/invariant.hh"
#include "common/log.hh"
#include "sim/ssim.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

/** Re-arm Fault::None even when a test fails mid-way. */
struct FaultGuard
{
    explicit FaultGuard(Fault f) { setInjectedFault(f); }
    ~FaultGuard() { setInjectedFault(Fault::None); }
};

TEST(Invariant, AuditThrowsWithContext)
{
    try {
        CASH_AUDIT(1 + 1 == 3, "math broke: %d", 42);
        FAIL() << "CASH_AUDIT(false) must throw";
    } catch (const InvariantError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("1 + 1 == 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("math broke: 42"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("test_invariant.cc"), std::string::npos)
            << msg;
    }
}

TEST(Invariant, AuditPassesSilently)
{
    EXPECT_NO_THROW(CASH_AUDIT(2 + 2 == 4, "unused"));
}

TEST(Invariant, MacroCompiledOutWhenDisabled)
{
    // CASH_INVARIANT must be free when the option is off — in
    // particular its arguments must not be evaluated.
    int evals = 0;
    auto touch = [&evals]() {
        ++evals;
        return true;
    };
    (void)touch; // referenced only when the macro is live
    CASH_INVARIANT(touch(), "eval counter %d", evals);
    if (invariantsEnabled)
        EXPECT_EQ(evals, 1);
    else
        EXPECT_EQ(evals, 0);
}

TEST(Invariant, FaultNamesRoundTrip)
{
    for (Fault f : {Fault::None, Fault::AllocatorLeakSlice,
                    Fault::L2FlushUndercount,
                    Fault::RenameDropFlush})
        EXPECT_EQ(faultFromName(faultName(f)), f);
    EXPECT_THROW(faultFromName("no-such-fault"), FatalError);
}

TEST(Invariant, InjectedFaultIsSticky)
{
    FaultGuard guard(Fault::AllocatorLeakSlice);
    EXPECT_EQ(injectedFault(), Fault::AllocatorLeakSlice);
    setInjectedFault(Fault::None);
    EXPECT_EQ(injectedFault(), Fault::None);
}

PhaseParams
dirtyPhase()
{
    PhaseParams p;
    p.name = "dirty";
    p.memFrac = 0.45;
    p.storeFrac = 0.6;
    p.workingSet = 256 * kiB;
    p.lengthInsts = 50'000;
    return p;
}

TEST(Audit, HealthyAllocatorPasses)
{
    FabricGrid grid;
    FabricAllocator alloc(grid);
    auto a = alloc.allocate(4, 8);
    auto b = alloc.allocate(2, 4);
    ASSERT_TRUE(a && b);
    EXPECT_NO_THROW(auditAllocator(alloc));
    alloc.resize(a->id, 6, 2);
    alloc.release(b->id);
    alloc.compact();
    EXPECT_NO_THROW(auditAllocator(alloc));
}

TEST(Audit, HealthySimPasses)
{
    SSim sim;
    auto id = *sim.createVCore(2, 4);
    PhasedTraceSource src({dirtyPhase()}, 17, true);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(100'000);
    sim.command(id, 3, 2);
    sim.vcore(id).runUntil(sim.vcore(id).now() + 50'000);
    EXPECT_NO_THROW(auditSim(sim, {id}));
}

// ---------------------------------------------------------------
// Mutation tests: arm each deliberate bug and require the checker
// to catch it. The fault points only exist in CASH_CHECK_INVARIANTS
// builds, so plain builds skip.
// ---------------------------------------------------------------

TEST(Mutation, AllocatorLeakIsCaught)
{
    if (!invariantsEnabled)
        GTEST_SKIP() << "needs -DCASH_CHECK_INVARIANTS=ON";
    FabricGrid grid;
    FabricAllocator alloc(grid);
    auto a = alloc.allocate(4, 4);
    ASSERT_TRUE(a.has_value());
    FaultGuard guard(Fault::AllocatorLeakSlice);
    EXPECT_THROW(alloc.release(a->id), InvariantError);
}

TEST(Mutation, L2FlushUndercountIsCaught)
{
    if (!invariantsEnabled)
        GTEST_SKIP() << "needs -DCASH_CHECK_INVARIANTS=ON";
    SSim sim;
    auto id = *sim.createVCore(2, 8);
    PhasedTraceSource src({dirtyPhase()}, 23, true);
    sim.vcore(id).bindSource(&src);
    // Run long enough that a bank shrink has dirty lines to flush;
    // the armed fault halves the reported flush bill, which the
    // dirty-byte accounting invariant must notice.
    sim.vcore(id).runUntil(400'000);
    FaultGuard guard(Fault::L2FlushUndercount);
    EXPECT_THROW(sim.command(id, 2, 1), InvariantError);
}

TEST(Mutation, RenameDropFlushIsCaught)
{
    if (!invariantsEnabled)
        GTEST_SKIP() << "needs -DCASH_CHECK_INVARIANTS=ON";
    SSim sim;
    auto id = *sim.createVCore(4, 2);
    PhasedTraceSource src({dirtyPhase()}, 29, true);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(100'000);
    FaultGuard guard(Fault::RenameDropFlush);
    EXPECT_THROW(sim.command(id, 1, 2), InvariantError);
}

} // namespace
} // namespace cash
