/**
 * @file
 * Unit and property tests for statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace cash
{
namespace
{

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleVarianceZero)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.min(), 3.5);
    EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeMatchesSequential)
{
    Rng r(5);
    RunningStat whole, a, b;
    for (int i = 0; i < 500; ++i) {
        double v = r.nextGaussian() * 3 + 1;
        whole.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    RunningStat before = a;
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), before.mean());
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStat, Reset)
{
    RunningStat s;
    s.add(10);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(Histogram, Basics)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1);   // underflow
    h.add(0.0);  // bucket 0
    h.add(5.5);  // bucket 5
    h.add(9.99); // bucket 9
    h.add(10.0); // overflow (exclusive upper bound)
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.bucketCount(1), 0u);
}

TEST(Histogram, BadRangeRejected)
{
    EXPECT_THROW(Histogram(5.0, 5.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Histogram, QuantileMonotone)
{
    Histogram h(0.0, 100.0, 50);
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        h.add(r.nextDouble() * 100.0);
    double q25 = h.quantile(0.25);
    double q50 = h.quantile(0.50);
    double q75 = h.quantile(0.75);
    EXPECT_LE(q25, q50);
    EXPECT_LE(q50, q75);
    EXPECT_NEAR(q50, 50.0, 5.0);
}

TEST(Geomean, KnownValue)
{
    EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, RejectsBadInput)
{
    EXPECT_THROW(geomean({}), FatalError);
    EXPECT_THROW(geomean({1.0, 0.0}), FatalError);
    EXPECT_THROW(geomean({1.0, -2.0}), FatalError);
}

TEST(Mean, Works)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_THROW(mean({}), FatalError);
}

/** Welford matches the naive two-pass computation across scales. */
class StatScaleTest : public ::testing::TestWithParam<double>
{
};

TEST_P(StatScaleTest, MatchesTwoPass)
{
    double scale = GetParam();
    Rng r(static_cast<std::uint64_t>(scale) + 71);
    std::vector<double> xs;
    RunningStat s;
    for (int i = 0; i < 2000; ++i) {
        double v = (r.nextDouble() - 0.5) * scale;
        xs.push_back(v);
        s.add(v);
    }
    double m = 0;
    for (double v : xs)
        m += v;
    m /= xs.size();
    double var = 0;
    for (double v : xs)
        var += (v - m) * (v - m);
    var /= xs.size();
    EXPECT_NEAR(s.mean(), m, std::abs(m) * 1e-9 + 1e-9);
    EXPECT_NEAR(s.variance(), var, var * 1e-9 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, StatScaleTest,
                         ::testing::Values(1e-6, 1.0, 1e6, 1e12));

} // namespace
} // namespace cash
