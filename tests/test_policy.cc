/**
 * @file
 * Tests for the baseline resource-allocation policies.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "baselines/policy.hh"
#include "baselines/profile.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

ConfigSpace &
space()
{
    static ConfigSpace s(4, 16);
    return s;
}

CostModel &
cost()
{
    static CostModel c;
    return c;
}

AppModel
toyApp()
{
    AppModel a;
    a.name = "toy";
    a.seed = 3;
    PhaseParams fast;
    fast.name = "compute";
    fast.ilpMeanDist = 30;
    fast.memFrac = 0.15;
    fast.workingSet = 64 * kiB;
    fast.seqFrac = 0.7;
    fast.lengthInsts = 600'000;
    PhaseParams slow;
    slow.name = "memory";
    slow.ilpMeanDist = 3;
    slow.memFrac = 0.45;
    slow.workingSet = 1 * miB;
    slow.seqFrac = 0.1;
    slow.lengthInsts = 600'000;
    slow.dataBase = 64 * miB;
    a.phases = {fast, slow};
    return a;
}

const AppProfile &
profile()
{
    static AppProfile prof = [] {
        ProfileParams pp;
        pp.warmupInsts = 10'000;
        pp.measureInsts = 20'000;
        return characterize(toyApp(), space(), FabricParams{},
                            SimParams{}, pp);
    }();
    return prof;
}

struct Rig
{
    Rig()
        : sim(),
          id(*sim.createVCore(1, 1)),
          inner(toyApp().phases, 3, true, 0),
          paced(inner, profile().qosTarget)
    {
        sim.vcore(id).bindSource(&paced);
    }

    SSim sim;
    VCoreId id;
    PhasedTraceSource inner;
    PacedSource paced;
};

TEST(Policy, OracleFollowsProfile)
{
    Rig rig;
    OraclePolicy oracle(rig.sim, rig.id, QosKind::Throughput,
                        profile().qosTarget, space(), cost(),
                        200'000, 0.05, profile(), &rig.inner,
                        nullptr);
    oracle.run(8'000'000);
    ASSERT_GT(oracle.stats().samples, 10u);
    // The oracle should rarely violate and keep QoS near or above
    // target.
    EXPECT_LT(oracle.stats().violationPct(), 25.0);
    EXPECT_GT(oracle.stats().meanQos(), 0.9);
    // It reconfigures only at phase boundaries: far fewer times
    // than quanta.
    EXPECT_LT(oracle.stats().reconfigs,
              oracle.stats().samples / 2);
}

TEST(Policy, OracleNeedsPhaseSource)
{
    Rig rig;
    EXPECT_THROW(OraclePolicy(rig.sim, rig.id, QosKind::Throughput,
                              1.0, space(), cost(), 200'000, 0.05,
                              profile(), nullptr, nullptr),
                 FatalError);
}

TEST(Policy, RaceToIdleHoldsOneConfig)
{
    Rig rig;
    RaceToIdlePolicy race(rig.sim, rig.id, QosKind::Throughput,
                          profile().qosTarget, space(), cost(),
                          200'000, 0.05, profile());
    race.run(6'000'000);
    EXPECT_LE(race.stats().reconfigs, 1u);
    EXPECT_LT(race.stats().violationPct(), 25.0);
}

TEST(Policy, RaceToIdleChargesBusyOnly)
{
    // With free idling, the charged cost must be below holding the
    // same config for the whole horizon whenever there is any idle
    // time.
    Rig rig;
    RaceToIdlePolicy race(rig.sim, rig.id, QosKind::Throughput,
                          profile().qosTarget, space(), cost(),
                          200'000, 0.05, profile());
    race.run(6'000'000);
    std::size_t wc =
        profile().cheapestMeetingAll(space(), cost());
    double full = cost().cost(space().at(wc),
                              rig.sim.vcore(rig.id).now());
    EXPECT_LT(race.stats().cost, full);
    EXPECT_LT(race.stats().busyCycles, race.stats().cycles);
}

TEST(Policy, ConvexHullIsConcaveFrontier)
{
    Rig rig;
    ConvexOptPolicy convex(rig.sim, rig.id, QosKind::Throughput,
                           profile().qosTarget, space(), cost(),
                           200'000, 0.05, profile());
    const auto &hull = convex.hull();
    ASSERT_GE(hull.size(), 1u);
    // Hull points are sorted by cost and performance.
    for (std::size_t i = 0; i + 1 < hull.size(); ++i) {
        EXPECT_LT(cost().ratePerHour(space().at(hull[i])),
                  cost().ratePerHour(space().at(hull[i + 1])));
        EXPECT_LT(profile().averagePerf(hull[i]),
                  profile().averagePerf(hull[i + 1]));
    }
    // Concavity: marginal perf per dollar is non-increasing.
    for (std::size_t i = 0; i + 2 < hull.size(); ++i) {
        double c0 = cost().ratePerHour(space().at(hull[i]));
        double c1 = cost().ratePerHour(space().at(hull[i + 1]));
        double c2 = cost().ratePerHour(space().at(hull[i + 2]));
        double p0 = profile().averagePerf(hull[i]);
        double p1 = profile().averagePerf(hull[i + 1]);
        double p2 = profile().averagePerf(hull[i + 2]);
        double slope01 = (p1 - p0) / (c1 - c0);
        double slope12 = (p2 - p1) / (c2 - c1);
        EXPECT_GE(slope01, slope12 - 1e-9);
    }
}

TEST(Policy, ConvexRunsAndTracks)
{
    Rig rig;
    ConvexOptPolicy convex(rig.sim, rig.id, QosKind::Throughput,
                           profile().qosTarget, space(), cost(),
                           200'000, 0.05, profile());
    convex.run(8'000'000);
    ASSERT_GT(convex.stats().samples, 10u);
    EXPECT_GT(convex.stats().meanQos(), 0.7);
}

TEST(Policy, CashPolicyAdapterAggregates)
{
    Rig rig;
    RuntimeParams rp;
    rp.quantum = 200'000;
    CashPolicy cash(rig.sim, rig.id, QosKind::Throughput,
                    profile().qosTarget, space(), cost(), rp, 11);
    cash.run(6'000'000);
    EXPECT_GT(cash.stats().samples, 10u);
    EXPECT_GT(cash.stats().cost, 0.0);
    EXPECT_FALSE(cash.series().empty());
    EXPECT_EQ(cash.name(), "CASH");
}

TEST(Policy, SeriesRecorded)
{
    Rig rig;
    OraclePolicy oracle(rig.sim, rig.id, QosKind::Throughput,
                        profile().qosTarget, space(), cost(),
                        200'000, 0.05, profile(), &rig.inner,
                        nullptr);
    oracle.run(3'000'000);
    ASSERT_GT(oracle.series().size(), 5u);
    Cycle prev = 0;
    for (const SeriesPoint &pt : oracle.series()) {
        EXPECT_GT(pt.cycle, prev); // monotone time
        prev = pt.cycle;
        EXPECT_GE(pt.costRate, 0.0);
        EXPECT_LT(pt.config, space().size());
    }
}

TEST(Policy, StatsArithmetic)
{
    PolicyStats s;
    EXPECT_EQ(s.meanQos(), 0.0);
    EXPECT_EQ(s.violationPct(), 0.0);
    s.samples = 4;
    s.violations = 1;
    s.qosSum = 4.4;
    EXPECT_NEAR(s.meanQos(), 1.1, 1e-12);
    EXPECT_NEAR(s.violationPct(), 25.0, 1e-12);
}

} // namespace
} // namespace cash
