/**
 * @file
 * Tests for the logging helpers.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

namespace cash
{
namespace
{

TEST(Log, FatalThrowsWithMessage)
{
    try {
        fatal("bad config: %d > %d", 5, 3);
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad config: 5 > 3");
    }
}

TEST(Log, StrFmt)
{
    EXPECT_EQ(strfmt("%s-%03d", "x", 7), "x-007");
    EXPECT_EQ(strfmt("no args"), "no args");
}

TEST(Log, LevelRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    warn("this warning must be suppressed");
    inform("this info must be suppressed");
    setLogLevel(before);
}

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant %d violated", 9),
                 "invariant 9 violated");
}

} // namespace
} // namespace cash
