/**
 * @file
 * Tests for the banked, reconfigurable L2.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "fabric/grid.hh"
#include "sim/l2system.hh"
#include "sim/params.hh"

namespace cash
{
namespace
{

FabricGrid &
grid()
{
    static FabricGrid g;
    return g;
}

std::vector<BankId>
banks(std::uint32_t n)
{
    std::vector<BankId> v(n);
    for (std::uint32_t i = 0; i < n; ++i)
        v[i] = i;
    return v;
}

TEST(L2, NoBanksGoesToMemory)
{
    L2System l2(grid(), CacheParams{}, {});
    L2Access a = l2.access(0, 0x1000, false);
    EXPECT_FALSE(a.hit);
    EXPECT_EQ(a.latency, CacheParams{}.memLat);
    EXPECT_EQ(a.bank, invalidBank);
}

TEST(L2, MissThenHit)
{
    L2System l2(grid(), CacheParams{}, banks(4));
    EXPECT_FALSE(l2.access(0, 0x4000, false).hit);
    L2Access hit = l2.access(0, 0x4000, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.bank, l2.bankFor(0x4000));
}

TEST(L2, HitLatencyFollowsDistanceFormula)
{
    CacheParams cp;
    L2System l2(grid(), cp, banks(4));
    for (Addr a = 0; a < 64 * 1024; a += 4096) {
        BankId bank = l2.bankFor(a);
        std::uint32_t dist = grid().sliceToBankDistance(0, bank);
        EXPECT_EQ(l2.hitLatency(0, a),
                  dist * cp.l2DistFactor + cp.l2BaseLat);
    }
}

TEST(L2, MoreBanksReachFarther)
{
    CacheParams cp;
    L2System small(grid(), cp, banks(1));
    L2System large(grid(), cp, banks(128));
    double mean_small = 0, mean_large = 0;
    const int n = 256;
    for (int i = 0; i < n; ++i) {
        Addr a = static_cast<Addr>(i) * 8192;
        mean_small += small.hitLatency(0, a);
        mean_large += large.hitLatency(0, a);
    }
    // The paper's non-convexity source: larger L2s cost more
    // cycles per hit.
    EXPECT_LT(mean_small / n + 2.0, mean_large / n);
}

TEST(L2, AddressMappingIsStable)
{
    L2System l2(grid(), CacheParams{}, banks(8));
    for (Addr a = 0; a < 1 << 20; a += 65537)
        EXPECT_EQ(l2.bankFor(a), l2.bankFor(a));
}

TEST(L2, MappingUsesAllBanks)
{
    L2System l2(grid(), CacheParams{}, banks(8));
    std::set<BankId> seen;
    for (Addr a = 0; a < 1 << 20; a += 4096)
        seen.insert(l2.bankFor(a));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(L2, ShrinkFlushesRemovedBanksOnly)
{
    CacheParams cp;
    L2System l2(grid(), cp, banks(4));
    Rng r(3);
    // Dirty a bunch of lines.
    for (int i = 0; i < 2000; ++i)
        l2.access(0, r.nextBounded(1 << 20) & ~7ull, true);
    std::uint64_t dirty_before = l2.dirtyLines();
    ASSERT_GT(dirty_before, 0u);

    L2ReconfigCost cost = l2.reconfigure(banks(2));
    EXPECT_EQ(l2.numBanks(), 2u);
    EXPECT_GT(cost.dirtyLinesFlushed, 0u);
    EXPECT_LE(cost.dirtyLinesFlushed, dirty_before);
    // Survivor banks keep their dirty contents.
    EXPECT_EQ(l2.dirtyLines(),
              dirty_before - cost.dirtyLinesFlushed);
    // Flush cycles follow the paper's (bytes / network width) rule.
    EXPECT_EQ(cost.flushCycles,
              cost.dirtyLinesFlushed * cp.blockSize
                  / cp.flushNetBytes);
}

TEST(L2, WorstCaseBankFlushIs8000Cycles)
{
    // Paper Sec VI-A: a fully dirty 64KB bank over a 64-bit network
    // takes 64KB/8B = 8000 cycles to flush.
    CacheParams cp;
    L2System l2(grid(), cp, banks(1));
    for (Addr a = 0; a < cp.l2BankSize; a += cp.blockSize)
        l2.access(0, a, true);
    ASSERT_EQ(l2.dirtyLines(), cp.l2BankSize / cp.blockSize);
    L2ReconfigCost cost = l2.reconfigure({});
    // 64 KiB / 8 B = 8192 cycles; the paper's prose rounds this to
    // "8000 cycles" (decimal KB arithmetic).
    EXPECT_EQ(cost.flushCycles, 8192u);
}

TEST(L2, SurvivorDataStillHitsAfterShrink)
{
    L2System l2(grid(), CacheParams{}, banks(4));
    // Fill some addresses, find ones owned by surviving banks.
    std::vector<Addr> addrs;
    // Stride coprime to the set count so lines spread over sets.
    for (Addr a = 0; a < 1 << 19; a += 4288) {
        l2.access(0, a, false);
        addrs.push_back(a);
    }
    l2.reconfigure(banks(2));
    std::uint64_t hits = 0, survivors = 0;
    for (Addr a : addrs) {
        // Only addresses whose entry still points at its old bank
        // are guaranteed resident.
        if (l2.bankFor(a) <= 1) {
            ++survivors;
            hits += l2.access(0, a, false).hit;
        }
    }
    ASSERT_GT(survivors, 0u);
    // The vast majority of survivor-mapped addresses should hit
    // (those that kept their entry).
    EXPECT_GT(static_cast<double>(hits) / survivors, 0.45);
}

TEST(L2, ExpandRedistributesEntries)
{
    L2System l2(grid(), CacheParams{}, banks(2));
    l2.reconfigure(banks(8));
    std::set<BankId> seen;
    for (Addr a = 0; a < 1 << 20; a += 4096)
        seen.insert(l2.bankFor(a));
    EXPECT_GE(seen.size(), 7u); // all (or nearly all) banks used
}

TEST(L2, DuplicateBanksRejected)
{
    L2System l2(grid(), CacheParams{}, banks(2));
    EXPECT_THROW(l2.reconfigure({3, 3}), FatalError);
}

TEST(L2, ReconfigureToSameSetIsFree)
{
    L2System l2(grid(), CacheParams{}, banks(4));
    Rng r(5);
    for (int i = 0; i < 500; ++i)
        l2.access(0, r.nextBounded(1 << 19), true);
    L2ReconfigCost cost = l2.reconfigure(banks(4));
    EXPECT_EQ(cost.dirtyLinesFlushed, 0u);
    EXPECT_EQ(cost.flushCycles, 0u);
    EXPECT_EQ(cost.linesInvalidated, 0u);
}

/** Capacity scaling: hit rate on a fixed working set improves with
 *  bank count until the set fits. */
class L2CapacityTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(L2CapacityTest, HitRateMonotoneUntilFit)
{
    std::uint32_t nbanks = GetParam();
    CacheParams cp;
    L2System l2(grid(), cp, banks(nbanks));
    const Addr ws = 512 * 1024; // 8 banks worth
    Rng r(nbanks);
    // Two passes; measure second.
    for (Addr a = 0; a < ws; a += 64)
        l2.access(0, a, false);
    std::uint64_t m0 = l2.misses();
    std::uint64_t a0 = l2.accesses();
    for (Addr a = 0; a < ws; a += 64)
        l2.access(0, a, false);
    double miss_rate = static_cast<double>(l2.misses() - m0)
        / static_cast<double>(l2.accesses() - a0);
    std::uint64_t capacity =
        static_cast<std::uint64_t>(nbanks) * cp.l2BankSize;
    if (capacity >= 2 * ws) {
        EXPECT_LT(miss_rate, 0.05) << nbanks << " banks";
    } else if (capacity <= ws / 2) {
        EXPECT_GT(miss_rate, 0.5) << nbanks << " banks";
    } // boundary cases (capacity ~ ws) depend on hash balance
}

INSTANTIATE_TEST_SUITE_P(BankCounts, L2CapacityTest,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace cash
