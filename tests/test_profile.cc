/**
 * @file
 * Tests for the brute-force characterization machinery (Sec V-C).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "baselines/profile.hh"

namespace cash
{
namespace
{

/** A small config space keeps characterization fast in tests. */
ConfigSpace
smallSpace()
{
    return ConfigSpace(4, 16); // 4 slices x 5 bank steps = 20
}

AppModel
twoPhaseApp()
{
    AppModel a;
    a.name = "toy";
    a.seed = 3;
    PhaseParams fast;
    fast.name = "compute";
    fast.ilpMeanDist = 30;
    fast.memFrac = 0.15;
    fast.workingSet = 64 * kiB;
    fast.seqFrac = 0.7;
    fast.lengthInsts = 200'000;
    PhaseParams slow;
    slow.name = "memory";
    slow.ilpMeanDist = 3;
    slow.memFrac = 0.45;
    slow.workingSet = 512 * kiB;
    slow.seqFrac = 0.1;
    slow.lengthInsts = 200'000;
    slow.dataBase = 64 * miB;
    a.phases = {fast, slow};
    return a;
}

ProfileParams
fastParams()
{
    ProfileParams p;
    p.warmupInsts = 10'000;
    p.measureInsts = 20'000;
    p.requestWindow = 800'000;
    p.rateBins = 3;
    return p;
}

TEST(Profile, ShapesAndPositivity)
{
    ConfigSpace space = smallSpace();
    AppModel app = twoPhaseApp();
    AppProfile prof = characterize(app, space, FabricParams{},
                                   SimParams{}, fastParams());
    ASSERT_EQ(prof.phasePerf.size(), 2u);
    for (const auto &row : prof.phasePerf) {
        ASSERT_EQ(row.size(), space.size());
        for (double v : row)
            EXPECT_GT(v, 0.0);
    }
    EXPECT_GT(prof.qosTarget, 0.0);
}

TEST(Profile, TargetIsFeasibleSomewhere)
{
    ConfigSpace space = smallSpace();
    AppProfile prof = characterize(twoPhaseApp(), space,
                                   FabricParams{}, SimParams{},
                                   fastParams());
    // Some config must meet the target in every phase (that is how
    // the target was derived, modulo the margin).
    bool feasible = false;
    for (std::size_t k = 0; k < space.size() && !feasible; ++k) {
        bool all = true;
        for (std::size_t ph = 0; ph < prof.regions(); ++ph)
            all = all && prof.meets(ph, k);
        feasible = all;
    }
    EXPECT_TRUE(feasible);
}

TEST(Profile, CheapestMeetingIsCheapestAndFeasible)
{
    ConfigSpace space = smallSpace();
    CostModel cost;
    AppProfile prof = characterize(twoPhaseApp(), space,
                                   FabricParams{}, SimParams{},
                                   fastParams());
    for (std::size_t ph = 0; ph < prof.regions(); ++ph) {
        std::size_t pick = prof.cheapestMeeting(ph, space, cost);
        if (prof.meets(ph, pick)) {
            double rate = cost.ratePerHour(space.at(pick));
            for (std::size_t k = 0; k < space.size(); ++k) {
                if (prof.meets(ph, k)) {
                    EXPECT_LE(rate,
                              cost.ratePerHour(space.at(k)) + 1e-12);
                }
            }
        }
    }
}

TEST(Profile, WorstCaseIsMinOverPhases)
{
    ConfigSpace space = smallSpace();
    AppProfile prof = characterize(twoPhaseApp(), space,
                                   FabricParams{}, SimParams{},
                                   fastParams());
    for (std::size_t k = 0; k < space.size(); ++k) {
        double wc = prof.worstCasePerf(k);
        EXPECT_LE(wc, prof.phasePerf[0][k] + 1e-12);
        EXPECT_LE(wc, prof.phasePerf[1][k] + 1e-12);
        EXPECT_TRUE(wc == prof.phasePerf[0][k]
                    || wc == prof.phasePerf[1][k]);
    }
}

TEST(Profile, CheapestMeetingAllIsFeasibleEverywhere)
{
    ConfigSpace space = smallSpace();
    CostModel cost;
    AppProfile prof = characterize(twoPhaseApp(), space,
                                   FabricParams{}, SimParams{},
                                   fastParams());
    std::size_t k = prof.cheapestMeetingAll(space, cost);
    for (std::size_t ph = 0; ph < prof.regions(); ++ph)
        EXPECT_TRUE(prof.meets(ph, k));
}

TEST(Profile, MemoryPhaseRewardsCache)
{
    ConfigSpace space = smallSpace();
    AppProfile prof = characterize(twoPhaseApp(), space,
                                   FabricParams{}, SimParams{},
                                   fastParams());
    // Phase 1 (512 KB working set): 16 banks (1 MB) must beat
    // 1 bank (64 KB) at equal slice count.
    std::size_t small_cfg = space.indexOf({1, 1});
    std::size_t big_cfg = space.indexOf({1, 16});
    EXPECT_GT(prof.phasePerf[1][big_cfg],
              prof.phasePerf[1][small_cfg] * 1.3);
}

TEST(Profile, ComputePhaseRewardsSlices)
{
    ConfigSpace space = smallSpace();
    AppProfile prof = characterize(twoPhaseApp(), space,
                                   FabricParams{}, SimParams{},
                                   fastParams());
    std::size_t one = space.indexOf({1, 1});
    std::size_t four = space.indexOf({4, 1});
    EXPECT_GT(prof.phasePerf[0][four],
              prof.phasePerf[0][one] * 1.5);
}

TEST(Profile, RequestCharacterization)
{
    ConfigSpace space(2, 4); // 2x3 = 6 configs, fast
    AppModel app;
    app.name = "toyreq";
    app.qosKind = QosKind::RequestLatency;
    app.seed = 9;
    app.request.baseRatePerMcycle = 15.0;
    app.request.amplitude = 0.5;
    app.request.period = 4'000'000;
    app.request.meanInstsPerRequest = 3000;
    app.request.minInstsPerRequest = 500;
    app.request.mix = twoPhaseApp().phases[0];
    AppProfile prof = characterize(app, space, FabricParams{},
                                   SimParams{}, fastParams());
    ASSERT_EQ(prof.binRates.size(), 3u);
    EXPECT_LT(prof.binRates.front(), prof.binRates.back());
    for (const auto &row : prof.binLatency)
        for (double v : row)
            EXPECT_GT(v, 0.0);
    EXPECT_GT(prof.qosTarget, 0.0);
    // Higher arrival rates cannot make the best latency better.
    double best_lo = *std::min_element(prof.binLatency[0].begin(),
                                       prof.binLatency[0].end());
    double best_hi = *std::min_element(prof.binLatency[2].begin(),
                                       prof.binLatency[2].end());
    EXPECT_LE(best_lo, best_hi * 1.25);
}

TEST(Profile, MeasurePhaseIpcDeterministic)
{
    PhaseParams p = twoPhaseApp().phases[0];
    double a = measurePhaseIpc(p, {2, 2}, FabricParams{},
                               SimParams{}, 5000, 10000, 42);
    double b = measurePhaseIpc(p, {2, 2}, FabricParams{},
                               SimParams{}, 5000, 10000, 42);
    EXPECT_DOUBLE_EQ(a, b);
}

} // namespace
} // namespace cash
