/**
 * @file
 * Tests for the set-associative cache array.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "sim/cache.hh"

namespace cash
{
namespace
{

TEST(Cache, GeometryDerivation)
{
    SetAssocCache c(16 * 1024, 64, 2);
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.blockSize(), 64u);
    EXPECT_EQ(c.assoc(), 2u);
}

TEST(Cache, BadGeometryRejected)
{
    EXPECT_THROW(SetAssocCache(1000, 64, 2), FatalError);
    EXPECT_THROW(SetAssocCache(1024, 63, 2), FatalError);
    EXPECT_THROW(SetAssocCache(1024, 64, 0), FatalError);
    EXPECT_THROW(SetAssocCache(0, 64, 2), FatalError);
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c(4096, 64, 2);
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13f, false).hit); // same block
    EXPECT_FALSE(c.access(0x140, false).hit); // next block
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2 ways, 1 set: size = 2 blocks.
    SetAssocCache c(128, 64, 2);
    c.access(0x000, false); // A
    c.access(0x040, false); // B
    c.access(0x000, false); // touch A -> B is LRU
    c.access(0x080, false); // C evicts B
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x040));
    EXPECT_TRUE(c.probe(0x080));
}

TEST(Cache, DirtyWritebackOnEvict)
{
    SetAssocCache c(128, 64, 2);
    c.access(0x000, true); // dirty A
    c.access(0x040, false);
    CacheAccess third = c.access(0x080, false); // evicts dirty A
    EXPECT_TRUE(third.writeback);
    EXPECT_EQ(third.victimBlock, 0x000u >> 6);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictNoWriteback)
{
    SetAssocCache c(128, 64, 2);
    c.access(0x000, false);
    c.access(0x040, false);
    EXPECT_FALSE(c.access(0x080, false).writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    SetAssocCache c(128, 64, 2);
    c.access(0x000, false);
    EXPECT_EQ(c.dirtyLines(), 0u);
    c.access(0x000, true);
    EXPECT_EQ(c.dirtyLines(), 1u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    SetAssocCache c(128, 64, 2);
    c.access(0x000, false);
    std::uint64_t misses = c.misses();
    EXPECT_FALSE(c.probe(0x999000));
    EXPECT_EQ(c.misses(), misses);
    EXPECT_EQ(c.accesses(), 1u);
}

TEST(Cache, InvalidateAllCountsDirty)
{
    SetAssocCache c(4096, 64, 2);
    c.access(0x000, true);
    c.access(0x040, true);
    c.access(0x080, false);
    EXPECT_EQ(c.invalidateAll(), 2u);
    EXPECT_EQ(c.validLines(), 0u);
    EXPECT_FALSE(c.probe(0x000));
}

TEST(Cache, InvalidateIfSelective)
{
    SetAssocCache c(4096, 64, 2);
    c.access(0x000, true);
    c.access(0x040, false);
    c.access(0x080, true);
    std::uint64_t dirty = c.invalidateIf(
        [](Addr block) { return block != 1; }); // keep 0x040
    EXPECT_EQ(dirty, 2u);
    EXPECT_FALSE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x040));
    EXPECT_FALSE(c.probe(0x080));
}

TEST(Cache, ForEachLineVisitsValidOnly)
{
    SetAssocCache c(4096, 64, 2);
    c.access(0x000, true);
    c.access(0x040, false);
    int total = 0, dirty = 0;
    c.forEachLine([&](Addr, bool d) {
        ++total;
        dirty += d;
    });
    EXPECT_EQ(total, 2);
    EXPECT_EQ(dirty, 1);
}

TEST(Cache, WorkingSetFitBehaviour)
{
    // A working set that fits should hit ~100% after one pass; one
    // that is 2x capacity with LRU + sequential access thrashes.
    SetAssocCache c(8192, 64, 2);
    for (Addr a = 0; a < 8192; a += 64)
        c.access(a, false);
    std::uint64_t m0 = c.misses();
    for (Addr a = 0; a < 8192; a += 64)
        c.access(a, false);
    EXPECT_EQ(c.misses(), m0); // fully resident
    SetAssocCache d(8192, 64, 2);
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 16384; a += 64)
            d.access(a, false);
    EXPECT_EQ(d.misses(), d.accesses()); // sequential LRU thrash
}

/** Structural invariants hold across geometries and access mixes. */
class CacheGeomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeomTest, OccupancyNeverExceedsCapacity)
{
    auto [size_kb, block, assoc] = GetParam();
    SetAssocCache c(static_cast<std::uint64_t>(size_kb) * 1024,
                    block, assoc);
    Rng r(size_kb * 131 + assoc);
    std::uint64_t capacity_lines =
        c.size() / c.blockSize();
    for (int i = 0; i < 20000; ++i) {
        Addr a = r.nextBounded(1u << 22);
        c.access(a, r.nextBool(0.3));
        if (i % 1000 == 0) {
            ASSERT_LE(c.validLines(), capacity_lines);
            ASSERT_LE(c.dirtyLines(), c.validLines());
        }
    }
    EXPECT_EQ(c.accesses(), 20000u);
    EXPECT_LE(c.misses(), c.accesses());
    // Re-touching everything valid must produce pure hits.
    std::vector<Addr> blocks;
    c.forEachLine([&](Addr b, bool) { blocks.push_back(b); });
    std::uint64_t misses = c.misses();
    for (Addr b : blocks)
        c.access(b * c.blockSize(), false);
    EXPECT_EQ(c.misses(), misses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeomTest,
    ::testing::Values(std::make_tuple(4, 64, 1),
                      std::make_tuple(16, 64, 2),
                      std::make_tuple(64, 64, 4),
                      std::make_tuple(64, 128, 8),
                      std::make_tuple(256, 32, 4)));

} // namespace
} // namespace cash
