/**
 * @file
 * Tests for the deadbeat controller (Eqns 1-2).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/controller.hh"

namespace cash
{
namespace
{

TEST(Controller, OneStepDeadbeatWithExactGain)
{
    // Plant: q = b * s with b = 0.5. From s=1 (q=0.5), one step
    // must land exactly on the setpoint.
    DeadbeatController c(0.0, 64.0);
    double b = 0.5;
    double s = c.step(b * 1.0, b);
    EXPECT_NEAR(b * s, 1.0, 1e-12);
    // And stay there.
    s = c.step(b * s, b);
    EXPECT_NEAR(b * s, 1.0, 1e-12);
}

TEST(Controller, ConvergesUnderGainError)
{
    // The controller only has an estimate b_hat = 0.8 * b; the loop
    // must still converge geometrically.
    DeadbeatController c(0.0, 64.0);
    double b = 0.5;
    double b_hat = 0.4;
    double s = 1.0;
    for (int i = 0; i < 30; ++i)
        s = c.step(b * s, b_hat);
    EXPECT_NEAR(b * s, 1.0, 1e-6);
}

TEST(Controller, ErrorTracked)
{
    DeadbeatController c;
    c.step(0.7, 1.0);
    EXPECT_NEAR(c.error(), 0.3, 1e-12);
}

TEST(Controller, ClampsAtBounds)
{
    DeadbeatController c(0.0, 2.0);
    for (int i = 0; i < 50; ++i)
        c.step(0.0, 0.1); // demands explode
    EXPECT_DOUBLE_EQ(c.speedup(), 2.0);
    for (int i = 0; i < 50; ++i)
        c.step(10.0, 0.1); // demands collapse
    EXPECT_DOUBLE_EQ(c.speedup(), 0.0);
}

TEST(Controller, SetpointGuardBand)
{
    DeadbeatController c(0.0, 64.0, 1.10);
    double b = 1.0;
    double s = 1.0;
    for (int i = 0; i < 10; ++i)
        s = c.step(b * s, b);
    EXPECT_NEAR(s, 1.10, 1e-9);
}

TEST(Controller, DeadbandHoldsCommand)
{
    DeadbeatController c(0.0, 64.0, 1.0, 0.05);
    double s0 = c.step(0.97, 1.0); // |e| = 0.03 < deadband
    EXPECT_DOUBLE_EQ(s0, 1.0);
    double s1 = c.step(0.80, 1.0); // outside deadband
    EXPECT_GT(s1, 1.0);
}

TEST(Controller, ZeroGainHoldsCommand)
{
    DeadbeatController c;
    double before = c.speedup();
    c.step(0.5, 0.0);
    EXPECT_DOUBLE_EQ(c.speedup(), before);
}

TEST(Controller, ResetClampsToBounds)
{
    DeadbeatController c(0.5, 4.0);
    c.reset(100.0);
    EXPECT_DOUBLE_EQ(c.speedup(), 4.0);
    c.reset(0.0);
    EXPECT_DOUBLE_EQ(c.speedup(), 0.5);
}

TEST(Controller, BadParamsRejected)
{
    EXPECT_THROW(DeadbeatController(-1.0, 2.0), FatalError);
    EXPECT_THROW(DeadbeatController(2.0, 1.0), FatalError);
    EXPECT_THROW(DeadbeatController(0.0, 1.0, 0.0), FatalError);
    EXPECT_THROW(DeadbeatController(0.0, 1.0, 1.0, -0.1),
                 FatalError);
}

/** Convergence holds across plant gains. */
class ControllerGainTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ControllerGainTest, TracksSetpoint)
{
    double b = GetParam();
    DeadbeatController c(0.0, 1000.0);
    double s = 1.0;
    for (int i = 0; i < 5; ++i)
        s = c.step(b * s, b);
    EXPECT_NEAR(b * s, 1.0, 1e-9) << "gain " << b;
}

INSTANTIATE_TEST_SUITE_P(Gains, ControllerGainTest,
                         ::testing::Values(0.05, 0.3, 1.0, 2.5));

} // namespace
} // namespace cash
