/**
 * @file
 * Tests for the top-level simulator and the Runtime Interface
 * Network (Sec III-B2).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "sim/ssim.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

PhaseParams
mixPhase()
{
    PhaseParams p;
    p.name = "mix";
    p.ilpMeanDist = 8;
    p.memFrac = 0.3;
    p.branchFrac = 0.1;
    p.lengthInsts = 1'000'000;
    return p;
}

TEST(SSim, RuntimeSliceReserved)
{
    SSim sim;
    EXPECT_NE(sim.runtimeSlice(), invalidSlice);
    // The runtime's Slice is not handed out to clients.
    auto id = sim.createVCore(8, 4);
    ASSERT_TRUE(id);
    for (SliceId s : sim.vcore(*id).sliceIds())
        EXPECT_NE(s, sim.runtimeSlice());
}

TEST(SSim, CreateAndDestroy)
{
    SSim sim;
    std::uint32_t free0 = sim.allocator().freeSlices();
    auto id = sim.createVCore(4, 8);
    ASSERT_TRUE(id);
    EXPECT_EQ(sim.allocator().freeSlices(), free0 - 4);
    sim.destroyVCore(*id);
    EXPECT_EQ(sim.allocator().freeSlices(), free0);
}

TEST(SSim, CreateFailsWhenFull)
{
    SSim sim;
    // One Slice is the runtime's.
    auto big = sim.createVCore(sim.grid().numSlices() - 1, 0);
    ASSERT_TRUE(big);
    EXPECT_FALSE(sim.createVCore(1, 0).has_value());
}

TEST(SSimDeath, UnknownVCorePanics)
{
    SSim sim;
    EXPECT_DEATH(sim.vcore(999), "not live");
}

TEST(SSim, CounterSamplesTimestamped)
{
    SSim sim;
    auto id = *sim.createVCore(2, 2);
    PhasedTraceSource src({mixPhase()}, 7, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(50'000);
    VCoreSample s = sim.readCounters(id);
    ASSERT_EQ(s.slices.size(), 2u);
    Cycle now = sim.vcore(id).now();
    for (const CounterSample &cs : s.slices) {
        EXPECT_EQ(cs.timestamp, now);
        // Arrival reflects a round trip over the RIN.
        EXPECT_GT(cs.arrival, cs.timestamp);
    }
    EXPECT_GE(s.arrival, now);
    EXPECT_EQ(s.meta.totalCommitted,
              s.slices[0].counters.committedInsts
                  + s.slices[1].counters.committedInsts);
}

TEST(SSim, RinMessagesCounted)
{
    SSim sim;
    auto id = *sim.createVCore(3, 1);
    std::uint64_t before = sim.rinMessages();
    sim.readCounters(id);
    // Batched gather: one multicast request + one coalesced reply
    // frame, regardless of the member count.
    EXPECT_EQ(sim.rinMessages(), before + 2);
    PhasedTraceSource src({mixPhase()}, 7, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(10'000);
    before = sim.rinMessages();
    ASSERT_TRUE(sim.command(id, 4, 1).has_value());
    EXPECT_EQ(sim.rinMessages(), before + 1);
}

TEST(SSim, CommandResizesVCore)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    PhasedTraceSource src({mixPhase()}, 7, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(10'000);
    auto cost = sim.command(id, 4, 16);
    ASSERT_TRUE(cost);
    EXPECT_EQ(sim.vcore(id).numSlices(), 4u);
    EXPECT_EQ(sim.vcore(id).numBanks(), 16u);
    EXPECT_GT(cost->commandLatency, 0u);
}

TEST(SSim, CommandFailureLeavesVCoreUntouched)
{
    SSim sim;
    auto id = *sim.createVCore(2, 2);
    auto hog = sim.createVCore(sim.grid().numSlices() - 3, 0);
    ASSERT_TRUE(hog);
    EXPECT_FALSE(sim.command(id, 8, 2).has_value());
    EXPECT_EQ(sim.vcore(id).numSlices(), 2u);
    EXPECT_EQ(sim.vcore(id).numBanks(), 2u);
}

TEST(SSim, TwoVCoresProgressIndependently)
{
    SSim sim;
    auto a = *sim.createVCore(1, 1);
    auto b = *sim.createVCore(2, 2);
    PhasedTraceSource sa({mixPhase()}, 1, true, 0);
    PhasedTraceSource sb({mixPhase()}, 2, true, 0);
    sim.vcore(a).bindSource(&sa);
    sim.vcore(b).bindSource(&sb);
    sim.vcore(a).runUntil(40'000);
    sim.vcore(b).runUntil(80'000);
    EXPECT_GE(sim.vcore(a).now(), 40'000u);
    EXPECT_GE(sim.vcore(b).now(), 80'000u);
    EXPECT_GT(sim.vcore(b).meta().totalCommitted, 0u);
}

TEST(SSim, FartherSlicesSeeLongerRinDelays)
{
    SSim sim;
    auto id = *sim.createVCore(8, 0);
    PhasedTraceSource src({mixPhase()}, 7, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(5'000);
    VCoreSample s = sim.readCounters(id);
    Cycle min_arr = ~Cycle(0), max_arr = 0;
    for (const CounterSample &cs : s.slices) {
        min_arr = std::min(min_arr, cs.arrival);
        max_arr = std::max(max_arr, cs.arrival);
    }
    EXPECT_LT(min_arr, max_arr); // distance-dependent staleness
}

} // namespace
} // namespace cash
