/**
 * @file
 * Tests for the online speedup learner (Eqn 7).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/config_space.hh"
#include "core/qlearn.hh"

namespace cash
{
namespace
{

const ConfigSpace &
space()
{
    static ConfigSpace s;
    return s;
}

TEST(QLearn, PriorIsMonotoneShape)
{
    SpeedupLearner l(space(), 0.3);
    // The prior promises more from more resources.
    EXPECT_GT(l.qhat(space().indexOf({8, 128})),
              l.qhat(space().indexOf({1, 1})));
    EXPECT_GT(l.qhat(space().indexOf({4, 8})),
              l.qhat(space().indexOf({2, 8})));
}

TEST(QLearn, FirstVisitReplacesPrior)
{
    SpeedupLearner l(space(), 0.3);
    std::size_t k = space().indexOf({4, 8});
    EXPECT_FALSE(l.visited(k));
    l.update(k, 0.123);
    EXPECT_TRUE(l.visited(k));
    EXPECT_DOUBLE_EQ(l.qhat(k), 0.123);
}

TEST(QLearn, Eqn7ExponentialUpdate)
{
    SpeedupLearner l(space(), 0.25);
    std::size_t k = 5;
    l.update(k, 1.0);
    l.update(k, 2.0);
    // qhat = 0.75 * 1.0 + 0.25 * 2.0
    EXPECT_DOUBLE_EQ(l.qhat(k), 1.25);
    l.update(k, 1.25);
    EXPECT_DOUBLE_EQ(l.qhat(k), 1.25);
}

TEST(QLearn, SpeedupRelativeToBase)
{
    SpeedupLearner l(space(), 0.3);
    l.update(0, 0.5);
    std::size_t k = space().indexOf({2, 2});
    l.update(k, 1.5);
    EXPECT_NEAR(l.speedup(k), 3.0, 1e-12);
    EXPECT_NEAR(l.speedup(0), 1.0, 1e-12);
}

TEST(QLearn, RescaleShiftsEverything)
{
    SpeedupLearner l(space(), 0.3);
    l.update(3, 1.0);
    double q5 = l.qhat(5);
    l.rescale(2.0);
    EXPECT_DOUBLE_EQ(l.qhat(3), 2.0);
    EXPECT_DOUBLE_EQ(l.qhat(5), 2.0 * q5);
}

TEST(QLearn, NoPropagationByDefault)
{
    SpeedupLearner l(space(), 0.3);
    double before = l.qhat(40);
    l.update(0, 0.01); // catastrophic shock at the base config
    EXPECT_DOUBLE_EQ(l.qhat(40), before);
}

TEST(QLearn, PropagationCalibratesUnvisited)
{
    SpeedupLearner l(space(), 0.3, 1.0, /*propagate=*/true);
    std::size_t k = space().indexOf({2, 4});
    l.update(k, 0.5); // first visit propagates the level
    double level = 0.5 / SpeedupLearner::priorShape({2, 4});
    std::size_t j = space().indexOf({4, 16});
    EXPECT_NEAR(l.qhat(j),
                level * SpeedupLearner::priorShape({4, 16}), 1e-9);
}

TEST(QLearn, ShockRescalesWholeTable)
{
    // A measurement contradicting its entry by >2x is a phase
    // change: every entry shifts by the observed ratio, preserving
    // learned shape (visited entries included).
    SpeedupLearner l(space(), 0.3);
    std::size_t k = 10, j = 50;
    l.update(k, 1.0);
    l.update(j, 3.0);
    l.update(k, 0.25); // shock: ratio 0.25
    EXPECT_NEAR(l.qhat(k), 0.25, 1e-9);
    EXPECT_NEAR(l.qhat(j), 3.0 * 0.25, 1e-9);
    // The shape (ratio between entries) survived.
    EXPECT_NEAR(l.qhat(j) / l.qhat(k), 3.0, 1e-9);
}

TEST(QLearn, SmallDriftDoesNotRescale)
{
    SpeedupLearner l(space(), 0.5, 1.0, /*propagate=*/true);
    std::size_t k = 10, j = 50;
    l.update(k, 1.0);
    l.update(j, 3.0);
    l.update(k, 1.1); // small drift: EWMA only
    EXPECT_NEAR(l.qhat(j), 3.0, 1e-9);
    EXPECT_NEAR(l.qhat(k), 1.05, 1e-9);
}

TEST(QLearn, BadParamsRejected)
{
    EXPECT_THROW(SpeedupLearner(space(), 0.0), FatalError);
    EXPECT_THROW(SpeedupLearner(space(), 1.5), FatalError);
    EXPECT_THROW(SpeedupLearner(space(), 0.3, -1.0), FatalError);
}

TEST(QLearnDeath, OutOfRangePanics)
{
    SpeedupLearner l(space(), 0.3);
    EXPECT_DEATH(l.update(space().size(), 1.0), "config");
    EXPECT_DEATH(l.qhat(space().size()), "config");
    EXPECT_DEATH(l.update(0, -1.0), "negative");
}

/** Convergence to arbitrary tables under repeated updates. */
class QLearnAlphaTest : public ::testing::TestWithParam<double>
{
};

TEST_P(QLearnAlphaTest, ConvergesToTruth)
{
    double alpha = GetParam();
    SpeedupLearner l(space(), alpha);
    for (int iter = 0; iter < 200; ++iter) {
        for (std::size_t k = 0; k < space().size(); ++k) {
            double truth = 0.1 + static_cast<double>(k % 7);
            l.update(k, truth);
        }
    }
    for (std::size_t k = 0; k < space().size(); ++k) {
        double truth = 0.1 + static_cast<double>(k % 7);
        EXPECT_NEAR(l.qhat(k), truth, 1e-6) << "config " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Alphas, QLearnAlphaTest,
                         ::testing::Values(0.1, 0.3, 0.7, 1.0));

} // namespace
} // namespace cash
