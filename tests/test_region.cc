/**
 * @file
 * The multi-chip region: tenant id encoding, the migration snapshot
 * wire format, the placement router's policies and triggers,
 * RegionCore request semantics (placement-routed arrivals,
 * cross-shard migration, merged snapshots, aggregated drains), the
 * migration billing algebra, and the threaded epoll server running a
 * real 4-shard region over loopback sockets.
 *
 * The billing tests pin the economics the region must preserve: a
 * migrated tenant's final bill equals the stay-put bill plus exactly
 * the billed migration stall, and auditProvider holds on BOTH shards
 * after every move.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "check/audit.hh"
#include "cloud/placement.hh"
#include "cloud/provider.hh"
#include "common/log.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/region.hh"
#include "service/server.hh"

namespace cash::service
{
namespace
{

/** The tiny FineGrain chip the service tests run on: 8 Slices
 *  (7 sellable), 32 banks, deterministic (no stochastic arrivals). */
cloud::ProviderParams
tinyRegionParams(std::uint64_t seed = 7)
{
    FabricParams f;
    f.sliceCols = 1;
    f.bankCols = 4;
    f.rows = 8;
    cloud::ProviderParams p;
    p.fabric = f;
    p.provisioning = cloud::Provisioning::FineGrain;
    p.quantum = 50'000;
    p.arrivalProb = 0.0;
    p.seed = seed;
    return p;
}

std::string
testSocketPath(const char *tag)
{
    return strfmt("/tmp/cash_test_region.%d.%s.sock",
                  static_cast<int>(::getpid()), tag);
}

// --- Region tenant ids ------------------------------------------

TEST(RegionIds, EncodeDecodeRoundTrip)
{
    EXPECT_EQ(cloud::regionTenantId(0, 42), 42u);
    EXPECT_EQ(cloud::tenantShard(42), 0u);
    std::uint32_t id = cloud::regionTenantId(3, 17);
    EXPECT_EQ(cloud::tenantShard(id), 3u);
    EXPECT_EQ(cloud::tenantLocal(id), 17u);
    // The top byte is the shard: shard-0 ids equal local ids, so a
    // one-shard region speaks the legacy protocol unchanged.
    EXPECT_EQ(id, (3u << cloud::kShardShift) | 17u);
}

// --- Snapshot wire format ---------------------------------------

cloud::TenantSnapshot
sampleSnapshot()
{
    cloud::TenantSnapshot s;
    s.cls.app = "memcached";
    s.cls.kind = QosKind::RequestLatency;
    s.cls.target = 120.0;
    s.cls.minCfg = {1, 2};
    s.cls.peakCfg = {3, 8};
    s.target = 118.5;
    s.residenceRounds = 40;
    s.activeRounds = 12;
    s.migratedBill = 3.25;
    s.migratedHoldings = 3.5;
    s.unbilledCompactCost = 0.125;
    s.qosSamples = 9;
    s.qosViolations = 2;
    s.ewmaQ = 0.875;
    // All 64 bits must survive: doubles cannot carry this value.
    s.srcSeed = 0xDEADBEEFCAFEF00Dull;
    s.srcEmitted = 123'456;
    s.heldCfg = {2, 6};
    s.stallCycles = 8064;
    s.hops = 2;
    return s;
}

TEST(SnapshotJson, RoundTripsEveryField)
{
    cloud::TenantSnapshot s = sampleSnapshot();
    std::string wire = snapshotToJson(s).dump();
    auto doc = parseJson(wire);
    ASSERT_TRUE(doc.has_value());
    auto back = snapshotFromJson(*doc);
    ASSERT_TRUE(back.has_value());

    EXPECT_EQ(back->cls.app, s.cls.app);
    EXPECT_EQ(back->cls.kind, s.cls.kind);
    EXPECT_EQ(back->cls.target, s.cls.target);
    EXPECT_EQ(back->cls.minCfg, s.cls.minCfg);
    EXPECT_EQ(back->cls.peakCfg, s.cls.peakCfg);
    EXPECT_EQ(back->target, s.target);
    EXPECT_EQ(back->residenceRounds, s.residenceRounds);
    EXPECT_EQ(back->activeRounds, s.activeRounds);
    EXPECT_EQ(back->migratedBill, s.migratedBill);
    EXPECT_EQ(back->migratedHoldings, s.migratedHoldings);
    EXPECT_EQ(back->unbilledCompactCost, s.unbilledCompactCost);
    EXPECT_EQ(back->qosSamples, s.qosSamples);
    EXPECT_EQ(back->qosViolations, s.qosViolations);
    EXPECT_EQ(back->ewmaQ, s.ewmaQ);
    EXPECT_EQ(back->srcSeed, s.srcSeed);
    EXPECT_EQ(back->srcEmitted, s.srcEmitted);
    EXPECT_EQ(back->heldCfg, s.heldCfg);
    EXPECT_EQ(back->stallCycles, s.stallCycles);
    EXPECT_EQ(back->hops, s.hops);
}

TEST(SnapshotJson, RejectsDamagedDocuments)
{
    JsonValue good = snapshotToJson(sampleSnapshot());
    ASSERT_TRUE(snapshotFromJson(good).has_value());

    // Each damaged variant must be refused, not half-parsed.
    auto damaged = [&](const char *key, JsonValue v) {
        JsonValue doc = *parseJson(good.dump());
        doc.set(key, std::move(v));
        return snapshotFromJson(doc).has_value();
    };
    EXPECT_FALSE(damaged("app", JsonValue(std::string())));
    EXPECT_FALSE(damaged("kind", JsonValue(2u)));
    EXPECT_FALSE(damaged("bill", JsonValue(-1.0)));
    EXPECT_FALSE(damaged("min_slices", JsonValue(0u)));
    EXPECT_FALSE(damaged("hops", JsonValue(0u)));
    EXPECT_FALSE(damaged("src_seed", JsonValue("12x4")));
    EXPECT_FALSE(damaged("src_seed", JsonValue(std::string())));
    EXPECT_FALSE(snapshotFromJson(JsonValue(1.0)).has_value());
}

// --- Placement router -------------------------------------------

cloud::ShardLoad
loadWith(std::uint32_t free_slices, std::uint64_t round = 0,
         double frag = 0.0, std::uint32_t active = 0)
{
    cloud::ShardLoad l;
    l.freeSlices = free_slices;
    l.freeBanks = 32;
    l.totalSlices = 8;
    l.totalBanks = 32;
    l.fragmentation = frag;
    l.active = active;
    l.round = round;
    return l;
}

TEST(Router, BinPackPrefersTightestFitSpreadPrefersEmptiest)
{
    VCoreConfig entry{2, 2};
    std::vector<cloud::ShardLoad> loads = {loadWith(5),
                                           loadWith(3)};

    cloud::PlacementRouter binpack(
        2, cloud::PlacementPolicy::BinPack, {});
    // Both fit a 2-Slice entry; binpack takes the fuller shard.
    EXPECT_EQ(binpack.chooseShard(entry, loads), 1u);

    cloud::PlacementRouter spread(2, cloud::PlacementPolicy::Spread,
                                  {});
    EXPECT_EQ(spread.chooseShard(entry, loads), 0u);

    // Router statistics track per-shard routed arrivals.
    EXPECT_EQ(binpack.stats().routed[1], 1u);
    EXPECT_EQ(spread.stats().routed[0], 1u);
}

TEST(Router, NoFitFallsBackToEmptiestShard)
{
    VCoreConfig entry{7, 2};
    std::vector<cloud::ShardLoad> loads = {loadWith(3),
                                           loadWith(5)};
    cloud::PlacementRouter binpack(
        2, cloud::PlacementPolicy::BinPack, {});
    // Nothing fits: the emptiest shard takes the arrival and its
    // own admission queue/reject path applies.
    EXPECT_EQ(binpack.chooseShard(entry, loads), 1u);
}

TEST(Router, FragmentationTriggerPlansMigrationWithCooldown)
{
    cloud::RebalanceParams rb;
    rb.fragThreshold = 2.0;
    rb.imbalanceThreshold = 0.0; // disabled
    rb.cooldownRounds = 8;
    cloud::PlacementRouter router(
        2, cloud::PlacementPolicy::BinPack, rb);

    std::vector<cloud::ShardLoad> loads = {
        loadWith(2, /*round=*/20, /*frag=*/3.5, /*active=*/3),
        loadWith(7, /*round=*/20)};
    auto plan = router.maybeRebalance(loads);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->from, 0u);
    EXPECT_EQ(plan->to, 1u);
    EXPECT_STREQ(plan->reason, "frag");

    // Cooldown: the same shard may not plan again immediately...
    EXPECT_FALSE(router.maybeRebalance(loads).has_value());
    // ...but fires again once the cooldown rounds have passed.
    loads[0].round = loads[1].round = 40;
    EXPECT_TRUE(router.maybeRebalance(loads).has_value());
}

TEST(Router, ImbalanceTriggerMovesFromFullToEmpty)
{
    cloud::RebalanceParams rb;
    rb.fragThreshold = 0.0; // disabled
    rb.imbalanceThreshold = 0.5;
    rb.cooldownRounds = 0;
    cloud::PlacementRouter router(
        2, cloud::PlacementPolicy::BinPack, rb);

    std::vector<cloud::ShardLoad> loads = {
        loadWith(1, /*round=*/5, /*frag=*/0.0, /*active=*/4),
        loadWith(7, /*round=*/5)};
    auto plan = router.maybeRebalance(loads);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->from, 0u);
    EXPECT_EQ(plan->to, 1u);
    EXPECT_STREQ(plan->reason, "imbalance");

    // A balanced region plans nothing.
    std::vector<cloud::ShardLoad> even = {
        loadWith(4, 5, 0.0, 2), loadWith(4, 5, 0.0, 2)};
    EXPECT_FALSE(router.maybeRebalance(even).has_value());
}

// --- Request grammar (region ops) -------------------------------

std::optional<Request>
parseDoc(const std::string &doc, std::string *code = nullptr)
{
    auto v = parseJson(doc);
    EXPECT_TRUE(v.has_value()) << doc;
    std::string c, detail;
    std::uint64_t id = 0;
    auto req = parseRequest(*v, &c, &detail, &id);
    if (code)
        *code = c;
    return req;
}

TEST(Grammar, RegionOpsParseAndRejectGarbage)
{
    auto mig =
        parseDoc("{\"id\":1,\"op\":\"migrate\",\"tenant\":7}");
    ASSERT_TRUE(mig.has_value());
    EXPECT_EQ(mig->op, Op::Migrate);
    EXPECT_EQ(mig->tenant, 7u);
    EXPECT_EQ(mig->to, Request::kAutoShard);

    auto to = parseDoc(
        "{\"id\":1,\"op\":\"migrate\",\"tenant\":7,\"to\":3}");
    ASSERT_TRUE(to.has_value());
    EXPECT_EQ(to->to, 3u);

    EXPECT_EQ(parseDoc("{\"id\":1,\"op\":\"shards\"}")->op,
              Op::Shards);
    EXPECT_EQ(parseDoc("{\"id\":1,\"op\":\"region_snapshot\"}")->op,
              Op::RegionSnapshot);

    std::string code;
    // migrate without a tenant is malformed, not unknown-tenant.
    EXPECT_FALSE(
        parseDoc("{\"id\":1,\"op\":\"migrate\"}", &code)
            .has_value());
    EXPECT_EQ(code, errors::BadRequest);
    // The region id encoding caps targets at one byte.
    EXPECT_FALSE(parseDoc("{\"id\":1,\"op\":\"migrate\","
                          "\"tenant\":7,\"to\":256}",
                          &code)
                     .has_value());
    EXPECT_EQ(code, errors::BadRequest);
    EXPECT_FALSE(parseDoc("{\"id\":1,\"op\":\"migrate\","
                          "\"tenant\":\"x\"}",
                          &code)
                     .has_value());
    EXPECT_EQ(code, errors::BadRequest);
}

// --- RegionCore semantics ---------------------------------------

JsonValue
applyOp(RegionCore &region, Op op, std::uint32_t tenant = 0,
        std::uint32_t quanta = 0)
{
    static std::uint64_t next_id = 1;
    Request r;
    r.id = next_id++;
    r.op = op;
    r.tenant = tenant;
    if (quanta)
        r.quanta = quanta;
    return region.apply(r);
}

std::uint32_t
arriveOn(RegionCore &region, std::uint32_t cls = 0,
         std::uint32_t residence = 200)
{
    Request r;
    r.id = 999;
    r.op = Op::Arrive;
    r.cls = cls;
    r.residence = residence;
    JsonValue resp = region.apply(r);
    EXPECT_EQ(resp.getBool("ok"), true);
    auto t = resp.getUint("tenant");
    EXPECT_TRUE(t.has_value());
    return static_cast<std::uint32_t>(t.value_or(0));
}

TEST(RegionCoreTest, ArriveCarriesShardAndTenantOpsFollowIt)
{
    RegionCore region(tinyRegionParams(), 2,
                      /*audit_each_quantum=*/true);

    Request a;
    a.id = 1;
    a.op = Op::Arrive;
    a.cls = 0;
    a.residence = 100;
    JsonValue resp = region.apply(a);
    ASSERT_EQ(resp.getBool("ok"), true);
    auto tenant = resp.getUint("tenant");
    ASSERT_TRUE(tenant.has_value());
    auto shard = resp.getUint("shard");
    ASSERT_TRUE(shard.has_value());
    EXPECT_EQ(cloud::tenantShard(
                  static_cast<std::uint32_t>(*tenant)),
              *shard);

    std::uint32_t id = static_cast<std::uint32_t>(*tenant);
    JsonValue q = applyOp(region, Op::Query, id);
    EXPECT_EQ(q.getBool("ok"), true);
    EXPECT_EQ(q.getString("state"), "active");
    // The echoed id is the region id, not the shard-local one.
    EXPECT_EQ(q.getUint("tenant"), *tenant);

    // A tenant id naming a shard outside the region is refused
    // without touching any provider.
    JsonValue bad = applyOp(region, Op::Query,
                            cloud::regionTenantId(9, 0));
    EXPECT_EQ(bad.getBool("ok"), false);
    EXPECT_EQ(bad.getString("error"), errors::UnknownTenant);

    JsonValue d = applyOp(region, Op::Depart, id);
    EXPECT_EQ(d.getBool("ok"), true);
    EXPECT_EQ(d.getString("state"), "departed");
}

TEST(RegionCoreTest, ExplicitMigrateMovesTenantAcrossShards)
{
    RegionCore region(tinyRegionParams(), 2,
                      /*audit_each_quantum=*/true);
    std::uint32_t id = arriveOn(region);
    std::uint32_t from = cloud::tenantShard(id);
    applyOp(region, Op::Step, 0, 2);

    Request m;
    m.id = 50;
    m.op = Op::Migrate;
    m.tenant = id;
    m.to = 1 - from;
    JsonValue resp = region.apply(m);
    ASSERT_EQ(resp.getBool("ok"), true);
    auto moved = resp.getUint("tenant");
    ASSERT_TRUE(moved.has_value());
    std::uint32_t new_id = static_cast<std::uint32_t>(*moved);
    EXPECT_EQ(cloud::tenantShard(new_id), 1 - from);
    EXPECT_EQ(resp.getUint("from"), from);
    EXPECT_EQ(resp.getUint("to"), 1u - from);
    EXPECT_GT(resp.getUint("stall_cycles").value_or(0), 0u);
    EXPECT_EQ(region.stats().migrations, 1u);

    // The tenant answers queries under its new id; the old id
    // remains queryable but reports the migrated tombstone (query
    // is informational, like for departed tenants).
    EXPECT_EQ(applyOp(region, Op::Query, new_id).getString("state"),
              "active");
    EXPECT_EQ(applyOp(region, Op::Query, id).getString("state"),
              "migrated");
    // Departing the tombstone is refused: the bill moved with it.
    EXPECT_EQ(applyOp(region, Op::Depart, id).getBool("ok"),
              false);

    // Both shards stay audit-clean across further rounds (the
    // region was built with audit_each_quantum, so every step
    // re-audits every shard).
    applyOp(region, Op::Step, 0, 3);
    for (std::uint32_t s = 0; s < region.shards(); ++s)
        auditProvider(region.provider(s));
}

TEST(RegionCoreTest, MigrateErrorsAreDiagnosable)
{
    RegionCore one(tinyRegionParams(), 1,
                   /*audit_each_quantum=*/false);
    std::uint32_t id = arriveOn(one);
    JsonValue resp = applyOp(one, Op::Migrate, id);
    EXPECT_EQ(resp.getBool("ok"), false);
    EXPECT_EQ(resp.getString("error"), errors::BadRequest);

    RegionCore region(tinyRegionParams(), 2,
                      /*audit_each_quantum=*/false);
    std::uint32_t t = arriveOn(region);
    // Explicit target outside the region.
    Request m;
    m.id = 9;
    m.op = Op::Migrate;
    m.tenant = t;
    m.to = 7;
    EXPECT_EQ(region.apply(m).getString("error"),
              errors::BadRequest);
    // Migrating onto the shard the tenant already occupies.
    m.to = cloud::tenantShard(t);
    EXPECT_EQ(region.apply(m).getString("error"),
              errors::BadRequest);
    // Unknown tenant.
    m.tenant = cloud::regionTenantId(1, 7777);
    m.to = Request::kAutoShard;
    EXPECT_EQ(region.apply(m).getString("error"),
              errors::UnknownTenant);
}

TEST(RegionCoreTest, SnapshotAndShardsMergeAcrossTheRegion)
{
    RegionCore region(tinyRegionParams(), 2,
                      /*audit_each_quantum=*/false);
    std::uint32_t a = arriveOn(region);
    std::uint32_t b = arriveOn(region);
    (void)a;
    (void)b;
    applyOp(region, Op::Step, 0, 2);

    JsonValue snap = applyOp(region, Op::Snapshot);
    EXPECT_EQ(snap.getBool("ok"), true);
    EXPECT_EQ(snap.getUint("shards"), 2u);
    EXPECT_EQ(snap.getUint("active"), 2u);
    EXPECT_EQ(snap.getUint("round"), 2u);
    EXPECT_EQ(snap.getBool("draining"), false);

    JsonValue sh = applyOp(region, Op::Shards);
    EXPECT_EQ(sh.getBool("ok"), true);
    EXPECT_EQ(sh.getUint("shards"), 2u);
    EXPECT_EQ(sh.getString("placement"), "binpack");
    const JsonValue *info = sh.find("shard_info");
    ASSERT_NE(info, nullptr);
    ASSERT_EQ(info->items().size(), 2u);
    EXPECT_EQ(info->items()[0].getUint("shard"), 0u);
    EXPECT_EQ(info->items()[1].getUint("shard"), 1u);

    JsonValue rs = applyOp(region, Op::RegionSnapshot);
    EXPECT_EQ(rs.getBool("ok"), true);
    const JsonValue *per = rs.find("per_shard");
    ASSERT_NE(per, nullptr);
    ASSERT_EQ(per->items().size(), 2u);
    const JsonValue *routed = rs.find("routed");
    ASSERT_NE(routed, nullptr);
    double routed_total = 0;
    for (const JsonValue &n : routed->items())
        routed_total += n.number();
    EXPECT_EQ(routed_total, 2.0);
}

TEST(RegionCoreTest, DrainAggregatesAuditedBills)
{
    RegionCore region(tinyRegionParams(), 2,
                      /*audit_each_quantum=*/true);
    // Force one tenant onto each shard so the drain genuinely
    // aggregates.
    std::uint32_t a = arriveOn(region);
    Request m;
    m.id = 5;
    m.op = Op::Migrate;
    m.tenant = arriveOn(region);
    m.to = 1 - cloud::tenantShard(a);
    ASSERT_EQ(region.apply(m).getBool("ok"), true);
    applyOp(region, Op::Step, 0, 3);

    JsonValue report = applyOp(region, Op::Drain);
    ASSERT_EQ(report.getBool("ok"), true);
    const JsonValue *bills = report.find("bills");
    ASSERT_NE(bills, nullptr);
    EXPECT_EQ(bills->items().size(), 2u);
    EXPECT_EQ(report.getUint("departed"), 2u);
    double total = 0.0;
    bool saw_both_shards[2] = {false, false};
    for (const JsonValue &row : bills->items()) {
        total += row.getNumber("bill").value_or(0.0);
        auto shard = row.getUint("shard");
        ASSERT_TRUE(shard.has_value());
        saw_both_shards[*shard] = true;
        // Row ids carry the owning shard in the top byte.
        EXPECT_EQ(cloud::tenantShard(static_cast<std::uint32_t>(
                      row.getUint("tenant").value_or(0))),
                  *shard);
    }
    EXPECT_TRUE(saw_both_shards[0]);
    EXPECT_TRUE(saw_both_shards[1]);
    EXPECT_NEAR(report.getNumber("revenue").value_or(-1.0), total,
                1e-9);
    EXPECT_TRUE(region.draining());
}

TEST(RegionCoreTest, RebalanceTriggerMigratesOffTheLoadedShard)
{
    // BinPack packs every arrival onto one shard; with an
    // aggressive imbalance trigger the first steps must plan a
    // migration off it.
    cloud::RebalanceParams rb;
    rb.fragThreshold = 0.0;
    rb.imbalanceThreshold = 0.05;
    rb.cooldownRounds = 0;
    RegionCore region(tinyRegionParams(), 2,
                      /*audit_each_quantum=*/true,
                      cloud::PlacementPolicy::BinPack, rb);
    for (int i = 0; i < 3; ++i)
        arriveOn(region, 0, 300);
    for (int i = 0; i < 6 && region.stats().rebalances == 0; ++i)
        applyOp(region, Op::Step, 0, 1);

    EXPECT_GE(region.stats().rebalances, 1u);
    EXPECT_GE(region.stats().migrations, 1u);
    EXPECT_GE(region.provider(1).activeTenants().size(), 1u);
    for (std::uint32_t s = 0; s < region.shards(); ++s)
        auditProvider(region.provider(s));
}

// --- Migration billing algebra ----------------------------------

TEST(MigrationBilling, MigratedBillIsStayPutBillPlusStall)
{
    // Twin runs under StaticPeak (constant holdings, so the bill
    // is a pure function of rounds held): `stay` keeps the tenant
    // on one chip; `src`/`dst` migrate it after 3 rounds. The final
    // bills must differ by exactly the billed migration stall.
    cloud::ProviderParams params = tinyRegionParams(11);
    params.provisioning = cloud::Provisioning::StaticPeak;

    cloud::CloudProvider stay(params);
    cloud::CloudProvider src(params);
    cloud::CloudProvider dst(params);

    cloud::TenantId stay_id = stay.injectArrival(0, 100);
    cloud::TenantId src_id = src.injectArrival(0, 100);
    ASSERT_EQ(stay.tenants()[stay_id]->state,
              cloud::TenantState::Active);

    for (int i = 0; i < 3; ++i) {
        stay.step();
        src.step();
        dst.step();
    }
    double bill_at_move = src.tenants()[src_id]->bill();
    EXPECT_NEAR(stay.tenants()[stay_id]->bill(), bill_at_move,
                1e-9);

    auto snap = src.migrateOut(src_id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_GT(snap->stallCycles, 0u);
    double stall_cost = snap->migratedBill - bill_at_move;
    EXPECT_GT(stall_cost, 0.0);
    EXPECT_EQ(src.tenants()[src_id]->state,
              cloud::TenantState::Migrated);

    cloud::TenantId dst_id = dst.migrateIn(*snap);
    auditProvider(src);
    auditProvider(dst);

    for (int i = 0; i < 4; ++i) {
        stay.step();
        dst.step();
    }
    // Same class, same held configuration, same rounds: the only
    // difference is the stall the migration billed.
    EXPECT_NEAR(dst.tenants()[dst_id]->bill(),
                stay.tenants()[stay_id]->bill() + stall_cost,
                1e-6);
    auditProvider(src);
    auditProvider(dst);
}

TEST(MigrationBilling, AuditHoldsOnBothShardsUnderFineGrain)
{
    // FineGrain lets the runtime resize the migrant, so this pins
    // the general audit identity rather than exact bill equality.
    cloud::ProviderParams params = tinyRegionParams(13);
    cloud::CloudProvider src(params);
    cloud::CloudProvider dst(params);

    cloud::TenantId a = src.injectArrival(0, 200);
    src.injectArrival(1 % src.params().catalog.size(), 200);
    for (int i = 0; i < 4; ++i) {
        src.step();
        dst.step();
    }
    ASSERT_EQ(src.tenants()[a]->state, cloud::TenantState::Active);
    auto snap = src.migrateOut(a);
    ASSERT_TRUE(snap.has_value());
    dst.migrateIn(*snap);
    auditProvider(src);
    auditProvider(dst);
    for (int i = 0; i < 6; ++i) {
        src.step();
        dst.step();
        auditProvider(src);
        auditProvider(dst);
    }
    EXPECT_EQ(src.stats().migratedOut, 1u);
    EXPECT_EQ(dst.stats().migratedIn, 1u);
}

// --- The threaded region server ---------------------------------

TEST(RegionServer, FourShardsOverLoopbackWithWireMigration)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("region");
    sc.audit = true;
    sc.shards = 4;
    sc.ioThreads = 2;
    sc.rebalance.enabled = false; // explicit migrations only
    ServiceServer server(tinyRegionParams(), sc);
    server.start();

    {
        ServiceClient client =
            ServiceClient::connectUnix(sc.unixPath);
        EXPECT_EQ(client.ping().getBool("ok"), true);

        std::vector<std::uint32_t> tenants;
        for (int i = 0; i < 6; ++i) {
            JsonValue resp = client.arrive(0, 300);
            ASSERT_EQ(resp.getBool("ok"), true);
            tenants.push_back(static_cast<std::uint32_t>(
                resp.getUint("tenant").value_or(0)));
        }
        EXPECT_EQ(client.step(2).getBool("ok"), true);

        // The shards op sees all four chips.
        JsonValue sh = client.shards();
        ASSERT_EQ(sh.getBool("ok"), true);
        EXPECT_EQ(sh.getUint("shards"), 4u);
        ASSERT_NE(sh.find("shard_info"), nullptr);
        EXPECT_EQ(sh.find("shard_info")->items().size(), 4u);

        // Wire migration: auto target, new region id comes back.
        JsonValue mig = client.migrate(tenants[0]);
        ASSERT_EQ(mig.getBool("ok"), true);
        std::uint32_t new_id = static_cast<std::uint32_t>(
            mig.getUint("tenant").value_or(0));
        EXPECT_NE(cloud::tenantShard(new_id),
                  cloud::tenantShard(tenants[0]));
        EXPECT_EQ(client.query(new_id).getString("state"),
                  "active");
        EXPECT_EQ(client.query(tenants[0]).getString("state"),
                  "migrated");
        tenants[0] = new_id;

        // A tenant id naming shard 9 of a 4-shard region fails fast
        // on the IO thread.
        JsonValue bad =
            client.query(cloud::regionTenantId(9, 0));
        EXPECT_EQ(bad.getBool("ok"), false);
        EXPECT_EQ(bad.getString("error"), errors::UnknownTenant);

        // Region snapshot covers every shard.
        JsonValue rs = client.regionSnapshot();
        ASSERT_EQ(rs.getBool("ok"), true);
        ASSERT_NE(rs.find("per_shard"), nullptr);
        EXPECT_EQ(rs.find("per_shard")->items().size(), 4u);
        EXPECT_EQ(rs.getUint("migrations"), 1u);
    }

    server.stop();
    JsonValue report = server.finalReport();
    ASSERT_EQ(report.getBool("ok"), true);
    // All six tenants survive to the aggregated drain (none
    // departed), each row stamped with its owning shard.
    ASSERT_NE(report.find("bills"), nullptr);
    EXPECT_EQ(report.find("bills")->items().size(), 6u);
    EXPECT_EQ(report.getUint("departed"), 6u);
    EXPECT_EQ(server.stats().migrations.load(), 1u);
}

TEST(RegionServer, SingleShardRegionSpeaksTheLegacyProtocol)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("legacy");
    sc.audit = true;
    ServiceServer server(tinyRegionParams(), sc);
    server.start();

    {
        ServiceClient client =
            ServiceClient::connectUnix(sc.unixPath);
        JsonValue resp = client.arrive(0, 100);
        ASSERT_EQ(resp.getBool("ok"), true);
        // Shard 0 ids are bare local ids.
        EXPECT_EQ(cloud::tenantShard(static_cast<std::uint32_t>(
                      resp.getUint("tenant").value_or(0))),
                  0u);
        // Migration needs a second shard.
        JsonValue mig = client.migrate(static_cast<std::uint32_t>(
            resp.getUint("tenant").value_or(0)));
        EXPECT_EQ(mig.getBool("ok"), false);
        EXPECT_EQ(mig.getString("error"), errors::BadRequest);
        // The merged snapshot still reports the region axis.
        EXPECT_EQ(client.snapshot().getUint("shards"), 1u);
    }
    server.stop();
    EXPECT_EQ(server.finalReport().getBool("ok"), true);
}

} // namespace
} // namespace cash::service
