/**
 * @file
 * The service subsystem: JSON layer, wire framing, request grammar,
 * the bounded MPSC queue, ServiceCore apply semantics, and loopback
 * client/server integration (Unix-domain and TCP) including the
 * hostile-input paths — malformed JSON, oversized and empty frames,
 * queue_full backpressure, and the stop() drain report.
 *
 * The integration tests run real server threads, so this binary is
 * the tsan target for the front-end's IO-thread / sim-thread
 * handoff.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cloud/provider.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "service/client.hh"
#include "service/core.hh"
#include "service/json.hh"
#include "service/protocol.hh"
#include "service/queue.hh"
#include "service/server.hh"

namespace cash::service
{
namespace
{

// --- JSON -------------------------------------------------------

TEST(Json, ScalarRoundTrips)
{
    const char *docs[] = {
        "null", "true", "false", "0",   "-1",      "42",
        "3.5",  "-0.25", "1e3",  "\"\"", "\"abc\"",
    };
    for (const char *doc : docs) {
        auto v = parseJson(doc);
        ASSERT_TRUE(v.has_value()) << doc;
        auto again = parseJson(v->dump());
        ASSERT_TRUE(again.has_value()) << doc;
        EXPECT_EQ(v->dump(), again->dump()) << doc;
    }
}

TEST(Json, ObjectKeysKeepInsertionOrder)
{
    JsonValue v = JsonValue::object();
    v.set("z", JsonValue(1));
    v.set("a", JsonValue(2));
    v.set("m", JsonValue(3));
    EXPECT_EQ(v.dump(), "{\"z\":1,\"a\":2,\"m\":3}");

    // Replacing a key keeps its position — encode∘decode∘encode
    // must be the identity for the protocol round-trip.
    v.set("a", JsonValue(9));
    EXPECT_EQ(v.dump(), "{\"z\":1,\"a\":9,\"m\":3}");
}

TEST(Json, EscapesRoundTrip)
{
    JsonValue v = JsonValue::object();
    v.set("s", JsonValue(std::string("a\"b\\c\n\t\x01 d")));
    auto parsed = parseJson(v.dump());
    ASSERT_TRUE(parsed.has_value());
    auto s = parsed->getString("s");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*s, "a\"b\\c\n\t\x01 d");
}

TEST(Json, Utf16EscapesDecode)
{
    // BMP escape and a surrogate pair (U+1F600).
    auto v = parseJson("\"\\u0041\\uD83D\\uDE00\"");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->string(), "A\xF0\x9F\x98\x80");

    // A lone high surrogate is an error.
    EXPECT_FALSE(parseJson("\"\\uD83D\"").has_value());
}

TEST(Json, RejectsHostileInput)
{
    const char *bad[] = {
        "",          "{",          "[1,]",      "{\"a\":}",
        "01",        "1.",         "tru",       "\"\\q\"",
        "{} {}",     "1 2",        "nul",       "\"unterminated",
        "{\"a\" 1}", "[1 2]",
    };
    for (const char *doc : bad) {
        std::string err;
        EXPECT_FALSE(parseJson(doc, &err).has_value()) << doc;
        EXPECT_FALSE(err.empty()) << doc;
    }
}

TEST(Json, DepthCapIsEnforced)
{
    // Way past any sane protocol document.
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_FALSE(parseJson(deep).has_value());

    // Modest nesting is fine.
    EXPECT_TRUE(parseJson("[[[[[[[[1]]]]]]]]").has_value());
}

TEST(Json, GetUintSemantics)
{
    auto v = parseJson(
        "{\"a\":7,\"b\":-1,\"c\":1.5,\"d\":\"7\",\"e\":0}");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->getUint("a"), 7u);
    EXPECT_EQ(v->getUint("e"), 0u);
    EXPECT_FALSE(v->getUint("b").has_value()); // negative
    EXPECT_FALSE(v->getUint("c").has_value()); // non-integral
    EXPECT_FALSE(v->getUint("d").has_value()); // string
    EXPECT_FALSE(v->getUint("missing").has_value());
}

/** Random JSON value with bounded depth, for property round-trips. */
JsonValue
randomValue(Rng &rng, unsigned depth)
{
    unsigned pick = static_cast<unsigned>(
        rng.nextBounded(depth == 0 ? 4 : 6));
    switch (pick) {
      case 0:
        return JsonValue(nullptr);
      case 1:
        return JsonValue(rng.nextBool(0.5));
      case 2:
        return JsonValue(
            static_cast<std::int64_t>(rng.nextBounded(1u << 20))
            - (1 << 19));
      case 3: {
        std::string s;
        std::size_t len = rng.nextBounded(12);
        for (std::size_t i = 0; i < len; ++i)
            s += static_cast<char>(rng.nextBounded(0x60) + 0x20);
        return JsonValue(std::move(s));
      }
      case 4: {
        JsonValue arr = JsonValue::array();
        std::size_t n = rng.nextBounded(4);
        for (std::size_t i = 0; i < n; ++i)
            arr.push(randomValue(rng, depth - 1));
        return arr;
      }
      default: {
        JsonValue obj = JsonValue::object();
        std::size_t n = rng.nextBounded(4);
        for (std::size_t i = 0; i < n; ++i)
            obj.set(strfmt("k%zu", i), randomValue(rng, depth - 1));
        return obj;
      }
    }
}

TEST(Json, PropertyRandomValuesRoundTrip)
{
    Rng rng(0xDEC0DE);
    for (int trial = 0; trial < 200; ++trial) {
        JsonValue v = randomValue(rng, 4);
        std::string text = v.dump();
        std::string err;
        auto parsed = parseJson(text, &err);
        ASSERT_TRUE(parsed.has_value()) << text << ": " << err;
        EXPECT_EQ(parsed->dump(), text);
    }
}

// --- Framing ----------------------------------------------------

TEST(Frames, HeaderIsBigEndian)
{
    std::string f = encodeFrame("abc");
    ASSERT_EQ(f.size(), 7u);
    EXPECT_EQ(f[0], 0);
    EXPECT_EQ(f[1], 0);
    EXPECT_EQ(f[2], 0);
    EXPECT_EQ(f[3], 3);
    EXPECT_EQ(f.substr(4), "abc");
}

TEST(Frames, TruncatedFrameIsNotAnError)
{
    FrameDecoder dec;
    std::string f = encodeFrame("hello");
    dec.feed(f.data(), 2); // half a length prefix
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_EQ(dec.error(), nullptr);
    dec.feed(f.data() + 2, f.size() - 3); // all but the last byte
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_EQ(dec.error(), nullptr);
    dec.feed(f.data() + f.size() - 1, 1);
    auto payload = dec.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, "hello");
}

TEST(Frames, EmptyFramePoisonsTheStream)
{
    FrameDecoder dec;
    std::string zero(4, '\0');
    dec.feed(zero.data(), zero.size());
    EXPECT_FALSE(dec.next().has_value());
    ASSERT_NE(dec.error(), nullptr);
    EXPECT_STREQ(dec.error(), errors::Malformed);

    // Sticky: later good frames are ignored.
    std::string good = encodeFrame("{}");
    dec.feed(good.data(), good.size());
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_STREQ(dec.error(), errors::Malformed);
}

TEST(Frames, OversizedFramePoisonsTheStream)
{
    FrameDecoder dec(16);
    std::string f = encodeFrame(std::string(17, 'x'));
    // The error fires off the length prefix alone — the payload
    // need not arrive.
    dec.feed(f.data(), 4);
    EXPECT_FALSE(dec.next().has_value());
    ASSERT_NE(dec.error(), nullptr);
    EXPECT_STREQ(dec.error(), errors::FrameTooLarge);

    FrameDecoder ok(17);
    ok.feed(f.data(), f.size());
    EXPECT_TRUE(ok.next().has_value());
}

TEST(Frames, PropertyRoundTripUnderRandomChunking)
{
    Rng rng(0xF4A3E5);
    for (int trial = 0; trial < 50; ++trial) {
        // A random batch of random binary payloads...
        std::vector<std::string> payloads;
        std::string stream;
        std::size_t count = 1 + rng.nextBounded(8);
        for (std::size_t i = 0; i < count; ++i) {
            std::string p;
            std::size_t len = 1 + rng.nextBounded(200);
            for (std::size_t b = 0; b < len; ++b)
                p += static_cast<char>(rng.nextBounded(256));
            stream += encodeFrame(p);
            payloads.push_back(std::move(p));
        }
        // ...fed in random chunks must decode to the same payloads
        // in order, regardless of where the reads split.
        FrameDecoder dec;
        std::vector<std::string> got;
        std::size_t off = 0;
        while (off < stream.size()) {
            std::size_t n = 1
                + rng.nextBounded(stream.size() - off);
            dec.feed(stream.data() + off, n);
            off += n;
            while (auto p = dec.next())
                got.push_back(*p);
        }
        ASSERT_EQ(dec.error(), nullptr);
        EXPECT_EQ(got, payloads);
        EXPECT_EQ(dec.pending(), 0u);
    }
}

// --- Request grammar --------------------------------------------

TEST(Requests, AllOpsRoundTripThroughTheWire)
{
    Request reqs[7];
    reqs[0] = {};
    reqs[0].op = Op::Ping;
    reqs[1].op = Op::Arrive;
    reqs[1].cls = 3;
    reqs[1].residence = 17;
    reqs[2].op = Op::Depart;
    reqs[2].tenant = 5;
    reqs[3].op = Op::Query;
    reqs[3].tenant = 9;
    reqs[4].op = Op::Step;
    reqs[4].quanta = 12;
    reqs[5].op = Op::Snapshot;
    reqs[6].op = Op::Drain;

    std::uint64_t id = 1;
    for (Request &r : reqs) {
        r.id = id++;
        auto parsed = parseJson(r.toJson().dump());
        ASSERT_TRUE(parsed.has_value());
        std::string err, detail;
        std::uint64_t echoed = 0;
        auto back = parseRequest(*parsed, &err, &detail, &echoed);
        ASSERT_TRUE(back.has_value()) << opName(r.op) << ": " << err;
        EXPECT_EQ(echoed, r.id);
        EXPECT_EQ(back->op, r.op);
        EXPECT_EQ(back->cls, r.cls);
        EXPECT_EQ(back->residence, r.residence);
        EXPECT_EQ(back->tenant, r.tenant);
        EXPECT_EQ(back->quanta, r.quanta);
    }
}

TEST(Requests, RejectionsCarryTheRightCode)
{
    struct Case
    {
        const char *doc;
        const char *code;
    };
    const Case cases[] = {
        {"[1,2]", errors::BadRequest},
        {"{\"id\":1}", errors::BadRequest},
        {"{\"id\":1,\"op\":\"warp\"}", errors::UnknownOp},
        {"{\"id\":-1,\"op\":\"ping\"}", errors::BadRequest},
        {"{\"id\":1,\"op\":\"arrive\"}", errors::BadRequest},
        {"{\"id\":1,\"op\":\"depart\"}", errors::BadRequest},
        {"{\"id\":1,\"op\":\"step\",\"quanta\":0}",
         errors::BadRequest},
        {"{\"id\":1,\"op\":\"arrive\",\"cls\":99999999}",
         errors::BadRequest},
    };
    for (const Case &c : cases) {
        auto parsed = parseJson(c.doc);
        ASSERT_TRUE(parsed.has_value()) << c.doc;
        std::string err, detail;
        std::uint64_t id = 99;
        auto req = parseRequest(*parsed, &err, &detail, &id);
        EXPECT_FALSE(req.has_value()) << c.doc;
        EXPECT_EQ(err, c.code) << c.doc;
        EXPECT_FALSE(detail.empty()) << c.doc;
    }

    // Even a rejected request yields its id, so the error response
    // can be matched to the pipelined request that caused it.
    auto parsed = parseJson("{\"id\":42,\"op\":\"warp\"}");
    std::string err, detail;
    std::uint64_t id = 0;
    parseRequest(*parsed, &err, &detail, &id);
    EXPECT_EQ(id, 42u);
}

// --- BoundedQueue -----------------------------------------------

TEST(Queue, BackpressureAndBatchOrder)
{
    BoundedQueue<int> q(3);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_TRUE(q.tryPush(3));
    EXPECT_FALSE(q.tryPush(4)); // full: explicit backpressure
    EXPECT_EQ(q.size(), 3u);

    std::vector<int> out;
    EXPECT_TRUE(q.popBatch(out, 2));
    EXPECT_EQ(out, (std::vector<int>{1, 2})); // FIFO, bounded batch
    EXPECT_TRUE(q.tryPush(5));
    EXPECT_TRUE(q.popBatch(out, 10));
    EXPECT_EQ(out, (std::vector<int>{3, 5}));
}

TEST(Queue, CloseDrainsThenSignalsExit)
{
    BoundedQueue<int> q(8);
    EXPECT_TRUE(q.tryPush(1));
    q.close();
    EXPECT_FALSE(q.tryPush(2)); // closed queues reject pushes

    std::vector<int> out;
    EXPECT_TRUE(q.popBatch(out, 10)); // final drain still delivers
    EXPECT_EQ(out, (std::vector<int>{1}));
    EXPECT_FALSE(q.popBatch(out, 10)); // closed AND empty: exit
}

TEST(Queue, CloseWakesABlockedConsumer)
{
    BoundedQueue<int> q(4);
    std::atomic<bool> exited{false};
    std::thread consumer([&] {
        std::vector<int> out;
        while (q.popBatch(out, 4)) {
        }
        exited.store(true);
    });
    // Give the consumer a moment to block, then close.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    consumer.join();
    EXPECT_TRUE(exited.load());
}

// --- ServiceCore ------------------------------------------------

cloud::ProviderParams
tinyServiceParams(std::uint64_t seed = 7)
{
    FabricParams f;
    f.sliceCols = 1;
    f.bankCols = 4;
    f.rows = 8;
    cloud::ProviderParams p;
    p.fabric = f;
    p.provisioning = cloud::Provisioning::FineGrain;
    p.quantum = 50'000;
    p.arrivalProb = 0.0; // arrivals only via requests
    p.seed = seed;
    return p;
}

TEST(Core, TenantLifecycleThroughRequests)
{
    cloud::CloudProvider provider(tinyServiceParams());
    ServiceCore core(provider, /*audit_each_quantum=*/true);

    Request arrive;
    arrive.id = 1;
    arrive.op = Op::Arrive;
    arrive.cls = 0;
    arrive.residence = 100; // outlives the test: departs are ours
    JsonValue resp = core.apply(arrive);
    ASSERT_EQ(resp.getBool("ok"), true);
    auto tenant = resp.getUint("tenant");
    ASSERT_TRUE(tenant.has_value());
    EXPECT_TRUE(resp.getString("app").has_value());

    Request step;
    step.id = 2;
    step.op = Op::Step;
    step.quanta = 5;
    resp = core.apply(step);
    ASSERT_EQ(resp.getBool("ok"), true);
    EXPECT_EQ(resp.getUint("round"), 5u);

    Request query;
    query.id = 3;
    query.op = Op::Query;
    query.tenant = static_cast<std::uint32_t>(*tenant);
    resp = core.apply(query);
    ASSERT_EQ(resp.getBool("ok"), true);
    EXPECT_EQ(resp.getString("state"), "active");
    EXPECT_GT(resp.getNumber("bill").value_or(0.0), 0.0);

    Request depart;
    depart.id = 4;
    depart.op = Op::Depart;
    depart.tenant = query.tenant;
    resp = core.apply(depart);
    ASSERT_EQ(resp.getBool("ok"), true);
    EXPECT_EQ(resp.getString("state"), "departed");

    // Departing again: unknown_tenant, not a crash.
    depart.id = 5;
    resp = core.apply(depart);
    ASSERT_EQ(resp.getBool("ok"), false);
    EXPECT_EQ(resp.getString("error"), errors::UnknownTenant);

    EXPECT_EQ(core.stats().applied, 5u);
    EXPECT_EQ(core.stats().failed, 1u);
}

TEST(Core, SnapshotReportsOccupancy)
{
    cloud::CloudProvider provider(tinyServiceParams());
    ServiceCore core(provider, true);

    Request arrive;
    arrive.op = Op::Arrive;
    arrive.residence = 100;
    core.apply(arrive);
    Request step;
    step.op = Op::Step;
    core.apply(step);

    Request snap;
    snap.id = 9;
    snap.op = Op::Snapshot;
    JsonValue resp = core.apply(snap);
    ASSERT_EQ(resp.getBool("ok"), true);
    EXPECT_EQ(resp.getUint("arrivals"), 1u);
    EXPECT_EQ(resp.getUint("active"), 1u);
    EXPECT_EQ(resp.getBool("draining"), false);
    EXPECT_TRUE(resp.getUint("free_slices").has_value());
}

TEST(Core, DrainClosesAdmissionsAndConservesBilling)
{
    cloud::CloudProvider provider(tinyServiceParams());
    ServiceCore core(provider, true);

    for (int i = 0; i < 3; ++i) {
        Request arrive;
        arrive.op = Op::Arrive;
        arrive.cls = static_cast<std::uint32_t>(i);
        arrive.residence = 100;
        core.apply(arrive);
    }
    Request step;
    step.op = Op::Step;
    step.quanta = 4;
    core.apply(step);

    Request drain;
    drain.id = 77;
    drain.op = Op::Drain;
    JsonValue resp = core.apply(drain);
    ASSERT_EQ(resp.getBool("ok"), true);
    EXPECT_EQ(resp.getUint("id"), 77u);

    // Every admitted tenant produced a final bill, and the report's
    // revenue is their sum (drainReport() also ran auditProvider —
    // the billing-conservation gate — or apply() would have thrown).
    const JsonValue *bills = resp.find("bills");
    ASSERT_NE(bills, nullptr);
    ASSERT_TRUE(bills->isArray());
    double total = 0.0;
    for (const JsonValue &row : bills->items())
        total += row.getNumber("bill").value_or(0.0);
    EXPECT_NEAR(total, resp.getNumber("revenue").value_or(-1.0),
                1e-9);
    EXPECT_EQ(resp.getUint("departed"), bills->items().size());

    // Post-drain arrivals are rejected with the draining code.
    Request late;
    late.id = 78;
    late.op = Op::Arrive;
    late.residence = 5;
    resp = core.apply(late);
    ASSERT_EQ(resp.getBool("ok"), false);
    EXPECT_EQ(resp.getString("error"), errors::Draining);

    // Stepping a drained provider stays legal and audited.
    Request after;
    after.op = Op::Step;
    EXPECT_EQ(core.apply(after).getBool("ok"), true);
}

// --- Loopback integration ---------------------------------------

std::string
testSocketPath(const char *tag)
{
    return strfmt("/tmp/cash_test_svc.%d.%s.sock",
                  static_cast<int>(::getpid()), tag);
}

/** Raw framed connection for hostile-input tests: no client-side
 *  validation, so we can put anything on the wire. */
class RawConn
{
  public:
    explicit RawConn(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(::connect(fd_,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
    }

    ~RawConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void sendRaw(std::string_view bytes)
    {
        ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(),
                         MSG_NOSIGNAL),
                  static_cast<ssize_t>(bytes.size()));
    }

    /** The next response frame as parsed JSON; nullopt on EOF. */
    std::optional<JsonValue> readResponse()
    {
        while (true) {
            if (auto payload = dec_.next()) {
                auto v = parseJson(*payload);
                EXPECT_TRUE(v.has_value());
                return v;
            }
            EXPECT_EQ(dec_.error(), nullptr);
            char buf[1024];
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                return std::nullopt; // EOF (server closed)
            dec_.feed(buf, static_cast<std::size_t>(n));
        }
    }

    /** True when the server has closed its side. */
    bool waitForEof()
    {
        char buf[64];
        while (true) {
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n == 0)
                return true;
            if (n < 0)
                return false;
        }
    }

  private:
    int fd_ = -1;
    FrameDecoder dec_;
};

TEST(Loopback, SynchronousSessionOverUnixSocket)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("sync");
    sc.audit = true;
    ServiceServer server(tinyServiceParams(), sc);
    server.start();

    {
        ServiceClient client =
            ServiceClient::connectUnix(sc.unixPath);
        JsonValue resp = client.ping();
        EXPECT_EQ(resp.getBool("ok"), true);

        resp = client.arrive(0, 100);
        ASSERT_EQ(resp.getBool("ok"), true);
        auto tenant = resp.getUint("tenant");
        ASSERT_TRUE(tenant.has_value());

        resp = client.step(3);
        EXPECT_EQ(resp.getUint("round"), 3u);

        resp = client.query(static_cast<std::uint32_t>(*tenant));
        EXPECT_EQ(resp.getString("state"), "active");

        resp = client.snapshot();
        EXPECT_EQ(resp.getUint("active"), 1u);

        resp = client.depart(static_cast<std::uint32_t>(*tenant));
        EXPECT_EQ(resp.getString("state"), "departed");
    }

    server.stop();
    EXPECT_EQ(server.finalReport().getBool("ok"), true);
    EXPECT_EQ(server.stats().requests.load(),
              server.stats().responses.load());
}

TEST(Loopback, TcpEphemeralPort)
{
    ServerConfig sc;
    sc.listenTcp = true;
    sc.tcpPort = 0; // ephemeral
    ServiceServer server(tinyServiceParams(), sc);
    server.start();
    ASSERT_NE(server.tcpPort(), 0);

    {
        ServiceClient client =
            ServiceClient::connectTcp(server.tcpPort());
        EXPECT_EQ(client.ping().getBool("ok"), true);
        EXPECT_EQ(client.arrive(1, 10).getBool("ok"), true);
    }
    server.stop();
    EXPECT_EQ(server.finalReport().getBool("ok"), true);
}

TEST(Loopback, PipelinedResponsesMatchByIdOutOfWaitOrder)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("pipe");
    ServiceServer server(tinyServiceParams(), sc);
    server.start();

    {
        ServiceClient client =
            ServiceClient::connectUnix(sc.unixPath);
        Request a;
        a.op = Op::Arrive;
        a.residence = 50;
        Request p;
        p.op = Op::Ping;
        std::uint64_t id1 = client.send(a);
        std::uint64_t id2 = client.send(p);
        std::uint64_t id3 = client.send(p);
        // Waiting for the LAST id first forces the stash path.
        JsonValue r3 = client.wait(id3);
        JsonValue r1 = client.wait(id1);
        JsonValue r2 = client.wait(id2);
        EXPECT_EQ(r1.getUint("id"), id1);
        EXPECT_EQ(r2.getUint("id"), id2);
        EXPECT_EQ(r3.getUint("id"), id3);
        EXPECT_EQ(r1.getBool("ok"), true);
    }
    server.stop();
}

TEST(Loopback, ConcurrentClientsAllGetAnswers)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("conc");
    ServiceServer server(tinyServiceParams(), sc);
    server.start();

    constexpr unsigned kClients = 8;
    constexpr unsigned kCalls = 24;
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            try {
                ServiceClient client =
                    ServiceClient::connectUnix(sc.unixPath);
                Rng rng(1000 + t);
                std::vector<std::uint32_t> owned;
                for (unsigned i = 0; i < kCalls; ++i) {
                    JsonValue resp;
                    unsigned pick =
                        static_cast<unsigned>(rng.nextBounded(4));
                    if (pick == 0 && !owned.empty()) {
                        std::uint32_t id = owned.back();
                        owned.pop_back();
                        resp = client.depart(id);
                    } else if (pick == 1) {
                        resp = client.step(1);
                    } else {
                        resp = client.arrive(
                            static_cast<std::uint32_t>(
                                rng.nextBounded(3)),
                            1 + static_cast<std::uint32_t>(
                                    rng.nextBounded(20)));
                        if (resp.getBool("ok") == true
                            && resp.getString("state")
                                != "rejected")
                            owned.push_back(
                                static_cast<std::uint32_t>(
                                    *resp.getUint("tenant")));
                    }
                    // Every call() returned: one response per
                    // request. Application-level rejections are
                    // fine; transport failures throw.
                }
                if (client.received() != kCalls)
                    ++failures;
            } catch (const FatalError &) {
                ++failures;
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0u);

    server.stop();
    // The drain report is the billing-conservation gate: drain()
    // plus auditProvider ran inside stop().
    EXPECT_EQ(server.finalReport().getBool("ok"), true);
    EXPECT_EQ(server.stats().requests.load(),
              static_cast<std::uint64_t>(kClients) * kCalls);
    EXPECT_EQ(server.stats().requests.load(),
              server.stats().responses.load());
    EXPECT_EQ(server.stats().protocolErrors.load(), 0u);
}

TEST(Loopback, QueueFullIsAnsweredNotDropped)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("full");
    sc.queueCapacity = 1;
    sc.maxBatch = 1;
    ServiceServer server(tinyServiceParams(), sc);
    server.start();

    {
        ServiceClient client =
            ServiceClient::connectUnix(sc.unixPath);
        // One heavy step occupies the sim thread...
        Request heavy;
        heavy.op = Op::Step;
        heavy.quanta = 2000;
        client.send(heavy);
        // ...then a burst of pings lands on a capacity-1 queue. The
        // contract is every request answered exactly once — some
        // with ok:true, the overflow with the queue_full error —
        // and NONE silently dropped.
        constexpr unsigned kBurst = 64;
        Request ping;
        ping.op = Op::Ping;
        for (unsigned i = 0; i < kBurst; ++i)
            client.send(ping);

        unsigned oks = 0, full = 0;
        for (unsigned i = 0; i < kBurst + 1; ++i) {
            JsonValue resp = client.next();
            if (resp.getBool("ok") == true) {
                ++oks;
            } else {
                EXPECT_EQ(resp.getString("error"),
                          errors::QueueFull);
                ++full;
            }
        }
        EXPECT_EQ(oks + full, kBurst + 1);
        EXPECT_EQ(client.received(), kBurst + 1);
        EXPECT_EQ(server.stats().queueFull.load(), full);
    }
    server.stop();
    EXPECT_EQ(server.finalReport().getBool("ok"), true);
}

TEST(Loopback, MalformedJsonGetsErrorThenClose)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("badjson");
    ServiceServer server(tinyServiceParams(), sc);
    server.start();

    {
        RawConn conn(sc.unixPath);
        conn.sendRaw(encodeFrame("{\"id\":3,\"op\""));
        auto resp = conn.readResponse();
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->getBool("ok"), false);
        EXPECT_EQ(resp->getString("error"), errors::Malformed);
        // Undecodable JSON means unknowable framing intent: the
        // server flushes the error and closes.
        EXPECT_TRUE(conn.waitForEof());
    }

    // Valid JSON that is not a valid request keeps the connection:
    // the client is speaking the protocol, just asking nonsense.
    {
        RawConn conn(sc.unixPath);
        conn.sendRaw(encodeFrame("{\"id\":4,\"op\":\"warp\"}"));
        auto resp = conn.readResponse();
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->getString("error"), errors::UnknownOp);
        EXPECT_EQ(resp->getUint("id"), 4u);

        conn.sendRaw(encodeFrame("{\"id\":5,\"op\":\"ping\"}"));
        resp = conn.readResponse();
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->getBool("ok"), true);
        EXPECT_EQ(resp->getUint("id"), 5u);
    }

    server.stop();
    EXPECT_GE(server.stats().protocolErrors.load(), 1u);
}

TEST(Loopback, OversizedAndEmptyFramesAreRejected)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("hostile");
    sc.maxFrame = 256;
    ServiceServer server(tinyServiceParams(), sc);
    server.start();

    {
        // Oversized: the length prefix alone convicts the stream.
        RawConn conn(sc.unixPath);
        conn.sendRaw(encodeFrame(std::string(300, ' ')));
        auto resp = conn.readResponse();
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->getString("error"), errors::FrameTooLarge);
        EXPECT_TRUE(conn.waitForEof());
    }
    {
        // Empty frame: malformed, poisoned, closed.
        RawConn conn(sc.unixPath);
        conn.sendRaw(std::string(4, '\0'));
        auto resp = conn.readResponse();
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->getString("error"), errors::Malformed);
        EXPECT_TRUE(conn.waitForEof());
    }

    server.stop();
    EXPECT_EQ(server.finalReport().getBool("ok"), true);
}

TEST(Loopback, DrainOpAndHalfClose)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("drain");
    ServiceServer server(tinyServiceParams(), sc);
    server.start();

    {
        ServiceClient client =
            ServiceClient::connectUnix(sc.unixPath);
        ASSERT_EQ(client.arrive(0, 100).getBool("ok"), true);
        client.step(2);

        JsonValue resp = client.drain();
        ASSERT_EQ(resp.getBool("ok"), true);
        ASSERT_NE(resp.find("bills"), nullptr);
        EXPECT_EQ(resp.find("bills")->items().size(), 1u);

        // Admissions are closed once drained.
        resp = client.arrive(0, 5);
        EXPECT_EQ(resp.getString("error"), errors::Draining);

        // Half-close: pipeline a ping, shut down our write side,
        // and the server still flushes the response before closing.
        Request ping;
        ping.op = Op::Ping;
        std::uint64_t id = client.send(ping);
        client.finishSending();
        EXPECT_EQ(client.wait(id).getBool("ok"), true);
    }
    server.stop();
    EXPECT_EQ(server.finalReport().getBool("ok"), true);
}

TEST(Loopback, StopDrainReportCarriesFinalBills)
{
    ServerConfig sc;
    sc.unixPath = testSocketPath("bills");
    ServiceServer server(tinyServiceParams(), sc);
    server.start();

    std::size_t admitted = 0;
    {
        ServiceClient client =
            ServiceClient::connectUnix(sc.unixPath);
        for (unsigned i = 0; i < 4; ++i) {
            JsonValue resp = client.arrive(i % 3, 100);
            ASSERT_EQ(resp.getBool("ok"), true);
            if (resp.getString("state") != "rejected")
                ++admitted;
        }
        client.step(3);
    }

    server.stop();
    const JsonValue &report = server.finalReport();
    ASSERT_EQ(report.getBool("ok"), true);
    const JsonValue *bills = report.find("bills");
    ASSERT_NE(bills, nullptr);
    EXPECT_EQ(bills->items().size(), admitted);
    double total = 0.0;
    for (const JsonValue &row : bills->items()) {
        EXPECT_TRUE(row.getUint("tenant").has_value());
        EXPECT_TRUE(row.getString("app").has_value());
        total += row.getNumber("bill").value_or(0.0);
    }
    EXPECT_NEAR(total, report.getNumber("revenue").value_or(-1.0),
                1e-9);

    // stop() is idempotent.
    server.stop();
}

} // namespace
} // namespace cash::service
