/**
 * @file
 * Tests for the fabric grid geometry.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "fabric/grid.hh"

namespace cash
{
namespace
{

TEST(Grid, DefaultCounts)
{
    FabricGrid g;
    EXPECT_EQ(g.numSlices(), 64u);
    EXPECT_EQ(g.numBanks(), 128u);
}

TEST(Grid, ZeroDimensionRejected)
{
    FabricParams p;
    p.rows = 0;
    EXPECT_THROW(FabricGrid{p}, FatalError);
}

TEST(Grid, SliceCoordsDistinct)
{
    FabricGrid g;
    std::set<std::pair<int, int>> seen;
    for (SliceId s = 0; s < g.numSlices(); ++s) {
        TileCoord c = g.sliceCoord(s);
        EXPECT_TRUE(seen.insert({c.x, c.y}).second)
            << "duplicate coordinate for slice " << s;
    }
}

TEST(Grid, BankCoordsDistinctAndDisjointFromSlices)
{
    FabricGrid g;
    std::set<std::pair<int, int>> slices;
    for (SliceId s = 0; s < g.numSlices(); ++s) {
        TileCoord c = g.sliceCoord(s);
        slices.insert({c.x, c.y});
    }
    std::set<std::pair<int, int>> banks;
    for (BankId b = 0; b < g.numBanks(); ++b) {
        TileCoord c = g.bankCoord(b);
        EXPECT_TRUE(banks.insert({c.x, c.y}).second);
        EXPECT_EQ(slices.count({c.x, c.y}), 0u)
            << "bank " << b << " collides with a slice";
    }
}

TEST(Grid, DistanceMetricProperties)
{
    FabricGrid g;
    // Symmetry and identity.
    for (SliceId a = 0; a < 8; ++a) {
        EXPECT_EQ(g.sliceDistance(a, a), 0u);
        for (SliceId b = 0; b < 8; ++b)
            EXPECT_EQ(g.sliceDistance(a, b), g.sliceDistance(b, a));
    }
    // Triangle inequality on a sample.
    for (SliceId a = 0; a < 6; ++a)
        for (SliceId b = 0; b < 6; ++b)
            for (SliceId c = 0; c < 6; ++c)
                EXPECT_LE(g.sliceDistance(a, c),
                          g.sliceDistance(a, b)
                              + g.sliceDistance(b, c));
}

TEST(Grid, AdjacentSlicesInColumnAreClose)
{
    FabricGrid g;
    // Slices 0 and 1 are adjacent rows of the same column.
    EXPECT_EQ(g.sliceDistance(0, 1), 1u);
}

TEST(Grid, MeanAccessDistanceGrowsWithBankSpread)
{
    FabricGrid g;
    std::vector<SliceId> slices{0};
    std::vector<BankId> near{0};
    std::vector<BankId> spread;
    for (BankId b = 0; b < g.numBanks(); b += 16)
        spread.push_back(b);
    EXPECT_LT(g.meanAccessDistance(slices, near),
              g.meanAccessDistance(slices, spread));
}

TEST(Grid, MeanAccessDistanceEmptySets)
{
    FabricGrid g;
    EXPECT_EQ(g.meanAccessDistance({}, {0}), 0.0);
    EXPECT_EQ(g.meanAccessDistance({0}, {}), 0.0);
}

TEST(GridDeath, OutOfRangePanics)
{
    FabricGrid g;
    EXPECT_DEATH(g.sliceCoord(g.numSlices()), "out of range");
    EXPECT_DEATH(g.bankCoord(g.numBanks()), "out of range");
}

/** Geometry invariants across fabric shapes. */
class GridShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GridShapeTest, AllTilesAddressable)
{
    auto [sc, bc, rows] = GetParam();
    FabricParams p;
    p.sliceCols = sc;
    p.bankCols = bc;
    p.rows = rows;
    FabricGrid g(p);
    EXPECT_EQ(g.numSlices(), static_cast<unsigned>(sc * rows));
    EXPECT_EQ(g.numBanks(), static_cast<unsigned>(bc * rows));
    for (SliceId s = 0; s < g.numSlices(); ++s)
        EXPECT_GE(g.sliceCoord(s).x, 0);
    for (BankId b = 0; b < g.numBanks(); ++b)
        EXPECT_GE(g.bankCoord(b).x, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridShapeTest,
    ::testing::Values(std::make_tuple(1, 2, 4),
                      std::make_tuple(2, 4, 8),
                      std::make_tuple(4, 8, 16),
                      std::make_tuple(8, 8, 32)));

} // namespace
} // namespace cash
