/**
 * @file
 * Tests for the configuration space and the EC2-anchored cost model
 * (paper Sec VI-B).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/log.hh"
#include "core/config_space.hh"

namespace cash
{
namespace
{

TEST(ConfigSpace, PaperSweepIs64Configs)
{
    // 1..8 Slices x 64KB..8MB in power-of-two steps.
    ConfigSpace space;
    EXPECT_EQ(space.size(), 64u);
    EXPECT_EQ(space.base(), (VCoreConfig{1, 1}));
    EXPECT_EQ(space.at(63), (VCoreConfig{8, 128}));
}

TEST(ConfigSpace, IndexRoundTrip)
{
    ConfigSpace space;
    for (std::size_t k = 0; k < space.size(); ++k)
        EXPECT_EQ(space.indexOf(space.at(k)), k);
}

TEST(ConfigSpace, ContainsRejectsNonPow2Banks)
{
    ConfigSpace space;
    EXPECT_TRUE(space.contains({4, 32}));
    EXPECT_FALSE(space.contains({4, 33}));
    EXPECT_FALSE(space.contains({0, 1}));
    EXPECT_FALSE(space.contains({9, 1}));
    EXPECT_FALSE(space.contains({1, 256}));
}

TEST(ConfigSpace, IndexOfOutsideFatal)
{
    ConfigSpace space;
    EXPECT_THROW(space.indexOf({4, 33}), FatalError);
}

TEST(ConfigSpace, NeighboursAreGridAdjacent)
{
    ConfigSpace space;
    std::size_t k = space.indexOf({4, 8});
    auto ns = space.neighbours(k);
    EXPECT_EQ(ns.size(), 4u);
    std::vector<VCoreConfig> expected{
        {3, 8}, {5, 8}, {4, 4}, {4, 16}};
    for (std::size_t n : ns) {
        EXPECT_NE(std::find(expected.begin(), expected.end(),
                            space.at(n)),
                  expected.end())
            << space.at(n).str();
    }
}

TEST(ConfigSpace, CornerHasTwoNeighbours)
{
    ConfigSpace space;
    EXPECT_EQ(space.neighbours(space.indexOf({1, 1})).size(), 2u);
    EXPECT_EQ(space.neighbours(space.indexOf({8, 128})).size(), 2u);
}

TEST(ConfigSpace, CustomSpace)
{
    // The coarse-grain big.LITTLE pair (paper Sec VI-E).
    ConfigSpace coarse(
        std::vector<VCoreConfig>{{1, 2}, {8, 64}});
    EXPECT_EQ(coarse.size(), 2u);
    EXPECT_EQ(coarse.base(), (VCoreConfig{1, 2}));
    EXPECT_TRUE(coarse.contains({8, 64}));
    EXPECT_FALSE(coarse.contains({4, 8}));
    EXPECT_EQ(coarse.indexOf({8, 64}), 1u);
    EXPECT_TRUE(coarse.neighbours(0).empty());
}

TEST(ConfigSpace, EmptyCustomRejected)
{
    EXPECT_THROW(ConfigSpace(std::vector<VCoreConfig>{}),
                 FatalError);
}

TEST(ConfigSpace, StrFormatting)
{
    EXPECT_EQ((VCoreConfig{1, 1}).str(), "1S/64KB");
    EXPECT_EQ((VCoreConfig{8, 64}).str(), "8S/4MB");
    EXPECT_EQ((VCoreConfig{2, 16}).str(), "2S/1MB");
}

TEST(CostModel, PaperPrices)
{
    // Sec VI-B: $0.0098/Slice, $0.0032/64KB; minimal config matches
    // the t2.micro at $0.013/hr.
    CostModel cost;
    EXPECT_NEAR(cost.ratePerHour({1, 1}), 0.013, 1e-9);
    EXPECT_NEAR(cost.ratePerHour({8, 64}),
                8 * 0.0098 + 64 * 0.0032, 1e-9);
}

TEST(CostModel, LinearInResources)
{
    CostModel cost;
    double one = cost.ratePerHour({1, 1});
    double two = cost.ratePerHour({2, 2});
    EXPECT_NEAR(two, 2 * one, 1e-12);
}

TEST(CostModel, CycleConversion)
{
    CostModel cost(0.0098, 0.0032, 1e9);
    // 3.6e12 cycles at 1 GHz = 1 hour.
    EXPECT_NEAR(cost.hours(3'600'000'000'000ull), 1.0, 1e-12);
    EXPECT_NEAR(cost.cost({1, 1}, 3'600'000'000'000ull), 0.013,
                1e-9);
}

TEST(CostModel, BadParamsRejected)
{
    EXPECT_THROW(CostModel(-1, 0.1, 1e9), FatalError);
    EXPECT_THROW(CostModel(0.1, 0.1, 0), FatalError);
}

/** Cost ordering: strictly monotone in each dimension. */
class CostMonotoneTest
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CostMonotoneTest, MonotoneInBanks)
{
    CostModel cost;
    std::uint32_t slices = GetParam();
    double prev = 0.0;
    for (std::uint32_t b = 1; b <= 128; b *= 2) {
        double r = cost.ratePerHour({slices, b});
        EXPECT_GT(r, prev);
        prev = r;
    }
}

INSTANTIATE_TEST_SUITE_P(Slices, CostMonotoneTest,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace cash
