/**
 * @file
 * Tests for the two-level rename / register flush model (Fig 5).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "sim/params.hh"
#include "sim/regfile.hh"

namespace cash
{
namespace
{

SliceParams
params()
{
    return SliceParams{};
}

TEST(Regfile, WriteSetsPrimary)
{
    RenameState rs(params(), 4);
    rs.write(3, 2);
    EXPECT_EQ(rs.primaryWriter(3), 2u);
    EXPECT_TRUE(rs.hasCopy(3, 2));
    EXPECT_FALSE(rs.hasCopy(3, 0));
}

TEST(Regfile, ReadCreatesCopy)
{
    RenameState rs(params(), 4);
    rs.write(5, 1);
    EXPECT_TRUE(rs.read(5, 3)); // cross-slice: transfer needed
    EXPECT_TRUE(rs.hasCopy(5, 3));
    EXPECT_FALSE(rs.read(5, 3)); // already local
    EXPECT_FALSE(rs.read(5, 1)); // writer has it
    EXPECT_EQ(rs.crossSliceReads(), 1u);
}

TEST(Regfile, ReadOfNeverWrittenIsFree)
{
    RenameState rs(params(), 2);
    EXPECT_FALSE(rs.read(7, 1));
}

TEST(Regfile, RewriteMovesPrimary)
{
    RenameState rs(params(), 4);
    rs.write(2, 0);
    rs.write(2, 3);
    EXPECT_EQ(rs.primaryWriter(2), 3u);
    // Old copies are released with the old global register.
    EXPECT_FALSE(rs.hasCopy(2, 0));
}

TEST(Regfile, LiveGlobalsBoundedByArchRegs)
{
    RenameState rs(params(), 2);
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        rs.write(static_cast<std::uint8_t>(r.nextBounded(32)),
                 static_cast<std::uint32_t>(r.nextBounded(2)));
    }
    // One live global per architectural register at most — the
    // free list never exhausts under rewrites.
    EXPECT_LE(rs.liveGlobals(), params().archRegs);
}

TEST(Regfile, ShrinkFlushCountsPrimariesOnRemovedSlices)
{
    RenameState rs(params(), 4);
    rs.write(0, 3); // on a removed member
    rs.write(1, 3);
    rs.write(2, 0); // on the survivor
    std::uint32_t flushed = rs.shrink(1);
    EXPECT_EQ(flushed, 2u);
    // All primaries now live on survivors.
    EXPECT_EQ(rs.primaryWriter(0), 0u);
    EXPECT_EQ(rs.primaryWriter(1), 0u);
    EXPECT_EQ(rs.primaryWriter(2), 0u);
    EXPECT_EQ(rs.numSlices(), 1u);
}

TEST(Regfile, Fig5Scenario)
{
    // Paper Fig 5: gr0 written by Slice1 (member 0), gr1 and gr2 by
    // Slice2 (member 1). Slice1 holds a read copy of gr1; Slice2 a
    // copy of gr0. On shrink to one Slice, both gr1 and gr2 are
    // pushed (Slice2 is their primary writer).
    RenameState rs(params(), 2);
    rs.write(0, 0);
    rs.write(1, 1);
    rs.write(2, 1);
    rs.read(1, 0); // Slice1 reads gr1
    rs.read(0, 1); // Slice2 reads gr0
    std::uint32_t flushed = rs.shrink(1);
    EXPECT_EQ(flushed, 2u); // gr1 and gr2 pushed; gr0 stays
    EXPECT_TRUE(rs.hasCopy(1, 0));
    EXPECT_TRUE(rs.hasCopy(2, 0));
}

TEST(Regfile, FlushBoundedByPhysRegs)
{
    // Paper Sec III-B1: "the total number of flushes is bounded by
    // the total number of global registers."
    SliceParams sp;
    RenameState rs(sp, 8);
    Rng r(11);
    for (int i = 0; i < 5000; ++i) {
        rs.write(static_cast<std::uint8_t>(r.nextBounded(32)),
                 1 + static_cast<std::uint32_t>(r.nextBounded(7)));
    }
    std::uint32_t flushed = rs.shrink(1);
    EXPECT_LE(flushed, sp.physRegs);
    EXPECT_LE(flushed, sp.archRegs); // and by live arch bindings
}

TEST(Regfile, ExpandPreservesState)
{
    RenameState rs(params(), 2);
    rs.write(4, 1);
    rs.expand(6);
    EXPECT_EQ(rs.numSlices(), 6u);
    EXPECT_EQ(rs.primaryWriter(4), 1u);
    rs.write(5, 5);
    EXPECT_EQ(rs.primaryWriter(5), 5u);
}

TEST(Regfile, CopiesPrunedToSurvivors)
{
    RenameState rs(params(), 4);
    rs.write(9, 0);
    rs.read(9, 3);
    ASSERT_TRUE(rs.hasCopy(9, 3));
    rs.shrink(2);
    EXPECT_FALSE(rs.hasCopy(9, 3));
    EXPECT_TRUE(rs.hasCopy(9, 0));
}

TEST(Regfile, ShrinkPrefersSurvivingCopyAsPrimary)
{
    RenameState rs(params(), 4);
    rs.write(6, 3);
    rs.read(6, 1); // member 1 holds a copy and survives
    rs.shrink(2);
    EXPECT_EQ(rs.primaryWriter(6), 1u);
}

TEST(RegfileDeath, BadIndicesPanic)
{
    RenameState rs(params(), 2);
    EXPECT_DEATH(rs.write(200, 0), "out of range");
    EXPECT_DEATH(rs.write(0, 5), "member");
    EXPECT_DEATH(rs.read(200, 0), "out of range");
}

TEST(Regfile, BadConstruction)
{
    EXPECT_THROW(RenameState(params(), 0), FatalError);
    EXPECT_THROW(RenameState(params(), 65), FatalError);
    SliceParams sp;
    sp.physRegs = 16;
    sp.archRegs = 32;
    EXPECT_THROW(RenameState(sp, 2), FatalError);
}

/** Random workloads: shrink invariants across member counts. */
class RegfileShrinkTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RegfileShrinkTest, SequentialShrinksStaySane)
{
    std::uint32_t start = GetParam();
    RenameState rs(params(), start);
    Rng r(start * 37);
    for (int i = 0; i < 3000; ++i) {
        auto reg = static_cast<std::uint8_t>(r.nextBounded(32));
        auto member =
            static_cast<std::uint32_t>(r.nextBounded(start));
        if (r.nextBool(0.7))
            rs.write(reg, member);
        else
            rs.read(reg, member);
    }
    for (std::uint32_t n = start - 1; n >= 1; --n) {
        std::uint32_t flushed = rs.shrink(n);
        EXPECT_LE(flushed, params().archRegs);
        for (std::uint8_t reg = 0; reg < 32; ++reg) {
            std::uint32_t p = rs.primaryWriter(reg);
            if (p != ~std::uint32_t(0))
                EXPECT_LT(p, n);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegfileShrinkTest,
                         ::testing::Values(2, 4, 8, 16));

} // namespace
} // namespace cash
