/**
 * @file
 * Tests for the tournament branch predictor.
 */

#include <gtest/gtest.h>

#include <functional>

#include "common/log.hh"
#include "common/rng.hh"
#include "sim/branch_pred.hh"

namespace cash
{
namespace
{

double
accuracy(BranchPredictor &bp, int n,
         const std::function<std::pair<Addr, bool>(int)> &gen)
{
    int correct = 0;
    for (int i = 0; i < n; ++i) {
        auto [pc, taken] = gen(i);
        correct += bp.predictAndTrain(pc, taken).directionCorrect;
    }
    return static_cast<double>(correct) / n;
}

TEST(BranchPred, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    double acc = accuracy(bp, 2000, [](int) {
        return std::make_pair(Addr{0x400}, true);
    });
    EXPECT_GT(acc, 0.99);
}

TEST(BranchPred, LearnsPerSiteBias)
{
    // i.i.d. outcomes at 90% bias: accuracy should approach the
    // bias itself (the bimodal side of the tournament).
    BranchPredictor bp;
    Rng r(7);
    double acc = accuracy(bp, 20000, [&](int i) {
        Addr pc = 0x1000 + static_cast<Addr>(i % 64) * 16;
        bool majority = (i % 64) % 2 == 0;
        bool taken = r.nextBool(0.9) ? majority : !majority;
        return std::make_pair(pc, taken);
    });
    EXPECT_GT(acc, 0.85);
    EXPECT_LT(acc, 0.95);
}

TEST(BranchPred, LearnsLoopPattern)
{
    // Taken 7 times then not-taken: gshare history should learn the
    // exit, pushing accuracy well above the 87.5% bias level.
    BranchPredictor bp;
    double acc = accuracy(bp, 16000, [](int i) {
        return std::make_pair(Addr{0x2000}, (i % 8) != 7);
    });
    EXPECT_GT(acc, 0.97);
}

TEST(BranchPred, RandomBranchesNearChance)
{
    BranchPredictor bp;
    Rng r(13);
    double acc = accuracy(bp, 20000, [&](int) {
        return std::make_pair(Addr{0x3000}, r.nextBool(0.5));
    });
    EXPECT_GT(acc, 0.40);
    EXPECT_LT(acc, 0.60);
}

TEST(BranchPred, BtbMissUntilTaken)
{
    BranchPredictor bp;
    EXPECT_FALSE(bp.predictAndTrain(0x40, true).btbHit);
    EXPECT_TRUE(bp.predictAndTrain(0x40, true).btbHit);
    // A never-taken branch never allocates.
    EXPECT_FALSE(bp.predictAndTrain(0x80, false).btbHit);
    EXPECT_FALSE(bp.predictAndTrain(0x80, false).btbHit);
}

TEST(BranchPred, CountersTrack)
{
    BranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.predictAndTrain(0x10, true);
    EXPECT_EQ(bp.lookups(), 100u);
    EXPECT_LT(bp.mispredicts(), 5u);
}

TEST(BranchPred, ResetForgets)
{
    BranchPredictor bp;
    for (int i = 0; i < 1000; ++i)
        bp.predictAndTrain(0x10, true);
    bp.reset();
    EXPECT_FALSE(bp.predictAndTrain(0x10, true).btbHit);
}

TEST(BranchPred, BadParamsRejected)
{
    EXPECT_THROW(BranchPredictor(0, 16), FatalError);
    EXPECT_THROW(BranchPredictor(30, 16), FatalError);
    EXPECT_THROW(BranchPredictor(12, 17), FatalError);
    EXPECT_THROW(BranchPredictor(12, 0), FatalError);
}

/** The tournament should beat or match both components across a
 *  sweep of bias levels. */
class BranchBiasTest : public ::testing::TestWithParam<double>
{
};

TEST_P(BranchBiasTest, AccuracyTracksBias)
{
    double bias = GetParam();
    BranchPredictor bp;
    Rng r(static_cast<std::uint64_t>(bias * 1000));
    double acc = accuracy(bp, 30000, [&](int i) {
        Addr pc = 0x5000 + static_cast<Addr>(i % 32) * 16;
        return std::make_pair(pc, r.nextBool(bias));
    });
    // Accuracy should be within a few points of max(bias, 1-bias).
    double limit = std::max(bias, 1.0 - bias);
    EXPECT_GT(acc, limit - 0.09) << "bias " << bias;
}

INSTANTIATE_TEST_SUITE_P(Biases, BranchBiasTest,
                         ::testing::Values(0.6, 0.75, 0.9, 0.97));

} // namespace
} // namespace cash
