/**
 * @file
 * Tests for virtual-core allocation on the fabric.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "check/audit.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "fabric/allocator.hh"

namespace cash
{
namespace
{

FabricGrid &
grid()
{
    static FabricGrid g;
    return g;
}

/** Every slice/bank is held by at most one live vcore. */
void
checkNoOverlap(const FabricAllocator &alloc,
               const std::vector<VCoreId> &live)
{
    std::set<SliceId> slices;
    std::set<BankId> banks;
    for (VCoreId id : live) {
        const VCoreAllocation &a = alloc.allocation(id);
        for (SliceId s : a.slices)
            EXPECT_TRUE(slices.insert(s).second)
                << "slice " << s << " double-allocated";
        for (BankId b : a.banks)
            EXPECT_TRUE(banks.insert(b).second)
                << "bank " << b << " double-allocated";
    }
}

TEST(Allocator, BasicAllocate)
{
    FabricAllocator alloc(grid());
    auto a = alloc.allocate(4, 8);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->slices.size(), 4u);
    EXPECT_EQ(a->banks.size(), 8u);
    EXPECT_EQ(alloc.freeSlices(), grid().numSlices() - 4);
    EXPECT_EQ(alloc.freeBanks(), grid().numBanks() - 8);
    EXPECT_EQ(alloc.liveVCores(), 1u);
}

TEST(Allocator, ZeroSlicesRejected)
{
    FabricAllocator alloc(grid());
    EXPECT_THROW(alloc.allocate(0, 1), FatalError);
}

TEST(Allocator, BanklessVCoreAllowed)
{
    FabricAllocator alloc(grid());
    auto a = alloc.allocate(1, 0);
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(a->banks.empty());
}

TEST(Allocator, ExhaustionReturnsNullopt)
{
    FabricAllocator alloc(grid());
    auto a = alloc.allocate(grid().numSlices(), 0);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(alloc.allocate(1, 0).has_value());
    // And the failed attempt must not leak resources.
    EXPECT_EQ(alloc.freeSlices(), 0u);
    alloc.release(a->id);
    EXPECT_EQ(alloc.freeSlices(), grid().numSlices());
}

TEST(Allocator, ReleaseRecycles)
{
    FabricAllocator alloc(grid());
    auto a = alloc.allocate(8, 16);
    alloc.release(a->id);
    EXPECT_EQ(alloc.freeSlices(), grid().numSlices());
    EXPECT_EQ(alloc.freeBanks(), grid().numBanks());
    EXPECT_EQ(alloc.liveVCores(), 0u);
}

TEST(Allocator, UnknownIdsAreCheckedErrors)
{
    // Unknown vcore ids are caller mistakes, not internal bugs:
    // every lookup path reports them as catchable FatalErrors
    // rather than aborting the process.
    FabricAllocator alloc(grid());
    EXPECT_THROW(alloc.release(1234), FatalError);
    EXPECT_THROW(alloc.resize(1234, 2, 2), FatalError);
    EXPECT_THROW(alloc.allocation(1234), FatalError);
}

TEST(Allocator, FindReturnsNullForUnknown)
{
    FabricAllocator alloc(grid());
    EXPECT_EQ(alloc.find(1234), nullptr);
    auto a = alloc.allocate(2, 2);
    ASSERT_TRUE(a.has_value());
    const VCoreAllocation *found = alloc.find(a->id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->id, a->id);
    EXPECT_EQ(found->slices, a->slices);
    alloc.release(a->id);
    EXPECT_EQ(alloc.find(a->id), nullptr);
}

TEST(Allocator, LiveIdsTracksAllocations)
{
    FabricAllocator alloc(grid());
    EXPECT_TRUE(alloc.liveIds().empty());
    auto a = alloc.allocate(1, 0);
    auto b = alloc.allocate(1, 0);
    ASSERT_TRUE(a && b);
    auto ids = alloc.liveIds();
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    alloc.release(a->id);
    ids = alloc.liveIds();
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], b->id);
}

TEST(Allocator, PlacementIsCompact)
{
    FabricAllocator alloc(grid());
    auto a = alloc.allocate(8, 0);
    // Greedy placement should keep 8 slices within a small span.
    EXPECT_LE(a->sliceSpan(grid()), 8u);
}

TEST(Allocator, BanksPlacedNearSlices)
{
    FabricAllocator alloc(grid());
    auto small = alloc.allocate(1, 1);
    double near = small->meanL2Distance(grid());
    auto big = alloc.allocate(1, 64);
    double spread = big->meanL2Distance(grid());
    // More banks must reach farther on average — the geometric root
    // of the paper's non-convex configuration space.
    EXPECT_LT(near, spread);
}

TEST(Allocator, ResizeGrowKeepsExistingTiles)
{
    FabricAllocator alloc(grid());
    auto a = alloc.allocate(2, 4);
    auto slices_before = a->slices;
    auto banks_before = a->banks;
    auto b = alloc.resize(a->id, 4, 8);
    ASSERT_TRUE(b.has_value());
    for (std::size_t i = 0; i < slices_before.size(); ++i)
        EXPECT_EQ(b->slices[i], slices_before[i]);
    for (std::size_t i = 0; i < banks_before.size(); ++i)
        EXPECT_EQ(b->banks[i], banks_before[i]);
}

TEST(Allocator, ResizeShrinkKeepsPrefix)
{
    FabricAllocator alloc(grid());
    auto a = alloc.allocate(6, 8);
    auto slices_before = a->slices;
    auto b = alloc.resize(a->id, 3, 2);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->slices.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(b->slices[i], slices_before[i]);
    EXPECT_EQ(alloc.freeSlices(), grid().numSlices() - 3);
}

TEST(Allocator, ResizeFailureRollsBack)
{
    FabricAllocator alloc(grid());
    auto a = alloc.allocate(2, 2);
    auto hog = alloc.allocate(grid().numSlices() - 2, 0);
    ASSERT_TRUE(hog.has_value());
    auto before = alloc.allocation(a->id);
    EXPECT_FALSE(alloc.resize(a->id, 4, 2).has_value());
    auto after = alloc.allocation(a->id);
    EXPECT_EQ(before.slices, after.slices);
    EXPECT_EQ(before.banks, after.banks);
}

TEST(Allocator, CompactPreservesResourceCounts)
{
    FabricAllocator alloc(grid());
    std::vector<VCoreId> live;
    // Fragment the fabric: allocate 8, free every other one.
    std::vector<VCoreId> temp;
    for (int i = 0; i < 8; ++i) {
        auto a = alloc.allocate(4, 8);
        ASSERT_TRUE(a);
        temp.push_back(a->id);
    }
    for (int i = 0; i < 8; ++i) {
        if (i % 2)
            alloc.release(temp[i]);
        else
            live.push_back(temp[i]);
    }
    std::map<VCoreId, std::pair<std::size_t, std::size_t>> counts;
    for (VCoreId id : live) {
        const auto &a = alloc.allocation(id);
        counts[id] = {a.slices.size(), a.banks.size()};
    }
    alloc.compact();
    for (VCoreId id : live) {
        const auto &a = alloc.allocation(id);
        EXPECT_EQ(a.slices.size(), counts[id].first);
        EXPECT_EQ(a.banks.size(), counts[id].second);
    }
    checkNoOverlap(alloc, live);
}

/** Random allocate/resize/release sequences keep invariants. */
class AllocatorFuzzTest : public ::testing::TestWithParam<int>
{
};

TEST_P(AllocatorFuzzTest, NoOverlapEver)
{
    Rng r(GetParam());
    FabricAllocator alloc(grid());
    std::vector<VCoreId> live;
    std::uint32_t used_slices = 0, used_banks = 0;
    for (int step = 0; step < 300; ++step) {
        int op = static_cast<int>(r.nextBounded(3));
        if (op == 0 || live.empty()) {
            auto s = 1 + static_cast<std::uint32_t>(r.nextBounded(8));
            auto b = static_cast<std::uint32_t>(r.nextBounded(17));
            auto a = alloc.allocate(s, b);
            if (a) {
                live.push_back(a->id);
                used_slices += s;
                used_banks += b;
            }
        } else if (op == 1) {
            std::size_t i = r.nextBounded(live.size());
            const auto &cur = alloc.allocation(live[i]);
            used_slices -=
                static_cast<std::uint32_t>(cur.slices.size());
            used_banks -=
                static_cast<std::uint32_t>(cur.banks.size());
            alloc.release(live[i]);
            live.erase(live.begin() + static_cast<long>(i));
        } else {
            std::size_t i = r.nextBounded(live.size());
            const auto &cur = alloc.allocation(live[i]);
            auto old_slices =
                static_cast<std::uint32_t>(cur.slices.size());
            auto old_banks =
                static_cast<std::uint32_t>(cur.banks.size());
            auto s = 1 + static_cast<std::uint32_t>(r.nextBounded(8));
            auto b = static_cast<std::uint32_t>(r.nextBounded(17));
            auto res = alloc.resize(live[i], s, b);
            if (res) {
                used_slices -= old_slices;
                used_banks -= old_banks;
                used_slices += s;
                used_banks += b;
            }
        }
        ASSERT_EQ(alloc.freeSlices(),
                  grid().numSlices() - used_slices);
        ASSERT_EQ(alloc.freeBanks(), grid().numBanks() - used_banks);
        checkNoOverlap(alloc, live);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

/**
 * Long random allocate/resize/release round trip: after 10k ops and
 * a full teardown the allocator must hand back the entire grid, with
 * the structural audit holding at every sampled step along the way.
 */
TEST(Allocator, RandomRoundTripReturnsWholeGrid)
{
    Rng r(0xCA54);
    FabricAllocator alloc(grid());
    std::vector<VCoreId> live;
    for (int step = 0; step < 10'000; ++step) {
        int op = static_cast<int>(r.nextBounded(4));
        if (op == 0 || live.empty()) {
            auto s = 1 + static_cast<std::uint32_t>(r.nextBounded(8));
            auto b = static_cast<std::uint32_t>(r.nextBounded(17));
            if (auto a = alloc.allocate(s, b))
                live.push_back(a->id);
        } else if (op == 1) {
            std::size_t i = r.nextBounded(live.size());
            alloc.release(live[i]);
            live.erase(live.begin() + static_cast<long>(i));
        } else if (op == 2) {
            std::size_t i = r.nextBounded(live.size());
            auto s = 1 + static_cast<std::uint32_t>(r.nextBounded(8));
            auto b = static_cast<std::uint32_t>(r.nextBounded(17));
            alloc.resize(live[i], s, b);
        } else {
            alloc.compact();
        }
        if (step % 256 == 0) {
            auditAllocator(alloc);
            checkNoOverlap(alloc, live);
        }
    }
    for (VCoreId id : live)
        alloc.release(id);
    EXPECT_EQ(alloc.freeSlices(), grid().numSlices());
    EXPECT_EQ(alloc.freeBanks(), grid().numBanks());
    EXPECT_EQ(alloc.liveVCores(), 0u);
    EXPECT_TRUE(alloc.liveIds().empty());
    auditAllocator(alloc);
}

} // namespace
} // namespace cash
