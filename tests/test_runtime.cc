/**
 * @file
 * Integration tests for the CASH runtime (Algorithm 1).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/runtime.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

PhaseParams
steadyPhase()
{
    PhaseParams p;
    p.name = "steady";
    p.ilpMeanDist = 20;
    p.memFrac = 0.25;
    p.workingSet = 256 * kiB;
    p.seqFrac = 0.5;
    p.branchFrac = 0.08;
    p.branchBias = 0.93;
    p.lengthInsts = 50'000'000;
    return p;
}

struct Rig
{
    Rig(double target, Cycle quantum = 400'000)
        : space(), cost(),
          sim(),
          id(*sim.createVCore(1, 1)),
          inner({steadyPhase()}, 5, true, 0),
          paced(inner, target)
    {
        sim.vcore(id).bindSource(&paced);
        params.quantum = quantum;
        runtime = std::make_unique<CashRuntime>(
            sim, id, QosKind::Throughput, target, space, cost,
            params, 7);
    }

    ConfigSpace space;
    CostModel cost;
    SSim sim;
    VCoreId id;
    PhasedTraceSource inner;
    PacedSource paced;
    RuntimeParams params;
    std::unique_ptr<CashRuntime> runtime;
};

TEST(Runtime, ConvergesToTargetOnStationaryLoad)
{
    Rig rig(0.4, 1'000'000);
    // Let it learn.
    for (int i = 0; i < 30; ++i)
        rig.runtime->step();
    // Then require tight tracking.
    int good = 0, total = 0;
    for (int i = 0; i < 20; ++i) {
        QuantumStats st = rig.runtime->step();
        if (st.samples) {
            ++total;
            good += st.qos > 0.9;
        }
    }
    ASSERT_GT(total, 10);
    EXPECT_GT(good, total * 7 / 10);
}

TEST(Runtime, CostAccountingConsistent)
{
    Rig rig(0.4);
    double sum = 0.0;
    for (int i = 0; i < 20; ++i)
        sum += rig.runtime->step().cost;
    EXPECT_NEAR(rig.runtime->totalCost(), sum, 1e-12);
    EXPECT_GT(sum, 0.0);
    // Sanity: total cost is bounded by the most expensive config
    // held for the whole time.
    double max_rate = rig.cost.ratePerHour({8, 128});
    double hours = rig.cost.hours(rig.sim.vcore(rig.id).now());
    EXPECT_LE(sum, max_rate * hours * 1.01);
}

TEST(Runtime, CheaperThanMaxProvisioning)
{
    Rig rig(0.3);
    for (int i = 0; i < 50; ++i)
        rig.runtime->step();
    double hours = rig.cost.hours(rig.sim.vcore(rig.id).now());
    double max_cost = rig.cost.ratePerHour({8, 128}) * hours;
    EXPECT_LT(rig.runtime->totalCost(), 0.5 * max_cost)
        << "the optimizer should not sit at the largest config";
}

TEST(Runtime, SpeedupCommandRespondsToError)
{
    Rig rig(0.4);
    QuantumStats first = rig.runtime->step();
    // Starting at the base config under a 0.4-IPC pace, early
    // quanta should demand speedup > 1.
    EXPECT_GT(first.speedupCmd, 0.0);
    for (int i = 0; i < 5; ++i)
        rig.runtime->step();
    EXPECT_GT(rig.runtime->controller().speedup(), 0.0);
}

TEST(Runtime, ViolationAccountingMatchesTotals)
{
    Rig rig(0.4);
    std::uint64_t v = 0, s = 0;
    for (int i = 0; i < 30; ++i) {
        QuantumStats st = rig.runtime->step();
        v += st.violations;
        s += st.samples;
    }
    EXPECT_EQ(rig.runtime->totalViolations(), v);
    EXPECT_EQ(rig.runtime->totalSamples(), s);
    EXPECT_LE(v, s);
}

TEST(Runtime, FinishedSourceStopsCleanly)
{
    ConfigSpace space;
    CostModel cost;
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    PhaseParams p = steadyPhase();
    p.lengthInsts = 30'000;
    PhasedTraceSource src({p}, 5, false, 0);
    sim.vcore(id).bindSource(&src);
    RuntimeParams rp;
    rp.quantum = 200'000;
    CashRuntime rt(sim, id, QosKind::Throughput, 0.4, space, cost,
                   rp, 7);
    QuantumStats st;
    for (int i = 0; i < 20 && !st.finished; ++i)
        st = rt.step();
    EXPECT_TRUE(st.finished);
    // Subsequent steps are no-ops.
    QuantumStats post = rt.step();
    EXPECT_TRUE(post.finished);
    EXPECT_EQ(post.cycles, 0u);
}

TEST(Runtime, RunUntilAggregates)
{
    Rig rig(0.4);
    QuantumStats agg = rig.runtime->runUntil(5'000'000);
    EXPECT_GE(rig.sim.vcore(rig.id).now(), 5'000'000u);
    EXPECT_GT(agg.samples, 5u);
    EXPECT_GT(agg.cost, 0.0);
}

TEST(Runtime, StartOutsideSpaceFatal)
{
    ConfigSpace coarse(
        std::vector<VCoreConfig>{{2, 2}, {8, 64}});
    CostModel cost;
    SSim sim;
    auto id = *sim.createVCore(1, 1); // not in the coarse space
    EXPECT_THROW(CashRuntime(sim, id, QosKind::Throughput, 0.4,
                             coarse, cost, RuntimeParams{}, 7),
                 FatalError);
}

TEST(Runtime, ZeroQuantumFatal)
{
    ConfigSpace space;
    CostModel cost;
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    RuntimeParams rp;
    rp.quantum = 0;
    EXPECT_THROW(CashRuntime(sim, id, QosKind::Throughput, 0.4,
                             space, cost, rp, 7),
                 FatalError);
}

TEST(Runtime, WorksOnCoarseGrainSpace)
{
    // The big.LITTLE space of Sec VI-E: the runtime must drive a
    // two-point space without touching grid-only features.
    ConfigSpace coarse(
        std::vector<VCoreConfig>{{1, 2}, {8, 64}});
    CostModel cost;
    SSim sim;
    auto id = *sim.createVCore(1, 2);
    PhasedTraceSource inner({steadyPhase()}, 5, true, 0);
    PacedSource paced(inner, 0.5);
    sim.vcore(id).bindSource(&paced);
    RuntimeParams rp;
    rp.quantum = 400'000;
    CashRuntime rt(sim, id, QosKind::Throughput, 0.5, coarse, cost,
                   rp, 7);
    for (int i = 0; i < 20; ++i) {
        QuantumStats st = rt.step();
        EXPECT_LT(st.schedule.over, coarse.size());
        EXPECT_LT(st.schedule.under, coarse.size());
    }
    EXPECT_GT(rt.totalSamples(), 10u);
}

TEST(Runtime, LearnerTracksVisitedConfigs)
{
    Rig rig(0.4);
    for (int i = 0; i < 25; ++i)
        rig.runtime->step();
    // At least the configs used by the schedule must be visited.
    std::size_t visited = 0;
    for (std::size_t k = 0; k < rig.space.size(); ++k)
        visited += rig.runtime->learner().visited(k);
    EXPECT_GE(visited, 2u);
}

} // namespace
} // namespace cash
