/**
 * @file
 * The energy subsystem: meter identities, conservation under random
 * reconfiguration + DVFS sequences, transition-stall accounting,
 * full-vs-sampled joule agreement, the billing algebra, and the
 * energy-leak mutation catch (DESIGN.md sec 13).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "check/audit.hh"
#include "check/invariant.hh"
#include "cloud/provider.hh"
#include "common/rng.hh"
#include "energy/energy.hh"
#include "sim/ssim.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

using cloud::CloudProvider;
using cloud::FinalBill;
using cloud::ProviderParams;
using cloud::Provisioning;
using cloud::TenantId;
using cloud::TenantState;


PhaseParams
mixPhase()
{
    PhaseParams p;
    p.name = "mix";
    p.ilpMeanDist = 8;
    p.memFrac = 0.3;
    p.branchFrac = 0.1;
    p.lengthInsts = 1'000'000;
    return p;
}

/** Relative agreement of two energies, tolerant near zero. */
void
expectClose(double a, double b, double rel = 1e-9)
{
    EXPECT_NEAR(a, b, 1e-12 + rel * std::max(std::fabs(a),
                                             std::fabs(b)));
}

// --- EnergyModel unit identities -------------------------------

TEST(EnergyModel, TotalsDecomposeExactly)
{
    EnergyParams ep;
    EnergyModel m(ep);
    SliceCounters d;
    d.committedInsts = 10'000;
    d.l1dAccesses = 3'000;
    d.l1iAccesses = 9'000;
    d.l2Accesses = 400;
    d.operandNetMsgs = 700;
    d.branches = 1'200;
    d.branchMispredicts = 60;
    m.accrueDynamic(d, 0);
    m.accrueLeakage(50'000, 2, 4, 0);

    EXPECT_GT(m.dynamicJoules(), 0.0);
    EXPECT_GT(m.leakageJoules(), 0.0);
    expectClose(m.joules(), m.dynamicJoules() + m.leakageJoules());
    expectClose(m.joules(), m.breakdown().total());
}

TEST(EnergyModel, DynamicEnergyScalesWithVoltageSquared)
{
    EnergyParams ep;
    SliceCounters d;
    d.committedInsts = 5'000;
    d.l1dAccesses = 1'000;

    EnergyModel nominal(ep), low(ep);
    nominal.accrueDynamic(d, 0);
    const std::uint32_t p = kNumPStates - 1;
    low.accrueDynamic(d, p);
    expectClose(low.dynamicJoules(),
                nominal.dynamicJoules()
                    * pstateTable()[p].dynScale(),
                1e-9);
    // The lowest operating point strictly saves switching energy.
    EXPECT_LT(low.dynamicJoules(), nominal.dynamicJoules());
}

TEST(EnergyModel, BillingAlgebra)
{
    EnergyParams ep;
    // One kWh costs exactly the configured price.
    expectClose(ep.dollars(3.6e6), ep.pricePerKwh);
    // Linearity: the line item is joules x price, nothing else.
    expectClose(ep.dollars(7.25), 7.25 / 3.6e6 * ep.pricePerKwh);
    EXPECT_EQ(ep.dollars(0.0), 0.0);
}

// --- Conservation under random reconfig + DVFS -----------------

TEST(EnergyConservation, RandomReconfigAndSetFreqSequence)
{
    SSim sim;
    auto id = *sim.createVCore(2, 4);
    PhasedTraceSource src({mixPhase()}, 42, true, 0);
    sim.vcore(id).bindSource(&src);

    Rng rng(0xE4E26);
    double last = 0.0;
    for (int round = 0; round < 40; ++round) {
        // Random walk over the joint action space; a denied or
        // infeasible command simply keeps the current point.
        if (rng.nextBool(0.5)) {
            sim.setFreq(id, static_cast<std::uint32_t>(
                                rng.nextBounded(kNumPStates)));
        }
        if (rng.nextBool(0.4)) {
            auto s = 1 + static_cast<std::uint32_t>(
                         rng.nextBounded(3));
            auto b = 1 + static_cast<std::uint32_t>(
                         rng.nextBounded(8));
            sim.command(id, s, b);
        }
        sim.vcore(id).runUntil(sim.vcore(id).now() + 50'000);

        const VirtualCore &vc = sim.vcore(id);
        double total = vc.energyJoules();
        // The meter only ever integrates forward.
        EXPECT_GE(total, last) << "round " << round;
        last = total;
        // Decomposition identities hold at every instant.
        expectClose(total,
                    vc.dynamicJoules() + vc.leakageJoules(), 1e-9);
        expectClose(total, vc.energyBreakdown().total(), 1e-9);
    }
    EXPECT_GT(last, 0.0);
}

TEST(EnergyConservation, ProviderLedgerUnderDvfsRuntimes)
{
    ProviderParams p;
    p.fabric = FabricParams{1, 4, 8};
    p.provisioning = Provisioning::FineGrain;
    p.seed = 99;
    p.arrivalProb = 0.6;
    p.meanResidenceRounds = 10.0;
    p.runtime.dvfs = true;
    CloudProvider prov(p);
    for (int round = 0; round < 24; ++round) {
        prov.step();
        // auditProvider ends in auditEnergy: the dissipated ledger
        // must decompose into active books + departed + exported
        // joules after every step.
        ASSERT_NO_THROW(auditProvider(prov))
            << "round " << round;
    }
    EXPECT_GT(prov.stats().dissipatedJoules, 0.0);
    EXPECT_GE(prov.stats().overheadJoules, 0.0);

    // External SET_FREQ requests (the service layer's path) keep
    // the books intact too.
    for (TenantId t = 0; t < prov.tenants().size(); ++t) {
        if (prov.tenants()[t]->state == TenantState::Active) {
            prov.injectSetFreq(t, 2);
            break;
        }
    }
    prov.step();
    ASSERT_NO_THROW(auditProvider(prov));
}

// --- DVFS transition-stall accounting --------------------------

TEST(Dvfs, TransitionStallChargedOncePerChange)
{
    SSim sim;
    auto id = *sim.createVCore(1, 2);
    PhasedTraceSource src({mixPhase()}, 7, true, 0);
    sim.vcore(id).bindSource(&src);

    const Cycle stall = sim.params().energy.dvfsStallCycles;
    ASSERT_GT(stall, 0u);

    auto first = sim.setFreq(id, 2);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, stall);
    EXPECT_EQ(sim.vcore(id).pstate(), 2u);
    EXPECT_EQ(sim.vcore(id).meta().dvfsStallCycles, stall);

    // Re-requesting the held P-state is free: no PLL relock.
    auto same = sim.setFreq(id, 2);
    ASSERT_TRUE(same.has_value());
    EXPECT_EQ(*same, 0u);
    EXPECT_EQ(sim.vcore(id).meta().dvfsStallCycles, stall);

    auto back = sim.setFreq(id, 0);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, stall);
    EXPECT_EQ(sim.vcore(id).meta().dvfsStallCycles, 2 * stall);

    // The stall is modeled as held time, not a clock jump: the
    // core still runs and commits afterwards.
    Cycle c0 = sim.vcore(id).now();
    sim.vcore(id).runUntil(c0 + 100'000);
    EXPECT_GT(sim.vcore(id).meta().totalCommitted, 0u);
}

// --- Full vs sampled -------------------------------------------

TEST(EnergySampled, StaticPeakTwinRunJoulesAgreeWithinOnePercent)
{
    auto run = [](SimMode mode) {
        ProviderParams p;
        p.fabric = FabricParams{1, 4, 8};
        p.provisioning = Provisioning::StaticPeak;
        p.seed = 77;
        p.arrivalProb = 0.6;
        p.meanResidenceRounds = 12.0;
        p.simMode = mode;
        CloudProvider prov(p);
        prov.run(48);
        auditProvider(prov);
        return prov.stats().dissipatedJoules;
    };
    double full = run(SimMode::Full);
    double sampled = run(SimMode::Sampled);
    ASSERT_GT(full, 0.0);
    // The sampler spreads extrapolated counters across the
    // fast-forward window, so the meter integrates the same
    // activity the detailed model would have produced, within the
    // sampling error bound.
    EXPECT_NEAR(sampled, full, 0.01 * full);
}

// --- Billing algebra at the provider ---------------------------

TEST(EnergyBilling, FinalBillEnergyLineIsJoulesTimesPrice)
{
    ProviderParams p;
    p.fabric = FabricParams{1, 4, 8};
    p.provisioning = Provisioning::FineGrain;
    p.seed = 5;
    p.arrivalProb = 0.7;
    p.meanResidenceRounds = 8.0;
    p.runtime.dvfs = true;
    CloudProvider prov(p);
    prov.run(20);

    double revenue_before = prov.energyRevenue();
    std::vector<FinalBill> bills = prov.drain();
    ASSERT_FALSE(bills.empty());
    double sum = 0.0;
    for (const FinalBill &b : bills) {
        EXPECT_GE(b.joules, 0.0);
        expectClose(b.energyBill, p.sim.energy.dollars(b.joules));
        sum += b.energyBill;
    }
    // Departed tenants' energy revenue was folded at departure;
    // drain closes the books for the rest. The pre-drain revenue
    // view must already account for everyone.
    expectClose(prov.energyRevenue(), revenue_before, 1e-6);
    EXPECT_GT(sum, 0.0);
}

// --- Mutation: the audit catches a leaked energy ledger --------

TEST(EnergyMutation, LeakedDepartureJoulesAreCaught)
{
    if (!invariantsEnabled)
        GTEST_SKIP() << "requires -DCASH_CHECK_INVARIANTS=ON";

    ProviderParams p;
    p.fabric = FabricParams{1, 4, 8};
    p.provisioning = Provisioning::FineGrain;
    p.arrivalProb = 0.0;
    CloudProvider prov(p);
    TenantId a = prov.injectArrival(0, 8);
    ASSERT_EQ(prov.tenants()[a]->state, TenantState::Active);
    // Accrue some joules before the faulty departure.
    prov.step();
    ASSERT_NO_THROW(auditProvider(prov));

    setInjectedFault(Fault::EnergyLeak);
    EXPECT_TRUE(prov.injectDeparture(a));
    setInjectedFault(Fault::None);

    // The departed tenant's joules were never folded into the
    // departed ledger: dissipated no longer decomposes.
    EXPECT_THROW(auditProvider(prov), InvariantError);
}

} // namespace
} // namespace cash
