/**
 * @file
 * Multi-tenant integration: several independent runtimes sharing
 * one fabric must never overlap resources, must cope with EXPAND
 * denials when the fabric is tight, and must all keep making
 * forward progress.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/runtime.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

PhaseParams
tenantPhase(std::uint64_t salt)
{
    PhaseParams p;
    p.name = "tenant";
    p.ilpMeanDist = 8 + static_cast<double>(salt % 3) * 8;
    p.memFrac = 0.25;
    p.workingSet = (128u << (salt % 3)) * kiB;
    p.dataBase = salt * 64 * miB;
    p.lengthInsts = 10'000'000;
    return p;
}

struct Tenant
{
    VCoreId vcore;
    std::unique_ptr<PhasedTraceSource> app;
    std::unique_ptr<PacedSource> paced;
    std::unique_ptr<CashRuntime> runtime;
};

TEST(MultiTenant, NoResourceOverlapUnderContention)
{
    FabricParams fabric;
    fabric.sliceCols = 2;
    fabric.bankCols = 4;
    fabric.rows = 8; // 16 Slices, 32 banks: tight for 4 tenants
    SSim chip(fabric);
    ConfigSpace space(4, 16);
    CostModel pricing;
    RuntimeParams rp;
    rp.quantum = 200'000;

    std::vector<Tenant> tenants;
    for (std::uint64_t i = 0; i < 4; ++i) {
        Tenant t;
        t.vcore = *chip.createVCore(1, 1);
        t.app = std::make_unique<PhasedTraceSource>(
            std::vector<PhaseParams>{tenantPhase(i)}, 31 + i, true,
            0);
        t.paced = std::make_unique<PacedSource>(*t.app, 0.3);
        chip.vcore(t.vcore).bindSource(t.paced.get());
        t.runtime = std::make_unique<CashRuntime>(
            chip, t.vcore, QosKind::Throughput, 0.3, space, pricing,
            rp, 7 + i);
        tenants.push_back(std::move(t));
    }

    for (int round = 0; round < 25; ++round) {
        for (Tenant &t : tenants)
            t.runtime->step();

        // Invariant: no Slice or bank belongs to two tenants.
        std::set<SliceId> slices;
        std::set<BankId> banks;
        for (Tenant &t : tenants) {
            const auto &alloc =
                chip.allocator().allocation(t.vcore);
            for (SliceId s : alloc.slices)
                ASSERT_TRUE(slices.insert(s).second);
            for (BankId b : alloc.banks)
                ASSERT_TRUE(banks.insert(b).second);
        }
        // Plus the runtime's own Slice stays reserved.
        ASSERT_EQ(slices.count(chip.runtimeSlice()), 0u);
    }

    // Everyone made progress and was sampled.
    for (Tenant &t : tenants) {
        EXPECT_GT(chip.vcore(t.vcore).meta().totalCommitted,
                  100'000u);
        EXPECT_GT(t.runtime->totalSamples(), 10u);
        EXPECT_GT(t.runtime->totalCost(), 0.0);
    }
}

TEST(MultiTenant, IndependentClocksAdvance)
{
    SSim chip; // default (large) fabric
    ConfigSpace space(2, 4);
    CostModel pricing;
    RuntimeParams rp;
    rp.quantum = 150'000;

    Tenant a, b;
    a.vcore = *chip.createVCore(1, 1);
    b.vcore = *chip.createVCore(1, 1);
    a.app = std::make_unique<PhasedTraceSource>(
        std::vector<PhaseParams>{tenantPhase(0)}, 1, true, 0);
    b.app = std::make_unique<PhasedTraceSource>(
        std::vector<PhaseParams>{tenantPhase(1)}, 2, true, 0);
    a.paced = std::make_unique<PacedSource>(*a.app, 0.2);
    b.paced = std::make_unique<PacedSource>(*b.app, 0.4);
    chip.vcore(a.vcore).bindSource(a.paced.get());
    chip.vcore(b.vcore).bindSource(b.paced.get());
    a.runtime = std::make_unique<CashRuntime>(
        chip, a.vcore, QosKind::Throughput, 0.2, space, pricing,
        rp, 3);
    b.runtime = std::make_unique<CashRuntime>(
        chip, b.vcore, QosKind::Throughput, 0.4, space, pricing,
        rp, 4);

    // Advance unevenly: tenant b runs twice as many quanta.
    for (int i = 0; i < 14; ++i) {
        a.runtime->step();
        b.runtime->step();
        b.runtime->step();
    }
    EXPECT_GT(chip.vcore(b.vcore).now(),
              chip.vcore(a.vcore).now());
    EXPECT_GT(a.runtime->totalSamples(), 5u);
    EXPECT_GT(b.runtime->totalSamples(), 10u);
}

TEST(MultiTenant, DepartingTenantFreesResourcesForOthers)
{
    FabricParams fabric;
    fabric.sliceCols = 1;
    fabric.bankCols = 2;
    fabric.rows = 8; // 8 Slices (1 reserved), 16 banks
    SSim chip(fabric);

    auto hog = *chip.createVCore(5, 8);
    auto small = *chip.createVCore(1, 1);
    // The small tenant cannot grow past what is free.
    EXPECT_FALSE(chip.command(small, 4, 8).has_value());
    chip.destroyVCore(hog);
    PhaseParams p = tenantPhase(0);
    PhasedTraceSource src({p}, 5, true, 0);
    chip.vcore(small).bindSource(&src);
    chip.vcore(small).runUntil(10'000);
    EXPECT_TRUE(chip.command(small, 4, 8).has_value());
    EXPECT_EQ(chip.vcore(small).numSlices(), 4u);
}

} // namespace
} // namespace cash
