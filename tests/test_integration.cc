/**
 * @file
 * Cross-module integration properties: the phenomena the paper's
 * motivation (Sec II) rests on must actually emerge from the
 * simulator + workload models.
 */

#include <gtest/gtest.h>

#include "baselines/profile.hh"
#include "core/config_space.hh"
#include "workload/apps.hh"

namespace cash
{
namespace
{

/** Count strict local optima of a performance surface on the
 *  (slices, banks) grid (neighbours: +-1 slice, x/÷2 banks). */
int
countLocalOptima(const ConfigSpace &space,
                 const std::vector<double> &perf, double tol = 0.02)
{
    // Global optimum excluded.
    std::size_t global = 0;
    for (std::size_t k = 1; k < perf.size(); ++k)
        if (perf[k] > perf[global])
            global = k;
    int count = 0;
    for (std::size_t k = 0; k < perf.size(); ++k) {
        if (k == global)
            continue;
        bool peak = true;
        for (std::size_t n : space.neighbours(k))
            peak = peak && perf[k] >= perf[n] * (1.0 - tol) &&
                perf[k] > perf[n] * (1.0 - 3 * tol);
        // Strict-ish: above every neighbour within tolerance and
        // clearly below the global best.
        if (peak && perf[k] < perf[global] * 0.95)
            ++count;
    }
    return count;
}

class X264Surface : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        space_ = new ConfigSpace(8, 32); // 8x6 grid: fast enough
        const AppModel &app = appByName("x264");
        perf_ = new std::vector<std::vector<double>>();
        for (const PhaseParams &p : app.phases) {
            std::vector<double> row(space_->size());
            for (std::size_t k = 0; k < space_->size(); ++k) {
                row[k] = measurePhaseIpc(p, space_->at(k),
                                         FabricParams{}, SimParams{},
                                         15'000, 30'000, 77);
            }
            perf_->push_back(std::move(row));
        }
    }

    static void
    TearDownTestSuite()
    {
        delete space_;
        delete perf_;
        space_ = nullptr;
        perf_ = nullptr;
    }

    static ConfigSpace *space_;
    static std::vector<std::vector<double>> *perf_;
};

ConfigSpace *X264Surface::space_ = nullptr;
std::vector<std::vector<double>> *X264Surface::perf_ = nullptr;

TEST_F(X264Surface, PhasesHaveDistinctOptima)
{
    // Paper Fig 1: "no two consecutive phases have the same optimal
    // configuration". We require most transitions to move the
    // optimum.
    std::vector<std::size_t> best;
    for (const auto &row : *perf_) {
        best.push_back(static_cast<std::size_t>(
            std::max_element(row.begin(), row.end())
            - row.begin()));
    }
    int moves = 0;
    for (std::size_t i = 0; i + 1 < best.size(); ++i)
        moves += best[i] != best[i + 1];
    EXPECT_GE(moves, 7) << "optimum must move across phases";
}

TEST_F(X264Surface, SurfacesAreNonConvex)
{
    // Paper Fig 1: six of ten phases have local optima distinct
    // from the global one. Our surfaces must show the same
    // character (several phases with interior local peaks).
    int phases_with_local = 0;
    for (const auto &row : *perf_)
        phases_with_local += countLocalOptima(*space_, row) > 0;
    EXPECT_GE(phases_with_local, 4)
        << "non-convexity must emerge from the architecture model";
}

TEST_F(X264Surface, CacheAxisPeaksInsideTheRange)
{
    // For working-set-sized phases, performance must rise to a
    // peak and then fall as L2 distance grows — not be monotone.
    int interior_peaks = 0;
    for (const auto &row : *perf_) {
        // Slice count 1 row of the grid: banks 1..32.
        std::vector<double> cache_curve;
        for (std::uint32_t b = 1; b <= 32; b *= 2)
            cache_curve.push_back(
                row[space_->indexOf({1, b})]);
        auto peak = std::max_element(cache_curve.begin(),
                                     cache_curve.end());
        if (peak != cache_curve.begin()
            && peak != cache_curve.end() - 1) {
            ++interior_peaks;
        }
    }
    EXPECT_GE(interior_peaks, 3);
}

TEST(Integration, CompeteApplicationsShowDiverseBestConfigs)
{
    // Across the suite, best configurations must differ (otherwise
    // heterogeneity would be pointless).
    ConfigSpace space(8, 32);
    std::set<std::size_t> bests;
    for (const char *name : {"hmmer", "mcf", "sjeng"}) {
        const AppModel &app = appByName(name);
        std::vector<double> perf(space.size());
        for (std::size_t k = 0; k < space.size(); ++k) {
            perf[k] = measurePhaseIpc(app.phases[0], space.at(k),
                                      FabricParams{}, SimParams{},
                                      10'000, 20'000, 5);
        }
        bests.insert(static_cast<std::size_t>(
            std::max_element(perf.begin(), perf.end())
            - perf.begin()));
    }
    EXPECT_GE(bests.size(), 2u);
}

} // namespace
} // namespace cash
