/**
 * @file
 * Tests for the open-loop request stream.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "workload/request.hh"

namespace cash
{
namespace
{

RequestStreamParams
baseParams()
{
    RequestStreamParams p;
    p.baseRatePerMcycle = 50.0;
    p.amplitude = 0.0;
    p.period = 10'000'000;
    p.meanInstsPerRequest = 1000;
    p.minInstsPerRequest = 100;
    p.mix.name = "req";
    p.mix.lengthInsts = 1000;
    return p;
}

TEST(Request, ConstantRateMatches)
{
    RequestSource src(baseParams(), 7);
    // Drain instructions at a generous clock so arrivals dominate.
    Cycle now = 0;
    std::uint64_t insts = 0;
    while (now < 10'000'000) {
        FetchResult fr = src.next(now);
        if (fr.kind == FetchResult::Kind::IdleUntil) {
            now = fr.idleUntil;
        } else {
            ++insts;
            now += 1; // IPC 1 consumer
        }
    }
    // 50 req/Mcycle over 10 Mcycles = ~500 arrivals.
    EXPECT_NEAR(static_cast<double>(src.arrivals()), 500.0, 75.0);
}

TEST(Request, OscillationChangesRate)
{
    RequestStreamParams p = baseParams();
    p.amplitude = 0.8;
    RequestSource src(p, 7);
    double peak = src.rateAt(p.period / 4);   // sin = 1
    double trough = src.rateAt(3 * p.period / 4);
    EXPECT_NEAR(peak, 90.0, 1.0);
    EXPECT_NEAR(trough, 10.0, 1.0);
    EXPECT_NEAR(src.rateAt(0), 50.0, 1.0);
}

TEST(Request, EndOfRequestMarked)
{
    RequestSource src(baseParams(), 7);
    Cycle now = 0;
    std::uint64_t started = 0, ended = 0;
    for (int i = 0; i < 20000; ++i) {
        FetchResult fr = src.next(now);
        if (fr.kind == FetchResult::Kind::IdleUntil) {
            now = fr.idleUntil;
            continue;
        }
        ++now;
        if (fr.op.endOfRequest) {
            ++ended;
            EXPECT_NE(fr.op.request, invalidRequest);
        }
        if (fr.op.request != invalidRequest)
            started = std::max(started, fr.op.request);
    }
    EXPECT_GT(ended, 5u);
    EXPECT_GE(started, ended);
}

TEST(Request, LatencyRecordedOnCommit)
{
    RequestSource src(baseParams(), 7);
    MicroOp op;
    op.endOfRequest = true;
    op.request = 1;
    op.requestArrival = 1000;
    src.onCommit(op, 5000);
    EXPECT_EQ(src.completed(), 1u);
    EXPECT_DOUBLE_EQ(src.latency().mean(), 4000.0);
}

TEST(Request, BacklogGrowsWhenUnserved)
{
    RequestSource src(baseParams(), 7);
    // Never fetch; just observe the queue by asking at a late time.
    FetchResult fr = src.next(5'000'000);
    EXPECT_EQ(fr.kind, FetchResult::Kind::Inst);
    EXPECT_GT(src.backlog(), 100u);
}

TEST(Request, IdleWhenQueueEmpty)
{
    RequestStreamParams p = baseParams();
    p.baseRatePerMcycle = 0.5; // sparse
    RequestSource src(p, 7);
    FetchResult fr = src.next(0);
    if (fr.kind == FetchResult::Kind::IdleUntil)
        EXPECT_GT(fr.idleUntil, 0u);
}

TEST(Request, MinimumSizeEnforced)
{
    RequestStreamParams p = baseParams();
    p.meanInstsPerRequest = 120;
    p.minInstsPerRequest = 100;
    RequestSource src(p, 9);
    Cycle now = 0;
    std::uint64_t run = 0;
    for (int i = 0; i < 50000; ++i) {
        FetchResult fr = src.next(now);
        if (fr.kind == FetchResult::Kind::IdleUntil) {
            now = fr.idleUntil;
            continue;
        }
        ++now;
        ++run;
        if (fr.op.endOfRequest) {
            EXPECT_GE(run, 100u);
            run = 0;
        }
    }
}

TEST(Request, BadParamsRejected)
{
    RequestStreamParams p = baseParams();
    p.baseRatePerMcycle = 0;
    EXPECT_THROW(RequestSource(p, 1), FatalError);
    p = baseParams();
    p.amplitude = 1.0;
    EXPECT_THROW(RequestSource(p, 1), FatalError);
    p = baseParams();
    p.period = 0;
    EXPECT_THROW(RequestSource(p, 1), FatalError);
    p = baseParams();
    p.meanInstsPerRequest = 10;
    p.minInstsPerRequest = 100;
    EXPECT_THROW(RequestSource(p, 1), FatalError);
}

TEST(Request, DeterministicAcrossRuns)
{
    RequestSource a(baseParams(), 42), b(baseParams(), 42);
    Cycle now = 0;
    for (int i = 0; i < 5000; ++i) {
        FetchResult fa = a.next(now), fb = b.next(now);
        ASSERT_EQ(fa.kind, fb.kind);
        if (fa.kind == FetchResult::Kind::IdleUntil) {
            EXPECT_EQ(fa.idleUntil, fb.idleUntil);
            now = fa.idleUntil;
        } else {
            EXPECT_EQ(fa.op.request, fb.op.request);
            ++now;
        }
    }
}

} // namespace
} // namespace cash
