/**
 * @file
 * Property tests for the paper's reconfiguration cost bounds
 * (Sec VI-A), checked across randomized workloads and transitions
 * rather than single hand-picked cases:
 *
 *  - a contraction never moves more than the 128 global registers,
 *    and never takes more than 128/2 = 64 flush cycles;
 *  - an L2 shrink never takes more than 8192 flush cycles per
 *    fully-dirty 64 KB bank it holds (1024 lines x 64 B / 8 B-per-
 *    cycle on the flush network; the paper rounds this to ~8000);
 *  - a no-op reconfiguration (same Slices, same banks) flushes
 *    nothing at all.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/ssim.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

PhaseParams
storePhase(std::uint64_t working_set, std::uint64_t seed)
{
    PhaseParams p;
    p.name = "stores";
    p.ilpMeanDist = 8.0;
    p.memFrac = 0.45;
    p.storeFrac = 0.6;
    p.seqFrac = 0.2;
    p.workingSet = working_set;
    p.lengthInsts = 50'000;
    p.dataBase = seed * 16 * miB;
    return p;
}

/** Worst-case flush cycles for one fully-dirty L2 bank. */
Cycle
fullBankFlushCycles(const SimParams &params)
{
    std::uint64_t lines =
        params.cache.l2BankSize / params.cache.blockSize;
    return lines * params.cache.blockSize
        / params.cache.flushNetBytes;
}

TEST(ReconfigProps, RegisterFlushNeverExceedsPaperBound)
{
    // 128 physical globals at 2 registers per cycle: 64 cycles max,
    // regardless of workload, membership, or shrink depth.
    Rng rng(7);
    for (int trial = 0; trial < 12; ++trial) {
        SSim sim;
        auto from =
            2 + static_cast<std::uint32_t>(rng.nextBounded(7));
        auto to = 1 + static_cast<std::uint32_t>(
                          rng.nextBounded(from - 1));
        auto id = *sim.createVCore(from, 2);
        PhasedTraceSource src(
            {storePhase((64 + 64 * (trial % 4)) * kiB, trial)},
            1000 + trial, true);
        sim.vcore(id).bindSource(&src);
        sim.vcore(id).runUntil(20'000 + rng.nextBounded(80'000));

        auto cost = sim.command(id, to, 2);
        ASSERT_TRUE(cost.has_value()) << "trial " << trial;
        const SimParams &p = sim.params();
        EXPECT_LE(cost->regsFlushed, p.slice.physRegs)
            << from << " -> " << to << " slices, trial " << trial;
        EXPECT_LE(cost->regFlushCycles,
                  (p.slice.physRegs + p.net.regFlushPerCycle - 1)
                      / p.net.regFlushPerCycle)
            << from << " -> " << to << " slices, trial " << trial;
    }
}

TEST(ReconfigProps, L2FlushNeverExceedsFullyDirtyBanks)
{
    // Worst case is every line of every held bank dirty: 8000
    // cycles per 64 KB bank. Dirtying is workload-driven, so check
    // across random working sets and shrink targets.
    Rng rng(11);
    for (int trial = 0; trial < 10; ++trial) {
        SSim sim;
        auto banks_from =
            2 + static_cast<std::uint32_t>(rng.nextBounded(11));
        auto banks_to = static_cast<std::uint32_t>(
            rng.nextBounded(banks_from));
        auto id = *sim.createVCore(2, banks_from);
        PhasedTraceSource src(
            {storePhase((128 + 128 * (trial % 6)) * kiB, trial)},
            2000 + trial, true);
        sim.vcore(id).bindSource(&src);
        sim.vcore(id).runUntil(50'000 + rng.nextBounded(150'000));

        const SimParams &p = sim.params();
        std::uint64_t lines_per_bank =
            p.cache.l2BankSize / p.cache.blockSize;
        auto cost = sim.command(id, 2, banks_to);
        ASSERT_TRUE(cost.has_value()) << "trial " << trial;
        EXPECT_LE(cost->l2DirtyFlushed, banks_from * lines_per_bank)
            << banks_from << " -> " << banks_to << " banks, trial "
            << trial;
        EXPECT_LE(cost->l2FlushCycles,
                  banks_from * fullBankFlushCycles(p))
            << banks_from << " -> " << banks_to << " banks, trial "
            << trial;
        EXPECT_EQ(cost->l2FlushCycles,
                  cost->l2DirtyFlushed * p.cache.blockSize
                      / p.cache.flushNetBytes);
    }
}

TEST(ReconfigProps, FullBankBoundMatchesPaperNumber)
{
    // Keep the constant honest: with default parameters the
    // fully-dirty per-bank bound is 64 KiB / 8 B-per-cycle = 8192
    // cycles (the paper quotes it rounded, "~8000").
    SSim sim;
    EXPECT_EQ(fullBankFlushCycles(sim.params()), 8192u);
    EXPECT_EQ(sim.params().slice.physRegs
                  / sim.params().net.regFlushPerCycle,
              64u);
}

TEST(ReconfigProps, NoopReconfigFlushesNothing)
{
    // Commanding the current configuration must not disturb the
    // pipelines, registers, or caches — only the RIN command
    // latency is observed.
    Rng rng(13);
    for (int trial = 0; trial < 8; ++trial) {
        SSim sim;
        auto slices =
            1 + static_cast<std::uint32_t>(rng.nextBounded(6));
        auto banks = static_cast<std::uint32_t>(rng.nextBounded(9));
        auto id = *sim.createVCore(slices, banks);
        PhasedTraceSource src({storePhase(256 * kiB, trial)},
                              3000 + trial, true);
        sim.vcore(id).bindSource(&src);
        sim.vcore(id).runUntil(10'000 + rng.nextBounded(40'000));

        auto cost = sim.command(id, slices, banks);
        ASSERT_TRUE(cost.has_value()) << "trial " << trial;
        EXPECT_EQ(cost->pipelineFlush, 0u);
        EXPECT_EQ(cost->regsFlushed, 0u);
        EXPECT_EQ(cost->regFlushCycles, 0u);
        EXPECT_EQ(cost->l2DirtyFlushed, 0u);
        EXPECT_EQ(cost->l2FlushCycles, 0u);
        EXPECT_EQ(cost->l1FlushCycles, 0u);
        EXPECT_EQ(cost->totalStall(), cost->commandLatency);
    }
}

} // namespace
} // namespace cash
