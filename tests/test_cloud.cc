/**
 * @file
 * The cloud provider layer: admission verdicts, arbiter policy
 * (ordering, partial grants, compaction pacing), end-to-end
 * CloudProvider determinism and accounting, and the provider
 * auditors (including the leaked-holding mutation test).
 */

#include <gtest/gtest.h>

#include "check/audit.hh"
#include "check/invariant.hh"
#include "cloud/provider.hh"

namespace cash::cloud
{
namespace
{

/** A tight chip: 8 Slices (7 sellable), 32 banks. */
FabricParams
tinyFabric()
{
    FabricParams f;
    f.sliceCols = 1;
    f.bankCols = 4;
    f.rows = 8;
    return f;
}

ProviderParams
tinyParams(Provisioning prov, std::uint64_t seed = 42)
{
    ProviderParams p;
    p.fabric = tinyFabric();
    p.provisioning = prov;
    p.seed = seed;
    p.arrivalProb = 0.6;
    p.meanResidenceRounds = 12.0;
    return p;
}

// --- Admission -------------------------------------------------

TEST(Admission, VerdictsFollowCapacity)
{
    FabricGrid grid(tinyFabric());
    FabricAllocator alloc(grid);
    AdmissionController ctl(AdmissionParams{});

    // Empty fabric: everything that can ever fit is admitted.
    EXPECT_EQ(ctl.judge({2, 4}, alloc, 0), AdmissionVerdict::Admit);

    // The reserved runtime Slice (modelled here by just filling the
    // chip) makes an 8-Slice request impossible on an 8-Slice grid.
    EXPECT_EQ(ctl.judge({8, 4}, alloc, 0), AdmissionVerdict::Reject);

    // Fill the fabric; further arrivals queue until the queue is
    // full, then reject.
    ASSERT_TRUE(alloc.allocate(7, 32).has_value());
    EXPECT_EQ(ctl.judge({1, 1}, alloc, 0), AdmissionVerdict::Queue);
    EXPECT_EQ(ctl.judge({1, 1}, alloc, ctl.params().queueLimit),
              AdmissionVerdict::Reject);
}

// --- Arbiter ---------------------------------------------------

TEST(Arbiter, GrantOrderIsDeficitThenPriceThenId)
{
    FabricArbiter arb(ArbiterParams{});
    std::vector<GrantCandidate> cands = {
        {0, 0.0, 0.05},
        {1, 0.2, 0.01},
        {2, 0.0, 0.09},
        {3, 0.2, 0.01},
    };
    std::vector<TenantId> order = arb.grantOrder(cands);
    // Deficit 0.2 first (ids 1,3 tie on price -> id order), then
    // the satisfied tenants by price.
    EXPECT_EQ(order, (std::vector<TenantId>{1, 3, 2, 0}));
}

TEST(Arbiter, ShrinksAlwaysPassAndExpandsClampToCapacity)
{
    FabricGrid grid(tinyFabric());
    FabricAllocator alloc(grid);
    FabricArbiter arb(ArbiterParams{});

    // Occupy most of the chip: 5 Slices, 28 banks -> 3 Slices and
    // 4 banks free.
    ASSERT_TRUE(alloc.allocate(5, 28).has_value());

    // A shrink passes untouched even on a full chip.
    GrantDecision d =
        arb.decide({3, 8}, {1, 2}, alloc, 0);
    EXPECT_EQ(d.kind, GrantKind::Full);
    EXPECT_EQ(d.granted, (VCoreConfig{1, 2}));

    // An expand beyond free capacity is clamped: held {1,2} plus
    // 3 free Slices caps at the 4-Slice instance limit; held 2 + 4
    // free banks = 6 reachable, pow2-floored to 4.
    d = arb.decide({1, 2}, {4, 16}, alloc, 0);
    EXPECT_EQ(d.kind, GrantKind::Partial);
    EXPECT_EQ(d.granted, (VCoreConfig{4, 4}));

    // Nothing free at all: the demand resolves to current holdings.
    ASSERT_TRUE(alloc.allocate(3, 4).has_value());
    d = arb.decide({1, 2}, {2, 4}, alloc, 0);
    EXPECT_EQ(d.kind, GrantKind::Denied);
    EXPECT_EQ(d.granted, (VCoreConfig{1, 2}));
}

// --- CloudProvider ---------------------------------------------

TEST(CloudProvider, DeterministicAcrossInstances)
{
    ProviderParams p = tinyParams(Provisioning::FineGrain, 7);
    CloudProvider a(p);
    CloudProvider b(p);
    a.run(20);
    b.run(20);
    EXPECT_EQ(a.stats().arrivals, b.stats().arrivals);
    EXPECT_EQ(a.stats().admitted, b.stats().admitted);
    EXPECT_EQ(a.stats().departed, b.stats().departed);
    EXPECT_EQ(a.tenants().size(), b.tenants().size());
    EXPECT_DOUBLE_EQ(a.revenue(), b.revenue());
    EXPECT_DOUBLE_EQ(a.qosDelivery(), b.qosDelivery());
}

TEST(CloudProvider, AuditsStayCleanWhileRunning)
{
    for (Provisioning prov :
         {Provisioning::FineGrain, Provisioning::StaticPeak,
          Provisioning::CoarseGrain}) {
        CloudProvider p(tinyParams(prov));
        for (int round = 0; round < 24; ++round) {
            p.step();
            ASSERT_NO_THROW(auditProvider(p))
                << provisioningName(prov) << " round " << round;
        }
        EXPECT_GT(p.stats().arrivals, 0u);
        EXPECT_GT(p.stats().admitted, 0u);
    }
}

TEST(CloudProvider, InjectionHooksDriveTheLifecycle)
{
    ProviderParams p = tinyParams(Provisioning::FineGrain);
    p.arrivalProb = 0.0; // arrivals only through injection
    CloudProvider prov(p);

    TenantId a = prov.injectArrival(0, 8);
    ASSERT_NE(a, invalidTenant);
    EXPECT_EQ(prov.tenants()[a]->state, TenantState::Active);
    std::uint32_t held_slices =
        prov.chip().allocator().grid().numSlices()
        - prov.chip().allocator().freeSlices();
    EXPECT_GT(held_slices, 1u); // runtime Slice + the tenant

    EXPECT_TRUE(prov.injectDeparture(a));
    EXPECT_EQ(prov.tenants()[a]->state, TenantState::Departed);
    // All tenant tiles returned; only the runtime Slice stays.
    EXPECT_EQ(prov.chip().allocator().grid().numSlices()
                  - prov.chip().allocator().freeSlices(),
              1u);
    EXPECT_FALSE(prov.injectDeparture(a)); // already gone
    EXPECT_EQ(prov.injectArrival(999, 8), invalidTenant);
    ASSERT_NO_THROW(auditProvider(prov));
}

TEST(CloudProvider, QueuedArrivalsAdmitOnceCapacityFrees)
{
    ProviderParams p = tinyParams(Provisioning::StaticPeak);
    p.arrivalProb = 0.0;
    // Class 10 (x264) peaks at {3,16}: two fit the 7 sellable
    // Slices, the third queues.
    CloudProvider prov(p);
    TenantId a = prov.injectArrival(10, 50);
    TenantId b = prov.injectArrival(10, 50);
    TenantId c = prov.injectArrival(10, 50);
    EXPECT_EQ(prov.tenants()[a]->state, TenantState::Active);
    EXPECT_EQ(prov.tenants()[b]->state, TenantState::Active);
    EXPECT_EQ(prov.tenants()[c]->state, TenantState::Queued);
    ASSERT_NO_THROW(auditProvider(prov));

    // Free capacity; the next round's queue pass admits c.
    EXPECT_TRUE(prov.injectDeparture(a));
    prov.step();
    EXPECT_EQ(prov.tenants()[c]->state, TenantState::Active);
    ASSERT_NO_THROW(auditProvider(prov));
}

TEST(CloudProvider, FineGrainHostsMoreThanStaticPeak)
{
    // The consolidation claim in miniature: on the same tight chip
    // with the same arrival stream, admitting at the minimum
    // configuration hosts strictly more tenant-rounds than
    // reserving every tenant's peak.
    ProviderParams fine = tinyParams(Provisioning::FineGrain, 11);
    ProviderParams peak = tinyParams(Provisioning::StaticPeak, 11);
    CloudProvider a(fine);
    CloudProvider b(peak);
    a.run(24);
    b.run(24);
    EXPECT_GT(a.stats().tenantRounds, b.stats().tenantRounds);
    EXPECT_LE(a.stats().rejected + a.stats().abandoned,
              b.stats().rejected + b.stats().abandoned);
}

TEST(CloudProvider, SampledTwinTracksFullLifecycle)
{
    // Twin-run property of sampled simulation (sim/sampler.hh):
    // under StaticPeak the admission verdicts depend only on the
    // seeded arrival process and capacity, which sampling leaves
    // exact. The same seed must therefore produce the identical
    // admit/reject/depart lifecycle and the same bill sequence,
    // with only the `estimated` marker differing. Bills agree to
    // the clock, not to the bit: each round bills the vcore's
    // actual elapsed cycles, and the detailed loop may overshoot
    // the 500k-cycle quantum boundary by a handful of cycles where
    // fast-forward lands exactly on it — a few cycles in 500'000
    // per round, so <= 1e-4 relative on the integral.
    auto run = [](SimMode mode) {
        ProviderParams p = tinyParams(Provisioning::StaticPeak, 77);
        p.simMode = mode;
        CloudProvider prov(p);
        prov.run(48);
        auditProvider(prov);
        ProviderStats st = prov.stats();
        std::vector<FinalBill> bills = prov.drain();
        return std::make_pair(st, bills);
    };
    auto [full_st, full_bills] = run(SimMode::Full);
    auto [samp_st, samp_bills] = run(SimMode::Sampled);

    EXPECT_EQ(full_st.admitted, samp_st.admitted);
    EXPECT_EQ(full_st.rejected, samp_st.rejected);
    EXPECT_EQ(full_st.abandoned, samp_st.abandoned);
    EXPECT_EQ(full_st.departed, samp_st.departed);
    EXPECT_EQ(full_st.tenantRounds, samp_st.tenantRounds);

    ASSERT_FALSE(full_bills.empty());
    ASSERT_EQ(full_bills.size(), samp_bills.size());
    for (std::size_t i = 0; i < full_bills.size(); ++i) {
        EXPECT_EQ(full_bills[i].tenant, samp_bills[i].tenant);
        EXPECT_EQ(full_bills[i].app, samp_bills[i].app);
        EXPECT_NEAR(full_bills[i].bill, samp_bills[i].bill,
                    1e-4 * (1.0 + full_bills[i].bill));
        EXPECT_FALSE(full_bills[i].estimated);
        EXPECT_TRUE(samp_bills[i].estimated);
    }
}

// --- Mutation test ---------------------------------------------

TEST(CloudProviderMutation, LeakedHoldingIsCaught)
{
    if (!invariantsEnabled)
        GTEST_SKIP() << "requires -DCASH_CHECK_INVARIANTS=ON";

    ProviderParams p = tinyParams(Provisioning::FineGrain);
    p.arrivalProb = 0.0;
    CloudProvider prov(p);
    TenantId a = prov.injectArrival(0, 8);
    ASSERT_EQ(prov.tenants()[a]->state, TenantState::Active);

    setInjectedFault(Fault::ProviderLeakHolding);
    EXPECT_TRUE(prov.injectDeparture(a));
    setInjectedFault(Fault::None);

    // The departed tenant's vcore was never released: tenant-held
    // tiles no longer sum to the allocator's books.
    EXPECT_THROW(auditProvider(prov), InvariantError);
}

} // namespace
} // namespace cash::cloud
