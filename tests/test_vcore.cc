/**
 * @file
 * Tests for the virtual-core timing model, including the paper's
 * reconfiguration overheads (Sec VI-A).
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/log.hh"
#include "sim/ssim.hh"
#include "workload/request.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

constexpr Cycle forever = std::numeric_limits<Cycle>::max() / 2;

PhaseParams
aluPhase(double ilp)
{
    PhaseParams p;
    p.name = "alu";
    p.ilpMeanDist = ilp;
    p.twoSrcFrac = 0.0;
    p.memFrac = 0.0;
    p.branchFrac = 0.0;
    p.fpFrac = 0.0;
    p.lengthInsts = 1'000'000;
    return p;
}

double
runIpc(SSim &sim, VCoreId id, const PhaseParams &p, InstCount warm,
       InstCount measure)
{
    VirtualCore &vc = sim.vcore(id);
    PhasedTraceSource warm_src({p}, 42, true, 0);
    CappedSource warm_cap(warm_src, warm);
    vc.bindSource(&warm_cap);
    vc.runUntil(forever);
    Cycle c0 = vc.now();
    InstCount i0 = vc.meta().totalCommitted;
    PhasedTraceSource src({p}, 43, true, 0);
    CappedSource cap(src, measure);
    vc.bindSource(&cap);
    vc.runUntil(forever);
    return static_cast<double>(vc.meta().totalCommitted - i0)
        / static_cast<double>(vc.now() - c0);
}

TEST(VCore, SingleSliceAluBoundIpcNearOne)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    double ipc = runIpc(sim, id, aluPhase(400), 20000, 50000);
    EXPECT_GT(ipc, 0.9);
    EXPECT_LE(ipc, 1.05); // one ALU per Slice caps throughput
}

TEST(VCore, SlicesScaleForHighIlp)
{
    double prev = 0.0;
    for (std::uint32_t slices : {1u, 2u, 4u}) {
        SSim sim;
        auto id = *sim.createVCore(slices, 1);
        double ipc = runIpc(sim, id, aluPhase(400), 20000, 50000);
        EXPECT_GT(ipc, prev * 1.3)
            << slices << " slices should clearly beat "
            << slices / 2;
        prev = ipc;
    }
}

TEST(VCore, SlicesDoNotHelpSerialChains)
{
    SSim sim1, sim8;
    auto id1 = *sim1.createVCore(1, 1);
    auto id8 = *sim8.createVCore(8, 1);
    PhaseParams serial = aluPhase(1.2); // tight chains
    double ipc1 = runIpc(sim1, id1, serial, 20000, 50000);
    double ipc8 = runIpc(sim8, id8, serial, 20000, 50000);
    EXPECT_LT(ipc8, ipc1 * 1.3); // no meaningful speedup
}

TEST(VCore, CacheCapacityMatters)
{
    PhaseParams p = aluPhase(8);
    p.memFrac = 0.4;
    p.workingSet = 1 * miB;
    p.seqFrac = 0.0;
    SSim small, large;
    auto ids = *small.createVCore(1, 1);   // 64 KB L2
    auto idl = *large.createVCore(1, 16);  // 1 MB L2
    double ipc_small = runIpc(small, ids, p, 40000, 60000);
    double ipc_large = runIpc(large, idl, p, 40000, 60000);
    EXPECT_GT(ipc_large, ipc_small * 1.5);
}

TEST(VCore, OversizedCacheHurts)
{
    // Working set fits in 2 banks; 128 banks only add distance.
    PhaseParams p = aluPhase(8);
    p.memFrac = 0.4;
    p.workingSet = 96 * kiB;
    p.seqFrac = 0.0;
    SSim fit, huge;
    auto idf = *fit.createVCore(1, 2);
    auto idh = *huge.createVCore(1, 128);
    double ipc_fit = runIpc(fit, idf, p, 40000, 60000);
    double ipc_huge = runIpc(huge, idh, p, 40000, 60000);
    EXPECT_GT(ipc_fit, ipc_huge * 1.05)
        << "distance-driven hit latency must penalize oversizing";
}

TEST(VCore, DeterministicForSameSeed)
{
    auto run = []() {
        SSim sim;
        auto id = *sim.createVCore(2, 4);
        PhaseParams p = aluPhase(10);
        p.memFrac = 0.3;
        p.branchFrac = 0.1;
        PhasedTraceSource src({p}, 99, true, 0);
        CappedSource cap(src, 30000);
        sim.vcore(id).bindSource(&cap);
        sim.vcore(id).runUntil(forever);
        return sim.vcore(id).now();
    };
    EXPECT_EQ(run(), run());
}

TEST(VCore, IdleJumpsClock)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    PhaseParams p = aluPhase(8);
    PhasedTraceSource inner({p}, 5, true, 0);
    PacedSource paced(inner, 0.001, 100);
    sim.vcore(id).bindSource(&paced);
    RunResult rr = sim.vcore(id).runUntil(500'000);
    EXPECT_GT(rr.idleCycles, 400'000u);
    EXPECT_LT(rr.committed, 1000u);
}

TEST(VCore, FinishedPropagates)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    PhaseParams p = aluPhase(8);
    PhasedTraceSource src({p}, 5, false, 0); // single pass
    sim.vcore(id).bindSource(&src);
    RunResult rr = sim.vcore(id).runUntil(forever);
    EXPECT_TRUE(rr.finished);
    EXPECT_EQ(rr.committed, p.lengthInsts);
}

TEST(VCore, ExpandCostIsPipelineFlush)
{
    // Paper Sec VI-A: Slice expansion ~15 cycles (plus command
    // delivery); no register traffic, no L2 change.
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    PhaseParams p = aluPhase(8);
    PhasedTraceSource src({p}, 5, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(20'000);
    auto cost = sim.command(id, 2, 1);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(cost->pipelineFlush,
              sim.params().net.pipelineFlushLat);
    EXPECT_EQ(cost->regsFlushed, 0u);
    EXPECT_EQ(cost->regFlushCycles, 0u);
    EXPECT_EQ(cost->l2DirtyFlushed, 0u);
}

TEST(VCore, ShrinkAddsBoundedRegisterFlush)
{
    // Paper: contraction takes at most 64 cycles more than
    // expansion (128 globals at 2 registers/cycle).
    SSim sim;
    auto id = *sim.createVCore(4, 1);
    PhaseParams p = aluPhase(8);
    PhasedTraceSource src({p}, 5, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(100'000);
    auto cost = sim.command(id, 1, 1);
    ASSERT_TRUE(cost.has_value());
    EXPECT_GT(cost->regsFlushed, 0u);
    EXPECT_LE(cost->regFlushCycles, 64u);
    EXPECT_EQ(cost->pipelineFlush,
              sim.params().net.pipelineFlushLat);
}

TEST(VCore, L2ShrinkChargesDirtyFlush)
{
    SSim sim;
    auto id = *sim.createVCore(1, 8);
    PhaseParams p = aluPhase(8);
    p.memFrac = 0.5;
    p.storeFrac = 0.8;
    p.workingSet = 512 * kiB;
    p.seqFrac = 0.0;
    PhasedTraceSource src({p}, 5, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(600'000);
    auto cost = sim.command(id, 1, 1);
    ASSERT_TRUE(cost.has_value());
    EXPECT_GT(cost->l2DirtyFlushed, 0u);
    EXPECT_EQ(cost->l2FlushCycles,
              cost->l2DirtyFlushed * sim.params().cache.blockSize
                  / sim.params().cache.flushNetBytes);
    // Stall observed by the vcore includes the flush.
    EXPECT_GE(cost->totalStall(), cost->l2FlushCycles);
}

TEST(VCore, ReconfigStallAdvancesClock)
{
    SSim sim;
    auto id = *sim.createVCore(1, 4);
    PhaseParams p = aluPhase(8);
    p.memFrac = 0.4;
    p.storeFrac = 0.5;
    p.workingSet = 256 * kiB;
    PhasedTraceSource src({p}, 5, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(300'000);
    Cycle before = sim.vcore(id).now();
    auto cost = sim.command(id, 2, 2);
    ASSERT_TRUE(cost.has_value());
    EXPECT_GE(sim.vcore(id).now(), before + cost->totalStall());
    EXPECT_EQ(sim.vcore(id).meta().reconfigStallCycles,
              cost->totalStall());
}

TEST(VCore, RequestLatencyAccounting)
{
    SSim sim;
    auto id = *sim.createVCore(1, 2);
    RequestStreamParams rp;
    rp.baseRatePerMcycle = 10.0;
    rp.meanInstsPerRequest = 2000;
    rp.minInstsPerRequest = 500;
    rp.mix = aluPhase(8);
    RequestSource src(rp, 17);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(3'000'000);
    VCoreMeta m = sim.vcore(id).meta();
    EXPECT_GT(m.requestsDone, 10u);
    EXPECT_EQ(m.requestsDone, src.completed());
    // Mean latency from vcore counters matches the source's view.
    double vc_mean = static_cast<double>(m.requestLatencySum)
        / static_cast<double>(m.requestsDone);
    EXPECT_NEAR(vc_mean, src.latency().mean(), 1.0);
}

TEST(VCore, CountersSumToTotal)
{
    SSim sim;
    auto id = *sim.createVCore(4, 2);
    PhaseParams p = aluPhase(30);
    p.memFrac = 0.3;
    p.branchFrac = 0.1;
    PhasedTraceSource src({p}, 21, true, 0);
    CappedSource cap(src, 40000);
    sim.vcore(id).bindSource(&cap);
    sim.vcore(id).runUntil(forever);
    InstCount sum = 0;
    for (std::uint32_t m = 0; m < 4; ++m)
        sum += sim.vcore(id).counters(m).committedInsts;
    EXPECT_EQ(sum, sim.vcore(id).meta().totalCommitted);
    EXPECT_EQ(sum, 40000u);
}

TEST(VCore, BadConstructionRejected)
{
    FabricGrid g;
    SimParams sp;
    EXPECT_THROW(VirtualCore(g, sp, 0, {}, {}), FatalError);
    sp.depWindow = 16; // < robSize * 8
    EXPECT_THROW(VirtualCore(g, sp, 0, {0}, {}), FatalError);
}

TEST(VCore, RunWithoutSourceFatal)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    EXPECT_THROW(sim.vcore(id).runUntil(1000), FatalError);
}

/** Branch-heavy phases lose throughput to mispredict flushes in
 *  proportion to predictability. */
class VCoreBranchTest : public ::testing::TestWithParam<double>
{
};

TEST_P(VCoreBranchTest, MispredictsReduceIpc)
{
    double bias = GetParam();
    PhaseParams p = aluPhase(60);
    p.branchFrac = 0.15;
    p.branchBias = bias;
    SSim sim;
    auto id = *sim.createVCore(4, 1);
    double ipc = runIpc(sim, id, p, 30000, 60000);
    PhaseParams clean = aluPhase(60);
    SSim sim2;
    auto id2 = *sim2.createVCore(4, 1);
    double ipc_clean = runIpc(sim2, id2, clean, 30000, 60000);
    EXPECT_LT(ipc, ipc_clean);
    if (bias < 0.7) {
        EXPECT_LT(ipc, ipc_clean * 0.6);
    }
}

INSTANTIATE_TEST_SUITE_P(Biases, VCoreBranchTest,
                         ::testing::Values(0.55, 0.8, 0.95));

} // namespace
} // namespace cash
