/**
 * @file
 * Tests for the CSV table writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"
#include "common/log.hh"

namespace cash
{
namespace
{

TEST(Csv, HeaderWrittenImmediately)
{
    std::ostringstream out;
    CsvWriter w(out, {"a", "b"});
    EXPECT_EQ(out.str(), "a,b\n");
}

TEST(Csv, RowsAppended)
{
    std::ostringstream out;
    CsvWriter w(out, {"x", "y"});
    w.row({"1", "2"});
    w.row({"3", "4"});
    EXPECT_EQ(out.str(), "x,y\n1,2\n3,4\n");
    EXPECT_EQ(w.rowsWritten(), 2u);
}

TEST(Csv, WidthMismatchFatal)
{
    std::ostringstream out;
    CsvWriter w(out, {"x", "y"});
    EXPECT_THROW(w.row({"1"}), FatalError);
    EXPECT_THROW(w.row({"1", "2", "3"}), FatalError);
}

TEST(Csv, EmptyHeaderRejected)
{
    std::ostringstream out;
    EXPECT_THROW(CsvWriter(out, {}), FatalError);
}

TEST(Csv, QuotingCommasAndQuotes)
{
    std::ostringstream out;
    CsvWriter w(out, {"c"});
    w.row({"hello, world"});
    w.row({"say \"hi\""});
    w.row({"line\nbreak"});
    EXPECT_EQ(out.str(),
              "c\n\"hello, world\"\n\"say \"\"hi\"\"\"\n"
              "\"line\nbreak\"\n");
}

TEST(Csv, NumFormatting)
{
    EXPECT_EQ(CsvWriter::num(1.5), "1.5");
    EXPECT_EQ(CsvWriter::num(0.125, 3), "0.125");
}

} // namespace
} // namespace cash
