/**
 * @file
 * Tests for synthetic trace generation and pacing.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

PhaseParams
basePhase()
{
    PhaseParams p;
    p.name = "t";
    p.lengthInsts = 5000;
    return p;
}

TEST(TraceGen, DeterministicStream)
{
    PhasedTraceSource a({basePhase()}, 42, true, 0);
    PhasedTraceSource b({basePhase()}, 42, true, 0);
    for (int i = 0; i < 2000; ++i) {
        FetchResult fa = a.next(0), fb = b.next(0);
        ASSERT_EQ(fa.kind, FetchResult::Kind::Inst);
        EXPECT_EQ(fa.op.op, fb.op.op);
        EXPECT_EQ(fa.op.pc, fb.op.pc);
        EXPECT_EQ(fa.op.addr, fb.op.addr);
        EXPECT_EQ(fa.op.srcDist1, fb.op.srcDist1);
    }
}

TEST(TraceGen, SeedsDiffer)
{
    PhasedTraceSource a({basePhase()}, 1, true, 0);
    PhasedTraceSource b({basePhase()}, 2, true, 0);
    int same = 0;
    for (int i = 0; i < 500; ++i)
        same += a.next(0).op.addr == b.next(0).op.addr;
    EXPECT_LT(same, 450);
}

TEST(TraceGen, MixMatchesParams)
{
    PhaseParams p = basePhase();
    p.memFrac = 0.3;
    p.storeFrac = 0.4;
    p.branchFrac = 0.2;
    p.lengthInsts = 100000;
    PhasedTraceSource src({p}, 5, true, 0);
    int mem = 0, store = 0, branch = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        MicroOp op = src.next(0).op;
        mem += op.isMem();
        store += op.op == OpClass::Store;
        branch += op.op == OpClass::Branch;
    }
    EXPECT_NEAR(mem / double(n), 0.3, 0.02);
    EXPECT_NEAR(store / double(mem), 0.4, 0.04);
    EXPECT_NEAR(branch / double(n), 0.2, 0.02);
}

TEST(TraceGen, AddressesStayInWorkingSet)
{
    PhaseParams p = basePhase();
    p.memFrac = 0.5;
    p.workingSet = 64 * kiB;
    p.dataBase = 1 * miB;
    PhasedTraceSource src({p}, 5, true, 0);
    for (int i = 0; i < 5000; ++i) {
        MicroOp op = src.next(0).op;
        if (op.isMem()) {
            EXPECT_GE(op.addr, p.dataBase);
            EXPECT_LT(op.addr, p.dataBase + p.workingSet);
        }
    }
}

TEST(TraceGen, DependenceDistancesPositive)
{
    PhaseParams p = basePhase();
    p.ilpMeanDist = 6;
    PhasedTraceSource src({p}, 5, true, 0);
    for (int i = 0; i < 5000; ++i) {
        MicroOp op = src.next(0).op;
        EXPECT_GE(op.srcDist1, 1);
        EXPECT_LE(op.srcDist1, 900);
    }
}

TEST(TraceGen, PhasesAdvanceAndLoop)
{
    PhaseParams a = basePhase();
    a.name = "a";
    a.lengthInsts = 100;
    PhaseParams b = basePhase();
    b.name = "b";
    b.lengthInsts = 200;
    PhasedTraceSource src({a, b}, 5, true, 0);
    EXPECT_EQ(src.currentPhase(), 0u);
    for (int i = 0; i < 100; ++i)
        src.next(0);
    src.next(0);
    EXPECT_EQ(src.currentPhase(), 1u);
    for (int i = 0; i < 200; ++i)
        src.next(0);
    EXPECT_EQ(src.currentPhase(), 0u); // wrapped
    EXPECT_EQ(src.laps(), 1u);
}

TEST(TraceGen, NonLoopingFinishes)
{
    PhaseParams p = basePhase();
    p.lengthInsts = 50;
    PhasedTraceSource src({p}, 5, false, 0);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(src.next(0).kind, FetchResult::Kind::Inst);
    EXPECT_EQ(src.next(0).kind, FetchResult::Kind::Finished);
}

TEST(TraceGen, TotalCapRespected)
{
    PhasedTraceSource src({basePhase()}, 5, true, 120);
    int n = 0;
    while (src.next(0).kind == FetchResult::Kind::Inst)
        ++n;
    EXPECT_EQ(n, 120);
}

TEST(TraceGen, BadPhaseRejected)
{
    PhaseParams p = basePhase();
    p.lengthInsts = 0;
    EXPECT_THROW(PhasedTraceSource({p}, 1, true, 0), FatalError);
    p = basePhase();
    p.ilpMeanDist = 0.5;
    EXPECT_THROW(PhasedTraceSource({p}, 1, true, 0), FatalError);
    EXPECT_THROW(PhasedTraceSource({}, 1, true, 0), FatalError);
}

TEST(Paced, ChunkArrivalSchedule)
{
    PhasedTraceSource inner({basePhase()}, 5, true, 0);
    PacedSource paced(inner, 0.5, 100); // chunk of 100 insts
    // First chunk available at cycle 0.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(paced.next(0).kind, FetchResult::Kind::Inst);
    // Second chunk not before cycle 100/0.5 = 200.
    FetchResult fr = paced.next(10);
    ASSERT_EQ(fr.kind, FetchResult::Kind::IdleUntil);
    EXPECT_EQ(fr.idleUntil, 200u);
    EXPECT_EQ(paced.next(200).kind, FetchResult::Kind::Inst);
}

TEST(Paced, BackloggedStreamsFreely)
{
    PhasedTraceSource inner({basePhase()}, 5, true, 0);
    PacedSource paced(inner, 0.5, 100);
    // At cycle 10000, dozens of chunks are due: no idling.
    for (int i = 0; i < 2000; ++i)
        ASSERT_EQ(paced.next(10000).kind, FetchResult::Kind::Inst);
}

TEST(Paced, BadParamsRejected)
{
    PhasedTraceSource inner({basePhase()}, 5, true, 0);
    EXPECT_THROW(PacedSource(inner, 0.0), FatalError);
    EXPECT_THROW(PacedSource(inner, 1.0, 0), FatalError);
}

TEST(Capped, StopsAtCap)
{
    PhasedTraceSource inner({basePhase()}, 5, true, 0);
    CappedSource cap(inner, 10);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(cap.next(0).kind, FetchResult::Kind::Inst);
    EXPECT_EQ(cap.next(0).kind, FetchResult::Kind::Finished);
    EXPECT_EQ(cap.remaining(), 0u);
}

TEST(TraceGen, LoopBranchSitesAreDeterministicAcrossLaps)
{
    // The same phase re-entered must present identical branch
    // behaviour (bias table is phase-keyed, not stream-keyed).
    PhaseParams p = basePhase();
    p.branchFrac = 1.0;
    p.staticBranches = 8;
    p.lengthInsts = 64;
    PhasedTraceSource src({p}, 5, true, 0);
    std::vector<Addr> first_lap;
    for (int i = 0; i < 64; ++i)
        first_lap.push_back(src.next(0).op.pc);
    // PCs come from the same 8 sites on every lap.
    std::set<Addr> sites(first_lap.begin(), first_lap.end());
    EXPECT_LE(sites.size(), 8u);
    for (int lap = 0; lap < 3; ++lap) {
        for (int i = 0; i < 64; ++i) {
            Addr pc = src.next(0).op.pc;
            EXPECT_TRUE(sites.count(pc)) << "unknown site";
        }
    }
}

} // namespace
} // namespace cash
