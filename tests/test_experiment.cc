/**
 * @file
 * End-to-end tests for the experiment harness at reduced scale.
 */

#include <gtest/gtest.h>

#include "baselines/experiment.hh"

namespace cash
{
namespace
{

ExperimentParams
tinyParams()
{
    ExperimentParams ep;
    ep.horizon = 6'000'000;
    ep.quantum = 200'000;
    ep.phaseScale = 1.0;
    return ep;
}

ProfileParams
tinyProfile()
{
    ProfileParams pp;
    pp.warmupInsts = 8'000;
    pp.measureInsts = 15'000;
    pp.requestWindow = 600'000;
    pp.rateBins = 3;
    return pp;
}

TEST(Experiment, AllPoliciesRunOnThroughputApp)
{
    ConfigSpace space(4, 16);
    CostModel cost;
    ExperimentParams ep = tinyParams();
    AppModel app = scalePhases(appByName("sjeng"), 1.0);
    AppProfile prof = characterize(app, space, ep.fabric, ep.sim,
                                   tinyProfile());
    for (PolicyKind k :
         {PolicyKind::Oracle, PolicyKind::ConvexOpt,
          PolicyKind::RaceToIdle, PolicyKind::Cash}) {
        RunOutput out = runPolicy(app, prof, k, space, cost, ep);
        EXPECT_EQ(out.policy, policyName(k));
        EXPECT_GT(out.stats.samples, 5u) << out.policy;
        EXPECT_GT(out.stats.cost, 0.0) << out.policy;
        EXPECT_GT(out.stats.cycles, ep.horizon / 2) << out.policy;
        EXPECT_FALSE(out.series.empty()) << out.policy;
        EXPECT_DOUBLE_EQ(out.qosTarget, prof.qosTarget);
    }
}

TEST(Experiment, RequestAppRuns)
{
    ConfigSpace space(4, 16);
    CostModel cost;
    ExperimentParams ep = tinyParams();
    ep.horizon = 10'000'000;
    const AppModel &app = appByName("mailserver");
    AppProfile prof = characterize(app, space, ep.fabric, ep.sim,
                                   tinyProfile());
    RunOutput cash =
        runPolicy(app, prof, PolicyKind::Cash, space, cost, ep);
    EXPECT_GT(cash.stats.samples, 3u);
    RunOutput race = runPolicy(app, prof, PolicyKind::RaceToIdle,
                               space, cost, ep);
    EXPECT_LE(race.stats.reconfigs, 1u);
}

TEST(Experiment, CoarseGrainSpaceWorks)
{
    // Sec VI-E: the big.LITTLE pair under race and adaptive
    // managers.
    ConfigSpace coarse(
        std::vector<VCoreConfig>{{1, 2}, {4, 16}});
    CostModel cost;
    ExperimentParams ep = tinyParams();
    AppModel app = scalePhases(appByName("sjeng"), 1.0);
    AppProfile prof = characterize(app, coarse, ep.fabric, ep.sim,
                                   tinyProfile());
    RunOutput race = runPolicy(app, prof, PolicyKind::RaceToIdle,
                               coarse, cost, ep);
    RunOutput adapt =
        runPolicy(app, prof, PolicyKind::Cash, coarse, cost, ep);
    EXPECT_GT(race.stats.samples, 5u);
    EXPECT_GT(adapt.stats.samples, 5u);
    for (const SeriesPoint &pt : adapt.series)
        EXPECT_LT(pt.config, 2u);
}

TEST(Experiment, ScalePhasesMultiplies)
{
    AppModel app = appByName("x264");
    AppModel scaled = scalePhases(app, 3.0);
    ASSERT_EQ(scaled.phases.size(), app.phases.size());
    for (std::size_t i = 0; i < app.phases.size(); ++i)
        EXPECT_EQ(scaled.phases[i].lengthInsts,
                  app.phases[i].lengthInsts * 3);
}

TEST(Experiment, DeterministicRuns)
{
    ConfigSpace space(4, 16);
    CostModel cost;
    ExperimentParams ep = tinyParams();
    ep.horizon = 3'000'000;
    AppModel app = scalePhases(appByName("gcc"), 1.0);
    AppProfile prof = characterize(app, space, ep.fabric, ep.sim,
                                   tinyProfile());
    RunOutput a =
        runPolicy(app, prof, PolicyKind::Cash, space, cost, ep);
    RunOutput b =
        runPolicy(app, prof, PolicyKind::Cash, space, cost, ep);
    EXPECT_DOUBLE_EQ(a.stats.cost, b.stats.cost);
    EXPECT_EQ(a.stats.violations, b.stats.violations);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

} // namespace
} // namespace cash
