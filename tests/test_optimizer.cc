/**
 * @file
 * Tests for the two-configuration optimizer (Eqns 5-6), including a
 * brute-force LP cross-check.
 */

#include <gtest/gtest.h>

#include <functional>

#include "common/log.hh"
#include "common/rng.hh"
#include "core/config_space.hh"
#include "core/optimizer.hh"

namespace cash
{
namespace
{

const ConfigSpace &
space()
{
    static ConfigSpace s;
    return s;
}

const CostModel &
cost()
{
    static CostModel c;
    return c;
}

TEST(Optimizer, ExactMatchRunsWholeQuantum)
{
    TwoConfigOptimizer opt(space(), cost());
    auto table = [](std::size_t k) {
        return 1.0 + static_cast<double>(k);
    };
    QuantumSchedule s = opt.solve(5.0, 1000, table);
    EXPECT_EQ(s.over, 4u);
    EXPECT_EQ(s.under, 4u);
    EXPECT_EQ(s.tOver, 1000u);
    EXPECT_EQ(s.tUnder, 0u);
    EXPECT_DOUBLE_EQ(s.expectedSpeedup, 5.0);
}

TEST(Optimizer, MixDeliversDemandedAverage)
{
    TwoConfigOptimizer opt(space(), cost());
    auto table = [](std::size_t k) {
        return 0.5 + 0.1 * static_cast<double>(k);
    };
    QuantumSchedule s = opt.solve(1.23, 1'000'000, table);
    EXPECT_NE(s.over, s.under);
    EXPECT_GT(table(s.over), 1.23);
    EXPECT_LT(table(s.under), 1.23);
    double mix = (table(s.over) * s.tOver
                  + table(s.under) * s.tUnder)
        / 1'000'000.0;
    EXPECT_NEAR(mix, 1.23, 0.01);
    EXPECT_NEAR(s.expectedSpeedup, 1.23, 0.01);
}

TEST(Optimizer, DemandAboveEverythingPicksFastest)
{
    TwoConfigOptimizer opt(space(), cost());
    auto table = [](std::size_t k) {
        return 1.0 + 0.01 * static_cast<double>(k);
    };
    QuantumSchedule s = opt.solve(100.0, 1000, table);
    EXPECT_EQ(s.over, space().size() - 1);
    EXPECT_EQ(s.tOver, 1000u);
}

TEST(Optimizer, DemandBelowEverythingIdles)
{
    TwoConfigOptimizer opt(space(), cost());
    auto table = [](std::size_t) { return 10.0; };
    QuantumSchedule s = opt.solve(5.0, 1000, table);
    EXPECT_EQ(s.over, s.under);
    EXPECT_GT(s.tIdle, 0u);
    EXPECT_NEAR(static_cast<double>(s.tOver), 500.0, 5.0);
    // The chosen config is the cheapest one.
    double rate = cost().ratePerHour(space().at(s.over));
    for (std::size_t k = 0; k < space().size(); ++k)
        EXPECT_LE(rate, cost().ratePerHour(space().at(k)) + 1e-12);
}

TEST(Optimizer, OverIsCheapestFeasible)
{
    // Non-convex table: an expensive config is slow, a cheap one
    // fast. Eqn 6's argmin must find the cheap-fast one.
    TwoConfigOptimizer opt(space(), cost());
    auto table = [](std::size_t k) {
        // Make config {2,2} (cheap) fast and {8,128} slow.
        if (space().at(k) == VCoreConfig{2, 2})
            return 5.0;
        return 0.5;
    };
    QuantumSchedule s = opt.solve(2.0, 1000, table);
    EXPECT_EQ(space().at(s.over), (VCoreConfig{2, 2}))
        << "local optima must not trap the global scan";
}

TEST(Optimizer, ScheduleRateWeightsSlots)
{
    TwoConfigOptimizer opt(space(), cost());
    QuantumSchedule s;
    s.over = space().indexOf({2, 2});
    s.under = space().indexOf({1, 1});
    s.tOver = 600;
    s.tUnder = 400;
    double expect = (cost().ratePerHour({2, 2}) * 600
                     + cost().ratePerHour({1, 1}) * 400)
        / 1000.0;
    EXPECT_NEAR(opt.scheduleRate(s), expect, 1e-12);
}

TEST(Optimizer, ZeroQuantumRejected)
{
    TwoConfigOptimizer opt(space(), cost());
    EXPECT_THROW(opt.solve(1.0, 0, [](std::size_t) { return 1.0; }),
                 FatalError);
}

TEST(Optimizer, BankAffinityPreference)
{
    // When an almost-as-efficient under-config shares the over's
    // bank count, prefer it (avoids L2 flush churn).
    TwoConfigOptimizer opt(space(), cost());
    auto table = [](std::size_t k) {
        const VCoreConfig &c = space().at(k);
        // Make {4,8} the over; {1,8} (same banks, cheaper) is
        // nearly as efficient as the slightly better {2,4}.
        if (c == VCoreConfig{4, 8})
            return 3.0;
        if (c == VCoreConfig{1, 8})
            return 1.45;
        if (c == VCoreConfig{2, 4})
            return 1.50;
        return 0.1;
    };
    QuantumSchedule s = opt.solve(2.0, 1000, table);
    EXPECT_EQ(space().at(s.over), (VCoreConfig{4, 8}));
    EXPECT_EQ(space().at(s.under).banks, 8u)
        << "same-bank under should win a near-tie";
}

/** Cross-check against Eqn 6's definitions computed independently:
 *  over = argmin{c_k | s_k > s}, under = argmax{s_k/c_k | s_k < s}.
 *  (The paper's rule is a structural heuristic from the LP — it is
 *  not the globally optimal pair for arbitrary non-convex tables,
 *  so we verify fidelity to the rule plus a loose global bound.) */
class OptimizerLpTest : public ::testing::TestWithParam<int>
{
};

TEST_P(OptimizerLpTest, MatchesEqn6Definitions)
{
    Rng r(GetParam() * 7919);
    std::vector<double> table(space().size());
    for (double &v : table)
        v = 0.2 + r.nextDouble() * 4.0;
    auto fn = [&](std::size_t k) { return table[k]; };
    double demand = 0.5 + r.nextDouble() * 2.5;

    TwoConfigOptimizer opt(space(), cost());
    QuantumSchedule s = opt.solve(demand, 1'000'000, fn);

    // Independent Eqn 6 computation.
    constexpr std::size_t none = ~std::size_t(0);
    std::size_t over = none, under = none;
    for (std::size_t k = 0; k < table.size(); ++k) {
        double ck = cost().ratePerHour(space().at(k));
        if (table[k] > demand) {
            if (over == none
                || ck < cost().ratePerHour(space().at(over)))
                over = k;
        } else if (table[k] < demand) {
            if (under == none
                || table[k] / ck
                    > table[under]
                        / cost().ratePerHour(space().at(under)))
                under = k;
        }
    }
    ASSERT_NE(over, none);
    ASSERT_NE(under, none);
    EXPECT_EQ(s.over, over);
    // The under slot may be swapped for a same-bank near-tie; it
    // must then be within the documented efficiency concession.
    double eff_chosen = table[s.under]
        / cost().ratePerHour(space().at(s.under));
    double eff_best = table[under]
        / cost().ratePerHour(space().at(under));
    EXPECT_GE(eff_chosen, 0.85 * eff_best - 1e-9);
    // Delivered speedup equals the demand.
    EXPECT_NEAR(s.expectedSpeedup, demand, demand * 0.02);

    // Loose global-optimality sanity: within 2x of the best pair.
    double chosen_rate = opt.scheduleRate(s);
    double best = chosen_rate;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i] < demand)
            continue;
        for (std::size_t j = 0; j < table.size(); ++j) {
            if (table[j] > demand)
                continue;
            double span = table[i] - table[j];
            double frac = span > 1e-12
                ? (demand - table[j]) / span : 1.0;
            double rate = frac * cost().ratePerHour(space().at(i))
                + (1 - frac) * cost().ratePerHour(space().at(j));
            best = std::min(best, rate);
        }
    }
    EXPECT_LE(chosen_rate, best * 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerLpTest,
                         ::testing::Range(1, 9));

} // namespace
} // namespace cash
