/**
 * @file
 * Tests for the work-stealing ThreadPool and the cell-key -> RNG
 * stream derivation the harness builds on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "harness/experiment_engine.hh"

namespace cash
{
namespace
{

TEST(ThreadPool, RunsEveryTask)
{
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        std::atomic<int> count{0};
        for (int i = 0; i < 200; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 200);
    }
}

TEST(ThreadPool, ResultsIndependentOfExecutionOrder)
{
    // Tasks of wildly uneven duration writing to disjoint slots:
    // whatever order the workers pick, every slot must hold the
    // value derived from its index alone.
    for (std::size_t threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::vector<std::uint64_t> out(300, 0);
        for (std::size_t i = 0; i < out.size(); ++i) {
            pool.submit([i, &out] {
                if (i % 7 == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                }
                out[i] = Rng(i).next();
            });
        }
        pool.wait();
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], Rng(i).next()) << "slot " << i;
    }
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, TasksMaySubmitTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ShutdownDrainsPendingWork)
{
    // Destroying the pool with queued work must run everything,
    // not drop it.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++count;
            });
        }
        // No wait(): the destructor must drain.
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(defaultThreadCount(), 1u);
}

// ---- Stress tests (run under TSan in CI) ----

TEST(ThreadPoolStress, ManySmallTasks)
{
    // Enough tasks to force heavy stealing and queue contention.
    ThreadPool pool(8);
    std::atomic<std::uint64_t> sum{0};
    constexpr int n = 20'000;
    for (int i = 0; i < n; ++i)
        pool.submit([i, &sum] {
            sum += static_cast<std::uint64_t>(i);
        });
    pool.wait();
    EXPECT_EQ(sum.load(),
              static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPoolStress, DeeplyNestedSubmissions)
{
    // Tasks fan out recursively: 3 levels of 8-way branching from
    // 8 roots. wait() must chase the whole tree, not just the
    // tasks submitted before it was called.
    ThreadPool pool(4);
    std::atomic<int> leaves{0};
    std::function<void(int)> spawn = [&](int depth) {
        if (depth == 0) {
            ++leaves;
            return;
        }
        for (int i = 0; i < 8; ++i)
            pool.submit([&spawn, depth] { spawn(depth - 1); });
    };
    for (int i = 0; i < 8; ++i)
        pool.submit([&spawn] { spawn(3); });
    pool.wait();
    EXPECT_EQ(leaves.load(), 8 * 8 * 8 * 8);
}

TEST(ThreadPoolStress, ConcurrentWaiters)
{
    // wait() is documented for the owner; make sure several
    // threads blocked in wait() all wake, help, and agree the pool
    // drained — repeatedly, to catch lost-wakeup races.
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> count{0};
        // Every 50th task chains a nested submission — decided by
        // the task's own index, not a count.load() snapshot, which
        // could miss the multiple of 50 when two increments
        // interleave between the ++ and the load.
        for (int i = 0; i < 200; ++i)
            pool.submit([&count, &pool, i] {
                ++count;
                if (i % 50 == 49)
                    pool.submit([&count] { ++count; });
            });
        std::vector<std::thread> waiters;
        for (int w = 0; w < 3; ++w)
            waiters.emplace_back([&pool] { pool.wait(); });
        for (auto &t : waiters)
            t.join();
        pool.wait();
        EXPECT_EQ(count.load(), 204) << "round " << round;
    }
}

TEST(ThreadPoolStress, ExceptionsCapturedInClosures)
{
    // Tasks are void(): exception propagation is the caller's
    // concern (see the header). The idiom is to capture into an
    // exception_ptr slot per task — under load, every failure must
    // land in its slot and no worker may die.
    ThreadPool pool(4);
    constexpr int n = 1'000;
    std::vector<std::exception_ptr> errors(n);
    std::atomic<int> ran{0};
    for (int i = 0; i < n; ++i) {
        pool.submit([i, &errors, &ran] {
            ++ran;
            try {
                if (i % 3 == 0)
                    throw std::runtime_error(
                        "task " + std::to_string(i));
            } catch (...) {
                errors[static_cast<std::size_t>(i)] =
                    std::current_exception();
            }
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), n);
    for (int i = 0; i < n; ++i) {
        if (i % 3 == 0) {
            ASSERT_TRUE(errors[static_cast<std::size_t>(i)])
                << "task " << i << " lost its exception";
            try {
                std::rethrow_exception(
                    errors[static_cast<std::size_t>(i)]);
            } catch (const std::runtime_error &e) {
                EXPECT_EQ(std::string(e.what()),
                          "task " + std::to_string(i));
            }
        } else {
            EXPECT_FALSE(errors[static_cast<std::size_t>(i)]);
        }
    }
    // The pool survives: it still runs new work afterwards.
    std::atomic<int> after{0};
    pool.submit([&after] { ++after; });
    pool.wait();
    EXPECT_EQ(after.load(), 1);
}

// ---- Cell-key -> stream derivation ----

TEST(CellStream, DeterministicPerKey)
{
    harness::CellKey key{"x264", "CASH", 3, 5};
    EXPECT_EQ(harness::cellStream(key), harness::cellStream(key));
    Rng a = harness::cellRng(key);
    Rng b = harness::cellRng(key);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(CellStream, EveryFieldChangesTheStream)
{
    harness::CellKey base{"x264", "CASH", 3, 5};
    std::set<std::uint64_t> streams;
    streams.insert(harness::cellStream(base));
    harness::CellKey k1 = base;
    k1.subject = "apache";
    streams.insert(harness::cellStream(k1));
    harness::CellKey k2 = base;
    k2.variant = "Optimal";
    streams.insert(harness::cellStream(k2));
    harness::CellKey k3 = base;
    k3.config = 4;
    streams.insert(harness::cellStream(k3));
    harness::CellKey k4 = base;
    k4.seed = 6;
    streams.insert(harness::cellStream(k4));
    EXPECT_EQ(streams.size(), 5u);
}

TEST(CellStream, FieldBoundariesDoNotAlias)
{
    // {"ab","c"} and {"a","bc"} must not hash alike.
    harness::CellKey a{"ab", "c", 0, 0};
    harness::CellKey b{"a", "bc", 0, 0};
    EXPECT_NE(harness::cellStream(a), harness::cellStream(b));
}

TEST(CellStream, NearbyKeysDecorrelate)
{
    // Consecutive configs must not yield correlated first draws
    // (the xoshiro256** split decorrelates them); check the
    // distribution of first doubles is not monotone in config.
    std::vector<double> first;
    for (std::uint64_t k = 0; k < 16; ++k) {
        harness::CellKey key{"app", "pol", k, 1};
        first.push_back(harness::cellRng(key).nextDouble());
    }
    bool monotone = true;
    for (std::size_t i = 1; i < first.size(); ++i)
        monotone = monotone && first[i] > first[i - 1];
    EXPECT_FALSE(monotone);
    std::set<double> uniq(first.begin(), first.end());
    EXPECT_EQ(uniq.size(), first.size());
}

} // namespace
} // namespace cash
