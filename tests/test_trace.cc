/**
 * @file
 * The trace/metrics subsystem's contract:
 *
 *  - ring-buffer flight-recorder semantics (overwrite-oldest, exact
 *    overwritten() accounting),
 *  - thread-safe concurrent emission (stressed under TSan in CI's
 *    sanitize matrix),
 *  - canonical drain order and thread-count determinism of event
 *    *contents* (minus host timestamps),
 *  - Chrome trace_event JSON schema of the exporter, validated with
 *    a minimal JSON parser,
 *  - MetricsRegistry aggregation and its reset-on-install.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "harness/experiment_engine.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

using namespace cash;
using namespace cash::trace;

#if CASH_TRACE_ENABLED

namespace
{

/**
 * Minimal recursive-descent JSON parser — just enough to validate
 * the exporter's output structurally without external dependencies.
 * Numbers are kept as doubles, objects as string->node maps.
 */
struct JsonNode
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind =
        Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonNode> items;
    std::map<std::string, JsonNode> fields;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &src) : src_(src) {}

    JsonNode parse()
    {
        JsonNode n = value();
        skipWs();
        if (pos_ != src_.size())
            fail("trailing content");
        return n;
    }

  private:
    [[noreturn]] void fail(const char *what)
    {
        fatal("JSON parse error at offset %zu: %s", pos_, what);
    }

    void skipWs()
    {
        while (pos_ < src_.size()
               && std::isspace(static_cast<unsigned char>(
                   src_[pos_])))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= src_.size())
            fail("unexpected end");
        return src_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    JsonNode value()
    {
        skipWs();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't':
          case 'f': return boolean();
          case 'n': return null();
          default: return number();
        }
    }

    JsonNode object()
    {
        JsonNode n;
        n.kind = JsonNode::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return n;
        }
        while (true) {
            skipWs();
            JsonNode key = string();
            skipWs();
            expect(':');
            n.fields[key.text] = value();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return n;
        }
    }

    JsonNode array()
    {
        JsonNode n;
        n.kind = JsonNode::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return n;
        }
        while (true) {
            n.items.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return n;
        }
    }

    JsonNode string()
    {
        JsonNode n;
        n.kind = JsonNode::String;
        expect('"');
        while (true) {
            if (pos_ >= src_.size())
                fail("unterminated string");
            char c = src_[pos_++];
            if (c == '"')
                return n;
            if (c == '\\') {
                if (pos_ >= src_.size())
                    fail("unterminated escape");
                char e = src_[pos_++];
                switch (e) {
                  case '"': n.text += '"'; break;
                  case '\\': n.text += '\\'; break;
                  case '/': n.text += '/'; break;
                  case 'n': n.text += '\n'; break;
                  case 't': n.text += '\t'; break;
                  case 'u':
                    if (pos_ + 4 > src_.size())
                        fail("bad \\u escape");
                    // The exporter only emits \u00xx controls.
                    n.text += static_cast<char>(std::stoi(
                        src_.substr(pos_ + 2, 2), nullptr, 16));
                    pos_ += 4;
                    break;
                  default: fail("unknown escape");
                }
            } else {
                n.text += c;
            }
        }
    }

    JsonNode boolean()
    {
        JsonNode n;
        n.kind = JsonNode::Bool;
        if (src_.compare(pos_, 4, "true") == 0) {
            n.boolean = true;
            pos_ += 4;
        } else if (src_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return n;
    }

    JsonNode null()
    {
        if (src_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        return JsonNode{};
    }

    JsonNode number()
    {
        JsonNode n;
        n.kind = JsonNode::Number;
        std::size_t end = pos_;
        while (end < src_.size()
               && (std::isdigit(static_cast<unsigned char>(
                       src_[end]))
                   || src_[end] == '-' || src_[end] == '+'
                   || src_[end] == '.' || src_[end] == 'e'
                   || src_[end] == 'E'))
            ++end;
        if (end == pos_)
            fail("bad number");
        n.number = std::stod(src_.substr(pos_, end - pos_));
        pos_ = end;
        return n;
    }

    const std::string &src_;
    std::size_t pos_ = 0;
};

/** Canonical text form of an event for cross-run comparison.
 *  Host-clock fields (Engine ts/dur) are excluded: they are the
 *  only nondeterministic part of the contract. */
std::string
canonical(const TraceEvent &ev)
{
    std::string s = strfmt("%llu|%s|%s|%d",
                           static_cast<unsigned long long>(ev.track),
                           ev.name, categoryName(ev.cat),
                           static_cast<int>(ev.kind));
    if (ev.cat != Category::Engine)
        s += strfmt("|ts=%.17g|dur=%.17g", ev.ts, ev.dur);
    for (std::uint8_t i = 0; i < ev.numArgs; ++i)
        s += strfmt("|%s=%.17g", ev.argKey[i], ev.argVal[i]);
    return s;
}

} // namespace

TEST(TraceSession, DisabledEmitsAreNoOps)
{
    ASSERT_EQ(TraceSession::active(), nullptr);
    EXPECT_FALSE(CASH_TRACE_ON());
    // Must not crash or allocate a buffer anywhere.
    CASH_TRACE_INSTANT(Category::Runtime, "ignored", 1);
    CASH_METRIC_INC("ignored.counter");
    TraceSession session;
    EXPECT_TRUE(session.drain().empty());
}

TEST(TraceSession, InstallUninstallGate)
{
    TraceSession session;
    session.install();
    EXPECT_EQ(TraceSession::active(), &session);
    EXPECT_TRUE(CASH_TRACE_ON());
    CASH_TRACE_INSTANT(Category::Runtime, "one", 5,
                       {{"k", 1}, {"j", 2.5}});
    session.uninstall();
    EXPECT_EQ(TraceSession::active(), nullptr);
    CASH_TRACE_INSTANT(Category::Runtime, "after", 6);

    auto events = session.drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "one");
    EXPECT_EQ(events[0].kind, EventKind::Instant);
    EXPECT_DOUBLE_EQ(events[0].ts, usFromCycles(5));
    ASSERT_EQ(events[0].numArgs, 2);
    EXPECT_STREQ(events[0].argKey[0], "k");
    EXPECT_DOUBLE_EQ(events[0].argVal[0], 1.0);
    EXPECT_DOUBLE_EQ(events[0].argVal[1], 2.5);
}

TEST(TraceSession, SecondInstallIsFatal)
{
    TraceSession a;
    a.install();
    TraceSession b;
    EXPECT_THROW(b.install(), FatalError);
    a.uninstall();
}

TEST(TraceSession, RingOverflowKeepsNewestAndCounts)
{
    TraceConfig cfg;
    cfg.bufferCapacity = 16;
    TraceSession session(cfg);
    session.install();
    for (int i = 0; i < 100; ++i)
        CASH_TRACE_INSTANT(Category::Fabric, "e",
                           static_cast<Cycle>(i), {{"i", i}});
    session.uninstall();

    EXPECT_EQ(session.overwritten(), 84u);
    auto events = session.drain();
    ASSERT_EQ(events.size(), 16u);
    // Oldest-first among the survivors: 84..99.
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(events[i].argVal[0], 84.0 + i);
}

TEST(TraceSession, ExcessArgsAreDropped)
{
    TraceSession session;
    session.install();
    CASH_TRACE_INSTANT(Category::Cloud, "wide", 1,
                       {{"a", 1},
                        {"b", 2},
                        {"c", 3},
                        {"d", 4},
                        {"e", 5},
                        {"f", 6},
                        {"g", 7},
                        {"h", 8},
                        {"i", 9},
                        {"j", 10},
                        {"k", 11},
                        {"l", 12}});
    session.uninstall();
    auto events = session.drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].numArgs, maxArgs);
    EXPECT_STREQ(events[0].argKey[maxArgs - 1], "j");
}

TEST(TraceSession, ConcurrentEmitStress)
{
    // Many threads hammer emits and metrics at once; with TSan in
    // CI's sanitize matrix this is the data-race probe. Counts must
    // come out exact: nothing torn, nothing dropped (buffers are
    // sized to hold every event).
    constexpr int kTracks = 8;
    constexpr int kPerTrack = 2000;
    TraceConfig cfg;
    // Buffers are per *thread*, and the pool steals work — in the
    // worst case one thread runs every track, so its ring must hold
    // all kTracks * kPerTrack events for the exact-count check.
    cfg.bufferCapacity = 16384;
    TraceSession session(cfg);
    session.install();
    {
        ThreadPool pool(4);
        for (int t = 0; t < kTracks; ++t) {
            pool.submit([t] {
                TrackScope scope(static_cast<std::uint64_t>(t + 1));
                for (int i = 0; i < kPerTrack; ++i) {
                    CASH_TRACE_INSTANT(
                        Category::Runtime, "tick",
                        static_cast<Cycle>(i),
                        {{"track", t + 1}, {"i", i}});
                    CASH_METRIC_INC("stress.events");
                    CASH_METRIC_SAMPLE("stress.value",
                                       static_cast<double>(i));
                }
            });
        }
        pool.wait();
    }
    session.uninstall();

    EXPECT_EQ(session.overwritten(), 0u);
    auto events = session.drain();
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(kTracks) * kPerTrack);
    // Canonical order: tracks ascending, emission order within.
    std::map<std::uint64_t, int> next;
    for (const TraceEvent &ev : events) {
        EXPECT_DOUBLE_EQ(ev.argVal[1], next[ev.track]);
        ++next[ev.track];
    }
    for (int t = 0; t < kTracks; ++t)
        EXPECT_EQ(next[static_cast<std::uint64_t>(t + 1)],
                  kPerTrack);

    auto &reg = MetricsRegistry::global();
    EXPECT_EQ(reg.counter("stress.events").value(),
              static_cast<std::uint64_t>(kTracks) * kPerTrack);
    EXPECT_EQ(reg.histogram("stress.value").count(),
              static_cast<std::uint64_t>(kTracks) * kPerTrack);
    EXPECT_DOUBLE_EQ(reg.histogram("stress.value").max(),
                     kPerTrack - 1.0);
}

TEST(TraceSession, EventContentsIdenticalAcrossThreadCounts)
{
    // The determinism contract: event contents — everything but
    // host-clock timestamps — are identical at any engine thread
    // count. Cells emit from their own track (assigned by the
    // engine in declaration order), so the canonical drain order
    // must agree too.
    auto run_once = [](std::size_t threads) {
        TraceSession session;
        session.install();
        harness::ExperimentEngine engine(threads);
        std::vector<harness::Cell> cells;
        for (std::uint64_t c = 0; c < 12; ++c) {
            harness::CellKey key{"trace_det", "", c, 7};
            cells.push_back({key, [c] {
                                 for (std::uint64_t i = 0; i < 50;
                                      ++i) {
                                     CASH_TRACE_SPAN(
                                         Category::Runtime, "work",
                                         i * 100, 100,
                                         {{"cell", c}, {"i", i}});
                                     CASH_METRIC_INC("det.events");
                                 }
                             }});
        }
        engine.run(std::move(cells));
        session.uninstall();
        std::vector<std::string> lines;
        for (const TraceEvent &ev : session.drain())
            lines.push_back(canonical(ev));
        lines.push_back(
            strfmt("metric=%llu",
                   static_cast<unsigned long long>(
                       MetricsRegistry::global()
                           .counter("det.events")
                           .value())));
        return lines;
    };

    auto serial = run_once(1);
    auto parallel = run_once(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "at line " << i;
    // Engine cell spans rode along (one per cell) on their own
    // tracks.
    std::size_t engine_events = 0;
    for (const std::string &l : serial)
        engine_events += l.find("|cell|engine|") != std::string::npos;
    EXPECT_EQ(engine_events, 12u);
}

TEST(ChromeExport, SchemaValidates)
{
    TraceSession session;
    session.install();
    {
        TrackScope scope(3, "named \"track\"");
        CASH_TRACE_INSTANT(Category::Cloud, "admit", 10,
                           {{"tenant", 1}});
        CASH_TRACE_SPAN(Category::Fabric, "EXPAND", 20, 5,
                        {{"vcore", 2}, {"stall", 5}});
        CASH_TRACE_COUNTER(Category::Runtime, "qos", 30, "value",
                           1.25);
    }
    session.uninstall();

    std::ostringstream out;
    writeChromeTrace(out, session);
    JsonNode root = JsonParser(out.str()).parse();

    ASSERT_EQ(root.kind, JsonNode::Object);
    ASSERT_TRUE(root.fields.count("traceEvents"));
    const JsonNode &events = root.fields["traceEvents"];
    ASSERT_EQ(events.kind, JsonNode::Array);
    // One metadata record (the named track) + three events.
    ASSERT_EQ(events.items.size(), 4u);

    std::map<std::string, int> phases;
    for (const JsonNode &ev : events.items) {
        ASSERT_EQ(ev.kind, JsonNode::Object);
        for (const char *req : {"name", "ph", "pid", "tid"})
            EXPECT_TRUE(ev.fields.count(req))
                << "missing field " << req;
        std::string ph = ev.fields.at("ph").text;
        ++phases[ph];
        if (ph == "M")
            continue; // metadata: no ts
        EXPECT_TRUE(ev.fields.count("ts"));
        EXPECT_TRUE(ev.fields.count("cat"));
        EXPECT_TRUE(ev.fields.count("args"));
        EXPECT_EQ(ev.fields.at("args").kind, JsonNode::Object);
        if (ph == "X") {
            EXPECT_TRUE(ev.fields.count("dur"));
        }
        if (ph == "I") {
            EXPECT_EQ(ev.fields.at("s").text, "t");
        }
    }
    EXPECT_EQ(phases["M"], 1);
    EXPECT_EQ(phases["I"], 1);
    EXPECT_EQ(phases["X"], 1);
    EXPECT_EQ(phases["C"], 1);

    // The escaped track name survives a round-trip.
    const JsonNode &meta = events.items[0];
    EXPECT_EQ(meta.fields.at("args").fields.at("name").text,
              "named \"track\"");
    // ph X carries its duration in microseconds.
    for (const JsonNode &ev : events.items) {
        if (ev.fields.at("ph").text == "X") {
            EXPECT_DOUBLE_EQ(ev.fields.at("dur").number,
                             usFromCycles(5));
        }
    }
}

TEST(ChromeExport, TraceLineEscapesAndSanitizes)
{
    TraceEvent ev;
    ev.name = "odd\"name\n";
    ev.cat = Category::Runtime;
    ev.kind = EventKind::Instant;
    ev.ts = 1.0;
    ev.track = 9;
    std::string line = chromeTraceLine(ev);
    JsonNode n = JsonParser(line).parse();
    EXPECT_EQ(n.fields.at("name").text, "odd\"name\n");
    EXPECT_EQ(n.fields.at("pid").number, 9.0);
}

TEST(Metrics, CountersAndHistograms)
{
    TraceSession session; // install resets the registry
    session.install();
    auto &reg = MetricsRegistry::global();
    CASH_METRIC_ADD("m.counter", 5);
    CASH_METRIC_INC("m.counter");
    for (int i = 1; i <= 100; ++i)
        CASH_METRIC_SAMPLE("m.hist", static_cast<double>(i));
    session.uninstall();

    EXPECT_EQ(reg.counter("m.counter").value(), 6u);
    const Histogram &h = reg.histogram("m.hist");
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    // Approximate quantiles land within their half-octave bin.
    EXPECT_GE(h.quantile(0.5), 45.0);
    EXPECT_LE(h.quantile(0.5), 91.0);
    EXPECT_LE(h.quantile(1.0), 100.0);

    // A name cannot be both kinds.
    EXPECT_THROW(reg.histogram("m.counter"), FatalError);
    EXPECT_THROW(reg.counter("m.hist"), FatalError);

    // Rows are name-sorted and skip empty metrics.
    auto rows = reg.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, "m.counter");
    EXPECT_EQ(rows[1].name, "m.hist");
    EXPECT_FALSE(reg.summaryTable().empty());

    std::ostringstream csv;
    reg.writeCsv(csv);
    EXPECT_NE(csv.str().find("metric,kind,count"),
              std::string::npos);
    EXPECT_NE(csv.str().find("m.hist"), std::string::npos);

    // The next install starts a fresh recording.
    TraceSession fresh;
    fresh.install();
    fresh.uninstall();
    EXPECT_EQ(reg.counter("m.counter").value(), 0u);
}

#else // !CASH_TRACE_ENABLED

TEST(TraceDisabled, MacrosCompileToNothing)
{
    EXPECT_FALSE(CASH_TRACE_ON());
    CASH_TRACE_INSTANT(cash::trace::Category::Runtime, "gone", 1);
    CASH_METRIC_INC("gone");
    SUCCEED();
}

#endif // CASH_TRACE_ENABLED
