/**
 * @file
 * Tests for QoS monitoring over the RIN.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/monitor.hh"
#include "workload/request.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

PhaseParams
mixPhase()
{
    PhaseParams p;
    p.name = "mix";
    p.ilpMeanDist = 10;
    p.memFrac = 0.2;
    p.lengthInsts = 1'000'000;
    return p;
}

TEST(Monitor, ThroughputMatchesCounters)
{
    SSim sim;
    auto id = *sim.createVCore(2, 2);
    PhasedTraceSource src({mixPhase()}, 3, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(10'000); // warm
    VCoreMonitor mon(sim, id, QosKind::Throughput, 0.5);
    Cycle c0 = sim.vcore(id).now();
    InstCount i0 = sim.vcore(id).meta().totalCommitted;
    sim.vcore(id).runUntil(110'000);
    QosReading r = mon.sample();
    ASSERT_TRUE(r.valid);
    double expect_ipc =
        static_cast<double>(sim.vcore(id).meta().totalCommitted - i0)
        / static_cast<double>(sim.vcore(id).now() - c0);
    EXPECT_NEAR(r.raw, expect_ipc, 1e-9);
    EXPECT_NEAR(r.normalized, expect_ipc / 0.5, 1e-9);
}

TEST(Monitor, BusyCapacityExcludesIdle)
{
    SSim sim;
    auto id = *sim.createVCore(2, 2);
    PhasedTraceSource inner({mixPhase()}, 3, true, 0);
    // Pace far below capacity: wall IPC == pace, busy IPC ==
    // capacity >> pace.
    PacedSource paced(inner, 0.05);
    sim.vcore(id).bindSource(&paced);
    sim.vcore(id).runUntil(50'000);
    VCoreMonitor mon(sim, id, QosKind::Throughput, 0.05);
    sim.vcore(id).runUntil(1'050'000);
    QosReading r = mon.sample();
    ASSERT_TRUE(r.valid);
    // Measured capacity must exceed the pace clearly.
    EXPECT_GT(r.normalized, 2.0);
}

TEST(Monitor, SamplesAreDeltas)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    PhasedTraceSource src({mixPhase()}, 3, true, 0);
    sim.vcore(id).bindSource(&src);
    VCoreMonitor mon(sim, id, QosKind::Throughput, 0.5);
    sim.vcore(id).runUntil(50'000);
    QosReading r1 = mon.sample();
    sim.vcore(id).runUntil(100'000);
    QosReading r2 = mon.sample();
    ASSERT_TRUE(r1.valid);
    ASSERT_TRUE(r2.valid);
    // Windows cover disjoint spans of similar length.
    EXPECT_NEAR(static_cast<double>(r1.window),
                static_cast<double>(r2.window),
                static_cast<double>(r1.window) * 0.2);
}

TEST(Monitor, SurvivesReconfiguration)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    PhasedTraceSource src({mixPhase()}, 3, true, 0);
    sim.vcore(id).bindSource(&src);
    VCoreMonitor mon(sim, id, QosKind::Throughput, 0.5);
    sim.vcore(id).runUntil(50'000);
    mon.sample();
    ASSERT_TRUE(sim.command(id, 4, 4).has_value());
    sim.vcore(id).runUntil(150'000);
    QosReading r = mon.sample();
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.raw, 0.0);
    ASSERT_TRUE(sim.command(id, 1, 1).has_value());
    sim.vcore(id).runUntil(250'000);
    QosReading r2 = mon.sample();
    ASSERT_TRUE(r2.valid);
    EXPECT_GT(r2.raw, 0.0);
}

TEST(Monitor, LatencyNormalization)
{
    SSim sim;
    auto id = *sim.createVCore(2, 4);
    RequestStreamParams rp;
    rp.baseRatePerMcycle = 20.0;
    rp.meanInstsPerRequest = 1500;
    rp.minInstsPerRequest = 300;
    rp.mix = mixPhase();
    RequestSource src(rp, 5);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(100'000);
    double target = 50'000;
    VCoreMonitor mon(sim, id, QosKind::RequestLatency, target);
    sim.vcore(id).runUntil(2'100'000);
    QosReading r = mon.sample();
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.raw, 0.0);
    EXPECT_NEAR(r.normalized, std::min(target / r.raw, 2.5), 1e-9);
    EXPECT_LE(r.normalized, 2.5); // saturation cap
}

TEST(Monitor, LatencyInvalidWithoutCompletions)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    RequestStreamParams rp;
    rp.baseRatePerMcycle = 0.001; // essentially never
    rp.meanInstsPerRequest = 1000;
    rp.minInstsPerRequest = 100;
    rp.mix = mixPhase();
    RequestSource src(rp, 5);
    sim.vcore(id).bindSource(&src);
    VCoreMonitor mon(sim, id, QosKind::RequestLatency, 50'000);
    sim.vcore(id).runUntil(10'000);
    QosReading r = mon.sample();
    EXPECT_FALSE(r.valid);
}

TEST(Monitor, BacklogSurfaced)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    RequestStreamParams rp;
    rp.baseRatePerMcycle = 2000.0; // hopeless overload
    rp.meanInstsPerRequest = 5000;
    rp.minInstsPerRequest = 1000;
    rp.mix = mixPhase();
    RequestSource src(rp, 5);
    sim.vcore(id).bindSource(&src);
    VCoreMonitor mon(sim, id, QosKind::RequestLatency, 50'000);
    sim.vcore(id).runUntil(1'000'000);
    QosReading r = mon.sample();
    EXPECT_GT(r.backlog, 10u);
}

TEST(Monitor, BadTargetRejected)
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    EXPECT_THROW(
        VCoreMonitor(sim, id, QosKind::Throughput, 0.0),
        FatalError);
}

} // namespace
} // namespace cash
