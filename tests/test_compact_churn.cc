/**
 * @file
 * Fragmentation under churn, and compact() as its repair.
 *
 * Hundreds of interleaved allocate/resize/release operations drive
 * the allocator into a fragmented state; compact() must then
 * tighten the live placement (fragmentation and mean L2 distance
 * both improve) while every conservation audit stays clean. The
 * same exercise runs at chip level, where SSim::compact() also has
 * to migrate the affected virtual cores and keep the privileged
 * runtime Slice tracking its allocation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/audit.hh"
#include "common/rng.hh"
#include "sim/ssim.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

FabricParams
churnFabric()
{
    FabricParams f;
    f.sliceCols = 2;
    f.bankCols = 4;
    f.rows = 8; // 16 Slices, 32 banks
    return f;
}

TEST(CompactChurn, AllocatorChurnThenCompactImproves)
{
    FabricGrid grid(churnFabric());
    FabricAllocator alloc(grid);
    Rng rng(7);

    std::vector<VCoreId> live;
    for (int op = 0; op < 400; ++op) {
        std::uint64_t pick = rng.nextBounded(10);
        if (pick < 4 || live.empty()) {
            auto slices =
                static_cast<std::uint32_t>(rng.nextRange(1, 4));
            auto banks = std::uint32_t(1)
                << static_cast<std::uint32_t>(rng.nextRange(0, 3));
            if (auto a = alloc.allocate(slices, banks))
                live.push_back(a->id);
        } else if (pick < 7) {
            VCoreId id = live[rng.nextBounded(live.size())];
            auto slices =
                static_cast<std::uint32_t>(rng.nextRange(1, 4));
            auto banks = std::uint32_t(1)
                << static_cast<std::uint32_t>(rng.nextRange(0, 3));
            alloc.resize(id, slices, banks);
        } else {
            std::size_t k = rng.nextBounded(live.size());
            alloc.release(live[k]);
            live.erase(live.begin() + static_cast<long>(k));
        }
        ASSERT_NO_THROW(auditAllocator(alloc)) << "op " << op;
    }
    ASSERT_FALSE(live.empty());

    double frag_before = alloc.fragmentation();
    double dist_before = alloc.meanLiveL2Distance();
    EXPECT_GT(frag_before, 0.0)
        << "churn failed to fragment the fabric; strengthen the op "
           "mix";

    std::vector<VCoreId> moved = alloc.compact();
    ASSERT_NO_THROW(auditAllocator(alloc));

    EXPECT_FALSE(moved.empty());
    EXPECT_LT(alloc.fragmentation(), frag_before);
    EXPECT_LT(alloc.meanLiveL2Distance(), dist_before);
    // Resource counts preserved, ids intact.
    std::vector<VCoreId> after = alloc.liveIds();
    std::sort(live.begin(), live.end());
    EXPECT_EQ(after, live);
}

TEST(CompactChurn, RepeatedCompactIsIdempotent)
{
    FabricGrid grid(churnFabric());
    FabricAllocator alloc(grid);
    Rng rng(0xBEEF);

    std::vector<VCoreId> live;
    for (int op = 0; op < 200; ++op) {
        if (rng.nextBool(0.55) || live.empty()) {
            if (auto a = alloc.allocate(
                    static_cast<std::uint32_t>(rng.nextRange(1, 3)),
                    static_cast<std::uint32_t>(rng.nextRange(1, 4))))
                live.push_back(a->id);
        } else {
            std::size_t k = rng.nextBounded(live.size());
            alloc.release(live[k]);
            live.erase(live.begin() + static_cast<long>(k));
        }
    }
    alloc.compact();
    double frag = alloc.fragmentation();
    double dist = alloc.meanLiveL2Distance();
    // A second pass over an already-tight placement changes nothing
    // for the worse.
    alloc.compact();
    EXPECT_LE(alloc.fragmentation(), frag);
    EXPECT_LE(alloc.meanLiveL2Distance(), dist);
    ASSERT_NO_THROW(auditAllocator(alloc));
}

TEST(CompactChurn, ChipLevelCompactMigratesAndAudits)
{
    SSim chip(churnFabric());
    Rng rng(0xF00D);

    PhaseParams phase;
    phase.name = "churn";
    phase.lengthInsts = 1'000'000;
    std::vector<PhasedTraceSource *> sources;
    std::vector<VCoreId> live;

    auto spawn = [&](std::uint32_t slices, std::uint32_t banks) {
        auto id = chip.createVCore(slices, banks);
        if (!id)
            return;
        auto *src = new PhasedTraceSource(
            std::vector<PhaseParams>{phase}, rng.next() | 1, true);
        sources.push_back(src);
        chip.vcore(*id).bindSource(src);
        live.push_back(*id);
    };

    for (int op = 0; op < 300; ++op) {
        std::uint64_t pick = rng.nextBounded(10);
        if (pick < 4 || live.empty()) {
            spawn(static_cast<std::uint32_t>(rng.nextRange(1, 4)),
                  static_cast<std::uint32_t>(rng.nextRange(1, 8)));
        } else if (pick < 6) {
            VCoreId id = live[rng.nextBounded(live.size())];
            chip.command(
                id, static_cast<std::uint32_t>(rng.nextRange(1, 4)),
                static_cast<std::uint32_t>(rng.nextRange(1, 8)));
        } else if (pick < 8) {
            VCoreId id = live[rng.nextBounded(live.size())];
            chip.vcore(id).runUntil(chip.vcore(id).now() + 20'000);
        } else {
            std::size_t k = rng.nextBounded(live.size());
            chip.destroyVCore(live[k]);
            live.erase(live.begin() + static_cast<long>(k));
        }
        ASSERT_NO_THROW(auditSim(chip, live)) << "op " << op;
    }
    ASSERT_FALSE(live.empty());

    double frag_before = chip.allocator().fragmentation();
    CompactOutcome out = chip.compact();
    ASSERT_NO_THROW(auditSim(chip, live));
    EXPECT_LE(chip.allocator().fragmentation(), frag_before);
    EXPECT_EQ(out.moved.size(), out.stalls.size());

    // Every migrated vcore was charged for its move, and the
    // privileged runtime Slice still tracks its allocation.
    for (std::size_t i = 0; i < out.moved.size(); ++i)
        EXPECT_GT(out.stalls[i], 0u) << "move " << i;
    std::uint32_t rt_owned = 0;
    for (VCoreId id : chip.allocator().liveIds()) {
        const VCoreAllocation &a = chip.allocator().allocation(id);
        if (std::find(a.slices.begin(), a.slices.end(),
                      chip.runtimeSlice())
            != a.slices.end())
            ++rt_owned;
    }
    EXPECT_EQ(rt_owned, 1u);

    // Vcores keep running after migration.
    for (VCoreId id : live) {
        Cycle before = chip.vcore(id).now();
        chip.vcore(id).runUntil(before + 20'000);
        EXPECT_GT(chip.vcore(id).now(), before);
    }

    for (auto *src : sources)
        delete src;
}

} // namespace
} // namespace cash
