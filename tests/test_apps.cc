/**
 * @file
 * Tests for the 13 application models.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "workload/apps.hh"

namespace cash
{
namespace
{

TEST(Apps, ThirteenApplications)
{
    EXPECT_EQ(allApps().size(), 13u);
}

TEST(Apps, PaperNamesPresent)
{
    // The Fig 7 x-axis, in order.
    const char *names[] = {"apache", "astar", "bzip", "ferret",
                           "gcc", "h264ref", "hmmer", "lib",
                           "mailserver", "mcf", "omnetpp", "sjeng",
                           "x264"};
    const auto &apps = allApps();
    ASSERT_EQ(apps.size(), std::size(names));
    for (std::size_t i = 0; i < apps.size(); ++i)
        EXPECT_EQ(apps[i].name, names[i]);
}

TEST(Apps, X264HasTenPhases)
{
    EXPECT_EQ(appByName("x264").phases.size(), 10u);
}

TEST(Apps, RequestAppsFlagged)
{
    EXPECT_TRUE(appByName("apache").isRequestDriven());
    EXPECT_TRUE(appByName("mailserver").isRequestDriven());
    EXPECT_FALSE(appByName("x264").isRequestDriven());
    EXPECT_FALSE(appByName("mcf").isRequestDriven());
}

TEST(Apps, UnknownNameFatal)
{
    EXPECT_THROW(appByName("doom"), FatalError);
}

TEST(Apps, ThroughputAppsHaveValidPhases)
{
    for (const AppModel &app : allApps()) {
        if (app.isRequestDriven())
            continue;
        ASSERT_FALSE(app.phases.empty()) << app.name;
        for (const PhaseParams &p : app.phases) {
            EXPECT_GE(p.ilpMeanDist, 1.0) << app.name;
            EXPECT_GE(p.workingSet, 64u) << app.name;
            EXPECT_GT(p.lengthInsts, 0u) << app.name;
            EXPECT_LE(p.branchFrac + p.memFrac, 0.95) << app.name;
        }
    }
}

TEST(Apps, MakeSourceRuns)
{
    for (const AppModel &app : allApps()) {
        auto src = makeSource(app);
        ASSERT_NE(src, nullptr) << app.name;
        Cycle now = 0;
        int insts = 0;
        for (int i = 0; i < 300 && insts < 100; ++i) {
            FetchResult fr = src->next(now);
            if (fr.kind == FetchResult::Kind::IdleUntil)
                now = fr.idleUntil;
            else if (fr.kind == FetchResult::Kind::Inst) {
                ++insts;
                ++now;
            } else {
                break;
            }
        }
        EXPECT_GT(insts, 0) << app.name;
    }
}

TEST(Apps, SeedOverrideChangesStream)
{
    const AppModel &app = appByName("gcc");
    auto a = makeSource(app, 111);
    auto b = makeSource(app, 222);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        same += a->next(0).op.addr == b->next(0).op.addr;
    EXPECT_LT(same, 150);
}

TEST(Apps, WorkingSetsSpanTheCacheHierarchy)
{
    // The suite must contain both cache-resident and memory-bound
    // applications, or the configuration space would be degenerate.
    std::uint64_t smallest = ~0ull, largest = 0;
    for (const AppModel &app : allApps()) {
        for (const PhaseParams &p : app.phases) {
            smallest = std::min(smallest, p.workingSet);
            largest = std::max(largest, p.workingSet);
        }
    }
    EXPECT_LT(smallest, 128 * kiB);
    EXPECT_GT(largest, 8 * miB);
}

TEST(Apps, IlpDiversity)
{
    double lo = 1e9, hi = 0;
    for (const AppModel &app : allApps()) {
        for (const PhaseParams &p : app.phases) {
            lo = std::min(lo, p.ilpMeanDist);
            hi = std::max(hi, p.ilpMeanDist);
        }
    }
    EXPECT_LT(lo, 4.0);  // serial codes exist
    EXPECT_GT(hi, 30.0); // parallel codes exist
}

} // namespace
} // namespace cash
