/**
 * @file
 * Property tests for sampled simulation (sim/sampler.hh): the
 * slice controller's schedule, fast-forward exactness on synthetic
 * steady streams, phase-change reaction, billing-integral
 * preservation, and determinism. The end-to-end error bound over
 * the figure workloads lives in bench_sim_speed --sampled-error
 * (tools/sample_error_gate.sh), not here.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "check/audit.hh"
#include "cloud/provider.hh"
#include "sim/ssim.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

/**
 * A perfectly periodic synthetic stream: independent single-cycle
 * integer ops, no memory, no branches. Detailed IPC is a constant
 * after pipeline fill, so fast-forward extrapolation should
 * reproduce full simulation almost exactly — the residual is one
 * rounding instruction per extrapolated segment.
 */
class ConstSource final : public InstSource
{
  public:
    FetchResult next(Cycle) override
    {
        FetchResult fr;
        fr.kind = FetchResult::Kind::Inst;
        fr.op.op = OpClass::IntAlu;
        fr.op.pc = 0x1000 + (n_ % 16) * 4;
        fr.op.destReg = static_cast<std::uint8_t>(n_ % 8);
        ++n_;
        return fr;
    }

    void onCommit(const MicroOp &, Cycle) override {}

  private:
    std::uint64_t n_ = 0;
};

InstCount
committedAt(SimMode mode, InstSource &src, Cycle horizon)
{
    SSim sim;
    if (mode == SimMode::Sampled)
        sim.setSampling(SimMode::Sampled);
    auto id = *sim.createVCore(2, 8);
    VirtualCore &vc = sim.vcore(id);
    vc.bindSource(&src);
    while (vc.now() < horizon) {
        RunResult r = vc.runUntil(
            std::min<Cycle>(horizon, vc.now() + 100'000));
        if (r.finished)
            break;
    }
    auditVCore(vc, SimParams{});
    return vc.meta().totalCommitted;
}

TEST(Sampler, PeriodicStreamSamplesToFullSimIpc)
{
    constexpr Cycle horizon = 3'000'000;
    ConstSource full_src;
    ConstSource sampled_src;
    auto full = static_cast<double>(
        committedAt(SimMode::Full, full_src, horizon));
    auto sampled = static_cast<double>(
        committedAt(SimMode::Sampled, sampled_src, horizon));
    ASSERT_GT(full, 0.0);
    // Near-exact by construction (documented bound: the measured
    // IPC of a constant stream IS its steady-state IPC, so the
    // only error left is per-segment rounding).
    EXPECT_NEAR(sampled / full, 1.0, 0.005)
        << "full=" << full << " sampled=" << sampled;
}

/** Two phases with very different mixes, stretched so whole
 *  fast-forward bursts fit inside one phase. */
std::vector<PhaseParams>
twoPhases()
{
    PhaseParams a;
    a.name = "lean";
    a.ilpMeanDist = 24.0;
    a.memFrac = 0.05;
    a.branchFrac = 0.04;
    a.lengthInsts = 3'000'000;
    PhaseParams b;
    b.name = "memory";
    b.ilpMeanDist = 2.5;
    b.memFrac = 0.45;
    b.workingSet = 4 * miB;
    b.branchFrac = 0.18;
    b.lengthInsts = 3'000'000;
    b.dataBase = 256 * miB;
    return {a, b};
}

TEST(Sampler, PhaseChangeMidFastForwardForcesRemeasurement)
{
    SSim sim;
    sim.setSampling(SimMode::Sampled);
    auto id = *sim.createVCore(2, 8);
    VirtualCore &vc = sim.vcore(id);
    PhasedTraceSource src(twoPhases(), 7, true, 0);
    vc.bindSource(&src);

    // Far enough to cross several phase boundaries mid-burst.
    while (vc.now() < 12'000'000)
        vc.runUntil(vc.now() + 500'000);
    auditVCore(vc, SimParams{});

    const SliceController *sc = vc.sampler();
    ASSERT_NE(sc, nullptr);
    const SamplerStats &st = sc->stats();
    EXPECT_GE(st.measurementSlices, 2u);
    EXPECT_GE(st.phaseAborts, 1u)
        << "no fast-forward ever hit a phase boundary";
    EXPECT_GT(st.ffCycles, 0u);

    // Within one quantum of an aborted fast-forward the controller
    // must be back in detailed simulation: no record after a
    // phase-abort record may extrapolate.
    const auto &sched = sc->schedule();
    std::size_t aborts_seen = 0;
    for (std::size_t i = 0; i + 1 < sched.size(); ++i) {
        if (!sched[i].phaseAbort)
            continue;
        ++aborts_seen;
        EXPECT_EQ(sched[i + 1].mode, SliceMode::Warmup)
            << "record " << i + 1
            << " extrapolates right after a phase abort";
    }
    EXPECT_GE(aborts_seen, 1u);
}

TEST(Sampler, BillingIntegralMatchesFullSimulation)
{
    // Static-peak provisioning: placement and holdings depend only
    // on the seeded arrival process and round counting, both exact
    // under sampling, so the billing integrals must agree with
    // full simulation to rounding (documented bound: exact — the
    // holdings integral never reads an extrapolated counter).
    auto run = [](SimMode mode) {
        cloud::ProviderParams p;
        p.provisioning = cloud::Provisioning::StaticPeak;
        p.seed = 1234;
        p.arrivalProb = 0.5;
        p.meanResidenceRounds = 10.0;
        p.simMode = mode;
        cloud::CloudProvider prov(p);
        prov.run(60);
        auditProvider(prov);
        double active = prov.revenue();
        std::vector<cloud::FinalBill> bills = prov.drain();
        auditProvider(prov);
        return std::make_pair(active, bills);
    };
    auto [full_rev, full_bills] = run(SimMode::Full);
    auto [sampled_rev, sampled_bills] = run(SimMode::Sampled);

    ASSERT_FALSE(full_bills.empty());
    ASSERT_EQ(full_bills.size(), sampled_bills.size());
    EXPECT_NEAR(sampled_rev, full_rev, 1e-9 * (1.0 + full_rev));
    for (std::size_t i = 0; i < full_bills.size(); ++i) {
        EXPECT_EQ(full_bills[i].tenant, sampled_bills[i].tenant);
        EXPECT_EQ(full_bills[i].app, sampled_bills[i].app);
        EXPECT_NEAR(full_bills[i].bill, sampled_bills[i].bill,
                    1e-9 * (1.0 + full_bills[i].bill));
        EXPECT_FALSE(full_bills[i].estimated);
        EXPECT_TRUE(sampled_bills[i].estimated);
    }
}

TEST(Sampler, ScheduleIsDeterministic)
{
    auto schedule = [](std::uint64_t seed) {
        SSim sim;
        sim.setSampling(SimMode::Sampled);
        auto id = *sim.createVCore(2, 8);
        VirtualCore &vc = sim.vcore(id);
        PhasedTraceSource src(twoPhases(), seed, true, 0);
        vc.bindSource(&src);
        while (vc.now() < 6'000'000)
            vc.runUntil(vc.now() + 250'000);
        const SliceController *sc = vc.sampler();
        return std::make_pair(sc->schedule(),
                              vc.meta().totalCommitted);
    };
    auto [sched_a, committed_a] = schedule(11);
    auto [sched_b, committed_b] = schedule(11);
    ASSERT_FALSE(sched_a.empty());
    EXPECT_EQ(sched_a, sched_b);
    EXPECT_EQ(committed_a, committed_b);
}

TEST(Sampler, EstimatedCountsReconcileWithController)
{
    SSim sim;
    sim.setSampling(SimMode::Sampled);
    auto id = *sim.createVCore(1, 4);
    VirtualCore &vc = sim.vcore(id);
    PhasedTraceSource src(twoPhases(), 3, true, 0);
    vc.bindSource(&src);
    while (vc.now() < 4'000'000)
        vc.runUntil(vc.now() + 100'000);

    const VCoreMeta &m = vc.meta();
    const SamplerStats &st = vc.sampler()->stats();
    EXPECT_EQ(m.estimatedInsts, st.ffInsts);
    EXPECT_EQ(m.ffCycles, st.ffCycles);
    EXPECT_LE(m.estimatedInsts, m.totalCommitted);
    EXPECT_LE(m.ffCycles, vc.now());
    EXPECT_GT(m.ffCycles, 0u) << "sampling never fast-forwarded";
    auditVCore(vc, SimParams{});
}

TEST(Sampler, FullModeReportsNothingEstimated)
{
    SSim sim;
    auto id = *sim.createVCore(1, 4);
    VirtualCore &vc = sim.vcore(id);
    PhasedTraceSource src(twoPhases(), 3, true, 0);
    vc.bindSource(&src);
    vc.runUntil(500'000);
    EXPECT_EQ(vc.meta().estimatedInsts, 0u);
    EXPECT_EQ(vc.meta().ffCycles, 0u);
    EXPECT_EQ(vc.sampler(), nullptr);
    EXPECT_FALSE(vc.samplingEnabled());
}

} // namespace
} // namespace cash
