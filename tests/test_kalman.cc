/**
 * @file
 * Tests for the Kalman base-speed estimator (Eqns 3-4).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "core/kalman.hh"

namespace cash
{
namespace
{

TEST(Kalman, ConvergesToConstantB)
{
    KalmanEstimator k(1.0, 1e-4, 1e-2);
    double b_true = 0.4;
    for (int i = 0; i < 200; ++i)
        k.update(b_true * 2.0, 2.0);
    EXPECT_NEAR(k.estimate(), b_true, 0.02);
}

TEST(Kalman, TracksStepChange)
{
    KalmanEstimator k(1.0, 1e-3, 1e-2);
    for (int i = 0; i < 100; ++i)
        k.update(0.5 * 1.5, 1.5);
    ASSERT_NEAR(k.estimate(), 0.5, 0.05);
    // Base speed doubles (a phase change).
    int steps = 0;
    while (std::abs(k.estimate() - 1.0) > 0.05 && steps < 200) {
        k.update(1.0 * 1.5, 1.5);
        ++steps;
    }
    EXPECT_LT(steps, 100) << "phase tracking too slow";
}

TEST(Kalman, InnovationSpikesOnPhaseChange)
{
    KalmanEstimator k(1.0, 1e-3, 1e-2);
    for (int i = 0; i < 50; ++i)
        k.update(0.5 * 2.0, 2.0);
    double quiet = k.innovation();
    k.update(1.5 * 2.0, 2.0); // sudden 3x base speed
    EXPECT_GT(k.innovation(), quiet * 5);
    EXPECT_GT(k.innovation(), 0.25);
}

TEST(Kalman, RobustToMeasurementNoise)
{
    KalmanEstimator k(1.0, 1e-4, 4e-2);
    Rng r(3);
    double b_true = 0.8;
    for (int i = 0; i < 500; ++i) {
        double noise = 1.0 + 0.1 * r.nextGaussian();
        k.update(b_true * 1.2 * noise, 1.2);
    }
    EXPECT_NEAR(k.estimate(), b_true, 0.08);
}

TEST(Kalman, EstimateStaysPositive)
{
    KalmanEstimator k(1.0, 1e-2, 1e-3);
    for (int i = 0; i < 50; ++i)
        k.update(0.0, 10.0);
    EXPECT_GT(k.estimate(), 0.0);
}

TEST(Kalman, ErrorVarianceShrinksWithObservations)
{
    KalmanEstimator k(1.0, 0.0, 1e-2);
    double e0 = k.errorVariance();
    for (int i = 0; i < 20; ++i)
        k.update(0.5, 1.0);
    EXPECT_LT(k.errorVariance(), e0);
}

TEST(Kalman, ResetReseeds)
{
    KalmanEstimator k;
    for (int i = 0; i < 50; ++i)
        k.update(0.2, 1.0);
    k.reset(3.0);
    EXPECT_DOUBLE_EQ(k.estimate(), 3.0);
}

TEST(Kalman, BadVariancesRejected)
{
    EXPECT_THROW(KalmanEstimator(1.0, -1e-3, 1e-2), FatalError);
    EXPECT_THROW(KalmanEstimator(1.0, 1e-3, 0.0), FatalError);
}

/** Convergence is exponential across base-speed magnitudes — the
 *  paper's log(|b_i - b_i+1|) claim. */
class KalmanRangeTest : public ::testing::TestWithParam<double>
{
};

TEST_P(KalmanRangeTest, ConvergesForAnyB)
{
    double b_true = GetParam();
    KalmanEstimator k(1.0, 1e-3, 1e-2);
    for (int i = 0; i < 300; ++i)
        k.update(b_true * 1.0, 1.0);
    EXPECT_NEAR(k.estimate(), b_true, 0.05 * b_true + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Bs, KalmanRangeTest,
                         ::testing::Values(0.05, 0.5, 1.0, 3.0));

} // namespace
} // namespace cash
