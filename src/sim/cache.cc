#include "sim/cache.hh"

#include <bit>

#include "check/invariant.hh"
#include "common/log.hh"

namespace cash
{

SetAssocCache::SetAssocCache(std::uint64_t size,
                             std::uint32_t block_size,
                             std::uint32_t assoc)
    : size_(size), blockSize_(block_size), assoc_(assoc)
{
    if (block_size == 0 || !std::has_single_bit(block_size))
        fatal("cache block size must be a power of two");
    if (assoc == 0)
        fatal("cache associativity must be >= 1");
    if (size == 0 || size % (static_cast<std::uint64_t>(block_size)
                             * assoc) != 0) {
        fatal("cache size %llu not divisible by block*assoc",
              static_cast<unsigned long long>(size));
    }
    blockShift_ = static_cast<std::uint32_t>(
        std::countr_zero(block_size));
    numSets_ = static_cast<std::uint32_t>(
        size / (static_cast<std::uint64_t>(block_size) * assoc));
    setMask_ = std::has_single_bit(numSets_) ? numSets_ - 1 : 0;
    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

SetAssocCache::Line &
SetAssocCache::lineAt(std::uint32_t set, std::uint32_t way)
{
    return lines_[static_cast<std::size_t>(set) * assoc_ + way];
}

const SetAssocCache::Line &
SetAssocCache::lineAt(std::uint32_t set, std::uint32_t way) const
{
    return lines_[static_cast<std::size_t>(set) * assoc_ + way];
}

CacheAccess
SetAssocCache::access(Addr addr, bool write)
{
    ++accesses_;
    ++useClock_;
    Addr block = addr >> blockShift_;
    std::uint32_t set = setOf(block);

    // Hit path: walk the set's ways directly (one base-pointer
    // computation instead of a multiply per way).
    Line *base = &lines_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == block) {
            line.lastUse = useClock_;
            line.dirty = line.dirty || write;
            return CacheAccess{true, false, invalidAddr};
        }
    }

    // Miss: pick victim (invalid first, else LRU).
    ++misses_;
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t(0);
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        Line &line = base[way];
        if (!line.valid) {
            victim = way;
            oldest = 0;
            break;
        }
        if (line.lastUse < oldest) {
            oldest = line.lastUse;
            victim = way;
        }
    }

    Line &line = base[victim];
    CacheAccess result{false, false, invalidAddr};
    if (line.valid && line.dirty) {
        ++writebacks_;
        result.writeback = true;
        result.victimBlock = line.tag;
    }
    line.tag = block;
    line.valid = true;
    line.dirty = write;
    line.lastUse = useClock_;
    CASH_INVARIANT(misses_ <= accesses_,
                   "cache misses (%llu) exceed accesses (%llu)",
                   static_cast<unsigned long long>(misses_),
                   static_cast<unsigned long long>(accesses_));
    CASH_INVARIANT(writebacks_ <= misses_,
                   "writebacks (%llu) exceed misses (%llu): a "
                   "writeback needs an eviction",
                   static_cast<unsigned long long>(writebacks_),
                   static_cast<unsigned long long>(misses_));
    return result;
}

bool
SetAssocCache::probe(Addr addr) const
{
    Addr block = addr >> blockShift_;
    std::uint32_t set = setOf(block);
    const Line *base = &lines_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        const Line &line = base[way];
        if (line.valid && line.tag == block)
            return true;
    }
    return false;
}

std::uint64_t
SetAssocCache::invalidateAll()
{
    std::uint64_t dirty = 0;
    for (Line &line : lines_) {
        if (line.valid && line.dirty)
            ++dirty;
        line.valid = false;
        line.dirty = false;
    }
    return dirty;
}

std::uint64_t
SetAssocCache::dirtyLines() const
{
    std::uint64_t n = 0;
    for (const Line &line : lines_)
        if (line.valid && line.dirty)
            ++n;
    return n;
}

std::uint64_t
SetAssocCache::validLines() const
{
    std::uint64_t n = 0;
    for (const Line &line : lines_)
        if (line.valid)
            ++n;
    return n;
}

} // namespace cash
