/**
 * @file
 * Branch direction predictor + BTB for the virtual-core front-end.
 *
 * A tournament predictor in the Alpha 21264 style: a PC-indexed
 * bimodal table captures per-site bias, a gshare table captures
 * history correlation, and a PC-indexed chooser picks between them
 * per branch. The BTB is a direct-mapped tag array; a taken branch
 * that misses in the BTB costs a front-end bubble even when its
 * direction was predicted correctly.
 */

#ifndef CASH_SIM_BRANCH_PRED_HH
#define CASH_SIM_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace cash
{

/**
 * Outcome of one prediction.
 */
struct BranchOutcome
{
    bool directionCorrect = false;
    bool btbHit = false;
};

/**
 * Tournament (bimodal + gshare + chooser) with a BTB.
 */
class BranchPredictor
{
  public:
    /**
     * @param index_bits log2 of each table's size
     * @param btb_entries number of BTB slots (power of two)
     */
    explicit BranchPredictor(std::uint32_t index_bits = 12,
                             std::uint32_t btb_entries = 1024);

    /**
     * Predict and train on one branch.
     *
     * @param pc branch address
     * @param taken actual outcome
     * @return prediction result (already trained)
     */
    BranchOutcome predictAndTrain(Addr pc, bool taken);

    /** Reset all state (used on vcore reconfiguration flush). */
    void reset();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    static void train(std::uint8_t &ctr, bool up);

    std::uint32_t indexBits_;
    std::uint64_t indexMask_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    /** >= 2 selects gshare, < 2 selects bimodal. */
    std::vector<std::uint8_t> chooser_;
    std::vector<Addr> btbTags_;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace cash

#endif // CASH_SIM_BRANCH_PRED_HH
