/**
 * @file
 * Simulation parameters for the CASH architecture model.
 *
 * Defaults reproduce the paper's Table I (base Slice configuration)
 * and Table II (base cache configuration). All latencies are in
 * cycles, all sizes in bytes unless noted.
 */

#ifndef CASH_SIM_PARAMS_HH
#define CASH_SIM_PARAMS_HH

#include <cstdint>

#include "common/types.hh"
#include "energy/energy.hh"

namespace cash
{

/**
 * Per-Slice microarchitecture parameters (paper Table I).
 *
 * A Slice is a minimal out-of-order core: one ALU, one load-store
 * unit, two-wide fetch, and small private L1 caches.
 */
struct SliceParams
{
    /** Instructions fetched per cycle per Slice. */
    std::uint32_t fetchWidth = 2;
    /** Functional units per Slice (1 ALU + 1 LSU). */
    std::uint32_t functionalUnits = 2;
    /** Reorder buffer entries per Slice. */
    std::uint32_t robSize = 64;
    /** Issue window entries per Slice. */
    std::uint32_t issueWindow = 32;
    /** Load/store queue entries per Slice. */
    std::uint32_t lsqSize = 32;
    /** Store buffer entries per Slice. */
    std::uint32_t storeBuffer = 8;
    /** Maximum in-flight loads per Slice. */
    std::uint32_t maxInflightLoads = 8;
    /** Physical (global logical) registers shared by a vcore. */
    std::uint32_t physRegs = 128;
    /** Local registers per Slice. */
    std::uint32_t localRegs = 64;
    /** Architectural registers visible to software. */
    std::uint32_t archRegs = 32;
    /** Front-end depth: fetch-to-dispatch latency. */
    std::uint32_t frontendDepth = 5;
    /** Extra cycles to restart fetch after a branch mispredict is
     *  resolved (redirect + refill overlap). */
    std::uint32_t mispredictRestart = 5;
    /** Integer ALU latency. */
    std::uint32_t intAluLat = 1;
    /** Floating-point latency (pipelined on the shared ALU port). */
    std::uint32_t fpAluLat = 4;
    /** Commit width per Slice per cycle. */
    std::uint32_t commitWidth = 2;
};

/**
 * Cache hierarchy parameters (paper Table II).
 *
 * The L2 hit delay is not a constant: it is distance*2 + 4 where
 * distance is the hop count from the requesting Slice to the owning
 * bank, so larger (more spread-out) L2 allocations are slower to
 * reach — the root of the non-convex configuration space.
 */
struct CacheParams
{
    /** L1 data cache size per Slice. */
    std::uint64_t l1dSize = 16 * kiB;
    /** L1 instruction cache size per Slice. */
    std::uint64_t l1iSize = 16 * kiB;
    /** Cache block size (all levels). */
    std::uint32_t blockSize = 64;
    /** L1 associativity. */
    std::uint32_t l1Assoc = 2;
    /** L1 hit latency. */
    std::uint32_t l1HitLat = 3;
    /** L2 bank size (the allocation granule). */
    std::uint64_t l2BankSize = 64 * kiB;
    /** L2 associativity. */
    std::uint32_t l2Assoc = 4;
    /** L2 hit delay = distance * l2DistFactor + l2BaseLat. */
    std::uint32_t l2DistFactor = 2;
    std::uint32_t l2BaseLat = 4;
    /** Main memory access latency. */
    std::uint32_t memLat = 100;
    /** Flush network width in bytes (64-bit links). */
    std::uint32_t flushNetBytes = 8;
    /** Entries in the address-to-bank hash table. */
    std::uint32_t bankHashEntries = 256;
};

/**
 * Interconnect parameters.
 */
struct NetworkParams
{
    /** Cycles per hop on the scalar operand network. */
    std::uint32_t operandHopLat = 1;
    /** Fixed injection overhead for an operand message. */
    std::uint32_t operandInjectLat = 1;
    /** Cycles per hop on the Runtime Interface Network. */
    std::uint32_t rinHopLat = 1;
    /** Pipeline flush cost on Slice expansion (paper: ~15 cycles). */
    std::uint32_t pipelineFlushLat = 15;
    /** Registers flushed per cycle over the operand network during
     *  Slice contraction (bounds the paper's "+64 cycles"). */
    std::uint32_t regFlushPerCycle = 2;
};

/**
 * Everything needed to instantiate SSim.
 */
struct SimParams
{
    SliceParams slice;
    CacheParams cache;
    NetworkParams net;
    EnergyParams energy;
    /** History window for dependence tracking (>= robSize * 8). */
    std::uint32_t depWindow = 1024;
};

} // namespace cash

#endif // CASH_SIM_PARAMS_HH
