#include "sim/regfile.hh"

#include <bit>

#include "check/invariant.hh"
#include "common/log.hh"

namespace cash
{

RenameState::RenameState(const SliceParams &params,
                         std::uint32_t num_slices)
    : archBinding_(params.archRegs, ~std::uint32_t(0)),
      globals_(params.physRegs),
      numSlices_(num_slices)
{
    if (num_slices == 0)
        fatal("RenameState requires at least one Slice");
    if (num_slices > 64)
        fatal("RenameState copy mask supports at most 64 Slices");
    if (params.physRegs < params.archRegs)
        fatal("fewer global registers (%u) than architectural (%u)",
              params.physRegs, params.archRegs);
    freeList_.reserve(params.physRegs);
    for (std::uint32_t i = params.physRegs; i > 0; --i)
        freeList_.push_back(i - 1);
}

void
RenameState::write(std::uint8_t arch_reg, std::uint32_t member)
{
    if (arch_reg >= archBinding_.size())
        panic("write to architectural register %u out of range",
              arch_reg);
    if (member >= numSlices_)
        panic("write from member %u of %u", member, numSlices_);

    // Free the global register previously bound to this name.
    std::uint32_t old = archBinding_[arch_reg];
    if (old != ~std::uint32_t(0)) {
        globals_[old].live = false;
        globals_[old].copies = 0;
        freeList_.push_back(old);
    }

    if (freeList_.empty())
        panic("global register free list exhausted");
    std::uint32_t g = freeList_.back();
    freeList_.pop_back();
    archBinding_[arch_reg] = g;
    globals_[g].live = true;
    globals_[g].primary = member;
    globals_[g].copies = 1ull << member;
}

bool
RenameState::read(std::uint8_t arch_reg, std::uint32_t member)
{
    if (arch_reg >= archBinding_.size())
        panic("read of architectural register %u out of range",
              arch_reg);
    if (member >= numSlices_)
        panic("read from member %u of %u", member, numSlices_);

    std::uint32_t g = archBinding_[arch_reg];
    if (g == ~std::uint32_t(0))
        return false; // never written: treated as ready constant
    GlobalReg &reg = globals_[g];
    if (reg.copies & (1ull << member))
        return false;
    reg.copies |= 1ull << member;
    ++crossSliceReads_;
    return true;
}

std::uint32_t
RenameState::shrink(std::uint32_t new_count)
{
    if (new_count == 0)
        fatal("cannot shrink a virtual core to zero Slices");
    if (new_count >= numSlices_)
        panic("shrink to %u from %u is not a shrink",
              new_count, numSlices_);

    std::uint64_t survivor_mask = (new_count == 64)
        ? ~std::uint64_t(0) : ((1ull << new_count) - 1);

#if CASH_CHECK_INVARIANTS
    // A shrink moves values; it must never create or destroy them.
    const std::uint32_t live_before = liveGlobals();
#endif

    std::uint32_t flushed = 0;
    for (GlobalReg &reg : globals_) {
        if (!reg.live)
            continue;
        if (reg.primary >= new_count) {
            // Primary writer removed: push the value to a survivor
            // (member 0) unless a survivor already holds a copy —
            // in Fig 5 the push still happens (only the primary
            // knows liveness), but the receiver discards duplicates;
            // the network transfer is what costs cycles.
            ++flushed;
            std::uint64_t surviving_copies = reg.copies & survivor_mask;
            reg.primary = surviving_copies
                ? static_cast<std::uint32_t>(
                      std::countr_zero(surviving_copies))
                : 0;
            reg.copies = surviving_copies | (1ull << reg.primary);
#if CASH_CHECK_INVARIANTS
            // Mutation test: lose the pushed value's survivor copy,
            // the exact bug the conservation checker exists for.
            if (CASH_FAULT_ARMED(Fault::RenameDropFlush))
                reg.copies = surviving_copies;
#endif
        } else {
            reg.copies &= survivor_mask;
            reg.copies |= 1ull << reg.primary;
        }
    }
    numSlices_ = new_count;

#if CASH_CHECK_INVARIANTS
    CASH_INVARIANT(liveGlobals() == live_before,
                   "shrink changed the live-register census "
                   "(%u -> %u)", live_before, liveGlobals());
    CASH_INVARIANT(flushed <= live_before,
                   "flushed %u registers but only %u were live",
                   flushed, live_before);
    checkConsistency();
#endif
    return flushed;
}

void
RenameState::expand(std::uint32_t new_count)
{
    if (new_count <= numSlices_)
        panic("expand to %u from %u is not an expand",
              new_count, numSlices_);
    if (new_count > 64)
        fatal("RenameState copy mask supports at most 64 Slices");
    numSlices_ = new_count;
#if CASH_CHECK_INVARIANTS
    checkConsistency();
#endif
}

void
RenameState::checkConsistency() const
{
#if CASH_CHECK_INVARIANTS
    std::uint64_t member_mask = (numSlices_ == 64)
        ? ~std::uint64_t(0) : ((1ull << numSlices_) - 1);

    std::uint32_t live = 0;
    for (std::size_t g = 0; g < globals_.size(); ++g) {
        const GlobalReg &reg = globals_[g];
        if (!reg.live)
            continue;
        ++live;
        CASH_INVARIANT(reg.primary < numSlices_,
                       "global %zu primary %u outside the %u members",
                       g, reg.primary, numSlices_);
        CASH_INVARIANT((reg.copies & ~member_mask) == 0,
                       "global %zu holds copies on removed members",
                       g);
        CASH_INVARIANT((reg.copies >> reg.primary) & 1,
                       "global %zu primary member %u holds no copy",
                       g, reg.primary);
    }

    CASH_INVARIANT(live + freeList_.size() == globals_.size(),
                   "register conservation broken: %u live + %zu "
                   "free != %zu total",
                   live, freeList_.size(), globals_.size());

    // Each arch register binds a distinct, live global.
    std::vector<bool> bound(globals_.size(), false);
    for (std::size_t a = 0; a < archBinding_.size(); ++a) {
        std::uint32_t g = archBinding_[a];
        if (g == ~std::uint32_t(0))
            continue;
        CASH_INVARIANT(g < globals_.size(),
                       "arch %zu bound past the global file", a);
        CASH_INVARIANT(globals_[g].live,
                       "arch %zu bound to dead global %u", a, g);
        CASH_INVARIANT(!bound[g],
                       "global %u bound to two arch registers", g);
        bound[g] = true;
    }
#endif
}

std::uint32_t
RenameState::liveGlobals() const
{
    std::uint32_t n = 0;
    for (const GlobalReg &reg : globals_)
        if (reg.live)
            ++n;
    return n;
}

std::uint32_t
RenameState::primaryWriter(std::uint8_t arch_reg) const
{
    if (arch_reg >= archBinding_.size())
        panic("primaryWriter of out-of-range register %u", arch_reg);
    std::uint32_t g = archBinding_[arch_reg];
    if (g == ~std::uint32_t(0))
        return ~std::uint32_t(0);
    return globals_[g].primary;
}

bool
RenameState::hasCopy(std::uint8_t arch_reg, std::uint32_t member) const
{
    if (arch_reg >= archBinding_.size())
        panic("hasCopy of out-of-range register %u", arch_reg);
    std::uint32_t g = archBinding_[arch_reg];
    if (g == ~std::uint32_t(0))
        return false;
    return (globals_[g].copies >> member) & 1;
}

} // namespace cash
