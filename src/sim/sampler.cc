#include "sim/sampler.hh"

#include <cmath>

#include "check/invariant.hh"
#include "common/log.hh"
#include "trace/metrics.hh"

namespace cash
{

namespace
{

void
accumulate(SliceCounters &into, const SliceCounters &delta)
{
    into.committedInsts += delta.committedInsts;
    into.committedRequests += delta.committedRequests;
    into.requestLatencySum += delta.requestLatencySum;
    into.l1dAccesses += delta.l1dAccesses;
    into.l1dMisses += delta.l1dMisses;
    into.l1iAccesses += delta.l1iAccesses;
    into.l1iMisses += delta.l1iMisses;
    into.l2Accesses += delta.l2Accesses;
    into.l2Misses += delta.l2Misses;
    into.branches += delta.branches;
    into.branchMispredicts += delta.branchMispredicts;
    into.operandNetMsgs += delta.operandNetMsgs;
}

} // namespace

SliceController::SliceController(const SamplerParams &params)
    : params_(params)
{
    if (params_.sliceQuantum == 0)
        fatal("sampler sliceQuantum must be positive");
    if (params_.warmupQuanta == 0 || params_.measureQuanta == 0
        || params_.ffQuanta == 0)
        fatal("sampler schedule needs warmup, measure and "
              "fast-forward quanta all >= 1");
    if (params_.maxWarmupQuanta < params_.warmupQuanta)
        fatal("sampler maxWarmupQuanta below warmupQuanta");
    if (params_.warmupSettle <= 0.0)
        fatal("sampler warmupSettle must be positive");
    if (params_.phaseThreshold <= 0.0)
        fatal("sampler phaseThreshold must be positive");
}

void
SliceController::record(SliceMode mode, Cycle start, Cycle cycles,
                        InstCount insts, bool abort)
{
    if (schedule_.size() >= params_.maxScheduleRecords) {
        ++droppedRecords_;
        return;
    }
    schedule_.push_back(SliceRecord{mode, start, cycles, insts, abort});
}

void
SliceController::restart(bool cold)
{
    mode_ = SliceMode::Warmup;
    quantaInMode_ = 0;
    measInsts_ = 0;
    measBusy_ = 0;
    measCtrs_ = SliceCounters{};
    prevWarmIpc_ = -1.0;
    model_ = FfModel{};
    if (cold)
        kalmanSeeded_ = false;
}

void
SliceController::onDetailedQuantum(Cycle start, InstCount insts,
                                   Cycle cycles, Cycle idle_cycles,
                                   const SliceCounters &delta)
{
    CASH_INVARIANT(idle_cycles <= cycles,
                   "sampler quantum with %llu idle of %llu cycles",
                   static_cast<unsigned long long>(idle_cycles),
                   static_cast<unsigned long long>(cycles));
    record(mode_, start, cycles, insts, false);
    stats_.detailedCycles += cycles;
    stats_.detailedInsts += insts;

    // A quantum cut short by the caller's horizon (not by the
    // quantum grid) carries too little signal: account it, but do
    // not let it advance the schedule or pollute the filter — a
    // partial window's IPC sample would defeat both the settle
    // detector and the measurement mean.
    if (cycles * 4 < params_.sliceQuantum * 3)
        return;

    Cycle busy = cycles - idle_cycles;
    double ipc = busy > 0
        ? static_cast<double>(insts) / static_cast<double>(busy)
        : 0.0;

    // The Kalman filter tracks busy IPC across MEASUREMENT quanta
    // only (speedup input 1.0: the hardware under it is fixed
    // between reconfigurations). Warmup quanta are excluded on
    // purpose — cache-refill transients would drag the estimate
    // below steady state. A large innovation during measurement
    // means the phase moved under us: discard and re-warm.
    bool suspicious = false;
    if (mode_ == SliceMode::Measure && busy > 0 && insts > 0) {
        if (kalmanSeeded_) {
            kalman_.update(ipc, 1.0);
            suspicious = kalman_.innovation() > params_.phaseThreshold;
        } else {
            kalman_.reset(ipc);
            kalmanSeeded_ = true;
        }
    }

    switch (mode_) {
      case SliceMode::Warmup: {
        // Adaptive warmup: measurement may start once consecutive
        // full quanta agree within warmupSettle (the microarch
        // transient has decayed), subject to the min/max bounds.
        bool settled = prevWarmIpc_ > 0.0 && ipc > 0.0
            && std::fabs(ipc - prevWarmIpc_) / prevWarmIpc_
                <= params_.warmupSettle;
        prevWarmIpc_ = ipc;
        ++quantaInMode_;
        if ((settled && quantaInMode_ >= params_.warmupQuanta)
            || quantaInMode_ >= params_.maxWarmupQuanta) {
            mode_ = SliceMode::Measure;
            quantaInMode_ = 0;
            measInsts_ = 0;
            measBusy_ = 0;
            measCtrs_ = SliceCounters{};
        }
        break;
      }

      case SliceMode::Measure:
        if (suspicious) {
            ++stats_.innovationAborts;
            CASH_METRIC_INC("sim.sampler.innovation_aborts");
            restart(true);
            break;
        }
        measInsts_ += insts;
        measBusy_ += busy;
        accumulate(measCtrs_, delta);
        if (++quantaInMode_ >= params_.measureQuanta) {
            if (measInsts_ == 0 || measBusy_ == 0) {
                // Nothing committed (source idle): there is no
                // rate to extrapolate, stay detailed.
                restart(true);
                break;
            }
            auto insts_d = static_cast<double>(measInsts_);
            model_.ipc = insts_d / static_cast<double>(measBusy_);
            model_.l1dAccessRate = measCtrs_.l1dAccesses / insts_d;
            model_.l1dMissRate = measCtrs_.l1dMisses / insts_d;
            model_.l1iAccessRate = measCtrs_.l1iAccesses / insts_d;
            model_.l1iMissRate = measCtrs_.l1iMisses / insts_d;
            model_.l2AccessRate = measCtrs_.l2Accesses / insts_d;
            model_.l2MissRate = measCtrs_.l2Misses / insts_d;
            model_.branchRate = measCtrs_.branches / insts_d;
            model_.mispredictRate =
                measCtrs_.branchMispredicts / insts_d;
            model_.operandNetRate =
                measCtrs_.operandNetMsgs / insts_d;
            model_.requestRate =
                measCtrs_.committedRequests / insts_d;
            model_.valid = true;
            mode_ = SliceMode::FastForward;
            quantaInMode_ = 0;
            ++stats_.measurementSlices;
            CASH_METRIC_INC("sim.sampler.measurement_slices");
        }
        break;

      case SliceMode::FastForward:
        // The caller ran this quantum in detail although the
        // controller offered extrapolation (e.g. a reconfiguration
        // landed between segments). Treat it as warmup.
        restart(true);
        ++quantaInMode_;
        break;
    }
}

void
SliceController::onFastForward(Cycle start, InstCount insts,
                               Cycle cycles, bool phase_boundary)
{
    CASH_INVARIANT(mode_ == SliceMode::FastForward && model_.valid,
                   "fast-forward accounted outside FastForward mode");
    record(SliceMode::FastForward, start, cycles, insts,
           phase_boundary);
    stats_.ffCycles += cycles;
    stats_.ffInsts += insts;
    CASH_METRIC_ADD("sim.sampler.ff_cycles", cycles);
    CASH_METRIC_ADD("sim.sampler.ff_insts", insts);

    if (phase_boundary) {
        // The source crossed into a different program phase: the
        // model no longer describes the stream. Re-warm and
        // re-measure starting with the very next quantum.
        ++stats_.phaseAborts;
        CASH_METRIC_INC("sim.sampler.phase_aborts");
        restart(true);
        return;
    }
    if (++quantaInMode_ >= params_.ffQuanta) {
        // Budget spent: re-warm and re-measure. The restart is
        // warm — the stream is still mid-phase (a boundary would
        // have aborted above), so the Kalman filter keeps its
        // estimate to cross-check the fresh measurements; adaptive
        // warmup typically settles in ~2 quanta here.
        restart(false);
    }
}

void
SliceController::onReconfigure()
{
    // The IPC level is a property of the configuration; the cold
    // restart invalidates the filter's state, not just the model.
    ++stats_.reconfigResets;
    CASH_METRIC_INC("sim.sampler.reconfig_resets");
    restart(true);
}

} // namespace cash
