#include "sim/l2system.hh"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "check/invariant.hh"
#include "common/log.hh"

namespace cash
{

L2System::L2System(const FabricGrid &grid, const CacheParams &params,
                   const std::vector<BankId> &banks)
    : grid_(grid), params_(params)
{
    if (params_.bankHashEntries == 0)
        fatal("L2System requires a non-empty bank hash table");
    L2ReconfigCost ignored;
    rebuildBanks(banks, ignored);
}

std::uint32_t
L2System::hashEntry(Addr addr) const
{
    Addr block = addr >> std::countr_zero(params_.blockSize);
    // Fibonacci hashing spreads consecutive blocks across entries.
    std::uint64_t h = block * 0x9e3779b97f4a7c15ull;
    return static_cast<std::uint32_t>(
        (h >> 40) % params_.bankHashEntries);
}

std::size_t
L2System::bankIndex(Addr addr) const
{
    if (banks_.empty())
        panic("bankIndex with no banks allocated");
    return hashTable_[hashEntry(addr)];
}

BankId
L2System::bankFor(Addr addr) const
{
    if (banks_.empty())
        return invalidBank;
    return banks_[bankIndex(addr)];
}

std::uint32_t
L2System::hitLatency(SliceId requester, Addr addr) const
{
    if (banks_.empty())
        return 0;
    std::uint32_t dist = grid_.sliceToBankDistance(
        requester, banks_[bankIndex(addr)]);
    return dist * params_.l2DistFactor + params_.l2BaseLat;
}

L2Access
L2System::access(SliceId requester, Addr addr, bool write)
{
    ++accesses_;
    L2Access result;
    if (banks_.empty()) {
        // No L2 allocated: straight to memory.
        ++misses_;
        result.hit = false;
        result.latency = params_.memLat;
        return result;
    }

    std::size_t idx = bankIndex(addr);
    result.bank = banks_[idx];
    std::uint32_t hit_lat = hitLatency(requester, addr);
    CacheAccess acc = arrays_[idx]->access(addr, write);
    if (acc.writeback)
        ++writebacks_;
    result.hit = acc.hit;
    result.latency = acc.hit ? hit_lat : hit_lat + params_.memLat;
    if (!acc.hit)
        ++misses_;
    return result;
}

std::uint64_t
L2System::dirtyLines() const
{
    std::uint64_t n = 0;
    for (const auto &array : arrays_)
        n += array->dirtyLines();
    return n;
}

void
L2System::rebuildBanks(const std::vector<BankId> &new_banks,
                       L2ReconfigCost &cost)
{
#if CASH_CHECK_INVARIANTS
    // Every dirty line must either survive in a kept bank or be
    // counted as flushed — snapshot the census to prove it below.
    const std::uint64_t dirty_before = dirtyLines();
    const std::uint64_t flushed_before = cost.dirtyLinesFlushed;
    const Cycle cycles_before = cost.flushCycles;
#endif
    // Map new bank id -> new index; detect duplicates.
    std::unordered_map<BankId, std::uint32_t> new_index;
    for (std::uint32_t i = 0; i < new_banks.size(); ++i) {
        if (!new_index.emplace(new_banks[i], i).second)
            fatal("duplicate bank %u in L2 configuration",
                  new_banks[i]);
    }

    // Build the new array list, moving survivor arrays over.
    std::vector<std::unique_ptr<SetAssocCache>> new_arrays(
        new_banks.size());
    std::vector<bool> old_survives(banks_.size(), false);
    std::vector<std::uint32_t> old_to_new(
        banks_.size(), ~std::uint32_t(0));
    for (std::uint32_t i = 0; i < banks_.size(); ++i) {
        auto it = new_index.find(banks_[i]);
        if (it != new_index.end()) {
            old_survives[i] = true;
            old_to_new[i] = it->second;
            new_arrays[it->second] = std::move(arrays_[i]);
        }
    }
    for (std::uint32_t i = 0; i < new_banks.size(); ++i) {
        if (!new_arrays[i]) {
            new_arrays[i] = std::make_unique<SetAssocCache>(
                params_.l2BankSize, params_.blockSize,
                params_.l2Assoc);
        }
    }

    // Flush every removed bank entirely.
    for (std::uint32_t i = 0; i < banks_.size(); ++i) {
        if (!old_survives[i] && arrays_[i]) {
            cost.dirtyLinesFlushed += arrays_[i]->dirtyLines();
            cost.linesInvalidated += arrays_[i]->validLines()
                - arrays_[i]->dirtyLines();
        }
    }

    // Rewrite the hash table.
    std::vector<std::uint32_t> new_table(
        params_.bankHashEntries, ~std::uint32_t(0));
    std::vector<std::uint32_t> load(new_banks.size(), 0);
    std::vector<std::uint32_t> needy;

    if (!new_banks.empty()) {
        if (hashTable_.empty()) {
            // First configuration: balanced striping.
            for (std::uint32_t e = 0; e < params_.bankHashEntries;
                 ++e) {
                std::uint32_t idx = e
                    % static_cast<std::uint32_t>(new_banks.size());
                new_table[e] = idx;
                ++load[idx];
            }
        } else {
            // Keep survivor-pointing entries; collect the rest.
            for (std::uint32_t e = 0; e < params_.bankHashEntries;
                 ++e) {
                std::uint32_t old_idx = hashTable_[e];
                if (old_idx < old_survives.size()
                    && old_survives[old_idx]) {
                    new_table[e] = old_to_new[old_idx];
                    ++load[new_table[e]];
                } else {
                    needy.push_back(e);
                }
            }

            std::uint32_t target =
                (params_.bankHashEntries
                 + static_cast<std::uint32_t>(new_banks.size()) - 1)
                / static_cast<std::uint32_t>(new_banks.size());

            // Steal entries from overloaded survivors for any new
            // banks that would otherwise sit empty (expansion path).
            bool any_underloaded = std::any_of(
                load.begin(), load.end(),
                [target](std::uint32_t l) { return l < target; });
            if (needy.empty() && any_underloaded) {
                for (std::uint32_t e = 0;
                     e < params_.bankHashEntries; ++e) {
                    std::uint32_t idx = new_table[e];
                    if (idx != ~std::uint32_t(0) && load[idx] > target) {
                        // Lines under this entry become unreachable.
                        auto *array = new_arrays[idx].get();
                        std::uint64_t dirty = array->invalidateIf(
                            [this, e](Addr block) {
                                Addr addr = block
                                    << std::countr_zero(
                                        params_.blockSize);
                                return hashEntry(addr) == e;
                            });
                        cost.dirtyLinesFlushed += dirty;
                        --load[idx];
                        new_table[e] = ~std::uint32_t(0);
                        needy.push_back(e);
                    }
                }
            }

            // Round-robin needy entries onto underloaded banks.
            std::uint32_t cursor = 0;
            for (std::uint32_t e : needy) {
                // Find the least-loaded bank (deterministic scan).
                std::uint32_t best = cursor
                    % static_cast<std::uint32_t>(new_banks.size());
                for (std::uint32_t i = 0; i < new_banks.size(); ++i) {
                    if (load[i] < load[best])
                        best = i;
                }
                new_table[e] = best;
                ++load[best];
                ++cursor;
            }
        }
    }

    banks_ = new_banks;
    arrays_ = std::move(new_arrays);
    hashTable_ = std::move(new_table);

    cost.flushCycles += cost.dirtyLinesFlushed * params_.blockSize
        / params_.flushNetBytes;

#if CASH_CHECK_INVARIANTS
    // Mutation test: misreport the flush bill so the dirty-byte
    // accounting invariant has a deliberate bug to catch.
    if (CASH_FAULT_ARMED(Fault::L2FlushUndercount))
        cost.flushCycles = cycles_before
            + (cost.flushCycles - cycles_before) / 2;

    CASH_INVARIANT(arrays_.size() == banks_.size(),
                   "bank/array lists diverged (%zu vs %zu)",
                   banks_.size(), arrays_.size());
    for (std::size_t i = 0; i < arrays_.size(); ++i) {
        CASH_INVARIANT(arrays_[i] != nullptr,
                       "bank %u has no cache array", banks_[i]);
        std::uint64_t lines = params_.l2BankSize / params_.blockSize;
        CASH_INVARIANT(arrays_[i]->validLines() <= lines,
                       "bank %u census exceeds capacity", banks_[i]);
    }
    CASH_INVARIANT(hashTable_.size() == params_.bankHashEntries,
                   "hash table resized to %zu entries",
                   hashTable_.size());
    if (!banks_.empty()) {
        for (std::uint32_t e = 0; e < hashTable_.size(); ++e)
            CASH_INVARIANT(hashTable_[e] < banks_.size(),
                           "hash entry %u points past the bank list",
                           e);
    }
    const std::uint64_t flushed_now =
        cost.dirtyLinesFlushed - flushed_before;
    CASH_INVARIANT(dirty_before == dirtyLines() + flushed_now,
                   "dirty lines not conserved: %llu before, %llu "
                   "after + %llu flushed",
                   static_cast<unsigned long long>(dirty_before),
                   static_cast<unsigned long long>(dirtyLines()),
                   static_cast<unsigned long long>(flushed_now));
    CASH_INVARIANT(cost.flushCycles - cycles_before
                       == flushed_now * params_.blockSize
                              / params_.flushNetBytes,
                   "flush cycles disagree with flushed dirty bytes");
#endif
}

L2ReconfigCost
L2System::reconfigure(const std::vector<BankId> &new_banks)
{
    L2ReconfigCost cost;
    rebuildBanks(new_banks, cost);
    return cost;
}

} // namespace cash
