/**
 * @file
 * The virtual core's distributed register file model.
 *
 * CASH maps architectural registers onto *global logical* registers
 * (a vcore-wide name space) which are in turn backed by *local*
 * registers inside individual Slices (paper Sec III-B1, Fig 5). One
 * architectural value can have copies in several Slices (a copy per
 * reader), but exactly one Slice is the *primary writer*.
 *
 * This model tracks, per global register: the primary-writer Slice,
 * the set of Slices holding copies, and liveness (a global register
 * is live from its write until the architectural register is
 * overwritten). On a SHRINK, every live global register whose
 * primary writer is being removed must be pushed to a survivor over
 * the operand network — registerFlush() returns exactly that count,
 * which is bounded by the number of global registers (the paper's
 * "at most 64 cycles more than expansion" at 2 registers/cycle).
 */

#ifndef CASH_SIM_REGFILE_HH
#define CASH_SIM_REGFILE_HH

#include <cstdint>
#include <vector>

#include "sim/params.hh"

namespace cash
{

/**
 * Two-level rename state for one virtual core.
 *
 * Slices are referred to by their *member index* within the vcore
 * (0 .. numSlices-1), not by fabric SliceId; the vcore translates.
 */
class RenameState
{
  public:
    /**
     * @param params slice parameters (register counts)
     * @param num_slices initial member count (>= 1)
     */
    RenameState(const SliceParams &params, std::uint32_t num_slices);

    /**
     * Record an architectural write performed on a member Slice.
     * Allocates a fresh global register (freeing the one previously
     * bound to this architectural register).
     *
     * @param arch_reg architectural register (< archRegs)
     * @param member writing Slice's member index
     */
    void write(std::uint8_t arch_reg, std::uint32_t member);

    /**
     * Record a read of an architectural register on a member Slice;
     * creates a local copy there if one does not exist.
     *
     * @return true if an operand-network transfer was needed (the
     *         value was not already local)
     */
    bool read(std::uint8_t arch_reg, std::uint32_t member);

    /**
     * Shrink the vcore to new_count members (members with index
     * >= new_count are removed, matching the vcore's policy).
     *
     * Implements Fig 5: every live global register primarily written
     * by a removed member and not already copied in a survivor is
     * pushed to member 0. Copy sets are pruned to survivors.
     *
     * @return number of register values pushed over the network
     */
    std::uint32_t shrink(std::uint32_t new_count);

    /** Grow the member count (no state motion needed). */
    void expand(std::uint32_t new_count);

    /** Number of live global registers. */
    std::uint32_t liveGlobals() const;

    /** Member currently holding the primary copy for an
     *  architectural register, or ~0u if never written. */
    std::uint32_t primaryWriter(std::uint8_t arch_reg) const;

    /** True if the member holds a copy of the arch register. */
    bool hasCopy(std::uint8_t arch_reg, std::uint32_t member) const;

    std::uint32_t numSlices() const { return numSlices_; }

    std::uint64_t crossSliceReads() const { return crossSliceReads_; }

  private:
    /** Invariant hook: register conservation and copy-set sanity
     *  (free + live == physRegs, primaries hold copies, copy masks
     *  confined to members, bindings point at live globals). */
    void checkConsistency() const;

    struct GlobalReg
    {
        bool live = false;
        std::uint32_t primary = 0;
        /** Bitmask of members holding a copy (supports <= 64). */
        std::uint64_t copies = 0;
    };

    /** Global register currently bound to each arch register. */
    std::vector<std::uint32_t> archBinding_;
    std::vector<GlobalReg> globals_;
    std::vector<std::uint32_t> freeList_;
    std::uint32_t numSlices_;
    std::uint64_t crossSliceReads_ = 0;
};

} // namespace cash

#endif // CASH_SIM_REGFILE_HH
