/**
 * @file
 * A generic set-associative, write-back, write-allocate cache array
 * with true LRU replacement. Used for L1I, L1D, and each L2 bank.
 *
 * The array is purely functional (hit/miss/evict bookkeeping); all
 * latency accounting lives in the virtual-core timing model.
 */

#ifndef CASH_SIM_CACHE_HH
#define CASH_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace cash
{

/**
 * Result of one cache access.
 */
struct CacheAccess
{
    bool hit = false;
    /** A dirty line was evicted (write-back traffic). */
    bool writeback = false;
    /** Block address of the evicted dirty line (valid iff writeback). */
    Addr victimBlock = invalidAddr;
};

/**
 * Set-associative cache array.
 */
class SetAssocCache
{
  public:
    /**
     * @param size total bytes; must be a multiple of block*assoc
     * @param block_size bytes per line (power of two)
     * @param assoc ways per set
     */
    SetAssocCache(std::uint64_t size, std::uint32_t block_size,
                  std::uint32_t assoc);

    /**
     * Access one address.
     *
     * @param addr byte address
     * @param write true to mark the (possibly newly filled) line dirty
     * @return hit/miss and eviction info
     */
    CacheAccess access(Addr addr, bool write);

    /** Probe without modifying state. */
    bool probe(Addr addr) const;

    /** Invalidate everything; returns the number of dirty lines
     *  that were dropped (caller decides whether that is a flush). */
    std::uint64_t invalidateAll();

    /** Count currently dirty lines. */
    std::uint64_t dirtyLines() const;

    /** Count currently valid lines. */
    std::uint64_t validLines() const;

    std::uint64_t size() const { return size_; }
    std::uint32_t blockSize() const { return blockSize_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t numSets() const { return numSets_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /**
     * Visit every valid line: callback(block_addr, dirty).
     * Used by the L2 reconfiguration flush engine.
     */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const Line &line : lines_) {
            if (line.valid)
                fn(line.tag, line.dirty);
        }
    }

    /**
     * Selectively invalidate lines; callback decides per line.
     * @return number of dirty lines invalidated.
     */
    template <typename Pred>
    std::uint64_t
    invalidateIf(Pred &&pred)
    {
        std::uint64_t dirty = 0;
        for (Line &line : lines_) {
            if (line.valid && pred(line.tag)) {
                if (line.dirty)
                    ++dirty;
                line.valid = false;
                line.dirty = false;
            }
        }
        return dirty;
    }

  private:
    struct Line
    {
        Addr tag = invalidAddr; ///< full block address (not truncated)
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    Line &lineAt(std::uint32_t set, std::uint32_t way);
    const Line &lineAt(std::uint32_t set, std::uint32_t way) const;

    /** Set index of a block address: a mask when numSets_ is a
     *  power of two (every default configuration), else a modulo. */
    std::uint32_t setOf(Addr block) const
    {
        if (setMask_ != 0)
            return static_cast<std::uint32_t>(block) & setMask_;
        return static_cast<std::uint32_t>(block % numSets_);
    }

    std::uint64_t size_;
    std::uint32_t blockSize_;
    std::uint32_t blockShift_;
    std::uint32_t assoc_;
    std::uint32_t numSets_;
    /** numSets_ - 1 when numSets_ is a power of two, else 0. */
    std::uint32_t setMask_ = 0;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace cash

#endif // CASH_SIM_CACHE_HH
