/**
 * @file
 * The virtual core: the central timing model of SSim.
 *
 * A virtual core is a dynamically composed processor made of member
 * Slices and L2 banks. The model is trace-driven and structural:
 * every dynamic instruction's fetch, dispatch, issue, completion and
 * commit cycles are derived from
 *
 *  - dataflow: dependence distances against a completion-time
 *    history window, with scalar-operand-network hop latency added
 *    when producer and consumer sit on different Slices;
 *  - structural resources: per-Slice fetch bandwidth (2/cycle), one
 *    ALU and one LSU per Slice, ROB/issue-window/LSQ/store-buffer
 *    occupancy, an in-flight-load cap, and a global commit width;
 *  - the memory system: per-Slice L1I/L1D (address-partitioned
 *    across Slices by the LS-bank sorting hash), the banked L2 with
 *    distance-dependent hit delay, and a flat 100-cycle memory;
 *  - control flow: a shared gshare+BTB front-end whose mispredicts
 *    redirect fetch on every member Slice.
 *
 * Processing is in program order and O(1) per instruction, which
 * keeps the oracle's exhaustive 64-configuration sweeps tractable
 * while every stall remains attributable to a hardware cause.
 */

#ifndef CASH_SIM_VCORE_HH
#define CASH_SIM_VCORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "energy/energy.hh"
#include "fabric/grid.hh"
#include "fabric/resource.hh"
#include "sim/branch_pred.hh"
#include "sim/cache.hh"
#include "sim/isa.hh"
#include "sim/l2system.hh"
#include "sim/params.hh"
#include "sim/perf_counter.hh"
#include "sim/reconfig.hh"
#include "sim/regfile.hh"
#include "sim/sampler.hh"

namespace cash
{

/**
 * Aggregate, vcore-level state visible to the monitor.
 */
struct VCoreMeta
{
    Cycle clock = 0;
    InstCount totalCommitted = 0;
    Cycle idleCycles = 0;
    Cycle reconfigStallCycles = 0;
    std::uint64_t requestsDone = 0;
    std::uint64_t requestLatencySum = 0;
    /** Application-reported queued work (heartbeat counter). */
    std::uint64_t appBacklog = 0;
    std::uint32_t numSlices = 0;
    std::uint32_t numBanks = 0;
    /** Of totalCommitted, instructions advanced by fast-forward
     *  extrapolation instead of the detailed model (0 in full
     *  simulation — the auditors check that). */
    InstCount estimatedInsts = 0;
    /** Cycles covered by fast-forward (never exceeds clock). */
    Cycle ffCycles = 0;
    /** Current DVFS operating point (0 = nominal frequency). */
    std::uint32_t pstate = 0;
    /** Reference cycles lost to SET_FREQ transitions so far. */
    Cycle dvfsStallCycles = 0;
    /** Total dissipated energy (dynamic + leakage), joules. */
    double energyJoules = 0.0;
};

/**
 * Result of one runUntil() call.
 */
struct RunResult
{
    InstCount committed = 0;
    Cycle idleCycles = 0;
    bool finished = false;
};

/**
 * A dynamically composed CASH virtual core.
 */
class VirtualCore
{
  public:
    /**
     * @param grid fabric geometry (not owned)
     * @param params simulation parameters
     * @param id allocation handle
     * @param slices member Slices (>= 1)
     * @param banks member L2 banks (may be empty)
     */
    VirtualCore(const FabricGrid &grid, const SimParams &params,
                VCoreId id, std::vector<SliceId> slices,
                std::vector<BankId> banks);

    /** Attach the instruction source (not owned; must outlive). */
    void bindSource(InstSource *source);

    /**
     * Switch this vcore to sampled simulation (SMARTS-style slices
     * + analytic fast-forward; see sim/sampler.hh). Call before the
     * first runUntil. Irreversible for the vcore's lifetime.
     */
    void enableSampling(const SamplerParams &params);

    bool samplingEnabled() const { return sampler_ != nullptr; }

    /** The slice scheduler, or nullptr in full simulation. */
    const SliceController *sampler() const { return sampler_.get(); }

    /**
     * Advance simulated time until the vcore clock reaches target
     * or the source finishes. In sampled mode, steady quanta are
     * extrapolated instead of simulated (RunResult::committed then
     * includes estimated instructions; billing integrals and the
     * clock remain exact).
     */
    RunResult runUntil(Cycle target);

    /**
     * Reconfigure to a new Slice/bank membership, charging all
     * stalls (pipeline flush, register flush, cache flushes) to the
     * vcore clock.
     *
     * @param command_latency interface-network delivery delay
     */
    ReconfigCost reconfigure(std::vector<SliceId> new_slices,
                             std::vector<BankId> new_banks,
                             Cycle command_latency = 0);

    /**
     * Switch the core clock to a new DVFS operating point
     * (0 <= pstate < kNumPStates). Core-side latencies dilate by the
     * P-state's divider; memory-side latencies (L2, DRAM, networks)
     * stay in reference cycles, so memory-bound code loses less
     * throughput per downclock than compute-bound code. Charges a
     * pipeline-drain + PLL-relock stall to the vcore clock and
     * returns it (0 when the P-state is unchanged).
     */
    Cycle setPState(std::uint32_t pstate);

    /** Current DVFS operating point. */
    std::uint32_t pstate() const { return pstate_; }

    /**
     * Metered energy dissipated since construction, in joules. Like
     * the holdings integrals, the meter closes lazily: counter
     * deltas become voltage-scaled switching energy, and the clock
     * window becomes leakage at the held configuration. Exact in
     * sampled mode too — extrapolated quanta credit the same
     * counters the meter reads.
     */
    double energyJoules() const;
    /** The switching-energy component of energyJoules(). */
    double dynamicJoules() const;
    /** The leakage component of energyJoules(). */
    double leakageJoules() const;
    /** Where the joules went, by structure. */
    EnergyBreakdown energyBreakdown() const;

    Cycle now() const { return clock_; }
    VCoreId id() const { return id_; }
    std::uint32_t numSlices() const
    {
        return static_cast<std::uint32_t>(slices_.size());
    }
    std::uint32_t numBanks() const { return l2_.numBanks(); }

    /** Member Slice fabric ids, in member order. */
    std::vector<SliceId> sliceIds() const;

    /**
     * Integrated holdings: Σ Slices x cycles held since
     * construction, exact across every reconfiguration (stall
     * cycles are charged at the *new* membership, matching the
     * runtime's billing convention). The provider's billing
     * auditor reconciles revenue against these integrals.
     */
    std::uint64_t sliceCycles() const;
    /** Integrated holdings: Σ banks x cycles held. */
    std::uint64_t bankCycles() const;

    /** Per-member raw counters (member < numSlices). */
    const SliceCounters &counters(std::uint32_t member) const;

    /** Aggregate vcore state. */
    VCoreMeta meta() const;

    const L2System &l2() const { return l2_; }
    const RenameState &rename() const { return rename_; }
    const BranchPredictor &branchPredictor() const { return bpred_; }

  private:
    /** Per-member-Slice structural state. */
    struct SliceCtx
    {
        SliceCtx(SliceId sid, const SimParams &params);

        SliceId id;
        Addr lastFetchBlock = invalidAddr;
        Cycle aluFree = 0;
        Cycle lsuFree = 0;
        /** Ring buffers: slot (n % size) holds the cycle the
         *  resource taken by the n-th user frees. */
        std::vector<Cycle> robRing;
        std::vector<Cycle> iqRing;
        std::vector<Cycle> lsqRing;
        std::vector<Cycle> sbRing;
        std::vector<Cycle> loadRing;
        std::uint64_t robSeq = 0;
        std::uint64_t iqSeq = 0;
        std::uint64_t lsqSeq = 0;
        std::uint64_t sbSeq = 0;
        std::uint64_t loadSeq = 0;
        /** Store-buffer address book for store-to-load forwarding:
         *  parallel to sbRing (block address of each buffered store). */
        std::vector<Addr> sbBlocks;
        SetAssocCache l1i;
        SetAssocCache l1d;
        SliceCounters ctrs;
    };

    /** Completion-history entry for dependence tracking. */
    struct HistEnt
    {
        Cycle complete = 0;
        std::uint32_t member = 0;
        std::uint8_t destReg = MicroOp::noDest;
    };

    /** Process one instruction; returns its commit cycle. */
    Cycle processInst(const MicroOp &op);

    /** The full-detail runUntil loop (every instruction timed). */
    RunResult runDetailed(Cycle target);

    /** Extrapolate one quantum ending at seg_end from the sampler
     *  model; returns true when the source finished inside it. */
    bool fastForward(Cycle seg_end, RunResult &result);

    /** Spread extrapolated event counts across the member Slices
     *  (sums preserved exactly, so per-member counters keep
     *  reconciling against the vcore totals). */
    void creditCounters(InstCount insts, std::uint64_t requests,
                        std::uint64_t request_latency);

    /** Sum of all member counters. */
    SliceCounters aggregateCounters() const;

    /**
     * Pick the member Slice an instruction executes on. Memory ops
     * go to the Slice owning their address partition (the LS-bank
     * sorting network); other ops follow their first available
     * producer (keeping dataflow chains local, as in Core Fusion
     * style steering) unless that Slice is overloaded, in which
     * case the least-loaded Slice is used.
     */
    std::uint32_t steer(const MicroOp &op,
                        const HistEnt *producers[2]) const;

    /** Operand-network one-way latency between two members. */
    Cycle operandLatency(std::uint32_t from, std::uint32_t to) const;

    /** Member Slice owning an address (LS-bank sorting hash). */
    std::uint32_t memoryOwner(Addr addr) const;

    /** Timing + functional simulation of a data-memory access.
     *  Returns total latency as seen by the issuing member. */
    Cycle memAccess(std::uint32_t member, Addr addr, bool write,
                    Cycle when);

    /** Fast-forward all structural floors to at least `when`. */
    void advanceFloors(Cycle when);

    /** Rebuild the member-distance matrix. */
    void rebuildDistances();

    /** Fold clock progress into the holdings integrals. */
    void accrueHoldings() const;

    /** Fold counter deltas and the elapsed clock window into the
     *  energy meter at the current P-state and membership. Must run
     *  before any membership or P-state change (the old window's
     *  energy belongs to the old operating point). */
    void accrueEnergy() const;

    /** Refresh the dilated core-side latency constants from the
     *  current P-state's divider. */
    void recomputeDilation();

    const FabricGrid &grid_;
    SimParams params_;
    VCoreId id_;
    std::vector<std::unique_ptr<SliceCtx>> slices_;
    std::vector<std::uint32_t> distance_; ///< N*N member hop matrix
    L2System l2_;
    RenameState rename_;
    BranchPredictor bpred_;
    InstSource *source_ = nullptr;

    Cycle clock_ = 0;
    std::uint64_t seq_ = 0;
    std::vector<HistEnt> hist_;
    Cycle fetchRedirect_ = 0;
    Cycle lastCommit_ = 0;
    Cycle commitSlotCycle_ = 0;
    std::uint32_t commitSlotUsed_ = 0;
    /** Synchronized global front-end: fetch bandwidth is
     *  fetchWidth * numSlices per cycle across the vcore. */
    Cycle nextFetch_ = 0;
    std::uint32_t fetchUsed_ = 0;
    mutable std::uint32_t steerCursor_ = 0;

    /** DVFS state: the divider of the current P-state, plus the
     *  core-side latencies pre-multiplied by it so the per-inst hot
     *  path pays no multiplies. */
    std::uint32_t pstate_ = 0;
    Cycle freqDiv_ = 1;
    Cycle dFrontendDepth_ = 0;
    Cycle dIntAluLat_ = 0;
    Cycle dFpAluLat_ = 0;
    Cycle dMispredictRestart_ = 0;
    Cycle dL1HitLat_ = 0;
    Cycle dvfsStall_ = 0;

    /** Lazy energy meter (mirrors the holdings integral). */
    mutable EnergyModel energy_;
    mutable Cycle energyAccruedAt_ = 0;
    mutable SliceCounters lastCtrs_;

    InstCount totalCommitted_ = 0;
    Cycle idleCycles_ = 0;
    Cycle reconfigStall_ = 0;
    mutable Cycle holdingsAccruedAt_ = 0;
    mutable std::uint64_t sliceCycles_ = 0;
    mutable std::uint64_t bankCycles_ = 0;
    std::uint64_t requestsDone_ = 0;
    std::uint64_t requestLatencySum_ = 0;

    /** Sampled-mode state (null in full simulation). */
    std::unique_ptr<SliceController> sampler_;
    InstCount estimatedInsts_ = 0;
    Cycle ffCycles_ = 0;
};

} // namespace cash

#endif // CASH_SIM_VCORE_HH
