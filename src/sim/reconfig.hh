/**
 * @file
 * Reconfiguration cost accounting (paper Secs III-B, VI-A).
 *
 * The four microarchitectural overheads the paper quantifies:
 *  - Slice expansion: a pipeline flush (~15 cycles).
 *  - Slice contraction: expansion plus flushing primary-written
 *    register values to survivors over the operand network — at most
 *    (#global registers / flush width) extra cycles (the paper's
 *    "+64 cycles" bound at 2 registers/cycle with 128 globals).
 *  - L2 expansion/contraction: flushing dirty lines at
 *    (dirty bytes) / (network width) cycles (the paper's worst case:
 *    64 KB / 8 B = 8000 cycles per fully-dirty bank), overlapped
 *    with the address-hash-table rewrite.
 *  - L1 flushes when the Slice count changes (the LS-bank address
 *    partition is a function of the Slice count).
 */

#ifndef CASH_SIM_RECONFIG_HH
#define CASH_SIM_RECONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace cash
{

/**
 * Cycle-cost breakdown of one reconfiguration.
 */
struct ReconfigCost
{
    /** Pipeline flush cost (any Slice-count change). */
    Cycle pipelineFlush = 0;
    /** Register values pushed to survivors on contraction. */
    std::uint32_t regsFlushed = 0;
    /** Cycles spent on the register flush. */
    Cycle regFlushCycles = 0;
    /** Dirty L2 lines pushed to memory. */
    std::uint64_t l2DirtyFlushed = 0;
    /** Cycles spent flushing the L2. */
    Cycle l2FlushCycles = 0;
    /** Cycles spent flushing L1 data caches (Slice-count change). */
    Cycle l1FlushCycles = 0;
    /** Interface-network command delivery latency. */
    Cycle commandLatency = 0;

    /** Total stall observed by the virtual core. */
    Cycle
    totalStall() const
    {
        return pipelineFlush + regFlushCycles + l2FlushCycles
            + l1FlushCycles + commandLatency;
    }
};

} // namespace cash

#endif // CASH_SIM_RECONFIG_HH
