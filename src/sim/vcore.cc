#include "sim/vcore.hh"

#include <algorithm>
#include <cmath>

#include "check/invariant.hh"
#include "common/log.hh"

namespace cash
{

VirtualCore::SliceCtx::SliceCtx(SliceId sid, const SimParams &params)
    : id(sid),
      robRing(params.slice.robSize, 0),
      iqRing(params.slice.issueWindow, 0),
      lsqRing(params.slice.lsqSize, 0),
      sbRing(params.slice.storeBuffer, 0),
      loadRing(params.slice.maxInflightLoads, 0),
      sbBlocks(params.slice.storeBuffer, invalidAddr),
      l1i(params.cache.l1iSize, params.cache.blockSize,
          params.cache.l1Assoc),
      l1d(params.cache.l1dSize, params.cache.blockSize,
          params.cache.l1Assoc)
{
}

VirtualCore::VirtualCore(const FabricGrid &grid,
                         const SimParams &params, VCoreId id,
                         std::vector<SliceId> slices,
                         std::vector<BankId> banks)
    : grid_(grid), params_(params), id_(id),
      l2_(grid, params.cache, banks),
      rename_(params.slice,
              static_cast<std::uint32_t>(slices.size())),
      hist_(params.depWindow),
      energy_(params.energy)
{
    if (slices.empty())
        fatal("a virtual core needs at least one Slice");
    if (params.depWindow < params.slice.robSize * 8)
        fatal("depWindow %u too small for ROB size %u",
              params.depWindow, params.slice.robSize);
    for (SliceId sid : slices)
        slices_.push_back(std::make_unique<SliceCtx>(sid, params_));
    rebuildDistances();
    recomputeDilation();
}

void
VirtualCore::bindSource(InstSource *source)
{
    source_ = source;
}

void
VirtualCore::enableSampling(const SamplerParams &params)
{
    if (sampler_)
        fatal("sampling already enabled on this vcore");
    sampler_ = std::make_unique<SliceController>(params);
}

std::vector<SliceId>
VirtualCore::sliceIds() const
{
    std::vector<SliceId> ids;
    ids.reserve(slices_.size());
    for (const auto &sc : slices_)
        ids.push_back(sc->id);
    return ids;
}

void
VirtualCore::accrueHoldings() const
{
    Cycle elapsed = clock_ - holdingsAccruedAt_;
    sliceCycles_ += static_cast<std::uint64_t>(elapsed)
        * slices_.size();
    bankCycles_ += static_cast<std::uint64_t>(elapsed)
        * l2_.numBanks();
    holdingsAccruedAt_ = clock_;
}

void
VirtualCore::accrueEnergy() const
{
    SliceCounters now = aggregateCounters();
    SliceCounters delta;
    delta.committedInsts =
        now.committedInsts - lastCtrs_.committedInsts;
    delta.l1dAccesses = now.l1dAccesses - lastCtrs_.l1dAccesses;
    delta.l1iAccesses = now.l1iAccesses - lastCtrs_.l1iAccesses;
    delta.l2Accesses = now.l2Accesses - lastCtrs_.l2Accesses;
    delta.branches = now.branches - lastCtrs_.branches;
    delta.branchMispredicts =
        now.branchMispredicts - lastCtrs_.branchMispredicts;
    delta.operandNetMsgs =
        now.operandNetMsgs - lastCtrs_.operandNetMsgs;
    energy_.accrueDynamic(delta, pstate_);
    energy_.accrueLeakage(
        clock_ - energyAccruedAt_,
        static_cast<std::uint32_t>(slices_.size()), l2_.numBanks(),
        pstate_);
    lastCtrs_ = now;
    energyAccruedAt_ = clock_;
}

double
VirtualCore::energyJoules() const
{
    accrueEnergy();
    return energy_.joules();
}

double
VirtualCore::dynamicJoules() const
{
    accrueEnergy();
    return energy_.dynamicJoules();
}

double
VirtualCore::leakageJoules() const
{
    accrueEnergy();
    return energy_.leakageJoules();
}

EnergyBreakdown
VirtualCore::energyBreakdown() const
{
    accrueEnergy();
    return energy_.breakdown();
}

void
VirtualCore::recomputeDilation()
{
    freqDiv_ = pstateTable()[pstate_].divider;
    dFrontendDepth_ = params_.slice.frontendDepth * freqDiv_;
    dIntAluLat_ = params_.slice.intAluLat * freqDiv_;
    dFpAluLat_ = params_.slice.fpAluLat * freqDiv_;
    dMispredictRestart_ = params_.slice.mispredictRestart * freqDiv_;
    dL1HitLat_ = params_.cache.l1HitLat * freqDiv_;
}

Cycle
VirtualCore::setPState(std::uint32_t pstate)
{
    if (pstate >= kNumPStates)
        fatal("SET_FREQ to unknown P-state %u", pstate);
    if (pstate == pstate_)
        return 0;

    // Close the energy integral at the outgoing operating point;
    // the counters accumulated so far switched at the old voltage.
    accrueEnergy();

    pstate_ = pstate;
    recomputeDilation();

    // Pipeline drain + PLL relock. Charged like a reconfiguration
    // stall: the clock (and thus billing and leakage) advances, and
    // the sampler's measured IPC is invalidated — the IPC level is
    // a property of the operating point.
    Cycle stall = params_.energy.dvfsStallCycles;
    dvfsStall_ += stall;
    advanceFloors(clock_ + stall);
    if (sampler_)
        sampler_->onReconfigure();
    return stall;
}

std::uint64_t
VirtualCore::sliceCycles() const
{
    accrueHoldings();
    return sliceCycles_;
}

std::uint64_t
VirtualCore::bankCycles() const
{
    accrueHoldings();
    return bankCycles_;
}

const SliceCounters &
VirtualCore::counters(std::uint32_t member) const
{
    if (member >= slices_.size())
        panic("counters for member %u of %zu", member, slices_.size());
    return slices_[member]->ctrs;
}

VCoreMeta
VirtualCore::meta() const
{
    VCoreMeta m;
    m.clock = clock_;
    m.totalCommitted = totalCommitted_;
    m.idleCycles = idleCycles_;
    m.reconfigStallCycles = reconfigStall_;
    m.requestsDone = requestsDone_;
    m.requestLatencySum = requestLatencySum_;
    m.appBacklog = source_ ? source_->backlog() : 0;
    m.numSlices = static_cast<std::uint32_t>(slices_.size());
    m.numBanks = l2_.numBanks();
    m.estimatedInsts = estimatedInsts_;
    m.ffCycles = ffCycles_;
    m.pstate = pstate_;
    m.dvfsStallCycles = dvfsStall_;
    m.energyJoules = energyJoules();
    return m;
}

SliceCounters
VirtualCore::aggregateCounters() const
{
    SliceCounters sum;
    for (const auto &sc : slices_) {
        sum.committedInsts += sc->ctrs.committedInsts;
        sum.committedRequests += sc->ctrs.committedRequests;
        sum.requestLatencySum += sc->ctrs.requestLatencySum;
        sum.l1dAccesses += sc->ctrs.l1dAccesses;
        sum.l1dMisses += sc->ctrs.l1dMisses;
        sum.l1iAccesses += sc->ctrs.l1iAccesses;
        sum.l1iMisses += sc->ctrs.l1iMisses;
        sum.l2Accesses += sc->ctrs.l2Accesses;
        sum.l2Misses += sc->ctrs.l2Misses;
        sum.branches += sc->ctrs.branches;
        sum.branchMispredicts += sc->ctrs.branchMispredicts;
        sum.operandNetMsgs += sc->ctrs.operandNetMsgs;
    }
    return sum;
}

void
VirtualCore::rebuildDistances()
{
    std::size_t n = slices_.size();
    distance_.assign(n * n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            distance_[i * n + j] = grid_.sliceDistance(
                slices_[i]->id, slices_[j]->id);
        }
    }
}

Cycle
VirtualCore::operandLatency(std::uint32_t from, std::uint32_t to) const
{
    if (from == to)
        return 0;
    std::uint32_t hops = distance_[from * slices_.size() + to];
    return params_.net.operandInjectLat
        + static_cast<Cycle>(hops) * params_.net.operandHopLat;
}

std::uint32_t
VirtualCore::memoryOwner(Addr addr) const
{
    // LS-bank sorting: block addresses are hash-partitioned across
    // the member Slices' L1Ds.
    Addr block = addr / params_.cache.blockSize;
    std::uint64_t h = block * 0xff51afd7ed558ccdull;
    return static_cast<std::uint32_t>((h >> 33) % slices_.size());
}

Cycle
VirtualCore::memAccess(std::uint32_t member, Addr addr, bool write,
                       Cycle when)
{
    std::uint32_t owner = memoryOwner(addr);
    SliceCtx &oc = *slices_[owner];
    Cycle net = 0;
    if (owner != member) {
        // Request + response over the operand network.
        net = 2 * operandLatency(member, owner);
        slices_[member]->ctrs.operandNetMsgs += 2;
    }

    Addr block = addr / params_.cache.blockSize;

    // Store-to-load forwarding from the owner's store buffer.
    if (!write) {
        for (std::size_t i = 0; i < oc.sbBlocks.size(); ++i) {
            if (oc.sbBlocks[i] == block && oc.sbRing[i] > when) {
                ++oc.ctrs.l1dAccesses;
                return net + freqDiv_;
            }
        }
    }

    ++oc.ctrs.l1dAccesses;
    CacheAccess l1 = oc.l1d.access(addr, write);
    if (l1.hit)
        return net + dL1HitLat_;

    ++oc.ctrs.l1dMisses;
    ++oc.ctrs.l2Accesses;
    L2Access l2 = l2_.access(oc.id, addr, write);
    if (!l2.hit)
        ++oc.ctrs.l2Misses;
    // The L1 lookup runs at the core clock; the L2/DRAM portion is
    // in the reference domain and does not dilate — the root of the
    // memory-bound IPC-per-Hz advantage DVFS exploits.
    return net + dL1HitLat_ + l2.latency;
}

std::uint32_t
VirtualCore::steer(const MicroOp &op,
                   const HistEnt *producers[2]) const
{
    auto n = static_cast<std::uint32_t>(slices_.size());
    if (n == 1)
        return 0;

    // Memory ops execute on the Slice owning the address partition
    // (the LS-bank sorting network routes them there anyway).
    if (op.isMem())
        return memoryOwner(op.addr);

    // Follow the first producer to keep dataflow chains local.
    std::uint32_t preferred = ~std::uint32_t(0);
    for (int s = 0; s < 2; ++s) {
        if (producers[s] && producers[s]->member < n) {
            preferred = producers[s]->member;
            break;
        }
    }

    // Least-loaded member (by ALU availability) as fallback and as
    // the overload escape hatch.
    std::uint32_t lightest = steerCursor_ % n;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (slices_[i]->aluFree < slices_[lightest]->aluFree)
            lightest = i;
    }
    ++steerCursor_;

    if (preferred == ~std::uint32_t(0))
        return lightest;
    // Stay with the chain unless its Slice is clearly backed up.
    if (slices_[preferred]->aluFree
        > slices_[lightest]->aluFree + 3) {
        return lightest;
    }
    return preferred;
}

Cycle
VirtualCore::processInst(const MicroOp &op)
{
    const SliceParams &sp = params_.slice;
#if CASH_CHECK_INVARIANTS
    const Cycle clock_before = clock_;
#endif

    // ------ Source lookup first (steering needs the producers).
    const HistEnt *producers[2] = {nullptr, nullptr};
    const std::uint16_t dists[2] = {op.srcDist1, op.srcDist2};
    for (int s = 0; s < 2; ++s) {
        std::uint16_t dist = dists[s];
        if (dist == 0 || dist > hist_.size() || dist > seq_)
            continue;
        producers[s] = &hist_[(seq_ - dist) % hist_.size()];
    }

    std::uint32_t member = steer(op, producers);
    SliceCtx &sc = *slices_[member];

    // ------ Fetch: synchronized global front-end, fetchWidth slots
    // per member Slice per cycle.
    std::uint32_t fetch_bw = sp.fetchWidth
        * static_cast<std::uint32_t>(slices_.size());
    Cycle f = std::max(nextFetch_, fetchRedirect_);
    if (f > nextFetch_) {
        nextFetch_ = f;
        fetchUsed_ = 0;
    }

    // L1I probe once per fetched block (on the executing Slice).
    Addr fetch_block = op.pc / params_.cache.blockSize;
    if (fetch_block != sc.lastFetchBlock) {
        sc.lastFetchBlock = fetch_block;
        ++sc.ctrs.l1iAccesses;
        CacheAccess ia = sc.l1i.access(op.pc, false);
        if (!ia.hit) {
            ++sc.ctrs.l1iMisses;
            ++sc.ctrs.l2Accesses;
            L2Access l2 = l2_.access(sc.id, op.pc, false);
            if (!l2.hit)
                ++sc.ctrs.l2Misses;
            // The synchronized front-end resumes after the fill.
            nextFetch_ = f + l2.latency;
            fetchUsed_ = 0;
            f = nextFetch_;
        }
    }
    if (++fetchUsed_ >= fetch_bw) {
        nextFetch_ += freqDiv_;
        fetchUsed_ = 0;
    }

    // ------ Dispatch: front-end depth + ROB/IQ (+LSQ) occupancy.
    Cycle d = f + dFrontendDepth_;
    d = std::max(d, sc.robRing[sc.robSeq % sc.robRing.size()]);
    d = std::max(d, sc.iqRing[sc.iqSeq % sc.iqRing.size()]);
    if (op.isMem())
        d = std::max(d, sc.lsqRing[sc.lsqSeq % sc.lsqRing.size()]);

    // ------ Source readiness via the dependence history.
    Cycle ready = d;
    std::uint8_t producer_regs[2] = {MicroOp::noDest, MicroOp::noDest};
    for (int s = 0; s < 2; ++s) {
        const HistEnt *prod = producers[s];
        if (!prod)
            continue;
        Cycle avail = prod->complete;
        if (prod->member != member
            && prod->member < slices_.size()) {
            avail += operandLatency(prod->member, member);
            ++sc.ctrs.operandNetMsgs;
        }
        ready = std::max(ready, avail);
        producer_regs[s] = prod->destReg;
    }

    // ------ Issue: window exit + functional unit + memory ordering.
    // Core-side steps span freqDiv_ reference cycles each (the core
    // clock is the reference clock divided by the P-state divider).
    Cycle issue = std::max(d + freqDiv_, ready);
    Cycle complete = issue;
    bool mispredicted = false;

    switch (op.op) {
      case OpClass::IntAlu:
      case OpClass::FpAlu:
      case OpClass::Branch:
        issue = std::max(issue, sc.aluFree);
        sc.aluFree = issue + freqDiv_;
        complete = issue + (op.op == OpClass::FpAlu
                            ? dFpAluLat_ : dIntAluLat_);
        break;
      case OpClass::Load: {
        issue = std::max(issue, sc.lsuFree);
        issue = std::max(
            issue, sc.loadRing[sc.loadSeq % sc.loadRing.size()]);
        sc.lsuFree = issue + freqDiv_;
        Cycle lat = memAccess(member, op.addr, false, issue);
        complete = issue + lat;
        sc.loadRing[sc.loadSeq % sc.loadRing.size()] = complete;
        ++sc.loadSeq;
        break;
      }
      case OpClass::Store:
        issue = std::max(issue, sc.lsuFree);
        issue = std::max(issue,
                         sc.sbRing[sc.sbSeq % sc.sbRing.size()]);
        sc.lsuFree = issue + freqDiv_;
        complete = issue + freqDiv_; // enters the store buffer
        break;
      case OpClass::Nop:
        complete = issue;
        break;
    }

    // Branch resolution: shared front-end, synced across Slices.
    if (op.op == OpClass::Branch) {
        ++sc.ctrs.branches;
        BranchOutcome bo = bpred_.predictAndTrain(op.pc, op.taken);
        if (!bo.directionCorrect) {
            ++sc.ctrs.branchMispredicts;
            mispredicted = true;
            fetchRedirect_ = std::max(
                fetchRedirect_, complete + dMispredictRestart_);
        } else if (op.taken && !bo.btbHit) {
            // Correct direction but unknown target: decode bubble.
            fetchRedirect_ =
                std::max(fetchRedirect_, f + 2 * freqDiv_);
        }
    }

    // ------ Commit: program order, global commit bandwidth.
    Cycle commit = std::max(complete + freqDiv_, lastCommit_);
    std::uint32_t commit_bw = sp.commitWidth
        * static_cast<std::uint32_t>(slices_.size());
    if (commit > commitSlotCycle_) {
        commitSlotCycle_ = commit;
        commitSlotUsed_ = 0;
    } else {
        commit = commitSlotCycle_;
    }
    if (++commitSlotUsed_ >= commit_bw) {
        commitSlotCycle_ += freqDiv_;
        commitSlotUsed_ = 0;
    }
    lastCommit_ = commit;
    clock_ = commit;

    // Structural-floor ordering: an instruction moves strictly
    // forward through fetch -> dispatch -> issue -> completion ->
    // commit, and the vcore clock never runs backward.
    CASH_INVARIANT(d >= f, "dispatch at %llu before fetch at %llu",
                   static_cast<unsigned long long>(d),
                   static_cast<unsigned long long>(f));
    CASH_INVARIANT(issue > d,
                   "issue at %llu not after dispatch at %llu",
                   static_cast<unsigned long long>(issue),
                   static_cast<unsigned long long>(d));
    CASH_INVARIANT(complete >= issue,
                   "completion at %llu before issue at %llu",
                   static_cast<unsigned long long>(complete),
                   static_cast<unsigned long long>(issue));
    CASH_INVARIANT(commit > complete,
                   "commit at %llu not after completion at %llu",
                   static_cast<unsigned long long>(commit),
                   static_cast<unsigned long long>(complete));
    CASH_INVARIANT(clock_ >= clock_before,
                   "vcore clock ran backward (%llu -> %llu)",
                   static_cast<unsigned long long>(clock_before),
                   static_cast<unsigned long long>(clock_));

    // Store drains after commit: run the cache access now, charge
    // occupancy until the drain completes.
    if (op.op == OpClass::Store) {
        Cycle lat = memAccess(member, op.addr, true, issue);
        Cycle drain = commit + lat;
        sc.sbRing[sc.sbSeq % sc.sbRing.size()] = drain;
        sc.sbBlocks[sc.sbSeq % sc.sbBlocks.size()] =
            op.addr / params_.cache.blockSize;
        ++sc.sbSeq;
        sc.lsqRing[sc.lsqSeq % sc.lsqRing.size()] = drain;
        ++sc.lsqSeq;
    } else if (op.op == OpClass::Load) {
        sc.lsqRing[sc.lsqSeq % sc.lsqRing.size()] = complete;
        ++sc.lsqSeq;
    }

    // Window bookkeeping (slot frees for inst seq + size).
    sc.robRing[sc.robSeq % sc.robRing.size()] = commit;
    ++sc.robSeq;
    sc.iqRing[sc.iqSeq % sc.iqRing.size()] = issue;
    ++sc.iqSeq;

    // Rename bookkeeping: reads of producer registers, then the
    // destination write (program order).
    for (std::uint8_t reg : producer_regs) {
        if (reg != MicroOp::noDest)
            rename_.read(reg, member);
    }
    if (op.destReg != MicroOp::noDest)
        rename_.write(op.destReg, member);

    // History for later consumers. A mispredicted branch's "value"
    // (the redirect) is already modeled via fetchRedirect_.
    hist_[seq_ % hist_.size()] =
        HistEnt{complete, member, op.destReg};
    ++seq_;

    // Counters and request accounting.
    ++sc.ctrs.committedInsts;
    ++totalCommitted_;
    if (op.endOfRequest && op.request != invalidRequest) {
        ++requestsDone_;
        ++sc.ctrs.committedRequests;
        Cycle lat = commit > op.requestArrival
            ? commit - op.requestArrival : 0;
        requestLatencySum_ += lat;
        sc.ctrs.requestLatencySum += lat;
    }
    (void)mispredicted;

    if (source_)
        source_->onCommit(op, commit);
    return commit;
}

void
VirtualCore::advanceFloors(Cycle when)
{
    for (auto &sc : slices_) {
        sc->aluFree = std::max(sc->aluFree, when);
        sc->lsuFree = std::max(sc->lsuFree, when);
    }
    if (nextFetch_ < when) {
        nextFetch_ = when;
        fetchUsed_ = 0;
    }
    fetchRedirect_ = std::max(fetchRedirect_, when);
    lastCommit_ = std::max(lastCommit_, when);
    commitSlotCycle_ = std::max(commitSlotCycle_, when);
    commitSlotUsed_ = 0;
    clock_ = std::max(clock_, when);
    CASH_INVARIANT(clock_ >= when && lastCommit_ >= when
                       && nextFetch_ >= when,
                   "structural floors below the advance target "
                   "%llu", static_cast<unsigned long long>(when));
}

RunResult
VirtualCore::runUntil(Cycle target)
{
    if (!source_)
        fatal("runUntil with no instruction source bound");
    if (!sampler_)
        return runDetailed(target);

    // Sampled mode: advance one sampling quantum at a time, on a
    // fixed grid so detailed commit overshoot cannot drift the
    // schedule. Warmup/measure quanta run through the detailed
    // loop (bracketed by counter snapshots so the controller sees
    // the quantum's deltas); steady quanta are extrapolated.
    RunResult result;
    while (clock_ < target) {
        Cycle seg_end = std::min(target, sampler_->segmentEnd(clock_));
        if (sampler_->fastForwarding()) {
            if (fastForward(seg_end, result)) {
                result.finished = true;
                break;
            }
        } else {
            Cycle c0 = clock_;
            InstCount i0 = totalCommitted_;
            Cycle idle0 = idleCycles_;
            SliceCounters before = aggregateCounters();
            RunResult r = runDetailed(seg_end);
            result.committed += r.committed;
            result.idleCycles += r.idleCycles;
            SliceCounters after = aggregateCounters();
            SliceCounters delta;
            delta.committedInsts =
                after.committedInsts - before.committedInsts;
            delta.committedRequests =
                after.committedRequests - before.committedRequests;
            delta.requestLatencySum =
                after.requestLatencySum - before.requestLatencySum;
            delta.l1dAccesses = after.l1dAccesses - before.l1dAccesses;
            delta.l1dMisses = after.l1dMisses - before.l1dMisses;
            delta.l1iAccesses = after.l1iAccesses - before.l1iAccesses;
            delta.l1iMisses = after.l1iMisses - before.l1iMisses;
            delta.l2Accesses = after.l2Accesses - before.l2Accesses;
            delta.l2Misses = after.l2Misses - before.l2Misses;
            delta.branches = after.branches - before.branches;
            delta.branchMispredicts =
                after.branchMispredicts - before.branchMispredicts;
            delta.operandNetMsgs =
                after.operandNetMsgs - before.operandNetMsgs;
            sampler_->onDetailedQuantum(c0, totalCommitted_ - i0,
                                        clock_ - c0,
                                        idleCycles_ - idle0, delta);
            if (r.finished) {
                result.finished = true;
                break;
            }
        }
    }
    return result;
}

bool
VirtualCore::fastForward(Cycle seg_end, RunResult &result)
{
    const FfModel &model = sampler_->model();
    Cycle start = clock_;
    Cycle dur = seg_end - clock_;
    auto want = static_cast<InstCount>(
        std::llround(model.ipc * static_cast<double>(dur)));

    SkipResult sk;
    if (want > 0)
        sk = source_->skip(want, clock_, seg_end);

    // Busy/idle split from the model: the quantum's busy portion
    // is what the skipped work would have taken at the measured
    // busy IPC; any remainder is pacing idle (or a boundary stop).
    Cycle busy = dur;
    if (sk.skipped < want) {
        busy = std::min(dur, static_cast<Cycle>(std::llround(
            static_cast<double>(sk.skipped) / model.ipc)));
    }
    Cycle advance_to;
    if (sk.phaseBoundary || sk.finished) {
        // Stop where the stream stopped; the rest of the quantum
        // is handled by the (re-measuring or finished) caller.
        advance_to = clock_ + busy;
    } else {
        advance_to = seg_end;
        Cycle idle = dur - busy;
        idleCycles_ += idle;
        result.idleCycles += idle;
    }

    totalCommitted_ += sk.skipped;
    estimatedInsts_ += sk.skipped;
    requestsDone_ += sk.requests;
    requestLatencySum_ += sk.requestLatencySum;
    result.committed += sk.skipped;
    creditCounters(sk.skipped, sk.requests, sk.requestLatencySum);

    Cycle advanced = advance_to > clock_ ? advance_to - clock_ : 0;
    ffCycles_ += advanced;
    if (advance_to > clock_)
        advanceFloors(advance_to);
    sampler_->onFastForward(start, sk.skipped, advanced,
                            sk.phaseBoundary);

    CASH_INVARIANT(estimatedInsts_ <= totalCommitted_,
                   "more estimated than committed instructions");
    CASH_INVARIANT(ffCycles_ <= clock_,
                   "fast-forwarded %llu of %llu total cycles",
                   static_cast<unsigned long long>(ffCycles_),
                   static_cast<unsigned long long>(clock_));
    return sk.finished;
}

void
VirtualCore::creditCounters(InstCount insts, std::uint64_t requests,
                            std::uint64_t request_latency)
{
    if (insts == 0)
        return;
    const FfModel &model = sampler_->model();
    auto n = static_cast<std::uint64_t>(slices_.size());
    // Integer even-split: member sums stay exactly equal to the
    // vcore-level totals, which the vcore auditor reconciles.
    auto spread = [&](std::uint64_t total,
                      std::uint64_t SliceCounters::*field) {
        std::uint64_t per = total / n;
        std::uint64_t rem = total % n;
        for (std::uint64_t i = 0; i < n; ++i)
            slices_[i]->ctrs.*field += per + (i < rem ? 1 : 0);
    };
    auto rate = [&](double r) {
        return static_cast<std::uint64_t>(
            std::llround(r * static_cast<double>(insts)));
    };
    spread(insts, &SliceCounters::committedInsts);
    spread(requests, &SliceCounters::committedRequests);
    spread(request_latency, &SliceCounters::requestLatencySum);
    spread(rate(model.l1dAccessRate), &SliceCounters::l1dAccesses);
    spread(rate(model.l1dMissRate), &SliceCounters::l1dMisses);
    spread(rate(model.l1iAccessRate), &SliceCounters::l1iAccesses);
    spread(rate(model.l1iMissRate), &SliceCounters::l1iMisses);
    spread(rate(model.l2AccessRate), &SliceCounters::l2Accesses);
    spread(rate(model.l2MissRate), &SliceCounters::l2Misses);
    spread(rate(model.branchRate), &SliceCounters::branches);
    spread(rate(model.mispredictRate),
           &SliceCounters::branchMispredicts);
    spread(rate(model.operandNetRate),
           &SliceCounters::operandNetMsgs);
}

RunResult
VirtualCore::runDetailed(Cycle target)
{
    RunResult result;
    while (clock_ < target) {
        FetchResult fr = source_->next(clock_);
        switch (fr.kind) {
          case FetchResult::Kind::Finished:
            result.finished = true;
            return result;
          case FetchResult::Kind::IdleUntil: {
            Cycle until = std::max(fr.idleUntil, clock_);
            Cycle stop = std::min(until, target);
            if (stop > clock_) {
                result.idleCycles += stop - clock_;
                idleCycles_ += stop - clock_;
                advanceFloors(stop);
            }
            if (until > target)
                return result; // still idle at the horizon
            break;
          }
          case FetchResult::Kind::Inst:
            processInst(fr.op);
            ++result.committed;
            break;
        }
    }
    return result;
}

ReconfigCost
VirtualCore::reconfigure(std::vector<SliceId> new_slices,
                         std::vector<BankId> new_banks,
                         Cycle command_latency)
{
    if (new_slices.empty())
        fatal("cannot reconfigure a virtual core to zero Slices");
    if (new_slices.size() > 64)
        fatal("virtual cores support at most 64 Slices");

    // Close the holdings and energy integrals at the outgoing
    // membership; the stall cycles below accrue at the new one (the
    // configuration the customer is billed for during the stall).
    // The energy meter must close first because counters of
    // non-surviving Slices are dropped with their contexts.
    accrueHoldings();
    accrueEnergy();

    ReconfigCost cost;
    cost.commandLatency = command_latency;

    auto old_count = static_cast<std::uint32_t>(slices_.size());
    auto new_count = static_cast<std::uint32_t>(new_slices.size());
    bool slice_change = false;
    {
        std::vector<SliceId> cur = sliceIds();
        slice_change = cur != new_slices;
    }

    if (slice_change) {
        // Any membership change flushes the pipelines.
        cost.pipelineFlush = params_.net.pipelineFlushLat;

        // Contraction: push primary-written live registers to the
        // survivors over the operand network.
        if (new_count < old_count) {
            cost.regsFlushed = rename_.shrink(new_count);
            std::uint32_t per_cycle = params_.net.regFlushPerCycle;
            cost.regFlushCycles =
                (cost.regsFlushed + per_cycle - 1) / per_cycle;
        } else if (new_count > old_count) {
            rename_.expand(new_count);
        }

        // The LS-bank address partition is a function of the Slice
        // count, so L1Ds must be flushed on any membership change.
        std::uint64_t l1_dirty = 0;
        for (auto &sc : slices_)
            l1_dirty += sc->l1d.dirtyLines();
        cost.l1FlushCycles = l1_dirty * params_.cache.blockSize
            / params_.cache.flushNetBytes;

        // Rebuild member contexts: survivors keep nothing in their
        // L1s (flushed); counters of surviving SliceIds persist.
        std::vector<std::unique_ptr<SliceCtx>> next;
        next.reserve(new_count);
        for (SliceId sid : new_slices) {
            std::unique_ptr<SliceCtx> ctx;
            for (auto &sc : slices_) {
                if (sc && sc->id == sid) {
                    ctx = std::move(sc);
                    break;
                }
            }
            if (!ctx) {
                ctx = std::make_unique<SliceCtx>(sid, params_);
            } else {
                // The LS-bank address partition is a function of
                // the Slice count, so survivor L1Ds flush; their
                // L1Is and the (fetch-synchronized) branch
                // predictor state survive the pipeline flush.
                ctx->l1d.invalidateAll();
                std::fill(ctx->sbBlocks.begin(), ctx->sbBlocks.end(),
                          invalidAddr);
            }
            next.push_back(std::move(ctx));
        }
        slices_ = std::move(next);
        rebuildDistances();
        steerCursor_ = 0;
    }

    // Re-anchor the energy meter's counter snapshot: dropped member
    // contexts took their counters with them, so the aggregate may
    // have moved backward (their energy is already folded in above).
    lastCtrs_ = aggregateCounters();

    // L2 membership change: hash-table remap + dirty flush.
    L2ReconfigCost l2cost = l2_.reconfigure(new_banks);
    cost.l2DirtyFlushed = l2cost.dirtyLinesFlushed;
    cost.l2FlushCycles = l2cost.flushCycles;

#if CASH_CHECK_INVARIANTS
    CASH_INVARIANT(rename_.numSlices() == slices_.size(),
                   "rename tracks %u members, core has %zu",
                   rename_.numSlices(), slices_.size());
    CASH_INVARIANT(l2_.numBanks() == new_banks.size(),
                   "L2 holds %u banks after a reconfigure to %zu",
                   l2_.numBanks(), new_banks.size());
    if (new_count < old_count) {
        // The paper's bound: at most all global registers move, at
        // regFlushPerCycle per cycle.
        std::uint32_t per_cycle = params_.net.regFlushPerCycle;
        CASH_INVARIANT(cost.regsFlushed <= params_.slice.physRegs,
                       "flushed %u registers from a %u-register "
                       "file", cost.regsFlushed,
                       params_.slice.physRegs);
        CASH_INVARIANT(cost.regFlushCycles
                           <= (params_.slice.physRegs + per_cycle
                               - 1) / per_cycle,
                       "register flush exceeded the paper bound");
    }
    const Cycle clock_pre = clock_;
#endif

    Cycle stall = cost.totalStall();
    reconfigStall_ += stall;
    advanceFloors(clock_ + stall);

    // A resize invalidates everything the sampler measured: the
    // IPC level is a property of the configuration.
    if (sampler_)
        sampler_->onReconfigure();

    CASH_INVARIANT(clock_ == clock_pre + stall,
                   "reconfiguration stall not charged to the clock");
    return cost;
}

} // namespace cash
