/**
 * @file
 * Per-Slice performance counters and their timestamped samples.
 *
 * The CASH architecture has no fixed cores, so counters cannot be
 * read "at the core level"; instead every Slice exposes counters on
 * the Runtime Interface Network and each sample is timestamped so
 * the runtime can synthesize a virtual core's performance from
 * per-Slice readings (paper Sec III-B2).
 */

#ifndef CASH_SIM_PERF_COUNTER_HH
#define CASH_SIM_PERF_COUNTER_HH

#include <cstdint>

#include "common/types.hh"
#include "fabric/resource.hh"

namespace cash
{

/**
 * Raw, monotonically increasing counters owned by one Slice.
 */
struct SliceCounters
{
    InstCount committedInsts = 0;
    std::uint64_t committedRequests = 0;
    std::uint64_t requestLatencySum = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t operandNetMsgs = 0;
};

/**
 * One timestamped sample as delivered over the interface network.
 */
struct CounterSample
{
    SliceId slice = invalidSlice;
    /** Cycle at which the counters were read at the Slice. */
    Cycle timestamp = 0;
    /** Cycle at which the sample arrived at the requester (adds the
     *  network round-trip; readings are slightly stale). */
    Cycle arrival = 0;
    SliceCounters counters;
};

} // namespace cash

#endif // CASH_SIM_PERF_COUNTER_HH
