#include "sim/ssim.hh"

#include <algorithm>

#include "common/log.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace cash
{

SSim::SSim(const FabricParams &fabric, const SimParams &params)
    : grid_(fabric), alloc_(grid_), params_(params)
{
    // Reserve a single-Slice, bank-less virtual core for the CASH
    // runtime (Sec III-B1: the runtime runs on single Slices and
    // bypasses the reconfigurable cache).
    auto home = alloc_.allocate(1, 0);
    if (!home)
        fatal("fabric too small to host the runtime Slice");
    runtimeHome_ = home->id;
    runtimeSlice_ = home->slices.front();
}

std::optional<VCoreId>
SSim::createVCore(std::uint32_t num_slices, std::uint32_t num_banks)
{
    auto alloc = alloc_.allocate(num_slices, num_banks);
    if (!alloc)
        return std::nullopt;
    auto vc = std::make_unique<VirtualCore>(
        grid_, params_, alloc->id, alloc->slices, alloc->banks);
    if (simMode_ == SimMode::Sampled)
        vc->enableSampling(samplerParams_);
    VCoreId id = alloc->id;
    vcores_[id] = std::move(vc);
    return id;
}

void
SSim::setSampling(SimMode mode, const SamplerParams &params)
{
    simMode_ = mode;
    samplerParams_ = params;
    if (mode == SimMode::Sampled)
        CASH_METRIC_INC("sim.sampled_mode");
}

void
SSim::destroyVCore(VCoreId id)
{
    auto it = vcores_.find(id);
    if (it == vcores_.end())
        panic("destroyVCore of unknown vcore %u", id);
    vcores_.erase(it);
    alloc_.release(id);
}

VirtualCore &
SSim::vcore(VCoreId id)
{
    auto it = vcores_.find(id);
    if (it == vcores_.end())
        panic("vcore %u is not live", id);
    return *it->second;
}

const VirtualCore &
SSim::vcore(VCoreId id) const
{
    auto it = vcores_.find(id);
    if (it == vcores_.end())
        panic("vcore %u is not live", id);
    return *it->second;
}

Cycle
SSim::rinLatency(SliceId target) const
{
    TileCoord a = grid_.sliceCoord(runtimeSlice_);
    TileCoord b = grid_.sliceCoord(target);
    return 1 + static_cast<Cycle>(manhattan(a, b))
        * params_.net.rinHopLat;
}

VCoreSample
SSim::readCounters(VCoreId id)
{
    VirtualCore &vc = vcore(id);
    VCoreSample sample;
    sample.meta = vc.meta();
    Cycle now = vc.now();
    Cycle worst_arrival = now;
    for (std::uint32_t m = 0; m < vc.numSlices(); ++m) {
        CounterSample cs;
        cs.slice = vc.sliceIds()[m];
        cs.timestamp = now;
        cs.arrival = now + 2 * rinLatency(cs.slice);
        cs.counters = vc.counters(m);
        worst_arrival = std::max(worst_arrival, cs.arrival);
        sample.slices.push_back(cs);
    }
    // Batched gather: one multicast query fans out along the RIN
    // tree and the members' samples coalesce into one reply frame,
    // so a whole-quantum read costs 2 messages regardless of the
    // member count. Per-sample timestamps and the farthest-member
    // arrival are unchanged — staleness is a wire property, the
    // batching only collapses the message count.
    rinMessages_ += 2;
    sample.arrival = worst_arrival;
    return sample;
}

void
SSim::setCommandGate(CommandGate gate)
{
    gate_ = std::move(gate);
}

CompactOutcome
SSim::compact()
{
    CompactOutcome out;
    std::vector<VCoreId> moved = alloc_.compact();
    // The runtime's home vcore may have been rescheduled too; its
    // privileged Slice follows the allocation.
    runtimeSlice_ = alloc_.allocation(runtimeHome_).slices.front();
    for (VCoreId id : moved) {
        auto it = vcores_.find(id);
        if (it == vcores_.end())
            continue; // the bare runtime-home allocation
        const VCoreAllocation &a = alloc_.allocation(id);
        ++rinMessages_; // the migration command
        const Cycle t0 = it->second->now();
        ReconfigCost rc = it->second->reconfigure(
            a.slices, a.banks, rinLatency(a.slices.front()));
        CASH_TRACE_SPAN(trace::Category::Fabric, "compact_move", t0,
                        rc.totalStall(),
                        {{"vcore", id},
                         {"slices", a.slices.size()},
                         {"banks", a.banks.size()},
                         {"l2_flush_cycles", rc.l2FlushCycles},
                         {"stall", rc.totalStall()}});
        CASH_METRIC_SAMPLE("fabric.compact_move_stall",
                           static_cast<double>(rc.totalStall()));
        out.totalStall += rc.totalStall();
        out.moved.push_back(id);
        out.stalls.push_back(rc.totalStall());
    }
    CASH_METRIC_INC("fabric.compactions");
    CASH_METRIC_ADD("fabric.compact_moves", out.moved.size());
    return out;
}

std::optional<Cycle>
SSim::setFreq(VCoreId id, std::uint32_t pstate)
{
    VirtualCore &vc = vcore(id);
    CASH_METRIC_INC("fabric.freq_commands");
    std::uint32_t target = pstate;
    if (gate_) {
        auto granted = gate_(
            id, CommandRequest{vc.numSlices(), vc.numBanks(),
                               static_cast<std::int32_t>(pstate)});
        if (!granted || granted->pstate < 0) {
            CASH_TRACE_INSTANT(trace::Category::Fabric, "deny_freq",
                               vc.now(),
                               {{"vcore", id},
                                {"req_pstate", pstate}});
            CASH_METRIC_INC("fabric.denied_freq");
            return std::nullopt;
        }
        target = static_cast<std::uint32_t>(granted->pstate);
    }
    ++rinMessages_; // the SET_FREQ command itself
    const std::uint32_t old_p = vc.pstate();
    const Cycle t0 = vc.now();
    Cycle stall = vc.setPState(target);
    CASH_TRACE_SPAN(trace::Category::Fabric, "SET_FREQ", t0, stall,
                    {{"vcore", id},
                     {"from_pstate", old_p},
                     {"to_pstate", target},
                     {"stall", stall}});
    if (stall > 0)
        CASH_METRIC_SAMPLE("fabric.dvfs_stall",
                           static_cast<double>(stall));
    return stall;
}

std::optional<ReconfigCost>
SSim::command(VCoreId id, std::uint32_t num_slices,
              std::uint32_t num_banks)
{
    VirtualCore &vc = vcore(id);
    const std::uint32_t old_slices = vc.numSlices();
    const std::uint32_t old_banks = vc.numBanks();
    CASH_METRIC_INC("fabric.commands");
    if (gate_) {
        auto granted =
            gate_(id, CommandRequest{num_slices, num_banks});
        if (!granted) {
            CASH_TRACE_INSTANT(trace::Category::Fabric, "deny_gate",
                               vc.now(),
                               {{"vcore", id},
                                {"req_slices", num_slices},
                                {"req_banks", num_banks}});
            CASH_METRIC_INC("fabric.denied_gate");
            return std::nullopt;
        }
        num_slices = granted->slices;
        num_banks = granted->banks;
    }
    auto alloc = alloc_.resize(id, num_slices, num_banks);
    if (!alloc) {
        CASH_TRACE_INSTANT(trace::Category::Fabric, "deny_fabric",
                           vc.now(),
                           {{"vcore", id},
                            {"req_slices", num_slices},
                            {"req_banks", num_banks}});
        CASH_METRIC_INC("fabric.denied_fabric");
        return std::nullopt;
    }
    ++rinMessages_; // the EXPAND/SHRINK command itself
    Cycle cmd_lat = rinLatency(alloc->slices.front());
    const Cycle t0 = vc.now();
    ReconfigCost rc =
        vc.reconfigure(alloc->slices, alloc->banks, cmd_lat);
    // A granted command is an EXPAND or a SHRINK in the RIN's
    // vocabulary; a mixed or unchanged resize (arbiter clamps can
    // produce either) is traced as a plain RECONFIG.
    const bool grew =
        num_slices > old_slices || num_banks > old_banks;
    const bool shrank =
        num_slices < old_slices || num_banks < old_banks;
    const char *dir =
        grew == shrank ? "RECONFIG" : grew ? "EXPAND" : "SHRINK";
    CASH_TRACE_SPAN(trace::Category::Fabric, dir, t0,
                    rc.totalStall(),
                    {{"vcore", id},
                     {"from_slices", old_slices},
                     {"from_banks", old_banks},
                     {"to_slices", num_slices},
                     {"to_banks", num_banks},
                     {"cmd_latency", rc.commandLatency},
                     {"pipeline_flush", rc.pipelineFlush},
                     {"reg_flush_cycles", rc.regFlushCycles},
                     {"l2_flush_cycles", rc.l2FlushCycles},
                     {"l1_flush_cycles", rc.l1FlushCycles}});
    if (grew && !shrank)
        CASH_METRIC_INC("fabric.expands");
    else if (shrank && !grew)
        CASH_METRIC_INC("fabric.shrinks");
    CASH_METRIC_SAMPLE("fabric.reconfig_stall",
                       static_cast<double>(rc.totalStall()));
    return rc;
}

} // namespace cash
