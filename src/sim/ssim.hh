/**
 * @file
 * SSim: the top-level CASH architecture simulator.
 *
 * SSim owns the fabric (geometry + allocation), the virtual cores,
 * and the Runtime Interface Network (RIN). The RIN is the paper's
 * novel hardware/software interface (Sec III-B2): a dedicated
 * on-chip network on which a privileged Slice (the one running the
 * CASH runtime) can
 *
 *  - query any Slice's performance counters with a request/reply
 *    protocol; every sample is timestamped at the remote Slice and
 *    arrives after a distance-dependent round trip, so readings are
 *    slightly stale — exactly the interface the runtime must cope
 *    with on a fabric that has no fixed cores;
 *  - send EXPAND / SHRINK commands that retarget a virtual core's
 *    Slice and bank membership.
 *
 * The runtime itself executes on a single-Slice virtual core that
 * bypasses the reconfigurable L2 (Sec III-B1); SSim reserves that
 * Slice at construction.
 */

#ifndef CASH_SIM_SSIM_HH
#define CASH_SIM_SSIM_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fabric/allocator.hh"
#include "fabric/grid.hh"
#include "sim/params.hh"
#include "sim/perf_counter.hh"
#include "sim/reconfig.hh"
#include "sim/vcore.hh"

namespace cash
{

/**
 * Reply to a RIN counter query: all member-Slice samples plus the
 * vcore-level aggregate (request QoS counters live there).
 */
struct VCoreSample
{
    std::vector<CounterSample> slices;
    VCoreMeta meta;
    /** Cycle the full reply reached the runtime Slice. */
    Cycle arrival = 0;
};

/**
 * Requested Slice/bank counts of an EXPAND/SHRINK command, as seen
 * by a command gate. A SET_FREQ rides the same channel: it carries
 * the vcore's current counts plus the requested P-state, so one
 * gate arbitrates both knobs.
 */
struct CommandRequest
{
    std::uint32_t slices = 0;
    std::uint32_t banks = 0;
    /** Requested DVFS P-state, or -1 for "no frequency change"
     *  (EXPAND/SHRINK commands leave this at -1; a gate that echoes
     *  the request back unchanged therefore grants the P-state). */
    std::int32_t pstate = -1;
};

/**
 * Outcome of a chip-level compaction.
 */
struct CompactOutcome
{
    /** VCores whose placement changed. */
    std::vector<VCoreId> moved;
    /** Per-move reconfiguration stall, parallel to `moved` (a
     *  provider charging migration time needs the split). */
    std::vector<Cycle> stalls;
    /** Total reconfiguration stall charged across moved vcores. */
    Cycle totalStall = 0;
};

/**
 * The CASH chip simulator.
 */
class SSim
{
  public:
    /**
     * A privileged interposer on the RIN command channel: called
     * before every EXPAND/SHRINK is applied, it may pass the
     * request through, clamp it (partial grant), or deny it by
     * returning nullopt. This is how a multi-tenant provider
     * arbitrates the fabric without owning every runtime's loop —
     * the gate runs on the privileged runtime Slice (Sec III-B2).
     */
    using CommandGate = std::function<std::optional<CommandRequest>(
        VCoreId, const CommandRequest &)>;

    explicit SSim(const FabricParams &fabric = FabricParams(),
                  const SimParams &params = SimParams());

    /**
     * Select full or sampled simulation for vcores created AFTER
     * this call (existing vcores keep their mode). Sampled mode
     * (sim/sampler.hh) trades per-instruction detail during steady
     * phases for raw speed; billing integrals and lifecycle
     * accounting stay exact, instruction counts become partially
     * estimated (VCoreMeta::estimatedInsts). Off by default.
     */
    void setSampling(SimMode mode,
                     const SamplerParams &params = SamplerParams());

    SimMode simMode() const { return simMode_; }
    const SamplerParams &samplerParams() const
    {
        return samplerParams_;
    }

    /**
     * Allocate and construct a virtual core.
     *
     * @param num_slices member Slices (>= 1)
     * @param num_banks 64 KB L2 banks
     * @return the new vcore id, or nullopt if the fabric is full
     */
    std::optional<VCoreId>
    createVCore(std::uint32_t num_slices, std::uint32_t num_banks);

    /** Tear down a virtual core and release its resources. */
    void destroyVCore(VCoreId id);

    /** Access a live virtual core; panics on unknown ids. */
    VirtualCore &vcore(VCoreId id);
    const VirtualCore &vcore(VCoreId id) const;

    /**
     * RIN: sample a virtual core's counters from the runtime Slice.
     * Message latency (round trip per member, farthest member
     * dominating the reply) is reflected in the sample's arrival.
     */
    VCoreSample readCounters(VCoreId id);

    /**
     * RIN: EXPAND/SHRINK a virtual core to the given resource
     * counts. Placement is delegated to the fabric allocator
     * (which prefers keeping currently-held tiles).
     *
     * @return the reconfiguration cost, or nullopt if the fabric
     *         cannot supply the request (vcore left unchanged)
     */
    std::optional<ReconfigCost>
    command(VCoreId id, std::uint32_t num_slices,
            std::uint32_t num_banks);

    /**
     * RIN: SET_FREQ a virtual core to a DVFS P-state. Routed
     * through the command gate like EXPAND/SHRINK (the request
     * carries the current resource counts plus the P-state; the
     * gate may clamp or deny it). The transition stall is charged
     * to the vcore's clock.
     *
     * @return the stall charged (0 when already at the P-state), or
     *         nullopt if the gate denied the change
     */
    std::optional<Cycle> setFreq(VCoreId id, std::uint32_t pstate);

    /**
     * Install (or clear, with nullptr) the command gate. At most
     * one gate is active; commands issued while it is installed are
     * filtered through it.
     */
    void setCommandGate(CommandGate gate);

    /**
     * Fragmentation repair at chip level: reschedule all live
     * vcores (FabricAllocator::compact) and reconfigure every moved
     * vcore to its new placement, charging the stalls to the moved
     * vcores' clocks. Resource counts are preserved, so no QoS
     * contract changes — only placement quality.
     */
    CompactOutcome compact();

    /** The Slice reserved for the CASH runtime. */
    SliceId runtimeSlice() const { return runtimeSlice_; }

    /** Total RIN messages sent (queries, replies, commands). */
    std::uint64_t rinMessages() const { return rinMessages_; }

    const FabricGrid &grid() const { return grid_; }
    const FabricAllocator &allocator() const { return alloc_; }
    const SimParams &params() const { return params_; }

  private:
    /** RIN one-way latency from the runtime Slice to a Slice. */
    Cycle rinLatency(SliceId target) const;

    FabricGrid grid_;
    FabricAllocator alloc_;
    SimParams params_;
    std::map<VCoreId, std::unique_ptr<VirtualCore>> vcores_;
    SliceId runtimeSlice_ = invalidSlice;
    VCoreId runtimeHome_ = invalidVCore;
    std::uint64_t rinMessages_ = 0;
    CommandGate gate_;
    SimMode simMode_ = SimMode::Full;
    SamplerParams samplerParams_{};
};

} // namespace cash

#endif // CASH_SIM_SSIM_HH
