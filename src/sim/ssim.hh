/**
 * @file
 * SSim: the top-level CASH architecture simulator.
 *
 * SSim owns the fabric (geometry + allocation), the virtual cores,
 * and the Runtime Interface Network (RIN). The RIN is the paper's
 * novel hardware/software interface (Sec III-B2): a dedicated
 * on-chip network on which a privileged Slice (the one running the
 * CASH runtime) can
 *
 *  - query any Slice's performance counters with a request/reply
 *    protocol; every sample is timestamped at the remote Slice and
 *    arrives after a distance-dependent round trip, so readings are
 *    slightly stale — exactly the interface the runtime must cope
 *    with on a fabric that has no fixed cores;
 *  - send EXPAND / SHRINK commands that retarget a virtual core's
 *    Slice and bank membership.
 *
 * The runtime itself executes on a single-Slice virtual core that
 * bypasses the reconfigurable L2 (Sec III-B1); SSim reserves that
 * Slice at construction.
 */

#ifndef CASH_SIM_SSIM_HH
#define CASH_SIM_SSIM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fabric/allocator.hh"
#include "fabric/grid.hh"
#include "sim/params.hh"
#include "sim/perf_counter.hh"
#include "sim/reconfig.hh"
#include "sim/vcore.hh"

namespace cash
{

/**
 * Reply to a RIN counter query: all member-Slice samples plus the
 * vcore-level aggregate (request QoS counters live there).
 */
struct VCoreSample
{
    std::vector<CounterSample> slices;
    VCoreMeta meta;
    /** Cycle the full reply reached the runtime Slice. */
    Cycle arrival = 0;
};

/**
 * The CASH chip simulator.
 */
class SSim
{
  public:
    explicit SSim(const FabricParams &fabric = FabricParams(),
                  const SimParams &params = SimParams());

    /**
     * Allocate and construct a virtual core.
     *
     * @param num_slices member Slices (>= 1)
     * @param num_banks 64 KB L2 banks
     * @return the new vcore id, or nullopt if the fabric is full
     */
    std::optional<VCoreId>
    createVCore(std::uint32_t num_slices, std::uint32_t num_banks);

    /** Tear down a virtual core and release its resources. */
    void destroyVCore(VCoreId id);

    /** Access a live virtual core; panics on unknown ids. */
    VirtualCore &vcore(VCoreId id);
    const VirtualCore &vcore(VCoreId id) const;

    /**
     * RIN: sample a virtual core's counters from the runtime Slice.
     * Message latency (round trip per member, farthest member
     * dominating the reply) is reflected in the sample's arrival.
     */
    VCoreSample readCounters(VCoreId id);

    /**
     * RIN: EXPAND/SHRINK a virtual core to the given resource
     * counts. Placement is delegated to the fabric allocator
     * (which prefers keeping currently-held tiles).
     *
     * @return the reconfiguration cost, or nullopt if the fabric
     *         cannot supply the request (vcore left unchanged)
     */
    std::optional<ReconfigCost>
    command(VCoreId id, std::uint32_t num_slices,
            std::uint32_t num_banks);

    /** The Slice reserved for the CASH runtime. */
    SliceId runtimeSlice() const { return runtimeSlice_; }

    /** Total RIN messages sent (queries, replies, commands). */
    std::uint64_t rinMessages() const { return rinMessages_; }

    const FabricGrid &grid() const { return grid_; }
    const FabricAllocator &allocator() const { return alloc_; }
    const SimParams &params() const { return params_; }

  private:
    /** RIN one-way latency from the runtime Slice to a Slice. */
    Cycle rinLatency(SliceId target) const;

    FabricGrid grid_;
    FabricAllocator alloc_;
    SimParams params_;
    std::map<VCoreId, std::unique_ptr<VirtualCore>> vcores_;
    SliceId runtimeSlice_ = invalidSlice;
    VCoreId runtimeHome_ = invalidVCore;
    std::uint64_t rinMessages_ = 0;
};

} // namespace cash

#endif // CASH_SIM_SSIM_HH
