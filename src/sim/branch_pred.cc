#include "sim/branch_pred.hh"

#include "common/log.hh"

namespace cash
{

BranchPredictor::BranchPredictor(std::uint32_t index_bits,
                                 std::uint32_t btb_entries)
    : indexBits_(index_bits),
      indexMask_((1ull << index_bits) - 1),
      bimodal_(1ull << index_bits, 2),  // weakly taken
      gshare_(1ull << index_bits, 2),
      chooser_(1ull << index_bits, 1),  // weakly prefer bimodal
      btbTags_(btb_entries, invalidAddr)
{
    if (index_bits == 0 || index_bits > 24)
        fatal("BranchPredictor index bits %u out of range",
              index_bits);
    if (btb_entries == 0 || (btb_entries & (btb_entries - 1)) != 0)
        fatal("BTB entries must be a power of two");
}

void
BranchPredictor::train(std::uint8_t &ctr, bool up)
{
    if (up && ctr < 3)
        ++ctr;
    else if (!up && ctr > 0)
        --ctr;
}

BranchOutcome
BranchPredictor::predictAndTrain(Addr pc, bool taken)
{
    ++lookups_;
    std::uint64_t pc_idx = (pc >> 2) & indexMask_;
    std::uint64_t gs_idx = ((pc >> 2) ^ history_) & indexMask_;

    bool bimodal_taken = bimodal_[pc_idx] >= 2;
    bool gshare_taken = gshare_[gs_idx] >= 2;
    bool use_gshare = chooser_[pc_idx] >= 2;
    bool predict_taken = use_gshare ? gshare_taken : bimodal_taken;

    BranchOutcome out;
    out.directionCorrect = (predict_taken == taken);
    if (!out.directionCorrect)
        ++mispredicts_;

    // Train the chooser only when the components disagree.
    bool bimodal_right = bimodal_taken == taken;
    bool gshare_right = gshare_taken == taken;
    if (bimodal_right != gshare_right)
        train(chooser_[pc_idx], gshare_right);

    train(bimodal_[pc_idx], taken);
    train(gshare_[gs_idx], taken);

    history_ = ((history_ << 1) | (taken ? 1 : 0)) & indexMask_;

    // BTB: tag check + allocate on taken branches.
    std::uint64_t btb_idx = (pc >> 2) & (btbTags_.size() - 1);
    out.btbHit = btbTags_[btb_idx] == pc;
    if (taken)
        btbTags_[btb_idx] = pc;

    return out;
}

void
BranchPredictor::reset()
{
    std::fill(bimodal_.begin(), bimodal_.end(), 2);
    std::fill(gshare_.begin(), gshare_.end(), 2);
    std::fill(chooser_.begin(), chooser_.end(), 1);
    std::fill(btbTags_.begin(), btbTags_.end(), invalidAddr);
    history_ = 0;
}

} // namespace cash
