/**
 * @file
 * Sampled simulation: the SMARTS/XIOSim-style slice controller.
 *
 * The cycle-level vcore loop is the hot path under every layer of
 * the repo (figure benches, fuzzer, CloudProvider, the sharded
 * region service). Most cycles of most workloads are steady state:
 * once a program phase's IPC and miss rates are known, simulating
 * every instruction of it in detail buys nothing. Sampled mode
 * (SimMode::Sampled, off by default) interleaves three kinds of
 * quanta, in the style of XIOSim's slices.cpp (SNIPPETS.md #1):
 *
 *   Warmup       detailed simulation; re-warms the frozen
 *                microarchitectural state (caches, predictor,
 *                structural floors) after a fast-forward gap, but
 *                its measurements are discarded.
 *   Measure      detailed simulation; per-quantum IPC and counter
 *                deltas accumulate into the fast-forward model and
 *                feed the Kalman base-speed filter (the same
 *                recursion the runtime controller uses, paper Sec
 *                IV-B) for phase-change detection.
 *   FastForward  no timing simulation. The instruction source is
 *                functionally advanced (InstSource::skip) by
 *                ipc x quantum instructions and architectural
 *                state is extrapolated from the measured rates.
 *
 * What stays EXACT in sampled mode: the billing integrals (Slice x
 * cycles and bank x cycles depend only on the clock and membership,
 * both of which fast-forward maintains), membership/lifecycle
 * accounting, and SLA sample counting. What is ESTIMATED: committed
 * instruction counts during fast-forward (tracked separately as
 * VCoreMeta::estimatedInsts so the auditors can tell), cache/branch
 * counter extrapolations, and request latencies inside skipped
 * regions. The error-bound harness (bench_sim_speed
 * --sampled-error, tools/sample_error_gate.sh) checks end-to-end
 * runtime estimates against full simulation on every figure
 * workload: geomean error <= 3%, per workload <= 5%.
 *
 * A phase boundary reported by skip(), or an innovation spike in
 * the Kalman filter during measurement, aborts extrapolation and
 * restarts the warmup/measure schedule within one quantum — the
 * property tests in tests/test_sampler.cc pin this down.
 */

#ifndef CASH_SIM_SAMPLER_HH
#define CASH_SIM_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/kalman.hh"
#include "sim/perf_counter.hh"

namespace cash
{

/** How SSim advances virtual cores. */
enum class SimMode : std::uint8_t
{
    Full,    ///< every instruction through the detailed model
    Sampled, ///< slice sampling + analytic fast-forward
};

/**
 * Slice-sampling schedule and sensitivity knobs.
 *
 * Warmup is ADAPTIVE: after any restart (cold start, phase
 * boundary, reconfiguration, completed fast-forward burst) the
 * controller stays in detailed warmup until the per-quantum busy
 * IPC of consecutive full quanta settles within `warmupSettle`,
 * bounded by [warmupQuanta, maxWarmupQuanta]. Fixed-length warmup
 * is the classic SMARTS weakness this avoids: cache-refill
 * transients here range from ~2 quanta (re-warming after a
 * fast-forward gap inside one phase) to ~10 quanta (cold caches at
 * a working-set switch), and measuring mid-transient folds the
 * refill penalty into the model, biasing every extrapolated
 * quantum of the phase. Steady state is ~2 warmup + 2 measured /
 * 56 extrapolated quanta (~7% detail -> ~14x ideal speedup). These
 * defaults are what the error gate certifies; changing them moves
 * the speed/error trade-off.
 */
struct SamplerParams
{
    /** Sampling quantum in cycles. */
    Cycle sliceQuantum = 20'000;
    /** Minimum detailed warmup quanta after a restart (their
     *  measurements are discarded). */
    std::uint32_t warmupQuanta = 2;
    /** Warmup cap: measurement starts here even if IPC has not
     *  settled (bounds detail cost on noisy streams). */
    std::uint32_t maxWarmupQuanta = 12;
    /** Warmup ends once consecutive full-quantum busy IPCs agree
     *  within this relative tolerance. */
    double warmupSettle = 0.03;
    /** Detailed quanta measured into the fast-forward model. */
    std::uint32_t measureQuanta = 2;
    /** Quanta extrapolated per measurement slice. */
    std::uint32_t ffQuanta = 56;
    /** Kalman innovation above this aborts a measurement slice
     *  (suspected phase change mid-measurement). */
    double phaseThreshold = 0.25;
    /** Bounded schedule log (records beyond this are counted,
     *  not stored). */
    std::size_t maxScheduleRecords = 65'536;
};

/** Classification of one sampling quantum. */
enum class SliceMode : std::uint8_t
{
    Warmup,
    Measure,
    FastForward,
};

/**
 * The extrapolation model distilled from one measurement slice:
 * busy-cycle IPC plus per-committed-instruction event rates.
 */
struct FfModel
{
    bool valid = false;
    /** Committed instructions per BUSY cycle (idle excluded), so
     *  paced workloads extrapolate capacity, not arrival rate. */
    double ipc = 0.0;
    double l1dAccessRate = 0.0;
    double l1dMissRate = 0.0;
    double l1iAccessRate = 0.0;
    double l1iMissRate = 0.0;
    double l2AccessRate = 0.0;
    double l2MissRate = 0.0;
    double branchRate = 0.0;
    double mispredictRate = 0.0;
    double operandNetRate = 0.0;
    double requestRate = 0.0;
};

/** One scheduled quantum, for determinism tests and debugging. */
struct SliceRecord
{
    SliceMode mode = SliceMode::Warmup;
    Cycle start = 0;
    Cycle cycles = 0;
    InstCount insts = 0;
    /** This quantum ended in a phase-boundary abort. */
    bool phaseAbort = false;

    bool operator==(const SliceRecord &) const = default;
};

/** Aggregate sampling statistics (exported via CASH_METRIC too). */
struct SamplerStats
{
    Cycle detailedCycles = 0;
    Cycle ffCycles = 0;
    InstCount detailedInsts = 0;
    InstCount ffInsts = 0;
    /** Completed measurement slices that armed a model. */
    std::uint64_t measurementSlices = 0;
    /** Fast-forwards aborted at a source phase boundary. */
    std::uint64_t phaseAborts = 0;
    /** Measurement slices aborted by a Kalman innovation spike. */
    std::uint64_t innovationAborts = 0;
    /** Schedule resets forced by reconfigurations. */
    std::uint64_t reconfigResets = 0;
};

/**
 * Per-vcore slice scheduler: classifies quanta, accumulates the
 * measurement model, and decides when extrapolation is safe.
 * Deterministic: state depends only on the simulated history.
 */
class SliceController
{
  public:
    explicit SliceController(const SamplerParams &params);

    /** End of the sampling quantum containing `now` (grid-aligned
     *  so detailed overshoot does not drift the schedule). */
    Cycle segmentEnd(Cycle now) const
    {
        return (now / params_.sliceQuantum + 1) * params_.sliceQuantum;
    }

    /** True when the next quantum may be extrapolated. */
    bool fastForwarding() const
    {
        return mode_ == SliceMode::FastForward && model_.valid;
    }

    SliceMode mode() const { return mode_; }
    const FfModel &model() const { return model_; }
    const SamplerParams &params() const { return params_; }
    const SamplerStats &stats() const { return stats_; }
    const std::vector<SliceRecord> &schedule() const
    {
        return schedule_;
    }
    /** Quanta not recorded because the log bound was hit. */
    std::uint64_t droppedRecords() const { return droppedRecords_; }

    /**
     * Account one detailed (warmup or measurement) quantum.
     *
     * @param start vcore clock at the start of the quantum
     * @param insts instructions committed in it
     * @param cycles clock advance (>= quantum; commits overshoot)
     * @param idle_cycles idle portion of the advance
     * @param delta aggregate counter delta over the quantum
     */
    void onDetailedQuantum(Cycle start, InstCount insts, Cycle cycles,
                           Cycle idle_cycles,
                           const SliceCounters &delta);

    /**
     * Account one fast-forwarded quantum (possibly cut short).
     *
     * @param phase_boundary the source hit a phase boundary: the
     *        model is invalidated and the schedule restarts at
     *        warmup, so the next quantum is simulated in detail
     */
    void onFastForward(Cycle start, InstCount insts, Cycle cycles,
                       bool phase_boundary);

    /** A reconfiguration changed the hardware under the model:
     *  restart the schedule and re-seed the filter. */
    void onReconfigure();

  private:
    void record(SliceMode mode, Cycle start, Cycle cycles,
                InstCount insts, bool abort);
    /** Restart the schedule at adaptive warmup. Cold (the phase or
     *  the hardware changed) also invalidates the Kalman filter;
     *  warm (periodic re-measurement mid-phase) keeps it as the
     *  phase-drift detector for the next measurement. */
    void restart(bool cold);

    SamplerParams params_;
    SliceMode mode_ = SliceMode::Warmup;
    /** Quanta spent in the current mode. */
    std::uint32_t quantaInMode_ = 0;

    // Measurement accumulation for the pending model.
    InstCount measInsts_ = 0;
    Cycle measBusy_ = 0;
    SliceCounters measCtrs_{};
    /** Busy IPC of the previous full warmup quantum (< 0 until one
     *  has been seen); the adaptive-warmup settle reference. */
    double prevWarmIpc_ = -1.0;

    FfModel model_{};
    KalmanEstimator kalman_{1.0, 1e-4, 1e-2};
    bool kalmanSeeded_ = false;

    SamplerStats stats_{};
    std::vector<SliceRecord> schedule_;
    std::uint64_t droppedRecords_ = 0;
};

} // namespace cash

#endif // CASH_SIM_SAMPLER_HH
