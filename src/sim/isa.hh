/**
 * @file
 * The micro-op format consumed by the SSim timing model.
 *
 * SSim is trace-driven: workloads synthesize a stream of MicroOps
 * carrying exactly the information the timing model needs — operation
 * class, dataflow (dependence distances), memory address, control
 * flow (pc, branch outcome), and destination architectural register
 * (for the two-level rename / register-flush model).
 */

#ifndef CASH_SIM_ISA_HH
#define CASH_SIM_ISA_HH

#include <cstdint>

#include "common/types.hh"

namespace cash
{

/** Operation classes distinguished by the timing model. */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< single-cycle integer op
    FpAlu,    ///< multi-cycle floating-point op
    Load,     ///< memory read through L1D/L2/memory
    Store,    ///< memory write via the store buffer
    Branch,   ///< conditional branch resolved at execute
    Nop,      ///< consumes fetch/commit bandwidth only
};

/** Identifier of an application-level request for latency QoS. */
using RequestId = std::uint64_t;

constexpr RequestId invalidRequest = ~RequestId(0);

/**
 * One dynamic instruction.
 *
 * Dependence distances are in dynamic instructions: srcDist* == d
 * means the operand is produced by the instruction d positions
 * earlier in the stream (0 = no dependence). Distances larger than
 * the tracking window are treated as always-ready.
 */
struct MicroOp
{
    OpClass op = OpClass::Nop;
    /** Program counter (drives L1I and the branch predictor). */
    Addr pc = 0;
    /** First/second source dependence distances (0 = none). */
    std::uint16_t srcDist1 = 0;
    std::uint16_t srcDist2 = 0;
    /** Destination architectural register, or noDest. */
    std::uint8_t destReg = noDest;
    /** Effective address for Load/Store. */
    Addr addr = 0;
    /** Branch outcome (ground truth; the predictor guesses it). */
    bool taken = false;
    /** Request this instruction belongs to (latency QoS), if any. */
    RequestId request = invalidRequest;
    /** True on the last instruction of a request. */
    bool endOfRequest = false;
    /** Arrival cycle of the owning request (latency accounting). */
    Cycle requestArrival = 0;

    static constexpr std::uint8_t noDest = 0xff;

    bool isMem() const
    {
        return op == OpClass::Load || op == OpClass::Store;
    }
};

/**
 * What an instruction source hands the virtual core each fetch.
 */
struct FetchResult
{
    enum class Kind : std::uint8_t
    {
        Inst,      ///< op is valid
        IdleUntil, ///< no work before cycle idleUntil
        Finished,  ///< stream exhausted
    };

    Kind kind = Kind::Finished;
    MicroOp op{};
    Cycle idleUntil = 0;
};

/**
 * Abstract instruction source: the boundary between workloads and
 * the simulator. Workloads generate MicroOps; the virtual core
 * reports commit times back so request latency can be measured.
 */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /**
     * Produce the next instruction.
     * @param now the virtual core's current clock
     */
    virtual FetchResult next(Cycle now) = 0;

    /**
     * Notification that an instruction committed.
     * @param op the committed instruction
     * @param commit_cycle its commit time
     */
    virtual void onCommit(const MicroOp &op, Cycle commit_cycle) = 0;

    /**
     * Application-level backlog (queued work items). Exposed to the
     * runtime like a heartbeat counter; 0 when not applicable.
     */
    virtual std::uint64_t backlog() const { return 0; }
};

} // namespace cash

#endif // CASH_SIM_ISA_HH
