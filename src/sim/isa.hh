/**
 * @file
 * The micro-op format consumed by the SSim timing model.
 *
 * SSim is trace-driven: workloads synthesize a stream of MicroOps
 * carrying exactly the information the timing model needs — operation
 * class, dataflow (dependence distances), memory address, control
 * flow (pc, branch outcome), and destination architectural register
 * (for the two-level rename / register-flush model).
 */

#ifndef CASH_SIM_ISA_HH
#define CASH_SIM_ISA_HH

#include <algorithm>
#include <cstdint>

#include "common/types.hh"

namespace cash
{

/** Operation classes distinguished by the timing model. */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< single-cycle integer op
    FpAlu,    ///< multi-cycle floating-point op
    Load,     ///< memory read through L1D/L2/memory
    Store,    ///< memory write via the store buffer
    Branch,   ///< conditional branch resolved at execute
    Nop,      ///< consumes fetch/commit bandwidth only
};

/** Identifier of an application-level request for latency QoS. */
using RequestId = std::uint64_t;

constexpr RequestId invalidRequest = ~RequestId(0);

/**
 * One dynamic instruction.
 *
 * Dependence distances are in dynamic instructions: srcDist* == d
 * means the operand is produced by the instruction d positions
 * earlier in the stream (0 = no dependence). Distances larger than
 * the tracking window are treated as always-ready.
 */
struct MicroOp
{
    OpClass op = OpClass::Nop;
    /** Program counter (drives L1I and the branch predictor). */
    Addr pc = 0;
    /** First/second source dependence distances (0 = none). */
    std::uint16_t srcDist1 = 0;
    std::uint16_t srcDist2 = 0;
    /** Destination architectural register, or noDest. */
    std::uint8_t destReg = noDest;
    /** Effective address for Load/Store. */
    Addr addr = 0;
    /** Branch outcome (ground truth; the predictor guesses it). */
    bool taken = false;
    /** Request this instruction belongs to (latency QoS), if any. */
    RequestId request = invalidRequest;
    /** True on the last instruction of a request. */
    bool endOfRequest = false;
    /** Arrival cycle of the owning request (latency accounting). */
    Cycle requestArrival = 0;

    static constexpr std::uint8_t noDest = 0xff;

    bool isMem() const
    {
        return op == OpClass::Load || op == OpClass::Store;
    }
};

/**
 * What an instruction source hands the virtual core each fetch.
 */
struct FetchResult
{
    enum class Kind : std::uint8_t
    {
        Inst,      ///< op is valid
        IdleUntil, ///< no work before cycle idleUntil
        Finished,  ///< stream exhausted
    };

    Kind kind = Kind::Finished;
    MicroOp op{};
    Cycle idleUntil = 0;
};

/**
 * Result of a fast-forward skip() over an instruction source.
 */
struct SkipResult
{
    /** Instructions consumed (functionally committed). */
    InstCount skipped = 0;
    /** The stream ended inside the skip. */
    bool finished = false;
    /** The skip stopped early at a program-phase boundary; the
     *  sampled simulator must re-measure before extrapolating
     *  further. Never set by pure availability shortfalls. */
    bool phaseBoundary = false;
    /** Requests completed by the skipped instructions. */
    std::uint64_t requests = 0;
    /** Summed latency of those requests (estimated; commit times
     *  inside a skip are interpolated, not simulated). */
    std::uint64_t requestLatencySum = 0;
};

/**
 * Abstract instruction source: the boundary between workloads and
 * the simulator. Workloads generate MicroOps; the virtual core
 * reports commit times back so request latency can be measured.
 */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /**
     * Produce the next instruction.
     * @param now the virtual core's current clock
     */
    virtual FetchResult next(Cycle now) = 0;

    /**
     * Notification that an instruction committed.
     * @param op the committed instruction
     * @param commit_cycle its commit time
     */
    virtual void onCommit(const MicroOp &op, Cycle commit_cycle) = 0;

    /**
     * Application-level backlog (queued work items). Exposed to the
     * runtime like a heartbeat counter; 0 when not applicable.
     */
    virtual std::uint64_t backlog() const { return 0; }

    /**
     * Fast-forward: functionally consume up to n instructions
     * attributable to the cycle window [from, to] without timing
     * simulation. The source must stay consistent with what next()
     * would have produced in aggregate (same phase schedule, same
     * pacing/caps), though the per-instruction stream may differ —
     * sampled simulation only needs the statistics to match.
     *
     * May stop short of n when (a) the stream finishes, (b) a phase
     * boundary is reached (phaseBoundary set, so the caller can
     * re-measure), or (c) no more work arrives inside the window
     * (pacing). Commit notifications use commit cycles interpolated
     * linearly across the window.
     *
     * The default walks next()/onCommit one instruction at a time:
     * functionally exact, no timing model, but not O(1). Sources
     * with arithmetic state (PhasedTraceSource) override it.
     */
    virtual SkipResult skip(InstCount n, Cycle from, Cycle to)
    {
        SkipResult r;
        Cycle cursor = from;
        while (r.skipped < n) {
            FetchResult fr = next(cursor);
            if (fr.kind == FetchResult::Kind::Finished) {
                r.finished = true;
                break;
            }
            if (fr.kind == FetchResult::Kind::IdleUntil) {
                if (fr.idleUntil > to)
                    break; // no more work inside the window
                cursor = std::max(cursor + 1, fr.idleUntil);
                continue;
            }
            ++r.skipped;
            Cycle commit = from
                + (to - from) * r.skipped / std::max<InstCount>(n, 1);
            commit = std::max(commit, cursor);
            if (fr.op.endOfRequest && fr.op.request != invalidRequest) {
                ++r.requests;
                r.requestLatencySum += commit > fr.op.requestArrival
                    ? commit - fr.op.requestArrival : 0;
            }
            onCommit(fr.op, commit);
            cursor = std::max(cursor, commit);
        }
        return r;
    }
};

} // namespace cash

#endif // CASH_SIM_ISA_HH
