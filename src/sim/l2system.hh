/**
 * @file
 * The banked, reconfigurable L2 of a virtual core.
 *
 * A virtual core owns a set of 64 KB L2 banks scattered on the
 * fabric. Physical addresses are mapped to banks through a small
 * hash table (paper Sec VI-A: "We use a hash table to map physical
 * address to cache banks"), so that bank membership can change
 * without remapping every block:
 *
 *  - On SHRINK, hash entries pointing at removed banks are re-pointed
 *    to survivors; the removed banks' dirty lines are flushed to
 *    memory (cost: dirty bytes / network width cycles, overlapped
 *    with the table rewrite).
 *  - On EXPAND, a balanced share of hash entries is re-pointed to the
 *    new banks; lines cached in old banks under re-pointed entries
 *    become unreachable and are flushed/invalidated.
 *
 * Hit latency is distance-dependent (Table II): the virtual core
 * asks latencyFor(slice, addr) which applies dist*2 + 4 using the
 * fabric geometry.
 */

#ifndef CASH_SIM_L2SYSTEM_HH
#define CASH_SIM_L2SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/grid.hh"
#include "fabric/resource.hh"
#include "sim/cache.hh"
#include "sim/params.hh"

namespace cash
{

/**
 * Result of an L2 lookup.
 */
struct L2Access
{
    bool hit = false;
    /** Total L2 latency for this access (hit delay, or the hit delay
     *  plus memory latency on a miss). */
    std::uint32_t latency = 0;
    /** Bank that serviced the access. */
    BankId bank = invalidBank;
};

/**
 * Cost of an L2 reconfiguration.
 */
struct L2ReconfigCost
{
    /** Dirty lines pushed to memory. */
    std::uint64_t dirtyLinesFlushed = 0;
    /** Cycles spent flushing (dirty bytes / flush network width). */
    Cycle flushCycles = 0;
    /** Clean lines dropped because their hash entry moved. */
    std::uint64_t linesInvalidated = 0;
};

/**
 * The banked L2 cache of one virtual core.
 */
class L2System
{
  public:
    /**
     * @param grid fabric geometry (for distances)
     * @param params cache parameters
     * @param banks initial bank set (may be empty: L2-less vcore)
     */
    L2System(const FabricGrid &grid, const CacheParams &params,
             const std::vector<BankId> &banks);

    /**
     * Access an address (after an L1 miss).
     *
     * @param requester the Slice performing the access
     * @param addr byte address
     * @param write mark the line dirty
     * @return hit/miss and total latency (memory latency included on
     *         miss; with no banks, every access costs memLat)
     */
    L2Access access(SliceId requester, Addr addr, bool write);

    /**
     * Change the bank set. Implements the hash-table remap described
     * above and returns the flush/invalidate cost.
     */
    L2ReconfigCost reconfigure(const std::vector<BankId> &new_banks);

    /** Bank owning an address under the current map (numBanks > 0). */
    BankId bankFor(Addr addr) const;

    /** Hit delay from a slice to the owning bank for addr. */
    std::uint32_t hitLatency(SliceId requester, Addr addr) const;

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    std::uint64_t totalSize() const
    {
        return banks_.size() * params_.l2BankSize;
    }

    /** Total dirty lines across all banks (flush-cost worst case). */
    std::uint64_t dirtyLines() const;

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    /** Hash an address into a table entry. */
    std::uint32_t hashEntry(Addr addr) const;

    /** Index into banks_ / arrays_ for an address; requires banks. */
    std::size_t bankIndex(Addr addr) const;

    /** Rebuild arrays_ for a new bank list, preserving survivors. */
    void rebuildBanks(const std::vector<BankId> &new_banks,
                      L2ReconfigCost &cost);

    const FabricGrid &grid_;
    CacheParams params_;
    std::vector<BankId> banks_;
    /** One cache array per owned bank, parallel to banks_. */
    std::vector<std::unique_ptr<SetAssocCache>> arrays_;
    /** hash entry -> index into banks_. */
    std::vector<std::uint32_t> hashTable_;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace cash

#endif // CASH_SIM_L2SYSTEM_HH
