/**
 * @file
 * Named counters and histograms with an end-of-run summary.
 *
 * MetricsRegistry is the aggregate side of the trace subsystem:
 * where TraceSession records *individual* events on a timeline, the
 * registry accumulates totals — how many reconfigurations, the
 * distribution of flush costs, how many tenants were rejected. The
 * CASH_METRIC_* macros gate on the same runtime switch as the
 * CASH_TRACE_* ones (an installed TraceSession) and compile out with
 * the same CMake option, so the disabled cost is identical: one
 * relaxed atomic load per site.
 *
 * Determinism: counter increments commute and histogram bins
 * commute, so metric values are identical at any thread count —
 * unlike the event timeline, which needs track ordering (see
 * TraceSession::drain).
 *
 * Storage is append-only: counter()/histogram() references stay
 * valid for the process lifetime; reset() zeroes values without
 * invalidating references (TraceSession::install resets, so each
 * recording reports exactly its own run).
 */

#ifndef CASH_TRACE_METRICS_HH
#define CASH_TRACE_METRICS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace cash::trace
{

/** Monotone event tally (thread-safe, lock-free increment). */
class Counter
{
  public:
    void inc(std::uint64_t by = 1)
    {
        value_.fetch_add(by, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Value distribution: count/sum/min/max plus power-of-two magnitude
 * bins (two per octave) for approximate quantiles. Sampling takes a
 * per-histogram mutex — fine for control-path frequencies (per
 * quantum / per reconfiguration), never used per instruction.
 */
class Histogram
{
  public:
    void sample(double v);

    std::uint64_t count() const;
    double sum() const;
    double min() const;
    double max() const;
    double mean() const;
    /** Approximate quantile (q in [0,1]) from the magnitude bins:
     *  the upper edge of the bin holding the q-th sample. */
    double quantile(double q) const;

    void reset();

  private:
    /** Bin index for a value (0 for v <= 0). */
    static std::size_t binOf(double v);
    /** Upper edge of a bin. */
    static double binEdge(std::size_t bin);

    static constexpr std::size_t numBins = 128;

    mutable std::mutex mutex_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t bins_[numBins] = {};
};

/** One row of the end-of-run summary. */
struct MetricRow
{
    std::string name;
    bool isHistogram = false;
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
};

/**
 * The process-wide metric namespace. Lookup by name takes a mutex;
 * the returned references are lock-free (counters) or per-metric
 * locked (histograms) and remain valid forever.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &global();

    /** The named counter, created on first use. fatal() if the name
     *  is already a histogram. */
    Counter &counter(const std::string &name);

    /** The named histogram, created on first use. fatal() if the
     *  name is already a counter. */
    Histogram &histogram(const std::string &name);

    /** Zero every metric (references stay valid). */
    void reset();

    /** All metrics with a non-zero count, sorted by name
     *  (deterministic at any thread count). */
    std::vector<MetricRow> rows() const;

    /** Human-readable summary table (empty string if no metrics
     *  fired). */
    std::string summaryTable() const;

    /** Machine-readable summary via common/csv.hh: columns
     *  metric,kind,count,sum,mean,min,max,p50,p90. */
    void writeCsv(std::ostream &out) const;

  private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_;
    /** deques: stable addresses under growth. */
    std::deque<Counter> counters_;
    std::deque<Histogram> histograms_;
    std::map<std::string, Counter *> counterByName_;
    std::map<std::string, Histogram *> histogramByName_;
};

} // namespace cash::trace

#if CASH_TRACE_ENABLED

/** Bump a named counter by 1 (only while a session is installed). */
#define CASH_METRIC_INC(name)                                         \
    do {                                                              \
        if (CASH_TRACE_ON())                                          \
            ::cash::trace::MetricsRegistry::global()                  \
                .counter(name)                                        \
                .inc();                                               \
    } while (0)

/** Add `by` to a named counter. */
#define CASH_METRIC_ADD(name, by)                                     \
    do {                                                              \
        if (CASH_TRACE_ON())                                          \
            ::cash::trace::MetricsRegistry::global()                  \
                .counter(name)                                        \
                .inc(by);                                             \
    } while (0)

/** Record one sample into a named histogram. */
#define CASH_METRIC_SAMPLE(name, value)                               \
    do {                                                              \
        if (CASH_TRACE_ON())                                          \
            ::cash::trace::MetricsRegistry::global()                  \
                .histogram(name)                                      \
                .sample(value);                                       \
    } while (0)

#else

#define CASH_METRIC_INC(name) ((void)0)
#define CASH_METRIC_ADD(name, by) ((void)0)
#define CASH_METRIC_SAMPLE(name, value) ((void)0)

#endif // CASH_TRACE_ENABLED

#endif // CASH_TRACE_METRICS_HH
