#include "trace/trace.hh"

#include <algorithm>
#include <chrono>

#include "common/log.hh"
#include "trace/metrics.hh"

namespace cash::trace
{

namespace detail
{
std::atomic<TraceSession *> g_active{nullptr};
} // namespace detail

namespace
{

/** Monotone id handed to each install() (TLS cache key; never 0). */
std::atomic<std::uint64_t> g_generation{0};

/** Calling thread's registered buffer for a given generation. */
struct TlsBufferRef
{
    std::uint64_t generation = 0;
    ThreadBuffer *buffer = nullptr;
};
thread_local TlsBufferRef t_buffer;

thread_local std::uint64_t t_track = 0;

double
steadyNowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Runtime: return "runtime";
      case Category::Fabric: return "fabric";
      case Category::Cloud: return "cloud";
      case Category::Engine: return "engine";
      case Category::Service: return "service";
    }
    return "?";
}

ThreadBuffer::ThreadBuffer(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1))
{}

void
ThreadBuffer::push(TraceEvent ev)
{
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    ev.seq = h;
    slots_[h % slots_.size()] = ev;
    // Release so a reader that acquires head_ after the producer
    // quiesced observes every stored slot.
    head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent>
ThreadBuffer::snapshot() const
{
    std::uint64_t h = head_.load(std::memory_order_acquire);
    std::uint64_t n = std::min<std::uint64_t>(h, slots_.size());
    std::vector<TraceEvent> out;
    out.reserve(n);
    for (std::uint64_t i = h - n; i < h; ++i)
        out.push_back(slots_[i % slots_.size()]);
    return out;
}

std::uint64_t
ThreadBuffer::overwritten() const
{
    std::uint64_t h = head_.load(std::memory_order_acquire);
    return h > slots_.size() ? h - slots_.size() : 0;
}

TraceSession::TraceSession(const TraceConfig &config)
    : config_(config)
{}

TraceSession::~TraceSession()
{
    uninstall();
}

TraceSession *
TraceSession::active()
{
    return detail::g_active.load(std::memory_order_acquire);
}

void
TraceSession::install()
{
    TraceSession *expected = nullptr;
    generation_ =
        g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
    installEpochUs_ = steadyNowUs();
    if (!detail::g_active.compare_exchange_strong(
            expected, this, std::memory_order_acq_rel)) {
        fatal("a TraceSession is already installed");
    }
    // Each recording starts from zeroed metrics, so a bench's
    // summary table covers exactly the traced run.
    MetricsRegistry::global().reset();
}

void
TraceSession::uninstall()
{
    TraceSession *expected = this;
    detail::g_active.compare_exchange_strong(
        expected, nullptr, std::memory_order_acq_rel);
}

ThreadBuffer &
TraceSession::threadBuffer()
{
    if (t_buffer.generation == generation_ && t_buffer.buffer)
        return *t_buffer.buffer;
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(
        std::make_unique<ThreadBuffer>(config_.bufferCapacity));
    t_buffer = {generation_, buffers_.back().get()};
    return *t_buffer.buffer;
}

std::vector<TraceEvent>
TraceSession::drain() const
{
    std::vector<std::vector<TraceEvent>> parts;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        parts.reserve(buffers_.size());
        for (const auto &b : buffers_)
            parts.push_back(b->snapshot());
    }
    std::vector<TraceEvent> all;
    std::size_t total = 0;
    for (const auto &p : parts)
        total += p.size();
    all.reserve(total);
    // Tag each event with its buffer index so the sort has a
    // deterministic tie-break for multi-producer tracks (tests);
    // single-producer tracks — the normal case — never need it.
    std::vector<std::size_t> bufOf;
    bufOf.reserve(total);
    for (std::size_t bi = 0; bi < parts.size(); ++bi) {
        for (const TraceEvent &ev : parts[bi]) {
            all.push_back(ev);
            bufOf.push_back(bi);
        }
    }
    std::vector<std::size_t> idx(all.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) {
                  if (all[a].track != all[b].track)
                      return all[a].track < all[b].track;
                  if (bufOf[a] != bufOf[b])
                      return bufOf[a] < bufOf[b];
                  return all[a].seq < all[b].seq;
              });
    std::vector<TraceEvent> out;
    out.reserve(all.size());
    for (std::size_t i : idx)
        out.push_back(all[i]);
    return out;
}

void
TraceSession::setTrackName(std::uint64_t track,
                           const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trackNames_[track] = name;
}

std::map<std::uint64_t, std::string>
TraceSession::trackNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return trackNames_;
}

std::uint64_t
TraceSession::overwritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &b : buffers_)
        total += b->overwritten();
    return total;
}

double
TraceSession::hostNowUs() const
{
    if (installEpochUs_ == 0.0)
        return 0.0;
    return steadyNowUs() - installEpochUs_;
}

std::uint64_t
currentTrack()
{
    return t_track;
}

TrackScope::TrackScope(std::uint64_t track)
    : prev_(t_track)
{
    t_track = track;
}

TrackScope::TrackScope(std::uint64_t track, const std::string &name)
    : TrackScope(track)
{
    nameCurrentTrack(name);
}

TrackScope::~TrackScope()
{
    t_track = prev_;
}

void
nameCurrentTrack(const std::string &name)
{
    if (TraceSession *s = TraceSession::active())
        s->setTrackName(t_track, name);
}

namespace
{

void
emitImpl(Category cat, EventKind kind, const char *name, double ts,
         double dur, std::initializer_list<Arg> args)
{
    TraceSession *s = TraceSession::active();
    if (!s)
        return;
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.kind = kind;
    ev.track = t_track;
    ev.ts = ts;
    ev.dur = dur;
    for (const Arg &a : args) {
        if (ev.numArgs == maxArgs)
            break;
        ev.argKey[ev.numArgs] = a.key;
        ev.argVal[ev.numArgs] = a.value;
        ++ev.numArgs;
    }
    s->threadBuffer().push(ev);
}

} // namespace

void
emitInstant(Category cat, const char *name, Cycle ts,
            std::initializer_list<Arg> args)
{
    emitImpl(cat, EventKind::Instant, name, usFromCycles(ts), 0.0,
             args);
}

void
emitSpan(Category cat, const char *name, Cycle ts, Cycle dur,
         std::initializer_list<Arg> args)
{
    emitImpl(cat, EventKind::Complete, name, usFromCycles(ts),
             usFromCycles(dur), args);
}

void
emitCounter(Category cat, const char *name, Cycle ts,
            const char *key, double value)
{
    emitImpl(cat, EventKind::Counter, name, usFromCycles(ts), 0.0,
             {{key, value}});
}

void
emitHostSpan(Category cat, const char *name, double ts_us,
             double dur_us, std::initializer_list<Arg> args)
{
    emitImpl(cat, EventKind::Complete, name, ts_us, dur_us, args);
}

} // namespace cash::trace
