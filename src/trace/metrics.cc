#include "trace/metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/csv.hh"
#include "common/log.hh"

namespace cash::trace
{

void
Histogram::sample(double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    ++bins_[binOf(v)];
}

std::size_t
Histogram::binOf(double v)
{
    if (!(v > 0.0) || !std::isfinite(v))
        return 0;
    // Two bins per octave over 2^-16 .. 2^47: bin = 2*(log2(v)+16),
    // clamped. Fine enough for order-of-magnitude quantiles of
    // cycle costs, dollar rates, and QoS ratios alike.
    double l = std::log2(v);
    double idx = 2.0 * (l + 16.0) + 1.0;
    if (idx < 1.0)
        return 1;
    if (idx >= static_cast<double>(numBins - 1))
        return numBins - 1;
    return static_cast<std::size_t>(idx);
}

double
Histogram::binEdge(std::size_t bin)
{
    if (bin == 0)
        return 0.0;
    return std::exp2(static_cast<double>(bin) / 2.0 - 16.0);
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double
Histogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < numBins; ++b) {
        seen += bins_[b];
        if (seen > target)
            return std::min(binEdge(b), max_);
    }
    return max_;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
    std::fill(std::begin(bins_), std::end(bins_), 0);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counterByName_.find(name);
    if (it != counterByName_.end())
        return *it->second;
    if (histogramByName_.count(name))
        fatal("metric '%s' is already a histogram", name.c_str());
    counters_.emplace_back();
    counterByName_[name] = &counters_.back();
    return counters_.back();
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histogramByName_.find(name);
    if (it != histogramByName_.end())
        return *it->second;
    if (counterByName_.count(name))
        fatal("metric '%s' is already a counter", name.c_str());
    histograms_.emplace_back();
    histogramByName_[name] = &histograms_.back();
    return histograms_.back();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Counter &c : counters_)
        c.reset();
    for (Histogram &h : histograms_)
        h.reset();
}

std::vector<MetricRow>
MetricsRegistry::rows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricRow> out;
    for (const auto &[name, c] : counterByName_) {
        if (c->value() == 0)
            continue;
        MetricRow r;
        r.name = name;
        r.count = c->value();
        r.sum = static_cast<double>(c->value());
        out.push_back(r);
    }
    for (const auto &[name, h] : histogramByName_) {
        if (h->count() == 0)
            continue;
        MetricRow r;
        r.name = name;
        r.isHistogram = true;
        r.count = h->count();
        r.sum = h->sum();
        r.mean = h->mean();
        r.min = h->min();
        r.max = h->max();
        r.p50 = h->quantile(0.5);
        r.p90 = h->quantile(0.9);
        out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const MetricRow &a, const MetricRow &b) {
                  return a.name < b.name;
              });
    return out;
}

std::string
MetricsRegistry::summaryTable() const
{
    std::vector<MetricRow> all = rows();
    if (all.empty())
        return "";
    std::string out = strfmt("%-34s %12s %14s %12s %12s\n",
                             "metric", "count", "mean", "p50",
                             "max");
    for (const MetricRow &r : all) {
        if (r.isHistogram) {
            out += strfmt("%-34s %12llu %14.4g %12.4g %12.4g\n",
                          r.name.c_str(),
                          static_cast<unsigned long long>(r.count),
                          r.mean, r.p50, r.max);
        } else {
            out += strfmt("%-34s %12llu %14s %12s %12s\n",
                          r.name.c_str(),
                          static_cast<unsigned long long>(r.count),
                          "-", "-", "-");
        }
    }
    return out;
}

void
MetricsRegistry::writeCsv(std::ostream &out) const
{
    CsvWriter csv(out, {"metric", "kind", "count", "sum", "mean",
                        "min", "max", "p50", "p90"});
    for (const MetricRow &r : rows()) {
        csv.row({r.name, r.isHistogram ? "histogram" : "counter",
                 strfmt("%llu",
                        static_cast<unsigned long long>(r.count)),
                 CsvWriter::num(r.sum), CsvWriter::num(r.mean),
                 CsvWriter::num(r.min), CsvWriter::num(r.max),
                 CsvWriter::num(r.p50), CsvWriter::num(r.p90)});
    }
}

} // namespace cash::trace
