/**
 * @file
 * Low-overhead tracing for the whole CASH stack.
 *
 * The runtime's value is a closed control loop (deadbeat controller
 * → Kalman filter → LearningOptimizer, Algorithm 1), and debugging a
 * misbehaving reconfiguration or a consolidation anomaly needs
 * per-decision telemetry across src/core, src/sim, src/fabric and
 * src/cloud. This header provides the hooks the hot layers emit
 * into, mirroring the CASH_INVARIANT idiom of check/invariant.hh:
 *
 *  - CASH_TRACE_* macros — compiled to nothing when the build sets
 *    -DCASH_TRACE_ENABLED=0 (CMake option CASH_TRACE, ON by
 *    default). Compiled in, each expands to one relaxed atomic load
 *    and a branch when no TraceSession is installed, so instrumented
 *    binaries stay within noise of uninstrumented ones (the
 *    instrumentation sites are all on control paths — per quantum,
 *    per reconfiguration, per tenant event — never in SSim's
 *    per-instruction loop).
 *  - TraceSession — per-thread, lock-free ring buffers the emit
 *    path writes into. Threads register their buffer once (mutex),
 *    then every emit is a single-producer ring push. One session is
 *    installed globally at a time.
 *  - Tracks — every event belongs to a track (an experiment cell, a
 *    standalone run). ExperimentEngine assigns each cell its
 *    declaration-order track, so drained traces are canonically
 *    ordered and byte-identical at any thread count (minus host
 *    timestamps; see drain()).
 *
 * Timestamps are *simulated* cycles (1 cycle = 1 ns) for runtime /
 * fabric / cloud events — fully deterministic — and host
 * microseconds since session install for engine-cell timing.
 * Exporters (trace/export.hh) turn a drained session into Chrome
 * trace_event JSON (chrome://tracing, Perfetto) or CSV.
 */

#ifndef CASH_TRACE_TRACE_HH
#define CASH_TRACE_TRACE_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"

#ifndef CASH_TRACE_ENABLED
#define CASH_TRACE_ENABLED 1
#endif

namespace cash::trace
{

/** True in builds whose CASH_TRACE CMake option was left ON. */
constexpr bool compiledIn = CASH_TRACE_ENABLED != 0;

/** Event category: which layer emitted the event. */
enum class Category : std::uint8_t
{
    Runtime, ///< control-loop decisions (src/core)
    Fabric,  ///< EXPAND/SHRINK/compact and allocation (src/sim+fabric)
    Cloud,   ///< tenant lifecycle and arbitration (src/cloud)
    Engine,  ///< ExperimentEngine cell timing (src/harness)
    Service, ///< request front-end: accept/decode/apply/reply
             ///< (src/service; host-time spans like Engine)
};

/** Printable category name ("runtime", "fabric", ...). */
const char *categoryName(Category c);

/** Chrome trace_event phase of an event. */
enum class EventKind : std::uint8_t
{
    Instant,  ///< ph "I": a point in time
    Complete, ///< ph "X": a span with a duration
    Counter,  ///< ph "C": a sampled value (renders as a line track)
};

/** One named numeric event argument. The constructor accepts any
 *  arithmetic type so call sites can pass Cycle / uint32 / bool
 *  without explicit casts (values are stored as double; counts
 *  above 2^53 would lose precision, far beyond any horizon here). */
struct Arg
{
    template <typename T>
    Arg(const char *k, T v)
        : key(k), value(static_cast<double>(v))
    {}

    const char *key; ///< static string literal
    double value;
};

/** Maximum args per event (excess args are dropped). */
constexpr std::size_t maxArgs = 10;

/**
 * One fixed-size trace record. `name` and arg keys must be string
 * literals (or otherwise outlive the session): the ring buffer
 * stores the pointers, never copies.
 */
struct TraceEvent
{
    const char *name = nullptr;
    Category cat = Category::Runtime;
    EventKind kind = EventKind::Instant;
    std::uint8_t numArgs = 0;
    /** Canonical-order grouping key (see TrackScope). */
    std::uint64_t track = 0;
    /** Buffer-local emission sequence (filled by the buffer). */
    std::uint64_t seq = 0;
    /** Microseconds: simulated for Runtime/Fabric/Cloud, host for
     *  Engine. */
    double ts = 0.0;
    /** Span length in microseconds (Complete events only). */
    double dur = 0.0;
    const char *argKey[maxArgs] = {};
    double argVal[maxArgs] = {};
};

/** Simulated cycles (1 GHz ⇒ 1 cycle = 1 ns) to trace microseconds. */
inline double
usFromCycles(Cycle c)
{
    return static_cast<double>(c) * 1e-3;
}

/**
 * Single-producer ring buffer of TraceEvents. Only the owning
 * thread pushes; when full, the oldest events are overwritten
 * (flight-recorder semantics) and overwritten() counts them.
 * snapshot() requires the producer to have quiesced (the head index
 * is released on push and acquired on read, so a happens-before
 * edge — e.g. ThreadPool::wait() or thread join — suffices).
 */
class ThreadBuffer
{
  public:
    explicit ThreadBuffer(std::size_t capacity);

    /** Push one event (owning thread only). */
    void push(TraceEvent ev);

    /** Events still held, oldest first (post-quiescence). */
    std::vector<TraceEvent> snapshot() const;

    /** Events overwritten by ring wrap-around. */
    std::uint64_t overwritten() const;

    std::size_t capacity() const { return slots_.size(); }

  private:
    std::vector<TraceEvent> slots_;
    std::atomic<std::uint64_t> head_{0}; ///< total pushes
};

/** Session tunables. */
struct TraceConfig
{
    /** Ring capacity per emitting thread, in events. */
    std::size_t bufferCapacity = 1 << 16;
};

/**
 * One recording. Construct, install() to start capturing,
 * uninstall() to stop, then drain() and export. At most one session
 * is installed process-wide; emits while none is installed cost one
 * relaxed atomic load. install() also resets the global
 * MetricsRegistry so every recording starts from zeroed counters.
 *
 * Lifetime: uninstall() (and destruction, which uninstalls) must
 * not race with in-flight emits — stop your workers first. All
 * bench/tool integrations install before spawning work and
 * uninstall after the pool drains.
 */
class TraceSession
{
  public:
    explicit TraceSession(const TraceConfig &config = TraceConfig());
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** The installed session, or nullptr (the macros' gate). */
    static TraceSession *active();

    /** Make this session the process-wide recorder; fatal() if
     *  another session is already installed. */
    void install();

    /** Stop recording (no-op if not installed). */
    void uninstall();

    /**
     * All recorded events in canonical order: ascending track, and
     * within a track, emission order. The order (and everything but
     * the host-clock ts/dur of Engine events) is deterministic at
     * any thread count provided each track was emitted from one
     * thread at a time — which TrackScope + ExperimentEngine
     * guarantee. Requires emit quiescence.
     */
    std::vector<TraceEvent> drain() const;

    /** Name a track (shown as the process name in Perfetto). */
    void setTrackName(std::uint64_t track, const std::string &name);

    /** Registered track names (copy; callable during recording). */
    std::map<std::uint64_t, std::string> trackNames() const;

    /** Total events lost to ring wrap-around across all threads.
     *  Non-zero means drain() output (and the determinism
     *  contract) is truncated; raise TraceConfig::bufferCapacity. */
    std::uint64_t overwritten() const;

    /** Host microseconds elapsed since install() (0 before). */
    double hostNowUs() const;

    const TraceConfig &config() const { return config_; }

    // --- emit path internals (used by the free emit functions) ---

    /** The calling thread's buffer, registering it on first use. */
    ThreadBuffer &threadBuffer();

    /** Identity of this install() (thread-local cache key). */
    std::uint64_t generation() const { return generation_; }

  private:
    TraceConfig config_;
    std::uint64_t generation_ = 0;
    double installEpochUs_ = 0.0; ///< steady_clock at install
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::map<std::uint64_t, std::string> trackNames_;
};

namespace detail
{
/** The installed session; read relaxed on the hot path. */
extern std::atomic<TraceSession *> g_active;
} // namespace detail

/** True when a session is installed (the macros' runtime gate). */
inline bool
tracingActive()
{
    return detail::g_active.load(std::memory_order_relaxed)
        != nullptr;
}

/** The calling thread's current track (0 outside any TrackScope). */
std::uint64_t currentTrack();

/**
 * RAII: route this thread's events to `track` for the scope's
 * lifetime. Cheap enough to use unconditionally (two thread-local
 * writes); pass a name to label the track in exports.
 */
class TrackScope
{
  public:
    explicit TrackScope(std::uint64_t track);
    TrackScope(std::uint64_t track, const std::string &name);
    ~TrackScope();

    TrackScope(const TrackScope &) = delete;
    TrackScope &operator=(const TrackScope &) = delete;

  private:
    std::uint64_t prev_;
};

/** Register a name for the calling thread's current track. */
void nameCurrentTrack(const std::string &name);

// --- emit functions (call through the CASH_TRACE_* macros so call
// sites compile out with the CMake option) ---

/** Point event at simulated time `ts` (cycles). */
void emitInstant(Category cat, const char *name, Cycle ts,
                 std::initializer_list<Arg> args = {});

/** Span event: starts at `ts`, lasts `dur` (simulated cycles). */
void emitSpan(Category cat, const char *name, Cycle ts, Cycle dur,
              std::initializer_list<Arg> args = {});

/** Sampled value at simulated time `ts`; renders as a line track. */
void emitCounter(Category cat, const char *name, Cycle ts,
                 const char *key, double value);

/** Span event in host microseconds (ExperimentEngine cell timing;
 *  the only non-deterministic timestamps in a trace). */
void emitHostSpan(Category cat, const char *name, double ts_us,
                  double dur_us,
                  std::initializer_list<Arg> args = {});

} // namespace cash::trace

#if CASH_TRACE_ENABLED

/** True when tracing is compiled in AND a session is installed. */
#define CASH_TRACE_ON() (::cash::trace::tracingActive())

/** Emit hooks: arguments are not evaluated unless a session is
 *  installed, so argument construction is off the disabled path. */
#define CASH_TRACE_INSTANT(...)                                       \
    do {                                                              \
        if (CASH_TRACE_ON())                                          \
            ::cash::trace::emitInstant(__VA_ARGS__);                  \
    } while (0)

#define CASH_TRACE_SPAN(...)                                          \
    do {                                                              \
        if (CASH_TRACE_ON())                                          \
            ::cash::trace::emitSpan(__VA_ARGS__);                     \
    } while (0)

#define CASH_TRACE_COUNTER(...)                                       \
    do {                                                              \
        if (CASH_TRACE_ON())                                          \
            ::cash::trace::emitCounter(__VA_ARGS__);                  \
    } while (0)

#define CASH_TRACE_HOST_SPAN(...)                                     \
    do {                                                              \
        if (CASH_TRACE_ON())                                          \
            ::cash::trace::emitHostSpan(__VA_ARGS__);                 \
    } while (0)

#else

#define CASH_TRACE_ON() false
#define CASH_TRACE_INSTANT(...) ((void)0)
#define CASH_TRACE_SPAN(...) ((void)0)
#define CASH_TRACE_COUNTER(...) ((void)0)
#define CASH_TRACE_HOST_SPAN(...) ((void)0)

#endif // CASH_TRACE_ENABLED

#endif // CASH_TRACE_TRACE_HH
