#include "trace/export.hh"

#include <fstream>

#include "common/log.hh"

namespace cash::trace
{

namespace
{

/** Escape a string for a JSON literal (names here are C literals,
 *  but track names carry user-provided cell keys). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** JSON number: fixed %.17g keeps round-trips exact and output
 *  deterministic; NaN/inf (never emitted by instrumentation, but
 *  arguments are caller data) degrade to 0 to keep the JSON valid. */
std::string
jsonNum(double v)
{
    if (!(v == v) || v - v != 0.0)
        return "0";
    return strfmt("%.17g", v);
}

const char *
phaseOf(EventKind kind)
{
    switch (kind) {
      case EventKind::Instant: return "I";
      case EventKind::Complete: return "X";
      case EventKind::Counter: return "C";
    }
    return "I";
}

} // namespace

std::string
chromeTraceLine(const TraceEvent &ev)
{
    std::string out = strfmt(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
        "\"ts\":%s,",
        jsonEscape(ev.name ? ev.name : "?").c_str(),
        categoryName(ev.cat), phaseOf(ev.kind),
        jsonNum(ev.ts).c_str());
    if (ev.kind == EventKind::Complete)
        out += strfmt("\"dur\":%s,", jsonNum(ev.dur).c_str());
    if (ev.kind == EventKind::Instant)
        out += "\"s\":\"t\",";
    out += strfmt("\"pid\":%llu,\"tid\":%llu,\"args\":{",
                  static_cast<unsigned long long>(ev.track),
                  static_cast<unsigned long long>(ev.track));
    for (std::uint8_t i = 0; i < ev.numArgs; ++i) {
        if (i)
            out += ",";
        out += strfmt(
            "\"%s\":%s",
            jsonEscape(ev.argKey[i] ? ev.argKey[i] : "?").c_str(),
            jsonNum(ev.argVal[i]).c_str());
    }
    out += "}}";
    return out;
}

void
writeChromeTrace(
    std::ostream &out, const std::vector<TraceEvent> &events,
    const std::map<std::uint64_t, std::string> &track_names)
{
    out << "{\"traceEvents\":[\n";
    bool first = true;
    // Track-name metadata first: Perfetto shows each track (pid) by
    // its process_name.
    for (const auto &[track, name] : track_names) {
        if (!first)
            out << ",\n";
        first = false;
        out << strfmt("{\"name\":\"process_name\",\"ph\":\"M\","
                      "\"pid\":%llu,\"tid\":%llu,"
                      "\"args\":{\"name\":\"%s\"}}",
                      static_cast<unsigned long long>(track),
                      static_cast<unsigned long long>(track),
                      jsonEscape(name).c_str());
    }
    for (const TraceEvent &ev : events) {
        if (!first)
            out << ",\n";
        first = false;
        out << chromeTraceLine(ev);
    }
    out << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void
writeChromeTrace(std::ostream &out, const TraceSession &session)
{
    writeChromeTrace(out, session.drain(), session.trackNames());
}

bool
writeChromeTraceFile(const std::string &path,
                     const TraceSession &session)
{
    std::ofstream file(path);
    if (!file.is_open()) {
        warn("cannot open '%s' for the Chrome trace; trace output "
             "dropped",
             path.c_str());
        return false;
    }
    if (std::uint64_t lost = session.overwritten()) {
        warn("trace ring buffers overwrote %llu event(s); the "
             "exported trace is truncated — raise "
             "TraceConfig::bufferCapacity",
             static_cast<unsigned long long>(lost));
    }
    writeChromeTrace(file, session);
    return true;
}

} // namespace cash::trace
