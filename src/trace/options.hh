/**
 * @file
 * Shared `--trace` / `--metrics` command-line handling.
 *
 * Every observable binary in the repo — the benches, the fuzzer, the
 * service daemon and load generator — exposes the same two flags:
 *
 *   <tool> --trace out.json    record a Chrome trace_event timeline
 *          --metrics out.csv   write the metric summary as CSV
 *
 * TraceOptions implements them once. Construct it first thing in
 * main(); it *extracts* the flags it owns from argv (compacting the
 * array and updating argc), so the tool's own parser never sees
 * them. When either flag was given, a TraceSession is installed for
 * the object's lifetime; on destruction — after the tool's workers
 * have drained — the session is uninstalled, the Chrome JSON (open
 * in ui.perfetto.dev or chrome://tracing) and optional metric CSV
 * are written, and the metric summary table goes to stderr. stdout
 * is never touched, so the engine determinism contract —
 * byte-identical stdout at any thread count — holds with tracing on.
 */

#ifndef CASH_TRACE_OPTIONS_HH
#define CASH_TRACE_OPTIONS_HH

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "common/log.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace cash::trace
{

class TraceOptions
{
  public:
    /** Extract --trace/--metrics from argv (supports both
     *  `--trace f` and `--trace=f`); argc and argv are rewritten to
     *  hold only the remaining arguments. */
    TraceOptions(int &argc, char **argv)
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&](const char *flag)
                -> std::optional<std::string> {
                std::string prefix = std::string(flag) + "=";
                if (arg.rfind(prefix, 0) == 0)
                    return arg.substr(prefix.size());
                if (arg == flag) {
                    if (i + 1 >= argc)
                        fatal("%s needs a file argument", flag);
                    return std::string(argv[++i]);
                }
                return std::nullopt;
            };
            if (auto v = value("--trace"))
                tracePath_ = *v;
            else if (auto v = value("--metrics"))
                metricsPath_ = *v;
            else
                argv[out++] = argv[i];
        }
        argc = out;
        if (tracePath_.empty() && metricsPath_.empty())
            return;
        if (!compiledIn)
            warn("built with CASH_TRACE=OFF: --trace/--metrics "
                 "output will be empty");
        session_ = std::make_unique<TraceSession>();
        session_->install();
    }

    ~TraceOptions()
    {
        if (!session_)
            return;
        session_->uninstall();
        if (!tracePath_.empty()
            && writeChromeTraceFile(tracePath_, *session_)) {
            inform("trace: wrote %s (open in ui.perfetto.dev or "
                   "chrome://tracing)",
                   tracePath_.c_str());
        }
        auto &reg = MetricsRegistry::global();
        if (!metricsPath_.empty()) {
            std::ofstream out(metricsPath_);
            if (out.is_open()) {
                reg.writeCsv(out);
                inform("trace: wrote metric summary %s",
                       metricsPath_.c_str());
            } else {
                warn("cannot open '%s' for the metric summary",
                     metricsPath_.c_str());
            }
        }
        // Summary to stderr only: stdout must stay byte-identical
        // with and without tracing.
        std::string table = reg.summaryTable();
        if (!table.empty())
            std::fputs(table.c_str(), stderr);
    }

    TraceOptions(const TraceOptions &) = delete;
    TraceOptions &operator=(const TraceOptions &) = delete;

    /** True when a session was installed for this run. */
    bool enabled() const { return session_ != nullptr; }

  private:
    std::string tracePath_;
    std::string metricsPath_;
    std::unique_ptr<TraceSession> session_;
};

} // namespace cash::trace

#endif // CASH_TRACE_OPTIONS_HH
