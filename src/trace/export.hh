/**
 * @file
 * Trace and metric exporters.
 *
 * Two output formats close the loop from instrumentation to
 * human/tool consumption:
 *
 *  - Chrome trace_event JSON (the "JSON Array Format" with a
 *    `traceEvents` wrapper object): load the file in
 *    chrome://tracing or https://ui.perfetto.dev. Each CASH track
 *    becomes one "process" (pid = track id, named via metadata
 *    events), so experiment cells appear as parallel swim lanes;
 *    counter events (QoS, b(t), cost rate) render as line tracks.
 *    Timestamps are microseconds: simulated (1 cycle = 1 ns) for
 *    runtime/fabric/cloud events, host for engine-cell spans.
 *  - Metrics CSV via common/csv.hh (one row per counter/histogram)
 *    plus a human-readable summary table.
 *
 * Output is deterministic: events are written in
 * TraceSession::drain() canonical order with fixed number
 * formatting, so two traces of the same run diff clean (minus host
 * timestamps).
 */

#ifndef CASH_TRACE_EXPORT_HH
#define CASH_TRACE_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace cash::trace
{

/** Serialize drained events + track names as Chrome trace JSON. */
void writeChromeTrace(std::ostream &out,
                      const std::vector<TraceEvent> &events,
                      const std::map<std::uint64_t, std::string>
                          &track_names);

/** Drain `session` and serialize it as Chrome trace JSON. */
void writeChromeTrace(std::ostream &out,
                      const TraceSession &session);

/**
 * writeChromeTrace into `path`; warn() and return false if the file
 * cannot be opened. Also warn()s when the session overwrote events
 * (ring wrap-around) so a truncated trace is never mistaken for a
 * complete one.
 */
bool writeChromeTraceFile(const std::string &path,
                          const TraceSession &session);

/** One Chrome-trace JSON line for an event (exposed for tests). */
std::string chromeTraceLine(const TraceEvent &ev);

} // namespace cash::trace

#endif // CASH_TRACE_EXPORT_HH
