#include "harness/eval_grid.hh"

#include <map>
#include <utility>

namespace cash::harness
{

AppModel
prepareApp(const AppModel &raw, const ExperimentParams &params)
{
    return raw.isRequestDriven() ? raw
                                 : scalePhases(raw, params.phaseScale);
}

std::vector<EvalResult>
runEvalGrid(ExperimentEngine &engine,
            const std::vector<EvalSpec> &specs, const CostModel &cost,
            const ProfileParams &profile_params)
{
    // Stage 1: one characterization per distinct (app, space).
    // The sweeps themselves fan out through the engine, so this
    // stage is already parallel across configuration points.
    std::map<std::pair<std::string, const ConfigSpace *>, AppProfile>
        profiles;
    for (const EvalSpec &spec : specs) {
        auto key = std::make_pair(spec.app.name, spec.space);
        if (profiles.count(key))
            continue;
        profiles.emplace(key, characterize(engine, spec.app,
                                           *spec.space,
                                           spec.params.fabric,
                                           spec.params.sim,
                                           profile_params));
    }

    // Stage 2: every policy run is one engine cell.
    std::vector<EvalResult> results(specs.size());
    std::vector<Cell> cells;
    cells.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const EvalSpec &spec = specs[i];
        EvalResult &slot = results[i];
        slot.appName = spec.app.name;
        slot.label = spec.label.empty() ? policyName(spec.kind)
                                        : spec.label;
        slot.profile =
            profiles.at(std::make_pair(spec.app.name, spec.space));
        CellKey key{spec.app.name, slot.label, i, spec.params.seed};
        cells.push_back(Cell{key, [&spec, &slot, &cost] {
            slot.out = runPolicy(spec.app, slot.profile, spec.kind,
                                 *spec.space, cost, spec.params);
            double hours = cost.hours(slot.out.stats.cycles);
            slot.costRate =
                hours > 0 ? slot.out.stats.cost / hours : 0.0;
        }});
    }
    engine.run(std::move(cells));
    return results;
}

} // namespace cash::harness
