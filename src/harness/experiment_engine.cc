#include "harness/experiment_engine.hh"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>

#include "common/log.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace cash::harness
{

namespace
{

/** FNV-1a over a string, with a field terminator so that adjacent
 *  fields cannot alias ({"ab","c"} vs {"a","bc"}). */
void
mixField(std::uint64_t &h, const std::string &s)
{
    constexpr std::uint64_t prime = 0x100000001b3ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= prime;
    }
    h ^= 0xffu; // terminator outside the byte alphabet's common use
    h *= prime;
}

void
mixField(std::uint64_t &h, std::uint64_t v)
{
    constexpr std::uint64_t prime = 0x100000001b3ull;
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= prime;
    }
    h ^= 0xffu;
    h *= prime;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
CellKey::str() const
{
    std::string s = subject;
    if (!variant.empty())
        s += "/" + variant;
    s += strfmt("[%llu]@%llu",
                static_cast<unsigned long long>(config),
                static_cast<unsigned long long>(seed));
    return s;
}

std::uint64_t
cellStream(const CellKey &key)
{
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    mixField(h, key.subject);
    mixField(h, key.variant);
    mixField(h, key.config);
    mixField(h, key.seed);
    // Decorrelate nearby keys through the xoshiro256** split: seed
    // a generator with the hash and fork off the cell's stream.
    return Rng(h).fork().next();
}

Rng
cellRng(const CellKey &key)
{
    return Rng(cellStream(key));
}

ExperimentEngine::ExperimentEngine(std::size_t threads)
    : pool_(threads)
{
    report_.threads = pool_.threadCount();
}

void
ExperimentEngine::run(std::vector<Cell> cells)
{
    using clock = std::chrono::steady_clock;
    const std::size_t base = report_.cells.size();
    report_.cells.resize(base + cells.size());
    std::vector<std::exception_ptr> errors(cells.size());

    auto t0 = clock::now();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        Cell &cell = cells[i];
        CellTiming &timing = report_.cells[base + i];
        timing.key = cell.key;
        std::exception_ptr &error = errors[i];
        // Track 0 is ambient (standalone emits); cells own tracks
        // 1..N in declaration order, so a drained trace has one
        // single-producer track per cell and canonical order holds
        // at any thread count (see TraceSession::drain).
        const std::uint64_t track = base + i + 1;
        pool_.submit([&cell, &timing, &error, track] {
            trace::TrackScope scope(track);
            [[maybe_unused]] double start_us = 0.0;
            if (CASH_TRACE_ON()) {
                trace::nameCurrentTrack(cell.key.str());
                start_us = trace::TraceSession::active()->hostNowUs();
            }
            auto c0 = clock::now();
            try {
                cell.fn();
            } catch (...) {
                error = std::current_exception();
            }
            timing.millis =
                std::chrono::duration<double, std::milli>(
                    clock::now() - c0)
                    .count();
            CASH_TRACE_HOST_SPAN(trace::Category::Engine, "cell",
                                 start_us, timing.millis * 1e3,
                                 {{"cell", track - 1}});
            CASH_METRIC_INC("engine.cells");
        });
    }
    pool_.wait();
    report_.wallMillis +=
        std::chrono::duration<double, std::milli>(clock::now() - t0)
            .count();

    // Deterministic propagation: first failure in declaration
    // order, regardless of which cell happened to fail first.
    for (std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

std::string
ExperimentEngine::jsonSummary(const std::string &bench_name) const
{
    std::string out = strfmt(
        "{\"bench\":\"%s\",\"threads\":%zu,\"wall_ms\":%.3f,"
        "\"cells\":[",
        jsonEscape(bench_name).c_str(), report_.threads,
        report_.wallMillis);
    for (std::size_t i = 0; i < report_.cells.size(); ++i) {
        const CellTiming &t = report_.cells[i];
        if (i)
            out += ",";
        out += strfmt("{\"subject\":\"%s\",\"variant\":\"%s\","
                      "\"config\":%llu,\"seed\":%llu,"
                      "\"ms\":%.3f}",
                      jsonEscape(t.key.subject).c_str(),
                      jsonEscape(t.key.variant).c_str(),
                      static_cast<unsigned long long>(t.key.config),
                      static_cast<unsigned long long>(t.key.seed),
                      t.millis);
    }
    out += "]}\n";
    return out;
}

void
ExperimentEngine::writeJsonSummary(const std::string &bench_name)
{
    const char *dir = std::getenv("CASH_BENCH_CSV");
    if (!dir)
        return;
    std::string path =
        std::string(dir) + "/" + bench_name + "_engine.json";
    std::ofstream file(path);
    if (!file.is_open()) {
        if (!warnedJson_)
            warn("CASH_BENCH_CSV: cannot open '%s' for the engine "
                 "summary; is the directory missing?",
                 path.c_str());
        warnedJson_ = true;
        return;
    }
    file << jsonSummary(bench_name);
}

} // namespace cash::harness
