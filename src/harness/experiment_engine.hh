/**
 * @file
 * The parallel experiment-execution layer.
 *
 * The paper's evaluation (Figs 7-10, Table III) is a grid of fully
 * independent cells — (app, policy | config, params, seed) — and
 * every bench used to walk that grid serially. ExperimentEngine
 * models each unit of evaluation work as a Cell and executes the
 * whole set on a work-stealing ThreadPool (CASH_BENCH_THREADS, or
 * hardware concurrency by default).
 *
 * Determinism contract: results are bit-identical regardless of the
 * thread count.
 *
 *  - Every cell owns its state: a fresh SSim per run, per-cell
 *    sources and policies, no mutable globals (audited: the only
 *    process-wide state in src/ is the log level and the const
 *    allApps() table).
 *  - A cell that needs randomness derives its stream from its
 *    CellKey via cellRng() — the existing xoshiro256** split — so
 *    the stream depends only on the key, never on scheduling.
 *  - run()/map() collect results by cell index and report timings
 *    in declaration order, so formatting code downstream observes
 *    the same sequence at any thread count. Exceptions are
 *    re-thrown from the first failing cell in declaration order.
 *
 * The engine records per-cell wall-clock and can append a
 * machine-readable JSON summary ({bench, threads, wall_ms, cells})
 * next to the CSV output (CASH_BENCH_CSV), giving bench_out/ a perf
 * trajectory future changes can be compared against.
 */

#ifndef CASH_HARNESS_EXPERIMENT_ENGINE_HH
#define CASH_HARNESS_EXPERIMENT_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace cash::harness
{

/**
 * Identity of one independent evaluation cell. The key both labels
 * the cell in reports and seeds its random streams.
 */
struct CellKey
{
    /** What is being evaluated (usually the application name). */
    std::string subject;
    /** Which treatment (policy, scheme, phase, variant...). */
    std::string variant;
    /** Configuration / sweep-point index within the variant. */
    std::uint64_t config = 0;
    /** Base seed of the experiment this cell belongs to. */
    std::uint64_t seed = 0;

    bool operator==(const CellKey &o) const = default;

    /** "subject/variant[config]@seed" for logs and reports. */
    std::string str() const;
};

/**
 * Derive the cell's 64-bit stream seed from its key alone. Fields
 * are mixed with explicit separators (so {"ab","c"} and {"a","bc"}
 * differ) and the result is passed through the xoshiro256** split
 * (Rng::fork) to decorrelate nearby keys.
 */
std::uint64_t cellStream(const CellKey &key);

/** An Rng positioned at the start of the cell's private stream. */
Rng cellRng(const CellKey &key);

/** One unit of evaluation work. */
struct Cell
{
    CellKey key;
    std::function<void()> fn;
};

/** Wall-clock record of one executed cell. */
struct CellTiming
{
    CellKey key;
    double millis = 0.0;
};

/** Accumulated execution record of an engine. */
struct EngineReport
{
    std::size_t threads = 0;
    /** Sum of run()-call wall times (not of cell times). */
    double wallMillis = 0.0;
    /** Per-cell wall clock, in declaration order. */
    std::vector<CellTiming> cells;
};

/**
 * Executes batches of independent cells on a shared thread pool.
 */
class ExperimentEngine
{
  public:
    /** @param threads pool size; 0 means CASH_BENCH_THREADS or
     *         hardware concurrency. */
    explicit ExperimentEngine(std::size_t threads = 0);

    std::size_t threads() const { return pool_.threadCount(); }

    /**
     * Execute every cell, in parallel, and return once all have
     * finished. Per-cell wall clock is appended to the report in
     * declaration order. If cells threw, the exception of the
     * first throwing cell (by declaration order, not completion
     * order) is re-thrown.
     */
    void run(std::vector<Cell> cells);

    /**
     * Typed fan-out: evaluate fn(i) for i in [0, n) and return the
     * results in index order. `key(i)` labels each cell for the
     * report. T must be default-constructible and movable.
     */
    template <typename T, typename Fn, typename KeyFn>
    std::vector<T>
    map(std::size_t n, Fn fn, KeyFn key)
    {
        std::vector<T> results(n);
        std::vector<Cell> cells;
        cells.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            cells.push_back(Cell{key(i), [i, &results, &fn] {
                                     results[i] = fn(i);
                                 }});
        }
        run(std::move(cells));
        return results;
    }

    /** map() with anonymous keys ("label[i]"). */
    template <typename T, typename Fn>
    std::vector<T>
    map(std::size_t n, Fn fn, const std::string &label = "cell")
    {
        return map<T>(n, std::move(fn), [&label](std::size_t i) {
            return CellKey{label, "", i, 0};
        });
    }

    const EngineReport &report() const { return report_; }

    /**
     * Serialize the report as JSON:
     * {"bench":..., "threads":..., "wall_ms":..., "cells":[...]}.
     */
    std::string jsonSummary(const std::string &bench_name) const;

    /**
     * When CASH_BENCH_CSV names a directory, write the JSON
     * summary to <dir>/<bench_name>_engine.json alongside the CSV
     * output; warn() (once per engine) if the file cannot be
     * opened. No-op when the variable is unset.
     */
    void writeJsonSummary(const std::string &bench_name);

  private:
    ThreadPool pool_;
    EngineReport report_;
    bool warnedJson_ = false;
};

} // namespace cash::harness

#endif // CASH_HARNESS_EXPERIMENT_ENGINE_HH
