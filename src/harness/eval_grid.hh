/**
 * @file
 * Declarative (app x policy) evaluation grids on ExperimentEngine.
 *
 * Every figure bench used to hand-roll the same loop: scale the
 * app's phases, run the 64-configuration oracle characterization,
 * then run each policy and derive the mean cost rate. runEvalGrid()
 * replaces that boilerplate: a bench declares its cells as
 * EvalSpecs, the grid characterizes every distinct (app, space)
 * pair exactly once — each sweep fanned out through the engine —
 * then executes all policy runs in parallel, and hands back results
 * in declaration order so formatting is identical at any thread
 * count.
 */

#ifndef CASH_HARNESS_EVAL_GRID_HH
#define CASH_HARNESS_EVAL_GRID_HH

#include <string>
#include <vector>

#include "baselines/experiment.hh"
#include "harness/experiment_engine.hh"

namespace cash::harness
{

/** One declared (app, policy) evaluation cell. */
struct EvalSpec
{
    /** Scheme label for reports; empty means policyName(kind). */
    std::string label;
    /** The application, already phase-scaled if desired (see
     *  prepareApp()). */
    AppModel app;
    PolicyKind kind = PolicyKind::Oracle;
    /** Configuration space; must outlive the grid run. */
    const ConfigSpace *space = nullptr;
    ExperimentParams params;
};

/** One executed cell, in declaration order. */
struct EvalResult
{
    std::string appName;
    std::string label;
    /** The (app, space) characterization this run used. */
    AppProfile profile;
    RunOutput out;
    /** Mean cost rate over the run, $/hr (0 if no cycles ran). */
    double costRate = 0.0;
};

/**
 * The app/scale dance shared by all benches: request-driven apps
 * run unscaled, throughput apps get their phases stretched to the
 * experiment's timescale.
 */
AppModel prepareApp(const AppModel &raw,
                    const ExperimentParams &params);

/**
 * Execute a declared grid. Characterization runs once per distinct
 * (app name, space) pair, using the fabric/sim parameters of the
 * first spec declaring the pair; policy cells then run in parallel.
 * Results are returned in the order the specs were declared.
 */
std::vector<EvalResult>
runEvalGrid(ExperimentEngine &engine, const std::vector<EvalSpec> &specs,
            const CostModel &cost, const ProfileParams &profile_params);

} // namespace cash::harness

#endif // CASH_HARNESS_EVAL_GRID_HH
