/**
 * @file
 * Machine-checked invariants for the simulator and runtime.
 *
 * The CASH evaluation leans on the structural model staying
 * conservative across millions of reconfigurations (register
 * flushes, L2 dirty-line flushes, fabric re-allocation). This header
 * provides the hooks that let the hot layers state their own
 * invariants without paying for them in release builds:
 *
 *  - CASH_INVARIANT(cond, fmt, ...) — compiled to nothing unless the
 *    build sets -DCASH_CHECK_INVARIANTS=1 (the CMake option of the
 *    same name). With checks on, a violated condition throws
 *    InvariantError carrying file/line/expression/message, so the
 *    fuzz driver can catch, shrink, and report instead of aborting.
 *  - CASH_AUDIT(cond, fmt, ...) — always-on variant for the explicit
 *    cross-layer auditors in check/audit.hh (never on a hot path).
 *  - Fault injection — named, deliberately wrong code paths
 *    (mutation tests) that exist only in checking builds; the fuzz
 *    driver enables one to prove the checker actually catches the
 *    class of bug it claims to.
 *
 * panic() is still the right tool for "this cannot happen" API
 * misuse; CASH_INVARIANT is for *algebraic* properties (conservation,
 * monotonicity, bounds) whose evaluation costs something.
 */

#ifndef CASH_CHECK_INVARIANT_HH
#define CASH_CHECK_INVARIANT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#ifndef CASH_CHECK_INVARIANTS
#define CASH_CHECK_INVARIANTS 0
#endif

namespace cash
{

/** A stated invariant of the model was violated: a bug in this
 *  library (or an injected fault proving the checker works). */
class InvariantError : public std::logic_error
{
  public:
    explicit InvariantError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** True in builds compiled with -DCASH_CHECK_INVARIANTS=1. */
constexpr bool invariantsEnabled = CASH_CHECK_INVARIANTS != 0;

/** Format and throw InvariantError (never returns). */
[[noreturn]] void
invariantFailure(const char *file, int line, const char *expr,
                 const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Deliberate bugs for mutation-testing the checker. Exactly one may
 * be armed at a time; every fault point is compiled out unless
 * CASH_CHECK_INVARIANTS is on, so release binaries contain none of
 * this machinery's branches.
 */
enum class Fault : std::uint8_t
{
    None = 0,
    /** FabricAllocator::release leaks one slice's used mark. */
    AllocatorLeakSlice,
    /** L2System::rebuildBanks halves the reported flush cycles. */
    L2FlushUndercount,
    /** RenameState::shrink drops the pushed value's survivor copy. */
    RenameDropFlush,
    /** CloudProvider keeps a departed tenant's vcore allocated
     *  (leaked holding), so tenant-held tiles no longer sum to the
     *  allocator's books. */
    ProviderLeakHolding,
    /** CloudProvider::depart drops the departing tenant's joules
     *  instead of folding them into the departed ledger, so the
     *  chip's dissipated energy no longer balances. */
    EnergyLeak,
};

/** Arm a fault (Fault::None disarms). Affects checking builds only. */
void setInjectedFault(Fault f);

/** The currently armed fault. */
Fault injectedFault();

/** Parse a fault name ("none", "alloc-leak", "l2-undercount",
 *  "rename-drop"); throws FatalError on unknown names. */
Fault faultFromName(const std::string &name);

/** The CLI name of a fault. */
const char *faultName(Fault f);

} // namespace cash

/** Always-on structural check, for the explicit auditors. */
#define CASH_AUDIT(cond, ...)                                         \
    do {                                                              \
        if (!(cond))                                                  \
            ::cash::invariantFailure(__FILE__, __LINE__, #cond,       \
                                     __VA_ARGS__);                    \
    } while (0)

#if CASH_CHECK_INVARIANTS

/** Compile-time-selectable invariant hook (hot layers). */
#define CASH_INVARIANT(cond, ...) CASH_AUDIT(cond, __VA_ARGS__)

/** True when the named fault is armed (checking builds only). */
#define CASH_FAULT_ARMED(f) (::cash::injectedFault() == (f))

#else

#define CASH_INVARIANT(cond, ...) ((void)0)
#define CASH_FAULT_ARMED(f) false

#endif // CASH_CHECK_INVARIANTS

#endif // CASH_CHECK_INVARIANT_HH
