#include "check/audit.hh"

#include <algorithm>
#include <cmath>

#include "check/invariant.hh"
#include "cloud/provider.hh"

namespace cash
{

void
auditAllocator(const FabricAllocator &alloc)
{
    const FabricGrid &grid = alloc.grid();
    std::vector<bool> slice_owned(grid.numSlices(), false);
    std::vector<bool> bank_owned(grid.numBanks(), false);

    std::uint32_t owned_slices = 0;
    std::uint32_t owned_banks = 0;
    for (VCoreId id : alloc.liveIds()) {
        const VCoreAllocation *a = alloc.find(id);
        CASH_AUDIT(a != nullptr, "live vcore %u has no allocation",
                   id);
        CASH_AUDIT(!a->slices.empty(), "vcore %u owns no Slices", id);
        for (SliceId s : a->slices) {
            CASH_AUDIT(s < grid.numSlices(),
                       "vcore %u owns out-of-grid slice %u", id, s);
            CASH_AUDIT(!slice_owned[s],
                       "slice %u owned by two vcores", s);
            slice_owned[s] = true;
            ++owned_slices;
        }
        for (BankId b : a->banks) {
            CASH_AUDIT(b < grid.numBanks(),
                       "vcore %u owns out-of-grid bank %u", id, b);
            CASH_AUDIT(!bank_owned[b], "bank %u owned by two vcores",
                       b);
            bank_owned[b] = true;
            ++owned_banks;
        }
    }

    CASH_AUDIT(alloc.freeSlices() + owned_slices == grid.numSlices(),
               "slice conservation broken: %u free + %u owned != %u",
               alloc.freeSlices(), owned_slices, grid.numSlices());
    CASH_AUDIT(alloc.freeBanks() + owned_banks == grid.numBanks(),
               "bank conservation broken: %u free + %u owned != %u",
               alloc.freeBanks(), owned_banks, grid.numBanks());
}

void
auditVCore(const VirtualCore &vc, const SimParams &params)
{
    CASH_AUDIT(vc.numSlices() >= 1, "vcore %u has no member Slices",
               vc.id());
    CASH_AUDIT(vc.rename().numSlices() == vc.numSlices(),
               "vcore %u rename tracks %u members, core has %u",
               vc.id(), vc.rename().numSlices(), vc.numSlices());

    const L2System &l2 = vc.l2();
    std::uint64_t capacity_lines =
        l2.totalSize() / params.cache.blockSize;
    CASH_AUDIT(l2.dirtyLines() <= capacity_lines,
               "vcore %u L2 reports %llu dirty lines in a %llu-line "
               "cache", vc.id(),
               static_cast<unsigned long long>(l2.dirtyLines()),
               static_cast<unsigned long long>(capacity_lines));
    CASH_AUDIT(l2.misses() <= l2.accesses(),
               "vcore %u L2 misses exceed accesses", vc.id());

    VCoreMeta meta = vc.meta();
    CASH_AUDIT(meta.clock == vc.now(), "vcore %u meta clock skewed",
               vc.id());
    // Member counters of removed Slices leave with them, so the
    // per-member sum is a lower bound of the lifetime aggregate.
    InstCount member_committed = 0;
    for (std::uint32_t m = 0; m < vc.numSlices(); ++m)
        member_committed += vc.counters(m).committedInsts;
    CASH_AUDIT(member_committed <= meta.totalCommitted,
               "vcore %u member commits exceed the aggregate",
               vc.id());

    // Estimated-vs-detailed bookkeeping: full simulation must never
    // report estimated work, and sampled simulation must keep the
    // estimate a subset of the totals it contributed to.
    if (!vc.samplingEnabled()) {
        CASH_AUDIT(meta.estimatedInsts == 0 && meta.ffCycles == 0,
                   "vcore %u reports estimated work (%llu insts, "
                   "%llu cycles) in full simulation", vc.id(),
                   static_cast<unsigned long long>(
                       meta.estimatedInsts),
                   static_cast<unsigned long long>(meta.ffCycles));
    } else {
        CASH_AUDIT(meta.estimatedInsts <= meta.totalCommitted,
                   "vcore %u estimated more instructions than it "
                   "committed", vc.id());
        CASH_AUDIT(meta.ffCycles <= meta.clock,
                   "vcore %u fast-forwarded more cycles than "
                   "elapsed", vc.id());
        const SliceController *ctl = vc.sampler();
        CASH_AUDIT(ctl != nullptr,
                   "vcore %u sampling enabled without a controller",
                   vc.id());
        const SamplerStats &st = ctl->stats();
        CASH_AUDIT(st.ffInsts == meta.estimatedInsts,
                   "vcore %u sampler ledger (%llu) diverges from "
                   "meta estimate (%llu)", vc.id(),
                   static_cast<unsigned long long>(st.ffInsts),
                   static_cast<unsigned long long>(
                       meta.estimatedInsts));
        CASH_AUDIT(st.ffCycles == meta.ffCycles,
                   "vcore %u sampler cycle ledger diverges",
                   vc.id());
    }
}

void
auditSim(const SSim &sim, const std::vector<VCoreId> &live)
{
    auditAllocator(sim.allocator());
    for (VCoreId id : live) {
        const VirtualCore &vc = sim.vcore(id);
        auditVCore(vc, sim.params());

        const VCoreAllocation *a = sim.allocator().find(id);
        CASH_AUDIT(a != nullptr,
                   "vcore %u live in SSim but unknown to the "
                   "allocator", id);
        CASH_AUDIT(a->slices == vc.sliceIds(),
                   "vcore %u Slice membership diverges from the "
                   "allocator's grant", id);
        CASH_AUDIT(a->banks.size() == vc.numBanks(),
                   "vcore %u holds %zu banks, allocator granted %u",
                   id, a->banks.size(), vc.numBanks());
    }
}

void
auditProvider(const cloud::CloudProvider &provider)
{
    const SSim &sim = provider.chip();
    const FabricAllocator &alloc = sim.allocator();
    const FabricGrid &grid = alloc.grid();

    // --- Walk the tenant ledger once, classifying states and
    // summing active holdings.
    std::vector<VCoreId> live;
    std::uint64_t queued = 0, active = 0, departed = 0, turned = 0;
    std::uint64_t migrated = 0;
    std::uint32_t tenant_slices = 0, tenant_banks = 0;
    for (const auto &tp : provider.tenants()) {
        const cloud::Tenant &t = *tp;
        switch (t.state) {
          case cloud::TenantState::Queued:
            ++queued;
            CASH_AUDIT(t.vcore == invalidVCore,
                       "queued tenant %u already holds vcore %u",
                       t.id, t.vcore);
            break;
          case cloud::TenantState::Active: {
            ++active;
            CASH_AUDIT(t.vcore != invalidVCore,
                       "active tenant %u holds no vcore", t.id);
            const VCoreAllocation *a = alloc.find(t.vcore);
            CASH_AUDIT(a != nullptr,
                       "active tenant %u's vcore %u is unknown to "
                       "the allocator", t.id, t.vcore);
            tenant_slices +=
                static_cast<std::uint32_t>(a->slices.size());
            tenant_banks +=
                static_cast<std::uint32_t>(a->banks.size());
            live.push_back(t.vcore);
            break;
          }
          case cloud::TenantState::Departed:
            ++departed;
            break;
          case cloud::TenantState::Rejected:
            ++turned;
            break;
          case cloud::TenantState::Migrated:
            ++migrated;
            CASH_AUDIT(t.vcore == invalidVCore,
                       "migrated tenant %u still holds vcore %u",
                       t.id, t.vcore);
            break;
        }
    }
    std::vector<VCoreId> sorted = live;
    std::sort(sorted.begin(), sorted.end());
    CASH_AUDIT(std::adjacent_find(sorted.begin(), sorted.end())
                   == sorted.end(),
               "two active tenants share one vcore");

    auditSim(sim, live);

    // --- Tile conservation: what tenants hold, plus the reserved
    // runtime Slice, is exactly what the allocator handed out. A
    // departed tenant whose vcore was never released surfaces here.
    std::uint32_t owned_slices = grid.numSlices() - alloc.freeSlices();
    std::uint32_t owned_banks = grid.numBanks() - alloc.freeBanks();
    CASH_AUDIT(tenant_slices + 1 == owned_slices,
               "tenant-held Slices (%u) + the runtime Slice diverge "
               "from the allocator's books (%u owned)",
               tenant_slices, owned_slices);
    CASH_AUDIT(tenant_banks == owned_banks,
               "tenant-held banks (%u) diverge from the allocator's "
               "books (%u owned)", tenant_banks, owned_banks);

    // --- Lifecycle algebra.
    const cloud::ProviderStats &st = provider.stats();
    CASH_AUDIT(st.arrivals + st.migratedIn
                   == provider.tenants().size(),
               "%llu arrivals + %llu migrate-ins but %zu tenants in "
               "the ledger",
               static_cast<unsigned long long>(st.arrivals),
               static_cast<unsigned long long>(st.migratedIn),
               provider.tenants().size());
    CASH_AUDIT(st.admitted == active + departed + migrated,
               "%llu admissions != %llu active + %llu departed + "
               "%llu migrated out",
               static_cast<unsigned long long>(st.admitted),
               static_cast<unsigned long long>(active),
               static_cast<unsigned long long>(departed),
               static_cast<unsigned long long>(migrated));
    CASH_AUDIT(st.migratedOut == migrated,
               "migrate-out counter diverges from the ledger");
    CASH_AUDIT(st.departed == departed,
               "departure counter diverges from the ledger");
    CASH_AUDIT(st.rejected + st.abandoned == turned,
               "rejection counters diverge from the ledger");
    CASH_AUDIT(provider.queue().size() == queued,
               "queue holds %zu ids but %llu tenants are Queued",
               provider.queue().size(),
               static_cast<unsigned long long>(queued));
    CASH_AUDIT(provider.queue().size()
                   <= provider.params().admission.queueLimit,
               "queue depth %zu exceeds the admission bound %u",
               provider.queue().size(),
               provider.params().admission.queueLimit);

    // --- Billing: an active tenant's bill (plus compaction stall
    // the provider absorbed on its behalf) must equal the priced
    // integral of its actual Slice/bank holdings — the runtime
    // bills at granted configurations, so partial grants must not
    // let the books drift. A migrated-in tenant carries its prior
    // shards' integral (migratedHoldings, stall included) on the
    // holdings side and its prior bill inside bill(), so the same
    // identity holds across any number of hops.
    const CostModel &cm = provider.params().pricing;
    for (const auto &tp : provider.tenants()) {
        const cloud::Tenant &t = *tp;
        if (t.state != cloud::TenantState::Active)
            continue;
        const VirtualCore &vc = sim.vcore(t.vcore);
        double holdings = t.migratedHoldings
            + cm.sliceRate() * cm.hours(vc.sliceCycles())
            + cm.bankRate() * cm.hours(vc.bankCycles());
        double billed = t.bill() + t.unbilledCompactCost;
        double tol = 1e-9 + 1e-6 * std::max(holdings, billed);
        CASH_AUDIT(std::fabs(billed - holdings) <= tol,
                   "tenant %u billed $%.9f but its integrated "
                   "holdings cost $%.9f", t.id, billed, holdings);
    }

    // --- Arbitration: a compaction is only ever triggered by a
    // grant that went through.
    const cloud::ArbiterStats &as = provider.arbiter().stats();
    CASH_AUDIT(as.compactions <= as.fullGrants + as.partialGrants,
               "%llu compactions exceed %llu granted expansions",
               static_cast<unsigned long long>(as.compactions),
               static_cast<unsigned long long>(
                   as.fullGrants + as.partialGrants));

    auditEnergy(provider);
}

void
auditEnergy(const cloud::CloudProvider &provider)
{
    const SSim &sim = provider.chip();
    const cloud::ProviderStats &st = provider.stats();

    double active_synced = 0.0;
    for (const auto &tp : provider.tenants()) {
        const cloud::Tenant &t = *tp;
        // Watermark identity (any state): the books minus the
        // carried joules are exactly what this chip's meter has
        // been synced for. Both sides only ever move together
        // inside syncEnergy, so this holds at every instant.
        double local = t.energyAcc - t.migratedJoules;
        double tol = 1e-9
            + 1e-6 * std::max(std::fabs(local), t.energySynced);
        CASH_AUDIT(std::fabs(local - t.energySynced) <= tol,
                   "tenant %u books %.12g J local but synced "
                   "watermark %.12g J", t.id, local, t.energySynced);
        if (t.state != cloud::TenantState::Active)
            continue;
        active_synced += t.energySynced;

        // The live meter is monotone: it can run ahead of the
        // watermark (joules not yet synced) but never behind it.
        const VirtualCore &vc = sim.vcore(t.vcore);
        double metered = vc.energyJoules();
        CASH_AUDIT(metered + tol >= t.energySynced,
                   "tenant %u meter reads %.12g J below its synced "
                   "watermark %.12g J", t.id, metered,
                   t.energySynced);

        // The meter's total decomposes exactly: dissipated ==
        // dynamic + leakage == Σ per-structure activity energies.
        double dyn = vc.dynamicJoules();
        double leak = vc.leakageJoules();
        EnergyBreakdown bd = vc.energyBreakdown();
        double parts = bd.total();
        double mtol = 1e-9 + 1e-6 * std::max(metered, parts);
        CASH_AUDIT(std::fabs(metered - (dyn + leak)) <= mtol,
                   "tenant %u meter %.12g J != dynamic %.12g + "
                   "leakage %.12g", t.id, metered, dyn, leak);
        CASH_AUDIT(std::fabs(metered - parts) <= mtol,
                   "tenant %u meter %.12g J != per-structure sum "
                   "%.12g J", t.id, metered, parts);
    }

    // Global conservation: every tenant-attributed joule this chip
    // metered is on an active watermark, folded into a final bill,
    // or serialized off-chip. Fault::EnergyLeak breaks this.
    double rhs = active_synced + st.departedJoules
        + st.exportedJoules;
    double gtol = 1e-9 + 1e-6 * std::max(st.dissipatedJoules, rhs);
    CASH_AUDIT(std::fabs(st.dissipatedJoules - rhs) <= gtol,
               "dissipated %.12g J but active watermarks %.12g + "
               "departed %.12g + exported %.12g J",
               st.dissipatedJoules, active_synced, st.departedJoules,
               st.exportedJoules);
    CASH_AUDIT(st.overheadJoules >= 0.0,
               "negative provider overhead energy %.12g J",
               st.overheadJoules);
}

} // namespace cash
