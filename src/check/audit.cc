#include "check/audit.hh"

#include <algorithm>

#include "check/invariant.hh"

namespace cash
{

void
auditAllocator(const FabricAllocator &alloc)
{
    const FabricGrid &grid = alloc.grid();
    std::vector<bool> slice_owned(grid.numSlices(), false);
    std::vector<bool> bank_owned(grid.numBanks(), false);

    std::uint32_t owned_slices = 0;
    std::uint32_t owned_banks = 0;
    for (VCoreId id : alloc.liveIds()) {
        const VCoreAllocation *a = alloc.find(id);
        CASH_AUDIT(a != nullptr, "live vcore %u has no allocation",
                   id);
        CASH_AUDIT(!a->slices.empty(), "vcore %u owns no Slices", id);
        for (SliceId s : a->slices) {
            CASH_AUDIT(s < grid.numSlices(),
                       "vcore %u owns out-of-grid slice %u", id, s);
            CASH_AUDIT(!slice_owned[s],
                       "slice %u owned by two vcores", s);
            slice_owned[s] = true;
            ++owned_slices;
        }
        for (BankId b : a->banks) {
            CASH_AUDIT(b < grid.numBanks(),
                       "vcore %u owns out-of-grid bank %u", id, b);
            CASH_AUDIT(!bank_owned[b], "bank %u owned by two vcores",
                       b);
            bank_owned[b] = true;
            ++owned_banks;
        }
    }

    CASH_AUDIT(alloc.freeSlices() + owned_slices == grid.numSlices(),
               "slice conservation broken: %u free + %u owned != %u",
               alloc.freeSlices(), owned_slices, grid.numSlices());
    CASH_AUDIT(alloc.freeBanks() + owned_banks == grid.numBanks(),
               "bank conservation broken: %u free + %u owned != %u",
               alloc.freeBanks(), owned_banks, grid.numBanks());
}

void
auditVCore(const VirtualCore &vc, const SimParams &params)
{
    CASH_AUDIT(vc.numSlices() >= 1, "vcore %u has no member Slices",
               vc.id());
    CASH_AUDIT(vc.rename().numSlices() == vc.numSlices(),
               "vcore %u rename tracks %u members, core has %u",
               vc.id(), vc.rename().numSlices(), vc.numSlices());

    const L2System &l2 = vc.l2();
    std::uint64_t capacity_lines =
        l2.totalSize() / params.cache.blockSize;
    CASH_AUDIT(l2.dirtyLines() <= capacity_lines,
               "vcore %u L2 reports %llu dirty lines in a %llu-line "
               "cache", vc.id(),
               static_cast<unsigned long long>(l2.dirtyLines()),
               static_cast<unsigned long long>(capacity_lines));
    CASH_AUDIT(l2.misses() <= l2.accesses(),
               "vcore %u L2 misses exceed accesses", vc.id());

    VCoreMeta meta = vc.meta();
    CASH_AUDIT(meta.clock == vc.now(), "vcore %u meta clock skewed",
               vc.id());
    // Member counters of removed Slices leave with them, so the
    // per-member sum is a lower bound of the lifetime aggregate.
    InstCount member_committed = 0;
    for (std::uint32_t m = 0; m < vc.numSlices(); ++m)
        member_committed += vc.counters(m).committedInsts;
    CASH_AUDIT(member_committed <= meta.totalCommitted,
               "vcore %u member commits exceed the aggregate",
               vc.id());
}

void
auditSim(const SSim &sim, const std::vector<VCoreId> &live)
{
    auditAllocator(sim.allocator());
    for (VCoreId id : live) {
        const VirtualCore &vc = sim.vcore(id);
        auditVCore(vc, sim.params());

        const VCoreAllocation *a = sim.allocator().find(id);
        CASH_AUDIT(a != nullptr,
                   "vcore %u live in SSim but unknown to the "
                   "allocator", id);
        CASH_AUDIT(a->slices == vc.sliceIds(),
                   "vcore %u Slice membership diverges from the "
                   "allocator's grant", id);
        CASH_AUDIT(a->banks.size() == vc.numBanks(),
                   "vcore %u holds %zu banks, allocator granted %u",
                   id, a->banks.size(), vc.numBanks());
    }
}

} // namespace cash
