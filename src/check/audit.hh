/**
 * @file
 * Cross-layer structural auditors.
 *
 * Where CASH_INVARIANT hooks live *inside* a component and check its
 * own algebra, these auditors stand outside and check that separate
 * layers agree with each other — the fabric allocator's ownership
 * bitmap against its live allocations, a virtual core's membership
 * against what the allocator thinks it granted, the L2's dirty-line
 * census against its capacity. They are always compiled in (they run
 * only when explicitly called — from tests and from the fuzz driver
 * after every operation) and throw InvariantError on violation.
 */

#ifndef CASH_CHECK_AUDIT_HH
#define CASH_CHECK_AUDIT_HH

#include <vector>

#include "fabric/allocator.hh"
#include "sim/ssim.hh"

namespace cash::cloud
{
class CloudProvider;
}

namespace cash
{

/**
 * Allocator conservation: every tile owned by exactly one live
 * vcore or free, ownership bitmap exactly mirrors the live set, and
 * free + allocated == grid totals.
 */
void auditAllocator(const FabricAllocator &alloc);

/**
 * Virtual-core internal agreement: rename membership matches the
 * member-Slice count, the L2 census fits its capacity, aggregate
 * counters are conservative sums of the member counters.
 */
void auditVCore(const VirtualCore &vc, const SimParams &params);

/**
 * Whole-chip agreement: allocator conservation, plus every live
 * vcore's Slice/bank membership byte-identical to the allocator's
 * record of what it granted, plus per-vcore audits.
 *
 * @param live the vcore ids the caller believes are live
 */
void auditSim(const SSim &sim, const std::vector<VCoreId> &live);

/**
 * Provider/chip agreement for the multi-tenant cloud layer:
 *
 *  - tile conservation: active tenants' holdings plus the reserved
 *    runtime Slice are exactly the allocator's books (a leaked
 *    holding on departure fails here);
 *  - lifecycle algebra: arrivals == tenants ever created, admitted
 *    == active + departed, rejected + abandoned == turned away, the
 *    queue holds exactly the Queued tenants and respects its bound;
 *  - billing: each active tenant's bill plus provider-absorbed
 *    compaction stall equals the cost of its vcore's integrated
 *    Slice/bank holdings;
 *  - arbitration: compactions never exceed granted expansions.
 *
 * Includes a full auditSim() over the active tenants' vcores and an
 * auditEnergy() pass.
 */
void auditProvider(const cloud::CloudProvider &provider);

/**
 * Energy conservation for the cloud layer:
 *
 *  - per tenant (any state): the books minus the carried joules are
 *    exactly the chip-local synced watermark
 *    (energyAcc - migratedJoules == energySynced);
 *  - per active tenant: the live meter never reads below the
 *    watermark, and the meter's total decomposes exactly into
 *    dynamic + leakage and into the per-structure breakdown sum;
 *  - globally: every joule the chip metered for a tenant is either
 *    on an active tenant's watermark, folded into a final bill, or
 *    serialized off-chip by a migration
 *    (dissipatedJoules == Σ_active energySynced
 *                        + departedJoules + exportedJoules).
 *
 * Fault::EnergyLeak (a dropped departed-joules fold) fails the
 * global identity. Called from auditProvider(), so every fuzz/test
 * call site exercises it automatically.
 */
void auditEnergy(const cloud::CloudProvider &provider);

} // namespace cash

#endif // CASH_CHECK_AUDIT_HH
