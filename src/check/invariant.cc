#include "check/invariant.hh"

#include <cstdarg>

#include "common/log.hh"

namespace cash
{

namespace
{
Fault armedFault = Fault::None;
} // namespace

void
invariantFailure(const char *file, int line, const char *expr,
                 const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    throw InvariantError(strfmt("invariant violated at %s:%d: %s — %s",
                                file, line, expr, msg.c_str()));
}

void
setInjectedFault(Fault f)
{
    armedFault = f;
}

Fault
injectedFault()
{
    return armedFault;
}

Fault
faultFromName(const std::string &name)
{
    if (name == "none")
        return Fault::None;
    if (name == "alloc-leak")
        return Fault::AllocatorLeakSlice;
    if (name == "l2-undercount")
        return Fault::L2FlushUndercount;
    if (name == "rename-drop")
        return Fault::RenameDropFlush;
    if (name == "provider-leak")
        return Fault::ProviderLeakHolding;
    if (name == "energy-leak")
        return Fault::EnergyLeak;
    fatal("unknown fault '%s' (try alloc-leak, l2-undercount, "
          "rename-drop, provider-leak, energy-leak)", name.c_str());
}

const char *
faultName(Fault f)
{
    switch (f) {
      case Fault::None: return "none";
      case Fault::AllocatorLeakSlice: return "alloc-leak";
      case Fault::L2FlushUndercount: return "l2-undercount";
      case Fault::RenameDropFlush: return "rename-drop";
      case Fault::ProviderLeakHolding: return "provider-leak";
      case Fault::EnergyLeak: return "energy-leak";
    }
    return "?";
}

} // namespace cash
