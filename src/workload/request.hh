/**
 * @file
 * Open-loop request-stream workloads (apache, mailserver).
 *
 * Requests arrive on a non-homogeneous Poisson process whose rate
 * oscillates sinusoidally (the paper condenses a diurnal Wikipedia-
 * like load into fast oscillations for Fig 9). Each request is a
 * burst of instructions drawn from a stationary mix; the last
 * instruction is tagged endOfRequest so the virtual core can account
 * per-request latency (queueing + service). When the queue is empty
 * the source reports IdleUntil the next arrival.
 */

#ifndef CASH_WORKLOAD_REQUEST_HH
#define CASH_WORKLOAD_REQUEST_HH

#include <cstdint>
#include <deque>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/isa.hh"
#include "workload/phase.hh"
#include "workload/trace_gen.hh"

namespace cash
{

/**
 * Parameters of an open-loop request stream.
 */
struct RequestStreamParams
{
    /** Mean arrival rate, requests per million cycles. */
    double baseRatePerMcycle = 300.0;
    /** Sinusoidal modulation amplitude as a fraction of base
     *  rate, in [0, 1). 0 = constant-rate Poisson. */
    double amplitude = 0.0;
    /** Oscillation period in cycles. */
    Cycle period = 100'000'000;
    /** Mean instructions per request. */
    InstCount meanInstsPerRequest = 20'000;
    /** Minimum instructions per request. */
    InstCount minInstsPerRequest = 500;
    /** Instruction mix inside requests (lengthInsts ignored). */
    PhaseParams mix;
};

/**
 * The arrival process + per-request burst generator.
 */
class RequestSource : public InstSource
{
  public:
    RequestSource(const RequestStreamParams &params,
                  std::uint64_t seed);

    FetchResult next(Cycle now) override;
    void onCommit(const MicroOp &op, Cycle commit_cycle) override;

    /** Instantaneous arrival rate at a cycle (per Mcycle). */
    double rateAt(Cycle t) const;

    std::uint64_t arrivals() const { return arrivals_; }
    std::uint64_t completed() const { return completed_; }
    /** Completed-request latency statistics (cycles). */
    const RunningStat &latency() const { return latency_; }
    /** Requests currently queued or in service. */
    std::uint64_t
    backlog() const override
    {
        return queue_.size() + (inRequest_ ? 1 : 0);
    }

  private:
    /** Extend the arrival schedule to cover cycle t. */
    void generateArrivalsUpTo(Cycle t);
    void startNextRequest();

    RequestStreamParams params_;
    Rng rng_;
    PhasedTraceSource body_;

    std::deque<Cycle> queue_;   ///< arrival cycles of pending reqs
    Cycle nextArrival_ = 0;
    bool arrivalPrimed_ = false;

    bool inRequest_ = false;
    InstCount burstLeft_ = 0;
    Cycle activeArrival_ = 0;
    RequestId nextRequestId_ = 0;

    std::uint64_t arrivals_ = 0;
    std::uint64_t completed_ = 0;
    RunningStat latency_;
};

} // namespace cash

#endif // CASH_WORKLOAD_REQUEST_HH
