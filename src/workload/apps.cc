#include "workload/apps.hh"

#include "common/log.hh"

namespace cash
{

namespace
{

/** Convenience builder for one phase. */
PhaseParams
phase(std::string name, double ilp, double mem, std::uint64_t ws,
      double seq, double branch_frac, double branch_bias,
      double fp = 0.05, InstCount length = 400'000)
{
    PhaseParams p;
    p.name = std::move(name);
    p.ilpMeanDist = ilp;
    p.memFrac = mem;
    p.workingSet = ws;
    p.seqFrac = seq;
    p.branchFrac = branch_frac;
    p.branchBias = branch_bias;
    p.fpFrac = fp;
    p.lengthInsts = length;
    return p;
}

/** Assign distinct working-set bases so phase transitions churn the
 *  caches realistically; share_group lets phases share data. */
void
layoutDataBases(std::vector<PhaseParams> &phases)
{
    for (std::size_t i = 0; i < phases.size(); ++i)
        phases[i].dataBase = static_cast<Addr>(i) * 64 * miB;
}

std::vector<AppModel>
buildApps()
{
    std::vector<AppModel> apps;

    // ---------------- apache: oscillating request stream ---------
    {
        AppModel a;
        a.name = "apache";
        a.qosKind = QosKind::RequestLatency;
        a.seed = 101;
        a.request.baseRatePerMcycle = 12.0;
        a.request.amplitude = 0.75;
        a.request.period = 120'000'000;
        a.request.meanInstsPerRequest = 16'000;
        a.request.minInstsPerRequest = 2'000;
        a.request.mix = phase("serve", 5.0, 0.30, 1 * miB, 0.5,
                              0.17, 0.85);
        apps.push_back(std::move(a));
    }

    // ---------------- astar: search + map phases -----------------
    {
        AppModel a;
        a.name = "astar";
        a.seed = 102;
        a.phases = {
            phase("pathfind", 3.5, 0.35, 1 * miB, 0.15, 0.18, 0.80),
            phase("mapload", 8.0, 0.40, 4 * miB, 0.70, 0.08, 0.93),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    // ---------------- bzip: compress / sort / huffman ------------
    {
        AppModel a;
        a.name = "bzip";
        a.seed = 103;
        a.phases = {
            phase("compress", 5.0, 0.32, 3 * miB, 0.55, 0.12, 0.88),
            phase("sort", 3.0, 0.38, 768 * kiB, 0.10, 0.15, 0.78),
            phase("huffman", 2.5, 0.22, 96 * kiB, 0.35, 0.22, 0.75),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    // ---------------- ferret: PARSEC similarity pipeline ---------
    {
        AppModel a;
        a.name = "ferret";
        a.seed = 104;
        a.phases = {
            phase("extract", 30.0, 0.25, 512 * kiB, 0.60, 0.06,
                  0.95, 0.40),
            phase("index", 6.0, 0.42, 6 * miB, 0.20, 0.10, 0.87),
            phase("rank", 10.0, 0.30, 2 * miB, 0.45, 0.08, 0.92,
                  0.30),
            phase("output", 3.0, 0.20, 64 * kiB, 0.70, 0.18, 0.85),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    // ---------------- gcc: parse / optimize / regalloc / emit ----
    {
        AppModel a;
        a.name = "gcc";
        a.seed = 105;
        a.phases = {
            phase("parse", 3.0, 0.28, 512 * kiB, 0.25, 0.22, 0.78),
            phase("optimize", 5.0, 0.35, 2 * miB, 0.20, 0.14, 0.84),
            phase("regalloc", 4.0, 0.33, 1 * miB, 0.15, 0.17, 0.80),
            phase("emit", 6.0, 0.26, 256 * kiB, 0.65, 0.12, 0.90),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    // ---------------- h264ref: reference encoder -----------------
    {
        AppModel a;
        a.name = "h264ref";
        a.seed = 106;
        a.phases = {
            phase("me_full", 20.0, 0.36, 3 * miB, 0.55, 0.10, 0.90),
            phase("intra", 36.0, 0.28, 256 * kiB, 0.75, 0.06, 0.95,
                  0.20),
            phase("cavlc", 2.8, 0.20, 128 * kiB, 0.30, 0.24, 0.74),
            phase("interp", 26.0, 0.40, 1536 * kiB, 0.60, 0.07,
                  0.93, 0.25),
            phase("rdopt", 6.0, 0.30, 2 * miB, 0.35, 0.15, 0.83),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    // ---------------- hmmer: compute-dense profile HMM -----------
    {
        AppModel a;
        a.name = "hmmer";
        a.seed = 107;
        a.phases = {
            phase("viterbi", 64.0, 0.24, 192 * kiB, 0.60, 0.05,
                  0.97, 0.10, 800'000),
            phase("postproc", 24.0, 0.28, 384 * kiB, 0.50, 0.09,
                  0.93, 0.08),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    // ---------------- lib (libquantum): streaming ----------------
    {
        AppModel a;
        a.name = "lib";
        a.seed = 108;
        a.phases = {
            phase("toffoli", 44.0, 0.44, 16 * miB, 0.90, 0.05,
                  0.97, 0.02, 800'000),
            phase("sigma", 30.0, 0.40, 16 * miB, 0.85, 0.06, 0.96,
                  0.02),
        };
        // Both phases stream the same register file.
        for (auto &p : a.phases)
            p.dataBase = 0;
        apps.push_back(std::move(a));
    }

    // ---------------- mailserver (postal) ------------------------
    {
        AppModel a;
        a.name = "mailserver";
        a.qosKind = QosKind::RequestLatency;
        a.seed = 109;
        a.request.baseRatePerMcycle = 35.0;
        a.request.amplitude = 0.30;
        a.request.period = 80'000'000;
        a.request.meanInstsPerRequest = 6'000;
        a.request.minInstsPerRequest = 800;
        a.request.mix = phase("smtp", 3.5, 0.26, 256 * kiB, 0.40,
                              0.20, 0.82);
        apps.push_back(std::move(a));
    }

    // ---------------- mcf: pointer-chasing network simplex -------
    {
        AppModel a;
        a.name = "mcf";
        a.seed = 110;
        a.phases = {
            phase("simplex", 2.2, 0.45, 24 * miB, 0.05, 0.12, 0.82,
                  0.0, 600'000),
            phase("pricing", 3.5, 0.40, 4 * miB, 0.25, 0.10, 0.86),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    // ---------------- omnetpp: discrete event simulation ---------
    {
        AppModel a;
        a.name = "omnetpp";
        a.seed = 111;
        a.phases = {
            phase("events", 3.0, 0.36, 2560 * kiB, 0.10, 0.18,
                  0.80),
            phase("messages", 4.0, 0.32, 768 * kiB, 0.25, 0.15,
                  0.83),
            phase("stats", 6.0, 0.25, 128 * kiB, 0.55, 0.10, 0.90),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    // ---------------- sjeng: chess search ------------------------
    {
        AppModel a;
        a.name = "sjeng";
        a.seed = 112;
        a.phases = {
            phase("search", 3.0, 0.24, 384 * kiB, 0.15, 0.22, 0.68),
            phase("eval", 5.0, 0.28, 1280 * kiB, 0.20, 0.16, 0.76),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    // ---------------- x264: ten distinct phases (Fig 1) ----------
    {
        AppModel a;
        a.name = "x264";
        a.seed = 113;
        a.phases = {
            phase("motion_est", 22.0, 0.35, 2 * miB, 0.60, 0.12,
                  0.90),
            phase("dct", 48.0, 0.25, 256 * kiB, 0.80, 0.05, 0.97,
                  0.30),
            phase("cabac", 2.5, 0.20, 128 * kiB, 0.30, 0.25, 0.72),
            phase("deblock", 8.0, 0.40, 1 * miB, 0.50, 0.10, 0.88),
            phase("subpel", 26.0, 0.30, 4 * miB, 0.40, 0.08, 0.92),
            phase("quant", 40.0, 0.25, 192 * kiB, 0.70, 0.06, 0.95,
                  0.20),
            phase("ratectl", 4.0, 0.15, 64 * kiB, 0.45, 0.20, 0.80),
            phase("lookahead", 18.0, 0.35, 6 * miB, 0.30, 0.09,
                  0.90),
            phase("mc", 30.0, 0.45, 1536 * kiB, 0.65, 0.07, 0.93),
            phase("setup", 6.0, 0.20, 512 * kiB, 0.50, 0.14, 0.86),
        };
        layoutDataBases(a.phases);
        apps.push_back(std::move(a));
    }

    return apps;
}

} // namespace

const std::vector<AppModel> &
allApps()
{
    static const std::vector<AppModel> apps = buildApps();
    return apps;
}

const AppModel &
appByName(std::string_view name)
{
    for (const AppModel &app : allApps()) {
        if (app.name == name)
            return app;
    }
    fatal("unknown application '%.*s'",
          static_cast<int>(name.size()), name.data());
}

std::unique_ptr<InstSource>
makeSource(const AppModel &app, std::uint64_t seed_override)
{
    std::uint64_t seed = seed_override ? seed_override : app.seed;
    if (app.isRequestDriven())
        return std::make_unique<RequestSource>(app.request, seed);
    return std::make_unique<PhasedTraceSource>(app.phases, seed,
                                               true, 0);
}

} // namespace cash
