#include "workload/trace_gen.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace cash
{

PhasedTraceSource::PhasedTraceSource(std::vector<PhaseParams> phases,
                                     std::uint64_t seed, bool loop,
                                     InstCount total_insts)
    : phases_(std::move(phases)), rng_(seed), loop_(loop),
      totalInsts_(total_insts)
{
    if (phases_.empty())
        fatal("PhasedTraceSource needs at least one phase");
    for (const PhaseParams &p : phases_) {
        if (p.lengthInsts == 0)
            fatal("phase '%s' has zero length", p.name.c_str());
        if (p.ilpMeanDist < 1.0)
            fatal("phase '%s' has ilpMeanDist < 1", p.name.c_str());
        if (p.workingSet < 64)
            fatal("phase '%s' working set too small", p.name.c_str());
    }
    enterPhase(0);
}

void
PhasedTraceSource::enterPhase(std::uint32_t idx)
{
    phaseIdx_ = idx;
    phaseEmitted_ = 0;
    const PhaseParams &p = phases_[idx];

    // Phase-deterministic branch sites: the same phase re-entered
    // on a later lap presents the same static branches. A fraction
    // of sites are loop-style (deterministic taken/not-taken period,
    // learnable by history-based prediction); the rest are
    // data-dependent (i.i.d. with a per-site bias, where prediction
    // accuracy is capped by the bias itself). Higher phase
    // branchBias means more loop sites and stronger biases.
    Rng bias_rng(0x5eedu + 0x9e37u * idx);
    double loop_frac = std::clamp((p.branchBias - 0.65) / 0.35,
                                  0.0, 0.95);
    branchBias_.assign(p.staticBranches, 0.0);
    loopPeriod_.assign(p.staticBranches, 0);
    loopCount_.assign(p.staticBranches, 0);
    for (std::size_t s = 0; s < branchBias_.size(); ++s) {
        if (bias_rng.nextBool(loop_frac)) {
            loopPeriod_[s] = 4 + static_cast<std::uint32_t>(
                bias_rng.nextBounded(28));
        } else {
            double jitter = (bias_rng.nextDouble() - 0.5) * 0.16;
            branchBias_[s] =
                std::clamp(p.branchBias + jitter, 0.5, 0.995);
        }
    }

    codeBase_ = 0x1000;
    pc_ = codeBase_;
    streamAddr_ = p.dataBase;
}

MicroOp
PhasedTraceSource::genInst()
{
    const PhaseParams &p = phases_[phaseIdx_];
    MicroOp op;

    double u = rng_.nextDouble();
    if (u < p.branchFrac) {
        op.op = OpClass::Branch;
    } else if (u < p.branchFrac + p.memFrac) {
        op.op = rng_.nextBool(p.storeFrac) ? OpClass::Store
                                           : OpClass::Load;
    } else {
        op.op = rng_.nextBool(p.fpFrac) ? OpClass::FpAlu
                                        : OpClass::IntAlu;
    }

    // Dataflow: dependence distances with the phase's ILP profile.
    auto sample_dist = [&]() -> std::uint16_t {
        double d = 1.0 + rng_.nextExponential(
            1.0 / std::max(0.25, p.ilpMeanDist - 1.0));
        return static_cast<std::uint16_t>(
            std::clamp(d, 1.0, 900.0));
    };
    op.srcDist1 = sample_dist();
    if (rng_.nextBool(p.twoSrcFrac))
        op.srcDist2 = sample_dist();

    // Destination register for value-producing ops.
    if (op.op == OpClass::IntAlu || op.op == OpClass::FpAlu
        || op.op == OpClass::Load) {
        op.destReg = static_cast<std::uint8_t>(rng_.nextBounded(32));
    }

    // Memory address: streaming or random within the working set.
    if (op.op == OpClass::Load || op.op == OpClass::Store) {
        if (rng_.nextBool(p.seqFrac)) {
            streamAddr_ += 8;
            if (streamAddr_ >= p.dataBase + p.workingSet)
                streamAddr_ = p.dataBase;
            op.addr = streamAddr_;
        } else {
            op.addr = p.dataBase
                + (rng_.nextBounded(p.workingSet / 8) * 8);
        }
    }

    // Control flow: static branch sites with per-site bias; taken
    // branches jump within the code footprint.
    if (op.op == OpClass::Branch) {
        std::uint32_t site = static_cast<std::uint32_t>(
            rng_.nextBounded(p.staticBranches));
        op.pc = codeBase_ + static_cast<Addr>(site) * 16;
        if (loopPeriod_[site] != 0) {
            // Loop-style: taken (period-1) times, then fall through.
            op.taken = ++loopCount_[site] % loopPeriod_[site] != 0;
        } else {
            // Data-dependent: i.i.d. around the site's bias. A site
            // is either mostly-taken or mostly-not-taken; the bias
            // is the probability of its majority direction.
            double bias = branchBias_[site];
            bool majority_taken = (site & 1) == 0;
            bool follow = rng_.nextBool(bias);
            op.taken = majority_taken ? follow : !follow;
        }
        if (op.taken) {
            pc_ = codeBase_
                + rng_.nextBounded(
                      std::max<std::uint64_t>(p.codeFootprint, 64) / 4)
                * 4;
        }
    } else {
        op.pc = pc_;
        pc_ += 4;
        if (pc_ >= codeBase_ + p.codeFootprint)
            pc_ = codeBase_;
    }

    return op;
}

FetchResult
PhasedTraceSource::next(Cycle now)
{
    (void)now;
    FetchResult fr;
    if (totalInsts_ != 0 && emitted_ >= totalInsts_) {
        fr.kind = FetchResult::Kind::Finished;
        return fr;
    }
    if (phaseEmitted_ >= phases_[phaseIdx_].lengthInsts) {
        std::uint32_t nxt = phaseIdx_ + 1;
        if (nxt >= phases_.size()) {
            ++laps_;
            if (!loop_) {
                fr.kind = FetchResult::Kind::Finished;
                return fr;
            }
            nxt = 0;
        }
        enterPhase(nxt);
    }

    fr.kind = FetchResult::Kind::Inst;
    fr.op = genInst();
    ++phaseEmitted_;
    ++emitted_;
    return fr;
}

void
PhasedTraceSource::onCommit(const MicroOp &op, Cycle commit_cycle)
{
    (void)op;
    (void)commit_cycle;
}

SkipResult
PhasedTraceSource::skip(InstCount n, Cycle from, Cycle to)
{
    (void)from;
    (void)to;
    SkipResult r;
    while (r.skipped < n) {
        if (totalInsts_ != 0 && emitted_ >= totalInsts_) {
            r.finished = true;
            break;
        }
        const InstCount len = phases_[phaseIdx_].lengthInsts;
        if (phaseEmitted_ >= len) {
            // Same lazy transition next() performs — but stop (and
            // let the detailed path re-measure) whenever the phase
            // INDEX changes. A single-phase loop wraps in place:
            // same phase, same statistics.
            std::uint32_t nxt = phaseIdx_ + 1;
            if (nxt >= phases_.size()) {
                if (!loop_) {
                    r.finished = true;
                    break;
                }
                nxt = 0;
            }
            if (nxt != phaseIdx_) {
                r.phaseBoundary = true;
                break;
            }
            ++laps_;
            enterPhase(nxt);
            continue;
        }
        InstCount room = len - phaseEmitted_;
        if (totalInsts_ != 0)
            room = std::min(room, totalInsts_ - emitted_);
        InstCount take = std::min(n - r.skipped, room);
        phaseEmitted_ += take;
        emitted_ += take;
        r.skipped += take;
    }
    return r;
}

PacedSource::PacedSource(InstSource &inner, double pace,
                         InstCount chunk)
    : inner_(inner), pace_(pace), chunk_(chunk)
{
    if (pace <= 0.0)
        fatal("PacedSource pace must be positive, got %f", pace);
    if (chunk == 0)
        fatal("PacedSource chunk must be >= 1");
}

FetchResult
PacedSource::next(Cycle now)
{
    // The chunk containing instruction N arrives when its first
    // instruction is due at the pace.
    InstCount chunk_start = (handedOut_ / chunk_) * chunk_;
    auto available = static_cast<Cycle>(
        static_cast<double>(chunk_start) / pace_);
    if (available > now) {
        FetchResult fr;
        fr.kind = FetchResult::Kind::IdleUntil;
        fr.idleUntil = available;
        return fr;
    }
    FetchResult fr = inner_.next(now);
    if (fr.kind == FetchResult::Kind::Inst)
        ++handedOut_;
    return fr;
}

void
PacedSource::onCommit(const MicroOp &op, Cycle commit_cycle)
{
    inner_.onCommit(op, commit_cycle);
}

SkipResult
PacedSource::skip(InstCount n, Cycle from, Cycle to)
{
    // Instruction N is available once its chunk has arrived, i.e.
    // at cycle (N/chunk)*chunk/pace. Work available inside the
    // window: every chunk due by `to`.
    auto due_chunks = static_cast<InstCount>(
        static_cast<double>(to) * pace_
        / static_cast<double>(chunk_));
    InstCount avail = (due_chunks + 1) * chunk_;
    InstCount take = avail > handedOut_
        ? std::min(n, avail - handedOut_) : 0;
    SkipResult r;
    if (take > 0) {
        r = inner_.skip(take, from, to);
        handedOut_ += r.skipped;
    }
    // Coming up short of n here is pacing, never a phase boundary:
    // the inner skip's flags pass through untouched.
    return r;
}

CappedSource::CappedSource(InstSource &inner, InstCount cap)
    : inner_(inner), cap_(cap)
{
}

FetchResult
CappedSource::next(Cycle now)
{
    if (used_ >= cap_) {
        FetchResult fr;
        fr.kind = FetchResult::Kind::Finished;
        return fr;
    }
    FetchResult fr = inner_.next(now);
    if (fr.kind == FetchResult::Kind::Inst)
        ++used_;
    return fr;
}

void
CappedSource::onCommit(const MicroOp &op, Cycle commit_cycle)
{
    inner_.onCommit(op, commit_cycle);
}

SkipResult
CappedSource::skip(InstCount n, Cycle from, Cycle to)
{
    SkipResult r;
    if (used_ >= cap_) {
        r.finished = true;
        return r;
    }
    InstCount take = std::min(n, cap_ - used_);
    r = inner_.skip(take, from, to);
    used_ += r.skipped;
    if (used_ >= cap_)
        r.finished = true;
    return r;
}

} // namespace cash
