/**
 * @file
 * Models of the paper's 13 benchmark applications.
 *
 * SPEC CINT2006 (astar, bzip, gcc, h264ref, hmmer, lib, mcf,
 * omnetpp, sjeng), PARSEC (ferret), x264, the apache webserver and
 * the postal mailserver are modelled as phased synthetic workloads.
 * Each model's phase parameters are chosen to reproduce the
 * application's published character on a configurable fabric:
 * compute-dense codes (hmmer) reward Slices, memory-streaming codes
 * (lib) reward MLP, pointer-chasers (mcf) reward cache capacity up
 * to their working set, branchy serial codes (sjeng) reward nothing
 * beyond a Slice or two, and x264 cycles through ten phases whose
 * optimal configurations differ (paper Fig 1).
 *
 * apache and mailserver are open-loop request streams with latency
 * QoS; the rest are paced instruction streams with throughput QoS.
 */

#ifndef CASH_WORKLOAD_APPS_HH
#define CASH_WORKLOAD_APPS_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/isa.hh"
#include "workload/phase.hh"
#include "workload/request.hh"

namespace cash
{

/**
 * The kind of QoS an application requires.
 */
enum class QosKind
{
    Throughput,     ///< instructions per cycle over an interval
    RequestLatency, ///< mean cycles per completed request
};

/**
 * A complete application description.
 */
struct AppModel
{
    std::string name;
    QosKind qosKind = QosKind::Throughput;
    /** Phase list (Throughput apps; also the request mix donor for
     *  request apps via request.mix). */
    std::vector<PhaseParams> phases;
    /** Request stream (RequestLatency apps only). */
    RequestStreamParams request;
    /** Default deterministic seed for this app's streams. */
    std::uint64_t seed = 1;

    bool isRequestDriven() const
    {
        return qosKind == QosKind::RequestLatency;
    }
};

/** All 13 applications, in the paper's Fig 7 order. */
const std::vector<AppModel> &allApps();

/** Look up one application; fatal() on unknown names. */
const AppModel &appByName(std::string_view name);

/**
 * Instantiate the app's instruction source.
 * Throughput apps yield a looping PhasedTraceSource; request apps a
 * RequestSource.
 *
 * @param app the model
 * @param seed_override 0 = use the model's seed
 */
std::unique_ptr<InstSource>
makeSource(const AppModel &app, std::uint64_t seed_override = 0);

} // namespace cash

#endif // CASH_WORKLOAD_APPS_HH
