/**
 * @file
 * Phase descriptors for synthetic workloads.
 *
 * The paper's applications (SPEC CINT2006, PARSEC, x264, apache,
 * postal) are modelled as sequences of *phases*, each a stationary
 * instruction mix. A phase's parameters determine how the
 * application responds to virtual-core configuration:
 *
 *  - ilpMeanDist: mean dataflow dependence distance. Small values
 *    mean tight chains (extra Slices cannot help and inter-Slice
 *    operand hops actively hurt); large values expose ILP.
 *  - workingSet / seqFrac: data footprint and streaming fraction,
 *    which determine L1/L2 hit rates as a function of cache size.
 *  - branchFrac / branchBias: control-flow density and
 *    predictability, which set the mispredict-flush rate.
 *
 * Phase boundaries move the working-set base so caches see a
 * realistic partial-reuse transition.
 */

#ifndef CASH_WORKLOAD_PHASE_HH
#define CASH_WORKLOAD_PHASE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace cash
{

/**
 * A stationary region of an application.
 */
struct PhaseParams
{
    std::string name;

    /** Mean dependence distance (dynamic instructions). */
    double ilpMeanDist = 4.0;
    /** Probability an instruction has a second source operand. */
    double twoSrcFrac = 0.4;

    /** Fraction of instructions that are memory operations. */
    double memFrac = 0.30;
    /** Of memory ops, fraction that are stores. */
    double storeFrac = 0.30;
    /** Fraction of ALU ops that are floating point. */
    double fpFrac = 0.05;

    /** Fraction of instructions that are branches. */
    double branchFrac = 0.15;
    /** Mean per-static-branch taken bias in [0.5, 1.0];
     *  1.0 = fully predictable, 0.5 = coin flips. */
    double branchBias = 0.92;
    /** Number of static branch sites in this phase. */
    std::uint32_t staticBranches = 256;

    /** Data working set in bytes. */
    std::uint64_t workingSet = 256 * kiB;
    /** Fraction of memory accesses that stream sequentially. */
    double seqFrac = 0.3;
    /** Instruction footprint in bytes (drives L1I behaviour). */
    std::uint64_t codeFootprint = 8 * kiB;

    /** Dynamic length of one pass through this phase. */
    InstCount lengthInsts = 400'000;

    /** Base offset of this phase's working set in the app's address
     *  space; phases with equal bases share data. */
    Addr dataBase = 0;
};

} // namespace cash

#endif // CASH_WORKLOAD_PHASE_HH
