#include "workload/request.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace cash
{

RequestSource::RequestSource(const RequestStreamParams &params,
                             std::uint64_t seed)
    : params_(params), rng_(seed),
      body_({params.mix}, seed ^ 0xb0d7u, true, 0)
{
    if (params.baseRatePerMcycle <= 0.0)
        fatal("request rate must be positive");
    if (params.amplitude < 0.0 || params.amplitude >= 1.0)
        fatal("request amplitude must be in [0, 1)");
    if (params.period == 0)
        fatal("request oscillation period must be non-zero");
    if (params.meanInstsPerRequest < params.minInstsPerRequest)
        fatal("mean request size below the minimum");
}

double
RequestSource::rateAt(Cycle t) const
{
    double phase = 2.0 * M_PI * static_cast<double>(t % params_.period)
        / static_cast<double>(params_.period);
    return params_.baseRatePerMcycle
        * (1.0 + params_.amplitude * std::sin(phase));
}

void
RequestSource::generateArrivalsUpTo(Cycle t)
{
    // Non-homogeneous Poisson by thinning against the peak rate.
    double peak_per_cycle = params_.baseRatePerMcycle
        * (1.0 + params_.amplitude) / 1e6;
    if (!arrivalPrimed_) {
        nextArrival_ = static_cast<Cycle>(
            rng_.nextExponential(peak_per_cycle));
        arrivalPrimed_ = true;
    }
    while (nextArrival_ <= t) {
        double accept = rateAt(nextArrival_)
            / (params_.baseRatePerMcycle * (1.0 + params_.amplitude));
        if (rng_.nextBool(accept)) {
            queue_.push_back(nextArrival_);
            ++arrivals_;
        }
        nextArrival_ += 1 + static_cast<Cycle>(
            rng_.nextExponential(peak_per_cycle));
    }
}

void
RequestSource::startNextRequest()
{
    activeArrival_ = queue_.front();
    queue_.pop_front();
    double mean_extra = static_cast<double>(
        params_.meanInstsPerRequest - params_.minInstsPerRequest);
    InstCount extra = mean_extra > 0.0
        ? static_cast<InstCount>(
              rng_.nextExponential(1.0 / mean_extra))
        : 0;
    burstLeft_ = params_.minInstsPerRequest + extra;
    inRequest_ = true;
    ++nextRequestId_;
}

FetchResult
RequestSource::next(Cycle now)
{
    generateArrivalsUpTo(now);

    if (!inRequest_) {
        if (queue_.empty()) {
            FetchResult fr;
            fr.kind = FetchResult::Kind::IdleUntil;
            fr.idleUntil = std::max(nextArrival_, now + 1);
            return fr;
        }
        startNextRequest();
    }

    FetchResult fr = body_.next(now);
    if (fr.kind != FetchResult::Kind::Inst)
        panic("request body generator must be endless");
    fr.op.request = nextRequestId_;
    fr.op.requestArrival = activeArrival_;
    --burstLeft_;
    if (burstLeft_ == 0) {
        fr.op.endOfRequest = true;
        inRequest_ = false;
    }
    return fr;
}

void
RequestSource::onCommit(const MicroOp &op, Cycle commit_cycle)
{
    if (op.endOfRequest && op.request != invalidRequest) {
        ++completed_;
        Cycle lat = commit_cycle > op.requestArrival
            ? commit_cycle - op.requestArrival : 0;
        latency_.add(static_cast<double>(lat));
    }
}

} // namespace cash
