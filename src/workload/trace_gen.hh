/**
 * @file
 * Synthetic trace generation: PhasedTraceSource turns a list of
 * PhaseParams into a deterministic MicroOp stream, and PacedSource
 * throttles any stream to a work-arrival rate (the semantics under
 * which QoS targets, race-to-idle, and cost accounting are defined).
 */

#ifndef CASH_WORKLOAD_TRACE_GEN_HH
#define CASH_WORKLOAD_TRACE_GEN_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/isa.hh"
#include "workload/phase.hh"

namespace cash
{

/**
 * Generates the instruction stream of a phased application.
 *
 * The stream is deterministic given (phases, seed). Phases are
 * visited in order; when looping is enabled the sequence repeats
 * indefinitely (the paper's workloads are long-running services or
 * encoders), otherwise the source finishes after the last phase.
 */
class PhasedTraceSource : public InstSource
{
  public:
    /**
     * @param phases phase list (non-empty)
     * @param seed RNG seed (stream-defining)
     * @param loop repeat the phase list forever
     * @param total_insts hard cap on emitted instructions
     *        (0 = unlimited; ignored unless loop is true)
     */
    PhasedTraceSource(std::vector<PhaseParams> phases,
                      std::uint64_t seed, bool loop = true,
                      InstCount total_insts = 0);

    FetchResult next(Cycle now) override;
    void onCommit(const MicroOp &op, Cycle commit_cycle) override;

    /**
     * Arithmetic O(#phases-crossed) fast-forward: bumps the emit
     * counters without drawing from the RNG, so the skipped stream
     * is statistically identical (phases are stationary mixes) but
     * not instruction-identical to what next() would produce.
     * Stops with phaseBoundary at any phase-INDEX change; a
     * single-phase looping app wraps laps silently (same phase,
     * same statistics, nothing to re-measure).
     */
    SkipResult skip(InstCount n, Cycle from, Cycle to) override;

    /** Index (into the phase list) of the phase being emitted. */
    std::uint32_t currentPhase() const { return phaseIdx_; }

    /** Instructions emitted so far. */
    InstCount emitted() const { return emitted_; }

    /** Completed passes over the whole phase list. */
    std::uint64_t laps() const { return laps_; }

  private:
    void enterPhase(std::uint32_t idx);
    MicroOp genInst();

    std::vector<PhaseParams> phases_;
    Rng rng_;
    bool loop_;
    InstCount totalInsts_;

    std::uint32_t phaseIdx_ = 0;
    InstCount phaseEmitted_ = 0;
    InstCount emitted_ = 0;
    std::uint64_t laps_ = 0;

    // Per-phase generator state.
    Addr pc_ = 0x1000;
    Addr codeBase_ = 0x1000;
    Addr streamAddr_ = 0;
    std::vector<double> branchBias_;
    std::vector<std::uint32_t> loopPeriod_;
    std::vector<std::uint32_t> loopCount_;
};

/**
 * Paces an inner stream to a work-arrival rate: work arrives in
 * chunks (frames to encode, items to process) of `chunk`
 * instructions; chunk C becomes available at cycle C*chunk/pace.
 * A vcore faster than the pace idles between chunks (and its busy
 * IPC measures its true capacity); a slower one accumulates
 * backlog.
 */
class PacedSource : public InstSource
{
  public:
    /**
     * @param inner the unpaced stream (not owned)
     * @param pace work arrival rate in instructions per cycle (> 0)
     * @param chunk work-item granularity in instructions (>= 1)
     */
    PacedSource(InstSource &inner, double pace,
                InstCount chunk = 2000);

    FetchResult next(Cycle now) override;
    void onCommit(const MicroOp &op, Cycle commit_cycle) override;

    /** Delegates to the inner stream, clamped to the work that has
     *  arrived by `to` (an arrival shortfall is pacing, not a phase
     *  boundary — the caller idles out the rest of the window). */
    SkipResult skip(InstCount n, Cycle from, Cycle to) override;

    double pace() const { return pace_; }
    InstCount chunk() const { return chunk_; }

  private:
    InstSource &inner_;
    double pace_;
    InstCount chunk_;
    InstCount handedOut_ = 0;
};

/**
 * A fixed-length wrapper: passes through at most n instructions of
 * the inner source, then reports Finished. Used by characterization
 * sweeps that measure a bounded window.
 */
class CappedSource : public InstSource
{
  public:
    CappedSource(InstSource &inner, InstCount cap);

    FetchResult next(Cycle now) override;
    void onCommit(const MicroOp &op, Cycle commit_cycle) override;
    std::uint64_t backlog() const override { return inner_.backlog(); }

    /** Delegates to the inner stream, clamped to the cap. */
    SkipResult skip(InstCount n, Cycle from, Cycle to) override;

    InstCount remaining() const { return cap_ - used_; }

  private:
    InstSource &inner_;
    InstCount cap_;
    InstCount used_ = 0;
};

} // namespace cash

#endif // CASH_WORKLOAD_TRACE_GEN_HH
