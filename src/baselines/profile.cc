#include "baselines/profile.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "harness/experiment_engine.hh"
#include "sim/ssim.hh"
#include "workload/request.hh"
#include "workload/trace_gen.hh"

namespace cash
{

double
measurePhaseIpc(const PhaseParams &phase_params,
                const VCoreConfig &config, const FabricParams &fabric,
                const SimParams &sim_params, InstCount warmup,
                InstCount measure, std::uint64_t seed)
{
    SSim sim(fabric, sim_params);
    auto id = sim.createVCore(config.slices, config.banks);
    if (!id)
        fatal("fabric too small for configuration %s",
              config.str().c_str());
    VirtualCore &vc = sim.vcore(*id);

    PhaseParams p = phase_params;
    p.lengthInsts = std::max<InstCount>(p.lengthInsts,
                                        warmup + measure);
    PhasedTraceSource warm({p}, seed, true, 0);
    CappedSource warm_cap(warm, warmup);
    vc.bindSource(&warm_cap);
    vc.runUntil(std::numeric_limits<Cycle>::max() / 2);

    Cycle c0 = vc.now();
    InstCount i0 = vc.meta().totalCommitted;
    PhasedTraceSource meas({p}, seed ^ 0x5a5au, true, 0);
    CappedSource meas_cap(meas, measure);
    vc.bindSource(&meas_cap);
    vc.runUntil(std::numeric_limits<Cycle>::max() / 2);

    Cycle cycles = vc.now() - c0;
    InstCount insts = vc.meta().totalCommitted - i0;
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(insts) / static_cast<double>(cycles);
}

double
measureRequestLatency(const RequestStreamParams &stream,
                      double rate_per_mcycle,
                      const VCoreConfig &config,
                      const FabricParams &fabric,
                      const SimParams &sim_params, Cycle window,
                      std::uint64_t seed)
{
    SSim sim(fabric, sim_params);
    auto id = sim.createVCore(config.slices, config.banks);
    if (!id)
        fatal("fabric too small for configuration %s",
              config.str().c_str());
    VirtualCore &vc = sim.vcore(*id);

    RequestStreamParams constant = stream;
    constant.baseRatePerMcycle = rate_per_mcycle;
    constant.amplitude = 0.0;
    RequestSource src(constant, seed);
    vc.bindSource(&src);
    vc.runUntil(window);

    if (src.completed() == 0) {
        // Nothing finished inside the window: effectively saturated.
        return static_cast<double>(window);
    }
    // Penalize growing backlog (overload) by accounting queued
    // requests at the window-end age floor.
    double mean_done = src.latency().mean();
    if (src.backlog() > 4 * std::max<std::size_t>(1, src.completed()))
        return std::max(mean_done, static_cast<double>(window));
    return mean_done;
}

std::size_t
AppProfile::regions() const
{
    return kind == QosKind::Throughput ? phasePerf.size()
                                       : binLatency.size();
}

double
AppProfile::worstCasePerf(std::size_t k) const
{
    double worst = std::numeric_limits<double>::max();
    if (kind == QosKind::Throughput) {
        for (const auto &row : phasePerf)
            worst = std::min(worst, row[k]);
    } else {
        for (const auto &row : binLatency)
            worst = std::min(worst, 1.0 / std::max(row[k], 1e-9));
    }
    return worst;
}

bool
AppProfile::meets(std::size_t i, std::size_t k) const
{
    if (kind == QosKind::Throughput)
        return phasePerf[i][k] >= qosTarget;
    return binLatency[i][k] <= qosTarget;
}

std::size_t
AppProfile::cheapestMeeting(std::size_t i, const ConfigSpace &space,
                            const CostModel &cost) const
{
    constexpr std::size_t none = ~std::size_t(0);
    std::size_t best = none;
    double best_rate = 0.0;
    for (std::size_t k = 0; k < space.size(); ++k) {
        if (!meets(i, k))
            continue;
        double rate = cost.ratePerHour(space.at(k));
        if (best == none || rate < best_rate) {
            best = k;
            best_rate = rate;
        }
    }
    if (best != none)
        return best;
    // Infeasible region: fall back to the best performer.
    best = 0;
    double best_perf = -1.0;
    for (std::size_t k = 0; k < space.size(); ++k) {
        double perf = kind == QosKind::Throughput
            ? phasePerf[i][k]
            : 1.0 / std::max(binLatency[i][k], 1e-9);
        if (perf > best_perf) {
            best = k;
            best_perf = perf;
        }
    }
    return best;
}

std::size_t
AppProfile::cheapestMeetingAll(const ConfigSpace &space,
                               const CostModel &cost) const
{
    constexpr std::size_t none = ~std::size_t(0);
    std::size_t best = none;
    double best_rate = 0.0;
    for (std::size_t k = 0; k < space.size(); ++k) {
        bool ok = true;
        for (std::size_t i = 0; i < regions() && ok; ++i)
            ok = meets(i, k);
        if (!ok)
            continue;
        double rate = cost.ratePerHour(space.at(k));
        if (best == none || rate < best_rate) {
            best = k;
            best_rate = rate;
        }
    }
    if (best != none)
        return best;
    // No config meets the target everywhere: best worst-case.
    best = 0;
    double best_perf = -1.0;
    for (std::size_t k = 0; k < space.size(); ++k) {
        double perf = worstCasePerf(k);
        if (perf > best_perf) {
            best = k;
            best_perf = perf;
        }
    }
    return best;
}

double
AppProfile::averagePerf(std::size_t k) const
{
    double sum = 0.0;
    std::size_t n = regions();
    for (std::size_t i = 0; i < n; ++i) {
        sum += kind == QosKind::Throughput
            ? phasePerf[i][k]
            : 1.0 / std::max(binLatency[i][k], 1e-9);
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

AppProfile
characterize(harness::ExperimentEngine &engine, const AppModel &app,
             const ConfigSpace &space, const FabricParams &fabric,
             const SimParams &sim_params, const ProfileParams &params)
{
    AppProfile prof;
    prof.kind = app.qosKind;
    const std::size_t nk = space.size();

    if (app.qosKind == QosKind::Throughput) {
        // Every (phase, configuration) point is an independent
        // fresh-simulator run whose seed depends only on the
        // point, so the sweep fans out through the engine and is
        // scattered back by index.
        const std::size_t nph = app.phases.size();
        std::vector<double> flat = engine.map<double>(
            nph * nk,
            [&](std::size_t i) {
                std::size_t ph = i / nk, k = i % nk;
                return measurePhaseIpc(app.phases[ph], space.at(k),
                                       fabric, sim_params,
                                       params.warmupInsts,
                                       params.measureInsts,
                                       params.seed + ph);
            },
            [&](std::size_t i) {
                return harness::CellKey{
                    app.name, "phase:" + app.phases[i / nk].name,
                    i % nk, params.seed};
            });
        prof.phasePerf.assign(nph, std::vector<double>(nk));
        for (std::size_t ph = 0; ph < nph; ++ph) {
            for (std::size_t k = 0; k < nk; ++k)
                prof.phasePerf[ph][k] = flat[ph * nk + k];
        }
        // Target: the best IPC achievable in the worst phase.
        double best_worst = 0.0;
        for (std::size_t k = 0; k < nk; ++k)
            best_worst = std::max(best_worst, prof.worstCasePerf(k));
        prof.qosTarget = best_worst * params.targetMargin;
    } else {
        const std::size_t nb = params.rateBins;
        prof.binRates.resize(nb);
        double lo = app.request.baseRatePerMcycle
            * (1.0 - app.request.amplitude);
        double hi = app.request.baseRatePerMcycle
            * (1.0 + app.request.amplitude);
        for (std::size_t b = 0; b < nb; ++b) {
            double frac = nb > 1
                ? static_cast<double>(b)
                      / static_cast<double>(nb - 1)
                : 0.5;
            prof.binRates[b] = lo + frac * (hi - lo);
        }
        std::vector<double> flat = engine.map<double>(
            nb * nk,
            [&](std::size_t i) {
                std::size_t b = i / nk, k = i % nk;
                return measureRequestLatency(
                    app.request, prof.binRates[b], space.at(k),
                    fabric, sim_params, params.requestWindow,
                    params.seed + b);
            },
            [&](std::size_t i) {
                return harness::CellKey{
                    app.name,
                    strfmt("bin:%zu", i / nk), i % nk,
                    params.seed};
            });
        prof.binLatency.assign(nb, std::vector<double>(nk));
        for (std::size_t b = 0; b < nb; ++b) {
            for (std::size_t k = 0; k < nk; ++k)
                prof.binLatency[b][k] = flat[b * nk + k];
        }
        // Target: smallest achievable worst-bin latency, padded.
        double best_worst = std::numeric_limits<double>::max();
        for (std::size_t k = 0; k < nk; ++k) {
            double worst = 0.0;
            for (std::size_t b = 0; b < nb; ++b)
                worst = std::max(worst, prof.binLatency[b][k]);
            best_worst = std::min(best_worst, worst);
        }
        prof.qosTarget = best_worst * params.latencyHeadroom;
    }
    return prof;
}

AppProfile
characterize(const AppModel &app, const ConfigSpace &space,
             const FabricParams &fabric, const SimParams &sim_params,
             const ProfileParams &params)
{
    harness::ExperimentEngine engine;
    return characterize(engine, app, space, fabric, sim_params,
                        params);
}

} // namespace cash
