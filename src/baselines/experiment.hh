/**
 * @file
 * The experiment harness behind the paper's evaluation figures.
 *
 * runPolicy() reproduces one cell of Figs 7/10 (or one curve of
 * Figs 2/8/9): it instantiates a fresh chip, deploys the
 * application with its QoS target (throughput apps are paced at the
 * target — work arrives at the QoS rate, so a fast configuration
 * idles and a slow one accumulates backlog), runs the chosen
 * resource-allocation policy to a horizon, and returns cost, QoS
 * violations and the per-quantum time series.
 */

#ifndef CASH_BASELINES_EXPERIMENT_HH
#define CASH_BASELINES_EXPERIMENT_HH

#include <memory>
#include <string>

#include "baselines/policy.hh"
#include "baselines/profile.hh"
#include "core/runtime.hh"
#include "sim/sampler.hh"

namespace cash
{

/** Policy selector for runPolicy(). */
enum class PolicyKind
{
    Oracle,
    ConvexOpt,
    RaceToIdle,
    Cash,
};

/** Printable policy name. */
const char *policyName(PolicyKind kind);

/**
 * Shared experiment knobs.
 */
struct ExperimentParams
{
    FabricParams fabric;
    SimParams sim;
    /** Simulated horizon per run (cycles). */
    Cycle horizon = 75'000'000;
    /** Control quantum for all policies (cycles). */
    Cycle quantum = 500'000;
    /** Violation tolerance (normalized QoS). */
    double tolerance = 0.05;
    /** Workload stream seed. */
    std::uint64_t seed = 5;
    /** Phase-length multiplier applied to throughput apps (the
     *  models define short phases; experiments stretch them to the
     *  paper's multi-quantum timescale). */
    double phaseScale = 8.0;
    /** CASH runtime tunables (quantum is overridden by `quantum`). */
    RuntimeParams runtime;
    /** Full or sampled simulation (bench --sampled sets Sampled;
     *  results then carry the error-gate bound, see DESIGN.md §12). */
    SimMode simMode = SimMode::Full;
    /** Slice-sampling schedule when simMode is Sampled. */
    SamplerParams sampler;
};

/**
 * Result of one (app, policy) run.
 */
struct RunOutput
{
    std::string policy;
    PolicyStats stats;
    std::vector<SeriesPoint> series;
    double qosTarget = 0.0;
};

/** Copy an app model with phase lengths scaled. */
AppModel scalePhases(const AppModel &app, double factor);

/**
 * Execute one policy on one application.
 *
 * @param app the application (already phase-scaled if desired)
 * @param profile its characterization over `space`
 * @param kind which policy to run
 * @param space configuration space (full grid, or big.LITTLE)
 * @param cost pricing
 * @param params experiment knobs
 */
RunOutput
runPolicy(const AppModel &app, const AppProfile &profile,
          PolicyKind kind, const ConfigSpace &space,
          const CostModel &cost, const ExperimentParams &params);

} // namespace cash

#endif // CASH_BASELINES_EXPERIMENT_HH
