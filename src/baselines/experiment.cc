#include "baselines/experiment.hh"

#include "common/log.hh"
#include "workload/request.hh"
#include "workload/trace_gen.hh"

namespace cash
{

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Oracle:
        return "Optimal";
      case PolicyKind::ConvexOpt:
        return "ConvexOpt";
      case PolicyKind::RaceToIdle:
        return "RaceToIdle";
      case PolicyKind::Cash:
        return "CASH";
    }
    return "?";
}

AppModel
scalePhases(const AppModel &app, double factor)
{
    AppModel scaled = app;
    for (PhaseParams &p : scaled.phases) {
        p.lengthInsts = static_cast<InstCount>(
            static_cast<double>(p.lengthInsts) * factor);
        if (p.lengthInsts == 0)
            p.lengthInsts = 1;
    }
    return scaled;
}

RunOutput
runPolicy(const AppModel &app, const AppProfile &profile,
          PolicyKind kind, const ConfigSpace &space,
          const CostModel &cost, const ExperimentParams &params)
{
    SSim sim(params.fabric, params.sim);
    if (params.simMode == SimMode::Sampled)
        sim.setSampling(SimMode::Sampled, params.sampler);
    const VCoreConfig &start = space.base();
    auto id = sim.createVCore(start.slices, start.banks);
    if (!id)
        fatal("fabric cannot host the starting configuration");
    VirtualCore &vc = sim.vcore(*id);

    // Build the workload stream.
    std::unique_ptr<PhasedTraceSource> phased;
    std::unique_ptr<PacedSource> paced;
    std::unique_ptr<RequestSource> requests;
    if (app.isRequestDriven()) {
        requests = std::make_unique<RequestSource>(app.request,
                                                   params.seed);
        vc.bindSource(requests.get());
    } else {
        phased = std::make_unique<PhasedTraceSource>(
            app.phases, params.seed, true, 0);
        // Work arrives at the QoS rate: the paced stream is how
        // "maintain this throughput" becomes a workload property.
        paced = std::make_unique<PacedSource>(*phased,
                                              profile.qosTarget);
        vc.bindSource(paced.get());
    }

    // Build the policy.
    std::unique_ptr<Policy> policy;
    switch (kind) {
      case PolicyKind::Oracle:
        policy = std::make_unique<OraclePolicy>(
            sim, *id, app.qosKind, profile.qosTarget, space, cost,
            params.quantum, params.tolerance, profile, phased.get(),
            app.isRequestDriven() ? &app.request : nullptr);
        break;
      case PolicyKind::ConvexOpt:
        policy = std::make_unique<ConvexOptPolicy>(
            sim, *id, app.qosKind, profile.qosTarget, space, cost,
            params.quantum, params.tolerance, profile);
        break;
      case PolicyKind::RaceToIdle:
        policy = std::make_unique<RaceToIdlePolicy>(
            sim, *id, app.qosKind, profile.qosTarget, space, cost,
            params.quantum, params.tolerance, profile);
        break;
      case PolicyKind::Cash: {
        RuntimeParams rp = params.runtime;
        rp.quantum = params.quantum;
        rp.violationTolerance = params.tolerance;
        if (app.isRequestDriven()) {
            // Latency feedback is steep near saturation: damp the
            // loop harder so reconfiguration churn (whose stalls
            // themselves spike latency) cannot self-sustain.
            rp.deadband = 0.10;
            rp.stickiness = 0.20;
            rp.epsilon = 0.02;
        }
        policy = std::make_unique<CashPolicy>(
            sim, *id, app.qosKind, profile.qosTarget, space, cost,
            rp, params.seed ^ 0xca5f);
        break;
      }
    }

    policy->run(params.horizon);

    RunOutput out;
    out.policy = policy->name();
    out.stats = policy->stats();
    out.series = policy->series();
    out.qosTarget = profile.qosTarget;
    return out;
}

} // namespace cash
