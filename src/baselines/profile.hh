/**
 * @file
 * Exhaustive application characterization (paper Sec V-C).
 *
 * The paper constructs its oracle by "running all applications in
 * every possible configuration of the CASH architecture", manually
 * identifying phases, and brute-forcing the lowest-cost resource
 * combination for any performance goal. This module is that
 * machinery:
 *
 *  - Throughput apps: for every (phase, configuration) pair, run
 *    the phase's stationary mix on a fresh virtual core (warm-up
 *    discarded) and record IPC.
 *  - Request apps: for every (arrival-rate bin, configuration)
 *    pair, run a constant-rate request stream and record the mean
 *    request latency.
 *
 * The profile also derives the experiment QoS targets:
 *  - throughput: the paper's "highest worst case IPC" — the best
 *    IPC that is achievable in the app's worst phase by some
 *    configuration (with a small feasibility margin);
 *  - latency: the paper's "smallest possible worst-case latency"
 *    (110 Kcycles/request for their apache), again with margin.
 */

#ifndef CASH_BASELINES_PROFILE_HH
#define CASH_BASELINES_PROFILE_HH

#include <cstdint>
#include <vector>

#include "core/config_space.hh"
#include "fabric/grid.hh"
#include "sim/params.hh"
#include "workload/apps.hh"

namespace cash
{

namespace harness
{
class ExperimentEngine;
} // namespace harness

/**
 * Characterization effort knobs.
 */
struct ProfileParams
{
    /** Instructions discarded before measuring (per point). */
    InstCount warmupInsts = 40'000;
    /** Instructions measured (per point). */
    InstCount measureInsts = 80'000;
    /** Cycles simulated per (rate bin, config) point. */
    Cycle requestWindow = 3'000'000;
    /** Number of arrival-rate bins for request apps. */
    std::uint32_t rateBins = 5;
    /** Stream seed. */
    std::uint64_t seed = 999;
    /** Feasibility margin applied to derived throughput targets. */
    double targetMargin = 0.92;
    /** Headroom multiplier on the smallest worst-case latency (the
     *  paper's 110 Kcycles target is comfortably feasible at peak
     *  load by construction). */
    double latencyHeadroom = 1.6;
};

/**
 * The complete characterization of one application.
 */
struct AppProfile
{
    QosKind kind = QosKind::Throughput;
    /** perf[phase][config] = IPC (throughput apps). */
    std::vector<std::vector<double>> phasePerf;
    /** Rate of each bin in requests/Mcycle (request apps). */
    std::vector<double> binRates;
    /** latency[bin][config] = mean cycles/request (request apps). */
    std::vector<std::vector<double>> binLatency;
    /** Derived QoS target: IPC floor, or latency ceiling. */
    double qosTarget = 0.0;

    /** Worst-phase IPC (or worst-bin inverse latency) of config k. */
    double worstCasePerf(std::size_t k) const;

    /** True if config k meets the target in phase/bin i. */
    bool meets(std::size_t i, std::size_t k) const;

    /**
     * Cheapest configuration meeting the target in phase/bin i,
     * or the best-performing one if none does.
     */
    std::size_t cheapestMeeting(std::size_t i,
                                const ConfigSpace &space,
                                const CostModel &cost) const;

    /**
     * Cheapest configuration meeting the target in *every*
     * phase/bin (the race-to-idle worst-case allocation), or the
     * best worst-case performer if none qualifies.
     */
    std::size_t cheapestMeetingAll(const ConfigSpace &space,
                                   const CostModel &cost) const;

    /** Number of phases (or rate bins). */
    std::size_t regions() const;

    /** Average performance of config k across phases/bins —
     *  the convex baseline's "average case" model. */
    double averagePerf(std::size_t k) const;
};

/**
 * Characterize one application over a configuration space, fanning
 * the (phase | rate bin) x configuration sweep out through the
 * engine. Every sweep point runs on a fresh simulator with a seed
 * derived only from the profile parameters and the point itself,
 * so the result is bit-identical at any thread count.
 *
 * @param engine parallel execution engine for the sweep
 * @param app the application model
 * @param space configurations to sweep
 * @param fabric chip geometry
 * @param sim_params microarchitecture parameters
 * @param params effort knobs
 */
AppProfile
characterize(harness::ExperimentEngine &engine, const AppModel &app,
             const ConfigSpace &space, const FabricParams &fabric,
             const SimParams &sim_params,
             const ProfileParams &params = ProfileParams());

/**
 * Convenience overload running the sweep on a private engine
 * (CASH_BENCH_THREADS or hardware-concurrency workers).
 */
AppProfile
characterize(const AppModel &app, const ConfigSpace &space,
             const FabricParams &fabric, const SimParams &sim_params,
             const ProfileParams &params = ProfileParams());

/**
 * Measure steady-state IPC of a single phase on one configuration.
 * Exposed for Fig 1 (the per-phase contour sweep).
 */
double
measurePhaseIpc(const PhaseParams &phase_params,
                const VCoreConfig &config, const FabricParams &fabric,
                const SimParams &sim_params, InstCount warmup,
                InstCount measure, std::uint64_t seed);

/**
 * Measure mean request latency at a constant arrival rate.
 */
double
measureRequestLatency(const RequestStreamParams &stream,
                      double rate_per_mcycle,
                      const VCoreConfig &config,
                      const FabricParams &fabric,
                      const SimParams &sim_params, Cycle window,
                      std::uint64_t seed);

} // namespace cash

#endif // CASH_BASELINES_PROFILE_HH
