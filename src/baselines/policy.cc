#include "baselines/policy.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace cash
{

Policy::Policy(std::string name, Cycle quantum)
    : name_(std::move(name)), quantum_(quantum)
{
    if (quantum == 0)
        fatal("policy quantum must be non-zero");
}

void
Policy::run(Cycle horizon)
{
    while (!finished() && now() < horizon) {
        Cycle before = now();
        runQuantum();
        if (now() == before && !finished())
            break; // defensive: no forward progress
    }
}

BaselinePolicy::BaselinePolicy(std::string name, SSim &sim,
                               VCoreId id, QosKind kind,
                               double target,
                               const ConfigSpace &space,
                               const CostModel &cost, Cycle quantum,
                               double tolerance, bool free_idle)
    : Policy(std::move(name), quantum), sim_(sim), id_(id),
      space_(space), cost_(cost),
      monitor_(sim, id, kind, target), tolerance_(tolerance),
      freeIdle_(free_idle)
{
    const VirtualCore &vc = sim.vcore(id);
    VCoreConfig current{vc.numSlices(), vc.numBanks()};
    if (!space.contains(current)) {
        fatal("vcore %u starts outside the policy's config space",
              id);
    }
    currentCfg_ = space.indexOf(current);
    lastIdle_ = vc.meta().idleCycles;
}

Cycle
BaselinePolicy::now() const
{
    return sim_.vcore(id_).now();
}

void
BaselinePolicy::runSlot(std::size_t cfg, Cycle duration)
{
    if (duration == 0 || finished_)
        return;

    Cycle slot_start = sim_.vcore(id_).now();
    if (cfg != currentCfg_) {
        const VCoreConfig &c = space_.at(cfg);
        auto rc = sim_.command(id_, c.slices, c.banks);
        if (rc) {
            ++stats_.reconfigs;
            currentCfg_ = cfg;
        } else {
            warn("fabric cannot supply %s", c.str().c_str());
        }
    }

    RunResult rr = sim_.vcore(id_).runUntil(slot_start + duration);
    if (rr.finished)
        finished_ = true;

    Cycle end = sim_.vcore(id_).now();
    Cycle elapsed = end - slot_start;
    Cycle idle_now = sim_.vcore(id_).meta().idleCycles;
    Cycle idle_delta = idle_now - lastIdle_;
    lastIdle_ = idle_now;

    Cycle charged = freeIdle_ && idle_delta < elapsed
        ? elapsed - idle_delta
        : elapsed;
    if (freeIdle_ && idle_delta >= elapsed)
        charged = 0;

    double slot_cost = cost_.cost(space_.at(currentCfg_), charged);
    stats_.cost += slot_cost;
    stats_.cycles += elapsed;
    stats_.busyCycles += elapsed - std::min(idle_delta, elapsed);

    QosReading r = monitor_.sample();
    if (r.valid) {
        quantumQ_ += r.normalized * static_cast<double>(elapsed);
        quantumValid_ += elapsed;
    }
    quantumCostRate_ += cost_.ratePerHour(space_.at(currentCfg_))
        * static_cast<double>(charged);
    quantumCycles_ += elapsed;
}

void
BaselinePolicy::runQuantum()
{
    if (finished_)
        return;
    QuantumSchedule sched = decide(lastReading_);

    // QoS is assessed at quantum granularity: a two-slot schedule's
    // *average* is what must meet the target.
    quantumQ_ = 0.0;
    quantumValid_ = 0;
    quantumCostRate_ = 0.0;
    quantumCycles_ = 0;
    // Alternate slot order each quantum so a repeating schedule
    // only reconfigures at the over/under boundary, not also at
    // the quantum boundary.
    flipOrder_ = !flipOrder_;
    if (flipOrder_) {
        runSlot(sched.under, sched.tUnder + sched.tIdle);
        runSlot(sched.over, sched.tOver);
    } else {
        runSlot(sched.over, sched.tOver);
        runSlot(sched.under, sched.tUnder + sched.tIdle);
    }

    ++quantaRun_;
    if (quantumValid_ > 0) {
        double q = quantumQ_ / static_cast<double>(quantumValid_);
        lastReading_.valid = true;
        lastReading_.normalized = q;
        ewmaQ_ = 0.5 * ewmaQ_ + 0.5 * q;
        if (quantaRun_ > warmupQuanta_) {
            stats_.qosSum += q;
            ++stats_.samples;
            if (ewmaQ_ < 1.0 - tolerance_)
                ++stats_.violations;
        }
    }
    if (quantumCycles_ > 0) {
        series_.push_back(SeriesPoint{
            now(),
            quantumCostRate_ / static_cast<double>(quantumCycles_),
            quantumValid_ ? quantumQ_
                    / static_cast<double>(quantumValid_)
                          : lastReading_.normalized,
            currentCfg_});
    }
}

// --------------------------------------------------------- Oracle

OraclePolicy::OraclePolicy(SSim &sim, VCoreId id, QosKind kind,
                           double target, const ConfigSpace &space,
                           const CostModel &cost, Cycle quantum,
                           double tolerance,
                           const AppProfile &profile,
                           const PhasedTraceSource *phase_source,
                           const RequestStreamParams *request_params)
    : BaselinePolicy("Optimal", sim, id, kind, target, space, cost,
                     quantum, tolerance, /*free_idle=*/false),
      profile_(profile), phaseSource_(phase_source),
      requestParams_(request_params)
{
    if (kind == QosKind::Throughput && !phase_source)
        fatal("throughput oracle needs the phase source");
    if (kind == QosKind::RequestLatency && !request_params)
        fatal("latency oracle needs the request parameters");
}

std::size_t
OraclePolicy::currentBin() const
{
    double phase = 2.0 * M_PI
        * static_cast<double>(now() % requestParams_->period)
        / static_cast<double>(requestParams_->period);
    double rate = requestParams_->baseRatePerMcycle
        * (1.0 + requestParams_->amplitude * std::sin(phase));
    std::size_t best = 0;
    double best_diff = std::abs(profile_.binRates[0] - rate);
    for (std::size_t b = 1; b < profile_.binRates.size(); ++b) {
        double diff = std::abs(profile_.binRates[b] - rate);
        if (diff < best_diff) {
            best = b;
            best_diff = diff;
        }
    }
    return best;
}

QuantumSchedule
OraclePolicy::decide(const QosReading &)
{
    std::size_t region = phaseSource_ ? phaseSource_->currentPhase()
                                      : currentBin();
    std::size_t cfg =
        profile_.cheapestMeeting(region, space_, cost_);
    QuantumSchedule sched;
    sched.over = sched.under = cfg;
    sched.tOver = quantum_;
    return sched;
}

// --------------------------------------------------- Race to idle

RaceToIdlePolicy::RaceToIdlePolicy(SSim &sim, VCoreId id,
                                   QosKind kind, double target,
                                   const ConfigSpace &space,
                                   const CostModel &cost,
                                   Cycle quantum, double tolerance,
                                   const AppProfile &profile)
    : BaselinePolicy("RaceToIdle", sim, id, kind, target, space,
                     cost, quantum, tolerance,
                     /*free_idle=*/kind == QosKind::Throughput),
      worstCaseCfg_(profile.cheapestMeetingAll(space, cost))
{
}

QuantumSchedule
RaceToIdlePolicy::decide(const QosReading &)
{
    QuantumSchedule sched;
    sched.over = sched.under = worstCaseCfg_;
    sched.tOver = quantum_;
    return sched;
}

// ---------------------------------------------- Convex optimizer

ConvexOptPolicy::ConvexOptPolicy(SSim &sim, VCoreId id, QosKind kind,
                                 double target,
                                 const ConfigSpace &space,
                                 const CostModel &cost,
                                 Cycle quantum, double tolerance,
                                 const AppProfile &profile)
    : BaselinePolicy("ConvexOpt", sim, id, kind, target, space,
                     cost, quantum, tolerance, /*free_idle=*/false),
      profile_(profile)
{
    // Upper convex hull of (cost rate, normalized average perf):
    // the only points a convex model can select. Andrew's monotone
    // chain over configs sorted by cost.
    std::vector<std::size_t> order(space.size());
    for (std::size_t k = 0; k < order.size(); ++k)
        order[k] = k;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  double ca = cost.ratePerHour(space.at(a));
                  double cb = cost.ratePerHour(space.at(b));
                  if (ca != cb)
                      return ca < cb;
                  return normAvg(a) > normAvg(b);
              });

    auto cross_ok = [&](std::size_t a, std::size_t b,
                        std::size_t c) {
        // True if b is above segment a-c (keeps the hull concave).
        double xa = cost.ratePerHour(space.at(a));
        double xb = cost.ratePerHour(space.at(b));
        double xc = cost.ratePerHour(space.at(c));
        double ya = normAvg(a), yb = normAvg(b), yc = normAvg(c);
        return (xb - xa) * (yc - ya) - (yb - ya) * (xc - xa) < 0.0;
    };

    for (std::size_t k : order) {
        // Skip dominated points (costlier but not faster).
        if (!hull_.empty() && normAvg(hull_.back()) >= normAvg(k))
            continue;
        while (hull_.size() >= 2
               && !cross_ok(hull_[hull_.size() - 2], hull_.back(),
                            k)) {
            hull_.pop_back();
        }
        hull_.push_back(k);
    }
    if (hull_.empty())
        hull_.push_back(order.front());

    fixedBase_ = normAvg(0);
    if (fixedBase_ <= 0.0)
        fixedBase_ = 1e-3;
}

double
ConvexOptPolicy::normAvg(std::size_t k) const
{
    double avg = profile_.averagePerf(k);
    if (profile_.kind == QosKind::Throughput)
        return avg / monitor_.target();
    // averagePerf is 1/latency for request apps.
    return monitor_.target() * avg;
}

QuantumSchedule
ConvexOptPolicy::decide(const QosReading &last)
{
    // Deadbeat step against the *fixed* average-case base speed,
    // with the same noise deadband the CASH runtime uses.
    double q = last.valid ? last.normalized : 1.0;
    if (std::fabs(1.0 - q) > 0.04)
        speedup_ += (1.0 - q) / fixedBase_;
    speedup_ = std::clamp(speedup_, 0.0, 64.0);

    // Two-configuration mix restricted to the convex hull.
    double s_base = normAvg(0);
    double want = speedup_ * s_base; // back to normalized perf
    std::size_t lo = hull_.front();
    std::size_t hi = hull_.back();
    for (std::size_t i = 0; i + 1 < hull_.size(); ++i) {
        if (normAvg(hull_[i]) <= want
            && want <= normAvg(hull_[i + 1])) {
            lo = hull_[i];
            hi = hull_[i + 1];
            break;
        }
    }
    QuantumSchedule sched;
    if (want <= normAvg(hull_.front())) {
        sched.over = sched.under = hull_.front();
        sched.tOver = quantum_;
        return sched;
    }
    if (want >= normAvg(hull_.back())) {
        sched.over = sched.under = hull_.back();
        sched.tOver = quantum_;
        return sched;
    }
    double span = normAvg(hi) - normAvg(lo);
    double frac = span > 1e-12 ? (want - normAvg(lo)) / span : 1.0;
    frac = std::clamp(frac, 0.0, 1.0);
    sched.over = hi;
    sched.under = lo;
    sched.tOver = static_cast<Cycle>(
        frac * static_cast<double>(quantum_));
    sched.tUnder = quantum_ - sched.tOver;
    return sched;
}

// ------------------------------------------------------- CASH

CashPolicy::CashPolicy(SSim &sim, VCoreId id, QosKind kind,
                       double target, const ConfigSpace &space,
                       const CostModel &cost,
                       const RuntimeParams &params,
                       std::uint64_t seed)
    : Policy("CASH", params.quantum), sim_(sim), id_(id),
      space_(space), cost_(cost),
      runtime_(sim, id, kind, target, space, cost, params, seed)
{
}

Cycle
CashPolicy::now() const
{
    return sim_.vcore(id_).now();
}

bool
CashPolicy::finished() const
{
    return finishedFlag_;
}

void
CashPolicy::runQuantum()
{
    QuantumStats st = runtime_.step();
    stats_.cost += st.cost;
    stats_.cycles += st.cycles;
    stats_.qosSum += st.qos * st.samples;
    stats_.samples += st.samples;
    stats_.violations += st.violations;
    stats_.reconfigs += st.reconfigs;
    if (st.cycles > 0) {
        series_.push_back(SeriesPoint{
            now(),
            st.cost / cost_.hours(st.cycles),
            st.qos,
            runtime_.currentConfig()});
    }
    finishedFlag_ = st.finished;
}

} // namespace cash
