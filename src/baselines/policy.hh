/**
 * @file
 * The resource-allocation policies the paper compares (Sec VI).
 *
 *  - OraclePolicy: per-phase (or per-rate-bin) cheapest
 *    configuration that meets the QoS target, from the brute-force
 *    characterization — the paper's "Optimal".
 *  - RaceToIdlePolicy: the single cheapest configuration meeting
 *    the target in the worst case, held forever. For paced
 *    (throughput) workloads idling is free per the paper's
 *    optimistic assumption; for latency workloads the reservation
 *    is charged continuously ("always reserves resources").
 *  - ConvexOptPolicy: a feedback controller over a *fixed convex
 *    average-case model* — only configurations on the upper convex
 *    hull of (cost, average speedup) are reachable, so per-phase
 *    local optima are invisible to it.
 *  - CashPolicy: adapter over the real CashRuntime (Sec IV).
 *
 * Coarse-grain (big.LITTLE) variants are the same policies run on
 * a two-configuration custom ConfigSpace.
 *
 * Every policy records a per-quantum time series (cost rate,
 * normalized QoS, configuration) for the paper's Figs 2/8/9.
 */

#ifndef CASH_BASELINES_POLICY_HH
#define CASH_BASELINES_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/profile.hh"
#include "core/monitor.hh"
#include "core/optimizer.hh"
#include "core/runtime.hh"
#include "sim/ssim.hh"
#include "workload/trace_gen.hh"

namespace cash
{

/**
 * One time-series observation (per quantum).
 */
struct SeriesPoint
{
    Cycle cycle = 0;
    double costRate = 0.0; ///< $/hr being charged
    double qos = 0.0;      ///< normalized (1.0 = on target)
    std::size_t config = 0;
};

/**
 * Aggregated policy statistics.
 */
struct PolicyStats
{
    double cost = 0.0;
    Cycle cycles = 0;
    Cycle busyCycles = 0;
    std::uint64_t samples = 0;
    std::uint64_t violations = 0;
    double qosSum = 0.0;
    std::uint32_t reconfigs = 0;

    double
    meanQos() const
    {
        return samples ? qosSum / static_cast<double>(samples) : 0.0;
    }

    double
    violationPct() const
    {
        return samples ? 100.0 * static_cast<double>(violations)
                / static_cast<double>(samples)
                       : 0.0;
    }
};

/**
 * Abstract policy: drives one virtual core quantum by quantum.
 */
class Policy
{
  public:
    Policy(std::string name, Cycle quantum);
    virtual ~Policy() = default;

    /** Execute one control quantum. */
    virtual void runQuantum() = 0;

    /** Current simulated time of the managed vcore. */
    virtual Cycle now() const = 0;

    virtual bool finished() const = 0;

    /** Run quanta until the vcore clock reaches the horizon. */
    void run(Cycle horizon);

    const std::string &name() const { return name_; }
    const PolicyStats &stats() const { return stats_; }
    const std::vector<SeriesPoint> &series() const { return series_; }

  protected:
    std::string name_;
    Cycle quantum_;
    PolicyStats stats_;
    std::vector<SeriesPoint> series_;
};

/**
 * Shared machinery for the profile-driven baselines: executes a
 * (possibly two-slot) schedule per quantum, samples QoS, accounts
 * cost (optionally free-idling), and counts violations.
 */
class BaselinePolicy : public Policy
{
  public:
    /**
     * @param free_idle do not charge for cycles the vcore idled
     *        (the paper's race-to-idle assumption)
     */
    BaselinePolicy(std::string name, SSim &sim, VCoreId id,
                   QosKind kind, double target,
                   const ConfigSpace &space, const CostModel &cost,
                   Cycle quantum, double tolerance, bool free_idle);

    void runQuantum() override;
    Cycle now() const override;
    bool finished() const override { return finished_; }

  protected:
    /** The policy brain: schedule for the next quantum. */
    virtual QuantumSchedule decide(const QosReading &last) = 0;

    void runSlot(std::size_t cfg, Cycle duration);

    SSim &sim_;
    VCoreId id_;
    const ConfigSpace &space_;
    const CostModel &cost_;
    VCoreMonitor monitor_;
    double tolerance_;
    bool freeIdle_;
    std::size_t currentCfg_;
    QosReading lastReading_;
    bool finished_ = false;
    Cycle lastIdle_ = 0;
    bool flipOrder_ = false;
    std::uint64_t quantaRun_ = 0;
    std::uint32_t warmupQuanta_ = 5;
    double ewmaQ_ = 1.0;
    /** Per-quantum accumulators (cycle-weighted QoS, cost rate). */
    double quantumQ_ = 0.0;
    Cycle quantumValid_ = 0;
    double quantumCostRate_ = 0.0;
    Cycle quantumCycles_ = 0;
};

/**
 * The paper's "Optimal": phase-aware cheapest-feasible allocation.
 */
class OraclePolicy : public BaselinePolicy
{
  public:
    /**
     * @param profile brute-force characterization
     * @param phase_source the workload's phase oracle (throughput
     *        apps; may be nullptr for request apps)
     * @param request_params request stream (request apps)
     */
    OraclePolicy(SSim &sim, VCoreId id, QosKind kind, double target,
                 const ConfigSpace &space, const CostModel &cost,
                 Cycle quantum, double tolerance,
                 const AppProfile &profile,
                 const PhasedTraceSource *phase_source,
                 const RequestStreamParams *request_params);

  protected:
    QuantumSchedule decide(const QosReading &last) override;

  private:
    /** Current rate bin for request apps. */
    std::size_t currentBin() const;

    const AppProfile &profile_;
    const PhasedTraceSource *phaseSource_;
    const RequestStreamParams *requestParams_;
};

/**
 * Race-to-idle: worst-case allocation, free idling (throughput).
 */
class RaceToIdlePolicy : public BaselinePolicy
{
  public:
    RaceToIdlePolicy(SSim &sim, VCoreId id, QosKind kind,
                     double target, const ConfigSpace &space,
                     const CostModel &cost, Cycle quantum,
                     double tolerance, const AppProfile &profile);

  protected:
    QuantumSchedule decide(const QosReading &last) override;

  private:
    std::size_t worstCaseCfg_;
};

/**
 * Convex optimization: feedback control over a fixed convex
 * average-case model (no learning, no phase adaptation).
 */
class ConvexOptPolicy : public BaselinePolicy
{
  public:
    ConvexOptPolicy(SSim &sim, VCoreId id, QosKind kind,
                    double target, const ConfigSpace &space,
                    const CostModel &cost, Cycle quantum,
                    double tolerance, const AppProfile &profile);

    /** Configurations on the model's convex hull (for tests). */
    const std::vector<std::size_t> &hull() const { return hull_; }

  protected:
    QuantumSchedule decide(const QosReading &last) override;

  private:
    /** Normalized average-case performance of config k. */
    double normAvg(std::size_t k) const;

    const AppProfile &profile_;
    std::vector<std::size_t> hull_;
    double fixedBase_;
    double speedup_ = 1.0;
};

/**
 * Adapter running the real CashRuntime under the Policy interface.
 */
class CashPolicy : public Policy
{
  public:
    CashPolicy(SSim &sim, VCoreId id, QosKind kind, double target,
               const ConfigSpace &space, const CostModel &cost,
               const RuntimeParams &params, std::uint64_t seed = 7);

    void runQuantum() override;
    Cycle now() const override;
    bool finished() const override;

    const CashRuntime &runtime() const { return runtime_; }

  private:
    SSim &sim_;
    VCoreId id_;
    const ConfigSpace &space_;
    const CostModel &cost_;
    CashRuntime runtime_;
    bool finishedFlag_ = false;
};

} // namespace cash

#endif // CASH_BASELINES_POLICY_HH
