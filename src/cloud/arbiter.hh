/**
 * @file
 * The fabric arbiter: provider-side mediation of EXPAND demands.
 *
 * Under fine-grain tenancy every tenant's CashRuntime issues its
 * own EXPAND/SHRINK commands over the RIN. When the chip is tight
 * those demands conflict, and first-come-first-served would starve
 * whichever tenant happens to step last. The arbiter restores
 * provider policy:
 *
 *  - Grant ordering: each round, tenants step (and therefore
 *    claim tiles) in deficit-then-price order — QoS-starved
 *    tenants first, higher-paying tenants breaking ties.
 *  - Partial grants: an EXPAND that exceeds free capacity is
 *    clamped to what the fabric can actually supply (bank counts
 *    rounded down to the tenant's power-of-two ladder) instead of
 *    failing outright; the runtime bills and learns at the granted
 *    configuration.
 *  - Compaction: the allocator never *denies* for shape — Slices
 *    are interchangeable (paper Sec III-A) — but expansion into a
 *    fragmented fabric lands far from the tenant's existing tiles
 *    and degrades L2 distance. When live fragmentation exceeds a
 *    threshold the arbiter asks for a chip-level compact() before
 *    the grant, so the denial-in-quality is repaired by
 *    rescheduling, exactly as the paper prescribes.
 */

#ifndef CASH_CLOUD_ARBITER_HH
#define CASH_CLOUD_ARBITER_HH

#include <cstdint>
#include <vector>

#include "cloud/tenant.hh"
#include "fabric/allocator.hh"

namespace cash::cloud
{

/** Arbiter tunables. */
struct ArbiterParams
{
    /** Live fragmentation (mean excess Slice span, hops) above
     *  which an EXPAND triggers compaction first. */
    double fragThreshold = 1.5;
    /** Minimum rounds between compactions (migration stalls are
     *  real; do not thrash). */
    std::uint32_t compactInterval = 8;
    /** Per-tenant configuration cap (the provider's largest
     *  sellable instance), in Slices and 64 KB L2 banks. */
    std::uint32_t maxSlices = 4;
    std::uint32_t maxBanks = 16;
};

/** How one EXPAND/SHRINK demand was resolved. */
enum class GrantKind : std::uint8_t
{
    Full,    ///< requested == granted
    Partial, ///< clamped to available capacity
    Denied,  ///< nothing beyond current holdings was available
};

/** The arbiter's answer to one demand. */
struct GrantDecision
{
    GrantKind kind = GrantKind::Full;
    VCoreConfig granted;
    /** Compact the fabric before applying the grant. */
    bool compactFirst = false;
};

/** One tenant competing for this round's grant order. */
struct GrantCandidate
{
    TenantId id = invalidTenant;
    /** QoS deficit: max(0, 1 - ewma normalized QoS). */
    double deficit = 0.0;
    /** $/hr the tenant currently pays (price-aware tie-break). */
    double paidRate = 0.0;
};

/** Lifetime arbitration counters. */
struct ArbiterStats
{
    std::uint64_t fullGrants = 0;
    std::uint64_t partialGrants = 0;
    std::uint64_t denials = 0;
    std::uint64_t compactions = 0;
};

/**
 * Deterministic, allocator-aware grant policy. The provider owns
 * the chip; the arbiter only decides.
 */
class FabricArbiter
{
  public:
    explicit FabricArbiter(const ArbiterParams &params);

    /**
     * Order this round's tenants for stepping (and hence tile
     * claiming): largest deficit first, then highest paid rate,
     * then lowest id (stable across runs by construction).
     */
    std::vector<TenantId>
    grantOrder(std::vector<GrantCandidate> candidates) const;

    /**
     * Resolve one demand against current fabric state. Never
     * refuses outright: a demand with nothing available resolves
     * to the tenant's current holdings (GrantKind::Denied), which
     * the fabric applies as a zero-cost no-op.
     *
     * @param held the tenant's current configuration
     * @param requested the demanded configuration
     * @param alloc fabric occupancy
     * @param round current provider round (compaction pacing)
     */
    GrantDecision decide(const VCoreConfig &held,
                         const VCoreConfig &requested,
                         const FabricAllocator &alloc,
                         std::uint64_t round);

    /** Record that the provider executed a compaction. */
    void noteCompacted(std::uint64_t round);

    const ArbiterStats &stats() const { return stats_; }
    const ArbiterParams &params() const { return params_; }

  private:
    ArbiterParams params_;
    ArbiterStats stats_;
    std::uint64_t lastCompactRound_ = 0;
    bool everCompacted_ = false;
};

} // namespace cash::cloud

#endif // CASH_CLOUD_ARBITER_HH
