/**
 * @file
 * Provider admission control.
 *
 * An arriving tenant asks for an entry configuration — the minimum
 * it will accept under fine-grain tenancy, or its full static
 * reservation under the coarse baselines. The controller answers
 * one of three ways:
 *
 *  - Admit: the fabric can host the entry configuration right now.
 *  - Queue: it cannot right now, but could once tenants depart;
 *    the arrival waits (FIFO, bounded queue, bounded patience).
 *  - Reject: the queue is full, or the request exceeds what the
 *    chip could supply even empty (impossible requests never
 *    queue).
 *
 * Capacity is the only hard limit — the CASH fabric never refuses
 * an allocation for *shape* reasons, because Slices are
 * interchangeable and fragmentation is repairable by rescheduling
 * (paper Sec III-A); placement quality is the arbiter's concern,
 * not admission's.
 */

#ifndef CASH_CLOUD_ADMISSION_HH
#define CASH_CLOUD_ADMISSION_HH

#include <cstdint>

#include "core/config_space.hh"
#include "fabric/allocator.hh"

namespace cash::cloud
{

/** What admission decided for one arrival (or queue retry). */
enum class AdmissionVerdict : std::uint8_t
{
    Admit,
    Queue,
    Reject,
};

/** Printable verdict name. */
const char *admissionVerdictName(AdmissionVerdict v);

/** Admission tunables. */
struct AdmissionParams
{
    /** Arrivals the waiting queue holds before rejecting. */
    std::uint32_t queueLimit = 4;
    /** Rounds a queued arrival waits before giving up. */
    std::uint32_t patienceRounds = 16;
};

/**
 * Stateless admission logic (the provider owns the queue itself;
 * the controller only judges one request against fabric state).
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionParams &params);

    /**
     * Judge an entry request.
     *
     * @param entry the configuration the tenant needs to start
     * @param alloc current fabric occupancy
     * @param queue_depth arrivals already waiting
     */
    AdmissionVerdict judge(const VCoreConfig &entry,
                           const FabricAllocator &alloc,
                           std::uint32_t queue_depth) const;

    /** True if the fabric can host `entry` right now. */
    static bool fits(const VCoreConfig &entry,
                     const FabricAllocator &alloc);

    /** True if an empty chip could never host `entry` (the grid
     *  minus the reserved runtime Slice). */
    static bool impossible(const VCoreConfig &entry,
                           const FabricAllocator &alloc);

    const AdmissionParams &params() const { return params_; }

  private:
    AdmissionParams params_;
};

} // namespace cash::cloud

#endif // CASH_CLOUD_ADMISSION_HH
