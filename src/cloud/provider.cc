#include "cloud/provider.hh"

#include <algorithm>

#include "baselines/experiment.hh"
#include "check/invariant.hh"
#include "common/log.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace cash::cloud
{

const char *
provisioningName(Provisioning p)
{
    switch (p) {
      case Provisioning::FineGrain: return "fine-grain";
      case Provisioning::StaticPeak: return "static-peak";
      case Provisioning::CoarseGrain: return "coarse-grain";
    }
    return "?";
}

CloudProvider::CloudProvider(const ProviderParams &params)
    : params_(params),
      sim_(params.fabric, params.sim),
      space_(params.arbiter.maxSlices, params.arbiter.maxBanks),
      admission_(params.admission),
      arbiter_(params.arbiter),
      arrivalsRng_(params.seed)
{
    if (params_.catalog.empty())
        params_.catalog = defaultCatalog();
    if (params_.simMode == SimMode::Sampled)
        sim_.setSampling(SimMode::Sampled, params_.sampler);
    if (params_.provisioning == Provisioning::FineGrain)
        sim_.setCommandGate(
            [this](VCoreId id, const CommandRequest &req) {
                return gateCommand(id, req);
            });
}

CloudProvider::~CloudProvider() = default;

namespace
{

/** Lifecycle events are timestamped at round granularity: one
 *  provider round spans one quantum of simulated time. */
Cycle
roundTs(std::uint64_t round, Cycle quantum)
{
    return static_cast<Cycle>(round) * quantum;
}

} // namespace

VCoreConfig
CloudProvider::entryConfig(const TenantClass &cls) const
{
    switch (params_.provisioning) {
      case Provisioning::FineGrain:
        return cls.minCfg;
      case Provisioning::StaticPeak:
        return cls.peakCfg;
      case Provisioning::CoarseGrain:
        if (cls.peakCfg.slices <= params_.coarseLittle.slices
            && cls.peakCfg.banks <= params_.coarseLittle.banks)
            return params_.coarseLittle;
        return params_.coarseBig;
    }
    return cls.minCfg;
}

VCoreConfig
CloudProvider::startConfig(const Tenant &t) const
{
    VCoreConfig entry = entryConfig(t.cls);
    if (params_.provisioning != Provisioning::FineGrain)
        return entry;
    // Fine-grain tenants are *admitted* at their minimum (that is
    // admission's capacity test) but *start* at the largest free
    // configuration up to their class peak: the runtime then
    // consolidates from above, and converging downward never
    // violates the SLA. Banks stay powers of two (RIN constraint,
    // as in the arbiter's grants).
    const FabricAllocator &al = sim_.allocator();
    std::uint32_t slices = std::clamp(
        al.freeSlices(), entry.slices, t.cls.peakCfg.slices);
    std::uint32_t want =
        std::min(al.freeBanks(), t.cls.peakCfg.banks);
    std::uint32_t banks = entry.banks;
    while (banks * 2 <= want)
        banks *= 2;
    return {slices, banks};
}

void
CloudProvider::bindExecution(Tenant &t, const VCoreConfig &cfg,
                             std::uint64_t src_seed,
                             std::uint64_t fast_forward)
{
    auto id = sim_.createVCore(cfg.slices, cfg.banks);
    CASH_AUDIT(id.has_value(),
               "bindExecution() for tenant %u but %s does not fit",
               t.id, cfg.str().c_str());

    t.vcore = *id;
    t.state = TenantState::Active;
    t.admitRound = round_;
    t.srcSeed = src_seed;

    AppModel app =
        scalePhases(appByName(t.cls.app), params_.phaseScale);
    t.inner = makeSource(app, src_seed);
    if (fast_forward > 0) {
        // A migrant resumes its trace mid-stream: replay the
        // (cheap, deterministic) generator draws up to the emitted
        // position the snapshot recorded.
        auto *phased =
            dynamic_cast<PhasedTraceSource *>(t.inner.get());
        CASH_AUDIT(phased != nullptr,
                   "tenant %u migrated with a non-replayable source",
                   t.id);
        for (std::uint64_t i = 0; i < fast_forward; ++i)
            phased->next(0);
    }
    if (t.cls.kind == QosKind::Throughput)
        t.paced = std::make_unique<PacedSource>(*t.inner, t.target);
    sim_.vcore(t.vcore).bindSource(t.boundSource());

    if (params_.provisioning == Provisioning::FineGrain) {
        RuntimeParams rp = params_.runtime;
        rp.quantum = params_.quantum;
        rp.violationTolerance = params_.tolerance;
        rp.warmupQuanta = params_.warmupRounds;
        t.runtime = std::make_unique<CashRuntime>(
            sim_, t.vcore, t.cls.kind, t.target, space_,
            params_.pricing, rp, params_.seed ^ (t.id + 1));
    } else {
        t.monitor = std::make_unique<VCoreMonitor>(
            sim_, t.vcore, t.cls.kind, t.target);
    }
}

void
CloudProvider::activate(Tenant &t)
{
    VCoreConfig entry = startConfig(t);
    // Per-tenant source seed: two tenants of the same class still
    // run distinct (but reproducible) traces.
    bindExecution(t, entry, (params_.seed << 8) + t.id + 1, 0);

    // Admission-time cost estimate carries the energy axis: nominal
    // leakage of the entry configuration plus switching energy at
    // the QoS-target instruction rate (latency apps get the same
    // coarse 0.5-IPC guess the runtime's rate model uses).
    const EnergyParams &ep = params_.sim.energy;
    double est_ipc =
        t.cls.kind == QosKind::Throughput ? t.target : 0.5;
    double est_watts = leakWatts(ep, entry.slices, entry.banks, 0)
        + est_ipc * 1e9 * ep.approxPerInstPJ * 1e-12;

    CASH_TRACE_INSTANT(trace::Category::Cloud, "admit",
                       roundTs(round_, params_.quantum),
                       {{"tenant", t.id},
                        {"vcore", t.vcore},
                        {"slices", entry.slices},
                        {"banks", entry.banks},
                        {"target", t.target},
                        {"est_watts", est_watts},
                        {"est_energy_dps", ep.dollars(est_watts)},
                        {"waited", round_ - t.arrivalRound}});
    CASH_METRIC_INC("cloud.admits");
}

void
CloudProvider::syncEnergy(Tenant &t)
{
    if (t.state != TenantState::Active || t.vcore == invalidVCore)
        return;
    double metered = sim_.vcore(t.vcore).energyJoules();
    double delta = metered - t.energySynced;
    t.energyAcc += delta;
    t.energySynced = metered;
    stats_.dissipatedJoules += delta;
}

double
CloudProvider::tenantJoules(const Tenant &t) const
{
    // Books plus whatever the live meter has accrued since the last
    // sync (mirrors how bill() reads through a live runtime).
    double j = t.energyAcc;
    if (t.state == TenantState::Active && t.vcore != invalidVCore)
        j += sim_.vcore(t.vcore).energyJoules() - t.energySynced;
    return j;
}

void
CloudProvider::accrueOverhead(Cycle cycles)
{
    const EnergyParams &ep = params_.sim.energy;
    const FabricAllocator &al = sim_.allocator();
    // Free tiles and the reserved runtime Slice leak at nominal
    // voltage whether or not anyone rents them; RIN messages burn
    // interface-network energy. Neither is billable to a tenant —
    // it is the provider's cost of doing business, and the
    // conservation audit tracks it separately.
    double leak_pj = static_cast<double>(cycles)
        * (static_cast<double>(al.freeSlices() + 1) * ep.sliceLeakPJ
           + static_cast<double>(al.freeBanks()) * ep.bankLeakPJ);
    double rin_pj = static_cast<double>(
        sim_.rinMessages() - stats_.rinMessagesSeen) * ep.rinPJ;
    stats_.rinMessagesSeen = sim_.rinMessages();
    stats_.overheadJoules += (leak_pj + rin_pj) * 1e-12;
}

void
CloudProvider::depart(Tenant &t)
{
    // Close the energy meter while the vcore is still alive; the
    // final bill carries every joule the tenant ever dissipated.
    syncEnergy(t);
    t.state = TenantState::Departed;
    t.departRound = round_;
    ++stats_.departed;
    // Capture the shard-local tallies before dropping the runtime
    // (the accessors read through it while it exists, and add the
    // migrated-in carry on top).
    if (t.runtime) {
        t.billed = t.runtime->totalCost();
        t.samples = t.runtime->totalSamples();
        t.violations = t.runtime->totalViolations();
    }
    stats_.departedRevenue += t.bill();
    // Injected fault: drop the departing tenant's joules instead of
    // folding them into the departed ledger. auditEnergy() must
    // catch the broken conservation identity.
    if (!CASH_FAULT_ARMED(Fault::EnergyLeak))
        stats_.departedJoules += t.energyAcc - t.migratedJoules;
    stats_.departedEnergyRevenue +=
        params_.sim.energy.dollars(t.energyAcc);
    stats_.slaSamples += t.qosSamples();
    stats_.slaViolations += t.qosViolations();
    CASH_TRACE_INSTANT(trace::Category::Cloud, "depart",
                       roundTs(round_, params_.quantum),
                       {{"tenant", t.id},
                        {"bill", t.bill()},
                        {"joules", t.energyAcc},
                        {"samples", t.qosSamples()},
                        {"violations", t.qosViolations()},
                        {"rounds", t.activeRounds}});
    CASH_METRIC_INC("cloud.departs");
    CASH_METRIC_SAMPLE("cloud.tenant_bill", t.bill());
    CASH_METRIC_SAMPLE("cloud.tenant_joules", t.energyAcc);
    t.runtime.reset();
    t.monitor.reset();

    if (t.vcore != invalidVCore) {
        // Injected fault: "forget" to release the departed tenant's
        // fabric. auditProvider() must catch the leaked holding.
        if (!CASH_FAULT_ARMED(Fault::ProviderLeakHolding)) {
            sim_.destroyVCore(t.vcore);
            t.vcore = invalidVCore;
        }
    }
    t.paced.reset();
    t.inner.reset();
}

void
CloudProvider::judgeArrival(Tenant &t)
{
    if (draining_) {
        // Admissions are closed; the arrival still consumed its
        // stream draws (processArrivals) so determinism holds.
        t.state = TenantState::Rejected;
        ++stats_.rejected;
        CASH_TRACE_INSTANT(trace::Category::Cloud, "reject",
                           roundTs(round_, params_.quantum),
                           {{"tenant", t.id}, {"draining", 1}});
        CASH_METRIC_INC("cloud.rejects");
        return;
    }
    AdmissionVerdict v = admission_.judge(
        entryConfig(t.cls), sim_.allocator(),
        static_cast<std::uint32_t>(queue_.size()));
    switch (v) {
      case AdmissionVerdict::Admit:
        ++stats_.admitted;
        activate(t);
        break;
      case AdmissionVerdict::Queue:
        t.state = TenantState::Queued;
        t.patienceRounds = params_.admission.patienceRounds;
        queue_.push_back(t.id);
        CASH_TRACE_INSTANT(trace::Category::Cloud, "queue",
                           roundTs(round_, params_.quantum),
                           {{"tenant", t.id},
                            {"depth", queue_.size()}});
        CASH_METRIC_INC("cloud.queued");
        break;
      case AdmissionVerdict::Reject:
        t.state = TenantState::Rejected;
        ++stats_.rejected;
        CASH_TRACE_INSTANT(trace::Category::Cloud, "reject",
                           roundTs(round_, params_.quantum),
                           {{"tenant", t.id}});
        CASH_METRIC_INC("cloud.rejects");
        break;
    }
}

void
CloudProvider::processDepartures()
{
    for (auto &tp : tenants_) {
        Tenant &t = *tp;
        if (t.state == TenantState::Active
            && t.activeRounds >= t.residenceRounds)
            depart(t);
    }
}

void
CloudProvider::processQueue()
{
    // Age the queue first: a tenant that has waited out its patience
    // abandons before this round's retry.
    std::vector<TenantId> kept;
    kept.reserve(queue_.size());
    for (TenantId id : queue_) {
        Tenant &t = *tenants_[id];
        if (t.patienceRounds == 0) {
            t.state = TenantState::Rejected;
            ++stats_.abandoned;
            CASH_TRACE_INSTANT(trace::Category::Cloud, "abandon",
                               roundTs(round_, params_.quantum),
                               {{"tenant", t.id},
                                {"waited", round_ - t.arrivalRound}});
            CASH_METRIC_INC("cloud.abandons");
            continue;
        }
        --t.patienceRounds;
        kept.push_back(id);
    }
    queue_ = std::move(kept);

    // Strict FIFO: admit from the head while the head fits. A large
    // head blocks smaller arrivals behind it — that is the fairness
    // the bounded queue sells (no starvation of big tenants).
    while (!queue_.empty()) {
        Tenant &t = *tenants_[queue_.front()];
        if (!AdmissionController::fits(entryConfig(t.cls),
                                       sim_.allocator()))
            break;
        ++stats_.admitted;
        activate(t);
        queue_.erase(queue_.begin());
    }
}

void
CloudProvider::processArrivals()
{
    // Draw the whole arrival tuple unconditionally so the stream
    // stays aligned no matter what admission decides.
    if (!arrivalsRng_.nextBool(params_.arrivalProb))
        return;
    std::size_t cls_index = static_cast<std::size_t>(
        arrivalsRng_.nextBounded(params_.catalog.size()));
    double jitter_u = arrivalsRng_.nextDouble();
    double residence = arrivalsRng_.nextExponential(
        1.0 / params_.meanResidenceRounds);

    const TenantClass &cls = params_.catalog[cls_index];
    auto t = std::make_unique<Tenant>();
    t->id = static_cast<TenantId>(tenants_.size());
    t->cls = cls;
    // Downward-only jitter: the catalog target is the class's
    // *maximum* sellable QoS (derived with only an 8% feasibility
    // margin over the per-tenant cap), so scaling it up would sell
    // a target no configuration can deliver.
    t->target = cls.target * (1.0 - params_.targetJitter * jitter_u);
    t->residenceRounds = static_cast<std::uint32_t>(residence) + 1;
    t->arrivalRound = round_;
    ++stats_.arrivals;
    Tenant &ref = *t;
    tenants_.push_back(std::move(t));
    judgeArrival(ref);
}

void
CloudProvider::stepActive()
{
    std::vector<GrantCandidate> cands;
    for (const auto &tp : tenants_) {
        const Tenant &t = *tp;
        if (t.state != TenantState::Active)
            continue;
        const VirtualCore &vc = sim_.vcore(t.vcore);
        VCoreConfig held{vc.numSlices(), vc.numBanks()};
        cands.push_back(
            {t.id, std::max(0.0, 1.0 - t.ewmaQ),
             params_.pricing.ratePerHour(held)});
    }

    for (TenantId id : arbiter_.grantOrder(std::move(cands))) {
        Tenant &t = *tenants_[id];
        if (t.runtime) {
            QuantumStats st = t.runtime->step();
            if (st.qos > 0.0)
                t.ewmaQ = 0.3 * st.qos + 0.7 * t.ewmaQ;
        } else {
            VirtualCore &vc = sim_.vcore(t.vcore);
            Cycle start = vc.now();
            vc.runUntil(start + params_.quantum);
            Cycle elapsed = vc.now() - start;
            QosReading r = t.monitor->sample();
            VCoreConfig held{vc.numSlices(), vc.numBanks()};
            t.billed += params_.pricing.cost(held, elapsed);
            if (r.valid)
                t.ewmaQ = 0.3 * r.normalized + 0.7 * t.ewmaQ;
            // Mirror the runtime's SLA accounting: one sample per
            // round past warmup, judged on the smoothed QoS.
            if (t.activeRounds >= params_.warmupRounds) {
                ++t.samples;
                if (t.ewmaQ < 1.0 - params_.tolerance)
                    ++t.violations;
            }
        }
        // Fold the quantum's joules into the tenant's books while
        // the meter is warm (depart/migrate close the residue).
        syncEnergy(t);
        ++t.activeRounds;
        ++stats_.tenantRounds;
    }
}

void
CloudProvider::step()
{
    processDepartures();
    processQueue();
    processArrivals();
    stepActive();
    accrueOverhead(params_.quantum);

    const FabricAllocator &al = sim_.allocator();
    const FabricGrid &g = al.grid();
    // The runtime's reserved Slice is overhead, not sellable
    // capacity: exclude it from both numerator and denominator.
    std::uint32_t usable = g.numSlices() - 1;
    std::uint32_t used = g.numSlices() - al.freeSlices() - 1;
    stats_.sliceUtilSum += usable
        ? static_cast<double>(used) / static_cast<double>(usable)
        : 0.0;
    stats_.bankUtilSum += g.numBanks()
        ? static_cast<double>(g.numBanks() - al.freeBanks())
            / static_cast<double>(g.numBanks())
        : 0.0;

    ++round_;
    ++stats_.rounds;
}

void
CloudProvider::run(std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i)
        step();
}

TenantId
CloudProvider::injectArrival(std::size_t cls_index,
                             std::uint32_t residence_rounds)
{
    if (cls_index >= params_.catalog.size())
        return invalidTenant;
    const TenantClass &cls = params_.catalog[cls_index];
    auto t = std::make_unique<Tenant>();
    t->id = static_cast<TenantId>(tenants_.size());
    t->cls = cls;
    t->target = cls.target;
    t->residenceRounds = std::max(residence_rounds, 1u);
    t->arrivalRound = round_;
    ++stats_.arrivals;
    Tenant &ref = *t;
    tenants_.push_back(std::move(t));
    judgeArrival(ref);
    return ref.id;
}

bool
CloudProvider::injectDeparture(TenantId id)
{
    if (id >= tenants_.size())
        return false;
    Tenant &t = *tenants_[id];
    if (t.state == TenantState::Active) {
        depart(t);
        return true;
    }
    if (t.state == TenantState::Queued) {
        // Leaving the queue without ever being served is an
        // abandonment, not a departure (keeps the lifecycle algebra
        // auditProvider checks: admitted == active + departed).
        queue_.erase(std::remove(queue_.begin(), queue_.end(), id),
                     queue_.end());
        t.state = TenantState::Rejected;
        t.departRound = round_;
        ++stats_.abandoned;
        return true;
    }
    return false;
}

bool
CloudProvider::injectSetFreq(TenantId id, std::uint32_t pstate)
{
    if (id >= tenants_.size() || pstate >= kNumPStates)
        return false;
    Tenant &t = *tenants_[id];
    if (t.state != TenantState::Active)
        return false;
    return sim_.setFreq(t.vcore, pstate).has_value();
}

std::vector<FinalBill>
CloudProvider::drain()
{
    draining_ = true;

    // Queued tenants never held fabric: they abandon (the lifecycle
    // algebra auditProvider checks counts them as turned away).
    std::vector<TenantId> waiting = queue_;
    for (TenantId id : waiting)
        injectDeparture(id);

    // Finalize every active tenant, ascending id for determinism.
    for (auto &tp : tenants_)
        if (tp->state == TenantState::Active)
            depart(*tp);

    CASH_TRACE_INSTANT(trace::Category::Cloud, "drain",
                       roundTs(round_, params_.quantum),
                       {{"departed", stats_.departed},
                        {"revenue", stats_.departedRevenue},
                        {"joules", stats_.dissipatedJoules}});
    CASH_METRIC_INC("cloud.drains");

    std::vector<FinalBill> bills;
    for (const auto &tp : tenants_) {
        const Tenant &t = *tp;
        if (t.state != TenantState::Departed)
            continue;
        bills.push_back({t.id, t.cls.app, t.bill(), t.energyAcc,
                         params_.sim.energy.dollars(t.energyAcc),
                         t.qosSamples(), t.qosViolations(),
                         params_.simMode == SimMode::Sampled});
    }
    return bills;
}

std::vector<TenantId>
CloudProvider::activeTenants() const
{
    std::vector<TenantId> ids;
    for (const auto &tp : tenants_)
        if (tp->state == TenantState::Active)
            ids.push_back(tp->id);
    return ids;
}

double
CloudProvider::revenue() const
{
    double total = stats_.departedRevenue;
    for (const auto &tp : tenants_)
        if (tp->state == TenantState::Active)
            total += tp->bill();
    return total;
}

double
CloudProvider::energyRevenue() const
{
    double total = stats_.departedEnergyRevenue;
    for (const auto &tp : tenants_)
        if (tp->state == TenantState::Active)
            total += params_.sim.energy.dollars(tenantJoules(*tp));
    return total;
}

double
CloudProvider::qosDelivery() const
{
    std::uint64_t samples = stats_.slaSamples;
    std::uint64_t violations = stats_.slaViolations;
    for (const auto &tp : tenants_) {
        if (tp->state != TenantState::Active)
            continue;
        samples += tp->qosSamples();
        violations += tp->qosViolations();
    }
    return samples ? 1.0
            - static_cast<double>(violations)
            / static_cast<double>(samples)
                   : 1.0;
}

Cycle
CloudProvider::migrationStall(const VCoreConfig &cfg) const
{
    // Leaving a chip costs what the paper charges a reconfiguration
    // that gives everything up (Sec IV / reconfig.hh): the
    // architectural-register flush bound plus the worst-case dirty
    // writeback of every held L2 bank. The pipeline flush is noise
    // at this scale.
    constexpr Cycle kRegFlush = 64;
    constexpr Cycle kBankFlush = 8000;
    return kRegFlush + kBankFlush * cfg.banks;
}

std::optional<TenantSnapshot>
CloudProvider::migrateOut(TenantId id)
{
    if (id >= tenants_.size())
        return std::nullopt;
    Tenant &t = *tenants_[id];
    if (t.state != TenantState::Active)
        return std::nullopt;
    auto *phased = dynamic_cast<PhasedTraceSource *>(t.inner.get());
    if (!phased)
        return std::nullopt; // request-driven sources do not move

    // Close the energy meter before the vcore (and its meter) is
    // torn down; the joules travel with the snapshot.
    syncEnergy(t);
    const VirtualCore &vc = sim_.vcore(t.vcore);
    VCoreConfig held{vc.numSlices(), vc.numBanks()};
    const CostModel &cm = params_.pricing;
    // This shard's priced holdings integral for the tenant.
    double holdings = cm.sliceRate() * cm.hours(vc.sliceCycles())
        + cm.bankRate() * cm.hours(vc.bankCycles());

    Cycle stall = migrationStall(held);
    double stall_cost = cm.cost(held, stall);

    TenantSnapshot snap;
    snap.cls = t.cls;
    snap.target = t.target;
    snap.residenceRounds = t.residenceRounds;
    snap.activeRounds = t.activeRounds;
    // The stall is billed to the tenant *and* counted as holdings:
    // both sides of the target shard's audit identity carry it.
    snap.migratedBill = t.bill() + stall_cost;
    snap.migratedHoldings = t.migratedHoldings + holdings + stall_cost;
    snap.unbilledCompactCost = t.unbilledCompactCost;
    snap.qosSamples = t.qosSamples();
    snap.qosViolations = t.qosViolations();
    snap.ewmaQ = t.ewmaQ;
    snap.srcSeed = t.srcSeed;
    snap.srcEmitted = phased->emitted();
    snap.heldCfg = held;
    snap.stallCycles = stall;
    snap.hops = t.migrantHops + 1;
    snap.joules = t.energyAcc;
    // This shard's share of the tenant's joules leaves the local
    // conservation identity through the exported ledger.
    stats_.exportedJoules += t.energyAcc - t.migratedJoules;

    // The ledger keeps the pre-stall view for queries on the old
    // id; the revenue moves with the snapshot.
    t.state = TenantState::Migrated;
    t.departRound = round_;
    if (t.runtime) {
        t.billed = t.runtime->totalCost();
        t.samples = t.runtime->totalSamples();
        t.violations = t.runtime->totalViolations();
    }
    t.runtime.reset();
    t.monitor.reset();
    sim_.destroyVCore(t.vcore);
    t.vcore = invalidVCore;
    t.paced.reset();
    t.inner.reset();
    ++stats_.migratedOut;

    CASH_TRACE_INSTANT(trace::Category::Cloud, "migrate_out",
                       roundTs(round_, params_.quantum),
                       {{"tenant", t.id},
                        {"bill", snap.migratedBill},
                        {"stall_cycles", stall},
                        {"slices", held.slices},
                        {"banks", held.banks}});
    CASH_METRIC_INC("cloud.migrates_out");
    return snap;
}

TenantId
CloudProvider::migrateIn(const TenantSnapshot &snap)
{
    auto t = std::make_unique<Tenant>();
    t->id = static_cast<TenantId>(tenants_.size());
    t->cls = snap.cls;
    t->target = snap.target;
    t->residenceRounds = snap.residenceRounds;
    t->activeRounds = snap.activeRounds;
    t->arrivalRound = round_;
    t->migratedBill = snap.migratedBill;
    t->migratedHoldings = snap.migratedHoldings;
    t->unbilledCompactCost = snap.unbilledCompactCost;
    t->migratedSamples = snap.qosSamples;
    t->migratedViolations = snap.qosViolations;
    t->ewmaQ = snap.ewmaQ;
    t->srcSeed = snap.srcSeed;
    t->migrantHops = snap.hops;
    // Prior shards' joules arrive as carried books: nothing on this
    // chip dissipated them, so they sit outside the local meter
    // (energySynced restarts at the fresh vcore's zero).
    t->energyAcc = snap.joules;
    t->migratedJoules = snap.joules;
    t->energySynced = 0.0;
    ++stats_.migratedIn;
    ++stats_.admitted; // placed or evicted, the books stay balanced
    Tenant &ref = *t;
    tenants_.push_back(std::move(t));

    // Placement: held configuration, then the class minimum, then
    // finalize on entry — a migrant never queues (its bill must not
    // be lost to an abandon) and never fails to be accounted.
    const FabricAllocator &al = sim_.allocator();
    VCoreConfig cfg = snap.heldCfg;
    bool fits = !draining_ && AdmissionController::fits(cfg, al);
    if (!fits) {
        cfg = ref.cls.minCfg;
        fits = !draining_ && AdmissionController::fits(cfg, al);
    }
    if (fits) {
        bindExecution(ref, cfg, snap.srcSeed, snap.srcEmitted);
        CASH_TRACE_INSTANT(trace::Category::Cloud, "migrate_in",
                           roundTs(round_, params_.quantum),
                           {{"tenant", ref.id},
                            {"slices", cfg.slices},
                            {"banks", cfg.banks},
                            {"hops", ref.migrantHops}});
        CASH_METRIC_INC("cloud.migrates_in");
    } else {
        // Evict-finalize: the tenant ends its stay here and now;
        // the carried bill lands in this shard's departed revenue.
        ref.state = TenantState::Departed;
        ref.departRound = round_;
        ++stats_.departed;
        ++stats_.migrateEvicted;
        stats_.departedRevenue += ref.bill();
        // Nothing was dissipated here (energyAcc == migratedJoules),
        // but the carried energy revenue lands in this shard's books
        // exactly like the carried tile bill.
        stats_.departedJoules += ref.energyAcc - ref.migratedJoules;
        stats_.departedEnergyRevenue +=
            params_.sim.energy.dollars(ref.energyAcc);
        stats_.slaSamples += ref.qosSamples();
        stats_.slaViolations += ref.qosViolations();
        CASH_TRACE_INSTANT(trace::Category::Cloud, "migrate_evict",
                           roundTs(round_, params_.quantum),
                           {{"tenant", ref.id},
                            {"bill", ref.bill()}});
        CASH_METRIC_INC("cloud.migrate_evicts");
    }
    return ref.id;
}

TenantId
CloudProvider::pickMigrant() const
{
    TenantId best = invalidTenant;
    std::uint32_t best_slices = 0;
    for (const auto &tp : tenants_) {
        const Tenant &t = *tp;
        if (t.state != TenantState::Active)
            continue;
        if (!dynamic_cast<PhasedTraceSource *>(t.inner.get()))
            continue;
        std::uint32_t slices = sim_.vcore(t.vcore).numSlices();
        if (best == invalidTenant || slices < best_slices) {
            best = t.id;
            best_slices = slices;
        }
    }
    return best;
}

std::optional<CommandRequest>
CloudProvider::gateCommand(VCoreId vcore, const CommandRequest &req)
{
    // Commands for vcores the provider does not manage (none in
    // normal operation) pass through untouched.
    const Tenant *owner = nullptr;
    for (const auto &tp : tenants_)
        if (tp->state == TenantState::Active && tp->vcore == vcore) {
            owner = tp.get();
            break;
        }
    if (!owner)
        return req;

    const VirtualCore &vc = sim_.vcore(vcore);
    VCoreConfig held{vc.numSlices(), vc.numBanks()};
    // SET_FREQ carries the held tile counts: the arbiter sees a
    // no-op tile request (always a full grant) and the P-state
    // passes through — frequency is not a contended fabric resource.
    GrantDecision d = arbiter_.decide(
        held, VCoreConfig{req.slices, req.banks}, sim_.allocator(),
        round_);
    CASH_TRACE_INSTANT(trace::Category::Cloud, "grant",
                       roundTs(round_, params_.quantum),
                       {{"tenant", owner->id},
                        {"vcore", vcore},
                        {"req_slices", req.slices},
                        {"req_banks", req.banks},
                        {"got_slices", d.granted.slices},
                        {"got_banks", d.granted.banks},
                        {"kind", static_cast<int>(d.kind)},
                        {"compact_first", d.compactFirst}});
    switch (d.kind) {
      case GrantKind::Full:
        CASH_METRIC_INC("cloud.grants_full");
        break;
      case GrantKind::Partial:
        CASH_METRIC_INC("cloud.grants_partial");
        break;
      case GrantKind::Denied:
        CASH_METRIC_INC("cloud.grants_denied");
        break;
    }
    if (d.compactFirst) {
        CompactOutcome out = sim_.compact();
        arbiter_.noteCompacted(round_);
        // The requester's migration stall lands inside its own
        // runtime slot and is billed there; every *other* moved
        // tenant stalls outside its own billing loop, so the
        // provider absorbs that holding cost (and the billing audit
        // accounts for it).
        for (std::size_t i = 0; i < out.moved.size(); ++i) {
            if (out.moved[i] == vcore)
                continue;
            for (const auto &tp : tenants_) {
                if (tp->state != TenantState::Active
                    || tp->vcore != out.moved[i])
                    continue;
                const VirtualCore &mv = sim_.vcore(tp->vcore);
                VCoreConfig cfg{mv.numSlices(), mv.numBanks()};
                tp->unbilledCompactCost +=
                    params_.pricing.cost(cfg, out.stalls[i]);
                break;
            }
        }
    }
    return CommandRequest{d.granted.slices, d.granted.banks,
                          req.pstate};
}

} // namespace cash::cloud
