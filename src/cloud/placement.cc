#include "cloud/placement.hh"

#include "cloud/provider.hh"
#include "common/log.hh"

namespace cash::cloud
{

ShardLoad
loadOf(const CloudProvider &provider)
{
    const FabricAllocator &al = provider.chip().allocator();
    const FabricGrid &g = al.grid();
    ShardLoad load;
    load.freeSlices = al.freeSlices();
    load.freeBanks = al.freeBanks();
    load.totalSlices = g.numSlices();
    load.totalBanks = g.numBanks();
    load.fragmentation = al.fragmentation();
    load.active =
        static_cast<std::uint32_t>(provider.activeTenants().size());
    load.queued =
        static_cast<std::uint32_t>(provider.queue().size());
    load.round = provider.round();
    return load;
}

const char *
placementPolicyName(PlacementPolicy p)
{
    switch (p) {
      case PlacementPolicy::BinPack: return "binpack";
      case PlacementPolicy::Spread: return "spread";
    }
    return "?";
}

std::optional<PlacementPolicy>
placementPolicyFromName(std::string_view name)
{
    if (name == "binpack")
        return PlacementPolicy::BinPack;
    if (name == "spread")
        return PlacementPolicy::Spread;
    return std::nullopt;
}

PlacementRouter::PlacementRouter(std::uint32_t shards,
                                 PlacementPolicy policy,
                                 const RebalanceParams &rebalance)
    : shards_(shards), policy_(policy), rebalance_(rebalance)
{
    if (shards_ == 0 || shards_ > kMaxShards)
        fatal("region must have 1..%u shards, got %u", kMaxShards,
              shards_);
    stats_.routed.assign(shards_, 0);
    lastMove_.assign(shards_, 0);
}

ShardId
PlacementRouter::chooseShard(const VCoreConfig &entry,
                             const std::vector<ShardLoad> &loads)
{
    if (loads.size() != shards_)
        panic("router given %zu loads for %u shards", loads.size(),
              shards_);
    ShardId best = 0;
    bool have_fit = false;
    for (ShardId s = 0; s < shards_; ++s) {
        const ShardLoad &l = loads[s];
        bool fits = l.freeSlices >= entry.slices
            && l.freeBanks >= entry.banks;
        if (!fits)
            continue;
        if (!have_fit) {
            have_fit = true;
            best = s;
            continue;
        }
        const ShardLoad &b = loads[best];
        // BinPack: fewest free Slices still fitting (most loaded).
        // Spread: most free Slices. Strict comparisons keep ties on
        // the lowest shard id.
        if (policy_ == PlacementPolicy::BinPack
                ? l.freeSlices < b.freeSlices
                : l.freeSlices > b.freeSlices)
            best = s;
    }
    if (!have_fit) {
        // Nothing fits: hand the arrival to the emptiest shard and
        // let its own admission layer queue or reject it.
        for (ShardId s = 1; s < shards_; ++s)
            if (loads[s].freeSlices > loads[best].freeSlices)
                best = s;
    }
    ++stats_.routed[best];
    return best;
}

bool
PlacementRouter::cooldownOver(ShardId shard,
                              std::uint64_t round) const
{
    std::uint64_t last = lastMove_[shard];
    return last == 0 || round >= last + rebalance_.cooldownRounds;
}

std::optional<RebalancePlan>
PlacementRouter::maybeRebalanceFrom(
    ShardId self, const std::vector<ShardLoad> &loads)
{
    if (!rebalance_.enabled || shards_ < 2)
        return std::nullopt;
    if (self >= shards_ || loads.size() != shards_)
        panic("rebalance from shard %u of %zu loads (%u shards)",
              self, loads.size(), shards_);
    const ShardLoad &me = loads[self];
    if (me.active == 0 || !cooldownOver(self, me.round))
        return std::nullopt;

    // Target: the emptiest *other* shard.
    ShardId to = self == 0 ? 1 : 0;
    for (ShardId s = 0; s < shards_; ++s)
        if (s != self && loads[s].freeSlices > loads[to].freeSlices)
            to = s;

    const char *reason = nullptr;
    if (rebalance_.fragThreshold > 0.0
        && me.fragmentation > rebalance_.fragThreshold)
        reason = "frag";
    else if (rebalance_.imbalanceThreshold > 0.0
             && me.totalSlices > 0) {
        std::uint32_t min_free = me.freeSlices;
        std::uint32_t max_free = me.freeSlices;
        for (const ShardLoad &l : loads) {
            min_free = std::min(min_free, l.freeSlices);
            max_free = std::max(max_free, l.freeSlices);
        }
        double imbalance =
            static_cast<double>(max_free - min_free)
            / static_cast<double>(me.totalSlices);
        // Only the crowded end moves tenants out.
        if (imbalance > rebalance_.imbalanceThreshold
            && me.freeSlices == min_free
            && loads[to].freeSlices == max_free)
            reason = "imbalance";
    }
    if (!reason || loads[to].freeSlices == 0)
        return std::nullopt;

    lastMove_[self] = me.round ? me.round : 1;
    ++stats_.rebalances;
    return RebalancePlan{self, to, reason};
}

std::optional<RebalancePlan>
PlacementRouter::maybeRebalance(const std::vector<ShardLoad> &loads)
{
    if (!rebalance_.enabled || shards_ < 2)
        return std::nullopt;
    // Most-loaded shard first: the one with the least free Slices.
    ShardId from = 0;
    for (ShardId s = 1; s < shards_; ++s)
        if (loads[s].freeSlices < loads[from].freeSlices)
            from = s;
    return maybeRebalanceFrom(from, loads);
}

} // namespace cash::cloud
