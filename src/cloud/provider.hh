/**
 * @file
 * CloudProvider: the multi-tenant IaaS layer over one CASH chip.
 *
 * The paper's pitch (Secs I, VI-B) is provider economics: pack many
 * customers onto one configurable fabric, move Slices and banks
 * between them as demand shifts, and bill at fine, per-tile
 * granularity. CloudProvider is that deployment:
 *
 *  - a seeded tenant arrival/departure process drawing applications
 *    from the provider catalog, each with its own QoS target and
 *    residence time;
 *  - admission control (cloud/admission.hh): arrivals the fabric
 *    cannot host at their entry configuration queue or are
 *    rejected;
 *  - per-tenant management under one of three provisioning schemes
 *    (fine-grain CASH tenancy with a private CashRuntime per
 *    tenant, static-peak reservation, or a coarse-grain big.LITTLE
 *    pair);
 *  - fabric arbitration (cloud/arbiter.hh) installed as the chip's
 *    RIN command gate under fine-grain tenancy;
 *  - provider accounting: per-tenant revenue at the paper's
 *    $0.0098/Slice-hr + $0.0032/bank-hr prices, chip utilization,
 *    and SLA-violation tracking.
 *
 * Determinism: a provider is a pure function of its parameters —
 * every stochastic draw comes from the seeded arrival stream, so
 * two providers with equal params behave identically and the
 * consolidation bench can fan provider runs out through
 * ExperimentEngine.
 */

#ifndef CASH_CLOUD_PROVIDER_HH
#define CASH_CLOUD_PROVIDER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/admission.hh"
#include "cloud/arbiter.hh"
#include "cloud/tenant.hh"
#include "common/rng.hh"
#include "sim/ssim.hh"

namespace cash::cloud
{

/** How the provider carves the chip for its customers. */
enum class Provisioning : std::uint8_t
{
    /** CASH tenancy: admit at the minimum configuration, let each
     *  tenant's runtime expand/shrink under arbitration. */
    FineGrain,
    /** Reserve each tenant's declared peak for its whole stay. */
    StaticPeak,
    /** big.LITTLE: reserve the big core if the tenant's peak
     *  exceeds the little one, else the little core. */
    CoarseGrain,
};

/** Printable provisioning name. */
const char *provisioningName(Provisioning p);

/** Provider tunables. */
struct ProviderParams
{
    FabricParams fabric;
    SimParams sim;
    Provisioning provisioning = Provisioning::FineGrain;
    /** Control/billing round length in cycles. */
    Cycle quantum = 500'000;
    /** Phase-length multiplier applied to tenant apps. The models
     *  define short phases; deployments stretch them to the
     *  multi-quantum timescale the runtimes track (the same knob as
     *  ExperimentParams::phaseScale). At 1.0 phases flip faster
     *  than any controller can follow. */
    double phaseScale = 20.0;
    /** Per-round Bernoulli probability of one tenant arrival. */
    double arrivalProb = 0.5;
    /** Mean tenant residence once active, in rounds (exponential,
     *  drawn at arrival). */
    double meanResidenceRounds = 24.0;
    /** QoS target jitter: per-tenant target is the catalog target
     *  scaled down by U(0, jitter). Downward only — the catalog
     *  value is the class's maximum sellable target. */
    double targetJitter = 0.15;
    /** Normalized QoS below 1 - tolerance violates the SLA. */
    double tolerance = 0.05;
    /** Rounds excluded from a fresh tenant's SLA accounting. */
    std::uint32_t warmupRounds = 5;
    /** Coarse-grain pair (CoarseGrain provisioning only). */
    VCoreConfig coarseBig{4, 16};
    VCoreConfig coarseLittle{1, 2};
    AdmissionParams admission;
    ArbiterParams arbiter;
    RuntimeParams runtime;
    /** Per-tile rates billed to tenants ($0.0098/Slice-hr +
     *  $0.0032/bank-hr by default, Table IV). */
    CostModel pricing;
    /** Arrival-stream seed (the only randomness in the layer). */
    std::uint64_t seed = 42;
    /** Catalog; empty means defaultCatalog(). */
    std::vector<TenantClass> catalog;
    /** Full or sampled simulation for tenant vcores (off by
     *  default). Admission/arbitration/departure decisions come
     *  from exact state either way; sampled mode marks every final
     *  bill as estimated (FinalBill::estimated). */
    SimMode simMode = SimMode::Full;
    /** Slice-sampling schedule when simMode is Sampled. */
    SamplerParams sampler;
};

/**
 * Everything needed to replay one active tenant on another chip:
 * its class, accrued books, QoS trackers, and the exact position of
 * its deterministic instruction stream. Produced by migrateOut()
 * (which also bills the migration stall into the carried books) and
 * consumed by migrateIn(). The service layer serializes this to
 * JSON for the wire (service/region.hh).
 *
 * Billing algebra: migratedBill/migratedHoldings both include the
 * stall, so on the target shard the audit identity
 *   bill() + unbilledCompactCost == migratedHoldings + integral
 * reduces to the per-shard identity that held on the source.
 */
struct TenantSnapshot
{
    TenantClass cls;
    /** Jittered per-tenant QoS target. */
    double target = 0.0;
    std::uint32_t residenceRounds = 0;
    std::uint64_t activeRounds = 0;
    /** $ billed so far (previous shards + billed migration stall). */
    double migratedBill = 0.0;
    /** Priced holdings integral so far, stall included. */
    double migratedHoldings = 0.0;
    /** Compaction stall $ the provider absorbed for this tenant. */
    double unbilledCompactCost = 0.0;
    std::uint64_t qosSamples = 0;
    std::uint64_t qosViolations = 0;
    double ewmaQ = 1.0;
    /** Source stream: seed and emitted-instruction position. The
     *  target recreates the PhasedTraceSource from the seed and
     *  fast-forwards it, so the tenant resumes its trace where it
     *  left off. */
    std::uint64_t srcSeed = 0;
    std::uint64_t srcEmitted = 0;
    /** Configuration held at departure (target placement hint). */
    VCoreConfig heldCfg{1, 1};
    /** The billed migration stall, in cycles. */
    Cycle stallCycles = 0;
    std::uint32_t hops = 1;
    /** Joules dissipated on previous shards (travels with the
     *  tenant; lands in the target's migratedJoules). */
    double joules = 0.0;
};

/** One tenant's finalized bill, as returned by drain(). */
struct FinalBill
{
    TenantId tenant = invalidTenant;
    /** Catalog application the tenant ran. */
    std::string app;
    double bill = 0.0;
    /** Metered energy attributed to the tenant, all shards. */
    double joules = 0.0;
    /** The energy line item: joules x the provider's $/kWh. Billed
     *  separately from the tile bill (`bill`), so the tile billing
     *  identity is untouched by the energy subsystem. */
    double energyBill = 0.0;
    std::uint64_t qosSamples = 0;
    std::uint64_t qosViolations = 0;
    /** The bill was produced under sampled simulation: its holdings
     *  integral is exact, but the QoS samples and the runtime's
     *  sizing decisions rode on partially extrapolated counters
     *  (the error-gate bound applies). Never silently true: full
     *  simulation always reports false. */
    bool estimated = false;
};

/** Aggregate provider-side accounting. */
struct ProviderStats
{
    std::uint64_t rounds = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    /** Queued arrivals that ran out of patience. */
    std::uint64_t abandoned = 0;
    std::uint64_t departed = 0;
    /** Tenants replayed onto this chip from another shard. */
    std::uint64_t migratedIn = 0;
    /** Tenants serialized off this chip to another shard. */
    std::uint64_t migratedOut = 0;
    /** Migrate-ins the chip could not place, finalized on entry
     *  (counted in both admitted and departed). */
    std::uint64_t migrateEvicted = 0;
    /** Σ over rounds of active tenant count. */
    std::uint64_t tenantRounds = 0;
    /** Σ over rounds of the Slice/bank occupancy fractions. */
    double sliceUtilSum = 0.0;
    double bankUtilSum = 0.0;
    /** SLA samples/violations across all tenants ever hosted. */
    std::uint64_t slaSamples = 0;
    std::uint64_t slaViolations = 0;
    /** $ billed to departed tenants (active bills accrue on top;
     *  see CloudProvider::revenue()). */
    double departedRevenue = 0.0;

    // Energy ledgers (joules). The conservation identity
    // (check/audit.hh auditEnergy):
    //   dissipatedJoules == Σ_active (energyAcc - migratedJoules)
    //                       + departedJoules + exportedJoules.
    /** Tenant-attributed joules metered on THIS chip (excludes
     *  what migrated-in tenants burned elsewhere). */
    double dissipatedJoules = 0.0;
    /** Of dissipatedJoules, already folded into final bills. */
    double departedJoules = 0.0;
    /** Of dissipatedJoules, serialized off-chip by migrateOut. */
    double exportedJoules = 0.0;
    /** Energy revenue: $ for departed tenants' joules. */
    double departedEnergyRevenue = 0.0;
    /** Provider-side overhead joules: leakage of free tiles, the
     *  runtime Slice, and RIN message energy. Not billed to any
     *  tenant — the provider's cost of doing business. */
    double overheadJoules = 0.0;
    /** rinMessages watermark for overhead accrual. */
    std::uint64_t rinMessagesSeen = 0;

    double meanSliceUtil() const
    {
        return rounds ? sliceUtilSum / static_cast<double>(rounds)
                      : 0.0;
    }
    double meanBankUtil() const
    {
        return rounds ? bankUtilSum / static_cast<double>(rounds)
                      : 0.0;
    }
    /** Fraction of SLA samples delivered on target. */
    double qosDelivery() const
    {
        return slaSamples
            ? 1.0
                - static_cast<double>(slaViolations)
                / static_cast<double>(slaSamples)
            : 1.0;
    }
};

/**
 * One IaaS provider instance: owns the chip and every tenant.
 */
class CloudProvider
{
  public:
    explicit CloudProvider(const ProviderParams &params);
    ~CloudProvider();

    CloudProvider(const CloudProvider &) = delete;
    CloudProvider &operator=(const CloudProvider &) = delete;

    /**
     * One provider round: departures, queue retries, arrivals,
     * then one quantum of every active tenant in the arbiter's
     * grant order, then accounting.
     */
    void step();

    /** Run n rounds. */
    void run(std::uint32_t n);

    // --- Deterministic injection hooks (tests and the fuzzer):
    // pure functions of their arguments, consuming no arrival
    // randomness, so op sequences shrink cleanly.

    /**
     * Inject one arrival of catalog class `cls_index` with a fixed
     * residence; runs the normal admission path.
     * @return the tenant id (whatever was decided), or
     *         invalidTenant if cls_index is out of range
     */
    TenantId injectArrival(std::size_t cls_index,
                           std::uint32_t residence_rounds);

    /** Force an active or queued tenant to depart now.
     *  @return false if the id is unknown or already gone */
    bool injectDeparture(TenantId id);

    /** Issue SET_FREQ on an active tenant's vcore through the
     *  provider's command gate (an external actor next to the
     *  tenant's own runtime; the fuzzer's set_freq op family).
     *  @return false if the tenant is not active, the P-state is
     *          out of range, or the gate denied the change */
    bool injectSetFreq(TenantId id, std::uint32_t pstate);

    /**
     * Graceful teardown: stop admissions (every later arrival is
     * rejected), abandon the waiting queue, depart every active
     * tenant now, and finalize its bill. Before this existed the
     * only teardown was the destructor, which dropped active
     * tenants' running bills on the floor — the daemon needs the
     * explicit path, and batch drivers get honest final accounting.
     *
     * Idempotent; stepping a drained provider is legal (it hosts
     * nothing and admits nothing). @return the final bill of every
     * tenant that was ever billed (Departed), ascending TenantId.
     */
    std::vector<FinalBill> drain();

    /** True once drain() has run (admissions are closed). */
    bool draining() const { return draining_; }

    // --- Cross-shard migration (region support). Both ends are
    // deterministic functions of their arguments, so a migration is
    // replayable and the fuzzer can shrink through it.

    /**
     * Serialize an Active tenant off this chip: bill the migration
     * stall (register flush + worst-case dirty-L2 writeback, the
     * paper's reconfiguration cost model), release its fabric, and
     * mark it Migrated. Its bill travels in the snapshot — the
     * tenant contributes nothing further to this shard's revenue.
     *
     * @return nullopt if the id is unknown, not Active, or the
     *         tenant's source cannot be serialized (request-driven
     *         apps have open-loop arrival state; the default
     *         catalog has none)
     */
    std::optional<TenantSnapshot> migrateOut(TenantId id);

    /**
     * Replay a migrated tenant onto this chip. Never loses the
     * books: placement tries the held configuration, then the class
     * minimum; when neither fits (or the shard is draining) the
     * tenant is finalized on entry — counted admitted + departed,
     * its carried bill landing in this shard's departed revenue —
     * so region revenue still counts every dollar exactly once.
     *
     * @return the tenant's new local id on this provider (check
     *         state to see whether it was placed or evicted)
     */
    TenantId migrateIn(const TenantSnapshot &snap);

    /**
     * The cheapest Active tenant to move (fewest held Slices, then
     * lowest id), or invalidTenant when none is migratable.
     */
    TenantId pickMigrant() const;

    /** The stall migrateOut() bills for leaving with `cfg`. */
    Cycle migrationStall(const VCoreConfig &cfg) const;

    // --- Introspection.

    const SSim &chip() const { return sim_; }
    const ProviderParams &params() const { return params_; }
    const ProviderStats &stats() const { return stats_; }
    const FabricArbiter &arbiter() const { return arbiter_; }
    std::uint64_t round() const { return round_; }

    /** Every tenant ever created, indexed by TenantId. */
    const std::vector<std::unique_ptr<Tenant>> &tenants() const
    {
        return tenants_;
    }

    /** Ids of currently active tenants, ascending. */
    std::vector<TenantId> activeTenants() const;

    /** Current waiting queue, FIFO order. */
    const std::vector<TenantId> &queue() const { return queue_; }

    /** Total $ billed: departed tenants plus running bills. */
    double revenue() const;

    /** Total energy $ billed: departed tenants' joules plus active
     *  tenants' running meters, at params().sim.energy pricing. */
    double energyRevenue() const;

    /** Joules attributed to a tenant so far, prior shards and the
     *  live meter included (what its bill will show). */
    double tenantJoules(const Tenant &t) const;

    /** SLA delivery including active tenants' running tallies. */
    double qosDelivery() const;

  private:
    /** The entry configuration of a class under the current
     *  provisioning scheme (what admission judges). */
    VCoreConfig entryConfig(const TenantClass &cls) const;

    /** What a newly admitted tenant actually starts with: the
     *  entry configuration, except fine-grain tenants take the
     *  largest free configuration up to their class peak so the
     *  runtime converges downward instead of violating upward. */
    VCoreConfig startConfig(const Tenant &t) const;

    /** Create the tenant's vcore, sources, and (fine-grain)
     *  runtime. Must only be called when the entry config fits. */
    void activate(Tenant &t);

    /** Shared tail of activate()/migrateIn(): create the vcore at
     *  `cfg`, instantiate the source from `src_seed` (fast-forwarded
     *  by `fast_forward` emitted instructions for migrants), and
     *  attach the runtime or monitor. */
    void bindExecution(Tenant &t, const VCoreConfig &cfg,
                       std::uint64_t src_seed,
                       std::uint64_t fast_forward);

    /** Finalize accounting and release the tenant's fabric. */
    void depart(Tenant &t);

    /** Pull the vcore's energy meter into the tenant's books and
     *  the chip's dissipated ledger (no-op unless Active). */
    void syncEnergy(Tenant &t);

    /** Accrue provider-side overhead energy for one round: free
     *  tiles + runtime-Slice leakage over `cycles`, plus RIN
     *  message energy since the last accrual. */
    void accrueOverhead(Cycle cycles);

    /** Admit/queue/reject one tenant at the admission layer. */
    void judgeArrival(Tenant &t);

    void processDepartures();
    void processQueue();
    void processArrivals();
    void stepActive();

    /** The RIN command gate (fine-grain only). */
    std::optional<CommandRequest>
    gateCommand(VCoreId vcore, const CommandRequest &req);

    ProviderParams params_;
    SSim sim_;
    /** Fine-grain runtime configuration space (grid space over the
     *  arbiter's per-tenant cap). */
    ConfigSpace space_;
    AdmissionController admission_;
    FabricArbiter arbiter_;
    Rng arrivalsRng_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    std::vector<TenantId> queue_;
    std::uint64_t round_ = 0;
    ProviderStats stats_;
    /** Set by drain(): admissions closed, arrivals auto-reject. */
    bool draining_ = false;
};

} // namespace cash::cloud

#endif // CASH_CLOUD_PROVIDER_HH
