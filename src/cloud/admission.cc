#include "cloud/admission.hh"

namespace cash::cloud
{

const char *
admissionVerdictName(AdmissionVerdict v)
{
    switch (v) {
      case AdmissionVerdict::Admit: return "admit";
      case AdmissionVerdict::Queue: return "queue";
      case AdmissionVerdict::Reject: return "reject";
    }
    return "?";
}

AdmissionController::AdmissionController(const AdmissionParams &params)
    : params_(params)
{
}

bool
AdmissionController::fits(const VCoreConfig &entry,
                          const FabricAllocator &alloc)
{
    return entry.slices <= alloc.freeSlices()
        && entry.banks <= alloc.freeBanks();
}

bool
AdmissionController::impossible(const VCoreConfig &entry,
                                const FabricAllocator &alloc)
{
    // One Slice is permanently reserved for the runtime's home
    // vcore (SSim reserves it at construction), so the best any
    // tenant can hope for is the grid minus one Slice.
    const FabricGrid &grid = alloc.grid();
    return entry.slices + 1 > grid.numSlices()
        || entry.banks > grid.numBanks();
}

AdmissionVerdict
AdmissionController::judge(const VCoreConfig &entry,
                           const FabricAllocator &alloc,
                           std::uint32_t queue_depth) const
{
    if (impossible(entry, alloc))
        return AdmissionVerdict::Reject;
    if (fits(entry, alloc))
        return AdmissionVerdict::Admit;
    if (queue_depth >= params_.queueLimit)
        return AdmissionVerdict::Reject;
    return AdmissionVerdict::Queue;
}

} // namespace cash::cloud
