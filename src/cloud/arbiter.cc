#include "cloud/arbiter.hh"

#include <algorithm>

#include "check/invariant.hh"

namespace cash::cloud
{

namespace
{

/** Largest power of two <= v (v >= 1). */
std::uint32_t
pow2Floor(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

FabricArbiter::FabricArbiter(const ArbiterParams &params)
    : params_(params)
{
}

std::vector<TenantId>
FabricArbiter::grantOrder(std::vector<GrantCandidate> candidates) const
{
    std::sort(candidates.begin(), candidates.end(),
              [](const GrantCandidate &a, const GrantCandidate &b) {
                  if (a.deficit != b.deficit)
                      return a.deficit > b.deficit;
                  if (a.paidRate != b.paidRate)
                      return a.paidRate > b.paidRate;
                  return a.id < b.id;
              });
    std::vector<TenantId> order;
    order.reserve(candidates.size());
    for (const GrantCandidate &c : candidates)
        order.push_back(c.id);
    return order;
}

GrantDecision
FabricArbiter::decide(const VCoreConfig &held,
                      const VCoreConfig &requested,
                      const FabricAllocator &alloc,
                      std::uint64_t round)
{
    GrantDecision d;

    bool expand_slices = requested.slices > held.slices;
    bool expand_banks = requested.banks > held.banks;

    if (!expand_slices && !expand_banks) {
        // SHRINKs always pass: they free capacity.
        d.kind = GrantKind::Full;
        d.granted = requested;
        ++stats_.fullGrants;
        return d;
    }

    // Per-dimension clamp to what the fabric can actually supply:
    // the tenant's own tiles plus the free pool, under the
    // provider's per-tenant cap.
    std::uint32_t avail_slices =
        std::min(held.slices + alloc.freeSlices(), params_.maxSlices);
    std::uint32_t avail_banks =
        std::min(held.banks + alloc.freeBanks(), params_.maxBanks);

    d.granted.slices = expand_slices
        ? std::min(requested.slices, avail_slices)
        : requested.slices;
    d.granted.banks = expand_banks
        ? pow2Floor(std::max(std::min(requested.banks, avail_banks),
                             held.banks))
        : requested.banks;

    CASH_INVARIANT(d.granted.slices
                       <= held.slices + alloc.freeSlices(),
                   "granted %u slices but only %u are reachable",
                   d.granted.slices,
                   held.slices + alloc.freeSlices());
    CASH_INVARIANT(d.granted.banks <= held.banks + alloc.freeBanks(),
                   "granted %u banks but only %u are reachable",
                   d.granted.banks, held.banks + alloc.freeBanks());

    if (d.granted == held) {
        d.kind = GrantKind::Denied;
        ++stats_.denials;
    } else if (d.granted == requested) {
        d.kind = GrantKind::Full;
        ++stats_.fullGrants;
    } else {
        d.kind = GrantKind::Partial;
        ++stats_.partialGrants;
    }

    // Fragmentation — not capacity — is what compaction repairs:
    // the expansion will be granted either way, but on a
    // fragmented fabric it lands far from the tenant's tiles.
    if (d.kind != GrantKind::Denied
        && alloc.fragmentation() > params_.fragThreshold
        && (!everCompacted_
            || round >= lastCompactRound_ + params_.compactInterval))
        d.compactFirst = true;

    return d;
}

void
FabricArbiter::noteCompacted(std::uint64_t round)
{
    ++stats_.compactions;
    lastCompactRound_ = round;
    everCompacted_ = true;
}

} // namespace cash::cloud
