/**
 * @file
 * Region placement: routing tenants onto the shards of a
 * multi-chip region.
 *
 * The paper argues CASH's economics per chip (Sec VI-B); an IaaS
 * provider runs *fleets* of them. A region is N independent
 * CloudProviders ("shards"), and this router decides which shard an
 * arriving tenant lands on and when a tenant should be migrated off
 * a fragmented or overloaded shard. Two policies:
 *
 *  - BinPack: pack the most-loaded shard that still fits the entry
 *    configuration. Maximizes whole-shard headroom for large
 *    arrivals (and drives the consolidation the paper sells), at
 *    the price of per-shard fragmentation.
 *  - Spread: place on the shard with the most free Slices.
 *    Minimizes per-shard contention and queueing.
 *
 * The router is pure: decisions are functions of the ShardLoad
 * vector handed in, so single-threaded drivers (RegionCore, the
 * fuzzer) are exactly reproducible, and the threaded server's only
 * nondeterminism is *when* it sampled the loads.
 *
 * Region tenant ids: the wire protocol carries one tenant id; a
 * region encodes the owning shard in the top byte
 * (shard << 24 | local id). Shard 0 ids equal the local ids, so a
 * one-shard region speaks exactly the PR-5 protocol.
 */

#ifndef CASH_CLOUD_PLACEMENT_HH
#define CASH_CLOUD_PLACEMENT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config_space.hh"

namespace cash::cloud
{

class CloudProvider;

/** Shard index within one region (top byte of a region tenant id,
 *  so at most 256 shards). */
using ShardId = std::uint32_t;

constexpr std::uint32_t kShardShift = 24;
constexpr std::uint32_t kMaxShards = 256;
constexpr std::uint32_t kLocalIdMask = (1u << kShardShift) - 1;

/** Compose a region-scoped tenant id. */
constexpr std::uint32_t
regionTenantId(ShardId shard, std::uint32_t local)
{
    return (shard << kShardShift) | (local & kLocalIdMask);
}

/** The shard a region tenant id lives on. */
constexpr ShardId
tenantShard(std::uint32_t region_id)
{
    return region_id >> kShardShift;
}

/** The shard-local tenant id. */
constexpr std::uint32_t
tenantLocal(std::uint32_t region_id)
{
    return region_id & kLocalIdMask;
}

/** One shard's occupancy, as the router sees it. */
struct ShardLoad
{
    std::uint32_t freeSlices = 0;
    std::uint32_t freeBanks = 0;
    std::uint32_t totalSlices = 0;
    std::uint32_t totalBanks = 0;
    /** Mean excess Slice span of live placements (allocator's
     *  fragmentation measure; 0 = perfectly compact). */
    double fragmentation = 0.0;
    std::uint32_t active = 0;
    std::uint32_t queued = 0;
    std::uint64_t round = 0;
};

/** Sample one provider's load (helper for shard owners). */
ShardLoad loadOf(const CloudProvider &provider);

/** How arrivals are spread across the region. */
enum class PlacementPolicy : std::uint8_t
{
    BinPack,
    Spread,
};

const char *placementPolicyName(PlacementPolicy p);
std::optional<PlacementPolicy>
placementPolicyFromName(std::string_view name);

/** Rebalance (migration-trigger) tunables. */
struct RebalanceParams
{
    /** Migrate off a shard whose fragmentation exceeds this (mean
     *  excess Slice span; 0 disables the fragmentation trigger). */
    double fragThreshold = 2.0;
    /** Migrate when (maxFree - minFree) / totalSlices exceeds this
     *  (0 disables the imbalance trigger). */
    double imbalanceThreshold = 0.5;
    /** Rounds a shard must wait between triggered migrations. */
    std::uint64_t cooldownRounds = 8;
    /** Master switch (a one-shard region never rebalances). */
    bool enabled = true;
};

/** One planned migration. */
struct RebalancePlan
{
    ShardId from = 0;
    ShardId to = 0;
    /** Which trigger fired ("frag" or "imbalance"). */
    const char *reason = "";
};

/** Router counters. */
struct PlacementStats
{
    /** Arrivals routed per shard. */
    std::vector<std::uint64_t> routed;
    std::uint64_t rebalances = 0;
};

/**
 * The region's placement brain. Pure decisions over ShardLoad
 * vectors; the caller owns sampling and execution.
 */
class PlacementRouter
{
  public:
    PlacementRouter(std::uint32_t shards, PlacementPolicy policy,
                    const RebalanceParams &rebalance);

    /**
     * Pick the shard for one arrival. BinPack prefers the
     * most-loaded shard whose free Slices still cover the entry
     * configuration; Spread the shard with the most free Slices.
     * Ties break toward the lowest shard id; when nothing fits,
     * the shard with the most free Slices takes the arrival (its
     * own admission queue/reject path then applies).
     */
    ShardId chooseShard(const VCoreConfig &entry,
                        const std::vector<ShardLoad> &loads);

    /**
     * Should a tenant be migrated, and where? Fires when some
     * shard's fragmentation exceeds the threshold, or when the
     * free-Slice imbalance across the region exceeds its threshold;
     * the target is the shard with the most free Slices. Honors the
     * per-shard cooldown. Deterministic in (loads, prior calls).
     */
    std::optional<RebalancePlan>
    maybeRebalance(const std::vector<ShardLoad> &loads);

    /**
     * Single-shard variant for per-shard owners (the server's sim
     * threads): only plans migrations *out of* `self`, so N
     * concurrent callers never plan conflicting moves.
     */
    std::optional<RebalancePlan>
    maybeRebalanceFrom(ShardId self,
                       const std::vector<ShardLoad> &loads);

    std::uint32_t shards() const { return shards_; }
    PlacementPolicy policy() const { return policy_; }
    const RebalanceParams &rebalance() const { return rebalance_; }
    const PlacementStats &stats() const { return stats_; }

  private:
    bool cooldownOver(ShardId shard, std::uint64_t round) const;

    std::uint32_t shards_;
    PlacementPolicy policy_;
    RebalanceParams rebalance_;
    PlacementStats stats_;
    /** Round of each shard's last planned out-migration. */
    std::vector<std::uint64_t> lastMove_;
};

} // namespace cash::cloud

#endif // CASH_CLOUD_PLACEMENT_HH
