#include "cloud/tenant.hh"

namespace cash::cloud
{

const char *
tenantStateName(TenantState s)
{
    switch (s) {
      case TenantState::Queued: return "queued";
      case TenantState::Active: return "active";
      case TenantState::Departed: return "departed";
      case TenantState::Rejected: return "rejected";
      case TenantState::Migrated: return "migrated";
    }
    return "?";
}

const std::vector<TenantClass> &
defaultCatalog()
{
    // Targets are the profile machinery's derived QoS targets
    // ("highest worst-case IPC" with its 0.92 feasibility margin)
    // and the peak configurations its cheapestMeetingAll() picks,
    // both computed over the provider's 4-Slice / 16-bank
    // per-tenant cap on the default chip. Baked in as constants so
    // admission and the consolidation bench need no online
    // characterization; re-derive with baselines/profile.hh if the
    // timing model changes materially.
    static const std::vector<TenantClass> catalog = {
        {"astar", QosKind::Throughput, 0.1189, {1, 1}, {1, 16}},
        {"bzip", QosKind::Throughput, 0.1342, {1, 1}, {2, 16}},
        {"ferret", QosKind::Throughput, 0.0846, {1, 1}, {3, 2}},
        {"gcc", QosKind::Throughput, 0.1055, {1, 1}, {2, 16}},
        {"h264ref", QosKind::Throughput, 0.1372, {1, 1}, {3, 8}},
        {"hmmer", QosKind::Throughput, 0.5333, {1, 1}, {3, 8}},
        {"lib", QosKind::Throughput, 0.3400, {1, 1}, {3, 4}},
        {"mcf", QosKind::Throughput, 0.0362, {1, 1}, {1, 1}},
        {"omnetpp", QosKind::Throughput, 0.0687, {1, 1}, {1, 16}},
        {"sjeng", QosKind::Throughput, 0.1357, {1, 1}, {2, 16}},
        {"x264", QosKind::Throughput, 0.1866, {1, 1}, {3, 16}},
    };
    return catalog;
}

} // namespace cash::cloud
