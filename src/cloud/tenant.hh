/**
 * @file
 * Tenants of the CASH cloud provider.
 *
 * A tenant is one IaaS customer renting a sub-core-configurable
 * virtual core: an application (drawn from the paper's 13-app
 * catalog), a QoS target, an admission minimum, and a declared peak
 * configuration (what a coarse-grain provider would have to reserve
 * for it). The provider instantiates the tenant's workload sources
 * and — under fine-grain tenancy — a private CashRuntime; under the
 * static provisioning baselines the provider drives the vcore
 * itself at a fixed configuration.
 */

#ifndef CASH_CLOUD_TENANT_HH
#define CASH_CLOUD_TENANT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config_space.hh"
#include "core/runtime.hh"
#include "workload/apps.hh"
#include "workload/trace_gen.hh"

namespace cash::cloud
{

/** Provider-side tenant handle (distinct from fabric VCoreIds). */
using TenantId = std::uint32_t;
constexpr TenantId invalidTenant = ~TenantId(0);

/**
 * One catalog entry: an application the provider sells, with its
 * QoS product and the configurations that frame the three
 * provisioning schemes. Targets and peak configurations are
 * characterization-derived (see defaultCatalog()).
 */
struct TenantClass
{
    /** Application name (appByName). */
    std::string app;
    QosKind kind = QosKind::Throughput;
    /** QoS target: paced IPC, or cycles/request ceiling. */
    double target = 0.0;
    /** Admission minimum — the smallest configuration the tenant
     *  will accept (fine-grain tenancy starts here and expands). */
    VCoreConfig minCfg{1, 1};
    /** Worst-phase provisioning — what static-peak reserves. */
    VCoreConfig peakCfg{1, 1};
};

/** Where a tenant is in its provider lifecycle. */
enum class TenantState : std::uint8_t
{
    Queued,   ///< admitted to the waiting queue, no fabric yet
    Active,   ///< holding a virtual core
    Departed, ///< left (bill finalized)
    Rejected, ///< turned away (queue full / impossible request)
    Migrated, ///< moved to another shard (bill travels with it)
};

/** Printable state name. */
const char *tenantStateName(TenantState s);

/**
 * One customer instance. Workload sources are owned here so their
 * lifetime tracks the tenant's, not the provider round loop's.
 */
struct Tenant
{
    TenantId id = invalidTenant;
    TenantClass cls;
    TenantState state = TenantState::Queued;
    /** Per-tenant jittered QoS target (cls.target x jitter). */
    double target = 0.0;
    /** Deterministic residence: rounds until departure once
     *  active. */
    std::uint32_t residenceRounds = 0;
    /** Rounds a queued tenant will wait before giving up. */
    std::uint32_t patienceRounds = 0;

    VCoreId vcore = invalidVCore;
    /** Seed the instruction stream was built from. Fixed at first
     *  activation and carried across migrations, so the stream is
     *  reconstructible anywhere (migrateOut serializes seed +
     *  emitted position). */
    std::uint64_t srcSeed = 0;
    std::unique_ptr<InstSource> inner;
    std::unique_ptr<PacedSource> paced;
    std::unique_ptr<CashRuntime> runtime;
    /** QoS monitor for the static modes (fine-grain tenants sample
     *  inside their runtime instead). */
    std::unique_ptr<VCoreMonitor> monitor;

    // Lifecycle + accounting.
    std::uint64_t arrivalRound = 0;
    std::uint64_t admitRound = 0;
    std::uint64_t departRound = 0;
    std::uint64_t activeRounds = 0;
    /** $ billed (static modes; fine-grain bills via runtime). */
    double billed = 0.0;
    /** $ of holdings the provider absorbed rather than billed:
     *  migration stall from compactions this tenant did not
     *  request. bill() + this equals the tenant's integrated
     *  holdings (auditProvider checks exactly that). */
    double unbilledCompactCost = 0.0;
    /** QoS bookkeeping for the static modes (fine-grain tenants
     *  account inside their runtime). */
    std::uint64_t samples = 0;
    std::uint64_t violations = 0;
    double ewmaQ = 1.0;

    // Energy books (provider-owned; synced from the vcore's meter
    // at step/depart/migrate). The audit identity per active
    // tenant: energyAcc - migratedJoules == energySynced, and the
    // live meter never reads below the watermark.
    /** Joules attributed to this tenant so far, prior shards
     *  included. */
    double energyAcc = 0.0;
    /** vcore.energyJoules() at the last sync — the watermark the
     *  next delta is measured against. */
    double energySynced = 0.0;

    // Cross-shard migration baggage (zero for tenants that never
    // moved). A migrated-in tenant carries its prior shards' books
    // so the billing audit stays a per-shard identity:
    // bill() + unbilledCompactCost ==
    //     migratedHoldings + this shard's holdings integral.
    /** $ billed on previous shards, including billed migration
     *  stalls. */
    double migratedBill = 0.0;
    /** Priced holdings integral accumulated on previous shards,
     *  including the migration stalls (billed there). */
    double migratedHoldings = 0.0;
    /** SLA tallies carried from previous shards. */
    std::uint64_t migratedSamples = 0;
    std::uint64_t migratedViolations = 0;
    /** Joules dissipated on previous shards (subset of energyAcc;
     *  this shard's meter knows nothing about them). */
    double migratedJoules = 0.0;
    /** Migrations survived so far. */
    std::uint32_t migrantHops = 0;

    /** The source feeding the vcore (paced for throughput apps). */
    InstSource *boundSource() const
    {
        return paced ? static_cast<InstSource *>(paced.get())
                     : inner.get();
    }

    /** Total $ this tenant has been billed so far, prior shards
     *  included. `billed`/`samples`/`violations` are shard-local;
     *  fine-grain tenants read the live tallies through their
     *  runtime until it is dropped (depart/migrate capture them
     *  into the locals first). */
    double bill() const
    {
        return migratedBill
            + (runtime ? runtime->totalCost() : billed);
    }

    /** QoS samples taken / violated so far, prior shards included. */
    std::uint64_t qosSamples() const
    {
        return migratedSamples
            + (runtime ? runtime->totalSamples() : samples);
    }
    std::uint64_t qosViolations() const
    {
        return migratedViolations
            + (runtime ? runtime->totalViolations() : violations);
    }
};

/**
 * The default catalog: every throughput application of the paper's
 * suite, with characterization-derived QoS targets (the profile
 * machinery's "highest worst-case IPC" at the 4-Slice/16-bank
 * per-tenant cap) and the matching static-peak configurations.
 * Request-driven apps (apache, mailserver) are excluded by default:
 * their latency targets depend on arrival-rate provisioning, which
 * the consolidation bench holds out of scope.
 */
const std::vector<TenantClass> &defaultCatalog();

} // namespace cash::cloud

#endif // CASH_CLOUD_TENANT_HH
