/**
 * @file
 * The energy subsystem: per-structure activity energy, leakage, and
 * the DVFS P-state table (ROADMAP item 3).
 *
 * CASH's economics are tile-denominated, but a real IaaS provider's
 * marginal cost is joules. The model here follows the
 * activity-counter approach of XIOSim's zesto-power/McPAT
 * integration: every microarchitectural structure is assigned a
 * per-access dynamic energy and a per-cycle leakage power, and the
 * *existing* performance counters (sim/perf_counter.hh) supply the
 * access counts — the simulator core pays no new bookkeeping on its
 * hot path, only the counter increments it already pays.
 *
 * Event mapping (all per SliceCounters delta):
 *
 *   committedInsts     -> ROB write+commit, rename lookup+update,
 *                         register-file read/write, ALU issue
 *   l1dAccesses        -> LSQ search + L1D array
 *   l1iAccesses        -> L1I array
 *   l2Accesses         -> one L2 bank activation
 *   operandNetMsgs     -> operand-network flit traversal
 *   branches           -> predictor lookup/update
 *   branchMispredicts  -> pipeline-flush recovery energy
 *
 * DVFS: each virtual core runs at one of kNumPStates operating
 * points. A P-state is an integer clock divider (one core cycle
 * spans `divider` reference cycles; the reference clock is the
 * billing/wall clock, 1 GHz) plus a supply-voltage scale. Dynamic
 * energy scales with voltage squared; leakage *power* scales with
 * voltage — a downclocked core leaks over a longer wall-clock
 * window for the same work, which is exactly the SHRINK-vs-downclock
 * trade the learning runtime weighs.
 *
 * Conservation contract (check/audit.hh auditEnergy): a core's total
 * dissipated energy equals dynamic + leakage equals the sum of the
 * per-structure breakdown, and the provider's dissipated ledger
 * equals the sum of all tenant-attributed energies plus what
 * departed or migrated away. Fault::EnergyLeak breaks the departure
 * fold to prove the audit catches the class.
 */

#ifndef CASH_ENERGY_ENERGY_HH
#define CASH_ENERGY_ENERGY_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "sim/perf_counter.hh"

namespace cash
{

/** One DVFS operating point. */
struct PState
{
    /** Core-clock divider: one core cycle spans this many reference
     *  cycles, so frequency = nominal / divider. */
    std::uint32_t divider = 1;
    /** Supply voltage relative to nominal. */
    double voltScale = 1.0;

    double freqScale() const
    {
        return 1.0 / static_cast<double>(divider);
    }
    /** Dynamic-energy multiplier (CV^2 switching energy). */
    double dynScale() const { return voltScale * voltScale; }
};

/** Number of supported P-states (index 0 = nominal frequency). */
constexpr std::uint32_t kNumPStates = 5;

/** The fixed P-state menu: dividers 1..5 with a voltage curve that
 *  flattens near threshold, as real DVFS tables do. */
const std::array<PState, kNumPStates> &pstateTable();

/**
 * Per-event dynamic energies (picojoules per event) and per-cycle
 * leakage (picojoules per reference cycle), loosely scaled from
 * published McPAT breakdowns of a small OoO core at 22nm. Absolute
 * values matter less than their ratios: the model's job is to rank
 * configurations and P-states, and the audit only needs the algebra
 * to be conservative.
 */
struct EnergyParams
{
    // Dynamic, per committed instruction.
    double robPJ = 1.0;
    double renamePJ = 0.5;
    double regfilePJ = 1.2;
    double aluPJ = 1.5;
    // Dynamic, per cache/queue event.
    double lsqPJ = 0.8;  ///< per L1D access (LSQ CAM search)
    double l1PJ = 5.0;   ///< per L1 (I or D) array access
    double l2PJ = 20.0;  ///< per L2 bank activation
    // Dynamic, per network / predictor event.
    double fabricPJ = 3.0;     ///< per operand-network message
    double rinPJ = 2.0;        ///< per RIN message (chip overhead)
    double bpredPJ = 0.8;      ///< per branch lookup/update
    double mispredictPJ = 10.0; ///< per misprediction (flush)
    // Leakage, per reference cycle, at nominal voltage.
    double sliceLeakPJ = 15.0; ///< per allocated Slice
    double bankLeakPJ = 3.0;   ///< per active L2 bank
    /** Pipeline-drain + PLL relock stall billed to a SET_FREQ, in
     *  reference cycles. */
    Cycle dvfsStallCycles = 2'000;
    /** Blended per-committed-instruction dynamic energy, for cost
     *  *estimates* (admission, the runtime's P-state selection).
     *  The metered model always uses the per-structure counters. */
    double approxPerInstPJ = 15.0;
    /** EC2-anchored retail energy price, $/kWh. */
    double pricePerKwh = 0.12;

    /** $ for a metered number of joules. */
    double dollars(double joules) const
    {
        return joules / 3.6e6 * pricePerKwh;
    }
};

/** Where the joules went, by structure (all in joules). */
struct EnergyBreakdown
{
    double rob = 0.0;
    double lsq = 0.0;
    double rename = 0.0;
    double regfile = 0.0;
    double alu = 0.0;
    double bpred = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double fabric = 0.0;
    double leakage = 0.0;

    double total() const
    {
        return rob + lsq + rename + regfile + alu + bpred + l1 + l2
            + fabric + leakage;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
};

/**
 * The per-virtual-core energy meter. Fed counter *deltas* (the
 * caller closes the integral lazily, mirroring the holdings
 * integral) and leakage windows; keeps dynamic/leakage totals and
 * the per-structure breakdown in exact agreement by construction.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params)
        : params_(params)
    {}

    /**
     * Fold one counter delta's switching energy, at the voltage of
     * the P-state the events ran under.
     */
    void accrueDynamic(const SliceCounters &delta,
                       std::uint32_t pstate);

    /**
     * Fold a leakage window: `ref_cycles` reference cycles with
     * `slices` Slices and `banks` L2 banks powered, at `pstate`'s
     * voltage.
     */
    void accrueLeakage(Cycle ref_cycles, std::uint32_t slices,
                       std::uint32_t banks, std::uint32_t pstate);

    const EnergyBreakdown &breakdown() const { return bk_; }
    double joules() const { return dynamic_ + leakage_; }
    double dynamicJoules() const { return dynamic_; }
    double leakageJoules() const { return leakage_; }

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
    EnergyBreakdown bk_;
    double dynamic_ = 0.0;
    double leakage_ = 0.0;
};

/** Idle leakage power of a held configuration in watts at `pstate`
 *  (reference clock = 1 GHz), for provider overhead and cost
 *  estimates. */
double leakWatts(const EnergyParams &p, std::uint32_t slices,
                 std::uint32_t banks, std::uint32_t pstate);

} // namespace cash

#endif // CASH_ENERGY_ENERGY_HH
