#include "energy/energy.hh"

#include "check/invariant.hh"

namespace cash
{

const std::array<PState, kNumPStates> &
pstateTable()
{
    // Divider 1..5 (1.0x .. 0.2x nominal frequency); the voltage
    // curve flattens toward threshold, so the marginal energy win
    // of each further downclock shrinks — the learner has to find
    // the knee, it is not handed a linear ramp.
    static const std::array<PState, kNumPStates> table = {{
        {1, 1.00},
        {2, 0.85},
        {3, 0.75},
        {4, 0.70},
        {5, 0.65},
    }};
    return table;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    rob += o.rob;
    lsq += o.lsq;
    rename += o.rename;
    regfile += o.regfile;
    alu += o.alu;
    bpred += o.bpred;
    l1 += o.l1;
    l2 += o.l2;
    fabric += o.fabric;
    leakage += o.leakage;
    return *this;
}

namespace
{
constexpr double kPicoToJoule = 1e-12;
} // namespace

void
EnergyModel::accrueDynamic(const SliceCounters &delta,
                           std::uint32_t pstate)
{
    CASH_INVARIANT(pstate < kNumPStates,
                   "dynamic accrual at unknown P-state %u", pstate);
    const double v2 = pstateTable()[pstate].dynScale();
    const double insts =
        static_cast<double>(delta.committedInsts);
    const double l1d = static_cast<double>(delta.l1dAccesses);
    const double l1i = static_cast<double>(delta.l1iAccesses);

    EnergyBreakdown d;
    d.rob = insts * params_.robPJ;
    d.rename = insts * params_.renamePJ;
    d.regfile = insts * params_.regfilePJ;
    d.alu = insts * params_.aluPJ;
    d.lsq = l1d * params_.lsqPJ;
    d.l1 = (l1d + l1i) * params_.l1PJ;
    d.l2 = static_cast<double>(delta.l2Accesses) * params_.l2PJ;
    d.fabric = static_cast<double>(delta.operandNetMsgs)
        * params_.fabricPJ;
    d.bpred = static_cast<double>(delta.branches) * params_.bpredPJ
        + static_cast<double>(delta.branchMispredicts)
            * params_.mispredictPJ;

    // One voltage-squared scale and one unit conversion, applied
    // uniformly, so breakdown-sum == dynamic_ stays exact.
    const double scale = v2 * kPicoToJoule;
    d.rob *= scale;
    d.rename *= scale;
    d.regfile *= scale;
    d.alu *= scale;
    d.lsq *= scale;
    d.l1 *= scale;
    d.l2 *= scale;
    d.fabric *= scale;
    d.bpred *= scale;
    dynamic_ += d.rob + d.rename + d.regfile + d.alu + d.lsq + d.l1
        + d.l2 + d.fabric + d.bpred;
    bk_ += d;
}

void
EnergyModel::accrueLeakage(Cycle ref_cycles, std::uint32_t slices,
                           std::uint32_t banks, std::uint32_t pstate)
{
    CASH_INVARIANT(pstate < kNumPStates,
                   "leakage accrual at unknown P-state %u", pstate);
    const double v = pstateTable()[pstate].voltScale;
    double pj = static_cast<double>(ref_cycles)
        * (static_cast<double>(slices) * params_.sliceLeakPJ
           + static_cast<double>(banks) * params_.bankLeakPJ)
        * v;
    double j = pj * kPicoToJoule;
    leakage_ += j;
    bk_.leakage += j;
}

double
leakWatts(const EnergyParams &p, std::uint32_t slices,
          std::uint32_t banks, std::uint32_t pstate)
{
    // pJ/cycle at a 1 GHz reference clock: 1 pJ/cycle == 1 mW.
    const double v = pstateTable()[pstate].voltScale;
    double pj_per_cycle =
        (static_cast<double>(slices) * p.sliceLeakPJ
         + static_cast<double>(banks) * p.bankLeakPJ)
        * v;
    return pj_per_cycle * 1e-3;
}

} // namespace cash
