/**
 * @file
 * Fundamental scalar types shared across the CASH libraries.
 *
 * The simulator follows gem5 conventions: cycle counts are unsigned
 * 64-bit ticks, addresses are 64-bit, and all identifiers are small
 * integral handles rather than pointers so that components can be
 * serialized and compared cheaply.
 */

#ifndef CASH_COMMON_TYPES_HH
#define CASH_COMMON_TYPES_HH

#include <cstdint>

namespace cash
{

/** A count of clock cycles (the simulator's unit of time). */
using Cycle = std::uint64_t;

/** A byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** A count of instructions. */
using InstCount = std::uint64_t;

/** Sentinel for "no cycle" / "not yet scheduled". */
constexpr Cycle invalidCycle = ~Cycle(0);

/** Sentinel for an unmapped address. */
constexpr Addr invalidAddr = ~Addr(0);

/** Bytes in a kibibyte / mebibyte, for cache-size arithmetic. */
constexpr std::uint64_t kiB = 1024;
constexpr std::uint64_t miB = 1024 * kiB;

} // namespace cash

#endif // CASH_COMMON_TYPES_HH
