#include "common/csv.hh"

#include <sstream>

#include "common/log.hh"

namespace cash
{

CsvWriter::CsvWriter(std::ostream &out, std::vector<std::string> header)
    : out_(out), width_(header.size())
{
    if (header.empty())
        fatal("CsvWriter needs a non-empty header");
    writeCells(header);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    if (cells.size() != width_) {
        fatal("CsvWriter row has %zu cells, header has %zu",
              cells.size(), width_);
    }
    writeCells(cells);
    ++rows_;
}

void
CsvWriter::writeCells(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::string
CsvWriter::num(double v, int precision)
{
    std::ostringstream ss;
    ss.precision(precision);
    ss << v;
    return ss.str();
}

} // namespace cash
