/**
 * @file
 * Work-stealing thread pool for the experiment harness.
 *
 * The evaluation workload is a grid of fully independent cells of
 * very uneven duration (a 1-Slice/64KB characterization point is an
 * order of magnitude cheaper than an 8-Slice/8MB one), so a single
 * shared queue would serialize on the mutex and a static partition
 * would load-imbalance. Instead every worker owns a deque: it pushes
 * and pops at the back, and steals from the front of a victim when
 * its own deque runs dry. Tasks are plain `void()` closures; result
 * ordering and exception propagation are the caller's concern (see
 * ExperimentEngine, which collects results by cell index so output
 * is deterministic regardless of the thread count).
 *
 * The pool size defaults to CASH_BENCH_THREADS when set, else
 * std::thread::hardware_concurrency(). A pool of size 1 still runs
 * tasks on one worker thread, so the execution environment is the
 * same shape at every size.
 */

#ifndef CASH_COMMON_THREAD_POOL_HH
#define CASH_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cash
{

/** Pool size from CASH_BENCH_THREADS, else hardware concurrency
 *  (at least 1). Values that fail to parse fall back to 1. */
std::size_t defaultThreadCount();

/**
 * A fixed-size pool of workers with per-worker stealing deques.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means defaultThreadCount(). */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Enqueue one task. Tasks may be submitted from any thread,
     * including from inside another task. Submissions are
     * round-robined over the worker deques so a burst of uneven
     * tasks starts spread out; stealing rebalances from there.
     */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far (and every task those
     * tasks submitted) has finished. The calling thread lends a
     * hand: it executes queued tasks instead of sleeping, so
     * wait() from a 1-thread pool's owner still makes progress
     * even if the single worker is busy.
     */
    void wait();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    bool tryRunOne(std::size_t home);
    bool popTask(std::size_t victim, bool steal,
                 std::function<void()> &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::size_t pending_ = 0; ///< queued + running tasks
    std::size_t queued_ = 0;  ///< tasks sitting in a deque
    std::size_t nextQueue_ = 0;
    bool stopping_ = false;
};

} // namespace cash

#endif // CASH_COMMON_THREAD_POOL_HH
