/**
 * @file
 * Minimal CSV table writer for bench output.
 *
 * Every bench binary prints its table/figure data both as a human-
 * readable table (stdout) and, optionally, as a CSV file so results
 * can be plotted externally. CsvWriter handles quoting and enforces
 * row-width consistency against the header.
 */

#ifndef CASH_COMMON_CSV_HH
#define CASH_COMMON_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace cash
{

/**
 * Streaming CSV emitter with a fixed header.
 */
class CsvWriter
{
  public:
    /**
     * @param out destination stream (not owned; must outlive writer)
     * @param header column names, written immediately
     */
    CsvWriter(std::ostream &out, std::vector<std::string> header);

    /** Write one row; fatal() if the width differs from the header. */
    void row(const std::vector<std::string> &cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 6);

    std::size_t rowsWritten() const { return rows_; }

  private:
    void writeCells(const std::vector<std::string> &cells);
    static std::string escape(const std::string &cell);

    std::ostream &out_;
    std::size_t width_;
    std::size_t rows_ = 0;
};

} // namespace cash

#endif // CASH_COMMON_CSV_HH
