/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Everything stochastic in this repository (trace synthesis, request
 * arrivals, measurement noise) draws from seeded Rng streams so that
 * every test and bench is reproducible bit-for-bit. The generator is
 * xoshiro256** (Blackman & Vigna), chosen for speed and quality; the
 * seed is expanded with splitmix64 as its authors recommend.
 */

#ifndef CASH_COMMON_RNG_HH
#define CASH_COMMON_RNG_HH

#include <cstdint>

namespace cash
{

/**
 * A seedable, forkable random stream.
 *
 * fork() derives an independent child stream; use it to give each
 * subsystem its own stream so adding draws in one place does not
 * perturb another.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (any value, including 0). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) with no modulo bias; bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /** Standard normal via Box-Muller (deterministic pairing). */
    double nextGaussian();

    /** Exponential with the given rate (rate > 0). */
    double nextExponential(double rate);

    /** Geometric-like draw: number of successes before failure with
     *  continuation probability p in [0,1); returns >= 0. */
    std::uint64_t nextGeometric(double p);

    /** Derive an independent child stream. */
    Rng fork();

  private:
    std::uint64_t s_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace cash

#endif // CASH_COMMON_RNG_HH
