/**
 * @file
 * Lightweight statistics primitives used across the simulator, the
 * runtime, and the bench harnesses: running mean/variance, min/max,
 * fixed-bucket histograms, and geometric means (the paper reports
 * most cross-application aggregates as geomeans).
 */

#ifndef CASH_COMMON_STATS_HH
#define CASH_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cash
{

/**
 * Running scalar statistic: count, mean, variance (Welford), min, max.
 */
class RunningStat
{
  public:
    /** Fold one sample into the statistic. */
    void add(double x);

    /** Merge another statistic into this one. */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance; 0 with fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-range, uniform-bucket histogram with underflow/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the tracked range
     * @param hi exclusive upper bound; must exceed lo
     * @param buckets number of uniform buckets; must be >= 1
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);
    std::uint64_t bucketCount(std::size_t i) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    std::size_t buckets() const { return counts_.size(); }
    /** Inclusive lower edge of bucket i. */
    double bucketLo(std::size_t i) const;

    /** Value below which the given fraction of samples fall
     *  (approximate, bucket-resolution; quantile in [0,1]). */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Geometric mean of positive values; fatal() on empty/non-positive. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; fatal() on empty input. */
double mean(const std::vector<double> &values);

} // namespace cash

#endif // CASH_COMMON_STATS_HH
