#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace cash
{

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel combination of Welford accumulators.
    double delta = other.mean_ - mean_;
    std::uint64_t n = count_ + other.count_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    mean_ += delta * nb / static_cast<double>(n);
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = n;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStat::max() const
{
    return count_ ? max_ : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    if (!(hi > lo))
        fatal("Histogram range [%f, %f) is empty", lo, hi);
    if (buckets == 0)
        fatal("Histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(counts_.size()));
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram bucket index out of range");
    return counts_[i];
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i)
        / static_cast<double>(counts_.size());
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_));
    std::uint64_t seen = underflow_;
    if (seen > target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target)
            return bucketLo(i);
    }
    return hi_;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        fatal("geomean of an empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean requires positive values, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        fatal("mean of an empty vector");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace cash
