/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated; a bug in this library.
 * fatal()  — the user supplied an impossible configuration.
 * warn()   — something works, but imperfectly; worth a look.
 * inform() — plain status output.
 *
 * All message functions accept printf-style formatting. panic() and
 * fatal() are marked [[noreturn]]; panic() aborts (core dump friendly)
 * while fatal() throws FatalError so that tests can assert on bad
 * configurations without killing the process.
 */

#ifndef CASH_COMMON_LOG_HH
#define CASH_COMMON_LOG_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace cash
{

/** Exception thrown by fatal(): a user-caused, recoverable-by-fixing-
 *  your-config error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Verbosity control for inform()/warn(); panic/fatal always fire. */
enum class LogLevel { Silent, Warn, Info };

/** Set the global verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Abort with a formatted message: internal invariant violated. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Throw FatalError with a formatted message: user error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr (if verbosity allows). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr (if verbosity allows). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list args);
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace cash

#endif // CASH_COMMON_LOG_HH
