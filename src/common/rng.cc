#include "common/rng.hh"

#include <cmath>

#include "common/log.hh"

namespace cash
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed with splitmix64; guards against all-zero state.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound == 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange with lo > hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 top bits scaled into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    // Box-Muller; u1 in (0,1] so log() is finite.
    double u1 = 1.0 - nextDouble();
    double u2 = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    cachedGaussian_ = mag * std::sin(2.0 * M_PI * u2);
    hasCachedGaussian_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextExponential(double rate)
{
    if (rate <= 0.0)
        panic("Rng::nextExponential with non-positive rate");
    return -std::log(1.0 - nextDouble()) / rate;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        panic("Rng::nextGeometric with p >= 1 would not terminate");
    std::uint64_t n = 0;
    while (nextBool(p))
        ++n;
    return n;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa0761d6478bd642full);
}

} // namespace cash
