#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cash
{

namespace
{
LogLevel globalLevel = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

std::string
vstrfmt(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Info)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace cash
