#include "common/thread_pool.hh"

#include <cstdlib>
#include <string>

#include "common/log.hh"

namespace cash
{

std::size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("CASH_BENCH_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || v < 1) {
            warn("CASH_BENCH_THREADS='%s' is not a positive "
                 "integer; using 1 thread", env);
            return 1;
        }
        return static_cast<std::size_t>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    queues_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t target;
    {
        // queued_ rises before the push so a worker whose predicate
        // sees it cannot have missed the task; the worst case is a
        // momentary re-scan while the push completes.
        std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
        ++queued_;
        target = nextQueue_;
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    workAvailable_.notify_one();
    allDone_.notify_all(); // wake helpers in wait() to lend a hand
}

bool
ThreadPool::popTask(std::size_t victim, bool steal,
                    std::function<void()> &out)
{
    WorkerQueue &q = *queues_[victim];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty())
        return false;
    if (steal) {
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
    } else {
        out = std::move(q.tasks.back());
        q.tasks.pop_back();
    }
    return true;
}

bool
ThreadPool::tryRunOne(std::size_t home)
{
    std::function<void()> task;
    bool found = popTask(home, /*steal=*/false, task);
    for (std::size_t i = 1; !found && i < queues_.size(); ++i)
        found = popTask((home + i) % queues_.size(), /*steal=*/true,
                        task);
    if (!found)
        return false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --queued_;
    }
    task();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
    }
    allDone_.notify_all();
    return true;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        if (tryRunOne(self))
            continue;
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        // Sleep only while no task sits in a deque. queued_ (not
        // pending_) is the predicate so workers don't spin while a
        // long task *runs* elsewhere with nothing left to steal;
        // submit bumps queued_ under this mutex before pushing, so
        // a wakeup can't be lost.
        workAvailable_.wait(
            lock, [&] { return stopping_ || queued_ > 0; });
    }
}

void
ThreadPool::wait()
{
    // Help drain: the waiting thread executes tasks too, keeping a
    // 1-thread pool from deadlocking when its owner blocks on work
    // that itself submits work.
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (pending_ == 0)
                return;
        }
        if (tryRunOne(0))
            continue;
        // Nothing to help with right now: sleep until either all
        // work drains or new work is queued (submit notifies
        // allDone_ too, so a task spawning tasks re-engages us).
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock,
                      [&] { return pending_ == 0 || queued_ > 0; });
        if (pending_ == 0)
            return;
    }
}

} // namespace cash
