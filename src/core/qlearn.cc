#include "core/qlearn.hh"

#include <cmath>

#include "common/log.hh"

namespace cash
{

SpeedupLearner::SpeedupLearner(const ConfigSpace &space, double alpha,
                               double base_q, bool propagate)
    : space_(space), alpha_(alpha), propagate_(propagate),
      qhat_(space.size()), visited_(space.size(), false)
{
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("learning rate %f outside (0, 1]", alpha);
    if (base_q <= 0.0)
        fatal("base QoS seed must be positive");
    prior_.resize(space_.size());
    for (std::size_t k = 0; k < space_.size(); ++k) {
        prior_[k] = priorShape(space_.at(k));
        qhat_[k] = base_q * prior_[k];
    }
}

double
SpeedupLearner::priorShape(const VCoreConfig &config)
{
    // Diminishing returns in both dimensions: sqrt in Slices, log2
    // in cache. Deliberately smooth and convex-ish — the *learning*
    // is what discovers the true non-convex shape.
    double slice_gain = std::sqrt(static_cast<double>(config.slices));
    double cache_gain = 1.0
        + 0.15 * std::log2(static_cast<double>(config.banks));
    return slice_gain * cache_gain;
}

void
SpeedupLearner::update(std::size_t k, double q)
{
    if (k >= qhat_.size())
        panic("SpeedupLearner update for config %zu of %zu",
              k, qhat_.size());
    if (q < 0.0)
        panic("negative QoS measurement %f", q);
    bool first = !visited_[k];
    double ratio = qhat_[k] > 1e-12 ? q / qhat_[k] : 2.0;
    // A >2x contradiction with the entry's own promise signals a
    // phase change rather than noise.
    bool contradiction = !first && (ratio < 0.5 || ratio > 2.0);
    // Full-table rescale only for throughput QoS, whose
    // measurements are steady; latency readings spike on near-empty
    // windows and must not whipsaw the table (those instead use the
    // unvisited-entry propagation below).
    bool shock = contradiction && !propagate_;

    if (first) {
        // First real observation replaces the prior outright.
        qhat_[k] = q;
        visited_[k] = true;
    } else if (shock) {
        // A measurement that contradicts its own entry by more
        // than 2x is a phase change, not noise: the whole table's
        // level shifted (Sec IV-B). Rescale every entry by the
        // observed ratio — shape survives, level tracks — and pin
        // the measured entry to the evidence. Without this the
        // optimizer walks the stale entries one quantum at a time.
        for (double &v : qhat_)
            v *= ratio;
        qhat_[k] = q;
    } else {
        qhat_[k] = (1.0 - alpha_) * qhat_[k] + alpha_ * q;
    }

    // Level-calibrate the *unvisited* entries against reality
    // through the prior's shape.
    if (propagate_ && (first || contradiction)
        && prior_[k] > 1e-12) {
        double level = qhat_[k] / prior_[k];
        for (std::size_t j = 0; j < qhat_.size(); ++j) {
            if (!visited_[j])
                qhat_[j] = level * prior_[j];
        }
    }
}

double
SpeedupLearner::qhat(std::size_t k) const
{
    if (k >= qhat_.size())
        panic("SpeedupLearner qhat for config %zu of %zu",
              k, qhat_.size());
    return qhat_[k];
}

double
SpeedupLearner::speedup(std::size_t k) const
{
    double base = qhat_[0];
    if (base <= 1e-12)
        return 1.0;
    return qhat(k) / base;
}

void
SpeedupLearner::rescale(double factor)
{
    if (factor <= 0.0)
        panic("rescale by non-positive factor %f", factor);
    for (double &q : qhat_)
        q *= factor;
}

bool
SpeedupLearner::visited(std::size_t k) const
{
    if (k >= visited_.size())
        panic("SpeedupLearner visited for config %zu of %zu",
              k, visited_.size());
    return visited_[k];
}

} // namespace cash
