/**
 * @file
 * Online speedup learning (paper Sec IV-C, Eqn 7).
 *
 * The two-configuration optimizer needs the speedup s_k of every
 * configuration, which varies by phase and is unknown a priori. The
 * runtime learns it with an exponentially weighted (Q-learning
 * style) update applied to whichever configurations actually ran:
 *
 *     qhat_k(t) = (1-alpha) * qhat_k(t-1) + alpha * q(t)
 *     shat_k(t) = qhat_k(t) / qhat_0(t)
 *
 * Unvisited configurations carry an analytic prior (monotone in
 * Slices and cache with diminishing returns) so the optimizer has a
 * full table from the first quantum; the prior is replaced by
 * measurements as configurations are exercised. When the Kalman
 * estimator detects a phase change, rescale() shifts the whole
 * table by the base-speed ratio, preserving learned *shape* while
 * tracking the new phase's level.
 */

#ifndef CASH_CORE_QLEARN_HH
#define CASH_CORE_QLEARN_HH

#include <cstdint>
#include <vector>

#include "core/config_space.hh"

namespace cash
{

/**
 * Learned per-configuration QoS (and thus speedup) table.
 */
class SpeedupLearner
{
  public:
    /**
     * @param space the configuration space
     * @param alpha learning rate in (0, 1]
     * @param base_q initial absolute QoS of the base configuration
     * @param propagate latency-style noisy measurements: propagate
     *        levels to unvisited entries through the prior instead
     *        of shock-rescaling the whole table
     */
    SpeedupLearner(const ConfigSpace &space, double alpha,
                   double base_q = 1.0, bool propagate = false);

    /** Fold a measured absolute QoS into configuration k. */
    void update(std::size_t k, double q);

    /** Current absolute QoS estimate for configuration k. */
    double qhat(std::size_t k) const;

    /** Learned speedup of k relative to the base configuration. */
    double speedup(std::size_t k) const;

    /** Multiply every estimate by a factor (phase-change rescale). */
    void rescale(double factor);

    /** True if k has ever been measured (vs analytic prior). */
    bool visited(std::size_t k) const;

    std::size_t size() const { return qhat_.size(); }

    /**
     * The analytic prior shape: relative speedup of a configuration
     * under diminishing returns in both dimensions. Exposed for
     * tests and for the convex baseline's average-case model.
     */
    static double priorShape(const VCoreConfig &config);

  private:
    const ConfigSpace &space_;
    double alpha_;
    bool propagate_;
    std::vector<double> qhat_;
    std::vector<double> prior_;
    std::vector<bool> visited_;
};

} // namespace cash

#endif // CASH_CORE_QLEARN_HH
