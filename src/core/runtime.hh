/**
 * @file
 * The CASH runtime (paper Sec IV, Algorithm 1).
 *
 * Every quantum the runtime
 *
 *  1. reads the delivered QoS q(t) from the monitor,
 *  2. updates the Kalman estimate of base speed b(t) — a large
 *     innovation flags a phase change, which rescales the learned
 *     speedup table so its shape survives across phases,
 *  3. computes the deadbeat speedup command s(t),
 *  4. solves the two-configuration LP for the cheapest schedule
 *     delivering s(t) under the *learned* speedup table,
 *  5. reconfigures the virtual core (EXPAND/SHRINK over the RIN),
 *     runs each sub-interval, and folds the measured QoS back into
 *     the Q-learning table (Eqn 7); occasional epsilon-exploration
 *     refreshes estimates of configurations the schedule would
 *     never visit.
 *
 * The loop body is O(K) table scans and O(1) arithmetic — no
 * application knowledge, no offline training.
 */

#ifndef CASH_CORE_RUNTIME_HH
#define CASH_CORE_RUNTIME_HH

#include <cstdint>

#include "common/rng.hh"
#include "core/config_space.hh"
#include "core/controller.hh"
#include "core/kalman.hh"
#include "core/monitor.hh"
#include "core/optimizer.hh"
#include "core/qlearn.hh"
#include "sim/ssim.hh"

namespace cash
{

/**
 * Tunables of the CASH runtime.
 */
struct RuntimeParams
{
    /** Quantum length tau in cycles. */
    Cycle quantum = 500'000;
    /** Q-learning rate alpha (Eqn 7). */
    double alpha = 0.3;
    /** Kalman process variance. */
    double kalmanProcessVar = 1e-3;
    /** Kalman measurement variance r (hardware property). */
    double kalmanMeasVar = 4e-3;
    /** Probability of an exploration slot per quantum. */
    double epsilon = 0.03;
    /** Fraction of the quantum an exploration slot may use. */
    double exploreFrac = 0.08;
    /** Controller setpoint above the target (guard band). */
    double guardBand = 1.05;
    /** Controller deadband: errors smaller than this hold the
     *  demand (reconfiguring on noise costs more than it saves). */
    double deadband = 0.04;
    /** Controller damping (1.0 = pure deadbeat; below 1 adds the
     *  stability margin a delayed loop needs). */
    double controlGain = 0.6;
    /** Relative innovation that signals a phase change. */
    double phaseThreshold = 0.25;
    /** Rescale the learned table on detected phase changes. Off by
     *  default: the plant-gain controller already absorbs level
     *  shifts, and multiplicative rescaling would random-walk the
     *  estimates of configurations that are rarely visited. */
    bool rescaleOnPhase = false;
    /** Keep the incumbent over/under configuration when the newly
     *  selected one promises less than this much improvement — a
     *  reconfiguration (cold caches) costs more than a near-tie. */
    double stickiness = 0.05;
    /** Slots shorter than this fraction of the quantum are merged
     *  into the other slot (a reconfiguration would cost more than
     *  the slot delivers). */
    double minSlotFrac = 0.10;
    /** QoS violation tolerance (normalized; a sample whose
     *  short-window mean falls below 1 - tolerance is a
     *  violation). */
    double violationTolerance = 0.05;
    /** Start-up quanta excluded from violation accounting. */
    std::uint32_t warmupQuanta = 5;
    /** Upper bound for the controller's demand (normalized QoS
     *  units; also bounds the reported speedup via b). */
    double maxSpeedup = 8.0;
    /** Enable the joint (tiles x frequency) action space: one
     *  speedup table per DVFS P-state, a per-quantum P-state pick
     *  minimizing the estimated tile + energy $ rate among feasible
     *  points, and SET_FREQ commands over the RIN. Off by default —
     *  the classic tile-only CASH loop. */
    bool dvfs = false;
};

/**
 * Statistics of one runtime quantum (one pass of Algorithm 1).
 */
struct QuantumStats
{
    /** Simulated cycles the quantum actually covered (== tau minus
     *  early termination; 1 cycle = 1 ns at the modeled 1 GHz). */
    Cycle cycles = 0;
    /** $ charged for resources held this quantum: the integral of
     *  the per-tile rates ($0.0098/Slice-hr + $0.0032/bank-hr,
     *  Table IV pricing) over `cycles`. */
    double cost = 0.0;
    /** Mean normalized QoS across valid samples (1.0 == target;
     *  >1 over-delivering). */
    double qos = 0.0;
    /** SLA samples contributed (0 during warm-up, else 1). */
    std::uint32_t samples = 0;
    /** 1 when the smoothed QoS fell below 1 - tolerance. */
    std::uint32_t violations = 0;
    /** EXPAND/SHRINK commands executed this quantum. */
    std::uint32_t reconfigs = 0;
    /** Cycles stalled in reconfiguration (pipeline + register +
     *  cache flushes; Tables I-II). */
    Cycle reconfigStall = 0;
    /** Speedup command s(t) of Eqn 2, in units of the base
     *  configuration's throughput. */
    double speedupCmd = 0.0;
    /** SET_FREQ commands executed this quantum (0 or 1). */
    std::uint32_t freqChanges = 0;
    /** Cycles stalled in DVFS transitions (pipeline drain + PLL
     *  relock), billed at the held configuration. */
    Cycle dvfsStall = 0;
    /** P-state the quantum ran at (0 = nominal). */
    std::uint32_t pstate = 0;
    /** Kalman a-posteriori base-speed estimate b_hat(t) (Eqn 4),
     *  normalized-QoS per unit of table-promised QoS. */
    double baseEstimate = 0.0;
    /** Innovation exceeded the phase threshold (Sec IV-B). */
    bool phaseDetected = false;
    /** The bound workload ran out of trace. */
    bool finished = false;
    /** Schedule actually executed (Eqn 6's two-configuration mix,
     *  post stickiness/merging; durations in cycles). */
    QuantumSchedule schedule;
};

/**
 * The adaptive, cost-minimizing QoS runtime.
 */
class CashRuntime
{
  public:
    /**
     * @param sim the chip (the runtime talks to it via the RIN)
     * @param id the managed virtual core
     * @param kind QoS metric
     * @param target absolute QoS target (IPC or cycles/request)
     * @param space configuration space
     * @param cost pricing model
     * @param params tunables
     * @param seed exploration RNG seed
     */
    CashRuntime(SSim &sim, VCoreId id, QosKind kind, double target,
                const ConfigSpace &space, const CostModel &cost,
                const RuntimeParams &params = RuntimeParams(),
                std::uint64_t seed = 7);

    /** Execute one quantum of Algorithm 1. */
    QuantumStats step();

    /** Run quanta until the vcore clock reaches the target cycle or
     *  the workload finishes; returns aggregated stats. */
    QuantumStats runUntil(Cycle target_cycle);

    /** Base-speed estimator b_hat(t) (Eqns 3-4). */
    const KalmanEstimator &kalman() const { return kalman_; }
    /** Deadbeat speedup controller s(t) (Eqns 1-2). */
    const DeadbeatController &controller() const { return ctrl_; }
    /** Learned per-configuration speedup table q_hat (Eqn 7) of
     *  the P-state currently held (the nominal-frequency table
     *  when DVFS is off). */
    const SpeedupLearner &learner() const { return activeLearner(); }
    /** Index into the ConfigSpace currently held by the vcore. */
    std::size_t currentConfig() const { return currentCfg_; }
    /** P-state currently held (always 0 when DVFS is off). */
    std::uint32_t currentPState() const { return currentPState_; }

    /** Total $ accumulated across all quanta. */
    double totalCost() const { return totalCost_; }
    /** SLA samples across all quanta (warm-up excluded). */
    std::uint64_t totalSamples() const { return totalSamples_; }
    /** Samples whose smoothed QoS fell below 1 - tolerance. */
    std::uint64_t totalViolations() const { return totalViolations_; }

  private:
    /** Reconfigure if needed; run a sub-interval; sample + learn. */
    void runSlot(std::size_t cfg, Cycle duration, QuantumStats &st);

    /** The Q-table of the P-state the vcore currently runs at:
     *  measurements teach the operating point that produced them. */
    SpeedupLearner &activeLearner()
    {
        return currentPState_ == 0 ? learner_
                                   : dvfsLearners_[currentPState_ - 1];
    }
    const SpeedupLearner &activeLearner() const
    {
        return currentPState_ == 0 ? learner_
                                   : dvfsLearners_[currentPState_ - 1];
    }

    /** Estimated $/second of running a quantum schedule at a
     *  P-state: tile rate + energy rate (leakage at the held
     *  configuration plus approximate per-instruction switching
     *  energy at the P-state's voltage). */
    double dollarRate(std::uint32_t pstate,
                      const QuantumSchedule &sched) const;

    /** Solve the tile LP per P-state, pick the cheapest feasible
     *  operating point, and SET_FREQ to it (billing the transition
     *  stall). Runs once per quantum when params.dvfs is on; the
     *  first quanta instead probe each non-nominal P-state once so
     *  the per-P-state tables learn from evidence. */
    void selectPState(double q_demand, QuantumStats &st);

    /** SET_FREQ to `want` if different from the held P-state,
     *  billing the transition stall at the held tiles. */
    void switchPState(std::uint32_t want, QuantumStats &st);

    /** True when the current quantum is a DVFS probe (throughput
     *  tenants only, quanta 1..kNumPStates-1). */
    bool probeQuantum() const
    {
        return params_.dvfs
            && monitor_.kind() == QosKind::Throughput
            && quantaRun_ >= 1 && quantaRun_ < kNumPStates;
    }

    SSim &sim_;
    VCoreId id_;
    const ConfigSpace &space_;
    const CostModel &cost_;
    RuntimeParams params_;
    VCoreMonitor monitor_;
    DeadbeatController ctrl_;
    KalmanEstimator kalman_;
    SpeedupLearner learner_;
    /** P-state 1..kNumPStates-1 tables (empty unless params.dvfs);
     *  each starts from the frequency-scaled prior of the nominal
     *  table, and learning corrects it toward the application's
     *  true IPC-per-Hz. */
    std::vector<SpeedupLearner> dvfsLearners_;
    TwoConfigOptimizer optimizer_;
    Rng rng_;

    double target_;
    std::uint32_t currentPState_ = 0;
    std::size_t currentCfg_;
    double lastQ_ = 1.0;
    double lastS_ = 1.0;
    bool finished_ = false;
    /** Cycles covered by valid QoS readings this quantum. */
    Cycle validCycles_ = 0;
    /** Queue depth above which latency readings are drain
     *  transients rather than configuration quality. */
    std::uint64_t backlogFloor_ = 4;
    std::uint64_t lastBacklog_ = 0;
    /** Last slot's steady-state reading (phase-collapse check). */
    double lastSlotQ_ = 1.0;
    bool lastSlotValid_ = false;
    std::uint64_t quantaRun_ = 0;
    double ewmaQ_ = 1.0;
    /** Alternating slot order (halves steady-state reconfigs). */
    bool flipOrder_ = false;
    /** Incumbent schedule for stickiness. */
    std::size_t lastOver_ = 0;
    std::size_t lastUnder_ = 0;
    bool haveLastSched_ = false;

    double totalCost_ = 0.0;
    std::uint64_t totalSamples_ = 0;
    std::uint64_t totalViolations_ = 0;
};

} // namespace cash

#endif // CASH_CORE_RUNTIME_HH
