#include "core/kalman.hh"

#include <algorithm>
#include <cmath>

#include "check/invariant.hh"
#include "common/log.hh"

namespace cash
{

KalmanEstimator::KalmanEstimator(double initial_b, double process_var,
                                 double measurement_var)
    : bHat_(initial_b), processVar_(process_var),
      measurementVar_(measurement_var)
{
    if (process_var < 0.0 || measurement_var <= 0.0)
        fatal("Kalman variances must be positive");
}

double
KalmanEstimator::update(double q, double s)
{
    // A-priori estimates (Eqn 4, first two lines).
    double b_prior = bHat_;
    double e_prior = errVar_ + processVar_;

    // Kalman gain for the measurement q = s * b.
    double denom = s * s * e_prior + measurementVar_;
    gain_ = denom > 1e-18 ? e_prior * s / denom : 0.0;

    // Innovation and a-posteriori correction.
    double predicted = s * b_prior;
    innovation_ = std::fabs(q - predicted) / std::max(q, 1e-9);
    bHat_ = b_prior + gain_ * (q - predicted);
    errVar_ = (1.0 - gain_ * lastS_) * e_prior;
    errVar_ = std::max(errVar_, 1e-12);
    bHat_ = std::max(bHat_, 1e-9);

    lastS_ = s;

    // The scalar Riccati recursion must keep the error covariance
    // positive and finite, or every later gain is garbage.
    CASH_INVARIANT(errVar_ > 0.0 && std::isfinite(errVar_),
                   "Kalman covariance left the positive reals "
                   "(%g)", errVar_);
    CASH_INVARIANT(std::isfinite(bHat_) && bHat_ > 0.0,
                   "Kalman estimate diverged (%g)", bHat_);
    CASH_INVARIANT(std::isfinite(gain_),
                   "Kalman gain diverged (%g)", gain_);
    return bHat_;
}

void
KalmanEstimator::reset(double b, double err_var)
{
    bHat_ = std::max(b, 1e-9);
    errVar_ = err_var;
    innovation_ = 0.0;
}

} // namespace cash
