#include "core/runtime.hh"

#include <algorithm>
#include <cmath>

#include "check/invariant.hh"
#include "common/log.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace cash
{

CashRuntime::CashRuntime(SSim &sim, VCoreId id, QosKind kind,
                         double target, const ConfigSpace &space,
                         const CostModel &cost,
                         const RuntimeParams &params,
                         std::uint64_t seed)
    : sim_(sim), id_(id), space_(space), cost_(cost),
      params_(params),
      monitor_(sim, id, kind, target),
      ctrl_(0.0, params.maxSpeedup, params.guardBand,
            params.deadband, params.controlGain),
      kalman_(1.0, params.kalmanProcessVar, params.kalmanMeasVar),
      learner_(space, params.alpha, 1.0,
               kind == QosKind::RequestLatency),
      optimizer_(space, cost),
      rng_(seed),
      target_(target)
{
    if (params.quantum == 0)
        fatal("runtime quantum must be non-zero");
    const VirtualCore &vc = sim.vcore(id);
    VCoreConfig current{vc.numSlices(), vc.numBanks()};
    if (!space.contains(current)) {
        fatal("virtual core %u starts outside the config space (%s)",
              id, current.str().c_str());
    }
    currentCfg_ = space.indexOf(current);
    currentPState_ = vc.pstate();
    if (params.dvfs) {
        // One speedup table per non-nominal P-state, seeded with
        // the frequency-scaled prior: a downclock to 1/d nominal
        // frequency nominally divides QoS by d. Measurements pull
        // each table toward the app's real IPC-per-Hz — memory-
        // bound code loses less than the prior claims, and that gap
        // is what makes downclocking win. Propagation is on for
        // every QoS kind here: each table sees at most one probe
        // quantum (below) before the economics consult it, and a
        // single measurement must level-calibrate the whole table
        // or the other entries stay pinned to the pessimistic
        // frequency prior forever.
        dvfsLearners_.reserve(kNumPStates - 1);
        for (std::uint32_t p = 1; p < kNumPStates; ++p) {
            dvfsLearners_.emplace_back(
                space, params.alpha, pstateTable()[p].freqScale(),
                true);
        }
    }
}

double
CashRuntime::dollarRate(std::uint32_t pstate,
                        const QuantumSchedule &sched) const
{
    const EnergyParams &ep = sim_.params().energy;
    const SpeedupLearner &lrn = pstate == 0
        ? learner_ : dvfsLearners_[pstate - 1];
    auto cell = [&](std::size_t k) {
        const VCoreConfig &c = space_.at(k);
        double tile_per_s = cost_.ratePerHour(c) / 3600.0;
        // Committed-instruction rate estimate: for throughput QoS
        // the table speaks in normalized IPC against an absolute
        // target; latency QoS has no IPC anchor, so a nominal
        // half-instruction per cycle stands in (the estimate only
        // ranks P-states, the meter bills real counters).
        double ipc = monitor_.kind() == QosKind::Throughput
            ? lrn.qhat(k) * target_ : 0.5;
        double watts =
            leakWatts(ep, c.slices, c.banks, pstate)
            + ipc * 1e9 * ep.approxPerInstPJ * 1e-12
                  * pstateTable()[pstate].dynScale();
        return tile_per_s + ep.dollars(watts);
    };
    Cycle t_over = sched.tOver;
    Cycle t_under = sched.tUnder + sched.tIdle;
    Cycle total = t_over + t_under;
    if (total == 0)
        return cell(sched.over);
    return (cell(sched.over) * static_cast<double>(t_over)
            + cell(sched.under) * static_cast<double>(t_under))
        / static_cast<double>(total);
}

void
CashRuntime::selectPState(double q_demand, QuantumStats &st)
{
    // Probe schedule: the per-P-state tables start from the
    // frequency-scaled prior, under which a 2x downclock always
    // looks infeasible — the economic selection below would never
    // try it, never measure it, and never learn that memory-bound
    // code keeps most of its IPC at low frequency. So the first
    // quantum after start-up runs each non-nominal P-state once
    // (quanta 1..kNumPStates-1, inside the warm-up window the SLA
    // accounting already excludes); the probe measurement
    // level-calibrates that P-state's whole table through the
    // prior's shape, and from then on the selection runs on
    // evidence. Latency tenants never probe: queueing punishes an
    // under-clocked quantum superlinearly (the backlog outlives the
    // probe), so they keep the pessimistic prior and in practice
    // stay at nominal frequency.
    if (probeQuantum()) {
        switchPState(static_cast<std::uint32_t>(quantaRun_), st);
        return;
    }

    // Panic upclock: delivered QoS crossed the violation line while
    // downclocked. Do not wait for the $-comparison — return to
    // nominal this quantum and let the economics re-earn the
    // downclock once the tables have absorbed the miss.
    if (currentPState_ != 0
        && lastQ_ < 1.0 - params_.violationTolerance) {
        switchPState(0, st);
        return;
    }

    // Solve the tile LP against every P-state's learned table and
    // price each candidate schedule in $/s (tiles + joules). The
    // cheapest feasible operating point wins; if none promises the
    // demand, the fastest one does. The incumbent gets the same
    // stickiness margin as tile configurations — a PLL relock and
    // two cold tables are not worth a near-tie.
    std::uint32_t best_p = currentPState_;
    double best_rate = 0.0;
    bool have_feasible = false;
    std::uint32_t fastest_p = currentPState_;
    double fastest_speed = -1.0;
    for (std::uint32_t p = 0; p < kNumPStates; ++p) {
        const SpeedupLearner &lrn = p == 0
            ? learner_ : dvfsLearners_[p - 1];
        QuantumSchedule s = optimizer_.solve(
            q_demand, params_.quantum,
            [&lrn](std::size_t k) { return lrn.qhat(k); });
        double rate = dollarRate(p, s);
        // The incumbent keeps its stickiness margin only while it
        // delivers: an under-delivering P-state whose table has not
        // caught up yet must not be able to defend itself with a
        // discount.
        if (p == currentPState_
            && lastQ_ >= 1.0 - params_.violationTolerance)
            rate *= 1.0 - params_.stickiness;
        if (s.expectedSpeedup > fastest_speed) {
            fastest_speed = s.expectedSpeedup;
            fastest_p = p;
        }
        // The controller's demand dips below 1 while the plant
        // over-delivers; tiles may track it (the LP idles the
        // tail), but a downclock must still promise the target
        // plus the guard band — its table is one phase drift away
        // from wrong, and a P-state predicted to deliver at the
        // violation edge is a planned violation, not a savings.
        double q_floor = p == 0 ? q_demand
                                : std::max(q_demand,
                                           params_.guardBand);
        if (s.expectedSpeedup + 1e-9 >= q_floor
            && (!have_feasible || rate < best_rate)) {
            have_feasible = true;
            best_rate = rate;
            best_p = p;
        }
    }
    switchPState(have_feasible ? best_p : fastest_p, st);
}

void
CashRuntime::switchPState(std::uint32_t want, QuantumStats &st)
{
    if (want == currentPState_)
        return;
    auto stall = sim_.setFreq(id_, want);
    if (!stall)
        return; // gate denied: stay at the current point
    currentPState_ = sim_.vcore(id_).pstate();
    ++st.freqChanges;
    st.dvfsStall += *stall;
    CASH_METRIC_INC("runtime.freq_changes");
    if (*stall > 0) {
        // The transition stall is held time at the current tiles:
        // bill it like a reconfiguration stall so the provider's
        // billing identity (revenue == integrated holdings) holds.
        double c = cost_.cost(space_.at(currentCfg_), *stall);
        st.cost += c;
        totalCost_ += c;
        st.cycles += *stall;
        CASH_METRIC_SAMPLE("runtime.dvfs_stall",
                           static_cast<double>(*stall));
    }
}

void
CashRuntime::runSlot(std::size_t cfg, Cycle duration,
                     QuantumStats &st)
{
    if (duration == 0 || finished_)
        return;

    Cycle slot_start = sim_.vcore(id_).now();
    Cycle stall = 0;
    if (cfg != currentCfg_) {
        const VCoreConfig &c = space_.at(cfg);
        auto rc = sim_.command(id_, c.slices, c.banks);
        if (rc) {
            ++st.reconfigs;
            stall = rc->totalStall();
            st.reconfigStall += stall;
            // Bill and learn at what the fabric actually granted: a
            // provider-side arbiter may clamp an EXPAND to a partial
            // grant, and charging the requested configuration would
            // overbill the customer for tiles never held.
            const VirtualCore &vc = sim_.vcore(id_);
            VCoreConfig actual{vc.numSlices(), vc.numBanks()};
            currentCfg_ = space_.contains(actual)
                ? space_.indexOf(actual) : cfg;
        } else {
            warn("fabric cannot supply %s; staying at %s",
                 c.str().c_str(),
                 space_.at(currentCfg_).str().c_str());
        }
    }

    // After a reconfiguration the caches are cold; burn off the
    // transient before the reading that teaches the table. The
    // warm-up still counts toward cost and quantum QoS (it is real
    // time at this configuration).
    Cycle warmup = 0;
    if (stall > 0 && duration > 64'000)
        warmup = std::min<Cycle>(duration / 3, 100'000);
    if (warmup > 0) {
        RunResult wr =
            sim_.vcore(id_).runUntil(slot_start + warmup);
        if (wr.finished)
            finished_ = true;
        QosReading wq = monitor_.sample();
        Cycle welapsed = sim_.vcore(id_).now() - slot_start;
        if (wq.valid) {
            st.qos += wq.normalized * static_cast<double>(welapsed);
            validCycles_ += welapsed;
        }
    }

    Cycle meas_start = sim_.vcore(id_).now();
    RunResult rr = sim_.vcore(id_).runUntil(slot_start + duration);
    if (rr.finished)
        finished_ = true;
    Cycle meas = sim_.vcore(id_).now() - meas_start;
    Cycle elapsed = sim_.vcore(id_).now() - slot_start;

    double slot_cost = cost_.cost(space_.at(currentCfg_), elapsed);
    st.cost += slot_cost;
    totalCost_ += slot_cost;
    st.cycles += elapsed;

    QosReading r = monitor_.sample();
    if (r.valid) {
        // Only teach the table steady-state behaviour: a slot
        // dominated by reconfiguration stall measures the
        // transient, not the configuration — and for latency QoS a
        // *draining* backlog measures the queue's history, not the
        // configuration. A growing backlog, however, is the
        // configuration's fault: learn that pessimistically.
        bool backlogged = monitor_.kind() == QosKind::RequestLatency
            && r.backlog > backlogFloor_;
        bool growing = r.backlog > lastBacklog_;
        lastBacklog_ = r.backlog;
        bool protect_drain = backlogged && !growing;
        if (stall * 4 <= elapsed && !protect_drain)
            activeLearner().update(currentCfg_, r.normalized);
        st.qos += r.normalized * static_cast<double>(meas);
        validCycles_ += meas;
        lastSlotQ_ = r.normalized;
        lastSlotValid_ = true;
    } else {
        lastSlotValid_ = false;
    }
}

QuantumStats
CashRuntime::step()
{
    QuantumStats st;
    if (finished_) {
        st.finished = true;
        return st;
    }

    const Cycle q_start = sim_.vcore(id_).now();

    // --- Estimator: track base speed; a large innovation is a
    // phase change (Sec IV-B). The estimate feeds phase detection
    // and the reported speedup command; the control integration
    // below runs in normalized-QoS space, where the plant gain is
    // exactly 1 whenever the learned table is faithful (dividing by
    // b and multiplying back cancels — see DESIGN.md).
    // A probe quantum's reading is a deliberate experiment at a
    // non-nominal P-state, not plant feedback: folding it into the
    // estimator or the deadbeat integrator would flag a phantom
    // phase change and inflate the demand for quanta after the
    // probes end. Freeze both across the probe window.
    bool prev_probe = params_.dvfs
        && monitor_.kind() == QosKind::Throughput
        && quantaRun_ >= 2 && quantaRun_ <= kNumPStates;
    double b_pre = kalman_.estimate();
    double b_hat =
        prev_probe ? b_pre : kalman_.update(lastQ_, lastS_);
    if (!prev_probe
        && kalman_.innovation() > params_.phaseThreshold) {
        st.phaseDetected = true;
        if (params_.rescaleOnPhase && b_pre > 1e-12)
            activeLearner().rescale(b_hat / b_pre);
        CASH_TRACE_INSTANT(trace::Category::Runtime, "phase_change",
                           q_start,
                           {{"vcore", id_},
                            {"innovation", kalman_.innovation()},
                            {"b_pre", b_pre},
                            {"b_hat", b_hat}});
        CASH_METRIC_INC("runtime.phase_changes");
    }
    st.baseEstimate = b_hat;
    CASH_TRACE_COUNTER(trace::Category::Runtime, "b_hat", q_start,
                       "estimate", b_hat);

    // --- Controller: deadbeat integration of the QoS error
    // (Eqns 1-2). The demand is in normalized-QoS units and b_hat
    // is the estimated plant gain — delivered QoS per unit of
    // table-promised QoS — so one step cancels the error exactly
    // when the gain estimate is right, even under a miscalibrated
    // table. b_hat is clamped away from degeneracy.
    double b_eff = std::clamp(b_hat, 0.25, 4.0);
    double q_demand = ctrl_.step(prev_probe ? 1.0 : lastQ_, b_eff);
    // QoS error as the controller sees it: shortfall against the
    // normalized target of 1 (positive = under-delivering).
    CASH_TRACE_COUNTER(trace::Category::Runtime, "qos_error",
                       q_start, "error", 1.0 - lastQ_);
    CASH_TRACE_COUNTER(trace::Category::Runtime, "demand", q_start,
                       "q_demand", q_demand);
    // --- Joint action space (tiles x frequency): pick this
    // quantum's P-state before the tile schedule. The rest of the
    // loop then runs against the chosen operating point's table, so
    // the Kalman's plant gain, the LP, and the learning updates all
    // speak the same IPC-per-Hz.
    if (params_.dvfs)
        selectPState(q_demand, st);
    st.pstate = currentPState_;
    SpeedupLearner &lrn = activeLearner();

    double base_q = lrn.qhat(0);
    st.speedupCmd = base_q > 1e-12 ? q_demand / base_q : q_demand;

    // --- Optimizer: two-configuration schedule (Eqn 6) against
    // the learned per-configuration QoS table. A probe quantum
    // instead holds the incumbent tiles for the whole quantum: the
    // probed P-state's table is still the raw frequency prior, and
    // letting the LP expand against it would bill max-config tiles
    // for an experiment — and the measurement the probe is *for*
    // must land at the configuration the tenant actually runs.
    QuantumSchedule sched;
    if (probeQuantum()) {
        sched.over = currentCfg_;
        sched.under = currentCfg_;
        sched.tOver = params_.quantum;
        sched.expectedSpeedup = lrn.qhat(currentCfg_);
    } else {
        sched = optimizer_.solve(
            q_demand, params_.quantum,
            [&lrn](std::size_t k) { return lrn.qhat(k); });
    }

    // Stickiness: a near-tie does not justify the cold caches of a
    // reconfiguration, so keep the incumbent slot configurations
    // when the newly chosen ones are within tolerance.
    auto sticky = [this, q_demand, &lrn](std::size_t chosen,
                                         std::size_t incumbent,
                                         bool is_over) {
        if (chosen == incumbent)
            return chosen;
        double q_new = lrn.qhat(chosen);
        double q_old = lrn.qhat(incumbent);
        bool feasible = is_over ? q_old >= q_demand
                                : q_old <= q_demand;
        if (!feasible)
            return chosen;
        double c_new = cost_.ratePerHour(space_.at(chosen));
        double c_old = cost_.ratePerHour(space_.at(incumbent));
        if (c_old <= c_new * (1.0 + params_.stickiness)
            && std::fabs(q_old - q_new)
                   <= params_.stickiness * std::max(q_new, 1e-9)) {
            return incumbent;
        }
        return chosen;
    };
    if (haveLastSched_) {
        sched.over = sticky(sched.over, lastOver_, true);
        sched.under = sticky(sched.under, lastUnder_, false);
    }
    lastOver_ = sched.over;
    lastUnder_ = sched.under;
    haveLastSched_ = true;

    // Latency QoS: queueing punishes any under-provisioned interval
    // superlinearly (the backlog outlives the slot), so instead of
    // the throughput-optimal two-config mix the whole quantum runs
    // the 'over' configuration.
    if (monitor_.kind() == QosKind::RequestLatency
        && sched.under != sched.over) {
        sched.tOver += sched.tUnder;
        sched.tUnder = 0;
        sched.under = sched.over;
        sched.expectedSpeedup = lrn.qhat(sched.over);
    }

    // Merge slots too short to amortize a reconfiguration.
    auto min_slot = static_cast<Cycle>(
        params_.minSlotFrac * static_cast<double>(params_.quantum));
    if (sched.tOver > 0 && sched.tOver < min_slot
        && sched.tUnder > 0) {
        sched.tUnder += sched.tOver;
        sched.tOver = 0;
    } else if (sched.tUnder > 0 && sched.tUnder < min_slot) {
        sched.tOver += sched.tUnder;
        sched.tUnder = 0;
    }
    st.schedule = sched;

    // --- Occasional exploration slot keeps estimates of configs
    // the schedule would never visit from going stale.
    Cycle t_explore = 0;
    std::size_t cfg_explore = 0;
    bool may_explore = !probeQuantum()
        && (monitor_.kind() != QosKind::RequestLatency
            || lastQ_ > 1.2); // latency apps: explore when safe
    if (may_explore && params_.epsilon > 0.0
        && rng_.nextBool(params_.epsilon)) {
        cfg_explore = static_cast<std::size_t>(
            rng_.nextBounded(space_.size()));
        t_explore = static_cast<Cycle>(
            params_.exploreFrac
            * static_cast<double>(params_.quantum));
        Cycle &donor = sched.tUnder >= t_explore ? sched.tUnder
                                                 : sched.tOver;
        donor = donor >= t_explore ? donor - t_explore : 0;
    }

    // After slot merging and exploration carving the plan must
    // still fit the quantum (the carve may briefly overshoot by at
    // most the exploration slot when both donors run dry), and the
    // learned table feeding it must have stayed numeric.
    CASH_INVARIANT(sched.tOver + sched.tUnder + sched.tIdle
                           + t_explore
                       <= params_.quantum + t_explore,
                   "quantum plan exceeds tau by more than the "
                   "exploration slot");
    CASH_INVARIANT(std::isfinite(lrn.qhat(sched.over))
                       && lrn.qhat(sched.over) >= 0.0
                       && std::isfinite(lrn.qhat(sched.under))
                       && lrn.qhat(sched.under) >= 0.0,
                   "learned QoS table left the non-negative reals");
    CASH_INVARIANT(std::isfinite(q_demand) && q_demand >= 0.0,
                   "controller demand diverged (%g)", q_demand);

    // --- Execute Algorithm 1's schedule. QoS is assessed at
    // quantum granularity: the schedule's *average* must meet the
    // target (the 'under' slot is intentionally slow).
    validCycles_ = 0;
    // Fixed slot order: alternating order would slosh the paced
    // backlog across quantum boundaries and alias the QoS
    // measurement into a limit cycle.
    std::size_t first = sched.over;
    std::size_t second = sched.under;
    Cycle t_first = sched.tOver;
    Cycle t_second = sched.tUnder + sched.tIdle;
    runSlot(first, t_first, st);
    // A collapsed slot (delivering far below its promise) means the
    // phase changed under us: abort the quantum so the controller
    // reacts sooner.
    bool collapsed = lastSlotValid_ && t_first > 0
        && lastSlotQ_ < 0.5 * lrn.qhat(first);
    if (!collapsed) {
        runSlot(second, t_second, st);
        if (t_explore != 0)
            runSlot(cfg_explore, t_explore, st);
    }

    ++quantaRun_;
    // One span per control period: the executed schedule and the
    // learned speedups that justified it (Algorithm 1's output).
    CASH_TRACE_SPAN(trace::Category::Runtime, "quantum", q_start,
                    sim_.vcore(id_).now() - q_start,
                    {{"vcore", id_},
                     {"over", sched.over},
                     {"under", sched.under},
                     {"t_over", sched.tOver},
                     {"t_under", sched.tUnder},
                     {"qhat_over", lrn.qhat(sched.over)},
                     {"qhat_under", lrn.qhat(sched.under)},
                     {"pstate", currentPState_},
                     {"s_cmd", st.speedupCmd},
                     {"cost", st.cost},
                     {"reconfigs", st.reconfigs}});
    CASH_METRIC_INC("runtime.quanta");
    CASH_METRIC_ADD("runtime.reconfigs", st.reconfigs);
    CASH_METRIC_ADD("runtime.reconfig_stall_cycles",
                    st.reconfigStall);
    if (validCycles_ > 0) {
        st.qos /= static_cast<double>(validCycles_);
        // A probe quantum's reading already went where it belongs —
        // the probed P-state's table. Folding it into the control
        // history too would drag the violation EWMA down during
        // warm-up and charge phantom violations to the first
        // counted quanta.
        bool probe = params_.dvfs
            && monitor_.kind() == QosKind::Throughput
            && quantaRun_ >= 2 && quantaRun_ <= kNumPStates;
        // Latency readings are steep and noisy (queueing): smooth
        // the controller's input; throughput readings are already
        // near-deterministic per quantum.
        if (!probe) {
            lastQ_ = monitor_.kind() == QosKind::RequestLatency
                ? 0.5 * lastQ_ + 0.5 * st.qos
                : st.qos;
            ewmaQ_ = 0.5 * ewmaQ_ + 0.5 * st.qos;
        }
        // The first few quanta are the controller's cold start and
        // are excluded from the violation accounting (all policies
        // are treated identically).
        if (quantaRun_ > params_.warmupQuanta) {
            st.samples = 1;
            ++totalSamples_;
            if (ewmaQ_ < 1.0 - params_.violationTolerance) {
                st.violations = 1;
                ++totalViolations_;
                CASH_METRIC_INC("runtime.violations");
            }
        }
        CASH_TRACE_COUNTER(trace::Category::Runtime, "qos", q_start,
                           "normalized", st.qos);
        CASH_METRIC_SAMPLE("runtime.quantum_qos", st.qos);
        CASH_METRIC_SAMPLE("runtime.quantum_cost", st.cost);
    }
    // The Kalman pairs the next measurement with the QoS this
    // schedule *promised* (per the learned table): the filtered
    // ratio of delivered to promised QoS is the plant gain the
    // controller divides by.
    lastS_ = sched.expectedSpeedup > 1e-12 ? sched.expectedSpeedup
                                           : q_demand;
    st.finished = finished_;
    return st;
}

QuantumStats
CashRuntime::runUntil(Cycle target_cycle)
{
    QuantumStats agg;
    while (!finished_ && sim_.vcore(id_).now() < target_cycle) {
        QuantumStats st = step();
        agg.cost += st.cost;
        agg.cycles += st.cycles;
        agg.qos += st.qos * st.samples;
        agg.samples += st.samples;
        agg.violations += st.violations;
        agg.reconfigs += st.reconfigs;
        agg.reconfigStall += st.reconfigStall;
        agg.freqChanges += st.freqChanges;
        agg.dvfsStall += st.dvfsStall;
        agg.pstate = st.pstate;
        agg.speedupCmd = st.speedupCmd;
        agg.baseEstimate = st.baseEstimate;
        agg.phaseDetected = agg.phaseDetected || st.phaseDetected;
        agg.schedule = st.schedule;
        if (st.cycles == 0 && !st.finished)
            break; // defensive: no forward progress
    }
    if (agg.samples > 0)
        agg.qos /= static_cast<double>(agg.samples);
    agg.finished = finished_;
    return agg;
}

} // namespace cash
