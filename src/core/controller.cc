#include "core/controller.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace cash
{

DeadbeatController::DeadbeatController(double s_min, double s_max,
                                       double setpoint,
                                       double deadband, double gain)
    : sMin_(s_min), sMax_(s_max), setpoint_(setpoint),
      deadband_(deadband), gain_(gain)
{
    if (gain <= 0.0 || gain > 1.0)
        fatal("controller gain %f outside (0, 1]", gain);
    if (s_min < 0.0 || s_max <= s_min)
        fatal("controller speedup bounds [%f, %f] invalid",
              s_min, s_max);
    if (setpoint <= 0.0)
        fatal("controller setpoint must be positive");
    if (deadband < 0.0)
        fatal("controller deadband must be non-negative");
}

double
DeadbeatController::step(double q, double b_hat)
{
    e_ = setpoint_ - q;
    // Inside the deadband the command holds: measurement noise is
    // not worth a reconfiguration.
    // A damping factor below 1 trades the one-step deadbeat for
    // stability margin: with a one-quantum measurement delay a
    // unity-gain integrator sustains a limit cycle.
    if (std::fabs(e_) > deadband_ && b_hat > 1e-12)
        s_ += gain_ * e_ / b_hat;
    s_ = std::clamp(s_, sMin_, sMax_);
    return s_;
}

void
DeadbeatController::reset(double s)
{
    s_ = std::clamp(s, sMin_, sMax_);
    e_ = 0.0;
}

} // namespace cash
