/**
 * @file
 * QoS monitoring over the Runtime Interface Network.
 *
 * The CASH architecture has no fixed cores, so "read the performance
 * counters" is a distributed operation: the monitor queries every
 * member Slice of a virtual core (timestamped request/reply over the
 * RIN) and synthesizes vcore-level QoS from the per-Slice deltas
 * (paper Sec III-B2). Throughput QoS is committed instructions per
 * cycle; request QoS is mean cycles per completed request.
 *
 * All readings are normalized against the QoS target so the control
 * pipeline is unit-free: normalized 1.0 = exactly on target, above
 * 1.0 = better than target (faster, or lower latency).
 */

#ifndef CASH_CORE_MONITOR_HH
#define CASH_CORE_MONITOR_HH

#include <cstdint>
#include <unordered_map>

#include "sim/ssim.hh"
#include "workload/apps.hh"

namespace cash
{

/**
 * One QoS measurement window.
 */
struct QosReading
{
    /** False when the window contained no signal (e.g., zero
     *  completed requests for a latency target). */
    bool valid = false;
    /** Performance relative to target (1.0 = on target). */
    double normalized = 0.0;
    /** Raw metric: IPC, or cycles per request. */
    double raw = 0.0;
    /** Window length in cycles. */
    Cycle window = 0;
    /** Application backlog at sample time. */
    std::uint64_t backlog = 0;
};

/**
 * Synthesizes QoS readings for one virtual core.
 */
class VCoreMonitor
{
  public:
    /**
     * @param sim the chip
     * @param id the monitored virtual core
     * @param kind QoS metric to synthesize
     * @param target absolute target (IPC, or cycles/request)
     */
    VCoreMonitor(SSim &sim, VCoreId id, QosKind kind, double target);

    /**
     * Measure QoS since the previous sample (or construction).
     */
    QosReading sample();

    double target() const { return target_; }
    QosKind kind() const { return kind_; }

  private:
    SSim &sim_;
    VCoreId id_;
    QosKind kind_;
    double target_;

    /** Per-Slice committed-instruction baselines (by fabric id). */
    std::unordered_map<SliceId, InstCount> lastCommitted_;
    Cycle lastTimestamp_ = 0;
    Cycle lastIdle_ = 0;
    std::uint64_t lastReqDone_ = 0;
    std::uint64_t lastReqLatSum_ = 0;
    bool primed_ = false;
};

} // namespace cash

#endif // CASH_CORE_MONITOR_HH
