/**
 * @file
 * The virtual-core configuration space and its cost model.
 *
 * The paper's evaluation sweeps virtual cores built from 1..8 Slices
 * and 64 KB..8 MB of L2 in power-of-two steps — 64 configurations.
 * Cost follows Amazon EC2's linear per-capacity pricing (Sec VI-B):
 * $0.0098/hour per Slice and $0.0032/hour per 64 KB L2 bank, which
 * prices the minimal 1-Slice + 64 KB configuration at the $0.013/hr
 * of a t2.micro. The absolute numbers are conventions; every result
 * in the paper (and here) is a cost *ratio*.
 */

#ifndef CASH_CORE_CONFIG_SPACE_HH
#define CASH_CORE_CONFIG_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cash
{

/**
 * One point in the configuration space.
 */
struct VCoreConfig
{
    std::uint32_t slices = 1;
    std::uint32_t banks = 1; ///< 64 KB L2 banks

    bool operator==(const VCoreConfig &o) const = default;

    std::string str() const;
};

/**
 * The enumerated configuration space (dense index <-> config).
 */
class ConfigSpace
{
  public:
    /**
     * @param max_slices largest Slice count (configs use 1..max)
     * @param max_banks largest bank count; bank counts are powers
     *        of two from 1 to max_banks
     */
    explicit ConfigSpace(std::uint32_t max_slices = 8,
                         std::uint32_t max_banks = 128);

    /**
     * A custom (non-grid) space, e.g. the coarse-grain big.LITTLE
     * pair. neighbours() is empty for custom spaces.
     */
    explicit ConfigSpace(std::vector<VCoreConfig> configs);

    std::size_t size() const { return configs_.size(); }
    const VCoreConfig &at(std::size_t k) const;
    /** Dense index of a config; fatal() if not in the space. */
    std::size_t indexOf(const VCoreConfig &config) const;
    bool contains(const VCoreConfig &config) const;

    const std::vector<VCoreConfig> &all() const { return configs_; }

    /** The minimal (base) configuration: 1 Slice, 1 bank. */
    const VCoreConfig &base() const { return configs_.front(); }

    /** Indices of the grid neighbours of config k (+-1 Slice,
     *  x/÷2 banks) — used by local-optimum analyses. */
    std::vector<std::size_t> neighbours(std::size_t k) const;

    std::uint32_t maxSlices() const { return maxSlices_; }
    std::uint32_t maxBanks() const { return maxBanks_; }

  private:
    std::uint32_t maxSlices_;
    std::uint32_t maxBanks_;
    bool grid_ = true;
    std::vector<VCoreConfig> configs_;
};

/**
 * EC2-anchored linear area pricing.
 */
class CostModel
{
  public:
    /**
     * @param slice_rate $/hour per Slice
     * @param bank_rate $/hour per 64 KB L2 bank
     * @param clock_hz simulated clock for cycle->hour conversion
     */
    explicit CostModel(double slice_rate = 0.0098,
                       double bank_rate = 0.0032,
                       double clock_hz = 1e9);

    /** $/hour while holding a configuration. */
    double ratePerHour(const VCoreConfig &config) const;

    /** $ charged for holding a configuration for some cycles. */
    double cost(const VCoreConfig &config, Cycle cycles) const;

    /** Convert cycles to hours at the model clock. */
    double hours(Cycle cycles) const;

    double sliceRate() const { return sliceRate_; }
    double bankRate() const { return bankRate_; }
    double clockHz() const { return clockHz_; }

  private:
    double sliceRate_;
    double bankRate_;
    double clockHz_;
};

} // namespace cash

#endif // CASH_CORE_CONFIG_SPACE_HH
