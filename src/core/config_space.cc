#include "core/config_space.hh"

#include <algorithm>

#include "common/log.hh"

namespace cash
{

std::string
VCoreConfig::str() const
{
    std::uint64_t l2kb = static_cast<std::uint64_t>(banks) * 64;
    if (l2kb >= 1024)
        return strfmt("%uS/%lluMB", slices,
                      static_cast<unsigned long long>(l2kb / 1024));
    return strfmt("%uS/%lluKB", slices,
                  static_cast<unsigned long long>(l2kb));
}

ConfigSpace::ConfigSpace(std::uint32_t max_slices,
                         std::uint32_t max_banks)
    : maxSlices_(max_slices), maxBanks_(max_banks)
{
    if (max_slices == 0)
        fatal("ConfigSpace needs at least one Slice");
    if (max_banks == 0 || (max_banks & (max_banks - 1)) != 0)
        fatal("max_banks must be a power of two");
    for (std::uint32_t s = 1; s <= max_slices; ++s)
        for (std::uint32_t b = 1; b <= max_banks; b *= 2)
            configs_.push_back(VCoreConfig{s, b});
}

ConfigSpace::ConfigSpace(std::vector<VCoreConfig> configs)
    : maxSlices_(0), maxBanks_(0), grid_(false),
      configs_(std::move(configs))
{
    if (configs_.empty())
        fatal("custom ConfigSpace needs at least one configuration");
    for (const VCoreConfig &c : configs_) {
        if (c.slices == 0)
            fatal("configuration with zero Slices");
        maxSlices_ = std::max(maxSlices_, c.slices);
        maxBanks_ = std::max(maxBanks_, c.banks);
    }
}

const VCoreConfig &
ConfigSpace::at(std::size_t k) const
{
    if (k >= configs_.size())
        panic("config index %zu out of range (%zu configs)",
              k, configs_.size());
    return configs_[k];
}

bool
ConfigSpace::contains(const VCoreConfig &config) const
{
    if (!grid_) {
        for (const VCoreConfig &c : configs_)
            if (c == config)
                return true;
        return false;
    }
    if (config.slices < 1 || config.slices > maxSlices_)
        return false;
    if (config.banks < 1 || config.banks > maxBanks_)
        return false;
    return (config.banks & (config.banks - 1)) == 0;
}

std::size_t
ConfigSpace::indexOf(const VCoreConfig &config) const
{
    if (!contains(config))
        fatal("configuration %s outside the space",
              config.str().c_str());
    if (!grid_) {
        for (std::size_t k = 0; k < configs_.size(); ++k)
            if (configs_[k] == config)
                return k;
    }
    // banks is a power of two: log2 position within the row.
    std::uint32_t bank_steps = 0;
    for (std::uint32_t b = maxBanks_; b > 1; b /= 2)
        ++bank_steps;
    std::uint32_t row = config.slices - 1;
    std::uint32_t col = 0;
    for (std::uint32_t b = 1; b < config.banks; b *= 2)
        ++col;
    return static_cast<std::size_t>(row) * (bank_steps + 1) + col;
}

std::vector<std::size_t>
ConfigSpace::neighbours(std::size_t k) const
{
    const VCoreConfig &c = at(k);
    std::vector<std::size_t> out;
    if (!grid_)
        return out;
    VCoreConfig n;
    n = c;
    n.slices = c.slices - 1;
    if (contains(n))
        out.push_back(indexOf(n));
    n = c;
    n.slices = c.slices + 1;
    if (contains(n))
        out.push_back(indexOf(n));
    n = c;
    n.banks = c.banks / 2;
    if (c.banks > 1 && contains(n))
        out.push_back(indexOf(n));
    n = c;
    n.banks = c.banks * 2;
    if (contains(n))
        out.push_back(indexOf(n));
    return out;
}

CostModel::CostModel(double slice_rate, double bank_rate,
                     double clock_hz)
    : sliceRate_(slice_rate), bankRate_(bank_rate), clockHz_(clock_hz)
{
    if (slice_rate < 0.0 || bank_rate < 0.0)
        fatal("negative resource prices");
    if (clock_hz <= 0.0)
        fatal("clock must be positive");
}

double
CostModel::ratePerHour(const VCoreConfig &config) const
{
    return sliceRate_ * config.slices + bankRate_ * config.banks;
}

double
CostModel::hours(Cycle cycles) const
{
    return static_cast<double>(cycles) / clockHz_ / 3600.0;
}

double
CostModel::cost(const VCoreConfig &config, Cycle cycles) const
{
    return ratePerHour(config) * hours(cycles);
}

} // namespace cash
