#include "core/optimizer.hh"

#include <algorithm>
#include <cmath>

#include "check/invariant.hh"
#include "common/log.hh"

namespace cash
{

TwoConfigOptimizer::TwoConfigOptimizer(const ConfigSpace &space,
                                       const CostModel &cost)
    : space_(space), cost_(cost)
{
}

QuantumSchedule
TwoConfigOptimizer::solve(
    double s, Cycle tau,
    const std::function<double(std::size_t)> &speedup_of) const
{
    QuantumSchedule sched = solveImpl(s, tau, speedup_of);
    // LP feasibility: the mix covers the quantum exactly, both
    // selected configurations exist, and the promised speedup is a
    // real number — the properties Eqn 6 is allowed to assume.
    CASH_INVARIANT(sched.tOver + sched.tUnder + sched.tIdle == tau,
                   "schedule times sum to %llu, quantum is %llu",
                   static_cast<unsigned long long>(
                       sched.tOver + sched.tUnder + sched.tIdle),
                   static_cast<unsigned long long>(tau));
    CASH_INVARIANT(sched.over < space_.size()
                       && sched.under < space_.size(),
                   "schedule picked configurations outside the "
                   "%zu-point space", space_.size());
    CASH_INVARIANT(std::isfinite(sched.expectedSpeedup)
                       && sched.expectedSpeedup >= 0.0,
                   "schedule promises speedup %g",
                   sched.expectedSpeedup);
    return sched;
}

QuantumSchedule
TwoConfigOptimizer::solveImpl(
    double s, Cycle tau,
    const std::function<double(std::size_t)> &speedup_of) const
{
    if (tau == 0)
        fatal("optimizer quantum must be non-zero");

    constexpr std::size_t none = ~std::size_t(0);
    std::size_t over = none;
    std::size_t under = none;
    double over_cost = 0.0;
    double under_eff = -1.0;
    double s_over = 0.0;
    double s_under = 0.0;

    for (std::size_t k = 0; k < space_.size(); ++k) {
        double sk = speedup_of(k);
        double ck = cost_.ratePerHour(space_.at(k));
        if (sk > s) {
            if (over == none || ck < over_cost
                || (ck == over_cost && sk < s_over)) {
                over = k;
                over_cost = ck;
                s_over = sk;
            }
        } else if (sk < s) {
            double eff = sk / ck;
            if (under == none || eff > under_eff) {
                under = k;
                under_eff = eff;
                s_under = sk;
            }
        } else {
            // Exact match: run it for the whole quantum.
            QuantumSchedule sched;
            sched.over = sched.under = k;
            sched.tOver = tau;
            sched.expectedSpeedup = sk;
            return sched;
        }
    }

    QuantumSchedule sched;
    if (over == none) {
        // Demand exceeds every configuration: run the fastest.
        std::size_t best = 0;
        double best_s = speedup_of(0);
        for (std::size_t k = 1; k < space_.size(); ++k) {
            if (speedup_of(k) > best_s) {
                best = k;
                best_s = speedup_of(k);
            }
        }
        sched.over = sched.under = best;
        sched.tOver = tau;
        sched.expectedSpeedup = best_s;
        return sched;
    }

    if (under == none) {
        // Even the cheapest overshoots: mix the cheapest config
        // with idle (paying for held resources either way, so run
        // the min-cost config and let the source idle naturally).
        std::size_t cheapest = 0;
        double cheapest_rate = cost_.ratePerHour(space_.at(0));
        for (std::size_t k = 1; k < space_.size(); ++k) {
            double ck = cost_.ratePerHour(space_.at(k));
            if (ck < cheapest_rate) {
                cheapest = k;
                cheapest_rate = ck;
            }
        }
        double sk = speedup_of(cheapest);
        sched.over = sched.under = cheapest;
        double frac = sk > 1e-12 ? std::min(1.0, s / sk) : 1.0;
        sched.tOver = static_cast<Cycle>(
            frac * static_cast<double>(tau));
        sched.tIdle = tau - sched.tOver;
        sched.expectedSpeedup = s;
        return sched;
    }

    // Prefer an 'under' that shares the 'over' configuration's
    // bank count when one is nearly as efficient: switching L2
    // size twice per quantum flushes and remaps the cache, which
    // costs more than a small efficiency gap.
    if (space_.at(under).banks != space_.at(over).banks) {
        std::size_t alt = none;
        double alt_eff = -1.0;
        for (std::size_t k = 0; k < space_.size(); ++k) {
            if (space_.at(k).banks != space_.at(over).banks)
                continue;
            double sk = speedup_of(k);
            if (sk >= s)
                continue;
            double eff = sk / cost_.ratePerHour(space_.at(k));
            if (alt == none || eff > alt_eff) {
                alt = k;
                alt_eff = eff;
            }
        }
        if (alt != none && alt_eff >= 0.85 * under_eff) {
            under = alt;
            s_under = speedup_of(alt);
        }
    }

    // The generic two-configuration mix (Eqn 6).
    sched.over = over;
    sched.under = under;
    double span = s_over - s_under;
    double frac = span > 1e-12 ? (s - s_under) / span : 1.0;
    frac = std::clamp(frac, 0.0, 1.0);
    sched.tOver = static_cast<Cycle>(frac * static_cast<double>(tau));
    sched.tUnder = tau - sched.tOver;
    sched.expectedSpeedup = frac * s_over + (1.0 - frac) * s_under;
    return sched;
}

double
TwoConfigOptimizer::scheduleRate(const QuantumSchedule &sched) const
{
    Cycle total = sched.tOver + sched.tUnder + sched.tIdle;
    if (total == 0)
        return 0.0;
    double over_rate = cost_.ratePerHour(space_.at(sched.over));
    double under_rate = cost_.ratePerHour(space_.at(sched.under));
    // Idle time still holds the 'under' configuration.
    double weighted = over_rate * static_cast<double>(sched.tOver)
        + under_rate
              * static_cast<double>(sched.tUnder + sched.tIdle);
    return weighted / static_cast<double>(total);
}

} // namespace cash
