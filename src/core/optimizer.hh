/**
 * @file
 * The two-configuration cost optimizer (paper Sec IV-C, Eqns 5-6).
 *
 * Scheduling over a quantum tau to deliver an average speedup s(t)
 * at minimum cost is a linear program with two constraints; LP
 * theory guarantees an optimal solution with at most two non-zero
 * configuration times (plus idle). The paper identifies them as
 *
 *     over  = argmin_k { c_k          | s_k > s(t) }
 *     under = argmax_k { s_k / c_k    | s_k < s(t) }
 *     t_over  = tau * (s(t) - s_under) / (s_over - s_under)
 *     t_under = tau - t_over
 *
 * Because the argmin/argmax scan the *whole* table, the selection is
 * global: local optima in the configuration space cannot trap it —
 * this is exactly the property that lets CASH beat convex
 * optimizers on non-convex spaces, provided the learned speedups
 * are faithful.
 *
 * Edge cases: if s(t) exceeds every known speedup the schedule is
 * the fastest configuration for the whole quantum (the controller
 * keeps winding up and QoS is simply infeasible); if s(t) is below
 * every speedup, the cheapest configuration is mixed with idle
 * (which still pays for the held base configuration, per the
 * problem's c_idle term).
 */

#ifndef CASH_CORE_OPTIMIZER_HH
#define CASH_CORE_OPTIMIZER_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "core/config_space.hh"

namespace cash
{

/**
 * The schedule for one quantum.
 */
struct QuantumSchedule
{
    /** Configuration run for the first part of the quantum. */
    std::size_t over = 0;
    /** Configuration run for the remainder (may equal over). */
    std::size_t under = 0;
    /** t_over of Eqn 6, in cycles. */
    Cycle tOver = 0;
    /** tau - t_over, in cycles. */
    Cycle tUnder = 0;
    /** Idle tail (only when even the cheapest config overshoots). */
    Cycle tIdle = 0;
    /** Expected average speedup of the schedule, in units of the
     *  base configuration's throughput. */
    double expectedSpeedup = 0.0;
};

/**
 * Solves Eqn 6 against a caller-supplied speedup table.
 */
class TwoConfigOptimizer
{
  public:
    /**
     * @param space the configuration menu (tiles per config)
     * @param cost pricing ($/Slice-hr, $/bank-hr) behind c_k
     */
    explicit TwoConfigOptimizer(const ConfigSpace &space,
                                const CostModel &cost);

    /**
     * Compute the minimum-cost schedule delivering speedup s.
     *
     * @param s the controller's speedup demand
     * @param tau quantum length in cycles
     * @param speedup_of table: config index -> estimated speedup
     */
    QuantumSchedule
    solve(double s, Cycle tau,
          const std::function<double(std::size_t)> &speedup_of) const;

    /** Expected cost rate ($/hr) of a schedule. */
    double scheduleRate(const QuantumSchedule &sched) const;

  private:
    /** The unchecked LP selection; solve() wraps it with the
     *  feasibility invariants (slot times sum to tau, indices in
     *  range) when CASH_CHECK_INVARIANTS is on. */
    QuantumSchedule
    solveImpl(double s, Cycle tau,
              const std::function<double(std::size_t)> &speedup_of)
        const;

    const ConfigSpace &space_;
    const CostModel &cost_;
};

} // namespace cash

#endif // CASH_CORE_OPTIMIZER_HH
