#include "core/monitor.hh"

#include <algorithm>

#include "common/log.hh"

namespace cash
{

VCoreMonitor::VCoreMonitor(SSim &sim, VCoreId id, QosKind kind,
                           double target)
    : sim_(sim), id_(id), kind_(kind), target_(target)
{
    if (target <= 0.0)
        fatal("QoS target must be positive, got %f", target);
    // Prime the baselines so the first sample() covers a real window.
    VCoreSample s = sim_.readCounters(id_);
    for (const CounterSample &cs : s.slices)
        lastCommitted_[cs.slice] = cs.counters.committedInsts;
    lastTimestamp_ = s.meta.clock;
    lastIdle_ = s.meta.idleCycles;
    lastReqDone_ = s.meta.requestsDone;
    lastReqLatSum_ = s.meta.requestLatencySum;
    primed_ = true;
}

QosReading
VCoreMonitor::sample()
{
    VCoreSample s = sim_.readCounters(id_);
    QosReading r;
    r.window = s.meta.clock > lastTimestamp_
        ? s.meta.clock - lastTimestamp_ : 0;
    r.backlog = s.meta.appBacklog;

    if (kind_ == QosKind::Throughput) {
        // Sum per-Slice committed-instruction deltas. Slices that
        // joined since the last sample start from their (persisted
        // or zero) counter; Slices that left take their last delta
        // with them — the monitor simply measures what the current
        // membership reports, as real RIN software must.
        InstCount delta = 0;
        std::unordered_map<SliceId, InstCount> now;
        for (const CounterSample &cs : s.slices) {
            InstCount cur = cs.counters.committedInsts;
            auto it = lastCommitted_.find(cs.slice);
            InstCount prev = it != lastCommitted_.end()
                ? it->second : 0;
            delta += cur > prev ? cur - prev : 0;
            now[cs.slice] = cur;
        }
        lastCommitted_ = std::move(now);
        // Measure delivered *capacity*: exclude cycles the paced
        // workload idled because it was ahead of its arrival rate.
        // Capacity >= target means the QoS is being met even when
        // the wall-clock commit rate is pinned at the pace.
        Cycle idle_delta = s.meta.idleCycles > lastIdle_
            ? s.meta.idleCycles - lastIdle_ : 0;
        lastIdle_ = s.meta.idleCycles;
        Cycle busy = r.window > idle_delta ? r.window - idle_delta
                                           : 0;
        if (busy > 0) {
            r.raw = static_cast<double>(delta)
                / static_cast<double>(busy);
            r.normalized = r.raw / target_;
            r.valid = true;
        }
    } else {
        std::uint64_t done = s.meta.requestsDone - lastReqDone_;
        std::uint64_t lat = s.meta.requestLatencySum - lastReqLatSum_;
        lastReqDone_ = s.meta.requestsDone;
        lastReqLatSum_ = s.meta.requestLatencySum;
        if (done > 0) {
            r.raw = static_cast<double>(lat)
                / static_cast<double>(done);
            // Lower latency is better: normalize as target/actual,
            // saturating above — "far better than target" readings
            // come from near-empty windows and carry no control
            // information, only variance.
            r.normalized = r.raw > 0.0 ? target_ / r.raw : 2.5;
            r.normalized = std::min(r.normalized, 2.5);
            r.valid = true;
        }
    }

    lastTimestamp_ = s.meta.clock;
    return r;
}

} // namespace cash
