/**
 * @file
 * The deadbeat QoS controller (paper Sec IV-A, Eqns 1-2).
 *
 * The controller works in *normalized* QoS space: q(t) is measured
 * performance divided by the target (so the setpoint is always
 * q0 = 1), and b is the normalized performance of the base (1 Slice
 * + 64 KB) configuration. Each step it integrates the error:
 *
 *     e(t) = q0 - q(t)
 *     s(t) = s(t-1) + e(t) / b
 *
 * which is deadbeat for the model q = s * b: one step drives the
 * error to zero if b is exact. b is supplied externally by the
 * Kalman estimator so the controller tracks phase changes.
 */

#ifndef CASH_CORE_CONTROLLER_HH
#define CASH_CORE_CONTROLLER_HH

namespace cash
{

/**
 * Deadbeat speedup controller.
 */
class DeadbeatController
{
  public:
    /**
     * @param s_min smallest permissible speedup command
     * @param s_max largest permissible speedup command
     * @param setpoint target normalized QoS (1.0 = exactly the
     *        user's target; slightly above adds a guard band)
     */
    DeadbeatController(double s_min = 0.0, double s_max = 64.0,
                       double setpoint = 1.0, double deadband = 0.0,
                       double gain = 1.0);

    /**
     * One control step.
     *
     * @param q measured normalized QoS (1.0 = on target)
     * @param b_hat current estimate of the base speed
     * @return the speedup command s(t)
     */
    double step(double q, double b_hat);

    /** Last issued speedup command. */
    double speedup() const { return s_; }

    /** Last computed error. */
    double error() const { return e_; }

    /** Reset the integrator to a given speedup. */
    void reset(double s);

  private:
    double sMin_;
    double sMax_;
    double setpoint_;
    double deadband_;
    double gain_;
    double s_ = 1.0;
    double e_ = 0.0;
};

} // namespace cash

#endif // CASH_CORE_CONTROLLER_HH
