/**
 * @file
 * The Kalman base-speed estimator (paper Sec IV-B, Eqns 3-4).
 *
 * The runtime cannot measure base speed directly (it would have to
 * drop to the base configuration and likely violate QoS). Instead
 * it estimates b(t) online from the observation model
 *
 *     b(t) = b(t-1) + delta_b(t)        (random-walk process)
 *     q(t) = s(t-1) * b(t-1) + delta_q  (noisy measurement)
 *
 * with the standard scalar Kalman recursion (Eqn 4). A phase change
 * is a step in b; the filter's exponential convergence tracks it in
 * O(log |b_i - b_i+1|) steps. The innovation magnitude is exposed
 * so the optimizer can react to detected phase changes (rescaling
 * its learned speedup table).
 */

#ifndef CASH_CORE_KALMAN_HH
#define CASH_CORE_KALMAN_HH

namespace cash
{

/**
 * Scalar Kalman filter for the application's base speed.
 */
class KalmanEstimator
{
  public:
    /**
     * @param initial_b starting estimate of base speed
     * @param process_var system variance v (per Eqn 4)
     * @param measurement_var measurement noise r — the paper treats
     *        this as a constant property of the hardware
     */
    KalmanEstimator(double initial_b = 1.0,
                    double process_var = 1e-4,
                    double measurement_var = 1e-2);

    /**
     * Fold in one observation.
     *
     * @param q measured (normalized) QoS
     * @param s the speedup that was applied when q was measured
     * @return the a-posteriori estimate b_hat(t)
     */
    double update(double q, double s);

    /** A-posteriori estimate b_hat(t) (Eqn 4), in normalized-QoS
     *  per unit of table-promised speedup. */
    double estimate() const { return bHat_; }
    /** Error variance p(t) of the recursion (Eqn 4). */
    double errorVariance() const { return errVar_; }
    /** Relative innovation of the last update: |q - s*b^-| / max(q,eps).
     *  Large values signal a phase change. */
    double innovation() const { return innovation_; }
    /** Kalman gain k(t) of the last update (Eqn 4). */
    double gain() const { return gain_; }

    /** Re-seed the estimate (e.g., after an external reset). */
    void reset(double b, double err_var = 1.0);

  private:
    double bHat_;
    double errVar_ = 1.0;
    double processVar_;
    double measurementVar_;
    double innovation_ = 0.0;
    double gain_ = 0.0;
    double lastS_ = 1.0;
};

} // namespace cash

#endif // CASH_CORE_KALMAN_HH
