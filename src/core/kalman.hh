/**
 * @file
 * The Kalman base-speed estimator (paper Sec IV-B, Eqns 3-4).
 *
 * The runtime cannot measure base speed directly (it would have to
 * drop to the base configuration and likely violate QoS). Instead
 * it estimates b(t) online from the observation model
 *
 *     b(t) = b(t-1) + delta_b(t)        (random-walk process)
 *     q(t) = s(t-1) * b(t-1) + delta_q  (noisy measurement)
 *
 * with the standard scalar Kalman recursion (Eqn 4). A phase change
 * is a step in b; the filter's exponential convergence tracks it in
 * O(log |b_i - b_i+1|) steps. The innovation magnitude is exposed
 * so the optimizer can react to detected phase changes (rescaling
 * its learned speedup table).
 *
 * Header-only on purpose: both the runtime controller (src/core)
 * and the sampled-simulation slice controller (src/sim/sampler)
 * run this recursion, and src/sim must not link src/core — the
 * dependency points the other way.
 */

#ifndef CASH_CORE_KALMAN_HH
#define CASH_CORE_KALMAN_HH

#include <algorithm>
#include <cmath>

#include "check/invariant.hh"
#include "common/log.hh"

namespace cash
{

/**
 * Scalar Kalman filter for the application's base speed.
 */
class KalmanEstimator
{
  public:
    /**
     * @param initial_b starting estimate of base speed
     * @param process_var system variance v (per Eqn 4)
     * @param measurement_var measurement noise r — the paper treats
     *        this as a constant property of the hardware
     */
    KalmanEstimator(double initial_b = 1.0,
                    double process_var = 1e-4,
                    double measurement_var = 1e-2)
        : bHat_(initial_b), processVar_(process_var),
          measurementVar_(measurement_var)
    {
        if (process_var < 0.0 || measurement_var <= 0.0)
            fatal("Kalman variances must be positive");
    }

    /**
     * Fold in one observation.
     *
     * @param q measured (normalized) QoS
     * @param s the speedup that was applied when q was measured
     * @return the a-posteriori estimate b_hat(t)
     */
    double update(double q, double s)
    {
        // A-priori estimates (Eqn 4, first two lines).
        double b_prior = bHat_;
        double e_prior = errVar_ + processVar_;

        // Kalman gain for the measurement q = s * b.
        double denom = s * s * e_prior + measurementVar_;
        gain_ = denom > 1e-18 ? e_prior * s / denom : 0.0;

        // Innovation and a-posteriori correction.
        double predicted = s * b_prior;
        innovation_ = std::fabs(q - predicted) / std::max(q, 1e-9);
        bHat_ = b_prior + gain_ * (q - predicted);
        errVar_ = (1.0 - gain_ * lastS_) * e_prior;
        errVar_ = std::max(errVar_, 1e-12);
        bHat_ = std::max(bHat_, 1e-9);

        lastS_ = s;

        // The scalar Riccati recursion must keep the error
        // covariance positive and finite, or every later gain is
        // garbage.
        CASH_INVARIANT(errVar_ > 0.0 && std::isfinite(errVar_),
                       "Kalman covariance left the positive reals "
                       "(%g)", errVar_);
        CASH_INVARIANT(std::isfinite(bHat_) && bHat_ > 0.0,
                       "Kalman estimate diverged (%g)", bHat_);
        CASH_INVARIANT(std::isfinite(gain_),
                       "Kalman gain diverged (%g)", gain_);
        return bHat_;
    }

    /** A-posteriori estimate b_hat(t) (Eqn 4), in normalized-QoS
     *  per unit of table-promised speedup. */
    double estimate() const { return bHat_; }
    /** Error variance p(t) of the recursion (Eqn 4). */
    double errorVariance() const { return errVar_; }
    /** Relative innovation of the last update: |q - s*b^-| / max(q,eps).
     *  Large values signal a phase change. */
    double innovation() const { return innovation_; }
    /** Kalman gain k(t) of the last update (Eqn 4). */
    double gain() const { return gain_; }

    /** Re-seed the estimate (e.g., after an external reset). */
    void reset(double b, double err_var = 1.0)
    {
        bHat_ = std::max(b, 1e-9);
        errVar_ = err_var;
        innovation_ = 0.0;
    }

  private:
    double bHat_;
    double errVar_ = 1.0;
    double processVar_;
    double measurementVar_;
    double innovation_ = 0.0;
    double gain_ = 0.0;
    double lastS_ = 1.0;
};

} // namespace cash

#endif // CASH_CORE_KALMAN_HH
