#include "fabric/grid.hh"

#include "common/log.hh"

namespace cash
{

FabricGrid::FabricGrid(const FabricParams &params)
    : params_(params),
      numSlices_(params.sliceCols * params.rows),
      numBanks_(params.bankCols * params.rows)
{
    if (params.sliceCols == 0 || params.bankCols == 0 || params.rows == 0)
        fatal("FabricGrid requires non-zero dimensions");
}

TileCoord
FabricGrid::sliceCoord(SliceId id) const
{
    if (id >= numSlices_)
        panic("sliceCoord: id %u out of range (%u slices)",
              id, numSlices_);
    // Slice columns are interleaved with bank columns: each Slice
    // column c sits at physical x = c * stride where stride spreads
    // bank columns between Slice columns.
    std::uint32_t col = id / params_.rows;
    std::uint32_t row = id % params_.rows;
    std::uint32_t stride = 1 + params_.bankCols / params_.sliceCols;
    return TileCoord{static_cast<std::int32_t>(col * stride),
                     static_cast<std::int32_t>(row)};
}

TileCoord
FabricGrid::bankCoord(BankId id) const
{
    if (id >= numBanks_)
        panic("bankCoord: id %u out of range (%u banks)", id, numBanks_);
    std::uint32_t col = id / params_.rows;
    std::uint32_t row = id % params_.rows;
    // Banks fill the columns between Slice columns.
    std::uint32_t per_gap = params_.bankCols / params_.sliceCols;
    std::uint32_t stride = 1 + per_gap;
    std::uint32_t gap = per_gap ? col / per_gap : col;
    std::uint32_t within = per_gap ? col % per_gap : 0;
    return TileCoord{static_cast<std::int32_t>(gap * stride + 1 + within),
                     static_cast<std::int32_t>(row)};
}

std::uint32_t
FabricGrid::sliceDistance(SliceId a, SliceId b) const
{
    return manhattan(sliceCoord(a), sliceCoord(b));
}

std::uint32_t
FabricGrid::sliceToBankDistance(SliceId s, BankId b) const
{
    return manhattan(sliceCoord(s), bankCoord(b));
}

double
FabricGrid::meanAccessDistance(const std::vector<SliceId> &slices,
                               const std::vector<BankId> &banks) const
{
    if (slices.empty() || banks.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (SliceId s : slices)
        for (BankId b : banks)
            total += sliceToBankDistance(s, b);
    return static_cast<double>(total)
        / static_cast<double>(slices.size() * banks.size());
}

} // namespace cash
