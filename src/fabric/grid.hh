/**
 * @file
 * The CASH fabric grid: a checkerboard of Slice and L2-bank tiles.
 *
 * The paper's Fig 3 shows Slices and cache banks interleaved across a
 * 2D switched interconnect; a full chip holds hundreds of each. The
 * FabricGrid assigns coordinates to every Slice and bank so that the
 * allocator and the latency models (operand network hops, L2 hit
 * delay proportional to distance) have a consistent geometry.
 *
 * Layout: columns alternate between Slice columns and bank columns,
 * matching the figure's banded arrangement. Slices are numbered in
 * row-major order within Slice columns, banks likewise.
 */

#ifndef CASH_FABRIC_GRID_HH
#define CASH_FABRIC_GRID_HH

#include <cstdint>
#include <vector>

#include "fabric/resource.hh"

namespace cash
{

/**
 * Geometry of a CASH chip.
 */
struct FabricParams
{
    /** Number of Slice columns on the chip. */
    std::uint32_t sliceCols = 4;
    /** Number of bank columns on the chip. */
    std::uint32_t bankCols = 8;
    /** Number of rows (shared by both tile types). */
    std::uint32_t rows = 16;
};

/**
 * Immutable geometric description of the fabric.
 */
class FabricGrid
{
  public:
    explicit FabricGrid(const FabricParams &params = FabricParams());

    std::uint32_t numSlices() const { return numSlices_; }
    std::uint32_t numBanks() const { return numBanks_; }

    /** Coordinate of a Slice tile; panics on out-of-range ids. */
    TileCoord sliceCoord(SliceId id) const;

    /** Coordinate of a bank tile; panics on out-of-range ids. */
    TileCoord bankCoord(BankId id) const;

    /** Hop distance between two Slices. */
    std::uint32_t sliceDistance(SliceId a, SliceId b) const;

    /** Hop distance from a Slice to a bank. */
    std::uint32_t sliceToBankDistance(SliceId s, BankId b) const;

    /**
     * Mean hop distance from a set of Slices to a set of banks —
     * the quantity that drives the paper's "hit delay proportional
     * to distance" L2 model. Returns 0 for empty bank sets.
     */
    double
    meanAccessDistance(const std::vector<SliceId> &slices,
                       const std::vector<BankId> &banks) const;

    const FabricParams &params() const { return params_; }

  private:
    FabricParams params_;
    std::uint32_t numSlices_;
    std::uint32_t numBanks_;
};

} // namespace cash

#endif // CASH_FABRIC_GRID_HH
