#include "fabric/allocator.hh"

#include <algorithm>
#include <limits>

#include "check/invariant.hh"
#include "common/log.hh"
#include "trace/metrics.hh"

namespace cash
{

double
VCoreAllocation::meanL2Distance(const FabricGrid &grid) const
{
    return grid.meanAccessDistance(slices, banks);
}

std::uint32_t
VCoreAllocation::sliceSpan(const FabricGrid &grid) const
{
    std::uint32_t span = 0;
    for (std::size_t i = 0; i < slices.size(); ++i)
        for (std::size_t j = i + 1; j < slices.size(); ++j)
            span = std::max(span, grid.sliceDistance(slices[i],
                                                     slices[j]));
    return span;
}

FabricAllocator::FabricAllocator(const FabricGrid &grid)
    : grid_(grid),
      sliceUsed_(grid.numSlices(), false),
      bankUsed_(grid.numBanks(), false)
{
}

std::vector<SliceId>
FabricAllocator::pickSlices(std::uint32_t num,
                            std::optional<TileCoord> anchor,
                            const std::vector<SliceId> &prefer) const
{
    std::vector<SliceId> chosen;
    chosen.reserve(num);
    std::vector<bool> taken = sliceUsed_;

    // Keep preferred (currently owned) slices first.
    for (SliceId s : prefer) {
        if (chosen.size() == num)
            break;
        chosen.push_back(s);
        taken[s] = false; // owned tiles count as available to us
    }
    for (SliceId s : chosen)
        taken[s] = true;

    // Establish an anchor: the first chosen slice, the caller's hint,
    // or the first free slice.
    TileCoord origin{0, 0};
    bool have_origin = false;
    if (!chosen.empty()) {
        origin = grid_.sliceCoord(chosen.front());
        have_origin = true;
    } else if (anchor) {
        origin = *anchor;
        have_origin = true;
    }

    while (chosen.size() < num) {
        SliceId best = invalidSlice;
        std::uint32_t best_dist = std::numeric_limits<std::uint32_t>::max();
        for (SliceId s = 0; s < grid_.numSlices(); ++s) {
            if (taken[s])
                continue;
            std::uint32_t d = have_origin
                ? manhattan(origin, grid_.sliceCoord(s)) : 0;
            if (d < best_dist) {
                best_dist = d;
                best = s;
            }
            if (!have_origin)
                break; // first free slice is fine
        }
        if (best == invalidSlice)
            return {}; // exhausted
        chosen.push_back(best);
        taken[best] = true;
        if (!have_origin) {
            origin = grid_.sliceCoord(best);
            have_origin = true;
        }
    }
    return chosen;
}

std::vector<BankId>
FabricAllocator::pickBanks(std::uint32_t num,
                           const std::vector<SliceId> &slices,
                           const std::vector<BankId> &prefer) const
{
    std::vector<BankId> chosen;
    if (num == 0)
        return chosen;
    chosen.reserve(num);
    std::vector<bool> taken = bankUsed_;

    for (BankId b : prefer) {
        if (chosen.size() == num)
            break;
        chosen.push_back(b);
    }
    for (BankId b : chosen)
        taken[b] = true;

    while (chosen.size() < num) {
        BankId best = invalidBank;
        std::uint64_t best_dist =
            std::numeric_limits<std::uint64_t>::max();
        for (BankId b = 0; b < grid_.numBanks(); ++b) {
            if (taken[b])
                continue;
            std::uint64_t d = 0;
            for (SliceId s : slices)
                d += grid_.sliceToBankDistance(s, b);
            if (d < best_dist) {
                best_dist = d;
                best = b;
            }
        }
        if (best == invalidBank)
            return {};
        chosen.push_back(best);
        taken[best] = true;
    }
    return chosen;
}

void
FabricAllocator::markSlices(const std::vector<SliceId> &ids, bool used)
{
    for (SliceId s : ids)
        sliceUsed_[s] = used;
}

void
FabricAllocator::markBanks(const std::vector<BankId> &ids, bool used)
{
    for (BankId b : ids)
        bankUsed_[b] = used;
}

void
FabricAllocator::checkConsistency() const
{
    std::vector<bool> slice_owned(grid_.numSlices(), false);
    std::vector<bool> bank_owned(grid_.numBanks(), false);
    for (const auto &[id, a] : live_) {
        CASH_INVARIANT(!a.slices.empty(), "vcore %u owns no Slices",
                       id);
        for (SliceId s : a.slices) {
            CASH_INVARIANT(s < grid_.numSlices(),
                           "vcore %u owns out-of-grid slice %u", id,
                           s);
            CASH_INVARIANT(!slice_owned[s],
                           "slice %u owned by two vcores", s);
            slice_owned[s] = true;
        }
        for (BankId b : a.banks) {
            CASH_INVARIANT(b < grid_.numBanks(),
                           "vcore %u owns out-of-grid bank %u", id,
                           b);
            CASH_INVARIANT(!bank_owned[b],
                           "bank %u owned by two vcores", b);
            bank_owned[b] = true;
        }
    }
    // Bitmap == ownership implies free + allocated == grid totals.
    for (SliceId s = 0; s < grid_.numSlices(); ++s)
        CASH_INVARIANT(sliceUsed_[s] == slice_owned[s],
                       "slice %u mark (%d) disagrees with ownership",
                       s, int(sliceUsed_[s]));
    for (BankId b = 0; b < grid_.numBanks(); ++b)
        CASH_INVARIANT(bankUsed_[b] == bank_owned[b],
                       "bank %u mark (%d) disagrees with ownership",
                       b, int(bankUsed_[b]));
}

std::optional<VCoreAllocation>
FabricAllocator::allocate(std::uint32_t num_slices,
                          std::uint32_t num_banks)
{
    if (num_slices == 0)
        fatal("a virtual core needs at least one Slice");
    auto slices = pickSlices(num_slices, std::nullopt, {});
    if (slices.size() != num_slices) {
        CASH_METRIC_INC("fabric.alloc_fail");
        return std::nullopt;
    }
    auto banks = pickBanks(num_banks, slices, {});
    if (banks.size() != num_banks) {
        CASH_METRIC_INC("fabric.alloc_fail");
        return std::nullopt;
    }

    VCoreAllocation alloc;
    alloc.id = nextId_++;
    alloc.slices = std::move(slices);
    alloc.banks = std::move(banks);
    markSlices(alloc.slices, true);
    markBanks(alloc.banks, true);
    live_[alloc.id] = alloc;
    CASH_METRIC_INC("fabric.allocs");
#if CASH_CHECK_INVARIANTS
    checkConsistency();
#endif
    return alloc;
}

std::optional<VCoreAllocation>
FabricAllocator::resize(VCoreId id, std::uint32_t num_slices,
                        std::uint32_t num_banks)
{
    auto it = live_.find(id);
    if (it == live_.end())
        fatal("resize of unknown vcore %u", id);
    if (num_slices == 0)
        fatal("a virtual core needs at least one Slice");

    VCoreAllocation &cur = it->second;

    // Temporarily free our own tiles so pickers can reuse them.
    markSlices(cur.slices, false);
    markBanks(cur.banks, false);

    // Prefer keeping a prefix of current tiles (EXPAND keeps all,
    // SHRINK keeps survivors), so physical churn is minimal.
    std::vector<SliceId> keep_slices(
        cur.slices.begin(),
        cur.slices.begin() + std::min<std::size_t>(cur.slices.size(),
                                                   num_slices));
    std::vector<BankId> keep_banks(
        cur.banks.begin(),
        cur.banks.begin() + std::min<std::size_t>(cur.banks.size(),
                                                  num_banks));

    auto slices = pickSlices(num_slices, std::nullopt, keep_slices);
    std::vector<BankId> banks;
    bool ok = slices.size() == num_slices;
    if (ok) {
        banks = pickBanks(num_banks, slices, keep_banks);
        ok = banks.size() == num_banks;
    }
    if (!ok) {
        CASH_METRIC_INC("fabric.resize_fail");
        // Roll back: re-mark the original tiles.
        markSlices(cur.slices, true);
        markBanks(cur.banks, true);
#if CASH_CHECK_INVARIANTS
        checkConsistency();
#endif
        return std::nullopt;
    }

    cur.slices = std::move(slices);
    cur.banks = std::move(banks);
    markSlices(cur.slices, true);
    markBanks(cur.banks, true);
    CASH_METRIC_INC("fabric.resizes");
#if CASH_CHECK_INVARIANTS
    checkConsistency();
#endif
    return cur;
}

void
FabricAllocator::release(VCoreId id)
{
    auto it = live_.find(id);
    if (it == live_.end())
        fatal("release of unknown vcore %u", id);
    markSlices(it->second.slices, false);
    markBanks(it->second.banks, false);
    CASH_METRIC_INC("fabric.releases");
#if CASH_CHECK_INVARIANTS
    // Mutation test: leak one slice's used mark so the conservation
    // checker has a deliberate bug to catch (see check/invariant.hh).
    if (CASH_FAULT_ARMED(Fault::AllocatorLeakSlice)
        && !it->second.slices.empty()) {
        sliceUsed_[it->second.slices.front()] = true;
    }
#endif
    live_.erase(it);
#if CASH_CHECK_INVARIANTS
    checkConsistency();
#endif
}

const VCoreAllocation *
FabricAllocator::find(VCoreId id) const
{
    auto it = live_.find(id);
    return it == live_.end() ? nullptr : &it->second;
}

const VCoreAllocation &
FabricAllocator::allocation(VCoreId id) const
{
    const VCoreAllocation *a = find(id);
    if (!a)
        fatal("allocation query for unknown vcore %u", id);
    return *a;
}

std::vector<VCoreId>
FabricAllocator::liveIds() const
{
    std::vector<VCoreId> ids;
    ids.reserve(live_.size());
    for (const auto &[id, a] : live_)
        ids.push_back(id);
    return ids;
}

std::vector<VCoreId>
FabricAllocator::compact()
{
    // Re-place every vcore from scratch, largest first, since all
    // Slices are interchangeable (paper, Sec III-A). The greedy
    // re-placement is not guaranteed to beat an adversarial current
    // placement, and every move costs the vcore a migration stall —
    // so the result is kept only if it actually tightens the
    // placement (less fragmentation, or equal fragmentation at a
    // lower mean L2 distance); otherwise the old placement is
    // restored and nothing moves.
    double old_frag = fragmentation();
    double old_dist = meanLiveL2Distance();
    CASH_METRIC_SAMPLE("fabric.fragmentation_at_compact", old_frag);
    auto old_live = live_;
    auto old_slice_used = sliceUsed_;
    auto old_bank_used = bankUsed_;

    std::vector<VCoreId> order;
    order.reserve(live_.size());
    for (const auto &[id, alloc] : live_)
        order.push_back(id);
    std::sort(order.begin(), order.end(),
              [this](VCoreId a, VCoreId b) {
                  return live_[a].slices.size() > live_[b].slices.size();
              });

    std::fill(sliceUsed_.begin(), sliceUsed_.end(), false);
    std::fill(bankUsed_.begin(), bankUsed_.end(), false);

    std::vector<VCoreId> moved;
    for (VCoreId id : order) {
        VCoreAllocation &cur = live_[id];
        auto old_slices = cur.slices;
        auto old_banks = cur.banks;
        auto slices = pickSlices(
            static_cast<std::uint32_t>(cur.slices.size()),
            std::nullopt, {});
        auto banks = pickBanks(
            static_cast<std::uint32_t>(cur.banks.size()), slices, {});
        if (slices.size() != cur.slices.size()
            || banks.size() != cur.banks.size()) {
            panic("compact lost resources for vcore %u", id);
        }
        cur.slices = std::move(slices);
        cur.banks = std::move(banks);
        markSlices(cur.slices, true);
        markBanks(cur.banks, true);
        if (cur.slices != old_slices || cur.banks != old_banks)
            moved.push_back(id);
    }

    double new_frag = fragmentation();
    double new_dist = meanLiveL2Distance();
    bool improved = new_frag < old_frag
        || (new_frag == old_frag && new_dist < old_dist);
    if (!improved && !moved.empty()) {
        live_ = std::move(old_live);
        sliceUsed_ = std::move(old_slice_used);
        bankUsed_ = std::move(old_bank_used);
        moved.clear();
    }
#if CASH_CHECK_INVARIANTS
    checkConsistency();
#endif
    return moved;
}

std::uint32_t
FabricAllocator::idealSliceSpan(std::uint32_t n) const
{
    if (n <= 1)
        return 0;
    // Run the placement greedy on an empty fabric: this is the
    // tightest footprint the picker itself could ever produce, so
    // live spans are comparable against it.
    std::vector<bool> taken(grid_.numSlices(), false);
    std::vector<SliceId> chosen;
    chosen.reserve(n);
    TileCoord origin = grid_.sliceCoord(0);
    chosen.push_back(0);
    taken[0] = true;
    while (chosen.size() < n && chosen.size() < grid_.numSlices()) {
        SliceId best = invalidSlice;
        std::uint32_t best_dist =
            std::numeric_limits<std::uint32_t>::max();
        for (SliceId s = 0; s < grid_.numSlices(); ++s) {
            if (taken[s])
                continue;
            std::uint32_t d = manhattan(origin, grid_.sliceCoord(s));
            if (d < best_dist) {
                best_dist = d;
                best = s;
            }
        }
        if (best == invalidSlice)
            break;
        chosen.push_back(best);
        taken[best] = true;
    }
    VCoreAllocation ideal;
    ideal.slices = std::move(chosen);
    return ideal.sliceSpan(grid_);
}

double
FabricAllocator::meanLiveL2Distance() const
{
    if (live_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &[id, a] : live_)
        sum += a.meanL2Distance(grid_);
    return sum / static_cast<double>(live_.size());
}

double
FabricAllocator::fragmentation() const
{
    if (live_.empty())
        return 0.0;
    double excess = 0.0;
    for (const auto &[id, a] : live_) {
        std::uint32_t span = a.sliceSpan(grid_);
        std::uint32_t ideal = idealSliceSpan(
            static_cast<std::uint32_t>(a.slices.size()));
        excess += span > ideal
            ? static_cast<double>(span - ideal) : 0.0;
    }
    return excess / static_cast<double>(live_.size());
}

std::uint32_t
FabricAllocator::freeSlices() const
{
    return static_cast<std::uint32_t>(
        std::count(sliceUsed_.begin(), sliceUsed_.end(), false));
}

std::uint32_t
FabricAllocator::freeBanks() const
{
    return static_cast<std::uint32_t>(
        std::count(bankUsed_.begin(), bankUsed_.end(), false));
}

std::uint32_t
FabricAllocator::liveVCores() const
{
    return static_cast<std::uint32_t>(live_.size());
}

} // namespace cash
