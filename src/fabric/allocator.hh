/**
 * @file
 * Virtual-core allocation on the CASH fabric.
 *
 * The allocator hands out Slices and L2 banks to virtual cores. Per
 * the paper (Sec III-A), neither Slices nor banks need be contiguous
 * for *functionality*, but for *performance* adjacent Slices are
 * grouped and banks are placed near the Slices that use them; the
 * allocator therefore places greedily by distance. Because all
 * Slices are interchangeable, fragmentation is repaired simply by
 * rescheduling (compact()), which the paper calls out explicitly.
 */

#ifndef CASH_FABRIC_ALLOCATOR_HH
#define CASH_FABRIC_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "fabric/grid.hh"
#include "fabric/resource.hh"

namespace cash
{

/**
 * The set of physical resources backing one virtual core.
 */
struct VCoreAllocation
{
    VCoreId id = invalidVCore;
    std::vector<SliceId> slices;
    std::vector<BankId> banks;

    /** Mean Slice-to-bank hop distance for this allocation. */
    double meanL2Distance(const FabricGrid &grid) const;
    /** Max hop distance between any two member Slices. */
    std::uint32_t sliceSpan(const FabricGrid &grid) const;
};

/**
 * Tracks which tiles are free and serves allocate/resize requests.
 *
 * All mutating operations either succeed fully or leave the
 * allocator unchanged.
 */
class FabricAllocator
{
  public:
    explicit FabricAllocator(const FabricGrid &grid);

    /**
     * Allocate a virtual core with the given resources.
     *
     * @param num_slices number of Slices (>= 1)
     * @param num_banks number of 64 KB L2 banks (>= 0)
     * @return the allocation, or nullopt if resources are exhausted
     */
    std::optional<VCoreAllocation>
    allocate(std::uint32_t num_slices, std::uint32_t num_banks);

    /**
     * Resize an existing virtual core in place, preferring to keep
     * currently-held tiles (so reconfiguration cost stays low).
     * On failure the prior allocation is untouched.
     *
     * @return the new allocation, or nullopt on exhaustion
     */
    std::optional<VCoreAllocation>
    resize(VCoreId id, std::uint32_t num_slices, std::uint32_t num_banks);

    /** Release all resources of a virtual core; throws FatalError
     *  on unknown ids. */
    void release(VCoreId id);

    /** Current allocation of a live virtual core, or nullptr for an
     *  id that is not live (the checked lookup path). */
    const VCoreAllocation *find(VCoreId id) const;

    /** Current allocation of a live virtual core; throws FatalError
     *  on unknown ids (use find() to probe). */
    const VCoreAllocation &allocation(VCoreId id) const;

    /** Ids of all live virtual cores, ascending. */
    std::vector<VCoreId> liveIds() const;

    /**
     * Reschedule all live virtual cores to minimize their footprint
     * spans (fragmentation repair). Returns the ids whose placement
     * changed. Resource *counts* per vcore are preserved, and the
     * result never regresses: if the greedy re-placement would not
     * tighten the live placement (lower fragmentation(), or equal
     * fragmentation at lower meanLiveL2Distance()), the current
     * placement is kept and nothing moves.
     */
    std::vector<VCoreId> compact();

    std::uint32_t freeSlices() const;
    std::uint32_t freeBanks() const;
    std::uint32_t liveVCores() const;

    /**
     * Smallest achievable Slice span for an n-Slice placement on an
     * *empty* fabric (the greedy picker's own notion of ideal).
     * Used as the fragmentation baseline.
     */
    std::uint32_t idealSliceSpan(std::uint32_t n) const;

    /**
     * Mean Slice-to-bank access distance over all live allocations
     * (0 when nothing is live). compact() exists to reduce this.
     */
    double meanLiveL2Distance() const;

    /**
     * Fragmentation of the live placement: mean excess Slice span
     * over the ideal span for each vcore's size, in hops. 0 means
     * every vcore is as tight as the empty fabric allows. Because
     * Slices are interchangeable this is entirely repairable by
     * compact(), so the cloud arbiter uses it as its compaction
     * trigger.
     */
    double fragmentation() const;

    const FabricGrid &grid() const { return grid_; }

  private:
    /** Pick num slices near an anchor; empty if impossible. */
    std::vector<SliceId>
    pickSlices(std::uint32_t num, std::optional<TileCoord> anchor,
               const std::vector<SliceId> &prefer) const;
    /** Pick num banks near the given slices; empty if impossible
     *  (and num > 0). */
    std::vector<BankId>
    pickBanks(std::uint32_t num, const std::vector<SliceId> &slices,
              const std::vector<BankId> &prefer) const;

    void markSlices(const std::vector<SliceId> &ids, bool used);
    void markBanks(const std::vector<BankId> &ids, bool used);

    /** Invariant hook: ownership bitmap exactly mirrors the live
     *  set (no double-ownership, no leaked marks). */
    void checkConsistency() const;

    const FabricGrid &grid_;
    std::vector<bool> sliceUsed_;
    std::vector<bool> bankUsed_;
    std::map<VCoreId, VCoreAllocation> live_;
    VCoreId nextId_ = 0;
};

} // namespace cash

#endif // CASH_FABRIC_ALLOCATOR_HH
