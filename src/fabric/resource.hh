/**
 * @file
 * Resource identifiers and grid coordinates for the CASH fabric.
 *
 * The CASH chip is a 2D fabric of two tile types (Fig 3 of the paper):
 * Slices (minimal out-of-order cores) and L2 cache banks (64 KB each).
 * Virtual cores are composed of one or more Slices plus zero or more
 * banks. Identifiers are dense indices into the fabric's tile arrays.
 */

#ifndef CASH_FABRIC_RESOURCE_HH
#define CASH_FABRIC_RESOURCE_HH

#include <cstdint>
#include <functional>

namespace cash
{

/** Dense index of a Slice tile within the fabric. */
using SliceId = std::uint32_t;

/** Dense index of an L2 cache bank tile within the fabric. */
using BankId = std::uint32_t;

/** Identifier of a virtual core (allocation handle). */
using VCoreId = std::uint32_t;

constexpr SliceId invalidSlice = ~SliceId(0);
constexpr BankId invalidBank = ~BankId(0);
constexpr VCoreId invalidVCore = ~VCoreId(0);

/**
 * Integer coordinate of a tile on the fabric grid.
 */
struct TileCoord
{
    std::int32_t x = 0;
    std::int32_t y = 0;

    bool operator==(const TileCoord &o) const = default;
};

/** Manhattan distance between two tiles — the hop count used for
 *  operand-network and L2-access latency. */
inline std::uint32_t
manhattan(const TileCoord &a, const TileCoord &b)
{
    auto dx = a.x > b.x ? a.x - b.x : b.x - a.x;
    auto dy = a.y > b.y ? a.y - b.y : b.y - a.y;
    return static_cast<std::uint32_t>(dx + dy);
}

} // namespace cash

#endif // CASH_FABRIC_RESOURCE_HH
