#include "service/core.hh"

#include "check/audit.hh"
#include "common/log.hh"
#include "trace/metrics.hh"

namespace cash::service
{

ServiceCore::ServiceCore(cloud::CloudProvider &provider,
                         bool audit_each_quantum,
                         cloud::ShardId shard_id)
    : provider_(provider), audit_(audit_each_quantum),
      shardId_(shard_id)
{}

void
ServiceCore::maybeAudit()
{
    if (audit_)
        auditProvider(provider_);
}

JsonValue
ServiceCore::apply(const Request &req)
{
    JsonValue resp;
    switch (req.op) {
      case Op::Ping:
        resp = okResponse(req.id);
        resp.set("round", JsonValue(provider_.round()));
        break;
      case Op::Arrive:
        resp = applyArrive(req);
        break;
      case Op::Depart:
        resp = applyDepart(req);
        break;
      case Op::Query:
        resp = applyQuery(req);
        break;
      case Op::Step:
        resp = applyStep(req);
        break;
      case Op::Snapshot:
        resp = applySnapshot(req);
        break;
      case Op::Drain:
        resp = drainReport();
        resp.set("id", JsonValue(req.id));
        break;
      case Op::Shards:
        resp = applyShardInfo(req);
        break;
      case Op::RegionSnapshot:
        // One shard's contribution; region engines merge these.
        resp = applySnapshot(req);
        resp.set("shard", JsonValue(shardId_));
        break;
      case Op::RegionEnergy:
        resp = applyEnergy(req);
        break;
      case Op::Migrate:
        resp = errorResponse(req.id, errors::BadRequest,
                             "migrate needs a region engine");
        break;
    }
    ++stats_.applied;
    if (auto ok = resp.getBool("ok"); ok && !*ok)
        ++stats_.failed;
    maybeAudit();
    return resp;
}

JsonValue
ServiceCore::applyArrive(const Request &req)
{
    if (provider_.draining())
        return errorResponse(req.id, errors::Draining,
                             "provider is draining");
    std::size_t classes = provider_.params().catalog.size();
    if (req.cls >= classes)
        return errorResponse(
            req.id, errors::BadRequest,
            strfmt("class %u out of range (catalog has %zu)",
                   req.cls, classes));
    cloud::TenantId id =
        provider_.injectArrival(req.cls, req.residence);
    const cloud::Tenant &t = *provider_.tenants()[id];
    JsonValue resp = okResponse(req.id);
    resp.set("tenant",
             JsonValue(cloud::regionTenantId(shardId_, id)));
    resp.set("state", JsonValue(cloud::tenantStateName(t.state)));
    resp.set("app", JsonValue(t.cls.app));
    resp.set("shard", JsonValue(shardId_));
    CASH_METRIC_INC("service.arrives");
    return resp;
}

bool
ServiceCore::localId(const Request &req, std::uint32_t &local,
                     JsonValue *resp) const
{
    if (cloud::tenantShard(req.tenant) != shardId_) {
        if (resp)
            *resp = errorResponse(
                req.id, errors::UnknownTenant,
                strfmt("tenant %u is not on shard %u", req.tenant,
                       shardId_));
        return false;
    }
    local = cloud::tenantLocal(req.tenant);
    return true;
}

JsonValue
ServiceCore::applyDepart(const Request &req)
{
    std::uint32_t local = 0;
    JsonValue resp;
    if (!localId(req, local, &resp))
        return resp;
    if (!provider_.injectDeparture(local))
        return errorResponse(
            req.id, errors::UnknownTenant,
            strfmt("tenant %u unknown or already gone", req.tenant));
    const cloud::Tenant &t = *provider_.tenants()[local];
    resp = okResponse(req.id);
    resp.set("tenant", JsonValue(req.tenant));
    resp.set("state", JsonValue(cloud::tenantStateName(t.state)));
    resp.set("bill", JsonValue(t.bill()));
    resp.set("joules", JsonValue(provider_.tenantJoules(t)));
    resp.set("energy_bill",
             JsonValue(provider_.params().sim.energy.dollars(
                 provider_.tenantJoules(t))));
    CASH_METRIC_INC("service.departs");
    return resp;
}

JsonValue
ServiceCore::applyQuery(const Request &req)
{
    std::uint32_t local = 0;
    JsonValue resp;
    if (!localId(req, local, &resp))
        return resp;
    if (local >= provider_.tenants().size())
        return errorResponse(req.id, errors::UnknownTenant,
                             strfmt("tenant %u unknown", req.tenant));
    const cloud::Tenant &t = *provider_.tenants()[local];
    resp = okResponse(req.id);
    resp.set("tenant", JsonValue(req.tenant));
    resp.set("app", JsonValue(t.cls.app));
    resp.set("state", JsonValue(cloud::tenantStateName(t.state)));
    resp.set("bill", JsonValue(t.bill()));
    resp.set("joules", JsonValue(provider_.tenantJoules(t)));
    resp.set("energy_bill",
             JsonValue(provider_.params().sim.energy.dollars(
                 provider_.tenantJoules(t))));
    resp.set("qos_samples", JsonValue(t.qosSamples()));
    resp.set("qos_violations", JsonValue(t.qosViolations()));
    resp.set("active_rounds", JsonValue(t.activeRounds));
    return resp;
}

JsonValue
ServiceCore::applyStep(const Request &req)
{
    for (std::uint32_t q = 0; q < req.quanta; ++q) {
        provider_.step();
        ++stats_.quanta;
        maybeAudit();
    }
    CASH_METRIC_ADD("service.quanta", req.quanta);
    JsonValue resp = okResponse(req.id);
    resp.set("round", JsonValue(provider_.round()));
    resp.set("active",
             JsonValue(provider_.activeTenants().size()));
    return resp;
}

JsonValue
ServiceCore::applySnapshot(const Request &req)
{
    const cloud::ProviderStats &st = provider_.stats();
    const FabricAllocator &al = provider_.chip().allocator();
    JsonValue resp = okResponse(req.id);
    resp.set("round", JsonValue(provider_.round()));
    resp.set("active",
             JsonValue(provider_.activeTenants().size()));
    resp.set("queued", JsonValue(provider_.queue().size()));
    resp.set("arrivals", JsonValue(st.arrivals));
    resp.set("admitted", JsonValue(st.admitted));
    resp.set("rejected", JsonValue(st.rejected));
    resp.set("abandoned", JsonValue(st.abandoned));
    resp.set("departed", JsonValue(st.departed));
    resp.set("revenue", JsonValue(provider_.revenue()));
    resp.set("qos_delivery", JsonValue(provider_.qosDelivery()));
    resp.set("free_slices", JsonValue(al.freeSlices()));
    resp.set("free_banks", JsonValue(al.freeBanks()));
    resp.set("draining", JsonValue(provider_.draining()));
    // Raw SLA tallies (active tenants included) so a region merge
    // can recompute qos_delivery exactly instead of averaging
    // fractions.
    std::uint64_t samples = st.slaSamples;
    std::uint64_t violations = st.slaViolations;
    for (const auto &tp : provider_.tenants()) {
        if (tp->state != cloud::TenantState::Active)
            continue;
        samples += tp->qosSamples();
        violations += tp->qosViolations();
    }
    resp.set("sla_samples", JsonValue(samples));
    resp.set("sla_violations", JsonValue(violations));
    resp.set("migrated_in", JsonValue(st.migratedIn));
    resp.set("migrated_out", JsonValue(st.migratedOut));
    resp.set("joules", JsonValue(st.dissipatedJoules));
    resp.set("energy_revenue",
             JsonValue(provider_.energyRevenue()));
    return resp;
}

JsonValue
ServiceCore::applyEnergy(const Request &req)
{
    // One shard's energy ledgers; region engines sum these. The
    // fields mirror ProviderStats' conservation identity, so a
    // region-wide audit can be recomputed from the wire.
    const cloud::ProviderStats &st = provider_.stats();
    JsonValue resp = okResponse(req.id);
    resp.set("shard", JsonValue(shardId_));
    resp.set("round", JsonValue(provider_.round()));
    resp.set("dissipated_joules", JsonValue(st.dissipatedJoules));
    resp.set("departed_joules", JsonValue(st.departedJoules));
    resp.set("exported_joules", JsonValue(st.exportedJoules));
    resp.set("overhead_joules", JsonValue(st.overheadJoules));
    resp.set("energy_revenue", JsonValue(provider_.energyRevenue()));
    resp.set("price_per_kwh",
             JsonValue(provider_.params().sim.energy.pricePerKwh));
    return resp;
}

JsonValue
ServiceCore::applyShardInfo(const Request &req)
{
    cloud::ShardLoad l = load();
    JsonValue resp = okResponse(req.id);
    resp.set("shard", JsonValue(shardId_));
    resp.set("round", JsonValue(l.round));
    resp.set("active", JsonValue(l.active));
    resp.set("queued", JsonValue(l.queued));
    resp.set("free_slices", JsonValue(l.freeSlices));
    resp.set("free_banks", JsonValue(l.freeBanks));
    resp.set("fragmentation", JsonValue(l.fragmentation));
    return resp;
}

std::optional<cloud::TenantSnapshot>
ServiceCore::migrateOut(std::uint32_t local_id)
{
    auto snap = provider_.migrateOut(local_id);
    if (snap)
        maybeAudit();
    return snap;
}

std::uint32_t
ServiceCore::migrateIn(const cloud::TenantSnapshot &snap)
{
    cloud::TenantId local = provider_.migrateIn(snap);
    maybeAudit();
    return cloud::regionTenantId(shardId_, local);
}

JsonValue
ServiceCore::drainReport()
{
    std::vector<cloud::FinalBill> bills = provider_.drain();
    // The post-drain audit is the shutdown billing-conservation
    // gate: every tenant departed, every holding released, departed
    // revenue equal to the sum of finalized bills.
    auditProvider(provider_);

    JsonValue arr = JsonValue::array();
    double total = 0.0;
    double energy_total = 0.0;
    for (const cloud::FinalBill &b : bills) {
        JsonValue row = JsonValue::object();
        row.set("tenant",
                JsonValue(cloud::regionTenantId(shardId_, b.tenant)));
        row.set("app", JsonValue(b.app));
        row.set("bill", JsonValue(b.bill));
        row.set("joules", JsonValue(b.joules));
        row.set("energy_bill", JsonValue(b.energyBill));
        row.set("qos_samples", JsonValue(b.qosSamples));
        row.set("qos_violations", JsonValue(b.qosViolations));
        row.set("estimated", JsonValue(b.estimated));
        row.set("shard", JsonValue(shardId_));
        arr.push(std::move(row));
        total += b.bill;
        energy_total += b.energyBill;
    }
    JsonValue resp = okResponse(0);
    resp.set("bills", std::move(arr));
    resp.set("revenue", JsonValue(total));
    resp.set("energy_revenue", JsonValue(energy_total));
    resp.set("departed", JsonValue(bills.size()));
    CASH_METRIC_INC("service.drains");
    return resp;
}

} // namespace cash::service
