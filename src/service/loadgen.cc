#include "service/loadgen.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "service/client.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace cash::service
{

namespace
{

using Clock = std::chrono::steady_clock;

/** One session's tallies, merged into the report at the end. */
struct SessionStats
{
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t oks = 0;
    std::uint64_t queueFull = 0;
    std::uint64_t otherErrors = 0;
    std::uint64_t arrives = 0;
    std::uint64_t departs = 0;
    std::uint64_t queries = 0;
    std::uint64_t steps = 0;
    std::uint64_t migrates = 0;
    bool failed = false;
    std::vector<double> latenciesUs;
};

double
usBetween(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from)
        .count();
}

/** Consume one response: classify it and record its latency. */
void
consumeResponse(const JsonValue &resp, SessionStats &st,
                std::map<std::uint64_t, Clock::time_point> &inflight,
                std::vector<std::uint32_t> &owned,
                std::map<std::uint64_t, std::uint32_t> &migrating)
{
    ++st.received;
    std::uint64_t id = resp.getUint("id").value_or(0);
    auto it = inflight.find(id);
    if (it != inflight.end()) {
        double us = usBetween(it->second, Clock::now());
        st.latenciesUs.push_back(us);
        CASH_METRIC_SAMPLE("loadgen.latency_us", us);
        inflight.erase(it);
    }
    if (auto mig = migrating.find(id); mig != migrating.end()) {
        // Response to one of our migrate requests. On success the
        // tenant now lives on another shard under a new region id:
        // swap it in place so later departs/queries hit the right
        // shard. On failure (e.g. it departed while the migrate was
        // in flight) the old id is either still valid or moot.
        std::uint32_t old_id = mig->second;
        migrating.erase(mig);
        if (resp.getBool("ok").value_or(false)) {
            ++st.oks;
            std::uint32_t new_id = static_cast<std::uint32_t>(
                resp.getUint("tenant").value_or(old_id));
            for (std::uint32_t &t : owned)
                if (t == old_id)
                    t = new_id;
        } else if (resp.getString("error").value_or("")
                   == errors::QueueFull) {
            ++st.queueFull;
        } else {
            ++st.otherErrors;
        }
        return;
    }
    if (resp.getBool("ok").value_or(false)) {
        ++st.oks;
        // A successful arrive hands us a tenant we may later depart
        // or query; queued tenants are valid depart targets too
        // (departing a queued tenant abandons it). Only arrive
        // responses carry "app" without "bill"; a rejected arrival
        // has no tenant to track.
        if (auto tenant = resp.getUint("tenant");
            tenant && resp.find("app") && !resp.find("bill")
            && resp.getString("state").value_or("") != "rejected")
            owned.push_back(static_cast<std::uint32_t>(*tenant));
        return;
    }
    std::string code = resp.getString("error").value_or("");
    if (code == errors::QueueFull)
        ++st.queueFull;
    else
        ++st.otherErrors;
}

/** Build request r for this session step from the op-mix draw. */
Request
drawRequest(const LoadConfig &cfg, Rng &rng,
            std::vector<std::uint32_t> &owned)
{
    Request r;
    double roll = rng.nextDouble();
    if (roll < cfg.departProb && !owned.empty()) {
        r.op = Op::Depart;
        std::size_t pick = rng.nextBounded(owned.size());
        r.tenant = owned[pick];
        owned.erase(owned.begin()
                    + static_cast<std::ptrdiff_t>(pick));
        return r;
    }
    roll -= cfg.departProb;
    if (roll < cfg.queryProb && !owned.empty()) {
        r.op = Op::Query;
        r.tenant = owned[rng.nextBounded(owned.size())];
        return r;
    }
    roll -= cfg.queryProb;
    if (roll < cfg.migrateProb && !owned.empty()) {
        // Target left at kAutoShard: the server's placement router
        // picks the emptiest other shard.
        r.op = Op::Migrate;
        r.tenant = owned[rng.nextBounded(owned.size())];
        return r;
    }
    roll -= cfg.migrateProb;
    if (roll < cfg.stepProb) {
        r.op = Op::Step;
        r.quanta = cfg.stepQuanta;
        return r;
    }
    r.op = Op::Arrive;
    r.cls = static_cast<std::uint32_t>(
        rng.nextBounded(std::max(1u, cfg.classes)));
    r.residence = 1
        + static_cast<std::uint32_t>(rng.nextBounded(
            std::max<std::uint32_t>(1, cfg.residenceMax)));
    return r;
}

void
countOp(Op op, SessionStats &st)
{
    switch (op) {
    case Op::Arrive: ++st.arrives; break;
    case Op::Depart: ++st.departs; break;
    case Op::Query: ++st.queries; break;
    case Op::Step: ++st.steps; break;
    case Op::Migrate: ++st.migrates; break;
    default: break;
    }
}

SessionStats
runSession(const LoadConfig &cfg, unsigned session_index,
           std::atomic<unsigned> &failures)
{
    SessionStats st;
    Rng rng(cfg.seed + 0x9e3779b97f4a7c15ull * (session_index + 1));
    std::vector<std::uint32_t> owned;
    std::map<std::uint64_t, Clock::time_point> inflight;
    /** request id -> pre-migration tenant id, for id adoption. */
    std::map<std::uint64_t, std::uint32_t> migrating;

    try {
        ServiceClient client =
            cfg.unixPath.empty()
                ? ServiceClient::connectTcp(cfg.tcpPort,
                                            cfg.tcpHost)
                : ServiceClient::connectUnix(cfg.unixPath);

        Clock::time_point next_send = Clock::now();
        for (unsigned i = 0; i < cfg.requests; ++i) {
            if (cfg.rate > 0.0) {
                // Open-loop: the schedule does not slow down when
                // the server does; backpressure shows up as window
                // stalls and queue_full answers, not a slower clock.
                next_send += std::chrono::duration_cast<
                    Clock::duration>(std::chrono::duration<double>(
                    rng.nextExponential(cfg.rate)));
                std::this_thread::sleep_until(next_send);
            }
            while (inflight.size()
                   >= std::max(1u, cfg.window))
                consumeResponse(client.next(), st, inflight, owned,
                                migrating);
            Request r = drawRequest(cfg, rng, owned);
            countOp(r.op, st);
            Clock::time_point t0 = Clock::now();
            std::uint64_t id = client.send(r);
            if (r.op == Op::Migrate)
                migrating.emplace(id, r.tenant);
            inflight.emplace(id, t0);
            ++st.sent;
        }
        while (st.received < st.sent)
            consumeResponse(client.next(), st, inflight, owned,
                            migrating);
    } catch (const FatalError &e) {
        // Cap the per-session noise: hundreds of sessions against a
        // dead socket all fail with the same message. The overflow
        // count is reported once after the run.
        unsigned nth = ++failures;
        if (nth <= cfg.maxSessionWarnings)
            warn("loadgen session %u failed: %s", session_index,
                 e.what());
        st.failed = true;
    }
    return st;
}

} // namespace

LoadReport
runLoad(const LoadConfig &config)
{
    Clock::time_point start = Clock::now();

    std::vector<SessionStats> stats(config.sessions);
    std::vector<std::thread> threads;
    std::atomic<unsigned> failures{0};
    threads.reserve(config.sessions);
    for (unsigned s = 0; s < config.sessions; ++s)
        threads.emplace_back([&config, &stats, &failures, s] {
            trace::TrackScope scope(
                1000 + s, strfmt("loadgen session %u", s));
            stats[s] = runSession(config, s, failures);
        });
    for (std::thread &t : threads)
        t.join();
    if (failures.load() > config.maxSessionWarnings)
        warn("loadgen: %u more session failures suppressed",
             failures.load() - config.maxSessionWarnings);

    LoadReport report;
    report.elapsedSec =
        std::chrono::duration<double>(Clock::now() - start).count();
    std::vector<double> lat;
    for (SessionStats &st : stats) {
        report.sent += st.sent;
        report.received += st.received;
        report.oks += st.oks;
        report.queueFull += st.queueFull;
        report.otherErrors += st.otherErrors;
        report.arrives += st.arrives;
        report.departs += st.departs;
        report.queries += st.queries;
        report.steps += st.steps;
        report.migrates += st.migrates;
        if (st.failed)
            ++report.failedSessions;
        lat.insert(lat.end(), st.latenciesUs.begin(),
                   st.latenciesUs.end());
    }
    std::sort(lat.begin(), lat.end());
    report.latCount = lat.size();
    if (!lat.empty()) {
        double sum = 0.0;
        for (double v : lat)
            sum += v;
        report.latMeanUs = sum / static_cast<double>(lat.size());
        auto at = [&](double q) {
            std::size_t i = static_cast<std::size_t>(
                q * static_cast<double>(lat.size() - 1));
            return lat[i];
        };
        report.latP50Us = at(0.5);
        report.latP90Us = at(0.9);
        report.latMaxUs = lat.back();
    }
    return report;
}

} // namespace cash::service
