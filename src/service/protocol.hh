/**
 * @file
 * The CASH service wire protocol: length-prefixed JSON frames.
 *
 * One frame = a 4-byte big-endian payload length followed by exactly
 * that many bytes of UTF-8 JSON. Requests and responses are flat
 * JSON objects; every request carries a client-chosen `id` the
 * response echoes, so clients may pipeline (the server may interleave
 * IO-thread error responses — e.g. `queue_full` — between
 * simulation-thread responses to earlier requests).
 *
 * Request grammar (see DESIGN.md §10 for the full contract):
 *
 *   {"id":N,"op":"ping"}
 *   {"id":N,"op":"arrive","cls":C,"residence":R}
 *   {"id":N,"op":"depart","tenant":T}
 *   {"id":N,"op":"query","tenant":T}
 *   {"id":N,"op":"step","quanta":Q}
 *   {"id":N,"op":"snapshot"}
 *   {"id":N,"op":"drain"}
 *   {"id":N,"op":"shards"}
 *   {"id":N,"op":"region_snapshot"}
 *   {"id":N,"op":"region_energy"}
 *   {"id":N,"op":"migrate","tenant":T}          — router picks
 *   {"id":N,"op":"migrate","tenant":T,"to":S}   — explicit shard
 *
 * Region addressing: tenant ids carry the owning shard in their top
 * byte (shard << 24 | local; cloud/placement.hh), and `arrive`
 * responses report the placement in a `shard` field. A one-shard
 * region is wire-identical to the single-chip daemon.
 *
 * Response: {"id":N,"ok":true,...} on success, or
 * {"id":N,"ok":false,"error":"<code>","detail":"..."} where <code>
 * is one of the errors::* constants below.
 *
 * Robustness contract enforced by FrameDecoder: a frame longer than
 * the configured maximum, or an empty frame, poisons the stream (the
 * server answers with a final error and closes the connection) —
 * a decoder error is sticky because a corrupt length prefix makes
 * every later byte boundary meaningless.
 */

#ifndef CASH_SERVICE_PROTOCOL_HH
#define CASH_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "service/json.hh"

namespace cash::service
{

/** Default cap on one frame's JSON payload, in bytes. */
constexpr std::size_t kDefaultMaxFrame = 256 * 1024;

/** Machine-readable error codes carried in the "error" field. */
namespace errors
{
constexpr const char *BadRequest = "bad_request";
constexpr const char *UnknownOp = "unknown_op";
constexpr const char *UnknownTenant = "unknown_tenant";
constexpr const char *QueueFull = "queue_full";
constexpr const char *DeadlineExceeded = "deadline_exceeded";
constexpr const char *Draining = "draining";
constexpr const char *Malformed = "malformed";
constexpr const char *FrameTooLarge = "frame_too_large";
} // namespace errors

/** Everything a client can ask of the daemon. */
enum class Op : std::uint8_t
{
    Ping,     ///< liveness probe; also flushes the pipeline
    Arrive,   ///< inject one tenant arrival (class, residence)
    Depart,   ///< force a tenant to depart / abandon the queue
    Query,    ///< one tenant's state, bill, and SLA tallies
    Step,     ///< advance the provider by N quanta
    Snapshot, ///< provider-wide stats and occupancy
    Drain,    ///< stop admissions, depart everyone, final bills
    Shards,   ///< region shard count + per-shard occupancy
    Migrate,  ///< move a tenant to another shard (region only)
    RegionSnapshot, ///< per-shard snapshots + placement stats
    RegionEnergy,   ///< per-shard energy ledgers + region totals
};

/** Wire name of an op ("ping", "arrive", ...). */
const char *opName(Op op);

/** Parse a wire name; nullopt for unknown names. */
std::optional<Op> opFromName(std::string_view name);

/** One decoded request. */
struct Request
{
    std::uint64_t id = 0;
    Op op = Op::Ping;
    std::uint32_t cls = 0;       ///< arrive: catalog class index
    std::uint32_t residence = 1; ///< arrive: residence in rounds
    std::uint32_t tenant = 0;    ///< depart/query/migrate: tenant id
    std::uint32_t quanta = 1;    ///< step: rounds to advance
    /** migrate: explicit target shard; kAutoShard lets the
     *  placement router pick. */
    std::uint32_t to = kAutoShard;

    static constexpr std::uint32_t kAutoShard = ~0u;

    /** The request as a wire-format JSON object. */
    JsonValue toJson() const;
};

/**
 * Decode one request object. Returns nullopt (and an errors::* code
 * in `err` plus a human-readable `detail`) when the object is not a
 * well-formed request; the caller still answers with the `id` the
 * object carried if its "id" member was readable.
 */
std::optional<Request> parseRequest(const JsonValue &v,
                                    std::string *err,
                                    std::string *detail,
                                    std::uint64_t *id_out);

/** Build the standard failure response. */
JsonValue errorResponse(std::uint64_t id, const char *code,
                        const std::string &detail);

/** Build the standard success response skeleton ({"id","ok":true}). */
JsonValue okResponse(std::uint64_t id);

// ---------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------

/** Wrap a payload in a 4-byte big-endian length prefix. */
std::string encodeFrame(std::string_view payload);

/**
 * Incremental frame decoder: feed() bytes as they arrive, next()
 * complete payloads in order. Oversized (> maxFrame) and empty
 * frames put the decoder into a sticky error state: next() then
 * returns nullopt with error() set, and further feed()s are ignored.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(std::size_t max_frame = kDefaultMaxFrame)
        : maxFrame_(max_frame)
    {}

    /** Append raw bytes from the stream. */
    void feed(const char *data, std::size_t len);

    /** The next complete payload, if one is buffered. */
    std::optional<std::string> next();

    /** Sticky error code (errors::*), or nullptr while healthy. */
    const char *error() const { return error_; }

    /** Bytes buffered but not yet returned (diagnostics). */
    std::size_t pending() const { return buf_.size() - off_; }

  private:
    std::size_t maxFrame_;
    std::string buf_;
    std::size_t off_ = 0; ///< consumed prefix of buf_
    const char *error_ = nullptr;
};

} // namespace cash::service

#endif // CASH_SERVICE_PROTOCOL_HH
