/**
 * @file
 * Blocking client for the CASH service protocol.
 *
 * A ServiceClient owns one connection (Unix-domain or loopback TCP)
 * and speaks the length-prefixed JSON protocol of
 * service/protocol.hh. Two usage styles:
 *
 *  - Synchronous: call() sends one request and blocks for its
 *    response — the natural style for scripts and examples.
 *  - Pipelined: send() queues a request on the wire and returns its
 *    id immediately; next() blocks for the next response in stream
 *    order, whatever its id; wait(id) blocks for one specific id,
 *    stashing any responses that arrive first (the server may
 *    interleave IO-thread errors such as `queue_full` between
 *    simulation responses to earlier requests). The load generator
 *    uses send()/next() to keep a window of requests in flight.
 *
 * Errors: connection failures, mid-stream EOF, and protocol
 * violations throw FatalError (the common/log.hh idiom — tests catch
 * it, tools die with the message). Application-level failures are
 * not exceptions: a response with `"ok":false` is returned to the
 * caller, who checks the `error` code.
 */

#ifndef CASH_SERVICE_CLIENT_HH
#define CASH_SERVICE_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>

#include "service/protocol.hh"

namespace cash::service
{

class ServiceClient
{
  public:
    /** Connect to a Unix-domain listener. fatal() on failure. */
    static ServiceClient connectUnix(const std::string &path);

    /** Connect to a loopback TCP listener. fatal() on failure. */
    static ServiceClient connectTcp(std::uint16_t port,
                                    const std::string &host =
                                        "127.0.0.1");

    /** Wrap an already-connected stream socket (takes ownership). */
    explicit ServiceClient(int fd,
                           std::size_t max_frame = kDefaultMaxFrame);
    ~ServiceClient();

    ServiceClient(ServiceClient &&other) noexcept;
    ServiceClient &operator=(ServiceClient &&other) noexcept;
    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Write one framed request; assigns a fresh id when the
     *  request's id is 0. Returns the id on the wire. */
    std::uint64_t send(Request req);

    /** Block for the next response in stream order (any id). */
    JsonValue next();

    /** Block until the response carrying `id` arrives; responses to
     *  other ids received meanwhile are stashed for later wait()s
     *  (next() does NOT see stashed responses). */
    JsonValue wait(std::uint64_t id);

    /** send() + wait(): one synchronous round trip. */
    JsonValue call(Request req);

    // --- convenience wrappers (synchronous) ---
    JsonValue ping();
    JsonValue arrive(std::uint32_t cls, std::uint32_t residence);
    JsonValue depart(std::uint32_t tenant);
    JsonValue query(std::uint32_t tenant);
    JsonValue step(std::uint32_t quanta);
    JsonValue snapshot();
    JsonValue drain();

    /** Region ops (single-shard servers answer shards()/
     *  regionSnapshot() with a one-entry region and reject
     *  migrate()). `to` defaults to Request::kAutoShard: the
     *  placement router picks the emptiest other shard. */
    JsonValue migrate(std::uint32_t tenant,
                      std::uint32_t to = Request::kAutoShard);
    JsonValue shards();
    JsonValue regionSnapshot();
    JsonValue regionEnergy();

    /** Half-close: no more requests; the server flushes pending
     *  responses and then closes (next()/wait() keep working). */
    void finishSending();

    void close();
    bool connected() const { return fd_ >= 0; }

    std::uint64_t sent() const { return sent_; }
    std::uint64_t received() const { return received_; }

  private:
    JsonValue readResponse();

    int fd_ = -1;
    std::uint64_t nextId_ = 1;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
    FrameDecoder decoder_;
    std::map<std::uint64_t, JsonValue> stash_;
};

} // namespace cash::service

#endif // CASH_SERVICE_CLIENT_HH
