#include "service/json.hh"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace cash::service
{

void
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        panic("push() on a non-array JSON value");
    items_.push_back(std::move(v));
}

void
JsonValue::set(std::string key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        panic("set() on a non-object JSON value");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

std::optional<std::uint64_t>
JsonValue::getUint(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (!v || !v->isNumber())
        return std::nullopt;
    double d = v->number();
    if (d < 0.0 || d != std::floor(d) || d > 1.8e19)
        return std::nullopt;
    return static_cast<std::uint64_t>(d);
}

std::optional<double>
JsonValue::getNumber(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (!v || !v->isNumber())
        return std::nullopt;
    return v->number();
}

std::optional<std::string>
JsonValue::getString(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (!v || !v->isString())
        return std::nullopt;
    return v->string();
}

std::optional<bool>
JsonValue::getBool(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (!v || !v->isBool())
        return std::nullopt;
    return v->boolean();
}

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out += "null";
        return;
    }
    if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(d));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

} // namespace

void
JsonValue::dumpTo(std::string &out) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        appendNumber(out, num_);
        break;
      case Kind::String:
        appendEscaped(out, str_);
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &v : items_) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &m : members_) {
            if (!first)
                out += ',';
            first = false;
            appendEscaped(out, m.first);
            out += ':';
            m.second.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

// ---------------------------------------------------------------
// Parser: recursive descent with a depth cap. Input arrives off the
// wire, so every failure is a normal outcome, not an exception.
// ---------------------------------------------------------------

namespace
{

constexpr int kMaxDepth = 32;

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string &why)
    {
        if (error.empty())
            error = strfmt("%s at byte %zu", why.c_str(), pos);
        return false;
    }

    void skipWs()
    {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\t'
                   || text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool literal(const char *word, std::size_t len)
    {
        if (text.size() - pos < len
            || text.compare(pos, len, word) != 0)
            return fail("invalid literal");
        pos += len;
        return true;
    }

    bool hex4(std::uint32_t &out)
    {
        if (text.size() - pos < 4)
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        return true;
    }

    void appendUtf8(std::string &s, std::uint32_t cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parseString(std::string &out)
    {
        // Caller consumed the opening quote.
        while (true) {
            if (pos >= text.size())
                return fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                std::uint32_t cp = 0;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a \uXXXX low surrogate must
                    // follow.
                    if (text.size() - pos < 2 || text[pos] != '\\'
                        || text[pos + 1] != 'u')
                        return fail("lone high surrogate");
                    pos += 2;
                    std::uint32_t lo = 0;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10)
                        + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("lone low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool parseNumber(double &out)
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos < text.size() && text[pos] >= '0'
                   && text[pos] <= '9') {
                ++pos;
                ++n;
            }
            return n;
        };
        // JSON forbids leading zeros ("01") and bare "-".
        if (pos < text.size() && text[pos] == '0') {
            ++pos;
        } else if (digits() == 0) {
            return fail("malformed number");
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (digits() == 0)
                return fail("malformed number fraction");
        }
        if (pos < text.size()
            && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size()
                && (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (digits() == 0)
                return fail("malformed number exponent");
        }
        // The slice is a valid JSON number: strtod cannot fail on it
        // (buffered because string_view is not NUL-terminated).
        std::string buf(text.substr(start, pos - start));
        out = std::strtod(buf.c_str(), nullptr);
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        switch (c) {
          case 'n':
            if (!literal("null", 4))
                return false;
            out = JsonValue();
            return true;
          case 't':
            if (!literal("true", 4))
                return false;
            out = JsonValue(true);
            return true;
          case 'f':
            if (!literal("false", 5))
                return false;
            out = JsonValue(false);
            return true;
          case '"': {
            ++pos;
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
          }
          case '[': {
            ++pos;
            out = JsonValue::array();
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.push(std::move(item));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated array");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '{': {
            ++pos;
            out = JsonValue::object();
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                if (pos >= text.size() || text[pos] != '"')
                    return fail("expected member key");
                ++pos;
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.set(std::move(key), std::move(item));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated object");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          default: {
            if (c == '-' || (c >= '0' && c <= '9')) {
                double d = 0.0;
                if (!parseNumber(d))
                    return false;
                out = JsonValue(d);
                return true;
            }
            return fail("unexpected character");
          }
        }
    }
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *err)
{
    Parser p{text, 0, {}};
    JsonValue v;
    if (!p.parseValue(v, 0)) {
        if (err)
            *err = p.error;
        return std::nullopt;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = strfmt("trailing garbage at byte %zu", p.pos);
        return std::nullopt;
    }
    return v;
}

} // namespace cash::service
