/**
 * @file
 * RegionCore: a multi-chip region behind one protocol endpoint.
 *
 * Owns N CloudProviders ("shards"), one ServiceCore each, and a
 * PlacementRouter (cloud/placement.hh) that decides where arrivals
 * land and when fragmentation or imbalance should push a tenant to
 * another chip. Like ServiceCore it is sockets-free and
 * single-threaded: the fuzzer's region family and the unit tests
 * drive it directly, and the threaded server reuses its merge
 * helpers and its snapshot (de)serializer so the wire path and the
 * in-process path compute byte-identical responses.
 *
 * Determinism contract: region state is a pure function of the
 * applied request sequence. Shard s seeds its provider with
 * params.seed + s, so shard 0 of any region equals the single-chip
 * daemon fed the same requests.
 *
 * Cross-shard migration goes through JSON on purpose —
 * migrateOut → snapshotToJson → dump → parse → snapshotFromJson →
 * migrateIn — so every in-process migration also proves the wire
 * serialization round-trips.
 */

#ifndef CASH_SERVICE_REGION_HH
#define CASH_SERVICE_REGION_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/placement.hh"
#include "cloud/provider.hh"
#include "service/core.hh"
#include "service/protocol.hh"

namespace cash::service
{

/** Region-level counters (on top of the router's). */
struct RegionStats
{
    /** Completed cross-shard migrations (explicit + triggered). */
    std::uint64_t migrations = 0;
    /** Migrations planned by the rebalance triggers. */
    std::uint64_t rebalances = 0;
};

// ---------------------------------------------------------------
// Tenant snapshot <-> JSON (the migration wire format).
// ---------------------------------------------------------------

/** Serialize a migration snapshot. `src_seed` travels as a decimal
 *  string: JSON numbers are doubles and seeds use all 64 bits. */
JsonValue snapshotToJson(const cloud::TenantSnapshot &snap);

/** Parse a migration snapshot; nullopt when a field is missing or
 *  out of range. */
std::optional<cloud::TenantSnapshot>
snapshotFromJson(const JsonValue &v);

// ---------------------------------------------------------------
// Partial-response merging. Each helper takes the per-shard partial
// responses **in shard order** (as produced by ServiceCore::apply)
// and builds the region response. Shared between RegionCore and the
// threaded server so both emit identical bytes.
// ---------------------------------------------------------------

/** step: round from shard 0, active summed, ok ANDed. */
JsonValue mergeStepParts(std::uint64_t id,
                         const std::vector<JsonValue> &parts);

/** snapshot: counters summed, qos_delivery recomputed from the
 *  summed SLA tallies, draining ANDed, plus "shards":N. */
JsonValue mergeSnapshotParts(std::uint64_t id,
                             const std::vector<JsonValue> &parts);

/** shards: {"shards":N,"placement":...,"migrations":...,
 *  "rebalances":...,"shard_info":[partials]}. */
JsonValue mergeShardsParts(std::uint64_t id,
                           const std::vector<JsonValue> &parts,
                           const char *placement,
                           const RegionStats &stats);

/** region_snapshot: {"shards":N,"per_shard":[partials],
 *  "routed":[arrivals per shard],...}. */
JsonValue
mergeRegionSnapshotParts(std::uint64_t id,
                         const std::vector<JsonValue> &parts,
                         const std::vector<std::uint64_t> &routed,
                         const RegionStats &stats);

/** drain: bills concatenated in shard order (rows already carry
 *  region ids and a "shard" field), revenue and departed summed,
 *  ok ANDed. */
JsonValue mergeDrainParts(std::uint64_t id,
                          const std::vector<JsonValue> &parts);

/** region_energy: every joule ledger and the energy revenue summed
 *  across shards, plus "per_shard":[partials]. */
JsonValue mergeEnergyParts(std::uint64_t id,
                           const std::vector<JsonValue> &parts);

/**
 * The region engine. One provider + core per shard, router-driven
 * placement, in-process migration. Single-threaded.
 */
class RegionCore
{
  public:
    /**
     * @param params per-shard provider parameters; shard s runs
     *        with seed params.seed + s
     * @param shards shard count, 1..cloud::kMaxShards
     * @param audit_each_quantum audit every shard after every
     *        applied request / stepped quantum
     * @param policy arrival placement policy
     * @param rebalance migration-trigger tunables
     */
    RegionCore(const cloud::ProviderParams &params,
               std::uint32_t shards, bool audit_each_quantum,
               cloud::PlacementPolicy policy =
                   cloud::PlacementPolicy::BinPack,
               const cloud::RebalanceParams &rebalance = {});

    /** Apply one request; always returns a response object. Step
     *  advances every shard and then runs the rebalance triggers. */
    JsonValue apply(const Request &req);

    /** Drain every shard and aggregate the final-bill report. */
    JsonValue drainReport();

    std::uint32_t shards() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    ServiceCore &core(std::uint32_t shard)
    {
        return *cores_[shard];
    }
    const cloud::CloudProvider &provider(std::uint32_t shard) const
    {
        return *providers_[shard];
    }
    const cloud::PlacementRouter &router() const { return router_; }
    const RegionStats &stats() const { return stats_; }
    bool draining() const { return cores_[0]->draining(); }

  private:
    JsonValue applyArrive(const Request &req);
    JsonValue applyMigrate(const Request &req);
    /** Route req to the shard owning req.tenant (unknown_tenant
     *  when the shard index is out of range). */
    JsonValue applyTenantOp(const Request &req);

    /** Apply req on every shard, in shard order. */
    std::vector<JsonValue> collectParts(const Request &req);

    /** Move one tenant; fills `resp` (ok or error). */
    JsonValue migrate(std::uint64_t id, std::uint32_t region_tenant,
                      std::uint32_t target);

    /** Run the migration triggers once (after a step). */
    void maybeRebalance();

    std::vector<cloud::ShardLoad> sampleLoads() const;

    std::vector<std::unique_ptr<cloud::CloudProvider>> providers_;
    std::vector<std::unique_ptr<ServiceCore>> cores_;
    cloud::PlacementRouter router_;
    RegionStats stats_;
};

} // namespace cash::service

#endif // CASH_SERVICE_REGION_HH
