/**
 * @file
 * ServiceCore: the sockets-free heart of the daemon.
 *
 * Applies decoded protocol requests (service/protocol.hh) to one
 * CloudProvider, exactly one request at a time, and produces the
 * response object. The server's simulation thread drives it with
 * dequeued batches; the fuzzer's `--mode service` family and the
 * unit tests drive it directly — same code path, no network.
 *
 * Determinism contract: a ServiceCore's provider state is a pure
 * function of the *sequence* of applied requests (the provider's own
 * seeded arrival stream included). Two daemons fed the same request
 * order compute identical bills; what concurrency changes is only
 * which order concurrent clients' requests win.
 *
 * All provider mutation happens inside apply(), between quanta —
 * Step runs whole quanta and everything else runs at a quantum
 * boundary by construction. With `auditEachQuantum` set (the daemon
 * enables it in CASH_CHECK_INVARIANTS builds), auditProvider() runs
 * after every applied request and after every quantum inside a
 * Step, so a protocol-reachable conservation bug throws
 * InvariantError instead of corrupting bills silently.
 */

#ifndef CASH_SERVICE_CORE_HH
#define CASH_SERVICE_CORE_HH

#include <cstdint>

#include "cloud/placement.hh"
#include "cloud/provider.hh"
#include "service/protocol.hh"

namespace cash::service
{

/** Counters of what the core has applied (single-threaded). */
struct CoreStats
{
    std::uint64_t applied = 0;
    std::uint64_t failed = 0; ///< responses with ok:false
    std::uint64_t quanta = 0; ///< provider rounds stepped
};

class ServiceCore
{
  public:
    /**
     * @param provider the provider to serve (not owned)
     * @param audit_each_quantum run auditProvider() after every
     *        request and stepped quantum
     * @param shard_id this core's shard within its region; tenant
     *        ids on the wire carry it in their top byte (shard 0 —
     *        the single-chip default — leaves ids unchanged)
     */
    ServiceCore(cloud::CloudProvider &provider,
                bool audit_each_quantum,
                cloud::ShardId shard_id = 0);

    /** Apply one request; always returns a response object.
     *  Op::Migrate needs a region engine (RegionCore or the
     *  server's migration chain) and answers bad_request here;
     *  Op::Shards / Op::RegionSnapshot produce this shard's
     *  partial, which region engines merge. */
    JsonValue apply(const Request &req);

    /** Serialize one tenant (shard-local id) off this shard;
     *  audits, like every mutation. nullopt when the tenant is
     *  unknown or not Active. */
    std::optional<cloud::TenantSnapshot>
    migrateOut(std::uint32_t local_id);

    /** Replay a snapshot onto this shard; returns the new
     *  region-scoped tenant id. */
    std::uint32_t migrateIn(const cloud::TenantSnapshot &snap);

    /** Drain the provider (idempotent) and return the final-bill
     *  report the daemon emits on SIGTERM: {"bills":[...],
     *  "revenue":$,"departed":N}. Audits after draining. */
    JsonValue drainReport();

    /** True once a drain op (or drainReport) closed admissions. */
    bool draining() const { return provider_.draining(); }

    const CoreStats &stats() const { return stats_; }
    const cloud::CloudProvider &provider() const
    {
        return provider_;
    }
    cloud::ShardId shardId() const { return shardId_; }

    /** This shard's occupancy, for the placement router. */
    cloud::ShardLoad load() const
    {
        return cloud::loadOf(provider_);
    }

  private:
    JsonValue applyArrive(const Request &req);
    JsonValue applyDepart(const Request &req);
    JsonValue applyQuery(const Request &req);
    JsonValue applyStep(const Request &req);
    JsonValue applySnapshot(const Request &req);
    JsonValue applyShardInfo(const Request &req);
    JsonValue applyEnergy(const Request &req);

    /** Map a region tenant id onto this shard; sets *resp to an
     *  unknown_tenant error and returns false when it lives
     *  elsewhere. */
    bool localId(const Request &req, std::uint32_t &local,
                 JsonValue *resp) const;

    void maybeAudit();

    cloud::CloudProvider &provider_;
    bool audit_;
    cloud::ShardId shardId_;
    CoreStats stats_;
};

} // namespace cash::service

#endif // CASH_SERVICE_CORE_HH
