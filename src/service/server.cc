#include "service/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>

#include "common/log.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace cash::service
{

namespace
{

/** Milliseconds between two steady_clock points. */
int
msBetween(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(to
                                                              - from)
            .count());
}

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Host-clock microseconds on the installed session's epoch, or
 *  -1 when no session is recording (span emission is skipped). */
double
traceNowUs()
{
#if CASH_TRACE_ENABLED
    if (trace::TraceSession *s = trace::TraceSession::active())
        return s->hostNowUs();
#endif
    return -1.0;
}

void
traceServiceSpan(const char *name, double t0_us,
                 std::initializer_list<trace::Arg> args)
{
#if CASH_TRACE_ENABLED
    if (t0_us < 0.0)
        return;
    double t1 = traceNowUs();
    if (t1 < 0.0)
        return;
    trace::emitHostSpan(trace::Category::Service, name, t0_us,
                        t1 - t0_us, args);
#else
    (void)name;
    (void)t0_us;
    (void)args;
#endif
}

constexpr int kFlushGraceMs = 2000;

} // namespace

ServiceServer::ServiceServer(cloud::CloudProvider &provider,
                             const ServerConfig &config)
    : provider_(provider),
      config_(config),
      core_(provider, config.audit),
      queue_(config.queueCapacity)
{}

ServiceServer::~ServiceServer()
{
    if (started_.load() && !stopped_.load())
        stop();
    for (int fd : listenFds_)
        if (fd >= 0)
            ::close(fd);
    if (wakeFd_[0] >= 0)
        ::close(wakeFd_[0]);
    if (wakeFd_[1] >= 0)
        ::close(wakeFd_[1]);
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
}

void
ServiceServer::start()
{
    if (started_.exchange(true))
        panic("ServiceServer::start() called twice");

    if (::pipe(wakeFd_) != 0)
        fatal("cannot create wake pipe: %s", std::strerror(errno));
    setNonBlocking(wakeFd_[0]);
    setNonBlocking(wakeFd_[1]);

    if (config_.unixPath.empty() && !config_.listenTcp)
        fatal("service: no listener configured (need a Unix path "
              "and/or TCP)");

    if (!config_.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (config_.unixPath.size() >= sizeof(addr.sun_path))
            fatal("unix socket path too long: %s",
                  config_.unixPath.c_str());
        std::strncpy(addr.sun_path, config_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("socket(AF_UNIX): %s", std::strerror(errno));
        ::unlink(config_.unixPath.c_str()); // stale socket file
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr))
                != 0
            || ::listen(fd, 64) != 0)
            fatal("cannot listen on unix:%s: %s",
                  config_.unixPath.c_str(), std::strerror(errno));
        setNonBlocking(fd);
        unixListenFd_ = fd;
        listenFds_.push_back(fd);
    }

    if (config_.listenTcp) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("socket(AF_INET): %s", std::strerror(errno));
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(config_.tcpPort);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr))
                != 0
            || ::listen(fd, 64) != 0)
            fatal("cannot listen on tcp:%u: %s", config_.tcpPort,
                  std::strerror(errno));
        socklen_t len = sizeof(addr);
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        boundTcpPort_ = ntohs(addr.sin_port);
        setNonBlocking(fd);
        listenFds_.push_back(fd);
    }

    ioThread_ = std::thread([this] { ioLoop(); });
    simThread_ = std::thread([this] { simLoop(); });
}

void
ServiceServer::wake()
{
    char c = 'w';
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wakeFd_[1], &c, 1);
}

void
ServiceServer::wakeFromSignal()
{
    wake(); // one write(2): async-signal-safe
}

void
ServiceServer::stop()
{
    std::lock_guard<std::mutex> lock(stopMutex_);
    if (!started_.load() || stopped_.load())
        return;
    stopRequested_.store(true);
    wake();
    ioThread_.join();
    simThread_.join();
    stopped_.store(true);
}

// ---------------------------------------------------------------
// IO thread.
// ---------------------------------------------------------------

void
ServiceServer::acceptPending(int listen_fd)
{
    while (true) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            warn("service: accept failed: %s",
                 std::strerror(errno));
            return;
        }
        setNonBlocking(fd);
        int one = 1;
        // Request/response framing: latency beats Nagle batching.
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        auto conn = std::make_unique<Connection>(config_.maxFrame);
        conn->fd = fd;
        conn->id = nextConnId_++;
        conn->lastActivity = Clock::now();
        stats_.accepted.fetch_add(1, std::memory_order_relaxed);
        CASH_METRIC_INC("service.accepted");
        CASH_TRACE_HOST_SPAN(trace::Category::Service, "accept",
                             traceNowUs(), 0.0,
                             {{"conn", conn->id}});
        conns_.emplace(conn->id, std::move(conn));
    }
}

void
ServiceServer::respondNow(Connection &conn, const JsonValue &resp)
{
    conn.outbox += encodeFrame(resp.dump());
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
}

void
ServiceServer::handleFrame(Connection &conn,
                           const std::string &payload)
{
    double t0 = traceNowUs();
    std::string parse_err;
    std::optional<JsonValue> doc = parseJson(payload, &parse_err);
    if (!doc) {
        // Undecodable JSON inside an intact frame: the stream
        // framing is still sound, but the client is broken enough
        // that continuing only produces more garbage.
        stats_.protocolErrors.fetch_add(1,
                                        std::memory_order_relaxed);
        CASH_METRIC_INC("service.protocol_errors");
        respondNow(conn,
                   errorResponse(0, errors::Malformed, parse_err));
        conn.readClosed = true;
        conn.closeAfterFlush = true;
        return;
    }
    std::string code, detail;
    std::uint64_t id = 0;
    std::optional<Request> req =
        parseRequest(*doc, &code, &detail, &id);
    if (!req) {
        // A well-formed frame with a bad request keeps the
        // connection: the client can correct itself.
        stats_.protocolErrors.fetch_add(1,
                                        std::memory_order_relaxed);
        CASH_METRIC_INC("service.protocol_errors");
        respondNow(conn,
                   errorResponse(id, code.c_str(), detail));
        return;
    }
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    CASH_METRIC_INC("service.requests");
    if (stopRequested_.load(std::memory_order_relaxed)) {
        respondNow(conn,
                   errorResponse(req->id, errors::Draining,
                                 "server is shutting down"));
        return;
    }
    QueuedRequest qr;
    qr.connId = conn.id;
    qr.request = *req;
    qr.enqueued = Clock::now();
    if (!queue_.tryPush(std::move(qr))) {
        stats_.queueFull.fetch_add(1, std::memory_order_relaxed);
        CASH_METRIC_INC("service.queue_full");
        respondNow(conn,
                   errorResponse(req->id, errors::QueueFull,
                                 "request queue is full; retry"));
        return;
    }
    ++conn.inFlight;
    traceServiceSpan("enqueue", t0,
                     {{"conn", conn.id}, {"req", req->id}});
}

bool
ServiceServer::serviceRead(Connection &conn)
{
    char buf[4096];
    while (true) {
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.lastActivity = Clock::now();
            conn.decoder.feed(buf, static_cast<std::size_t>(n));
            while (auto payload = conn.decoder.next())
                handleFrame(conn, *payload);
            if (const char *err = conn.decoder.error()) {
                stats_.protocolErrors.fetch_add(
                    1, std::memory_order_relaxed);
                CASH_METRIC_INC("service.protocol_errors");
                respondNow(conn,
                           errorResponse(0, err,
                                         "frame stream poisoned; "
                                         "closing"));
                conn.readClosed = true;
                conn.closeAfterFlush = true;
            }
            if (conn.readClosed)
                return true;
            if (static_cast<std::size_t>(n) < sizeof(buf))
                return true;
            continue;
        }
        if (n == 0) {
            // Orderly half-close: the client sent everything and
            // now reads; flush pending responses, then close.
            conn.readClosed = true;
            conn.closeAfterFlush = true;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false; // reset/broken: drop the connection
    }
}

bool
ServiceServer::serviceWrite(Connection &conn)
{
    while (conn.outOff < conn.outbox.size()) {
        ssize_t n = ::send(conn.fd, conn.outbox.data() + conn.outOff,
                           conn.outbox.size() - conn.outOff,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.outOff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    if (conn.outOff == conn.outbox.size()) {
        conn.outbox.clear();
        conn.outOff = 0;
    }
    return true;
}

void
ServiceServer::closeConnection(std::uint64_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    ::close(it->second->fd);
    conns_.erase(it);
    stats_.closed.fetch_add(1, std::memory_order_relaxed);
}

void
ServiceServer::collectOutgoing()
{
    std::vector<Outgoing> batch;
    {
        std::lock_guard<std::mutex> lock(outgoingMutex_);
        batch.swap(outgoing_);
    }
    for (Outgoing &out : batch) {
        auto it = conns_.find(out.connId);
        if (it == conns_.end())
            continue; // client left before its answer was ready
        it->second->outbox += out.framed;
        if (it->second->inFlight > 0)
            --it->second->inFlight;
        stats_.responses.fetch_add(1, std::memory_order_relaxed);
    }
}

void
ServiceServer::ioLoop()
{
    bool stop_begun = false;
    bool flushing = false;
    Clock::time_point flush_deadline{};

    while (true) {
        if (stopRequested_.load(std::memory_order_relaxed)
            && !stop_begun) {
            stop_begun = true;
            for (int fd : listenFds_)
                if (fd >= 0)
                    ::close(fd);
            listenFds_.clear();
            unixListenFd_ = -1;
            // No more reads: everything already decoded has been
            // enqueued, so closing the queue hands the simulation
            // thread its final batch.
            for (auto &kv : conns_)
                kv.second->readClosed = true;
            queue_.close();
        }

        collectOutgoing();

        if (simDone_.load(std::memory_order_acquire)
            && !flushing) {
            flushing = true;
            flush_deadline = Clock::now()
                + std::chrono::milliseconds(kFlushGraceMs);
        }

        if (flushing) {
            bool all_flushed = true;
            std::vector<std::uint64_t> dead;
            for (auto &kv : conns_) {
                Connection &conn = *kv.second;
                if (!serviceWrite(conn)) {
                    dead.push_back(conn.id);
                    continue;
                }
                if (conn.outOff < conn.outbox.size())
                    all_flushed = false;
            }
            for (std::uint64_t id : dead)
                closeConnection(id);
            if (all_flushed || Clock::now() >= flush_deadline) {
                std::vector<std::uint64_t> ids;
                for (auto &kv : conns_)
                    ids.push_back(kv.first);
                for (std::uint64_t id : ids)
                    closeConnection(id);
                return;
            }
        }

        // --- Build the poll set.
        std::vector<pollfd> fds;
        std::vector<std::uint64_t> owner; // 0 = wake/listener
        fds.push_back({wakeFd_[0], POLLIN, 0});
        owner.push_back(0);
        for (int fd : listenFds_) {
            fds.push_back({fd, POLLIN, 0});
            owner.push_back(0);
        }
        for (auto &kv : conns_) {
            Connection &conn = *kv.second;
            short events = 0;
            if (!conn.readClosed)
                events |= POLLIN;
            if (conn.outOff < conn.outbox.size())
                events |= POLLOUT;
            if (events == 0 && conn.closeAfterFlush) {
                // Outbox empty and nothing more to read — but a
                // half-closed client may still be owed responses to
                // requests sitting in the sim queue. Hold the
                // connection (off the poll set; the sim thread's
                // wake pipe fires when the responses publish).
                if (conn.inFlight == 0)
                    closeConnection(conn.id);
                continue;
            }
            if (events == 0)
                events = POLLIN; // detect resets on idle conns
            fds.push_back({conn.fd, events, 0});
            owner.push_back(conn.id);
        }

        int timeout = -1;
        if (flushing || stop_begun) {
            timeout = 50;
        } else if (config_.idleTimeoutMs > 0) {
            Clock::time_point now = Clock::now();
            timeout = config_.idleTimeoutMs;
            for (auto &kv : conns_) {
                int left = config_.idleTimeoutMs
                    - msBetween(kv.second->lastActivity, now);
                timeout = std::max(0, std::min(timeout, left));
            }
        }

        int rc = ::poll(fds.data(),
                        static_cast<nfds_t>(fds.size()), timeout);
        if (rc < 0 && errno != EINTR) {
            warn("service: poll failed: %s", std::strerror(errno));
            return;
        }

        // --- Wake pipe.
        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(wakeFd_[0], buf, sizeof(buf)) > 0) {
            }
        }

        // --- Listeners.
        std::size_t idx = 1;
        std::size_t num_listeners = listenFds_.size();
        for (std::size_t i = 0; i < num_listeners; ++i, ++idx)
            if (fds[idx].revents & POLLIN)
                acceptPending(fds[idx].fd);

        // --- Connections.
        std::vector<std::uint64_t> dead;
        for (; idx < fds.size(); ++idx) {
            std::uint64_t id = owner[idx];
            auto it = conns_.find(id);
            if (it == conns_.end())
                continue;
            Connection &conn = *it->second;
            if (fds[idx].revents & (POLLERR | POLLNVAL)) {
                dead.push_back(id);
                continue;
            }
            if ((fds[idx].revents & POLLIN) && !conn.readClosed) {
                if (!serviceRead(conn)) {
                    dead.push_back(id);
                    continue;
                }
            }
            if ((fds[idx].revents & POLLHUP) && conn.readClosed
                && conn.outOff >= conn.outbox.size()) {
                dead.push_back(id);
                continue;
            }
            if (conn.outOff < conn.outbox.size()) {
                if (!serviceWrite(conn)) {
                    dead.push_back(id);
                    continue;
                }
            }
            if (conn.closeAfterFlush && conn.inFlight == 0
                && conn.outOff >= conn.outbox.size())
                dead.push_back(id);
        }
        for (std::uint64_t id : dead)
            closeConnection(id);

        // --- Idle reaping.
        if (config_.idleTimeoutMs > 0 && !stop_begun) {
            Clock::time_point now = Clock::now();
            std::vector<std::uint64_t> idle;
            for (auto &kv : conns_)
                if (msBetween(kv.second->lastActivity, now)
                    >= config_.idleTimeoutMs)
                    idle.push_back(kv.first);
            for (std::uint64_t id : idle) {
                stats_.idleClosed.fetch_add(
                    1, std::memory_order_relaxed);
                CASH_METRIC_INC("service.idle_closed");
                closeConnection(id);
            }
        }
    }
}

// ---------------------------------------------------------------
// Simulation thread.
// ---------------------------------------------------------------

void
ServiceServer::simLoop()
{
    std::vector<QueuedRequest> batch;
    std::vector<Outgoing> replies;
    while (queue_.popBatch(batch, config_.maxBatch)) {
        stats_.batches.fetch_add(1, std::memory_order_relaxed);
        CASH_METRIC_SAMPLE("service.batch_size",
                           static_cast<double>(batch.size()));
        double batch_t0 = traceNowUs();
        replies.clear();
        Clock::time_point now = Clock::now();
        for (QueuedRequest &qr : batch) {
            JsonValue resp;
            if (config_.requestDeadlineMs > 0
                && msBetween(qr.enqueued, now)
                    > config_.requestDeadlineMs) {
                stats_.deadlineExceeded.fetch_add(
                    1, std::memory_order_relaxed);
                CASH_METRIC_INC("service.deadline_exceeded");
                resp = errorResponse(qr.request.id,
                                     errors::DeadlineExceeded,
                                     "queued past the request "
                                     "deadline");
            } else {
                double t0 = traceNowUs();
                resp = core_.apply(qr.request);
                traceServiceSpan(opName(qr.request.op), t0,
                                 {{"conn", qr.connId},
                                  {"req", qr.request.id}});
            }
            replies.push_back(
                {qr.connId, encodeFrame(resp.dump())});
        }
        traceServiceSpan("batch", batch_t0,
                         {{"requests", batch.size()}});
        {
            std::lock_guard<std::mutex> lock(outgoingMutex_);
            for (Outgoing &r : replies)
                outgoing_.push_back(std::move(r));
        }
        wake();
    }

    // Queue closed and drained: the SIGTERM path. Finish with the
    // provider drain — final bills, conservation audit — and hand
    // the report to stop()'s caller.
    finalReport_ = core_.drainReport();
    simDone_.store(true, std::memory_order_release);
    wake();
}

} // namespace cash::service
