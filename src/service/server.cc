#include "service/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>

#include "cloud/tenant.hh"
#include "common/log.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace cash::service
{

namespace
{

/** Milliseconds between two steady_clock points. */
int
msBetween(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(to
                                                              - from)
            .count());
}

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Host-clock microseconds on the installed session's epoch, or
 *  -1 when no session is recording (span emission is skipped). */
double
traceNowUs()
{
#if CASH_TRACE_ENABLED
    if (trace::TraceSession *s = trace::TraceSession::active())
        return s->hostNowUs();
#endif
    return -1.0;
}

void
traceServiceSpan(const char *name, double t0_us,
                 std::initializer_list<trace::Arg> args)
{
#if CASH_TRACE_ENABLED
    if (t0_us < 0.0)
        return;
    double t1 = traceNowUs();
    if (t1 < 0.0)
        return;
    trace::emitHostSpan(trace::Category::Service, name, t0_us,
                        t1 - t0_us, args);
#else
    (void)name;
    (void)t0_us;
    (void)args;
#endif
}

constexpr int kFlushGraceMs = 2000;

/** epoll tag layout: 0 = wake eventfd, 1..kConnTagBase-1 =
 *  listener index + 1, >= kConnTagBase = connection id +
 *  kConnTagBase. */
constexpr std::uint64_t kConnTagBase = 8;

} // namespace

ServiceServer::ServiceServer(const cloud::ProviderParams &params,
                             const ServerConfig &config)
    : config_(config),
      router_(config.shards, config.placement, config.rebalance)
{
    if (config_.ioThreads == 0)
        config_.ioThreads = 1;
    for (std::uint32_t s = 0; s < config_.shards; ++s) {
        cloud::ProviderParams p = params;
        p.seed = params.seed + s;
        Shard sh;
        sh.provider = std::make_unique<cloud::CloudProvider>(p);
        sh.core = std::make_unique<ServiceCore>(*sh.provider,
                                                config_.audit, s);
        sh.queue = std::make_unique<BoundedQueue<SimTask>>(
            config_.queueCapacity);
        shards_.push_back(std::move(sh));
    }
    for (const cloud::TenantClass &cls :
         shards_[0].provider->params().catalog)
        entryCfgs_.push_back(cls.minCfg);
    for (const Shard &sh : shards_)
        loadBoard_.push_back(sh.core->load());
}

ServiceServer::~ServiceServer()
{
    if (started_.load() && !stopped_.load())
        stop();
    for (int fd : listenFds_)
        if (fd >= 0)
            ::close(fd);
    for (auto &io : ioThreads_) {
        if (io->wakeFd >= 0)
            ::close(io->wakeFd);
        if (io->epollFd >= 0)
            ::close(io->epollFd);
    }
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
}

void
ServiceServer::start()
{
    if (started_.exchange(true))
        panic("ServiceServer::start() called twice");

    if (config_.unixPath.empty() && !config_.listenTcp)
        fatal("service: no listener configured (need a Unix path "
              "and/or TCP)");

    if (!config_.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (config_.unixPath.size() >= sizeof(addr.sun_path))
            fatal("unix socket path too long: %s",
                  config_.unixPath.c_str());
        std::strncpy(addr.sun_path, config_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("socket(AF_UNIX): %s", std::strerror(errno));
        ::unlink(config_.unixPath.c_str()); // stale socket file
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr))
                != 0
            || ::listen(fd, 64) != 0)
            fatal("cannot listen on unix:%s: %s",
                  config_.unixPath.c_str(), std::strerror(errno));
        setNonBlocking(fd);
        listenFds_.push_back(fd);
    }

    if (config_.listenTcp) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("socket(AF_INET): %s", std::strerror(errno));
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(config_.tcpPort);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr))
                != 0
            || ::listen(fd, 64) != 0)
            fatal("cannot listen on tcp:%u: %s", config_.tcpPort,
                  std::strerror(errno));
        socklen_t len = sizeof(addr);
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        boundTcpPort_ = ntohs(addr.sin_port);
        setNonBlocking(fd);
        listenFds_.push_back(fd);
    }

    for (std::uint32_t ti = 0; ti < config_.ioThreads; ++ti) {
        auto io = std::make_unique<IoThread>();
        io->epollFd = ::epoll_create1(0);
        if (io->epollFd < 0)
            fatal("epoll_create1: %s", std::strerror(errno));
        io->wakeFd = ::eventfd(0, EFD_NONBLOCK);
        if (io->wakeFd < 0)
            fatal("eventfd: %s", std::strerror(errno));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = 0;
        if (::epoll_ctl(io->epollFd, EPOLL_CTL_ADD, io->wakeFd,
                        &ev)
            != 0)
            fatal("epoll_ctl(wake): %s", std::strerror(errno));
        ioThreads_.push_back(std::move(io));
    }
    // Thread 0 owns the listeners.
    for (std::size_t i = 0; i < listenFds_.size(); ++i) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = 1 + i;
        if (::epoll_ctl(ioThreads_[0]->epollFd, EPOLL_CTL_ADD,
                        listenFds_[i], &ev)
            != 0)
            fatal("epoll_ctl(listener): %s", std::strerror(errno));
    }

    for (std::uint32_t s = 0; s < shardCount(); ++s)
        shards_[s].thread =
            std::thread([this, s] { simLoop(s); });
    for (std::uint32_t ti = 0; ti < config_.ioThreads; ++ti)
        ioThreads_[ti]->thread =
            std::thread([this, ti] { ioLoop(ti); });
}

void
ServiceServer::wake(std::uint32_t ti)
{
    std::uint64_t one = 1;
    // Best-effort: a saturated counter already guarantees a
    // pending wakeup.
    [[maybe_unused]] ssize_t n =
        ::write(ioThreads_[ti]->wakeFd, &one, sizeof(one));
}

void
ServiceServer::wakeAll()
{
    for (std::uint32_t ti = 0; ti < ioThreads_.size(); ++ti)
        wake(ti);
}

void
ServiceServer::wakeFromSignal()
{
    if (!started_.load(std::memory_order_relaxed))
        return;
    wakeAll(); // write(2)s only: async-signal-safe
}

void
ServiceServer::stop()
{
    std::lock_guard<std::mutex> lock(stopMutex_);
    if (!started_.load() || stopped_.load())
        return;

    // Phase 1: stop admissions. IO threads close the listeners,
    // stop reading, and signal quiescence; after that no external
    // task can enter a queue.
    stopRequested_.store(true);
    wakeAll();
    while (ioQuiesced_.load(std::memory_order_acquire)
           < ioThreads_.size())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (Shard &sh : shards_)
        sh.queue->closeExternal();

    // Phase 2: let in-flight work — migration chains included —
    // drain to zero, then close the queues for real.
    while (pendingTasks_.load(std::memory_order_acquire) > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (Shard &sh : shards_)
        sh.queue->close();

    // Phase 3: every sim thread drains its provider (final bills,
    // conservation audit) and exits; aggregate the shard reports
    // into the region report.
    for (Shard &sh : shards_)
        sh.thread.join();
    std::vector<JsonValue> parts;
    parts.reserve(shards_.size());
    for (Shard &sh : shards_)
        parts.push_back(sh.drainPartial);
    finalReport_ = mergeDrainParts(0, parts);

    // Phase 4: IO threads flush the outboxes and exit.
    simDone_.store(true, std::memory_order_release);
    wakeAll();
    for (auto &io : ioThreads_)
        io->thread.join();
    stopped_.store(true);
}

// ---------------------------------------------------------------
// IO threads.
// ---------------------------------------------------------------

void
ServiceServer::updateInterest(IoThread &io, Connection &conn)
{
    std::uint32_t mask = 0;
    if (!conn.readClosed)
        mask |= EPOLLIN;
    if (conn.outOff < conn.outbox.size())
        mask |= EPOLLOUT;
    if (mask == conn.epollMask && conn.registered == (mask != 0))
        return;
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = kConnTagBase + conn.id;
    if (mask == 0) {
        // A fully quiet connection (half-closed, outbox empty,
        // responses still owed) comes off the interest set: with
        // level-triggered epoll its EPOLLHUP would otherwise spin
        // the loop. The mailbox wake fires when a response lands.
        if (conn.registered)
            ::epoll_ctl(io.epollFd, EPOLL_CTL_DEL, conn.fd,
                        nullptr);
        conn.registered = false;
    } else if (!conn.registered) {
        ::epoll_ctl(io.epollFd, EPOLL_CTL_ADD, conn.fd, &ev);
        conn.registered = true;
    } else if (mask != conn.epollMask) {
        ::epoll_ctl(io.epollFd, EPOLL_CTL_MOD, conn.fd, &ev);
    }
    conn.epollMask = mask;
}

void
ServiceServer::acceptPending(int listen_fd)
{
    while (true) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            warn("service: accept failed: %s",
                 std::strerror(errno));
            return;
        }
        setNonBlocking(fd);
        int one = 1;
        // Request/response framing: latency beats Nagle batching.
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        auto conn = std::make_unique<Connection>(config_.maxFrame);
        conn->fd = fd;
        conn->id = nextConnId_.fetch_add(1);
        conn->lastActivity = Clock::now();
        stats_.accepted.fetch_add(1, std::memory_order_relaxed);
        CASH_METRIC_INC("service.accepted");
        CASH_TRACE_HOST_SPAN(trace::Category::Service, "accept",
                             traceNowUs(), 0.0,
                             {{"conn", conn->id}});
        std::uint32_t owner =
            static_cast<std::uint32_t>(conn->id % ioThreads_.size());
        if (owner == 0) {
            Connection &c = *conn;
            ioThreads_[0]->conns.emplace(c.id, std::move(conn));
            updateInterest(*ioThreads_[0], c);
        } else {
            IoThread &target = *ioThreads_[owner];
            {
                std::lock_guard<std::mutex> lock(
                    target.mailboxMutex);
                target.pendingConns.push_back(std::move(conn));
            }
            wake(owner);
        }
    }
}

void
ServiceServer::respondNow(Connection &conn, const JsonValue &resp)
{
    conn.outbox += encodeFrame(resp.dump());
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
}

std::vector<cloud::ShardLoad>
ServiceServer::copyLoads()
{
    std::lock_guard<std::mutex> lock(loadMutex_);
    return loadBoard_;
}

void
ServiceServer::enqueueSingle(IoThread &io, Connection &conn,
                             const Request &req,
                             std::uint32_t shard)
{
    (void)io;
    double t0 = traceNowUs();
    SimTask task;
    task.kind = SimTask::Kind::Single;
    task.connId = conn.id;
    task.request = req;
    task.enqueued = Clock::now();
    pendingTasks_.fetch_add(1, std::memory_order_acq_rel);
    if (!shards_[shard].queue->tryPush(std::move(task))) {
        pendingTasks_.fetch_sub(1, std::memory_order_acq_rel);
        stats_.queueFull.fetch_add(1, std::memory_order_relaxed);
        CASH_METRIC_INC("service.queue_full");
        respondNow(conn,
                   errorResponse(req.id, errors::QueueFull,
                                 "request queue is full; retry"));
        return;
    }
    ++conn.inFlight;
    traceServiceSpan("enqueue", t0,
                     {{"conn", conn.id},
                      {"req", req.id},
                      {"shard", shard}});
}

void
ServiceServer::enqueueFanout(IoThread &io, Connection &conn,
                             const Request &req)
{
    (void)io;
    double t0 = traceNowUs();
    std::uint32_t n = shardCount();
    auto fan = std::make_shared<Fanout>();
    fan->connId = conn.id;
    fan->reqId = req.id;
    fan->op = req.op;
    fan->remaining.store(n, std::memory_order_relaxed);
    fan->parts.resize(n);

    ++conn.inFlight;
    bool finalize_here = false;
    Clock::time_point now = Clock::now();
    for (std::uint32_t s = 0; s < n; ++s) {
        SimTask task;
        task.kind = SimTask::Kind::FanPart;
        task.connId = conn.id;
        task.request = req;
        task.enqueued = now;
        task.fanout = fan;
        pendingTasks_.fetch_add(1, std::memory_order_acq_rel);
        if (shards_[s].queue->tryPush(std::move(task)))
            continue;
        pendingTasks_.fetch_sub(1, std::memory_order_acq_rel);
        fan->failCode.store(errors::QueueFull,
                            std::memory_order_relaxed);
        if (fan->remaining.fetch_sub(1, std::memory_order_acq_rel)
            == 1)
            finalize_here = true;
    }
    if (finalize_here) {
        // Every shard refused the part (or the last refusal raced
        // the other shards' completions): respond in place.
        --conn.inFlight;
        respondNow(conn, finalizeFanout(*fan));
    }
    traceServiceSpan("fanout", t0,
                     {{"conn", conn.id},
                      {"req", req.id},
                      {"shards", n}});
}

void
ServiceServer::routeRequest(IoThread &io, Connection &conn,
                            const Request &req)
{
    switch (req.op) {
      case Op::Ping:
        enqueueSingle(io, conn, req, 0);
        return;
      case Op::Arrive: {
        // Invalid classes go to shard 0 for the canonical error.
        std::uint32_t shard = 0;
        if (req.cls < entryCfgs_.size()) {
            std::vector<cloud::ShardLoad> loads = copyLoads();
            std::lock_guard<std::mutex> lock(routerMutex_);
            shard = router_.chooseShard(entryCfgs_[req.cls], loads);
        }
        enqueueSingle(io, conn, req, shard);
        return;
      }
      case Op::Depart:
      case Op::Query: {
        cloud::ShardId shard = cloud::tenantShard(req.tenant);
        if (shard >= shardCount()) {
            respondNow(conn,
                       errorResponse(
                           req.id, errors::UnknownTenant,
                           strfmt("tenant %u names shard %u of a "
                                  "%u-shard region",
                                  req.tenant, shard,
                                  shardCount())));
            return;
        }
        enqueueSingle(io, conn, req, shard);
        return;
      }
      case Op::Migrate: {
        if (shardCount() < 2) {
            respondNow(conn,
                       errorResponse(req.id, errors::BadRequest,
                                     "region has a single shard"));
            return;
        }
        cloud::ShardId from = cloud::tenantShard(req.tenant);
        if (from >= shardCount()) {
            respondNow(conn,
                       errorResponse(
                           req.id, errors::UnknownTenant,
                           strfmt("tenant %u names shard %u of a "
                                  "%u-shard region",
                                  req.tenant, from, shardCount())));
            return;
        }
        std::uint32_t target = req.to;
        if (target == Request::kAutoShard) {
            // Router's choice: the emptiest other shard.
            std::vector<cloud::ShardLoad> loads = copyLoads();
            target = from == 0 ? 1 : 0;
            for (cloud::ShardId s = 0; s < shardCount(); ++s)
                if (s != from
                    && loads[s].freeSlices
                        > loads[target].freeSlices)
                    target = s;
        } else if (target >= shardCount()) {
            respondNow(
                conn,
                errorResponse(
                    req.id, errors::BadRequest,
                    strfmt("target shard %u out of range (region "
                           "has %u)",
                           target, shardCount())));
            return;
        } else if (target == from) {
            respondNow(conn,
                       errorResponse(
                           req.id, errors::BadRequest,
                           strfmt("tenant %u is already on shard "
                                  "%u",
                                  req.tenant, target)));
            return;
        }
        Request resolved = req;
        resolved.to = target;
        enqueueSingle(io, conn, resolved, from);
        return;
      }
      case Op::Step:
      case Op::Snapshot:
      case Op::Drain:
      case Op::Shards:
      case Op::RegionSnapshot:
      case Op::RegionEnergy:
        enqueueFanout(io, conn, req);
        return;
    }
}

void
ServiceServer::handleFrame(IoThread &io, Connection &conn,
                           const std::string &payload)
{
    std::string parse_err;
    std::optional<JsonValue> doc = parseJson(payload, &parse_err);
    if (!doc) {
        // Undecodable JSON inside an intact frame: the stream
        // framing is still sound, but the client is broken enough
        // that continuing only produces more garbage.
        stats_.protocolErrors.fetch_add(1,
                                        std::memory_order_relaxed);
        CASH_METRIC_INC("service.protocol_errors");
        respondNow(conn,
                   errorResponse(0, errors::Malformed, parse_err));
        conn.readClosed = true;
        conn.closeAfterFlush = true;
        return;
    }
    std::string code, detail;
    std::uint64_t id = 0;
    std::optional<Request> req =
        parseRequest(*doc, &code, &detail, &id);
    if (!req) {
        // A well-formed frame with a bad request keeps the
        // connection: the client can correct itself.
        stats_.protocolErrors.fetch_add(1,
                                        std::memory_order_relaxed);
        CASH_METRIC_INC("service.protocol_errors");
        respondNow(conn, errorResponse(id, code.c_str(), detail));
        return;
    }
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    CASH_METRIC_INC("service.requests");
    if (stopRequested_.load(std::memory_order_relaxed)) {
        respondNow(conn,
                   errorResponse(req->id, errors::Draining,
                                 "server is shutting down"));
        return;
    }
    routeRequest(io, conn, *req);
}

bool
ServiceServer::serviceRead(IoThread &io, Connection &conn)
{
    char buf[4096];
    while (true) {
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.lastActivity = Clock::now();
            conn.decoder.feed(buf, static_cast<std::size_t>(n));
            while (auto payload = conn.decoder.next())
                handleFrame(io, conn, *payload);
            if (const char *err = conn.decoder.error()) {
                stats_.protocolErrors.fetch_add(
                    1, std::memory_order_relaxed);
                CASH_METRIC_INC("service.protocol_errors");
                respondNow(conn,
                           errorResponse(0, err,
                                         "frame stream poisoned; "
                                         "closing"));
                conn.readClosed = true;
                conn.closeAfterFlush = true;
            }
            if (conn.readClosed)
                return true;
            if (static_cast<std::size_t>(n) < sizeof(buf))
                return true;
            continue;
        }
        if (n == 0) {
            // Orderly half-close: the client sent everything and
            // now reads; flush pending responses, then close.
            conn.readClosed = true;
            conn.closeAfterFlush = true;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false; // reset/broken: drop the connection
    }
}

bool
ServiceServer::serviceWrite(Connection &conn)
{
    while (conn.outOff < conn.outbox.size()) {
        ssize_t n = ::send(conn.fd, conn.outbox.data() + conn.outOff,
                           conn.outbox.size() - conn.outOff,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.outOff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    if (conn.outOff == conn.outbox.size()) {
        conn.outbox.clear();
        conn.outOff = 0;
    }
    return true;
}

void
ServiceServer::closeConnection(IoThread &io, std::uint64_t conn_id)
{
    auto it = io.conns.find(conn_id);
    if (it == io.conns.end())
        return;
    ::close(it->second->fd); // closing deregisters from epoll
    io.conns.erase(it);
    stats_.closed.fetch_add(1, std::memory_order_relaxed);
}

void
ServiceServer::collectMailbox(IoThread &io)
{
    std::vector<std::unique_ptr<Connection>> fresh;
    std::vector<Outgoing> outs;
    {
        std::lock_guard<std::mutex> lock(io.mailboxMutex);
        fresh.swap(io.pendingConns);
        outs.swap(io.outgoing);
    }
    for (auto &conn : fresh) {
        if (stopRequested_.load(std::memory_order_relaxed))
            conn->readClosed = true;
        Connection &c = *conn;
        io.conns.emplace(c.id, std::move(conn));
        updateInterest(io, c);
    }
    for (Outgoing &out : outs) {
        auto it = io.conns.find(out.connId);
        if (it == io.conns.end())
            continue; // client left before its answer was ready
        it->second->outbox += out.framed;
        if (it->second->inFlight > 0)
            --it->second->inFlight;
        stats_.responses.fetch_add(1, std::memory_order_relaxed);
    }
}

void
ServiceServer::ioLoop(std::uint32_t ti)
{
    IoThread &io = *ioThreads_[ti];
    bool stop_begun = false;
    bool flushing = false;
    Clock::time_point flush_deadline{};
    std::vector<epoll_event> events(128);

    while (true) {
        if (stopRequested_.load(std::memory_order_relaxed)
            && !stop_begun) {
            stop_begun = true;
            if (ti == 0) {
                for (int fd : listenFds_)
                    if (fd >= 0)
                        ::close(fd);
                listenFds_.clear();
            }
            // No more reads: everything already decoded has been
            // routed; quiescence tells stop() the queues can be
            // half-closed.
            for (auto &kv : io.conns)
                kv.second->readClosed = true;
            ioQuiesced_.fetch_add(1, std::memory_order_release);
        }

        collectMailbox(io);

        if (simDone_.load(std::memory_order_acquire)
            && !flushing) {
            flushing = true;
            flush_deadline = Clock::now()
                + std::chrono::milliseconds(kFlushGraceMs);
        }

        if (flushing) {
            bool all_flushed = true;
            std::vector<std::uint64_t> dead;
            for (auto &kv : io.conns) {
                Connection &conn = *kv.second;
                if (!serviceWrite(conn)) {
                    dead.push_back(conn.id);
                    continue;
                }
                if (conn.outOff < conn.outbox.size())
                    all_flushed = false;
            }
            for (std::uint64_t id : dead)
                closeConnection(io, id);
            if (all_flushed || Clock::now() >= flush_deadline) {
                std::vector<std::uint64_t> ids;
                for (auto &kv : io.conns)
                    ids.push_back(kv.first);
                for (std::uint64_t id : ids)
                    closeConnection(io, id);
                return;
            }
        }

        // --- Maintenance: retire finished connections, refresh
        // epoll interest for the rest.
        {
            std::vector<std::uint64_t> done;
            for (auto &kv : io.conns) {
                Connection &conn = *kv.second;
                if (conn.closeAfterFlush && conn.inFlight == 0
                    && conn.outOff >= conn.outbox.size()) {
                    done.push_back(conn.id);
                    continue;
                }
                updateInterest(io, conn);
            }
            for (std::uint64_t id : done)
                closeConnection(io, id);
        }

        int timeout = -1;
        if (flushing || stop_begun) {
            timeout = 50;
        } else if (config_.idleTimeoutMs > 0) {
            Clock::time_point now = Clock::now();
            timeout = config_.idleTimeoutMs;
            for (auto &kv : io.conns) {
                int left = config_.idleTimeoutMs
                    - msBetween(kv.second->lastActivity, now);
                timeout = std::max(0, std::min(timeout, left));
            }
        }

        int rc = ::epoll_wait(io.epollFd, events.data(),
                              static_cast<int>(events.size()),
                              timeout);
        if (rc < 0 && errno != EINTR) {
            warn("service: epoll_wait failed: %s",
                 std::strerror(errno));
            return;
        }

        std::vector<std::uint64_t> dead;
        for (int i = 0; i < rc; ++i) {
            std::uint64_t tag = events[i].data.u64;
            std::uint32_t ev = events[i].events;
            if (tag == 0) {
                std::uint64_t drained = 0;
                while (::read(io.wakeFd, &drained,
                              sizeof(drained))
                       > 0) {
                }
                continue;
            }
            if (tag < kConnTagBase) {
                std::size_t li = static_cast<std::size_t>(tag - 1);
                if (!stop_begun && li < listenFds_.size())
                    acceptPending(listenFds_[li]);
                continue;
            }
            std::uint64_t id = tag - kConnTagBase;
            auto it = io.conns.find(id);
            if (it == io.conns.end())
                continue;
            Connection &conn = *it->second;
            if (ev & EPOLLERR) {
                dead.push_back(id);
                continue;
            }
            if ((ev & EPOLLIN) && !conn.readClosed) {
                if (!serviceRead(io, conn)) {
                    dead.push_back(id);
                    continue;
                }
            }
            if ((ev & EPOLLHUP) && conn.readClosed
                && conn.outOff >= conn.outbox.size()) {
                dead.push_back(id);
                continue;
            }
            if (conn.outOff < conn.outbox.size()) {
                if (!serviceWrite(conn)) {
                    dead.push_back(id);
                    continue;
                }
            }
        }
        for (std::uint64_t id : dead)
            closeConnection(io, id);

        // --- Idle reaping.
        if (config_.idleTimeoutMs > 0 && !stop_begun) {
            Clock::time_point now = Clock::now();
            std::vector<std::uint64_t> idle;
            for (auto &kv : io.conns)
                if (msBetween(kv.second->lastActivity, now)
                    >= config_.idleTimeoutMs)
                    idle.push_back(kv.first);
            for (std::uint64_t id : idle) {
                stats_.idleClosed.fetch_add(
                    1, std::memory_order_relaxed);
                CASH_METRIC_INC("service.idle_closed");
                closeConnection(io, id);
            }
        }
    }
}

// ---------------------------------------------------------------
// Simulation threads.
// ---------------------------------------------------------------

void
ServiceServer::publish(std::uint64_t conn_id, std::string framed)
{
    std::uint32_t owner =
        static_cast<std::uint32_t>(conn_id % ioThreads_.size());
    IoThread &io = *ioThreads_[owner];
    {
        std::lock_guard<std::mutex> lock(io.mailboxMutex);
        io.outgoing.push_back({conn_id, std::move(framed)});
    }
    wake(owner);
}

JsonValue
ServiceServer::finalizeFanout(Fanout &fanout)
{
    if (const char *code =
            fanout.failCode.load(std::memory_order_relaxed)) {
        if (code == errors::QueueFull) {
            stats_.queueFull.fetch_add(1,
                                       std::memory_order_relaxed);
            CASH_METRIC_INC("service.queue_full");
            return errorResponse(fanout.reqId, code,
                                 "request queue is full; retry");
        }
        stats_.deadlineExceeded.fetch_add(
            1, std::memory_order_relaxed);
        CASH_METRIC_INC("service.deadline_exceeded");
        return errorResponse(fanout.reqId, code,
                             "queued past the request deadline");
    }
    switch (fanout.op) {
      case Op::Step:
        return mergeStepParts(fanout.reqId, fanout.parts);
      case Op::Snapshot:
        return mergeSnapshotParts(fanout.reqId, fanout.parts);
      case Op::Drain:
        return mergeDrainParts(fanout.reqId, fanout.parts);
      case Op::Shards: {
        RegionStats rs{stats_.migrations.load(),
                       stats_.rebalances.load()};
        return mergeShardsParts(
            fanout.reqId, fanout.parts,
            cloud::placementPolicyName(config_.placement), rs);
      }
      case Op::RegionSnapshot: {
        RegionStats rs{stats_.migrations.load(),
                       stats_.rebalances.load()};
        std::vector<std::uint64_t> routed;
        {
            std::lock_guard<std::mutex> lock(routerMutex_);
            routed = router_.stats().routed;
        }
        return mergeRegionSnapshotParts(fanout.reqId,
                                        fanout.parts, routed, rs);
      }
      case Op::RegionEnergy:
        return mergeEnergyParts(fanout.reqId, fanout.parts);
      default:
        return errorResponse(fanout.reqId, errors::BadRequest,
                             "op cannot fan out");
    }
}

void
ServiceServer::simHandleMigrateSource(std::uint32_t shard,
                                      SimTask &task)
{
    Shard &sh = shards_[shard];
    std::uint32_t local = cloud::tenantLocal(task.request.tenant);
    const auto &tenants = sh.provider->tenants();
    if (local >= tenants.size()
        || tenants[local]->state != cloud::TenantState::Active) {
        publish(task.connId,
                encodeFrame(
                    errorResponse(
                        task.request.id, errors::UnknownTenant,
                        strfmt("tenant %u is not active on shard "
                               "%u",
                               task.request.tenant, shard))
                        .dump()));
        return;
    }
    auto snap = sh.core->migrateOut(local);
    if (!snap) {
        publish(task.connId,
                encodeFrame(
                    errorResponse(
                        task.request.id, errors::BadRequest,
                        strfmt("tenant %u is not migratable "
                               "(request-driven source)",
                               task.request.tenant))
                        .dump()));
        return;
    }
    SimTask mt;
    mt.kind = SimTask::Kind::MigrateIn;
    mt.connId = task.connId;
    mt.request.id = task.request.id;
    mt.snapshotJson = snapshotToJson(*snap).dump();
    mt.fromShard = shard;
    mt.stallCycles = snap->stallCycles;
    pendingTasks_.fetch_add(1, std::memory_order_acq_rel);
    shards_[task.request.to].queue->pushInternal(std::move(mt));
}

void
ServiceServer::simHandleMigrateIn(std::uint32_t shard,
                                  SimTask &task)
{
    Shard &sh = shards_[shard];
    auto parsed = parseJson(task.snapshotJson);
    std::optional<cloud::TenantSnapshot> snap =
        parsed ? snapshotFromJson(*parsed) : std::nullopt;
    if (!snap)
        panic("migration snapshot did not round-trip: %s",
              task.snapshotJson.c_str());
    std::uint32_t new_id = sh.core->migrateIn(*snap);
    stats_.migrations.fetch_add(1, std::memory_order_relaxed);
    CASH_METRIC_INC("service.migrations");
    if (task.connId == 0)
        return; // rebalance-triggered: nobody to answer
    const cloud::Tenant &t =
        *sh.provider->tenants()[cloud::tenantLocal(new_id)];
    JsonValue resp = okResponse(task.request.id);
    resp.set("tenant", JsonValue(new_id));
    resp.set("from", JsonValue(task.fromShard));
    resp.set("to", JsonValue(shard));
    resp.set("stall_cycles", JsonValue(task.stallCycles));
    resp.set("state", JsonValue(cloud::tenantStateName(t.state)));
    resp.set("bill", JsonValue(t.bill()));
    publish(task.connId, encodeFrame(resp.dump()));
}

void
ServiceServer::simHandleTask(std::uint32_t shard, SimTask &task,
                             Clock::time_point now)
{
    Shard &sh = shards_[shard];
    bool late = config_.requestDeadlineMs > 0
        && task.kind != SimTask::Kind::MigrateIn
        && msBetween(task.enqueued, now) > config_.requestDeadlineMs;

    switch (task.kind) {
      case SimTask::Kind::Single: {
        JsonValue resp;
        if (late) {
            stats_.deadlineExceeded.fetch_add(
                1, std::memory_order_relaxed);
            CASH_METRIC_INC("service.deadline_exceeded");
            resp = errorResponse(task.request.id,
                                 errors::DeadlineExceeded,
                                 "queued past the request "
                                 "deadline");
        } else if (task.request.op == Op::Migrate) {
            simHandleMigrateSource(shard, task);
            return; // the target shard answers
        } else {
            double t0 = traceNowUs();
            resp = sh.core->apply(task.request);
            traceServiceSpan(opName(task.request.op), t0,
                             {{"conn", task.connId},
                              {"req", task.request.id},
                              {"shard", shard}});
        }
        publish(task.connId, encodeFrame(resp.dump()));
        return;
      }
      case SimTask::Kind::FanPart: {
        Fanout &fan = *task.fanout;
        if (late) {
            fan.failCode.store(errors::DeadlineExceeded,
                               std::memory_order_relaxed);
        } else {
            double t0 = traceNowUs();
            fan.parts[shard] = sh.core->apply(task.request);
            traceServiceSpan(opName(task.request.op), t0,
                             {{"conn", task.connId},
                              {"req", task.request.id},
                              {"shard", shard}});
        }
        if (fan.remaining.fetch_sub(1, std::memory_order_acq_rel)
            == 1)
            publish(fan.connId,
                    encodeFrame(finalizeFanout(fan).dump()));
        return;
      }
      case SimTask::Kind::MigrateIn:
        simHandleMigrateIn(shard, task);
        return;
    }
}

void
ServiceServer::simAfterBatch(std::uint32_t shard)
{
    Shard &sh = shards_[shard];
    std::vector<cloud::ShardLoad> loads;
    {
        std::lock_guard<std::mutex> lock(loadMutex_);
        loadBoard_[shard] = sh.core->load();
        loads = loadBoard_;
    }
    if (shardCount() < 2 || !config_.rebalance.enabled)
        return;
    if (stopRequested_.load(std::memory_order_relaxed)
        || sh.core->draining())
        return;
    std::optional<cloud::RebalancePlan> plan;
    {
        std::lock_guard<std::mutex> lock(routerMutex_);
        plan = router_.maybeRebalanceFrom(shard, loads);
    }
    if (!plan)
        return;
    cloud::TenantId migrant = sh.provider->pickMigrant();
    if (migrant == cloud::invalidTenant)
        return;
    auto snap = sh.core->migrateOut(migrant);
    if (!snap)
        return;
    stats_.rebalances.fetch_add(1, std::memory_order_relaxed);
    CASH_METRIC_INC("service.rebalances");
    CASH_TRACE_HOST_SPAN(trace::Category::Service, "rebalance",
                         traceNowUs(), 0.0,
                         {{"from", shard}, {"to", plan->to}});
    SimTask mt;
    mt.kind = SimTask::Kind::MigrateIn;
    mt.connId = 0;
    mt.snapshotJson = snapshotToJson(*snap).dump();
    mt.fromShard = shard;
    mt.stallCycles = snap->stallCycles;
    pendingTasks_.fetch_add(1, std::memory_order_acq_rel);
    shards_[plan->to].queue->pushInternal(std::move(mt));
}

void
ServiceServer::simLoop(std::uint32_t shard)
{
    Shard &sh = shards_[shard];
    std::vector<SimTask> batch;
    while (sh.queue->popBatch(batch, config_.maxBatch)) {
        stats_.batches.fetch_add(1, std::memory_order_relaxed);
        CASH_METRIC_SAMPLE("service.batch_size",
                           static_cast<double>(batch.size()));
        double batch_t0 = traceNowUs();
        Clock::time_point now = Clock::now();
        for (SimTask &task : batch) {
            simHandleTask(shard, task, now);
            pendingTasks_.fetch_sub(1, std::memory_order_acq_rel);
        }
        traceServiceSpan("batch", batch_t0,
                         {{"shard", shard},
                          {"requests", batch.size()}});
        simAfterBatch(shard);
    }

    // Queue closed and drained: the fleet-drain path. Finish with
    // this shard's provider drain — final bills, conservation
    // audit — and leave the partial for stop() to aggregate.
    sh.drainPartial = sh.core->drainReport();
}

} // namespace cash::service
