/**
 * @file
 * Minimal JSON values for the service wire protocol.
 *
 * The daemon's request protocol (service/protocol.hh) is
 * length-prefixed JSON, and the repo deliberately carries no
 * third-party dependencies beyond the test/bench frameworks, so this
 * is the smallest JSON layer that serves: a tagged value, a
 * recursive-descent parser hardened against hostile input (depth
 * cap, strict UTF-16 escape handling, no trailing garbage), and a
 * deterministic writer (object keys serialize in insertion order, so
 * encode∘decode∘encode is the identity the protocol round-trip test
 * demands).
 *
 * Numbers are stored as doubles — protocol fields are all small
 * integers or prices, far below the 2^53 exactness bound — and
 * written back as integers when exactly integral.
 */

#ifndef CASH_SERVICE_JSON_HH
#define CASH_SERVICE_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cash::service
{

/** One JSON value (object members keep insertion order). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    JsonValue(std::nullptr_t) {}
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double n) : kind_(Kind::Number), num_(n) {}
    JsonValue(int n) : JsonValue(static_cast<double>(n)) {}
    JsonValue(unsigned n) : JsonValue(static_cast<double>(n)) {}
    JsonValue(std::uint64_t n) : JsonValue(static_cast<double>(n)) {}
    JsonValue(std::int64_t n) : JsonValue(static_cast<double>(n)) {}
    JsonValue(const char *s) : kind_(Kind::String), str_(s) {}
    JsonValue(std::string s)
        : kind_(Kind::String), str_(std::move(s))
    {}

    static JsonValue array() { return JsonValue(Kind::Array); }
    static JsonValue object() { return JsonValue(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string &string() const { return str_; }
    const std::vector<JsonValue> &items() const { return items_; }
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Append to an array (converts a Null value to an array). */
    void push(JsonValue v);

    /** Set an object member (converts Null to object; replaces an
     *  existing key in place, preserving its position). */
    void set(std::string key, JsonValue v);

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Member as number clamped through a uint64, with a default
     *  when absent / not numeric / negative / non-integral. */
    std::optional<std::uint64_t> getUint(std::string_view key) const;

    /** Member as double. */
    std::optional<double> getNumber(std::string_view key) const;

    /** Member as string. */
    std::optional<std::string> getString(std::string_view key) const;

    /** Member as bool. */
    std::optional<bool> getBool(std::string_view key) const;

    /** Serialize (compact, no whitespace, keys in insertion order). */
    std::string dump() const;

  private:
    explicit JsonValue(Kind k) : kind_(k) {}

    void dumpTo(std::string &out) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse one JSON document. The whole input must be consumed
 * (trailing garbage is an error). On failure returns nullopt and,
 * when `err` is non-null, stores a human-readable reason with the
 * byte offset.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *err = nullptr);

} // namespace cash::service

#endif // CASH_SERVICE_JSON_HH
