/**
 * @file
 * Bounded multi-producer / single-consumer queue with explicit
 * backpressure.
 *
 * The service front-end decodes requests on IO threads and hands
 * them to the single simulation thread through this queue. The
 * capacity bound is the server's admission control: when the
 * simulation thread falls behind, tryPush() fails and the IO thread
 * answers `queue_full` immediately instead of buffering unbounded
 * work (or worse, silently dropping it).
 *
 * A mutex + condvar is the right tool here: pushes happen per
 * request (network cadence, thousands/s), not per simulated
 * instruction, and popBatch() gives the consumer whole batches per
 * wakeup so the lock is taken O(1) times per batch.
 */

#ifndef CASH_SERVICE_QUEUE_HH
#define CASH_SERVICE_QUEUE_HH

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace cash::service
{

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {}

    /** Enqueue if there is room; false = backpressure (or closed). */
    bool tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || externClosed_
                || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
        return true;
    }

    /**
     * Capacity-exempt enqueue for consumer-side work (the sim
     * threads' migration hand-offs). Lands even after
     * closeExternal() — the shutdown protocol counts these tasks
     * and only close()s once they have drained — so it must never
     * be called after close().
     */
    void pushInternal(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
    }

    /**
     * Blocking batch pop: waits until at least one item is queued
     * (or the queue is closed), then moves up to `max_batch` items
     * into `out` (cleared first). Returns false only when the queue
     * is closed AND empty — the consumer's signal to exit after one
     * final drain.
     */
    bool popBatch(std::vector<T> &out, std::size_t max_batch)
    {
        out.clear();
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock,
                    [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false; // closed and drained
        std::size_t n = items_.size() < max_batch ? items_.size()
                                                  : max_batch;
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        return true;
    }

    /** Reject further pushes and wake the consumer for its final
     *  drain. Idempotent. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    /** Half-close: reject external tryPush()es while the consumer
     *  keeps blocking for internal work. The shutdown step between
     *  "stop admitting" and close(). Idempotent. */
    void closeExternal()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        externClosed_ = true;
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
    bool externClosed_ = false;
};

} // namespace cash::service

#endif // CASH_SERVICE_QUEUE_HH
