/**
 * @file
 * Concurrent load generation against a CASH service daemon.
 *
 * LoadRunner drives N independent client sessions, each on its own
 * connection and thread, with a seeded open-loop arrival process
 * (exponential inter-send gaps at `rate` requests/second) and a
 * bounded pipeline window. Each session draws a deterministic op mix
 * from its forked Rng stream — arrivals, departures of tenants it
 * created, queries, quantum steps — so two runs with the same seed
 * send the same per-session request sequences (only the cross-session
 * interleaving at the server varies).
 *
 * The report's core contract numbers are interleaving-invariant:
 * every request the server accepts produces exactly one response, so
 * `sent == received` (zero dropped responses) regardless of thread
 * timing; `queue_full` answers count as received backpressure, not
 * drops. Latencies (send → response, microseconds) feed both the
 * report's summary fields and, when a TraceSession is installed, the
 * `loadgen.latency_us` histogram in the global MetricsRegistry.
 *
 * Shared by tools/cash_loadgen (CLI) and bench/bench_service
 * (in-process loopback grid).
 */

#ifndef CASH_SERVICE_LOADGEN_HH
#define CASH_SERVICE_LOADGEN_HH

#include <cstdint>
#include <string>

namespace cash::service
{

/** One load shape. */
struct LoadConfig
{
    /** Connect to this Unix-domain path when non-empty... */
    std::string unixPath;
    /** ...else to this loopback TCP port. */
    std::uint16_t tcpPort = 0;
    std::string tcpHost = "127.0.0.1";

    /** Concurrent sessions (connections × threads). */
    unsigned sessions = 8;
    /** Requests per session. */
    unsigned requests = 64;
    /** Open-loop send rate per session, requests/second
     *  (0 = no pacing: send as fast as the window allows). */
    double rate = 0.0;
    /** Max in-flight (unanswered) requests per session. */
    unsigned window = 8;
    /** Base seed; session s uses an independent fork. */
    std::uint64_t seed = 1;

    /** Op mix: arrivals fill the remainder. */
    double departProb = 0.25;
    double queryProb = 0.15;
    double stepProb = 0.15;
    /** Cross-shard migrations of owned tenants (auto-routed target;
     *  on success the session adopts the tenant's new region id).
     *  Leave 0 against single-shard daemons: every draw would burn
     *  a request on a bad_request answer. */
    double migrateProb = 0.0;
    /** Catalog classes to draw arrivals from. */
    unsigned classes = 1;
    /** Arrive residence drawn uniformly from [1, residenceMax]. */
    std::uint32_t residenceMax = 32;
    /** Quanta per step request. */
    std::uint32_t stepQuanta = 1;
    /** Per-session failure warnings are capped here: at hundreds of
     *  sessions a dead socket would otherwise print hundreds of
     *  identical lines. The count past the cap is reported once,
     *  after the run. */
    unsigned maxSessionWarnings = 8;
};

/** Aggregated outcome of one run (sums over all sessions). */
struct LoadReport
{
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t oks = 0;
    std::uint64_t queueFull = 0;
    std::uint64_t otherErrors = 0;
    /** Op mix actually sent, summed over sessions (the drawn mix,
     *  not the configured probabilities — departs and queries
     *  require an owned tenant). */
    std::uint64_t arrives = 0;
    std::uint64_t departs = 0;
    std::uint64_t queries = 0;
    std::uint64_t steps = 0;
    std::uint64_t migrates = 0;
    /** Sessions that died on a connection/protocol error. */
    unsigned failedSessions = 0;

    double elapsedSec = 0.0;

    /** Send→response latency summary, microseconds. */
    std::uint64_t latCount = 0;
    double latMeanUs = 0.0;
    double latP50Us = 0.0;
    double latP90Us = 0.0;
    double latMaxUs = 0.0;

    /** Responses lost (the contract says this is always 0 unless a
     *  session failed outright). */
    std::uint64_t dropped() const { return sent - received; }
};

/** Run the configured load to completion (blocks). */
LoadReport runLoad(const LoadConfig &config);

} // namespace cash::service

#endif // CASH_SERVICE_LOADGEN_HH
