#include "service/protocol.hh"

#include <cstring>

#include "common/log.hh"

namespace cash::service
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Ping: return "ping";
      case Op::Arrive: return "arrive";
      case Op::Depart: return "depart";
      case Op::Query: return "query";
      case Op::Step: return "step";
      case Op::Snapshot: return "snapshot";
      case Op::Drain: return "drain";
      case Op::Shards: return "shards";
      case Op::Migrate: return "migrate";
      case Op::RegionSnapshot: return "region_snapshot";
      case Op::RegionEnergy: return "region_energy";
    }
    return "?";
}

std::optional<Op>
opFromName(std::string_view name)
{
    if (name == "ping")
        return Op::Ping;
    if (name == "arrive")
        return Op::Arrive;
    if (name == "depart")
        return Op::Depart;
    if (name == "query")
        return Op::Query;
    if (name == "step")
        return Op::Step;
    if (name == "snapshot")
        return Op::Snapshot;
    if (name == "drain")
        return Op::Drain;
    if (name == "shards")
        return Op::Shards;
    if (name == "migrate")
        return Op::Migrate;
    if (name == "region_snapshot")
        return Op::RegionSnapshot;
    if (name == "region_energy")
        return Op::RegionEnergy;
    return std::nullopt;
}

JsonValue
Request::toJson() const
{
    JsonValue v = JsonValue::object();
    v.set("id", JsonValue(id));
    v.set("op", JsonValue(opName(op)));
    switch (op) {
      case Op::Arrive:
        v.set("cls", JsonValue(cls));
        v.set("residence", JsonValue(residence));
        break;
      case Op::Depart:
      case Op::Query:
        v.set("tenant", JsonValue(tenant));
        break;
      case Op::Migrate:
        v.set("tenant", JsonValue(tenant));
        if (to != kAutoShard)
            v.set("to", JsonValue(to));
        break;
      case Op::Step:
        v.set("quanta", JsonValue(quanta));
        break;
      default:
        break;
    }
    return v;
}

namespace
{

bool
failParse(std::string *err, std::string *detail, const char *code,
          std::string why)
{
    if (err)
        *err = code;
    if (detail)
        *detail = std::move(why);
    return false;
}

/** Read a bounded uint32 field, with a default when optional. */
bool
uintField(const JsonValue &v, const char *key, bool required,
          std::uint32_t fallback, std::uint32_t max,
          std::uint32_t &out, std::string *err, std::string *detail)
{
    if (!v.find(key)) {
        if (required)
            return failParse(err, detail, errors::BadRequest,
                             strfmt("missing field '%s'", key));
        out = fallback;
        return true;
    }
    auto u = v.getUint(key);
    if (!u || *u > max)
        return failParse(
            err, detail, errors::BadRequest,
            strfmt("field '%s' must be an integer in [0, %u]", key,
                   max));
    out = static_cast<std::uint32_t>(*u);
    return true;
}

} // namespace

std::optional<Request>
parseRequest(const JsonValue &v, std::string *err,
             std::string *detail, std::uint64_t *id_out)
{
    if (id_out)
        *id_out = 0;
    if (!v.isObject()) {
        failParse(err, detail, errors::BadRequest,
                  "request is not a JSON object");
        return std::nullopt;
    }
    Request req;
    if (auto id = v.getUint("id")) {
        req.id = *id;
        if (id_out)
            *id_out = *id;
    } else if (v.find("id")) {
        failParse(err, detail, errors::BadRequest,
                  "field 'id' must be a non-negative integer");
        return std::nullopt;
    }

    auto op_name = v.getString("op");
    if (!op_name) {
        failParse(err, detail, errors::BadRequest,
                  "missing string field 'op'");
        return std::nullopt;
    }
    auto op = opFromName(*op_name);
    if (!op) {
        failParse(err, detail, errors::UnknownOp,
                  strfmt("unknown op '%s'", op_name->c_str()));
        return std::nullopt;
    }
    req.op = *op;

    bool ok = true;
    switch (req.op) {
      case Op::Arrive:
        // Class indices and residences are small by construction;
        // the bounds reject garbage without constraining real use.
        ok = uintField(v, "cls", true, 0, 1u << 16, req.cls, err,
                       detail)
            && uintField(v, "residence", false, 1, 1u << 20,
                         req.residence, err, detail);
        break;
      case Op::Depart:
      case Op::Query:
        ok = uintField(v, "tenant", true, 0, ~0u - 1, req.tenant,
                       err, detail);
        break;
      case Op::Migrate:
        // The target shard is bounded by the region id encoding
        // (one byte); absent means "router's choice".
        ok = uintField(v, "tenant", true, 0, ~0u - 1, req.tenant,
                       err, detail)
            && uintField(v, "to", false, Request::kAutoShard, 255,
                         req.to, err, detail);
        break;
      case Op::Step:
        ok = uintField(v, "quanta", false, 1, 1u << 16, req.quanta,
                       err, detail);
        if (ok && req.quanta == 0)
            ok = failParse(err, detail, errors::BadRequest,
                           "field 'quanta' must be positive");
        break;
      default:
        break;
    }
    if (!ok)
        return std::nullopt;
    return req;
}

JsonValue
errorResponse(std::uint64_t id, const char *code,
              const std::string &detail)
{
    JsonValue v = JsonValue::object();
    v.set("id", JsonValue(id));
    v.set("ok", JsonValue(false));
    v.set("error", JsonValue(code));
    if (!detail.empty())
        v.set("detail", JsonValue(detail));
    return v;
}

JsonValue
okResponse(std::uint64_t id)
{
    JsonValue v = JsonValue::object();
    v.set("id", JsonValue(id));
    v.set("ok", JsonValue(true));
    return v;
}

std::string
encodeFrame(std::string_view payload)
{
    std::string out;
    out.reserve(4 + payload.size());
    std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    out += static_cast<char>((n >> 24) & 0xFF);
    out += static_cast<char>((n >> 16) & 0xFF);
    out += static_cast<char>((n >> 8) & 0xFF);
    out += static_cast<char>(n & 0xFF);
    out.append(payload.data(), payload.size());
    return out;
}

void
FrameDecoder::feed(const char *data, std::size_t len)
{
    if (error_)
        return;
    // Reclaim the consumed prefix before it dominates the buffer.
    if (off_ > 4096 && off_ > buf_.size() / 2) {
        buf_.erase(0, off_);
        off_ = 0;
    }
    buf_.append(data, len);
}

std::optional<std::string>
FrameDecoder::next()
{
    if (error_)
        return std::nullopt;
    if (buf_.size() - off_ < 4)
        return std::nullopt;
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(buf_.data() + off_);
    std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24)
        | (static_cast<std::uint32_t>(p[1]) << 16)
        | (static_cast<std::uint32_t>(p[2]) << 8)
        | static_cast<std::uint32_t>(p[3]);
    if (n == 0) {
        error_ = errors::Malformed;
        return std::nullopt;
    }
    if (n > maxFrame_) {
        error_ = errors::FrameTooLarge;
        return std::nullopt;
    }
    if (buf_.size() - off_ - 4 < n)
        return std::nullopt;
    std::string payload = buf_.substr(off_ + 4, n);
    off_ += 4 + n;
    return payload;
}

} // namespace cash::service
