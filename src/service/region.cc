#include "service/region.hh"

#include <cstdlib>

#include "cloud/tenant.hh"
#include "common/log.hh"
#include "trace/metrics.hh"

namespace cash::service
{

// ---------------------------------------------------------------
// Snapshot (de)serialization.
// ---------------------------------------------------------------

JsonValue
snapshotToJson(const cloud::TenantSnapshot &snap)
{
    JsonValue v = JsonValue::object();
    v.set("app", JsonValue(snap.cls.app));
    v.set("kind",
          JsonValue(static_cast<std::uint32_t>(snap.cls.kind)));
    v.set("class_target", JsonValue(snap.cls.target));
    v.set("min_slices", JsonValue(snap.cls.minCfg.slices));
    v.set("min_banks", JsonValue(snap.cls.minCfg.banks));
    v.set("peak_slices", JsonValue(snap.cls.peakCfg.slices));
    v.set("peak_banks", JsonValue(snap.cls.peakCfg.banks));
    v.set("target", JsonValue(snap.target));
    v.set("residence_rounds", JsonValue(snap.residenceRounds));
    v.set("active_rounds", JsonValue(snap.activeRounds));
    v.set("bill", JsonValue(snap.migratedBill));
    v.set("holdings", JsonValue(snap.migratedHoldings));
    v.set("compact_cost", JsonValue(snap.unbilledCompactCost));
    v.set("qos_samples", JsonValue(snap.qosSamples));
    v.set("qos_violations", JsonValue(snap.qosViolations));
    v.set("ewma_q", JsonValue(snap.ewmaQ));
    // Seeds use all 64 bits; JSON numbers are doubles, so the seed
    // travels as a decimal string.
    v.set("src_seed", JsonValue(std::to_string(snap.srcSeed)));
    v.set("src_emitted", JsonValue(snap.srcEmitted));
    v.set("held_slices", JsonValue(snap.heldCfg.slices));
    v.set("held_banks", JsonValue(snap.heldCfg.banks));
    v.set("stall_cycles", JsonValue(snap.stallCycles));
    v.set("hops", JsonValue(snap.hops));
    v.set("joules", JsonValue(snap.joules));
    return v;
}

std::optional<cloud::TenantSnapshot>
snapshotFromJson(const JsonValue &v)
{
    if (!v.isObject())
        return std::nullopt;
    cloud::TenantSnapshot snap;

    auto u32 = [&](const char *key, std::uint32_t min,
                   std::uint32_t max,
                   std::uint32_t &out) -> bool {
        auto n = v.getUint(key);
        if (!n || *n < min || *n > max)
            return false;
        out = static_cast<std::uint32_t>(*n);
        return true;
    };
    auto u64 = [&](const char *key, std::uint64_t &out) -> bool {
        auto n = v.getUint(key);
        if (!n)
            return false;
        out = *n;
        return true;
    };
    auto num = [&](const char *key, double &out) -> bool {
        auto n = v.getNumber(key);
        if (!n || !(*n >= 0.0)) // NaN and negatives rejected
            return false;
        out = *n;
        return true;
    };

    auto app = v.getString("app");
    if (!app || app->empty())
        return std::nullopt;
    snap.cls.app = *app;
    std::uint32_t kind = 0;
    if (!u32("kind", 0, 1, kind))
        return std::nullopt;
    snap.cls.kind = static_cast<QosKind>(kind);
    if (!num("class_target", snap.cls.target)
        || !u32("min_slices", 1, 1u << 16, snap.cls.minCfg.slices)
        || !u32("min_banks", 1, 1u << 20, snap.cls.minCfg.banks)
        || !u32("peak_slices", 1, 1u << 16, snap.cls.peakCfg.slices)
        || !u32("peak_banks", 1, 1u << 20, snap.cls.peakCfg.banks)
        || !num("target", snap.target)
        || !u32("residence_rounds", 0, ~0u, snap.residenceRounds)
        || !u64("active_rounds", snap.activeRounds)
        || !num("bill", snap.migratedBill)
        || !num("holdings", snap.migratedHoldings)
        || !num("compact_cost", snap.unbilledCompactCost)
        || !u64("qos_samples", snap.qosSamples)
        || !u64("qos_violations", snap.qosViolations)
        || !u64("src_emitted", snap.srcEmitted)
        || !u32("held_slices", 1, 1u << 16, snap.heldCfg.slices)
        || !u32("held_banks", 1, 1u << 20, snap.heldCfg.banks)
        || !u64("stall_cycles", snap.stallCycles)
        || !u32("hops", 1, ~0u, snap.hops)
        || !num("joules", snap.joules))
        return std::nullopt;
    auto ewma = v.getNumber("ewma_q");
    if (!ewma || !(*ewma == *ewma))
        return std::nullopt;
    snap.ewmaQ = *ewma;
    auto seed = v.getString("src_seed");
    if (!seed || seed->empty())
        return std::nullopt;
    char *end = nullptr;
    snap.srcSeed = std::strtoull(seed->c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return std::nullopt;
    return snap;
}

// ---------------------------------------------------------------
// Partial-response merging.
// ---------------------------------------------------------------

namespace
{

bool
allOk(const std::vector<JsonValue> &parts)
{
    for (const JsonValue &p : parts)
        if (auto ok = p.getBool("ok"); !ok || !*ok)
            return false;
    return true;
}

std::uint64_t
sumUint(const std::vector<JsonValue> &parts, const char *key)
{
    std::uint64_t total = 0;
    for (const JsonValue &p : parts)
        total += p.getUint(key).value_or(0);
    return total;
}

double
sumNumber(const std::vector<JsonValue> &parts, const char *key)
{
    double total = 0.0;
    for (const JsonValue &p : parts)
        total += p.getNumber(key).value_or(0.0);
    return total;
}

JsonValue
mergedOk(std::uint64_t id, const std::vector<JsonValue> &parts)
{
    JsonValue resp = okResponse(id);
    if (!allOk(parts))
        resp.set("ok", JsonValue(false));
    return resp;
}

} // namespace

JsonValue
mergeStepParts(std::uint64_t id, const std::vector<JsonValue> &parts)
{
    JsonValue resp = mergedOk(id, parts);
    resp.set("round",
             JsonValue(parts.empty()
                           ? 0
                           : parts[0].getUint("round").value_or(0)));
    resp.set("active", JsonValue(sumUint(parts, "active")));
    return resp;
}

JsonValue
mergeSnapshotParts(std::uint64_t id,
                   const std::vector<JsonValue> &parts)
{
    JsonValue resp = mergedOk(id, parts);
    resp.set("round",
             JsonValue(parts.empty()
                           ? 0
                           : parts[0].getUint("round").value_or(0)));
    resp.set("active", JsonValue(sumUint(parts, "active")));
    resp.set("queued", JsonValue(sumUint(parts, "queued")));
    resp.set("arrivals", JsonValue(sumUint(parts, "arrivals")));
    resp.set("admitted", JsonValue(sumUint(parts, "admitted")));
    resp.set("rejected", JsonValue(sumUint(parts, "rejected")));
    resp.set("abandoned", JsonValue(sumUint(parts, "abandoned")));
    resp.set("departed", JsonValue(sumUint(parts, "departed")));
    resp.set("revenue", JsonValue(sumNumber(parts, "revenue")));
    // qos_delivery recomputed from the raw tallies: a mean of
    // per-shard fractions would weight empty shards equally.
    std::uint64_t samples = sumUint(parts, "sla_samples");
    std::uint64_t violations = sumUint(parts, "sla_violations");
    resp.set("qos_delivery",
             JsonValue(samples
                           ? 1.0
                               - static_cast<double>(violations)
                                   / static_cast<double>(samples)
                           : 1.0));
    resp.set("free_slices", JsonValue(sumUint(parts, "free_slices")));
    resp.set("free_banks", JsonValue(sumUint(parts, "free_banks")));
    bool draining = !parts.empty();
    for (const JsonValue &p : parts)
        draining = draining && p.getBool("draining").value_or(false);
    resp.set("draining", JsonValue(draining));
    resp.set("sla_samples", JsonValue(samples));
    resp.set("sla_violations", JsonValue(violations));
    resp.set("migrated_in", JsonValue(sumUint(parts, "migrated_in")));
    resp.set("migrated_out",
             JsonValue(sumUint(parts, "migrated_out")));
    resp.set("joules", JsonValue(sumNumber(parts, "joules")));
    resp.set("energy_revenue",
             JsonValue(sumNumber(parts, "energy_revenue")));
    resp.set("shards",
             JsonValue(static_cast<std::uint64_t>(parts.size())));
    return resp;
}

JsonValue
mergeEnergyParts(std::uint64_t id,
                 const std::vector<JsonValue> &parts)
{
    JsonValue resp = mergedOk(id, parts);
    resp.set("dissipated_joules",
             JsonValue(sumNumber(parts, "dissipated_joules")));
    resp.set("departed_joules",
             JsonValue(sumNumber(parts, "departed_joules")));
    resp.set("exported_joules",
             JsonValue(sumNumber(parts, "exported_joules")));
    resp.set("overhead_joules",
             JsonValue(sumNumber(parts, "overhead_joules")));
    resp.set("energy_revenue",
             JsonValue(sumNumber(parts, "energy_revenue")));
    resp.set("shards",
             JsonValue(static_cast<std::uint64_t>(parts.size())));
    JsonValue arr = JsonValue::array();
    for (const JsonValue &p : parts)
        arr.push(p);
    resp.set("per_shard", std::move(arr));
    return resp;
}

JsonValue
mergeShardsParts(std::uint64_t id,
                 const std::vector<JsonValue> &parts,
                 const char *placement, const RegionStats &stats)
{
    JsonValue resp = mergedOk(id, parts);
    resp.set("shards",
             JsonValue(static_cast<std::uint64_t>(parts.size())));
    resp.set("placement", JsonValue(placement));
    resp.set("migrations", JsonValue(stats.migrations));
    resp.set("rebalances", JsonValue(stats.rebalances));
    JsonValue arr = JsonValue::array();
    for (const JsonValue &p : parts)
        arr.push(p);
    resp.set("shard_info", std::move(arr));
    return resp;
}

JsonValue
mergeRegionSnapshotParts(std::uint64_t id,
                         const std::vector<JsonValue> &parts,
                         const std::vector<std::uint64_t> &routed,
                         const RegionStats &stats)
{
    JsonValue resp = mergedOk(id, parts);
    resp.set("shards",
             JsonValue(static_cast<std::uint64_t>(parts.size())));
    JsonValue routed_arr = JsonValue::array();
    for (std::uint64_t r : routed)
        routed_arr.push(JsonValue(r));
    resp.set("routed", std::move(routed_arr));
    resp.set("migrations", JsonValue(stats.migrations));
    resp.set("rebalances", JsonValue(stats.rebalances));
    JsonValue arr = JsonValue::array();
    for (const JsonValue &p : parts)
        arr.push(p);
    resp.set("per_shard", std::move(arr));
    return resp;
}

JsonValue
mergeDrainParts(std::uint64_t id, const std::vector<JsonValue> &parts)
{
    JsonValue resp = mergedOk(id, parts);
    JsonValue bills = JsonValue::array();
    std::uint64_t departed = 0;
    double revenue = 0.0;
    for (const JsonValue &p : parts) {
        if (const JsonValue *rows = p.find("bills");
            rows && rows->isArray())
            for (const JsonValue &row : rows->items())
                bills.push(row);
        departed += p.getUint("departed").value_or(0);
        revenue += p.getNumber("revenue").value_or(0.0);
    }
    resp.set("bills", std::move(bills));
    resp.set("revenue", JsonValue(revenue));
    resp.set("energy_revenue",
             JsonValue(sumNumber(parts, "energy_revenue")));
    resp.set("departed", JsonValue(departed));
    return resp;
}

// ---------------------------------------------------------------
// RegionCore.
// ---------------------------------------------------------------

RegionCore::RegionCore(const cloud::ProviderParams &params,
                       std::uint32_t shards, bool audit_each_quantum,
                       cloud::PlacementPolicy policy,
                       const cloud::RebalanceParams &rebalance)
    : router_(shards, policy, rebalance)
{
    for (std::uint32_t s = 0; s < shards; ++s) {
        cloud::ProviderParams p = params;
        p.seed = params.seed + s;
        providers_.push_back(
            std::make_unique<cloud::CloudProvider>(p));
        cores_.push_back(std::make_unique<ServiceCore>(
            *providers_[s], audit_each_quantum, s));
    }
}

std::vector<cloud::ShardLoad>
RegionCore::sampleLoads() const
{
    std::vector<cloud::ShardLoad> loads;
    loads.reserve(cores_.size());
    for (const auto &c : cores_)
        loads.push_back(c->load());
    return loads;
}

std::vector<JsonValue>
RegionCore::collectParts(const Request &req)
{
    std::vector<JsonValue> parts;
    parts.reserve(cores_.size());
    for (auto &c : cores_)
        parts.push_back(c->apply(req));
    return parts;
}

JsonValue
RegionCore::apply(const Request &req)
{
    switch (req.op) {
      case Op::Ping:
        return cores_[0]->apply(req);
      case Op::Arrive:
        return applyArrive(req);
      case Op::Depart:
      case Op::Query:
        return applyTenantOp(req);
      case Op::Migrate:
        return applyMigrate(req);
      case Op::Step: {
        std::vector<JsonValue> parts = collectParts(req);
        maybeRebalance();
        return mergeStepParts(req.id, parts);
      }
      case Op::Snapshot:
        return mergeSnapshotParts(req.id, collectParts(req));
      case Op::Shards:
        return mergeShardsParts(
            req.id, collectParts(req),
            cloud::placementPolicyName(router_.policy()), stats_);
      case Op::RegionSnapshot:
        return mergeRegionSnapshotParts(req.id, collectParts(req),
                                        router_.stats().routed,
                                        stats_);
      case Op::RegionEnergy:
        return mergeEnergyParts(req.id, collectParts(req));
      case Op::Drain: {
        JsonValue resp = drainReport();
        resp.set("id", JsonValue(req.id));
        return resp;
      }
    }
    return errorResponse(req.id, errors::BadRequest, "unhandled op");
}

JsonValue
RegionCore::applyArrive(const Request &req)
{
    // Invalid classes go to shard 0 for the canonical error; valid
    // ones are routed on the class's admission minimum.
    const auto &catalog = providers_[0]->params().catalog;
    cloud::ShardId target = 0;
    if (req.cls < catalog.size())
        target = router_.chooseShard(catalog[req.cls].minCfg,
                                     sampleLoads());
    return cores_[target]->apply(req);
}

JsonValue
RegionCore::applyTenantOp(const Request &req)
{
    cloud::ShardId shard = cloud::tenantShard(req.tenant);
    if (shard >= shards())
        return errorResponse(
            req.id, errors::UnknownTenant,
            strfmt("tenant %u names shard %u of a %u-shard region",
                   req.tenant, shard, shards()));
    return cores_[shard]->apply(req);
}

JsonValue
RegionCore::applyMigrate(const Request &req)
{
    if (shards() < 2)
        return errorResponse(req.id, errors::BadRequest,
                             "region has a single shard");
    cloud::ShardId from = cloud::tenantShard(req.tenant);
    if (from >= shards())
        return errorResponse(
            req.id, errors::UnknownTenant,
            strfmt("tenant %u names shard %u of a %u-shard region",
                   req.tenant, from, shards()));
    cloud::ShardId target = req.to;
    if (target == Request::kAutoShard) {
        // Router's choice: the emptiest other shard.
        std::vector<cloud::ShardLoad> loads = sampleLoads();
        target = from == 0 ? 1 : 0;
        for (cloud::ShardId s = 0; s < shards(); ++s)
            if (s != from
                && loads[s].freeSlices > loads[target].freeSlices)
                target = s;
    } else if (target >= shards()) {
        return errorResponse(
            req.id, errors::BadRequest,
            strfmt("target shard %u out of range (region has %u)",
                   target, shards()));
    } else if (target == from) {
        return errorResponse(
            req.id, errors::BadRequest,
            strfmt("tenant %u is already on shard %u", req.tenant,
                   target));
    }
    return migrate(req.id, req.tenant, target);
}

JsonValue
RegionCore::migrate(std::uint64_t id, std::uint32_t region_tenant,
                    std::uint32_t target)
{
    cloud::ShardId from = cloud::tenantShard(region_tenant);
    std::uint32_t local = cloud::tenantLocal(region_tenant);
    const auto &tenants = providers_[from]->tenants();
    if (local >= tenants.size()
        || tenants[local]->state != cloud::TenantState::Active)
        return errorResponse(
            id, errors::UnknownTenant,
            strfmt("tenant %u is not active on shard %u",
                   region_tenant, from));

    auto snap = cores_[from]->migrateOut(local);
    if (!snap)
        return errorResponse(
            id, errors::BadRequest,
            strfmt("tenant %u is not migratable (request-driven "
                   "source)",
                   region_tenant));

    // Through the wire format on purpose: every in-process
    // migration proves the JSON snapshot round-trips.
    std::string text = snapshotToJson(*snap).dump();
    auto parsed = parseJson(text);
    if (!parsed)
        panic("migration snapshot did not re-parse: %s",
              text.c_str());
    auto snap2 = snapshotFromJson(*parsed);
    if (!snap2)
        panic("migration snapshot did not round-trip: %s",
              text.c_str());

    std::uint32_t new_id = cores_[target]->migrateIn(*snap2);
    const cloud::Tenant &t =
        *providers_[target]->tenants()[cloud::tenantLocal(new_id)];
    ++stats_.migrations;
    CASH_METRIC_INC("service.migrations");

    JsonValue resp = okResponse(id);
    resp.set("tenant", JsonValue(new_id));
    resp.set("from", JsonValue(from));
    resp.set("to", JsonValue(target));
    resp.set("stall_cycles", JsonValue(snap->stallCycles));
    resp.set("state", JsonValue(cloud::tenantStateName(t.state)));
    resp.set("bill", JsonValue(t.bill()));
    return resp;
}

void
RegionCore::maybeRebalance()
{
    auto plan = router_.maybeRebalance(sampleLoads());
    if (!plan)
        return;
    cloud::TenantId migrant = providers_[plan->from]->pickMigrant();
    if (migrant == cloud::invalidTenant)
        return;
    JsonValue resp =
        migrate(0, cloud::regionTenantId(plan->from, migrant),
                plan->to);
    if (resp.getBool("ok").value_or(false))
        ++stats_.rebalances;
}

JsonValue
RegionCore::drainReport()
{
    std::vector<JsonValue> parts;
    parts.reserve(cores_.size());
    for (auto &c : cores_)
        parts.push_back(c->drainReport());
    return mergeDrainParts(0, parts);
}

} // namespace cash::service
