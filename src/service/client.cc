#include "service/client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"

namespace cash::service
{

ServiceClient
ServiceClient::connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("unix socket path too long: %s", path.c_str());
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket(AF_UNIX): %s", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        int e = errno;
        ::close(fd);
        fatal("cannot connect to unix:%s: %s", path.c_str(),
              std::strerror(e));
    }
    return ServiceClient(fd);
}

ServiceClient
ServiceClient::connectTcp(std::uint16_t port,
                          const std::string &host)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        fatal("not an IPv4 address: %s", host.c_str());
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket(AF_INET): %s", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        int e = errno;
        ::close(fd);
        fatal("cannot connect to tcp:%s:%u: %s", host.c_str(), port,
              std::strerror(e));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return ServiceClient(fd);
}

ServiceClient::ServiceClient(int fd, std::size_t max_frame)
    : fd_(fd), decoder_(max_frame)
{}

ServiceClient::~ServiceClient()
{
    close();
}

ServiceClient::ServiceClient(ServiceClient &&other) noexcept
    : fd_(other.fd_),
      nextId_(other.nextId_),
      sent_(other.sent_),
      received_(other.received_),
      decoder_(std::move(other.decoder_)),
      stash_(std::move(other.stash_))
{
    other.fd_ = -1;
}

ServiceClient &
ServiceClient::operator=(ServiceClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        nextId_ = other.nextId_;
        sent_ = other.sent_;
        received_ = other.received_;
        decoder_ = std::move(other.decoder_);
        stash_ = std::move(other.stash_);
        other.fd_ = -1;
    }
    return *this;
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
ServiceClient::finishSending()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

std::uint64_t
ServiceClient::send(Request req)
{
    if (fd_ < 0)
        fatal("send() on a closed client");
    if (req.id == 0)
        req.id = nextId_++;
    else
        nextId_ = std::max(nextId_, req.id + 1);
    std::string frame = encodeFrame(req.toJson().dump());
    std::size_t off = 0;
    while (off < frame.size()) {
        ssize_t n = ::send(fd_, frame.data() + off,
                           frame.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("write to service failed: %s",
                  std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    ++sent_;
    return req.id;
}

JsonValue
ServiceClient::readResponse()
{
    while (true) {
        if (auto payload = decoder_.next()) {
            std::string err;
            std::optional<JsonValue> v = parseJson(*payload, &err);
            if (!v)
                fatal("undecodable response from service: %s",
                      err.c_str());
            ++received_;
            return std::move(*v);
        }
        if (const char *err = decoder_.error())
            fatal("response stream poisoned: %s", err);
        if (fd_ < 0)
            fatal("next() on a closed client");
        char buf[4096];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            decoder_.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            fatal("service closed the connection "
                  "(%zu bytes buffered)",
                  decoder_.pending());
        if (errno == EINTR)
            continue;
        fatal("read from service failed: %s", std::strerror(errno));
    }
}

JsonValue
ServiceClient::next()
{
    return readResponse();
}

JsonValue
ServiceClient::wait(std::uint64_t id)
{
    auto it = stash_.find(id);
    if (it != stash_.end()) {
        JsonValue v = std::move(it->second);
        stash_.erase(it);
        return v;
    }
    while (true) {
        JsonValue v = readResponse();
        std::uint64_t got = v.getUint("id").value_or(0);
        if (got == id)
            return v;
        stash_.emplace(got, std::move(v));
    }
}

JsonValue
ServiceClient::call(Request req)
{
    return wait(send(std::move(req)));
}

JsonValue
ServiceClient::ping()
{
    Request r;
    r.op = Op::Ping;
    return call(r);
}

JsonValue
ServiceClient::arrive(std::uint32_t cls, std::uint32_t residence)
{
    Request r;
    r.op = Op::Arrive;
    r.cls = cls;
    r.residence = residence;
    return call(r);
}

JsonValue
ServiceClient::depart(std::uint32_t tenant)
{
    Request r;
    r.op = Op::Depart;
    r.tenant = tenant;
    return call(r);
}

JsonValue
ServiceClient::query(std::uint32_t tenant)
{
    Request r;
    r.op = Op::Query;
    r.tenant = tenant;
    return call(r);
}

JsonValue
ServiceClient::step(std::uint32_t quanta)
{
    Request r;
    r.op = Op::Step;
    r.quanta = quanta;
    return call(r);
}

JsonValue
ServiceClient::snapshot()
{
    Request r;
    r.op = Op::Snapshot;
    return call(r);
}

JsonValue
ServiceClient::drain()
{
    Request r;
    r.op = Op::Drain;
    return call(r);
}

JsonValue
ServiceClient::migrate(std::uint32_t tenant, std::uint32_t to)
{
    Request r;
    r.op = Op::Migrate;
    r.tenant = tenant;
    r.to = to;
    return call(r);
}

JsonValue
ServiceClient::shards()
{
    Request r;
    r.op = Op::Shards;
    return call(r);
}

JsonValue
ServiceClient::regionSnapshot()
{
    Request r;
    r.op = Op::RegionSnapshot;
    return call(r);
}

JsonValue
ServiceClient::regionEnergy()
{
    Request r;
    r.op = Op::RegionEnergy;
    return call(r);
}

} // namespace cash::service
