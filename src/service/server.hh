/**
 * @file
 * ServiceServer: one CloudProvider behind a batching network
 * front-end.
 *
 * Threading model (two threads, strict ownership):
 *
 *  - The IO thread owns every socket. It runs a non-blocking poll(2)
 *    event loop over the listeners (TCP and/or Unix-domain) and all
 *    connections: accepts, reads, incremental frame decoding
 *    (service/protocol.hh), request parsing, and all writes. Decoded
 *    requests go into a BoundedQueue; protocol errors (malformed
 *    JSON, oversized frames, unknown ops) and backpressure
 *    (`queue_full`) are answered directly on the IO thread, so a
 *    flooding client cannot wedge the simulator.
 *
 *  - The simulation thread owns the CloudProvider. It blocks on the
 *    queue, drains it in bounded batches, applies each request
 *    through ServiceCore in dequeue order — every mutation lands at
 *    a quantum boundary by construction — and publishes framed
 *    responses back to the IO thread (self-pipe wakeup).
 *
 * Determinism: provider state is a pure function of the request
 * sequence. One client (or any externally serialized request order)
 * reproduces bills bit-for-bit; concurrency only permutes whose
 * request is applied first.
 *
 * Robustness: bounded queue with explicit `queue_full` responses,
 * optional per-request deadlines (`deadline_exceeded` instead of
 * applying stale work), idle-connection timeouts, a max-frame cap,
 * and malformed-frame rejection (error response, then close — a
 * corrupt length prefix poisons the stream). stop() performs the
 * SIGTERM drain: stop accepting, apply everything already queued,
 * finish in-flight quanta, drain the provider (final bills +
 * auditProvider), flush every outbox, then exit.
 */

#ifndef CASH_SERVICE_SERVER_HH
#define CASH_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/core.hh"
#include "service/protocol.hh"
#include "service/queue.hh"

namespace cash::service
{

/** Server tunables. */
struct ServerConfig
{
    /** Unix-domain listener path ("" = no Unix listener). A stale
     *  socket file at the path is unlinked first. */
    std::string unixPath;
    /** Listen on TCP (loopback). Port 0 picks an ephemeral port
     *  (see ServiceServer::tcpPort()). */
    bool listenTcp = false;
    std::uint16_t tcpPort = 0;
    /** Request-queue bound: beyond this the front-end answers
     *  `queue_full`. */
    std::size_t queueCapacity = 256;
    /** Simulation-thread batch bound per queue drain. */
    std::size_t maxBatch = 64;
    /** Per-frame payload cap, bytes. */
    std::size_t maxFrame = kDefaultMaxFrame;
    /** Close connections silent for this long (0 = never). */
    int idleTimeoutMs = 0;
    /** Requests older than this at apply time are answered
     *  `deadline_exceeded` instead of applied (0 = no deadline). */
    int requestDeadlineMs = 0;
    /** auditProvider() after every request and stepped quantum. */
    bool audit = false;
};

/** Front-end accounting (all updated on one thread each; reads are
 *  snapshots for reporting). */
struct ServerStats
{
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> idleClosed{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> responses{0};
    std::atomic<std::uint64_t> queueFull{0};
    std::atomic<std::uint64_t> deadlineExceeded{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::uint64_t> batches{0};
};

class ServiceServer
{
  public:
    /** @param provider served provider; owned by the caller, must
     *         outlive the server; untouched after stop(). */
    ServiceServer(cloud::CloudProvider &provider,
                  const ServerConfig &config);
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /** Bind listeners and start the IO and simulation threads.
     *  fatal() on bind/listen failure. */
    void start();

    /**
     * Graceful drain, callable once from any thread (the daemon
     * calls it after SIGTERM): stop accepting and reading, apply
     * the already-queued requests, drain the provider (final
     * bills + audit), flush responses, join both threads.
     */
    void stop();

    /** Wake the event loop for shutdown from a signal handler
     *  (async-signal-safe; the actual stop() still must be called
     *  from a normal thread). */
    void wakeFromSignal();

    /** The bound TCP port (after start(); 0 if TCP is off). */
    std::uint16_t tcpPort() const { return boundTcpPort_; }

    const ServerStats &stats() const { return stats_; }

    /** The drain report captured by stop() ({"bills":...}); null
     *  object before stop() completes. */
    const JsonValue &finalReport() const { return finalReport_; }

    const ServerConfig &config() const { return config_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Connection
    {
        int fd = -1;
        std::uint64_t id = 0;
        FrameDecoder decoder;
        std::string outbox;     ///< framed bytes awaiting write
        std::size_t outOff = 0; ///< written prefix of outbox
        Clock::time_point lastActivity;
        /** Requests enqueued to the sim thread whose responses have
         *  not yet been collected into the outbox. A half-closed
         *  connection stays open until this reaches zero, so the
         *  "flush pending responses, then close" contract holds. */
        std::uint64_t inFlight = 0;
        bool readClosed = false;
        bool closeAfterFlush = false;

        explicit Connection(std::size_t max_frame)
            : decoder(max_frame)
        {}
    };

    struct QueuedRequest
    {
        std::uint64_t connId = 0;
        Request request;
        Clock::time_point enqueued;
    };

    struct Outgoing
    {
        std::uint64_t connId = 0;
        std::string framed;
    };

    void ioLoop();
    void simLoop();

    /** Accept everything pending on a listener. */
    void acceptPending(int listen_fd);

    /** Read + decode + enqueue for one connection. Returns false
     *  when the connection died. */
    bool serviceRead(Connection &conn);

    /** Handle one decoded frame payload on the IO thread. */
    void handleFrame(Connection &conn, const std::string &payload);

    /** Queue a response payload onto a connection's outbox. */
    void respondNow(Connection &conn, const JsonValue &resp);

    /** Flush as much outbox as the socket accepts. Returns false
     *  when the connection died. */
    bool serviceWrite(Connection &conn);

    void closeConnection(std::uint64_t conn_id);

    /** Move sim-thread responses into connection outboxes. */
    void collectOutgoing();

    void wake();

    cloud::CloudProvider &provider_;
    ServerConfig config_;
    ServiceCore core_;

    std::vector<int> listenFds_;
    int unixListenFd_ = -1;
    std::uint16_t boundTcpPort_ = 0;
    int wakeFd_[2] = {-1, -1}; ///< self-pipe: [read, write]

    std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
    std::uint64_t nextConnId_ = 1;

    BoundedQueue<QueuedRequest> queue_;
    std::mutex outgoingMutex_;
    std::vector<Outgoing> outgoing_;

    std::thread ioThread_;
    std::thread simThread_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> simDone_{false};
    std::atomic<bool> stopped_{false};
    std::mutex stopMutex_; ///< serializes stop() callers

    ServerStats stats_;
    JsonValue finalReport_;
};

} // namespace cash::service

#endif // CASH_SERVICE_SERVER_HH
